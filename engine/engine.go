// Package engine provides a concurrent ring-embedding engine over the
// topology-generic Network interface: a single codepath that serves
// EmbedRing-style requests for every adapter, memoizes results in an LRU
// cache keyed by (topology, canonicalized fault set), collapses
// duplicate in-flight computations, runs batches across a worker pool
// and reports per-request statistics (cache hit, rounds, ring length
// against the dⁿ − nf bound).
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"debruijnring/obs"
	"debruijnring/topology"
)

// topologyInfo aliases the embedding bookkeeping cached per entry.
type topologyInfo = topology.EmbedInfo

// Options configures an Engine.  The zero value picks sensible defaults.
type Options struct {
	// Workers bounds batch concurrency; 0 means GOMAXPROCS.
	Workers int
	// CacheSize is the LRU capacity in (topology, fault set) entries;
	// 0 means DefaultCacheSize, negative disables caching.
	CacheSize int
	// EmbedWorkers bounds the *intra-embed* frontier parallelism of
	// adapters that support it (topology.EmbedWorkerSetter — the De
	// Bruijn FFC broadcast BFS): 0 means GOMAXPROCS, 1 serial.  Output
	// is bit-identical at any setting.  Orthogonal to Workers, which
	// bounds how many embeds run concurrently.
	EmbedWorkers int
	// Registry receives the engine's metrics (request latency
	// histogram, per-tier repair histograms, cache counters).  Nil
	// creates a private registry, reachable via Engine.Registry.
	Registry *obs.Registry
}

// DefaultCacheSize is the LRU capacity used when Options.CacheSize is 0.
const DefaultCacheSize = 512

// Engine embeds fault-free rings concurrently with memoization.  It is
// safe for concurrent use.
type Engine struct {
	workers      int
	embedWorkers int

	reg     *obs.Registry
	latHist *obs.Histogram // engine_request_ns
	// Per-tier repair latency histograms and outcome counters, indexed
	// by RepairKind; resolved once so the record path is lock-free on
	// the registry side.
	repairNs    [numRepairKinds]*obs.Histogram
	repairTotal [numRepairKinds]*obs.Counter
	journalErrs *obs.Counter // session_journal_errors_total

	mu       sync.Mutex
	cache    *lruCache
	inflight map[string]*flight
	hits     int64
	misses   int64
	evicted  int64
	sessions SessionStats
}

// flight is one in-progress embedding; duplicate concurrent requests for
// the same key wait on done and share the result (counted as cache hits).
type flight struct {
	done chan struct{}
	ring []int
	info topologyInfo
	err  error
}

// New returns an Engine with the given options.
func New(opts Options) *Engine {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var cache *lruCache
	switch {
	case opts.CacheSize == 0:
		cache = newLRU(DefaultCacheSize)
	case opts.CacheSize > 0:
		cache = newLRU(opts.CacheSize)
	}
	reg := opts.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	e := &Engine{workers: workers, embedWorkers: opts.EmbedWorkers, cache: cache, inflight: make(map[string]*flight), reg: reg}
	reg.SetHelp("engine_request_ns", "embed request latency (cache hits included, failures excluded)")
	reg.SetHelp("session_repair_ns", "session fault-event latency by resolving repair tier")
	reg.SetHelp("session_repair_total", "session fault events by resolving repair tier")
	e.latHist = reg.Histogram("engine_request_ns")
	for kind := RepairKind(0); kind < numRepairKinds; kind++ {
		e.repairNs[kind] = reg.Histogram("session_repair_ns", "tier", kind.String())
		e.repairTotal[kind] = reg.Counter("session_repair_total", "tier", kind.String())
	}
	reg.SetHelp("session_journal_errors_total", "session journal appends that failed (session degraded to memory-only durability)")
	e.journalErrs = reg.Counter("session_journal_errors_total")
	// Cache and replication counters live under the engine mutex; a
	// collector mirrors them into the registry at scrape time.
	reg.SetHelp("engine_cache_hits_total", "embed cache hits (in-flight collapses included)")
	reg.SetHelp("engine_cache_entries", "live embed cache entries")
	reg.AddCollector(func(r *obs.Registry) {
		e.mu.Lock()
		cs := e.cacheStatsLocked()
		repl := e.sessions
		e.mu.Unlock()
		r.Counter("engine_cache_hits_total").Set(cs.Hits)
		r.Counter("engine_cache_misses_total").Set(cs.Misses)
		r.Counter("engine_cache_evicted_total").Set(cs.Evicted)
		r.Gauge("engine_cache_entries").Set(int64(cs.Entries))
		r.Counter("fleet_replica_appends_total").Set(repl.ReplicaAppends)
		r.Counter("fleet_replica_errors_total").Set(repl.ReplicaErrors)
	})
	return e
}

// Registry returns the engine's metrics registry (never nil).
func (e *Engine) Registry() *obs.Registry { return e.reg }

// Request names one embedding: a network (either directly or as a
// topology.FromSpec string) and the components that failed.
type Request struct {
	// Network to embed in; takes precedence over Spec when non-nil.
	Network topology.RingEmbedder
	// Spec is a textual topology spec such as "debruijn(4,6)", resolved
	// with topology.FromSpec when Network is nil.
	Spec string
	// Faults lists the failed processors and links.
	Faults topology.FaultSet
}

// Stats reports the bookkeeping of one served request.
type Stats struct {
	Topology string `json:"topology"`
	CacheHit bool   `json:"cache_hit"`
	// RingLength is len(Result.Ring): processors for unit-dilation
	// embeddings, walk hops for dilation-2 closed walks (see
	// topology.EmbedInfo.RingLength; Survivors carries the processor
	// count there).
	RingLength int           `json:"ring_length"`
	LowerBound int           `json:"lower_bound"` // guaranteed minimum (dⁿ − nf style), 0 if none
	Rounds     int           `json:"rounds"`      // broadcast rounds / eccentricity, where meaningful
	Survivors  int           `json:"survivors"`   // surviving component size, where meaningful
	Dilation   int           `json:"dilation"`
	Elapsed    time.Duration `json:"elapsed_ns"`
}

// Result is one embedded ring with its statistics.  In batch responses a
// failed request carries Err and a nil Ring.
type Result struct {
	Ring  []int
	Stats Stats
	Err   error
}

// EmbedRing serves one request: resolve the network, consult the cache,
// collapse onto an identical in-flight computation if one exists, or run
// the topology's embedding.  Cancelling ctx abandons the wait (the
// underlying computation, if this call started it, still completes and
// populates the cache for later requests).
func (e *Engine) EmbedRing(ctx context.Context, req Request) (*Result, error) {
	net, err := e.resolve(req)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	key := net.Name() + "|" + req.Faults.Key()

	e.mu.Lock()
	if ent, ok := e.cache.get(key); ok {
		e.hits++
		e.mu.Unlock()
		return e.result(net, ent.ring, ent.info, true, start), nil
	}
	if fl, ok := e.inflight[key]; ok {
		e.mu.Unlock()
		select {
		case <-fl.done:
			e.mu.Lock()
			if fl.err != nil {
				// The collapsed computation failed: account the waiter
				// as a miss so Hits+Misses still equals served requests.
				e.misses++
				e.mu.Unlock()
				return nil, fl.err
			}
			e.hits++
			e.mu.Unlock()
			return e.result(net, fl.ring, fl.info, true, start), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	fl := &flight{done: make(chan struct{})}
	e.inflight[key] = fl
	e.mu.Unlock()

	ring, info, err := net.EmbedRing(req.Faults)
	fl.err = err
	if err == nil {
		fl.ring, fl.info = ring, *info
	}
	close(fl.done)

	e.mu.Lock()
	delete(e.inflight, key)
	e.misses++
	if err == nil && e.cache.add(key, ring, *info) {
		e.evicted++
	}
	e.mu.Unlock()

	if err != nil {
		return nil, err
	}
	return e.result(net, fl.ring, fl.info, false, start), nil
}

// EmbedBatch serves the requests across the worker pool, returning one
// Result per request in the same order.  Requests repeating a (topology,
// fault set) pair are served from cache or collapsed onto the in-flight
// computation and marked CacheHit.  Cancellation propagates to every
// pending request: once ctx is done, queued requests are not dispatched
// at all and workers stop picking up new work — both complete their
// results with Err = ctx.Err() instead of running to completion.
func (e *Engine) EmbedBatch(ctx context.Context, reqs []Request) []Result {
	results := make([]Result, len(reqs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	workers := e.workers
	if workers > len(reqs) {
		workers = len(reqs)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if err := ctx.Err(); err != nil {
					results[i] = Result{Err: err}
					continue
				}
				res, err := e.EmbedRing(ctx, reqs[i])
				if err != nil {
					results[i] = Result{Err: err}
					continue
				}
				results[i] = *res
			}
		}()
	}
dispatch:
	for i := range reqs {
		select {
		case jobs <- i:
		case <-ctx.Done():
			for j := i; j < len(reqs); j++ {
				results[j] = Result{Err: ctx.Err()}
			}
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	return results
}

// CacheStats reports cumulative cache behavior.
type CacheStats struct {
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Evicted  int64 `json:"evicted"`
	Entries  int   `json:"entries"`
	Capacity int   `json:"capacity"`
}

// CacheStats returns a snapshot of the engine's cache counters.
func (e *Engine) CacheStats() CacheStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cacheStatsLocked()
}

func (e *Engine) cacheStatsLocked() CacheStats {
	s := CacheStats{Hits: e.hits, Misses: e.misses, Evicted: e.evicted, Entries: e.cache.len()}
	if e.cache != nil {
		s.Capacity = e.cache.capacity
	}
	return s
}

// RepairKind classifies how one session fault event was served, for the
// engine's session-aware statistics.
type RepairKind int

const (
	// RepairLocal: the fault batch was absorbed by a local ring patch.
	RepairLocal RepairKind = iota
	// RepairReembed: local repair declined (or was out of tolerance) and
	// the session fell back to a full re-embed.
	RepairReembed
	// RepairNoop: the faults did not touch the session's ring.
	RepairNoop
	// RepairRejected: neither repair nor re-embed could absorb the
	// faults; the session kept its previous state.
	RepairRejected
	// RepairHealLocal: a heal batch (shrinking fault set) was absorbed
	// by a local un-patch — the ring grew back without a re-embed.
	RepairHealLocal
	// RepairHealReembed: the local un-patch declined and the session
	// re-embedded around the reduced fault set.
	RepairHealReembed
	// RepairSplice: the structural tier declined the fault batch but the
	// generic splice tier absorbed it by local bypass surgery — the
	// middle rung of the repair ladder, still no re-embed.
	RepairSplice
	// RepairSpliceHeal: the heal-direction analogue — the splice tier
	// re-inserted the healed components after the structural tier
	// declined.
	RepairSpliceHeal

	numRepairKinds
)

// String returns the tier label used in metrics and chaos reports.
func (k RepairKind) String() string {
	switch k {
	case RepairLocal:
		return "local"
	case RepairReembed:
		return "reembed"
	case RepairNoop:
		return "noop"
	case RepairRejected:
		return "rejected"
	case RepairHealLocal:
		return "heal_local"
	case RepairHealReembed:
		return "heal_reembed"
	case RepairSplice:
		return "splice"
	case RepairSpliceHeal:
		return "splice_heal"
	}
	return "unknown"
}

// SessionStats aggregates fault-event outcomes across every session
// feeding this engine: how often incremental repair beat the full
// re-embed path, in both lifecycle directions.
type SessionStats struct {
	LocalRepairs int64 `json:"local_repairs"`
	Reembeds     int64 `json:"reembeds"`
	Noops        int64 `json:"noops"`
	Rejected     int64 `json:"rejected"`
	LocalHeals   int64 `json:"local_heals"`
	HealReembeds int64 `json:"heal_reembeds"`
	// SpliceRepairs / SpliceHeals count the middle rung of the repair
	// ladder: batches the structural tier declined but the generic
	// splice tier absorbed by local bypass surgery, per direction.
	SpliceRepairs int64 `json:"splice_repairs"`
	SpliceHeals   int64 `json:"splice_heals"`
	// PatchHitRate is (LocalRepairs + SpliceRepairs) / (LocalRepairs +
	// SpliceRepairs + Reembeds): the fraction of ring-changing fault
	// events served without a full re-embed, by either local tier.
	PatchHitRate float64 `json:"patch_hit_rate"`
	// UnpatchHitRate is the heal-direction analogue, (LocalHeals +
	// SpliceHeals) / (LocalHeals + SpliceHeals + HealReembeds).
	UnpatchHitRate float64 `json:"unpatch_hit_rate"`
	// ReplicaAppends / ReplicaErrors count journal events shipped to
	// this shard's replica by the fleet's replicated store, and the
	// appends that failed (the shard degrades to local-only journaling
	// for those events: they survive a shard restart but not a shard
	// loss).  Zero on unreplicated processes.
	ReplicaAppends int64 `json:"replica_appends,omitempty"`
	ReplicaErrors  int64 `json:"replica_errors,omitempty"`
	// SpliceHitRate is (SpliceRepairs + SpliceHeals) / (SpliceRepairs +
	// SpliceHeals + Reembeds + HealReembeds): the fraction of
	// ring-changing events beyond the structural tier that the splice
	// tier caught before the re-embed cliff.  The denominator counts
	// every re-embed this engine saw — including over-tolerance batches
	// never offered to a patcher and sessions on topologies with no
	// structural tier — so a low rate is a lead, not proof, of the
	// chain degenerating to re-embed-only; the authoritative gate is a
	// controlled stream (chaos -min-splice, as the nightly soak runs).
	SpliceHitRate float64 `json:"splice_hit_rate"`
}

// RecordRepair accounts one session fault event and its end-to-end
// latency.  The session subsystem calls it for every absorbed fault
// batch so /v1/stats surfaces repair-vs-recompute behavior next to the
// cache counters, and the per-tier histograms feed /metrics.
func (e *Engine) RecordRepair(kind RepairKind, elapsed time.Duration) {
	if kind >= 0 && kind < numRepairKinds {
		e.repairNs[kind].Observe(int64(elapsed))
		e.repairTotal[kind].Inc()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	switch kind {
	case RepairLocal:
		e.sessions.LocalRepairs++
	case RepairReembed:
		e.sessions.Reembeds++
	case RepairNoop:
		e.sessions.Noops++
	case RepairRejected:
		e.sessions.Rejected++
	case RepairHealLocal:
		e.sessions.LocalHeals++
	case RepairHealReembed:
		e.sessions.HealReembeds++
	case RepairSplice:
		e.sessions.SpliceRepairs++
	case RepairSpliceHeal:
		e.sessions.SpliceHeals++
	}
}

// RecordJournalError accounts one failed local journal append.  The
// session keeps serving from memory (the in-memory state machine is
// authoritative for a live session), but the lost durability must be
// visible: the counter feeds /metrics so operators can see a session
// silently degrading before a restart loses its tail.
func (e *Engine) RecordJournalError() {
	e.journalErrs.Inc()
}

// RecordReplication accounts one replica journal append by the fleet's
// replicated store, so /v1/stats surfaces replication health (appends
// vs errors) next to the repair counters.
func (e *Engine) RecordReplication(ok bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.sessions.ReplicaAppends++
	if !ok {
		e.sessions.ReplicaErrors++
	}
}

// EngineStats is the observability snapshot served by the stats
// endpoint: cache counters (flattened), the cache hit rate, latency
// percentiles over every served request, and the session subsystem's
// repair-vs-re-embed counters.
type EngineStats struct {
	CacheStats
	Requests       int64        `json:"requests"`
	HitRate        float64      `json:"hit_rate"`
	LatencyP50Ns   int64        `json:"latency_p50_ns"`
	LatencyP99Ns   int64        `json:"latency_p99_ns"`
	LatencyP999Ns  int64        `json:"latency_p999_ns"`
	LatencySamples int64        `json:"latency_samples"`
	Sessions       SessionStats `json:"sessions"`
}

// Stats returns a snapshot of the engine's cache and latency behavior.
// Percentiles come from the engine_request_ns histogram, which covers
// every successfully served request since process start (the former
// bounded reservoir overweighted recent traffic) — cache hits
// included, failed embeddings excluded (they count in Requests via
// Misses but contribute no latency sample, so LatencySamples can trail
// Requests).
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	s := EngineStats{CacheStats: e.cacheStatsLocked(), Sessions: e.sessions}
	e.mu.Unlock()
	if ringChanging := s.Sessions.LocalRepairs + s.Sessions.SpliceRepairs + s.Sessions.Reembeds; ringChanging > 0 {
		s.Sessions.PatchHitRate = float64(s.Sessions.LocalRepairs+s.Sessions.SpliceRepairs) / float64(ringChanging)
	}
	if healing := s.Sessions.LocalHeals + s.Sessions.SpliceHeals + s.Sessions.HealReembeds; healing > 0 {
		s.Sessions.UnpatchHitRate = float64(s.Sessions.LocalHeals+s.Sessions.SpliceHeals) / float64(healing)
	}
	if spliceable := s.Sessions.SpliceRepairs + s.Sessions.SpliceHeals +
		s.Sessions.Reembeds + s.Sessions.HealReembeds; spliceable > 0 {
		s.Sessions.SpliceHitRate = float64(s.Sessions.SpliceRepairs+s.Sessions.SpliceHeals) / float64(spliceable)
	}

	s.Requests = s.Hits + s.Misses
	if s.Requests > 0 {
		s.HitRate = float64(s.Hits) / float64(s.Requests)
	}
	lat := e.latHist.Snapshot()
	s.LatencySamples = lat.Count
	if lat.Count > 0 {
		s.LatencyP50Ns = lat.Quantile(0.50)
		s.LatencyP99Ns = lat.Quantile(0.99)
		s.LatencyP999Ns = lat.Quantile(0.999)
	}
	return s
}

func (e *Engine) resolve(req Request) (topology.RingEmbedder, error) {
	net := req.Network
	if net == nil {
		if req.Spec == "" {
			return nil, fmt.Errorf("engine: request names no network (set Network or Spec)")
		}
		var err error
		if net, err = topology.FromSpec(req.Spec); err != nil {
			return nil, err
		}
	}
	// Propagate the intra-embed worker setting to adapters that shard
	// internally (idempotent atomic store; FromSpec memoizes adapters, so
	// this also covers networks resolved before the engine existed).
	if s, ok := net.(topology.EmbedWorkerSetter); ok {
		s.SetEmbedWorkers(e.embedWorkers)
	}
	return net, nil
}

// result assembles a Result, copying the ring so cached slices cannot be
// mutated by callers, and feeds the latency histogram.
func (e *Engine) result(net topology.Network, ring []int, info topologyInfo, hit bool, start time.Time) *Result {
	elapsed := time.Since(start)
	e.latHist.Observe(int64(elapsed))
	return &Result{
		Ring: append([]int(nil), ring...),
		Stats: Stats{
			Topology:   net.Name(),
			CacheHit:   hit,
			RingLength: info.RingLength,
			LowerBound: info.LowerBound,
			Rounds:     info.Rounds,
			Survivors:  info.Survivors,
			Dilation:   info.Dilation,
			Elapsed:    elapsed,
		},
	}
}
