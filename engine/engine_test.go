package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"debruijnring/topology"
)

func TestEmbedRingCacheHit(t *testing.T) {
	eng := New(Options{})
	ctx := context.Background()
	req := Request{Spec: "debruijn(3,3)", Faults: topology.NodeFaults(6, 14)}

	first, err := eng.EmbedRing(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.CacheHit {
		t.Error("first request reported a cache hit")
	}
	if first.Stats.RingLength != 21 || first.Stats.LowerBound != 21 {
		t.Errorf("stats = %+v", first.Stats)
	}

	// Same fault set, different order and duplicated entry: still a hit.
	second, err := eng.EmbedRing(ctx, Request{
		Spec: "debruijn(3,3)", Faults: topology.NodeFaults(14, 6, 14),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Stats.CacheHit {
		t.Error("repeat request missed the cache")
	}
	if len(second.Ring) != len(first.Ring) {
		t.Errorf("cached ring length %d vs %d", len(second.Ring), len(first.Ring))
	}
	cs := eng.CacheStats()
	if cs.Hits != 1 || cs.Misses != 1 || cs.Entries != 1 {
		t.Errorf("cache stats = %+v", cs)
	}

	// Mutating a returned ring must not corrupt the cache.
	second.Ring[0] = -99
	third, err := eng.EmbedRing(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if third.Ring[0] == -99 {
		t.Error("caller mutation reached the cache")
	}
}

func TestEmbedRingDifferentTopologiesDoNotCollide(t *testing.T) {
	eng := New(Options{})
	ctx := context.Background()
	// Same (empty) fault set on two topologies: two distinct entries.
	a, err := eng.EmbedRing(ctx, Request{Spec: "debruijn(2,3)"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.EmbedRing(ctx, Request{Spec: "kautz(2,3)"})
	if err != nil {
		t.Fatal(err)
	}
	if b.Stats.CacheHit {
		t.Error("different topology hit the cache")
	}
	if a.Stats.Topology == b.Stats.Topology {
		t.Error("stats confuse topologies")
	}
}

func TestEmbedBatchOrderingAndCrossTopology(t *testing.T) {
	eng := New(Options{Workers: 4})
	reqs := []Request{
		{Spec: "debruijn(3,3)", Faults: topology.NodeFaults(6)},
		{Spec: "hypercube(6)", Faults: topology.NodeFaults(7)},
		{Spec: "shuffleexchange(3,3)", Faults: topology.NodeFaults(6)},
		{Spec: "debruijn(4,2)"},
		{Spec: "nonsense(1,2)"},
	}
	results := eng.EmbedBatch(context.Background(), reqs)
	if len(results) != len(reqs) {
		t.Fatalf("%d results for %d requests", len(results), len(reqs))
	}
	wantTopology := []string{"debruijn(3,3)", "hypercube(6)", "shuffleexchange(3,3)", "debruijn(4,2)"}
	for i, want := range wantTopology {
		if results[i].Err != nil {
			t.Fatalf("request %d: %v", i, results[i].Err)
		}
		if results[i].Stats.Topology != want {
			t.Errorf("result %d is %s, want %s (ordering broken)", i, results[i].Stats.Topology, want)
		}
	}
	if results[4].Err == nil {
		t.Error("bad spec did not error")
	}
	if results[3].Stats.RingLength != 16 {
		t.Errorf("fault-free B(4,2) ring = %d, want 16", results[3].Stats.RingLength)
	}
}

// TestConcurrentBatchSharedCache is the acceptance scenario: a batch of
// concurrent calls repeating one (topology, fault set) pair computes it
// once and serves every other request with the hit counter set.
func TestConcurrentBatchSharedCache(t *testing.T) {
	eng := New(Options{Workers: 8})
	const copies = 24
	reqs := make([]Request, copies)
	for i := range reqs {
		// Vary order and duplication so only canonicalization can unify.
		if i%2 == 0 {
			reqs[i] = Request{Spec: "debruijn(4,3)", Faults: topology.NodeFaults(7, 21)}
		} else {
			reqs[i] = Request{Spec: "debruijn(4,3)", Faults: topology.NodeFaults(21, 7, 7)}
		}
	}
	results := eng.EmbedBatch(context.Background(), reqs)
	hits := 0
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("request %d: %v", i, res.Err)
		}
		if res.Stats.CacheHit {
			hits++
		}
	}
	cs := eng.CacheStats()
	if cs.Misses != 1 {
		t.Errorf("computed %d times, want once", cs.Misses)
	}
	if hits != copies-1 || cs.Hits != copies-1 {
		t.Errorf("hits = %d (stats %d), want %d", hits, cs.Hits, copies-1)
	}
}

func TestContextCancellation(t *testing.T) {
	eng := New(Options{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.EmbedRing(ctx, Request{Spec: "debruijn(3,3)"}); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled EmbedRing returned %v", err)
	}
	reqs := make([]Request, 16)
	for i := range reqs {
		reqs[i] = Request{Spec: "debruijn(4,4)", Faults: topology.NodeFaults(i)}
	}
	results := eng.EmbedBatch(ctx, reqs)
	for i, res := range results {
		if !errors.Is(res.Err, context.Canceled) {
			t.Errorf("request %d: err = %v, want context.Canceled", i, res.Err)
		}
	}
}

// blockingNet stalls EmbedRing until released, to pin a worker while a
// batch is cancelled mid-flight.
type blockingNet struct {
	topology.RingEmbedder
	started chan struct{} // closed when the first embedding begins
	release chan struct{}
	once    sync.Once
}

func (b *blockingNet) EmbedRing(f topology.FaultSet) ([]int, *topology.EmbedInfo, error) {
	b.once.Do(func() { close(b.started) })
	<-b.release
	return b.RingEmbedder.EmbedRing(f)
}

// TestEmbedBatchMidflightCancellation cancels a batch while its single
// worker is stuck on the first request: every queued request must
// complete with ctx.Err() instead of being dispatched and embedded.
func TestEmbedBatchMidflightCancellation(t *testing.T) {
	db, err := topology.FromSpec("debruijn(3,4)")
	if err != nil {
		t.Fatal(err)
	}
	blocker := &blockingNet{
		RingEmbedder: db,
		started:      make(chan struct{}),
		release:      make(chan struct{}),
	}
	eng := New(Options{Workers: 1})
	reqs := make([]Request, 8)
	reqs[0] = Request{Network: blocker}
	for i := 1; i < len(reqs); i++ {
		reqs[i] = Request{Spec: "debruijn(3,4)", Faults: topology.NodeFaults(i)}
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan []Result, 1)
	go func() { done <- eng.EmbedBatch(ctx, reqs) }()
	<-blocker.started
	cancel()
	close(blocker.release)
	results := <-done
	// Request 0 had already started; it is allowed to finish.  Everything
	// queued behind it must carry the cancellation error.
	for i := 1; i < len(results); i++ {
		if !errors.Is(results[i].Err, context.Canceled) {
			t.Errorf("request %d: err = %v, want context.Canceled", i, results[i].Err)
		}
	}
}

func TestSessionRepairStats(t *testing.T) {
	eng := New(Options{})
	eng.RecordRepair(RepairLocal, time.Microsecond)
	eng.RecordRepair(RepairLocal, time.Microsecond)
	eng.RecordRepair(RepairLocal, time.Microsecond)
	eng.RecordRepair(RepairReembed, time.Microsecond)
	eng.RecordRepair(RepairNoop, time.Microsecond)
	eng.RecordRepair(RepairRejected, time.Microsecond)
	s := eng.Stats().Sessions
	if s.LocalRepairs != 3 || s.Reembeds != 1 || s.Noops != 1 || s.Rejected != 1 {
		t.Errorf("session stats = %+v", s)
	}
	if s.PatchHitRate != 0.75 {
		t.Errorf("patch hit rate = %v, want 0.75", s.PatchHitRate)
	}
}

// TestSessionHealStats covers the heal direction: LocalHeals and
// HealReembeds feed unpatch_hit_rate without disturbing the fault-side
// patch hit rate.
func TestSessionHealStats(t *testing.T) {
	eng := New(Options{})
	eng.RecordRepair(RepairHealLocal, time.Microsecond)
	eng.RecordRepair(RepairHealLocal, time.Microsecond)
	eng.RecordRepair(RepairHealLocal, time.Microsecond)
	eng.RecordRepair(RepairHealLocal, time.Microsecond)
	eng.RecordRepair(RepairHealReembed, time.Microsecond)
	eng.RecordRepair(RepairLocal, time.Microsecond)
	eng.RecordRepair(RepairReembed, time.Microsecond)
	s := eng.Stats().Sessions
	if s.LocalHeals != 4 || s.HealReembeds != 1 {
		t.Errorf("heal stats = %+v", s)
	}
	if s.UnpatchHitRate != 0.8 {
		t.Errorf("unpatch hit rate = %v, want 0.8", s.UnpatchHitRate)
	}
	if s.PatchHitRate != 0.5 {
		t.Errorf("patch hit rate = %v, want 0.5 (heals must not dilute it)", s.PatchHitRate)
	}
}

// TestSessionSpliceStats covers the middle rung: splice-tier
// resolutions count toward patch/unpatch hit rates and feed
// splice_hit_rate — the fraction of FFC-declined ring-changing events
// the splice tier caught before the re-embed cliff.
func TestSessionSpliceStats(t *testing.T) {
	eng := New(Options{})
	eng.RecordRepair(RepairSplice, time.Microsecond)
	eng.RecordRepair(RepairSplice, time.Microsecond)
	eng.RecordRepair(RepairReembed, time.Microsecond)
	eng.RecordRepair(RepairSpliceHeal, time.Microsecond)
	eng.RecordRepair(RepairHealReembed, time.Microsecond)
	eng.RecordRepair(RepairLocal, time.Microsecond)
	s := eng.Stats().Sessions
	if s.SpliceRepairs != 2 || s.SpliceHeals != 1 {
		t.Errorf("splice stats = %+v", s)
	}
	if s.PatchHitRate != 0.75 { // (1 local + 2 splice) / 4 ring-changing fault events
		t.Errorf("patch hit rate = %v, want 0.75", s.PatchHitRate)
	}
	if s.UnpatchHitRate != 0.5 { // 1 splice heal / 2 ring-changing heal events
		t.Errorf("unpatch hit rate = %v, want 0.5", s.UnpatchHitRate)
	}
	if s.SpliceHitRate != 0.6 { // 3 splice / (3 splice + 2 reembed)
		t.Errorf("splice hit rate = %v, want 0.6", s.SpliceHitRate)
	}
}

func TestEmbedRingErrorsAreNotCached(t *testing.T) {
	eng := New(Options{})
	ctx := context.Background()
	// Butterfly rejects processor faults.
	bad := Request{Spec: "butterfly(3,2)", Faults: topology.NodeFaults(0)}
	if _, err := eng.EmbedRing(ctx, bad); err == nil {
		t.Fatal("expected error")
	}
	cs := eng.CacheStats()
	if cs.Entries != 0 {
		t.Errorf("error result was cached: %+v", cs)
	}
	if _, err := eng.EmbedRing(ctx, Request{}); err == nil {
		t.Error("empty request accepted")
	}
}

func TestFailedRequestAccounting(t *testing.T) {
	eng := New(Options{Workers: 8})
	// Concurrent identical failing requests: the initiator and every
	// collapsed waiter must all be accounted, so Hits+Misses equals the
	// served request count even on the error path.
	const copies = 12
	reqs := make([]Request, copies)
	for i := range reqs {
		reqs[i] = Request{Spec: "butterfly(3,2)", Faults: topology.NodeFaults(0)}
	}
	results := eng.EmbedBatch(context.Background(), reqs)
	for i, res := range results {
		if res.Err == nil {
			t.Fatalf("request %d unexpectedly succeeded", i)
		}
	}
	cs := eng.CacheStats()
	if cs.Hits+cs.Misses != copies {
		t.Errorf("accounted %d of %d failing requests (%+v)", cs.Hits+cs.Misses, copies, cs)
	}
	if cs.Entries != 0 {
		t.Errorf("failed result cached: %+v", cs)
	}
}

func TestLRUEviction(t *testing.T) {
	eng := New(Options{CacheSize: 2})
	ctx := context.Background()
	for _, f := range [][]int{{0}, {1}, {2}} {
		if _, err := eng.EmbedRing(ctx, Request{Spec: "debruijn(4,2)", Faults: topology.NodeFaults(f...)}); err != nil {
			t.Fatal(err)
		}
	}
	cs := eng.CacheStats()
	if cs.Entries != 2 || cs.Evicted != 1 {
		t.Errorf("cache stats after eviction = %+v", cs)
	}
	// The oldest entry {0} was evicted: re-requesting it recomputes.
	res, err := eng.EmbedRing(ctx, Request{Spec: "debruijn(4,2)", Faults: topology.NodeFaults(0)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CacheHit {
		t.Error("evicted entry reported a cache hit")
	}
	// {2} is still resident.
	res, err = eng.EmbedRing(ctx, Request{Spec: "debruijn(4,2)", Faults: topology.NodeFaults(2)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.CacheHit {
		t.Error("resident entry missed")
	}
}

func TestCacheDisabled(t *testing.T) {
	eng := New(Options{CacheSize: -1})
	ctx := context.Background()
	req := Request{Spec: "debruijn(3,3)", Faults: topology.NodeFaults(6)}
	if _, err := eng.EmbedRing(ctx, req); err != nil {
		t.Fatal(err)
	}
	res, err := eng.EmbedRing(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CacheHit {
		t.Error("disabled cache still hit")
	}
	if cs := eng.CacheStats(); cs.Entries != 0 || cs.Capacity != 0 {
		t.Errorf("disabled cache stats = %+v", cs)
	}
}

// TestConcurrentMixedLoad hammers the engine from many goroutines to
// shake out races (run with -race in CI).
func TestConcurrentMixedLoad(t *testing.T) {
	eng := New(Options{Workers: 8, CacheSize: 8})
	specs := []string{"debruijn(3,3)", "debruijn(4,2)", "hypercube(5)", "shuffleexchange(3,2)"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				spec := specs[(w+i)%len(specs)]
				_, err := eng.EmbedRing(context.Background(), Request{
					Spec: spec, Faults: topology.NodeFaults(i % 4),
				})
				if err != nil {
					t.Errorf("%s: %v", spec, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	cs := eng.CacheStats()
	if cs.Hits+cs.Misses != 160 {
		t.Errorf("accounted %d requests, want 160", cs.Hits+cs.Misses)
	}
}

func TestEngineStats(t *testing.T) {
	eng := New(Options{})
	ctx := context.Background()
	req := Request{Spec: "debruijn(3,3)", Faults: topology.NodeFaults(6)}
	for i := 0; i < 4; i++ {
		if _, err := eng.EmbedRing(ctx, req); err != nil {
			t.Fatal(err)
		}
	}
	s := eng.Stats()
	if s.Requests != 4 || s.Hits != 3 || s.Misses != 1 {
		t.Errorf("stats = %+v, want 1 miss + 3 hits", s)
	}
	if s.HitRate != 0.75 {
		t.Errorf("hit rate = %v, want 0.75", s.HitRate)
	}
	if s.LatencySamples != 4 {
		t.Errorf("latency samples = %d, want 4", s.LatencySamples)
	}
	if s.LatencyP50Ns <= 0 || s.LatencyP99Ns < s.LatencyP50Ns || s.LatencyP999Ns < s.LatencyP99Ns {
		t.Errorf("latency percentiles p50=%d p99=%d p999=%d", s.LatencyP50Ns, s.LatencyP99Ns, s.LatencyP999Ns)
	}
	snap := eng.Registry().Snapshot()
	if got := snap.Histograms["engine_request_ns"].Count; got != 4 {
		t.Errorf("engine_request_ns count = %d, want 4", got)
	}
	if got := snap.Counters["engine_cache_hits_total"]; got != 3 {
		t.Errorf("engine_cache_hits_total = %d, want 3", got)
	}
}

func TestRecordRepairFeedsRegistry(t *testing.T) {
	eng := New(Options{})
	eng.RecordRepair(RepairLocal, 5*time.Microsecond)
	eng.RecordRepair(RepairLocal, 7*time.Microsecond)
	eng.RecordRepair(RepairReembed, time.Millisecond)
	snap := eng.Registry().Snapshot()
	local := snap.Histograms[`session_repair_ns{tier="local"}`]
	if local.Count != 2 {
		t.Errorf("local repair histogram count = %d, want 2", local.Count)
	}
	if got := snap.Counters[`session_repair_total{tier="reembed"}`]; got != 1 {
		t.Errorf("reembed counter = %d, want 1", got)
	}
}

func TestEngineStatsEmpty(t *testing.T) {
	eng := New(Options{})
	s := eng.Stats()
	if s.Requests != 0 || s.HitRate != 0 || s.LatencySamples != 0 || s.LatencyP50Ns != 0 {
		t.Errorf("fresh engine stats = %+v", s)
	}
}
