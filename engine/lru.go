package engine

import "container/list"

// lruCache is a non-thread-safe LRU over embedding results; the Engine
// serializes access under its mutex.
type lruCache struct {
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
}

type lruEntry struct {
	key  string
	ring []int
	info topologyInfo
}

func newLRU(capacity int) *lruCache {
	return &lruCache{capacity: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

func (c *lruCache) get(key string) (*lruEntry, bool) {
	if c == nil {
		return nil, false
	}
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry), true
}

func (c *lruCache) add(key string, ring []int, info topologyInfo) (evicted bool) {
	if c == nil || c.capacity <= 0 {
		return false
	}
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		ent := el.Value.(*lruEntry)
		ent.ring, ent.info = ring, info
		return false
	}
	el := c.ll.PushFront(&lruEntry{key: key, ring: ring, info: info})
	c.items[key] = el
	if c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
		return true
	}
	return false
}

func (c *lruCache) len() int {
	if c == nil {
		return 0
	}
	return c.ll.Len()
}
