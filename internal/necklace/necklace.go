// Package necklace implements the necklace structure of De Bruijn graphs
// (Chapters 2 and 4 of Rowley–Bose).  A necklace N(x) is the cycle of
// B(d,n) obtained by rotating the digits of a node; necklaces partition the
// node set into disjoint cycles whose lengths divide n.
//
// The counting half of the package is the Chapter 4 theory: exact formulas,
// via Möbius inversion, for the number of necklaces of a given length whose
// nodes satisfy a condition f(x) = g(n) compatible with rotation
// (Propositions 4.1 and 4.2), with the concrete instantiations used in the
// paper's examples: counting by length, by weight (binary and d-ary) and by
// type.
package necklace

import (
	"fmt"
	"math/big"
	"sort"

	"debruijnring/internal/numtheory"
	"debruijnring/internal/word"
)

// Necklace is one rotation class of B(d,n): its canonical representative
// (the minimal node, written [y] in the paper) and its length (the period
// of its nodes).
type Necklace struct {
	Rep    int
	Length int
}

// Of returns the necklace containing node x.
func Of(s *word.Space, x int) Necklace {
	return Necklace{Rep: s.NecklaceRep(x), Length: s.Period(x)}
}

// Enumerate returns all necklaces of B(d,n) ordered by representative.
func Enumerate(s *word.Space) []Necklace {
	var out []Necklace
	for x := 0; x < s.Size; x++ {
		if s.NecklaceRep(x) == x {
			out = append(out, Necklace{Rep: x, Length: s.Period(x)})
		}
	}
	return out
}

// EnumerateFKM returns the representatives of all necklaces of length
// dividing n over the d-letter alphabet, in lexicographic order, using the
// Fredricksen–Kessler–Maiorana algorithm [FM78] (the paper's reference for
// necklace-based De Bruijn sequence generation).  It agrees with Enumerate
// but runs in amortized O(1) per necklace instead of scanning all dⁿ nodes.
func EnumerateFKM(s *word.Space) []Necklace {
	n, d := s.N, s.D
	var out []Necklace
	a := make([]int, n+1) // a[1..n]
	var gen func(t, p int)
	gen = func(t, p int) {
		if t > n {
			if n%p == 0 {
				digits := make([]int, n)
				copy(digits, a[1:n+1])
				out = append(out, Necklace{Rep: s.FromDigits(digits), Length: p})
			}
			return
		}
		a[t] = a[t-p]
		gen(t+1, p)
		for j := a[t-p] + 1; j < d; j++ {
			a[t] = j
			gen(t+1, t)
		}
	}
	gen(1, 1)
	return out
}

// Partition groups every node of B(d,n) by necklace representative,
// returning rep → nodes-in-rotation-order.
func Partition(s *word.Space) map[int][]int {
	m := make(map[int][]int)
	for x := 0; x < s.Size; x++ {
		rep := s.NecklaceRep(x)
		if rep == x {
			m[rep] = s.NecklaceNodes(x, nil)
		}
	}
	return m
}

// --- Chapter 4: counting ---

// GammaFunc gives #Γ(m), the number of d-ary m-tuples satisfying the
// node condition at length m (the function f(x) = g(m) of §4.2).  It must
// satisfy Conditions A and B of the paper: rotation-invariance, and
// compatibility with root extraction (x = w^{m/t} satisfies at length m iff
// w satisfies at length t).
type GammaFunc func(m int) *big.Int

// CountByLength returns the number of necklaces of length t (t | n) in the
// subgraph of B(d,n) induced by the node condition (Proposition 4.1):
//
//	(1/t) Σ_{j|t} #Γ(j)·µ(t/j)
func CountByLength(n, t int, gamma GammaFunc) *big.Int {
	if t <= 0 || n%t != 0 {
		return big.NewInt(0)
	}
	sum := big.NewInt(0)
	term := new(big.Int)
	for _, j := range numtheory.Divisors(t) {
		mu := numtheory.Mobius(uint64(t / j))
		if mu == 0 {
			continue
		}
		term.SetInt64(int64(mu))
		term.Mul(term, gamma(j))
		sum.Add(sum, term)
	}
	q, r := new(big.Int).QuoRem(sum, big.NewInt(int64(t)), new(big.Int))
	if r.Sign() != 0 {
		panic(fmt.Sprintf("necklace: Möbius sum %v not divisible by %d; Γ violates Condition A/B", sum, t))
	}
	return q
}

// CountTotal returns the total number of necklaces in the induced subgraph
// (Proposition 4.2):
//
//	(1/n) Σ_{j|n} #Γ(j)·φ(n/j)
func CountTotal(n int, gamma GammaFunc) *big.Int {
	sum := big.NewInt(0)
	term := new(big.Int)
	for _, j := range numtheory.Divisors(n) {
		term.SetInt64(int64(numtheory.EulerPhi(uint64(n / j))))
		term.Mul(term, gamma(j))
		sum.Add(sum, term)
	}
	q, r := new(big.Int).QuoRem(sum, big.NewInt(int64(n)), new(big.Int))
	if r.Sign() != 0 {
		panic(fmt.Sprintf("necklace: totient sum %v not divisible by %d; Γ violates Condition A/B", sum, n))
	}
	return q
}

// GammaAll counts all d-ary m-tuples: #Γ(m) = d^m ("Counting by Length").
func GammaAll(d int) GammaFunc {
	return func(m int) *big.Int {
		return new(big.Int).Exp(big.NewInt(int64(d)), big.NewInt(int64(m)), nil)
	}
}

// GammaWeight counts d-ary m-tuples of proportional weight: with target
// weight k at length n, #Γ(m) = c_d(m, km/n) when km/n is integral, else 0
// ("Counting by Weight").  For d = 2 this is the binomial C(m, km/n).
func GammaWeight(d, n, k int) GammaFunc {
	return func(m int) *big.Int {
		if (k*m)%n != 0 {
			return big.NewInt(0)
		}
		return numtheory.BoundedCompositions(d, m, k*m/n)
	}
}

// GammaType counts d-ary m-tuples of proportional type: with target type
// K = [k₀,…,k_{d−1}] at length n, #Γ(m) = m!/∏(mkᵢ/n)! when every mkᵢ/n is
// integral, else 0 ("Counting by Type").
func GammaType(n int, typ []int) GammaFunc {
	return func(m int) *big.Int {
		parts := make([]int, len(typ))
		for i, k := range typ {
			if (k*m)%n != 0 {
				return big.NewInt(0)
			}
			parts[i] = k * m / n
		}
		return numtheory.Multinomial(m, parts)
	}
}

// CountAllByLength returns the number of necklaces of length t in B(d,n).
func CountAllByLength(d, n, t int) *big.Int { return CountByLength(n, t, GammaAll(d)) }

// CountAll returns the total number of necklaces in B(d,n).
func CountAll(d, n int) *big.Int { return CountTotal(n, GammaAll(d)) }

// CountWeightByLength returns the number of necklaces of length t in B(d,n)
// whose nodes have weight k·t/n (equivalently: made of nodes of weight k
// when completed to length n).
func CountWeightByLength(d, n, k, t int) *big.Int { return CountByLength(n, t, GammaWeight(d, n, k)) }

// CountWeightTotal returns the total number of necklaces of weight k in
// B(d,n).
func CountWeightTotal(d, n, k int) *big.Int { return CountTotal(n, GammaWeight(d, n, k)) }

// CountTypeByLength returns the number of necklaces of length t and type K
// in B(d,n).
func CountTypeByLength(d, n int, typ []int, t int) *big.Int {
	if len(typ) != d {
		panic("necklace: type vector must have d entries")
	}
	return CountByLength(n, t, GammaType(n, typ))
}

// CountTypeTotal returns the total number of necklaces of type K in B(d,n).
func CountTypeTotal(d, n int, typ []int) *big.Int {
	if len(typ) != d {
		panic("necklace: type vector must have d entries")
	}
	return CountTotal(n, GammaType(n, typ))
}

// Type returns the type vector [k₀,…,k_{d−1}] of node x (§4.3): kₐ is the
// number of occurrences of digit α.
func Type(s *word.Space, x int) []int {
	typ := make([]int, s.D)
	for i := 1; i <= s.N; i++ {
		typ[s.Digit(x, i)]++
	}
	return typ
}

// Census tabulates, by brute-force enumeration, the necklaces of B(d,n)
// grouped by length; used by tests to validate the closed-form counts.
func Census(s *word.Space) map[int]int {
	counts := make(map[int]int)
	for _, nk := range Enumerate(s) {
		counts[nk.Length]++
	}
	return counts
}

// SortNecklaces orders necklaces by representative (ascending), the order
// used by the FFC algorithm's Step 2 to close T_w stars into cycles.
func SortNecklaces(ns []Necklace) {
	sort.Slice(ns, func(i, j int) bool { return ns[i].Rep < ns[j].Rep })
}
