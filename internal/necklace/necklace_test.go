package necklace

import (
	"math/big"
	"testing"

	"debruijnring/internal/word"
)

func TestOf(t *testing.T) {
	s := word.New(3, 4)
	x, _ := s.Parse("1120")
	nk := Of(s, x)
	rep, _ := s.Parse("0112")
	if nk.Rep != rep || nk.Length != 4 {
		t.Errorf("Of(1120) = {%s, %d}", s.String(nk.Rep), nk.Length)
	}
	// N(1120) = [0112] = (1120, 1201, 2011, 0112) — §2.1 example.
	if got := Of(s, x); got != Of(s, s.RotL(x)) {
		t.Error("rotations must share a necklace")
	}
}

func TestEnumerateMatchesFKM(t *testing.T) {
	for _, tc := range []struct{ d, n int }{{2, 1}, {2, 6}, {3, 4}, {4, 3}, {5, 2}, {2, 12}} {
		s := word.New(tc.d, tc.n)
		plain := Enumerate(s)
		fkm := EnumerateFKM(s)
		if len(plain) != len(fkm) {
			t.Fatalf("B(%d,%d): Enumerate %d vs FKM %d necklaces", tc.d, tc.n, len(plain), len(fkm))
		}
		for i := range plain {
			if plain[i] != fkm[i] {
				t.Fatalf("B(%d,%d): mismatch at %d: %v vs %v", tc.d, tc.n, i, plain[i], fkm[i])
			}
		}
	}
}

func TestPartitionCoversAllNodes(t *testing.T) {
	s := word.New(3, 3)
	part := Partition(s)
	covered := 0
	for rep, nodes := range part {
		if s.NecklaceRep(rep) != rep {
			t.Errorf("%s is not canonical", s.String(rep))
		}
		covered += len(nodes)
		for _, x := range nodes {
			if s.NecklaceRep(x) != rep {
				t.Errorf("%s assigned to wrong necklace", s.String(x))
			}
		}
	}
	if covered != s.Size {
		t.Errorf("partition covers %d of %d nodes", covered, s.Size)
	}
}

func TestCountAllByLengthExamples(t *testing.T) {
	// §4.3: the number of necklaces of length 6 in B(2,12) is 9.
	if got := CountAllByLength(2, 12, 6); got.Cmp(big.NewInt(9)) != 0 {
		t.Errorf("necklaces of length 6 in B(2,12) = %v, want 9", got)
	}
	// §4.3: the total number of necklaces in B(2,12) is 352.
	if got := CountAll(2, 12); got.Cmp(big.NewInt(352)) != 0 {
		t.Errorf("total necklaces in B(2,12) = %v, want 352", got)
	}
	// B(3,3) has 11 necklaces (3 fixed points + 8 of length 3).
	if got := CountAll(3, 3); got.Cmp(big.NewInt(11)) != 0 {
		t.Errorf("total necklaces in B(3,3) = %v, want 11", got)
	}
	// Non-divisor lengths count zero.
	if got := CountAllByLength(2, 12, 5); got.Sign() != 0 {
		t.Errorf("length 5 in B(2,12) = %v, want 0", got)
	}
}

func TestCountWeightExamples(t *testing.T) {
	// §4.3: necklaces of weight 4 and length 6 in B(2,12): 2.
	if got := CountWeightByLength(2, 12, 4, 6); got.Cmp(big.NewInt(2)) != 0 {
		t.Errorf("weight-4 length-6 necklaces in B(2,12) = %v, want 2", got)
	}
	// §4.3: total necklaces of weight 4 in B(2,12): 43.
	if got := CountWeightTotal(2, 12, 4); got.Cmp(big.NewInt(43)) != 0 {
		t.Errorf("weight-4 necklaces in B(2,12) = %v, want 43", got)
	}
	// §4.3: necklaces of weight 4 and length 4 in B(3,4): 4.
	if got := CountWeightByLength(3, 4, 4, 4); got.Cmp(big.NewInt(4)) != 0 {
		t.Errorf("weight-4 length-4 necklaces in B(3,4) = %v, want 4", got)
	}
}

// bruteWeightCount counts necklaces of weight k (and optionally length t)
// in B(d,n) by enumeration.
func bruteWeightCount(s *word.Space, k, t int) int64 {
	var count int64
	for _, nk := range Enumerate(s) {
		// A necklace of length t consists of nodes of weight k iff the
		// representative (an n-tuple) has weight k.
		if s.Weight(nk.Rep) != k {
			continue
		}
		if t == 0 || nk.Length == t {
			count++
		}
	}
	return count
}

func TestCountWeightAgainstEnumeration(t *testing.T) {
	for _, tc := range []struct{ d, n int }{{2, 8}, {2, 12}, {3, 6}, {4, 4}, {5, 3}} {
		s := word.New(tc.d, tc.n)
		for k := 0; k <= tc.n*(tc.d-1); k++ {
			want := bruteWeightCount(s, k, 0)
			if got := CountWeightTotal(tc.d, tc.n, k); got.Cmp(big.NewInt(want)) != 0 {
				t.Errorf("B(%d,%d) weight %d: formula %v, enumeration %d", tc.d, tc.n, k, got, want)
			}
			for _, div := range []int{1, 2, tc.n} {
				if tc.n%div != 0 {
					continue
				}
				want := bruteWeightCount(s, k, div)
				if got := CountWeightByLength(tc.d, tc.n, k, div); got.Cmp(big.NewInt(want)) != 0 {
					t.Errorf("B(%d,%d) weight %d length %d: formula %v, enumeration %d",
						tc.d, tc.n, k, div, got, want)
				}
			}
		}
	}
}

func TestCountAllAgainstEnumeration(t *testing.T) {
	for _, tc := range []struct{ d, n int }{{2, 10}, {3, 5}, {4, 4}, {6, 3}} {
		s := word.New(tc.d, tc.n)
		census := Census(s)
		total := 0
		for _, c := range census {
			total += c
		}
		if got := CountAll(tc.d, tc.n); got.Cmp(big.NewInt(int64(total))) != 0 {
			t.Errorf("B(%d,%d): CountAll = %v, census %d", tc.d, tc.n, got, total)
		}
		for length, cnt := range census {
			if got := CountAllByLength(tc.d, tc.n, length); got.Cmp(big.NewInt(int64(cnt))) != 0 {
				t.Errorf("B(%d,%d) length %d: formula %v, census %d", tc.d, tc.n, length, got, cnt)
			}
		}
	}
}

func TestTypeCounting(t *testing.T) {
	s := word.New(4, 6)
	x, _ := s.Parse("312211")
	typ := Type(s, x)
	want := []int{0, 3, 2, 1}
	for i := range want {
		if typ[i] != want[i] {
			t.Fatalf("type(312211) = %v, want %v", typ, want)
		}
	}
	// Cross-check type counts against enumeration on B(3,4).
	s34 := word.New(3, 4)
	types := map[[3]int]int64{}
	typesByLen := map[[4]int]int64{}
	for _, nk := range Enumerate(s34) {
		tv := Type(s34, nk.Rep)
		key := [3]int{tv[0], tv[1], tv[2]}
		types[key]++
		typesByLen[[4]int{tv[0], tv[1], tv[2], nk.Length}]++
	}
	for key, want := range types {
		got := CountTypeTotal(3, 4, key[:])
		if got.Cmp(big.NewInt(want)) != 0 {
			t.Errorf("type %v total: formula %v, enumeration %d", key, got, want)
		}
	}
	for key, want := range typesByLen {
		got := CountTypeByLength(3, 4, key[:3], key[3])
		if got.Cmp(big.NewInt(want)) != 0 {
			t.Errorf("type %v length %d: formula %v, enumeration %d", key[:3], key[3], got, want)
		}
	}
	// Binary types reduce to weights: type [n−k, k] ⇔ weight k (§4.3).
	for k := 0; k <= 12; k++ {
		byType := CountTypeTotal(2, 12, []int{12 - k, k})
		byWeight := CountWeightTotal(2, 12, k)
		if byType.Cmp(byWeight) != 0 {
			t.Errorf("k=%d: type count %v ≠ weight count %v", k, byType, byWeight)
		}
	}
}

func TestTypePanicsOnWrongLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for wrong type-vector length")
		}
	}()
	CountTypeTotal(3, 4, []int{1, 2})
}

func TestSortNecklaces(t *testing.T) {
	ns := []Necklace{{Rep: 5, Length: 1}, {Rep: 2, Length: 3}, {Rep: 9, Length: 3}}
	SortNecklaces(ns)
	if ns[0].Rep != 2 || ns[1].Rep != 5 || ns[2].Rep != 9 {
		t.Errorf("sorted = %v", ns)
	}
}

func BenchmarkEnumerateFKM(b *testing.B) {
	s := word.New(2, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EnumerateFKM(s)
	}
}

func BenchmarkCountAll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		CountAll(2, 32)
	}
}
