package hypercube

import (
	"math/bits"
	"math/rand/v2"
	"testing"
)

func TestCounts(t *testing.T) {
	if NumNodes(12) != 4096 {
		t.Errorf("Q_12 has %d nodes", NumNodes(12))
	}
	// §2: "the hypercube has 50%% more edges (24,576) than the De Bruijn
	// graph (16,384)".
	if NumEdges(12) != 24576 {
		t.Errorf("Q_12 has %d edges, want 24576", NumEdges(12))
	}
}

func TestGrayCycle(t *testing.T) {
	for n := 2; n <= 10; n++ {
		c := GrayCycle(n)
		if len(c) != 1<<n {
			t.Fatalf("Gray cycle of Q_%d has %d nodes", n, len(c))
		}
		if !IsCycle(n, c, nil) {
			t.Fatalf("Gray cycle of Q_%d invalid", n)
		}
	}
}

func TestGrayCycleThroughEdge(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for n := 2; n <= 8; n++ {
		for trial := 0; trial < 20; trial++ {
			u := rng.IntN(1 << n)
			v := u ^ (1 << rng.IntN(n))
			c := GrayCycleThroughEdge(n, u, v)
			if !IsCycle(n, c, nil) || len(c) != 1<<n {
				t.Fatalf("Q_%d: invalid HC through (%d,%d)", n, u, v)
			}
			found := false
			for i, x := range c {
				y := c[(i+1)%len(c)]
				if (x == u && y == v) || (x == v && y == u) {
					found = true
				}
			}
			if !found {
				t.Fatalf("Q_%d: HC misses prescribed edge (%d,%d)", n, u, v)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("non-edge should panic")
		}
	}()
	GrayCycleThroughEdge(3, 0, 3)
}

func TestDropInsert(t *testing.T) {
	for x := 0; x < 64; x++ {
		for i := 0; i < 6; i++ {
			side := (x >> i) & 1
			if insert(drop(x, i), i, side) != x {
				t.Fatalf("insert(drop(%d,%d)) mismatch", x, i)
			}
		}
	}
}

// TestFaultFreeCycleExhaustiveSmall: every single fault in Q_3 leaves a
// 6-cycle; every fault pair in Q_4 leaves a 12-cycle.
func TestFaultFreeCycleExhaustiveSmall(t *testing.T) {
	for v := 0; v < 8; v++ {
		c, err := FaultFreeCycle(3, []int{v})
		if err != nil {
			t.Fatalf("Q_3 fault %d: %v", v, err)
		}
		if len(c) < 6 || !IsCycle(3, c, map[int]bool{v: true}) {
			t.Fatalf("Q_3 fault %d: cycle %v", v, c)
		}
	}
	for a := 0; a < 16; a++ {
		for b := a + 1; b < 16; b++ {
			faults := []int{a, b}
			c, err := FaultFreeCycle(4, faults)
			if err != nil {
				t.Fatalf("Q_4 faults %v: %v", faults, err)
			}
			if len(c) < 12 || !IsCycle(4, c, map[int]bool{a: true, b: true}) {
				t.Fatalf("Q_4 faults %v: bad cycle (len %d)", faults, len(c))
			}
		}
	}
}

// TestFaultFreeCycleGuarantee: random fault sets with f ≤ n−2 always give
// length ≥ 2ⁿ − 2f, for n up to 10.
func TestFaultFreeCycleGuarantee(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	for n := 5; n <= 10; n++ {
		for trial := 0; trial < 30; trial++ {
			f := rng.IntN(n - 1) // 0..n−2
			fm := make(map[int]bool)
			for len(fm) < f {
				fm[rng.IntN(1<<n)] = true
			}
			faults := make([]int, 0, f)
			for x := range fm {
				faults = append(faults, x)
			}
			c, err := FaultFreeCycle(n, faults)
			if err != nil {
				t.Fatalf("Q_%d faults %v: %v", n, faults, err)
			}
			if len(c) < 1<<n-2*f {
				t.Fatalf("Q_%d with %d faults: cycle %d < %d", n, f, len(c), 1<<n-2*f)
			}
			if !IsCycle(n, c, fm) {
				t.Fatalf("Q_%d: invalid cycle", n)
			}
		}
	}
}

// TestAdversarialFaults places faults in dense clusters (all in one
// subcube, neighbours of a single node, antipodal pairs).
func TestAdversarialFaults(t *testing.T) {
	cases := []struct {
		n      int
		faults []int
	}{
		{6, []int{1, 2, 4, 8}},         // all neighbours of 0
		{6, []int{0, 3, 5, 6}},         // even-weight cluster
		{7, []int{0, 1, 2, 3, 4}},      // low corner cluster
		{7, []int{0, 127, 1, 126, 64}}, // antipodal pairs
		{8, []int{0, 1, 2, 3, 4, 5}},   // n−2 faults in one subcube
	}
	for _, tc := range cases {
		fm := make(map[int]bool)
		for _, x := range tc.faults {
			fm[x] = true
		}
		c, err := FaultFreeCycle(tc.n, tc.faults)
		if err != nil {
			t.Fatalf("Q_%d faults %v: %v", tc.n, tc.faults, err)
		}
		want := 1<<tc.n - 2*len(tc.faults)
		if len(c) < want {
			t.Errorf("Q_%d faults %v: %d < %d", tc.n, tc.faults, len(c), want)
		}
		if !IsCycle(tc.n, c, fm) {
			t.Errorf("Q_%d faults %v: invalid cycle", tc.n, tc.faults)
		}
	}
}

// TestPaperComparison reproduces the Chapter 2 figure: the 4096-node
// hypercube Q_12 with 2 faults yields a fault-free cycle of length 4092 =
// 2ⁿ − 2f.
func TestPaperComparison(t *testing.T) {
	c, err := FaultFreeCycle(12, []int{100, 2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(c) < 4092 {
		t.Errorf("Q_12 with 2 faults: cycle %d, want ≥ 4092", len(c))
	}
	if !IsCycle(12, c, map[int]bool{100: true, 2000: true}) {
		t.Error("invalid cycle")
	}
}

func TestFaultFreeCycleErrors(t *testing.T) {
	if _, err := FaultFreeCycle(1, nil); err == nil {
		t.Error("n = 1 should fail")
	}
	if _, err := FaultFreeCycle(4, []int{1, 2, 3}); err == nil {
		t.Error("f > n−2 should fail")
	}
	if _, err := FaultFreeCycle(4, []int{99}); err == nil {
		t.Error("out-of-range fault should fail")
	}
}

func TestIsEdge(t *testing.T) {
	if !IsEdge(5, 4) || IsEdge(5, 6) || IsEdge(3, 3) {
		t.Error("IsEdge misclassifies")
	}
	if bits.OnesCount(uint(5^4)) != 1 {
		t.Error("sanity")
	}
}

func BenchmarkFaultFreeCycleQ12(b *testing.B) {
	faults := []int{100, 2000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FaultFreeCycle(12, faults); err != nil {
			b.Fatal(err)
		}
	}
}
