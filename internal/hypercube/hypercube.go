// Package hypercube implements the comparison baseline cited in Chapter 2
// of Rowley–Bose: fault-tolerant ring embedding in the binary n-cube.  The
// cited results [WC92, CL91a] show that Q_n with f ≤ n−2 faulty nodes
// contains a fault-free cycle of length at least 2ⁿ − 2f; this package
// provides a constructive divide-and-conquer embedding achieving that
// bound (with exhaustive-search base cases), so the De Bruijn/hypercube
// comparison in §2 can be measured rather than quoted.
package hypercube

import (
	"fmt"
	"math/bits"
	"sort"
)

// NumNodes returns 2ⁿ.
func NumNodes(n int) int { return 1 << n }

// NumEdges returns n·2ⁿ⁻¹ (e.g. 24576 for n = 12, the figure quoted in
// §2 against B(4,6)'s 16384).
func NumEdges(n int) int { return n << (n - 1) }

// IsEdge reports whether x and y differ in exactly one bit.
func IsEdge(x, y int) bool { return bits.OnesCount(uint(x^y)) == 1 }

// GrayCycle returns the reflected-Gray-code Hamiltonian cycle of Q_n:
// g(i) = i XOR (i >> 1).
func GrayCycle(n int) []int {
	out := make([]int, 1<<n)
	for i := range out {
		out[i] = i ^ (i >> 1)
	}
	return out
}

// GrayCycleThroughEdge returns a Hamiltonian cycle of Q_n containing the
// edge (u, v), obtained from the Gray cycle (which contains the edge
// (0, 1)) by the automorphism x ↦ σ(x) XOR u with σ swapping bit 0 and the
// dimension of (u, v).
func GrayCycleThroughEdge(n, u, v int) []int {
	if !IsEdge(u, v) {
		panic(fmt.Sprintf("hypercube: (%d,%d) is not an edge", u, v))
	}
	j := bits.TrailingZeros(uint(u ^ v))
	out := GrayCycle(n)
	for i, g := range out {
		out[i] = swapBits(g, 0, j) ^ u
	}
	return out
}

func swapBits(x, i, j int) int {
	if i == j {
		return x
	}
	bi, bj := (x>>i)&1, (x>>j)&1
	if bi == bj {
		return x
	}
	return x ^ (1 << i) ^ (1 << j)
}

// IsCycle reports whether seq is a cycle of Q_n avoiding faults.
func IsCycle(n int, seq []int, faults map[int]bool) bool {
	// Q_n is bipartite and simple: its shortest cycles have length 4.
	if len(seq) < 4 {
		return false
	}
	seen := make(map[int]bool, len(seq))
	for i, x := range seq {
		if x < 0 || x >= 1<<n || seen[x] || faults[x] {
			return false
		}
		seen[x] = true
		if !IsEdge(x, seq[(i+1)%len(seq)]) {
			return false
		}
	}
	return true
}

// FaultFreeCycle constructs a cycle of Q_n avoiding the faulty nodes, of
// length at least 2ⁿ − 2f for f ≤ n−2 (the [WC92, CL91a] guarantee).  It
// returns an error when f > n−2 and no embedding is found, or when the
// cube degenerates (n < 2).
func FaultFreeCycle(n int, faults []int) ([]int, error) {
	if n < 2 {
		return nil, fmt.Errorf("hypercube: need n ≥ 2")
	}
	fs := make(map[int]bool, len(faults))
	for _, x := range faults {
		if x < 0 || x >= 1<<n {
			return nil, fmt.Errorf("hypercube: fault %d out of range", x)
		}
		fs[x] = true
	}
	if len(fs) > n-2 {
		return nil, fmt.Errorf("hypercube: %d faults exceed the n−2 = %d guarantee", len(fs), n-2)
	}
	// Pick a fault-free prescribed edge.
	eu, ev := -1, -1
pick:
	for u := 0; u < 1<<n; u++ {
		if fs[u] {
			continue
		}
		for j := 0; j < n; j++ {
			if !fs[u^(1<<j)] {
				eu, ev = u, u^(1<<j)
				break pick
			}
		}
	}
	if eu < 0 {
		return nil, fmt.Errorf("hypercube: no fault-free edge exists")
	}
	c := cycleThrough(n, fs, eu, ev)
	if c == nil {
		return nil, fmt.Errorf("hypercube: embedding failed (internal)")
	}
	if len(c) < 1<<n-2*len(fs) {
		return nil, fmt.Errorf("hypercube: embedded cycle of length %d misses the 2ⁿ−2f = %d bound",
			len(c), 1<<n-2*len(fs))
	}
	return c, nil
}

// cycleThrough returns a fault-free cycle through the edge (eu, ev) of
// length ≥ 2ⁿ − 2f, or nil.  Recursive divide and conquer: split along a
// dimension separating the faults (possible whenever it matters), embed a
// cycle through the prescribed edge in its half, and merge with a cycle
// through a transferred edge in the other half.
func cycleThrough(n int, faults map[int]bool, eu, ev int) []int {
	f := len(faults)
	target := 1<<n - 2*f
	if n <= 4 {
		return searchCycleThrough(n, faults, eu, ev, target)
	}
	if f == 0 {
		return GrayCycleThroughEdge(n, eu, ev)
	}
	j := bits.TrailingZeros(uint(eu ^ ev))
	i := chooseSplit(n, faults, j)
	side := (eu >> i) & 1

	var fA, fB map[int]bool
	fA = make(map[int]bool)
	fB = make(map[int]bool)
	for x := range faults {
		if (x>>i)&1 == side {
			fA[drop(x, i)] = true
		} else {
			fB[drop(x, i)] = true
		}
	}
	if len(fA) > n-3 || len(fB) > n-3 {
		// The split failed to spread the faults far enough; fall back to
		// exhaustive search on small cubes (cannot occur for n ≥ 5 by the
		// choice of i — see chooseSplit — but keep the guard).
		if n <= 5 {
			return searchCycleThrough(n, faults, eu, ev, target)
		}
		return nil
	}

	c1 := cycleThrough(n-1, fA, drop(eu, i), drop(ev, i))
	if c1 == nil {
		return nil
	}
	// Try merge edges (a, b) of C1 whose partners across dimension i are
	// fault-free; transfer the prescribed edge into the B half.
	k := len(c1)
	for p := 0; p < k; p++ {
		a, b := c1[p], c1[(p+1)%k]
		au, bu := insert(a, i, side), insert(b, i, side) // full-cube labels
		if (au == eu && bu == ev) || (au == ev && bu == eu) {
			continue // never remove the prescribed edge
		}
		aOp, bOp := au^(1<<i), bu^(1<<i)
		if faults[aOp] || faults[bOp] {
			continue
		}
		c2 := cycleThrough(n-1, fB, drop(aOp, i), drop(bOp, i))
		if c2 == nil {
			continue
		}
		return splice(c1, c2, p, i, side)
	}
	return nil
}

// chooseSplit picks a dimension ≠ j along which the faults differ if any
// such dimension exists (guaranteeing both halves get strictly fewer
// faults); otherwise any dimension ≠ j.
func chooseSplit(n int, faults map[int]bool, j int) int {
	var list []int
	for x := range faults {
		list = append(list, x)
	}
	sort.Ints(list)
	for i := 0; i < n; i++ {
		if i == j {
			continue
		}
		ones := 0
		for _, x := range list {
			ones += (x >> i) & 1
		}
		if ones > 0 && ones < len(list) {
			return i
		}
	}
	if j == 0 {
		return 1
	}
	return 0
}

// drop removes bit i from x (projecting into the subcube).
func drop(x, i int) int {
	low := x & (1<<i - 1)
	return (x>>(i+1))<<i | low
}

// insert re-inserts bit value side at position i.
func insert(x, i, side int) int {
	low := x & (1<<i - 1)
	return (x>>i)<<(i+1) | side<<i | low
}

// splice joins C1 (in the side half, projected coordinates) and C2 (in the
// opposite half, projected) by replacing the C1 edge at position p and the
// corresponding C2 edge with the two cross-dimension-i edges.
func splice(c1, c2 []int, p, i, side int) []int {
	k1, k2 := len(c1), len(c2)
	out := make([]int, 0, k1+k2)
	// P1: walk C1 from position p+1 around to p (endpoints b … a).
	for t := 0; t < k1; t++ {
		out = append(out, insert(c1[(p+1+t)%k1], i, side))
	}
	// out ends at a; continue from a's partner a′ through C2 to b′.
	last := out[len(out)-1] ^ (1 << i)
	lastProj := drop(last, i)
	q := -1
	for idx, v := range c2 {
		if v == lastProj {
			q = idx
			break
		}
	}
	if q < 0 {
		panic("hypercube: splice partner missing from C2 (unreachable)")
	}
	first := drop(out[0]^(1<<i), i) // b′, where C2 must end
	opp := side ^ 1
	if c2[(q+1)%k2] == first {
		// a′ is immediately followed by b′: traverse C2 backwards.
		for t := 0; t < k2; t++ {
			out = append(out, insert(c2[(q-t+k2)%k2], i, opp))
		}
	} else if c2[(q-1+k2)%k2] == first {
		for t := 0; t < k2; t++ {
			out = append(out, insert(c2[(q+t)%k2], i, opp))
		}
	} else {
		panic("hypercube: transferred edge not adjacent in C2 (unreachable)")
	}
	return out
}

// searchCycleThrough finds, by exhaustive DFS, a longest fault-free cycle
// through the edge (eu, ev), stopping early once the target length is
// reached.  Intended for n ≤ 5.
func searchCycleThrough(n int, faults map[int]bool, eu, ev, target int) []int {
	size := 1 << n
	onPath := make([]bool, size)
	var best []int
	path := []int{eu, ev}
	onPath[eu], onPath[ev] = true, true

	var dfs func(v int) bool
	dfs = func(v int) bool {
		if len(path) >= 4 && IsEdge(v, eu) && len(path) > len(best) {
			best = append(best[:0], path...)
			if len(best) >= target {
				return true
			}
		}
		for j := 0; j < n; j++ {
			w := v ^ (1 << j)
			if onPath[w] || faults[w] {
				continue
			}
			onPath[w] = true
			path = append(path, w)
			if dfs(w) {
				return true
			}
			path = path[:len(path)-1]
			onPath[w] = false
		}
		return false
	}
	dfs(ev)
	if len(best) == 0 {
		return nil
	}
	return append([]int(nil), best...)
}
