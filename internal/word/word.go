// Package word implements d-ary n-tuple arithmetic for De Bruijn networks.
//
// A node of the d-ary De Bruijn graph B(d,n) is an n-tuple x₁x₂…xₙ over the
// alphabet Z_d = {0, …, d−1}.  Following the paper (Rowley–Bose, §1.4 and
// §2.1), tuples are ordered by viewing them as base-d numbers with x₁ the
// most significant digit.  This package codes a tuple as the integer
//
//	x₁·d^(n−1) + x₂·d^(n−2) + … + xₙ
//
// in the range [0, dⁿ).  All operations are small, allocation-free integer
// manipulations so that graph algorithms built on top can run over millions
// of nodes without GC pressure.
package word

import (
	"fmt"
	"strings"
)

// Space describes the set of d-ary n-tuples.  It precomputes the powers of d
// used by digit and rotation arithmetic.  A Space is immutable after New and
// safe for concurrent use.
type Space struct {
	D    int   // alphabet size (radix), d ≥ 2
	N    int   // tuple length, n ≥ 1
	Size int   // dⁿ, the number of tuples
	pow  []int // pow[i] = dⁱ for 0 ≤ i ≤ n
}

// MaxSize bounds dⁿ so that node and edge codes (which need d^(n+1)) stay
// comfortably inside an int64.
const MaxSize = 1 << 40

// New returns the space of d-ary n-tuples.  It panics if d < 2, n < 1, or
// dⁿ⁺¹ would overflow MaxSize; sizes that large are far outside the scale of
// any experiment in the paper.
func New(d, n int) *Space {
	if d < 2 {
		panic(fmt.Sprintf("word: alphabet size d = %d must be at least 2", d))
	}
	if n < 1 {
		panic(fmt.Sprintf("word: tuple length n = %d must be at least 1", n))
	}
	pow := make([]int, n+2)
	pow[0] = 1
	for i := 1; i <= n+1; i++ {
		if pow[i-1] > MaxSize/d {
			panic(fmt.Sprintf("word: d^n too large (d = %d, n = %d)", d, n))
		}
		pow[i] = pow[i-1] * d
	}
	return &Space{D: d, N: n, Size: pow[n], pow: pow}
}

// Pow returns dⁱ for 0 ≤ i ≤ n+1.
func (s *Space) Pow(i int) int { return s.pow[i] }

// Digit returns the i'th digit xᵢ of x, 1-indexed from the left as in the
// paper: Digit(x, 1) = x₁ is the most significant digit.
func (s *Space) Digit(x, i int) int {
	return x / s.pow[s.N-i] % s.D
}

// Digits expands x into its n digits x₁…xₙ, filling dst if it has capacity.
func (s *Space) Digits(x int, dst []int) []int {
	dst = dst[:0]
	for i := 1; i <= s.N; i++ {
		dst = append(dst, s.Digit(x, i))
	}
	return dst
}

// FromDigits assembles a tuple from its digits x₁…xₙ.
func (s *Space) FromDigits(digits []int) int {
	if len(digits) != s.N {
		panic(fmt.Sprintf("word: FromDigits got %d digits, want %d", len(digits), s.N))
	}
	x := 0
	for _, v := range digits {
		if v < 0 || v >= s.D {
			panic(fmt.Sprintf("word: digit %d out of range [0,%d)", v, s.D))
		}
		x = x*s.D + v
	}
	return x
}

// Parse converts a string of decimal digit characters ('0'–'9', then
// 'a'–'z' for digits 10–35) into a tuple.  It is the inverse of String.
func (s *Space) Parse(t string) (int, error) {
	if len(t) != s.N {
		return 0, fmt.Errorf("word: %q has length %d, want %d", t, len(t), s.N)
	}
	x := 0
	for _, c := range t {
		var v int
		switch {
		case c >= '0' && c <= '9':
			v = int(c - '0')
		case c >= 'a' && c <= 'z':
			v = int(c-'a') + 10
		default:
			return 0, fmt.Errorf("word: invalid digit %q in %q", c, t)
		}
		if v >= s.D {
			return 0, fmt.Errorf("word: digit %d out of range for alphabet size %d", v, s.D)
		}
		x = x*s.D + v
	}
	return x, nil
}

// String renders x as its digit string x₁…xₙ (e.g. "020" in B(3,3)).
func (s *Space) String(x int) string {
	var b strings.Builder
	b.Grow(s.N)
	for i := 1; i <= s.N; i++ {
		v := s.Digit(x, i)
		if v < 10 {
			b.WriteByte(byte('0' + v))
		} else {
			b.WriteByte(byte('a' + v - 10))
		}
	}
	return b.String()
}

// RotL returns the left rotation π(x) = x₂…xₙx₁.
func (s *Space) RotL(x int) int {
	return x%s.pow[s.N-1]*s.D + x/s.pow[s.N-1]
}

// RotLBy returns πⁱ(x), the left rotation of x by i positions.  Negative i
// rotates right.
func (s *Space) RotLBy(x, i int) int {
	i %= s.N
	if i < 0 {
		i += s.N
	}
	// x₁…xₙ → x_{i+1}…xₙ x₁…x_i
	return x%s.pow[s.N-i]*s.pow[i] + x/s.pow[s.N-i]
}

// Weight returns wt(x) = x₁ + … + xₙ, the digit sum.
func (s *Space) Weight(x int) int {
	w := 0
	for i := 1; i <= s.N; i++ {
		w += s.Digit(x, i)
	}
	return w
}

// CountDigit returns wt_α(x), the number of occurrences of digit α in x.
func (s *Space) CountDigit(x, alpha int) int {
	c := 0
	for i := 1; i <= s.N; i++ {
		if s.Digit(x, i) == alpha {
			c++
		}
	}
	return c
}

// Repeat returns the constant tuple αⁿ = α…α.
func (s *Space) Repeat(alpha int) int {
	x := 0
	for i := 0; i < s.N; i++ {
		x = x*s.D + alpha
	}
	return x
}

// Alternating returns the tuple ᾱβ of §3.2.3: αβ…αβ when n is even and
// αβ…αβα when n is odd.
func (s *Space) Alternating(alpha, beta int) int {
	x := 0
	for i := 0; i < s.N; i++ {
		if i%2 == 0 {
			x = x*s.D + alpha
		} else {
			x = x*s.D + beta
		}
	}
	return x
}

// Successor returns the De Bruijn successor x₂…xₙα obtained by shifting in
// the digit α.
func (s *Space) Successor(x, alpha int) int {
	return x%s.pow[s.N-1]*s.D + alpha
}

// Predecessor returns the De Bruijn predecessor αx₁…xₙ₋₁.
func (s *Space) Predecessor(x, alpha int) int {
	return alpha*s.pow[s.N-1] + x/s.D
}

// Prefix returns the leading n−1 digits x₁…xₙ₋₁ as an (n−1)-digit code.
func (s *Space) Prefix(x int) int { return x / s.D }

// Suffix returns the trailing n−1 digits x₂…xₙ as an (n−1)-digit code.
func (s *Space) Suffix(x int) int { return x % s.pow[s.N-1] }

// IsEdge reports whether (x, y) is an edge of B(d,n), i.e. y = x₂…xₙα.
func (s *Space) IsEdge(x, y int) bool {
	return y/s.D == x%s.pow[s.N-1]
}

// Edge codes the edge from x to its successor y as the (n+1)-tuple
// x₁…xₙ·yₙ in [0, dⁿ⁺¹).  It panics if (x,y) is not an edge.
func (s *Space) Edge(x, y int) int {
	if !s.IsEdge(x, y) {
		panic(fmt.Sprintf("word: (%s,%s) is not a De Bruijn edge", s.String(x), s.String(y)))
	}
	return x*s.D + y%s.D
}

// EdgeEndpoints decodes an (n+1)-tuple edge code into its head and tail
// nodes: e = x₁…xₙ₊₁ represents the edge x₁…xₙ → x₂…xₙ₊₁.
func (s *Space) EdgeEndpoints(e int) (from, to int) {
	return e / s.D, e % s.pow[s.N]
}

// Period returns the least t > 0 with πᵗ(x) = x.  Necklace lengths are
// exactly the periods, and every period divides n (§4.1).
func (s *Space) Period(x int) int {
	y := s.RotL(x)
	t := 1
	for y != x {
		y = s.RotL(y)
		t++
	}
	return t
}

// NecklaceRep returns the minimal rotation of x, the canonical
// representative [y] of the necklace N(x) (§2.1: the minimal node viewed as
// a base-d number).
func (s *Space) NecklaceRep(x int) int {
	min := x
	y := s.RotL(x)
	for y != x {
		if y < min {
			min = y
		}
		y = s.RotL(y)
	}
	return min
}

// NecklaceNodes appends the nodes of N(x) in rotation order starting from
// the canonical representative, and returns the slice.  The necklace is a
// directed cycle in B(d,n): each node is followed by its left rotation.
func (s *Space) NecklaceNodes(x int, dst []int) []int {
	dst = dst[:0]
	rep := s.NecklaceRep(x)
	y := rep
	for {
		dst = append(dst, y)
		y = s.RotL(y)
		if y == rep {
			return dst
		}
	}
}
