package word

import (
	"testing"
	"testing/quick"
)

func TestDigitRoundTrip(t *testing.T) {
	for _, tc := range []struct{ d, n int }{{2, 3}, {3, 3}, {4, 5}, {5, 2}, {13, 2}} {
		s := New(tc.d, tc.n)
		buf := make([]int, 0, tc.n)
		for x := 0; x < s.Size; x++ {
			digits := s.Digits(x, buf)
			if got := s.FromDigits(digits); got != x {
				t.Fatalf("d=%d n=%d: FromDigits(Digits(%d)) = %d", tc.d, tc.n, x, got)
			}
		}
	}
}

func TestStringParse(t *testing.T) {
	s := New(3, 3)
	for x := 0; x < s.Size; x++ {
		str := s.String(x)
		got, err := s.Parse(str)
		if err != nil {
			t.Fatalf("Parse(%q): %v", str, err)
		}
		if got != x {
			t.Fatalf("Parse(String(%d)) = %d", x, got)
		}
	}
	if got := s.String(15); got != "120" {
		t.Errorf("String(15) = %q, want \"120\"", got)
	}
	if _, err := s.Parse("9"); err == nil {
		t.Error("Parse of wrong-length string should fail")
	}
	if _, err := s.Parse("009"); err == nil {
		t.Error("Parse of out-of-alphabet digit should fail")
	}
}

func TestStringLargeAlphabet(t *testing.T) {
	s := New(13, 2)
	x := s.FromDigits([]int{12, 10})
	if got := s.String(x); got != "ca" {
		t.Errorf("String = %q, want \"ca\"", got)
	}
	back, err := s.Parse("ca")
	if err != nil || back != x {
		t.Errorf("Parse(\"ca\") = %d, %v; want %d", back, err, x)
	}
}

func TestRotations(t *testing.T) {
	s := New(3, 4)
	x, _ := s.Parse("1120")
	want := [...]string{"1120", "1201", "2011", "0112", "1120"}
	y := x
	for i, w := range want {
		if got := s.String(y); got != w {
			t.Fatalf("rotation %d = %q, want %q", i, got, w)
		}
		y = s.RotL(y)
	}
	// π²(0001) = 0100 (§4.1 example).
	s2 := New(2, 4)
	v, _ := s2.Parse("0001")
	if got := s2.String(s2.RotLBy(v, 2)); got != "0100" {
		t.Errorf("π²(0001) = %q, want 0100", got)
	}
}

func TestRotLByMatchesRepeatedRotL(t *testing.T) {
	s := New(3, 5)
	for x := 0; x < s.Size; x += 7 {
		y := x
		for i := 0; i <= 2*s.N; i++ {
			if got := s.RotLBy(x, i); got != y {
				t.Fatalf("RotLBy(%d,%d) = %d, want %d", x, i, got, y)
			}
			if got := s.RotLBy(x, i-s.N); got != y {
				t.Fatalf("RotLBy(%d,%d) = %d, want %d", x, i-s.N, got, y)
			}
			y = s.RotL(y)
		}
	}
}

func TestWeights(t *testing.T) {
	s := New(3, 4)
	x, _ := s.Parse("1120")
	if got := s.Weight(x); got != 4 {
		t.Errorf("wt(1120) = %d, want 4", got)
	}
	for alpha, want := range map[int]int{0: 1, 1: 2, 2: 1} {
		if got := s.CountDigit(x, alpha); got != want {
			t.Errorf("wt_%d(1120) = %d, want %d", alpha, got, want)
		}
	}
}

func TestWeightInvariantUnderRotation(t *testing.T) {
	s := New(4, 5)
	f := func(raw uint32) bool {
		x := int(raw) % s.Size
		y := s.RotL(x)
		if s.Weight(x) != s.Weight(y) {
			return false
		}
		for a := 0; a < s.D; a++ {
			if s.CountDigit(x, a) != s.CountDigit(y, a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSuccessorPredecessor(t *testing.T) {
	s := New(3, 3)
	x, _ := s.Parse("020")
	succ, _ := s.Parse("201")
	if got := s.Successor(x, 1); got != succ {
		t.Errorf("Successor(020,1) = %s, want 201", s.String(got))
	}
	pred, _ := s.Parse("102")
	if got := s.Predecessor(x, 1); got != pred {
		t.Errorf("Predecessor(020,1) = %s, want 102", s.String(got))
	}
	// Successor and Predecessor are mutually inverse in the shift sense.
	for v := 0; v < s.Size; v++ {
		for a := 0; a < s.D; a++ {
			w := s.Successor(v, a)
			if s.Predecessor(w, s.Digit(v, 1)) != v {
				t.Fatalf("pred(succ) mismatch at %s", s.String(v))
			}
			if !s.IsEdge(v, w) {
				t.Fatalf("IsEdge(%s,%s) = false", s.String(v), s.String(w))
			}
		}
	}
}

func TestEdgeCodes(t *testing.T) {
	s := New(3, 3)
	x, _ := s.Parse("012")
	y, _ := s.Parse("122")
	e := s.Edge(x, y)
	from, to := s.EdgeEndpoints(e)
	if from != x || to != y {
		t.Errorf("EdgeEndpoints(Edge) = (%s,%s), want (012,122)", s.String(from), s.String(to))
	}
	// Every edge code in [0, d^{n+1}) decodes to a valid edge.
	for e := 0; e < s.Pow(s.N+1); e++ {
		f, g := s.EdgeEndpoints(e)
		if !s.IsEdge(f, g) {
			t.Fatalf("edge code %d decodes to non-edge (%s,%s)", e, s.String(f), s.String(g))
		}
	}
}

func TestRepeatAndAlternating(t *testing.T) {
	s := New(3, 4)
	if got := s.String(s.Repeat(2)); got != "2222" {
		t.Errorf("Repeat(2) = %q", got)
	}
	if got := s.String(s.Alternating(0, 1)); got != "0101" {
		t.Errorf("Alternating(0,1) = %q", got)
	}
	s5 := New(3, 5)
	if got := s5.String(s5.Alternating(1, 2)); got != "12121" {
		t.Errorf("odd-n Alternating(1,2) = %q", got)
	}
}

func TestPeriodAndNecklace(t *testing.T) {
	s := New(3, 4)
	x, _ := s.Parse("1120")
	if got := s.Period(x); got != 4 {
		t.Errorf("period(1120) = %d, want 4", got)
	}
	rep, _ := s.Parse("0112")
	if got := s.NecklaceRep(x); got != rep {
		t.Errorf("NecklaceRep(1120) = %s, want 0112", s.String(got))
	}
	nodes := s.NecklaceNodes(x, nil)
	want := []string{"0112", "1120", "1201", "2011"}
	if len(nodes) != len(want) {
		t.Fatalf("necklace has %d nodes, want %d", len(nodes), len(want))
	}
	for i, w := range want {
		if s.String(nodes[i]) != w {
			t.Errorf("necklace node %d = %s, want %s", i, s.String(nodes[i]), w)
		}
	}
	// Constant tuples have period 1.
	if got := s.Period(s.Repeat(2)); got != 1 {
		t.Errorf("period(2222) = %d, want 1", got)
	}
	// 1212 has period 2.
	if got := s.Period(s.Alternating(1, 2)); got != 2 {
		t.Errorf("period(1212) = %d, want 2", got)
	}
}

func TestPeriodDividesN(t *testing.T) {
	s := New(2, 12)
	for x := 0; x < s.Size; x += 11 {
		if s.N%s.Period(x) != 0 {
			t.Fatalf("period(%s) = %d does not divide %d", s.String(x), s.Period(x), s.N)
		}
	}
}

func TestNecklacePartition(t *testing.T) {
	// Necklaces partition the node set (§2.1): every node appears in the
	// necklace of its representative, and representatives are fixed points.
	s := New(3, 3)
	seen := make([]bool, s.Size)
	count := 0
	var buf []int
	for x := 0; x < s.Size; x++ {
		if s.NecklaceRep(x) != x {
			continue
		}
		count++
		buf = s.NecklaceNodes(x, buf)
		for _, v := range buf {
			if seen[v] {
				t.Fatalf("node %s in two necklaces", s.String(v))
			}
			seen[v] = true
		}
	}
	for x, ok := range seen {
		if !ok {
			t.Fatalf("node %s not covered", s.String(x))
		}
	}
	// B(3,3) has 11 necklaces: 3 of length 1 and 8 of length 3.
	if count != 11 {
		t.Errorf("B(3,3) has %d necklaces, want 11", count)
	}
}

func TestPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(1, 3) },
		func() { New(2, 0) },
		func() { New(2, 63) },
		func() { New(3, 3).FromDigits([]int{1, 2}) },
		func() { New(3, 3).FromDigits([]int{1, 2, 5}) },
		func() { s := New(3, 3); s.Edge(0, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func BenchmarkRotL(b *testing.B) {
	s := New(4, 10)
	x := s.Size / 3
	for i := 0; i < b.N; i++ {
		x = s.RotL(x)
	}
	_ = x
}

func BenchmarkNecklaceRep(b *testing.B) {
	s := New(4, 10)
	for i := 0; i < b.N; i++ {
		_ = s.NecklaceRep(i % s.Size)
	}
}
