package explore

import (
	"math/rand/v2"
	"testing"

	"debruijnring/internal/debruijn"
	"debruijnring/internal/hamilton"
)

// TestQuestion1CompositeD probes Chapter 5's first question on B(6,2):
// ψ(6)−1 = 0 and φ(6) = 1 only guarantee one edge fault, but does the
// graph in fact tolerate d−2 = 4?  Exhaustive search over random 4-edge
// fault sets finds a Hamiltonian cycle every time — supporting the
// conjecture on the smallest open instance.
func TestQuestion1CompositeD(t *testing.T) {
	const d, n = 6, 2
	g := debruijn.New(d, n)
	rng := rand.New(rand.NewPCG(6, 2))
	var sets [][][2]int
	trials := 15
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		set := make([][2]int, 0, d-2)
		seen := map[[2]int]bool{}
		for len(set) < d-2 {
			u := rng.IntN(g.Size)
			succ := g.Successors(u, nil)
			v := succ[rng.IntN(len(succ))]
			if u == v || seen[[2]int{u, v}] {
				continue // skip loops (they lie on no HC anyway)
			}
			seen[[2]int{u, v}] = true
			set = append(set, [2]int{u, v})
		}
		sets = append(sets, set)
	}
	// Also the adversarial set: d−2 of the non-loop edges into node 0…01.
	adv := make([][2]int, 0, d-2)
	for _, p := range g.Predecessors(1, nil)[:d-2] {
		adv = append(adv, [2]int{p, 1})
	}
	sets = append(sets, adv)

	tested, counter, err := Question1(d, n, sets)
	if err != nil {
		t.Fatal(err)
	}
	if counter != nil {
		t.Errorf("counterexample to Question 1 on B(6,2): %v", counter)
	}
	if tested != len(sets) {
		t.Errorf("tested %d of %d sets", tested, len(sets))
	}
}

func TestQuestion1Validation(t *testing.T) {
	if _, _, err := Question1(6, 2, [][][2]int{{{0, 1}}}); err == nil {
		t.Error("wrong fault-set size should error")
	}
	if _, _, err := Question1(6, 2, [][][2]int{{{0, 35}, {0, 1}, {0, 2}, {0, 3}}}); err == nil {
		t.Error("non-edge should error")
	}
}

// TestQuestion2SmallInstances decides the second question exhaustively on
// the smallest open instances: does B(d,n) admit d−1 disjoint HCs?
//   - B(3,2): the paper guarantees ψ(3) = 1; exhaustive search over all 24
//     HCs decides whether 2 disjoint ones exist.
//   - B(2,3) and B(2,4): d−1 = 1, trivially yes.
func TestQuestion2SmallInstances(t *testing.T) {
	g := debruijn.New(3, 2)
	fam := Question2(3, 2, 2)
	if fam == nil {
		t.Log("B(3,2): no 2 disjoint HCs exist (definitive negative for this instance)")
	} else {
		cycles := fam[0]
		if len(cycles) != 2 {
			t.Fatalf("witness family has %d cycles", len(cycles))
		}
		if !g.EdgeDisjoint(cycles...) {
			t.Fatal("witness family is not edge-disjoint")
		}
		for _, c := range cycles {
			if !g.IsHamiltonian(c) {
				t.Fatal("witness cycle not Hamiltonian")
			}
		}
		t.Logf("B(3,2): found d−1 = 2 disjoint HCs — exceeding the ψ(3) = 1 guarantee")
	}
	// Knowing [BBR93] (§3.2.4): B(d,2) admits φ(d) disjoint HCs, so
	// B(3,2) should admit φ(3) = 2.  Verify our search agrees.
	if fam == nil {
		t.Error("B(3,2) should admit 2 disjoint HCs by the [BBR93] result cited in §3.2.4")
	}
	// Sanity: asking for an impossible count fails.
	if Question2(2, 3, 2) != nil {
		t.Error("B(2,3) has only 2 HCs sharing edges; 2 disjoint ones cannot exist" +
			" (d−1 = 1 is the optimum)")
	}
}

// TestQuestion3UndirectedNodeFaults probes the third question: UB(d,n)
// with f < 2(d−1) node faults.  On B(3,2), 2(d−1)−1 = 3 faults: the
// directed guarantee covers only d−2 = 1.
func TestQuestion3UndirectedNodeFaults(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 2))
	trials := 12
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		faults := map[int]bool{}
		for len(faults) < 3 {
			faults[rng.IntN(9)] = true
		}
		var fs []int
		for x := range faults {
			fs = append(fs, x)
		}
		cycle, bound := Question3(3, 2, fs)
		if bound > 0 && len(cycle) < bound {
			t.Errorf("UB(3,2) with faults %v: longest cycle %d < dⁿ−nf = %d (candidate counterexample)",
				fs, len(cycle), bound)
		}
	}
}

// TestQuestion4UndirectedEdgeFaults probes the fourth question: UB(d,n)
// with 2(d−2) edge faults.  For d = 4, n = 2 that is 4 faults, double the
// directed tolerance.
func TestQuestion4UndirectedEdgeFaults(t *testing.T) {
	g := debruijn.New(4, 2)
	rng := rand.New(rand.NewPCG(4, 2))
	trials := 10
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		// 2(d−2) random undirected non-loop edges, at most one per node
		// pair, and never isolating a node (each node needs ≥ 2 live
		// incident edges for a Hamiltonian cycle to exist at all).
		var faults [][2]int
		used := map[[2]int]bool{}
		degLost := map[int]int{}
		for len(faults) < 2*(4-2) {
			u := rng.IntN(g.Size)
			nb := g.UndirectedNeighbors(u, nil)
			v := nb[rng.IntN(len(nb))]
			a, b := u, v
			if a > b {
				a, b = b, a
			}
			if used[[2]int{a, b}] {
				continue
			}
			if degLost[u]+2 > g.UndirectedDegree(u)-2 || degLost[v]+2 > g.UndirectedDegree(v)-2 {
				continue
			}
			used[[2]int{a, b}] = true
			degLost[u]++
			degLost[v]++
			faults = append(faults, [2]int{a, b})
		}
		hc := Question4(4, 2, faults)
		if hc == nil {
			t.Errorf("UB(4,2) with edge faults %v: no Hamiltonian cycle (candidate counterexample)", faults)
			continue
		}
		if !g.IsUndirectedCycle(hc) || len(hc) != g.Size {
			t.Fatal("witness is not a UB Hamiltonian cycle")
		}
	}
}

// TestPsiConsistency cross-checks: on instances where Question2 finds k
// disjoint HCs, k must be at least ψ(d) (our construction is a lower
// bound, the search is exact).
func TestPsiConsistency(t *testing.T) {
	for _, tc := range []struct{ d, n int }{{2, 3}, {2, 4}, {3, 2}} {
		k := hamilton.Psi(tc.d)
		if Question2(tc.d, tc.n, k) == nil {
			t.Errorf("B(%d,%d): exhaustive search contradicts ψ(%d) = %d", tc.d, tc.n, tc.d, k)
		}
	}
}
