// Package explore probes the open questions of Chapter 5 of Rowley–Bose on
// small instances by exhaustive search.  None of these computations prove
// the general statements — that is exactly why the paper leaves them open —
// but they certify the answers on every instance small enough to decide,
// which is the natural first step the chapter invites.
//
// The four questions:
//
//  1. Does B(d,n) admit a fault-free Hamiltonian cycle in the presence of
//     d−2 edge failures for ALL d (not just prime powers)?
//  2. Does B(d,n) admit d−1 disjoint Hamiltonian cycles (beyond the proven
//     power-of-two case)?
//  3. Does UB(d,n) admit a fault-free cycle of length ≥ dⁿ − nf with
//     f < 2(d−1) node failures (twice the directed tolerance)?
//  4. Does UB(d,n) admit a fault-free Hamiltonian cycle with 2(d−2) edge
//     failures?
package explore

import (
	"fmt"

	"debruijnring/internal/debruijn"
)

// Question1 checks, for a given (d,n) and every fault set drawn by the
// caller-supplied generator, whether B(d,n) retains a Hamiltonian cycle
// after removing f = d−2 edges.  It returns the number of fault sets
// tested and the first counterexample found (nil if none).
func Question1(d, n int, faultSets [][][2]int) (tested int, counterexample [][2]int, err error) {
	g := debruijn.New(d, n)
	for _, set := range faultSets {
		if len(set) != d-2 {
			return tested, nil, fmt.Errorf("explore: Question 1 wants exactly d−2 = %d edge faults, got %d", d-2, len(set))
		}
		bad := make(map[int]bool, len(set))
		for _, e := range set {
			if !g.IsEdge(e[0], e[1]) {
				return tested, nil, fmt.Errorf("explore: (%s,%s) is not an edge", g.String(e[0]), g.String(e[1]))
			}
			bad[g.Edge(e[0], e[1])] = true
		}
		tested++
		if g.FindHamiltonianAvoidingEdges(bad) == nil {
			return tested, set, nil
		}
	}
	return tested, nil, nil
}

// Question2 searches B(d,n) for k pairwise edge-disjoint Hamiltonian
// cycles by exhaustive backtracking over the full HC enumeration.  It
// returns a witness family of size k, or nil when none exists (a definitive
// negative for the instance).  Small graphs only.
func Question2(d, n, k int) [][][]int {
	g := debruijn.New(d, n)
	all := g.AllHamiltonianCycles(0)
	edgeSets := make([]map[int]bool, len(all))
	for i, hc := range all {
		es := make(map[int]bool, len(hc))
		for _, e := range g.CycleEdges(hc) {
			es[e] = true
		}
		edgeSets[i] = es
	}
	var chosen []int
	var pick func(from int) bool
	pick = func(from int) bool {
		if len(chosen) == k {
			return true
		}
		for i := from; i < len(all); i++ {
			ok := true
			for _, j := range chosen {
				if sharesEdge(edgeSets[i], edgeSets[j]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			chosen = append(chosen, i)
			if pick(i + 1) {
				return true
			}
			chosen = chosen[:len(chosen)-1]
		}
		return false
	}
	if !pick(0) {
		return nil
	}
	out := make([][][]int, 1)
	for _, i := range chosen {
		out[0] = append(out[0], all[i])
	}
	return out
}

func sharesEdge(a, b map[int]bool) bool {
	if len(a) > len(b) {
		a, b = b, a
	}
	for e := range a {
		if b[e] {
			return true
		}
	}
	return false
}

// Question3 checks whether UB(d,n) retains a cycle of length at least
// dⁿ − nf after the given node faults (f intended up to 2(d−1)−1).  It
// returns the longest surviving cycle.
func Question3(d, n int, faults []int) (cycle []int, bound int) {
	g := debruijn.New(d, n)
	fm := make(map[int]bool, len(faults))
	for _, x := range faults {
		fm[x] = true
	}
	return g.LongestUndirectedCycleAvoiding(fm), g.Size - n*len(faults)
}

// Question4 checks whether UB(d,n) retains a Hamiltonian cycle after the
// given undirected edge faults (intended up to 2(d−2)).
func Question4(d, n int, faults [][2]int) []int {
	g := debruijn.New(d, n)
	bad := make(map[[2]int]bool, len(faults))
	for _, e := range faults {
		a, b := e[0], e[1]
		if a > b {
			a, b = b, a
		}
		bad[[2]int{a, b}] = true
	}
	return g.FindUndirectedHamiltonianAvoidingEdges(bad)
}
