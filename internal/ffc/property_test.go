package ffc

import (
	"testing"
	"testing/quick"

	"debruijnring/internal/debruijn"
)

// Property: for any fault set drawn from random nodes, the FFC result is a
// valid cycle of B*, visits no faulty necklace, and its length plus the
// dead/stranded nodes accounts for the whole graph.
func TestPropertyEmbedInvariants(t *testing.T) {
	g := debruijn.New(3, 4)
	check := func(seed uint32, fCount uint8) bool {
		f := int(fCount % 4)
		rng := newTestRNG(int64(seed))
		faults := make([]int, f)
		for i := range faults {
			faults[i] = rng.IntN(g.Size)
		}
		res, err := Embed(g, faults)
		if err != nil {
			return f > 0 // only a fully dead graph may fail, needs faults
		}
		if !g.IsCycle(res.Cycle) || len(res.Cycle) != res.BStarSize {
			return false
		}
		for _, x := range res.Cycle {
			if res.FaultyNecklaces[g.NecklaceRep(x)] {
				return false
			}
		}
		// Accounting: |B*| + faulty-necklace nodes + stranded ≤ dⁿ with
		// stranded = dⁿ − |B*| − dead ≥ 0.
		return res.BStarSize+res.FaultyNodeCount <= g.Size
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the distributed implementation always agrees with the
// sequential one when rooted identically.
func TestPropertyDistributedEquivalence(t *testing.T) {
	g := debruijn.New(2, 6)
	check := func(seed uint32, fCount uint8) bool {
		f := int(fCount % 3)
		rng := newTestRNG(int64(seed))
		faults := make([]int, f)
		for i := range faults {
			faults[i] = rng.IntN(g.Size)
		}
		seq, err := Embed(g, faults)
		if err != nil {
			return true
		}
		dist, err := EmbedDistributedFrom(g, faults, seq.Root)
		if err != nil {
			return false
		}
		if len(dist.Cycle) != len(seq.Cycle) {
			return false
		}
		for i := range seq.Cycle {
			if dist.Cycle[i] != seq.Cycle[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: FaultFreePath output is always a simple path of ≤ 2n steps
// between its endpoints when the premise f ≤ d−2 holds.
func TestPropertyFaultFreePath(t *testing.T) {
	g := debruijn.New(5, 3)
	check := func(seed uint32) bool {
		rng := newTestRNG(int64(seed))
		faults := []int{rng.IntN(g.Size), rng.IntN(g.Size), rng.IntN(g.Size)}
		reps := FaultyNecklaces(g, faults)
		if len(reps) > g.D-2 {
			return true
		}
		bad := func(v int) bool { return reps[g.NecklaceRep(v)] }
		x, y := rng.IntN(g.Size), rng.IntN(g.Size)
		if bad(x) || bad(y) {
			return true
		}
		path, err := FaultFreePath(g, x, y, reps)
		if err != nil {
			return false
		}
		if len(path)-1 > 2*g.N || path[0] != x || path[len(path)-1] != y {
			return false
		}
		seen := map[int]bool{}
		for i, v := range path {
			if seen[v] || bad(v) {
				return false
			}
			seen[v] = true
			if i+1 < len(path) && !g.IsEdge(v, path[i+1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
