package ffc

import (
	"math/rand/v2"
	"strings"
	"testing"
)

// newTestRNG gives tests a deterministic source.
func newTestRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewPCG(uint64(seed), 0xdeadbeef))
}

// TestSimulateTable21Shape reproduces the qualitative content of Table 2.1
// (B(2,10)): with no faults the component is the whole 1024-node graph with
// eccentricity 10; for small f the average size tracks dⁿ − nf from above;
// sizes never fall below the largest-component lower bound observed by the
// paper; eccentricities stay O(n).
func TestSimulateTable21Shape(t *testing.T) {
	rows := Simulate(2, 10, []int{0, 1, 2, 5, 10}, 200, 1)
	r0 := rows[0]
	if r0.AvgSize != 1024 || r0.MaxSize != 1024 || r0.MinSize != 1024 {
		t.Errorf("f=0 row: %+v, want exact 1024", r0)
	}
	if r0.AvgEcc != 10 || r0.MaxEcc != 10 || r0.MinEcc != 10 {
		t.Errorf("f=0 eccentricity row: %+v, want exact 10 (the diameter n)", r0)
	}
	for _, row := range rows[1:] {
		// For f beyond d−2 the bound dⁿ−nf is no longer guaranteed, but the
		// paper's data tracks it within a few nodes; allow n of slack on the
		// average and 3n on the minimum (Table 2.1 itself dips 2 below the
		// bound at f=5).
		if row.AvgSize < float64(row.Bound-10) {
			t.Errorf("f=%d: avg size %.2f far below bound %d", row.F, row.AvgSize, row.Bound)
		}
		if row.MaxSize > 1024-row.F {
			t.Errorf("f=%d: max size %d impossible (> dⁿ − f)", row.F, row.MaxSize)
		}
		if row.MinSize < row.Bound-3*10 {
			t.Errorf("f=%d: min size %d far below bound %d", row.F, row.MinSize, row.Bound)
		}
		if row.MaxEcc > 4*10 {
			t.Errorf("f=%d: eccentricity %d not O(n)", row.F, row.MaxEcc)
		}
	}
	// Sizes strictly decrease with f on average.
	for i := 1; i < len(rows); i++ {
		if rows[i].AvgSize >= rows[i-1].AvgSize {
			t.Errorf("avg size not decreasing: f=%d %.2f, f=%d %.2f",
				rows[i-1].F, rows[i-1].AvgSize, rows[i].F, rows[i].AvgSize)
		}
	}
}

// TestSimulateTable22Shape mirrors Table 2.2 (B(4,5)): f=0 gives the full
// graph with eccentricity 5; with one fault the component always has
// exactly 1019 nodes (every necklace of B(4,5) has length 5 and the graph
// stays connected, d−2 = 2 ≥ 1).
func TestSimulateTable22Shape(t *testing.T) {
	rows := Simulate(4, 5, []int{0, 1, 2}, 150, 2)
	if rows[0].AvgSize != 1024 || rows[0].AvgEcc != 5 {
		t.Errorf("f=0 row: %+v", rows[0])
	}
	r1 := rows[1]
	if r1.MinSize != 1019 || r1.MaxSize != 1019 {
		t.Errorf("f=1 component must always have 1019 nodes, got min %d max %d", r1.MinSize, r1.MaxSize)
	}
	// Eccentricity with one fault is at most 2n = 10 (Proposition 2.2);
	// Table 2.2 observes max 6.
	if r1.MaxEcc > 10 {
		t.Errorf("f=1 eccentricity %d > 2n", r1.MaxEcc)
	}
	r2 := rows[2]
	if r2.MinSize < 1024-5*2 {
		t.Errorf("f=2: min size %d below d−2 guarantee %d", r2.MinSize, 1024-10)
	}
}

// TestDeadNodeAttribution verifies the paper's explanation for the excess
// of the average component size over dⁿ − nf: the true loss is the dead-
// necklace node count, which falls below nf as faults start sharing
// necklaces.  Up to a handful of stranded processors, size ≈ dⁿ − dead.
func TestDeadNodeAttribution(t *testing.T) {
	rows := Simulate(2, 10, []int{1, 10, 50}, 300, 4)
	for _, row := range rows {
		if row.AvgDeadNodes > float64(10*row.F) {
			t.Errorf("f=%d: avg dead %f exceeds nf", row.F, row.AvgDeadNodes)
		}
		predicted := 1024 - row.AvgDeadNodes
		if diff := predicted - row.AvgSize; diff < 0 || diff > 25 {
			t.Errorf("f=%d: avg size %.2f vs predicted %.2f (stranding %.2f out of range)",
				row.F, row.AvgSize, predicted, diff)
		}
	}
	// At f = 50 necklace sharing is visible: dead < nf strictly.
	if last := rows[len(rows)-1]; last.AvgDeadNodes >= float64(10*last.F) {
		t.Errorf("f=50: expected multi-fault necklaces (dead %.2f < 500)", last.AvgDeadNodes)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a := Simulate(2, 8, []int{3}, 50, 99)
	b := Simulate(2, 8, []int{3}, 50, 99)
	if a[0] != b[0] {
		t.Errorf("same seed, different results: %+v vs %+v", a[0], b[0])
	}
	c := Simulate(2, 8, []int{3}, 50, 100)
	if a[0] == c[0] {
		t.Error("different seeds should give different trials")
	}
}

func TestWriteTable(t *testing.T) {
	rows := Simulate(2, 6, []int{0, 1}, 20, 5)
	var sb strings.Builder
	WriteTable(&sb, 2, 6, rows)
	out := sb.String()
	for _, want := range []string{"B(2,6)", "Avg.Size", "d^n-nf"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func BenchmarkSimulateRow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Simulate(2, 10, []int{5}, 10, uint64(i))
	}
}
