package ffc

import (
	"fmt"
	"io"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"

	"debruijnring/internal/debruijn"
	"debruijnring/internal/dense"
)

// SimRow is one row of Table 2.1/2.2: statistics, over repeated random
// fault sets of size F, of the size of the component containing the fixed
// source R = 0…01 and of R's eccentricity within it.
type SimRow struct {
	F       int
	AvgSize float64
	MaxSize int
	MinSize int
	Bound   int // dⁿ − nf, the Proposition 2.2 guarantee
	AvgEcc  float64
	MaxEcc  int
	MinEcc  int

	// AvgDeadNodes is the mean number of processors on faulty necklaces.
	// The paper attributes the growing excess of AvgSize over dⁿ − nf to
	// multiple faults landing on one necklace; this column quantifies the
	// attribution: AvgSize ≈ dⁿ − AvgDeadNodes up to a handful of stranded
	// processors.
	AvgDeadNodes float64
}

// DefaultFaultCounts is the fault-count column of Tables 2.1 and 2.2.
var DefaultFaultCounts = []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 20, 30, 40, 50}

// Simulate reproduces the §2.5.2 experiment on B(d,n): for each fault count
// f, run the given number of trials; in each trial f distinct faulty nodes
// are drawn uniformly, their necklaces removed, and the size of the
// component containing R = 0…01 (or a neighbouring node when R's necklace
// is faulty, as in the paper) and the eccentricity of R in that component
// are recorded.
//
// Trials run across a worker pool sized by GOMAXPROCS; see SimulateWorkers
// for the determinism contract.
func Simulate(d, n int, faultCounts []int, trials int, seed uint64) []SimRow {
	return SimulateWorkers(d, n, faultCounts, trials, seed, 0)
}

// SimulateWorkers is Simulate with an explicit worker count (0 = GOMAXPROCS).
//
// Every trial owns an independent PCG stream derived from (seed, fault
// count, trial index), and the per-fault-count statistics are merged with
// commutative integer reductions, so the output is bit-identical for a
// fixed seed regardless of the worker count or the scheduling of trials
// onto workers.
func SimulateWorkers(d, n int, faultCounts []int, trials int, seed uint64, workers int) []SimRow {
	g := debruijn.New(d, n)
	r := g.Successor(g.Repeat(0), 1) // R = 0…01

	rows := make([]SimRow, len(faultCounts))
	for i, f := range faultCounts {
		rows[i] = SimRow{F: f, MinSize: g.Size + 1, MinEcc: g.Size + 1, Bound: UpperBound(g, f)}
	}
	total := len(faultCounts) * trials
	if total == 0 {
		return rows
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}

	reps := necklaceReps(g) // shared, read-only
	parts := make([][]simAgg, workers)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		part := make([]simAgg, len(faultCounts))
		for i := range part {
			part[i].minSize = g.Size + 1
			part[i].minEcc = g.Size + 1
		}
		parts[w] = part
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := &simScratch{g: g, reps: reps}
			pcg := rand.NewPCG(0, 0)
			rng := rand.New(pcg)
			for {
				j := int(cursor.Add(1)) - 1
				if j >= total {
					return
				}
				fi, ti := j/trials, j%trials
				f := faultCounts[fi]
				pcg.Seed(seed, trialStream(f, ti))
				size, ecc, dead := sc.oneTrial(r, f, rng)
				part[fi].record(size, ecc, dead)
			}
		}()
	}
	wg.Wait()

	for i := range rows {
		a := simAgg{minSize: g.Size + 1, minEcc: g.Size + 1}
		for w := range parts {
			a.merge(parts[w][i])
		}
		rows[i].MaxSize, rows[i].MinSize = a.maxSize, a.minSize
		rows[i].MaxEcc, rows[i].MinEcc = a.maxEcc, a.minEcc
		rows[i].AvgSize = float64(a.sumSize) / float64(trials)
		rows[i].AvgEcc = float64(a.sumEcc) / float64(trials)
		rows[i].AvgDeadNodes = float64(a.sumDead) / float64(trials)
	}
	return rows
}

// simAgg accumulates the order-independent statistics of one table row.
// All reductions (sum, min, max over integers) commute and associate
// exactly, which is what makes sharded simulation bit-reproducible.
type simAgg struct {
	sumSize, sumEcc, sumDead int64
	maxSize, maxEcc          int
	minSize, minEcc          int
}

func (a *simAgg) record(size, ecc, dead int) {
	a.sumSize += int64(size)
	a.sumEcc += int64(ecc)
	a.sumDead += int64(dead)
	if size > a.maxSize {
		a.maxSize = size
	}
	if size < a.minSize {
		a.minSize = size
	}
	if ecc > a.maxEcc {
		a.maxEcc = ecc
	}
	if ecc < a.minEcc {
		a.minEcc = ecc
	}
}

func (a *simAgg) merge(b simAgg) {
	a.sumSize += b.sumSize
	a.sumEcc += b.sumEcc
	a.sumDead += b.sumDead
	if b.maxSize > a.maxSize {
		a.maxSize = b.maxSize
	}
	if b.minSize < a.minSize {
		a.minSize = b.minSize
	}
	if b.maxEcc > a.maxEcc {
		a.maxEcc = b.maxEcc
	}
	if b.minEcc < a.minEcc {
		a.minEcc = b.minEcc
	}
}

// trialStream derives the PCG stream selector for one (fault count, trial)
// pair.  Streams depend only on these values — not on worker assignment —
// so any sharding of trials over workers draws identical fault sets.
func trialStream(f, trial int) uint64 {
	return 0x9e3779b97f4a7c15 ^ splitmix64(uint64(f)<<32^uint64(trial))
}

// splitmix64 is the SplitMix64 finalizer, the standard seed scrambler.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// simScratch carries one worker's reusable trial state: epoch-stamped
// dense sets and arrays reset in O(1) between trials, so a trial's only
// costs are the graph traversals themselves.
type simScratch struct {
	g    *debruijn.Graph
	reps []int32 // necklace representative per node (shared, read-only)

	drawn    dense.Set  // distinct fault draws
	faultRep dense.Set  // faulty necklace representatives
	comp     dense.Ints // component id per node
	sizes    []int32
	stack    []int32
	seen     dense.Set // nearest-component BFS visited
	vis      dense.Set // eccentricity BFS visited
	frontier []int32
	next     []int32
}

// oneTrial removes the necklaces of f random distinct faults and returns
// the size of the source component, the source's eccentricity in it, and
// the number of processors lost with faulty necklaces.
func (sc *simScratch) oneTrial(r, f int, rng *rand.Rand) (size, ecc, dead int) {
	g := sc.g
	d := g.D
	pivot := g.Pow(g.N - 1)

	sc.drawn.Reset(g.Size)
	sc.faultRep.Reset(g.Size)
	for drawn := 0; drawn < f; {
		x := rng.IntN(g.Size)
		if !sc.drawn.Add(x) {
			continue
		}
		drawn++
		if rep := int(sc.reps[x]); sc.faultRep.Add(rep) {
			dead += g.Period(rep)
		}
	}
	alive := func(x int) bool { return !sc.faultRep.Has(int(sc.reps[x])) }

	// Label all components of the surviving graph (both edge directions;
	// weak = strong connectivity here).
	sc.comp.Reset(g.Size)
	sc.sizes = sc.sizes[:0]
	for x := 0; x < g.Size; x++ {
		if !alive(x) || sc.comp.Has(x) {
			continue
		}
		id := int32(len(sc.sizes))
		sc.sizes = append(sc.sizes, 0)
		sc.stack = append(sc.stack[:0], int32(x))
		sc.comp.Set(x, id)
		for len(sc.stack) > 0 {
			v := int(sc.stack[len(sc.stack)-1])
			sc.stack = sc.stack[:len(sc.stack)-1]
			sc.sizes[id]++
			base := g.Suffix(v) * d
			pre := v / d
			for a := 0; a < d; a++ {
				if w := base + a; alive(w) && !sc.comp.Has(w) {
					sc.comp.Set(w, id)
					sc.stack = append(sc.stack, int32(w))
				}
			}
			for a := 0; a < d; a++ {
				if w := a*pivot + pre; alive(w) && !sc.comp.Has(w) {
					sc.comp.Set(w, id)
					sc.stack = append(sc.stack, int32(w))
				}
			}
		}
	}
	if len(sc.sizes) == 0 {
		return 0, 0, dead
	}

	src := r
	if !alive(src) {
		// The paper: "If R was in a faulty necklace, a neighboring node was
		// used instead."  Its tables never record a stranded source, so the
		// replacement is taken as the node of the largest surviving
		// component nearest to R (avoiding, e.g., the single node 0ⁿ that
		// is isolated exactly when N(0…01) itself fails — Proposition 2.3).
		largest := 0
		for id, s := range sc.sizes {
			if s > sc.sizes[largest] {
				largest = id
			}
		}
		src = sc.nearestInComponent(r, int32(largest))
		if src < 0 {
			return 0, 0, dead
		}
	}

	// Eccentricity of src: directed BFS within its component.
	id := sc.comp.At(src)
	sc.vis.Reset(g.Size)
	sc.vis.Add(src)
	sc.frontier = append(sc.frontier[:0], int32(src))
	depth := 0
	for len(sc.frontier) > 0 {
		sc.next = sc.next[:0]
		for _, v32 := range sc.frontier {
			v := int(v32)
			base := g.Suffix(v) * d
			for a := 0; a < d; a++ {
				w := base + a
				if w == v {
					continue
				}
				if cv, ok := sc.comp.Get(w); !ok || cv != id {
					continue
				}
				if sc.vis.Add(w) {
					sc.next = append(sc.next, int32(w))
				}
			}
		}
		if len(sc.next) > 0 {
			depth++
		}
		sc.frontier, sc.next = sc.next, sc.frontier
	}
	return int(sc.sizes[id]), depth, dead
}

// nearestInComponent returns the node of the given component closest to r
// (BFS over both edge directions through the full graph, dead nodes
// included as transit), ties broken toward smaller node values; −1 when the
// component is empty.
func (sc *simScratch) nearestInComponent(r int, id int32) int {
	g := sc.g
	d := g.D
	pivot := g.Pow(g.N - 1)
	sc.seen.Reset(g.Size)
	sc.seen.Add(r)
	if v, ok := sc.comp.Get(r); ok && v == id {
		return r
	}
	sc.frontier = append(sc.frontier[:0], int32(r))
	for len(sc.frontier) > 0 {
		sc.next = sc.next[:0]
		best := -1
		consider := func(w int) {
			if cv, ok := sc.comp.Get(w); ok && cv == id && (best == -1 || w < best) {
				best = w
			}
		}
		for _, v32 := range sc.frontier {
			v := int(v32)
			base := g.Suffix(v) * d
			pre := v / d
			for a := 0; a < d; a++ {
				if w := base + a; sc.seen.Add(w) {
					sc.next = append(sc.next, int32(w))
					consider(w)
				}
			}
			for a := 0; a < d; a++ {
				if w := a*pivot + pre; sc.seen.Add(w) {
					sc.next = append(sc.next, int32(w))
					consider(w)
				}
			}
		}
		if best >= 0 {
			return best
		}
		sc.frontier, sc.next = sc.next, sc.frontier
	}
	return -1
}

// WriteTable renders rows in the layout of Tables 2.1/2.2.
func WriteTable(w io.Writer, d, n int, rows []SimRow) {
	fmt.Fprintf(w, "Component size and eccentricity of R in B(%d,%d) with f random faults\n", d, n)
	fmt.Fprintf(w, "%4s %10s %9s %9s %9s %9s %8s %8s %10s\n",
		"f", "Avg.Size", "Max.Size", "Min.Size", "d^n-nf", "Avg.Ecc", "Max.Ecc", "Min.Ecc", "Avg.Dead")
	for _, r := range rows {
		fmt.Fprintf(w, "%4d %10.2f %9d %9d %9d %9.2f %8d %8d %10.2f\n",
			r.F, r.AvgSize, r.MaxSize, r.MinSize, r.Bound, r.AvgEcc, r.MaxEcc, r.MinEcc, r.AvgDeadNodes)
	}
}
