package ffc

import (
	"fmt"
	"io"
	"math/rand/v2"

	"debruijnring/internal/debruijn"
)

// SimRow is one row of Table 2.1/2.2: statistics, over repeated random
// fault sets of size F, of the size of the component containing the fixed
// source R = 0…01 and of R's eccentricity within it.
type SimRow struct {
	F       int
	AvgSize float64
	MaxSize int
	MinSize int
	Bound   int // dⁿ − nf, the Proposition 2.2 guarantee
	AvgEcc  float64
	MaxEcc  int
	MinEcc  int

	// AvgDeadNodes is the mean number of processors on faulty necklaces.
	// The paper attributes the growing excess of AvgSize over dⁿ − nf to
	// multiple faults landing on one necklace; this column quantifies the
	// attribution: AvgSize ≈ dⁿ − AvgDeadNodes up to a handful of stranded
	// processors.
	AvgDeadNodes float64
}

// DefaultFaultCounts is the fault-count column of Tables 2.1 and 2.2.
var DefaultFaultCounts = []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 20, 30, 40, 50}

// Simulate reproduces the §2.5.2 experiment on B(d,n): for each fault count
// f, run the given number of trials; in each trial f distinct faulty nodes
// are drawn uniformly, their necklaces removed, and the size of the
// component containing R = 0…01 (or a neighbouring node when R's necklace
// is faulty, as in the paper) and the eccentricity of R in that component
// are recorded.
func Simulate(d, n int, faultCounts []int, trials int, seed uint64) []SimRow {
	g := debruijn.New(d, n)
	r := g.Successor(g.Repeat(0), 1) // R = 0…01
	rng := rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
	rows := make([]SimRow, 0, len(faultCounts))
	for _, f := range faultCounts {
		row := SimRow{F: f, MinSize: g.Size + 1, MinEcc: g.Size + 1, Bound: UpperBound(g, f)}
		var sumSize, sumEcc, sumDead int64
		for trial := 0; trial < trials; trial++ {
			size, ecc, dead := oneTrial(g, r, f, rng)
			sumSize += int64(size)
			sumEcc += int64(ecc)
			sumDead += int64(dead)
			if size > row.MaxSize {
				row.MaxSize = size
			}
			if size < row.MinSize {
				row.MinSize = size
			}
			if ecc > row.MaxEcc {
				row.MaxEcc = ecc
			}
			if ecc < row.MinEcc {
				row.MinEcc = ecc
			}
		}
		row.AvgSize = float64(sumSize) / float64(trials)
		row.AvgEcc = float64(sumEcc) / float64(trials)
		row.AvgDeadNodes = float64(sumDead) / float64(trials)
		rows = append(rows, row)
	}
	return rows
}

// oneTrial removes the necklaces of f random distinct faults and returns
// the size of the source component, the source's eccentricity in it, and
// the number of processors lost with faulty necklaces.
func oneTrial(g *debruijn.Graph, r, f int, rng *rand.Rand) (size, ecc, dead int) {
	faults := make(map[int]bool, f)
	for len(faults) < f {
		faults[rng.IntN(g.Size)] = true
	}
	faultyReps := make(map[int]bool, f)
	for x := range faults {
		faultyReps[g.NecklaceRep(x)] = true
	}
	alive := func(x int) bool { return !faultyReps[g.NecklaceRep(x)] }
	for rep := range faultyReps {
		dead += g.Period(rep)
	}

	// Label all components of the surviving graph (BFS over both edge
	// directions; weak = strong connectivity here).
	compID := make([]int, g.Size)
	for i := range compID {
		compID[i] = -1
	}
	var compSizes []int
	var queue, buf []int
	for x := 0; x < g.Size; x++ {
		if !alive(x) || compID[x] != -1 {
			continue
		}
		id := len(compSizes)
		compSizes = append(compSizes, 0)
		compID[x] = id
		queue = append(queue[:0], x)
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			compSizes[id]++
			buf = g.Successors(v, buf)
			for _, w := range buf {
				if alive(w) && compID[w] == -1 {
					compID[w] = id
					queue = append(queue, w)
				}
			}
			buf = g.Predecessors(v, buf)
			for _, w := range buf {
				if alive(w) && compID[w] == -1 {
					compID[w] = id
					queue = append(queue, w)
				}
			}
		}
	}
	if len(compSizes) == 0 {
		return 0, 0, dead
	}

	src := r
	if !alive(src) {
		// The paper: "If R was in a faulty necklace, a neighboring node was
		// used instead."  Its tables never record a stranded source, so the
		// replacement is taken as the node of the largest surviving
		// component nearest to R (avoiding, e.g., the single node 0ⁿ that
		// is isolated exactly when N(0…01) itself fails — Proposition 2.3).
		largest := 0
		for id, s := range compSizes {
			if s > compSizes[largest] {
				largest = id
			}
		}
		src = nearestInComponent(g, r, largest, compID)
		if src < 0 {
			return 0, 0, dead
		}
	}

	// Eccentricity of src: directed BFS within its component.
	id := compID[src]
	dist := map[int]int{src: 0}
	frontier := []int{src}
	depth := 0
	for len(frontier) > 0 {
		var next []int
		for _, v := range frontier {
			buf = g.Successors(v, buf)
			for _, w := range buf {
				if w == v || compID[w] != id {
					continue
				}
				if _, ok := dist[w]; !ok {
					dist[w] = dist[v] + 1
					next = append(next, w)
				}
			}
		}
		if len(next) > 0 {
			depth++
		}
		frontier = next
	}
	return compSizes[id], depth, dead
}

// nearestInComponent returns the node of the given component closest to r
// (BFS over both edge directions through the full graph, dead nodes
// included as transit), ties broken toward smaller node values; −1 when the
// component is empty.
func nearestInComponent(g *debruijn.Graph, r, id int, compID []int) int {
	seen := map[int]bool{r: true}
	frontier := []int{r}
	var buf []int
	consider := func(w, best int) int {
		if compID[w] == id && (best == -1 || w < best) {
			return w
		}
		return best
	}
	if compID[r] == id {
		return r
	}
	for len(frontier) > 0 {
		var next []int
		best := -1
		for _, v := range frontier {
			buf = g.Successors(v, buf)
			for _, w := range buf {
				if !seen[w] {
					seen[w] = true
					next = append(next, w)
					best = consider(w, best)
				}
			}
			buf = g.Predecessors(v, buf)
			for _, w := range buf {
				if !seen[w] {
					seen[w] = true
					next = append(next, w)
					best = consider(w, best)
				}
			}
		}
		if best >= 0 {
			return best
		}
		frontier = next
	}
	return -1
}

// WriteTable renders rows in the layout of Tables 2.1/2.2.
func WriteTable(w io.Writer, d, n int, rows []SimRow) {
	fmt.Fprintf(w, "Component size and eccentricity of R in B(%d,%d) with f random faults\n", d, n)
	fmt.Fprintf(w, "%4s %10s %9s %9s %9s %9s %8s %8s %10s\n",
		"f", "Avg.Size", "Max.Size", "Min.Size", "d^n-nf", "Avg.Ecc", "Max.Ecc", "Min.Ecc", "Avg.Dead")
	for _, r := range rows {
		fmt.Fprintf(w, "%4d %10.2f %9d %9d %9d %9.2f %8d %8d %10.2f\n",
			r.F, r.AvgSize, r.MaxSize, r.MinSize, r.Bound, r.AvgEcc, r.MaxEcc, r.MinEcc, r.AvgDeadNodes)
	}
}
