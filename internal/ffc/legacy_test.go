package ffc

// This file pins the dense-kernel rewrite to the original map-based
// implementations: the pre-rewrite bookkeeping (map[int]int distances,
// map[int]bool visited sets) is preserved here verbatim as a test-only
// reference, and the property tests below assert that the epoch-stamped
// flat-array kernels produce byte-identical results across randomized
// (d, n, f, seed) grids.

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"testing"

	"debruijnring/internal/debruijn"
)

// embedLegacy is the pre-rewrite Embed: map-based broadcast, tree
// derivation, override table and successor walk.
func embedLegacy(g *debruijn.Graph, faults []int) (*Result, error) {
	faultyReps := FaultyNecklaces(g, faults)
	alive := func(x int) bool { return !faultyReps[g.NecklaceRep(x)] }

	comp, err := LargestComponent(g, alive)
	if err != nil {
		return nil, err
	}
	root := comp.MinNode

	res := &Result{
		Root:            root,
		BStarSize:       len(comp.Nodes),
		FaultyNecklaces: faultyReps,
	}
	for rep := range faultyReps {
		res.FaultyNodeCount += g.Period(rep)
	}

	dist, parent, ecc := broadcastTreeLegacy(g, root, comp.Member)
	res.Eccentricity = ecc

	tree, err := necklaceTreeLegacy(g, root, comp, dist, parent)
	if err != nil {
		return nil, err
	}
	res.Tree = tree

	res.Overrides = modifiedTreeOverridesLegacy(g, tree)

	cycle, err := walkLegacy(g, root, res.Overrides, len(comp.Nodes))
	if err != nil {
		return nil, err
	}
	res.Cycle = cycle
	return res, nil
}

func broadcastTreeLegacy(g *debruijn.Graph, root int, member func(int) bool) (dist map[int]int, parent map[int]int, ecc int) {
	dist = map[int]int{root: 0}
	parent = make(map[int]int)
	frontier := []int{root}
	var buf []int
	for len(frontier) > 0 {
		var next []int
		for _, v := range frontier {
			buf = g.Successors(v, buf)
			for _, w := range buf {
				if w == v || !member(w) {
					continue
				}
				if _, ok := dist[w]; !ok {
					dist[w] = dist[v] + 1
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	for x, dx := range dist {
		if dx > ecc {
			ecc = dx
		}
		if x == root {
			continue
		}
		best := -1
		buf = g.Predecessors(x, buf)
		for _, p := range buf {
			if dp, ok := dist[p]; ok && dp == dx-1 && (best == -1 || p < best) {
				best = p
			}
		}
		if best == -1 {
			panic("ffc: BFS node with no parent (unreachable)")
		}
		parent[x] = best
	}
	return dist, parent, ecc
}

func necklaceTreeLegacy(g *debruijn.Graph, root int, comp *Component, dist, parent map[int]int) (map[int]TreeEdge, error) {
	rootRep := g.NecklaceRep(root)
	if rootRep != root {
		return nil, fmt.Errorf("ffc: root %s is not a necklace representative", g.String(root))
	}
	earliest := make(map[int]int) // rep → Y
	for _, x := range comp.Nodes {
		rep := g.NecklaceRep(x)
		y, ok := earliest[rep]
		if !ok || dist[x] < dist[y] || (dist[x] == dist[y] && x < y) {
			earliest[rep] = x
		}
	}
	tree := make(map[int]TreeEdge, len(earliest)-1)
	for rep, y := range earliest {
		if rep == rootRep {
			continue
		}
		p, ok := parent[y]
		if !ok {
			return nil, fmt.Errorf("ffc: earliest node %s of necklace [%s] has no broadcast parent", g.String(y), g.String(rep))
		}
		w := g.Prefix(y)
		parentRep := g.NecklaceRep(p)
		if parentRep == rep {
			return nil, fmt.Errorf("ffc: necklace [%s] would parent itself", g.String(rep))
		}
		tree[rep] = TreeEdge{Parent: parentRep, W: w}
	}
	return tree, nil
}

func modifiedTreeOverridesLegacy(g *debruijn.Graph, tree map[int]TreeEdge) map[int]int {
	stars := make(map[int][]int)
	parents := make(map[int]int)
	for child, e := range tree {
		stars[e.W] = append(stars[e.W], child)
		parents[e.W] = e.Parent
	}
	overrides := make(map[int]int)
	for w, members := range stars {
		members = append(members, parents[w])
		sort.Ints(members)
		k := len(members)
		for i, rep := range members {
			next := members[(i+1)%k]
			out := suffixNode(g, rep, w)
			in := prefixNode(g, next, w)
			if out < 0 || in < 0 {
				panic("ffc: star member lacks a w-node (unreachable)")
			}
			overrides[out] = in
		}
	}
	return overrides
}

func walkLegacy(g *debruijn.Graph, root int, overrides map[int]int, want int) ([]int, error) {
	cycle := make([]int, 0, want)
	x := root
	for {
		cycle = append(cycle, x)
		next, ok := overrides[x]
		if !ok {
			next = g.RotL(x)
		}
		if next == root {
			break
		}
		if len(cycle) > want {
			return nil, fmt.Errorf("ffc: successor walk exceeded component size %d without closing", want)
		}
		x = next
	}
	if len(cycle) != want {
		return nil, fmt.Errorf("ffc: walk closed after %d nodes, want %d (cycle not Hamiltonian in B*)", len(cycle), want)
	}
	return cycle, nil
}

// oneTrialLegacy is the pre-rewrite trial kernel: map-based fault sets,
// component labeling and BFS bookkeeping, identical RNG consumption.
func oneTrialLegacy(g *debruijn.Graph, r, f int, rng *rand.Rand) (size, ecc, dead int) {
	faults := make(map[int]bool, f)
	for len(faults) < f {
		faults[rng.IntN(g.Size)] = true
	}
	faultyReps := make(map[int]bool, f)
	for x := range faults {
		faultyReps[g.NecklaceRep(x)] = true
	}
	alive := func(x int) bool { return !faultyReps[g.NecklaceRep(x)] }
	for rep := range faultyReps {
		dead += g.Period(rep)
	}

	compID := make([]int, g.Size)
	for i := range compID {
		compID[i] = -1
	}
	var compSizes []int
	var queue, buf []int
	for x := 0; x < g.Size; x++ {
		if !alive(x) || compID[x] != -1 {
			continue
		}
		id := len(compSizes)
		compSizes = append(compSizes, 0)
		compID[x] = id
		queue = append(queue[:0], x)
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			compSizes[id]++
			buf = g.Successors(v, buf)
			for _, w := range buf {
				if alive(w) && compID[w] == -1 {
					compID[w] = id
					queue = append(queue, w)
				}
			}
			buf = g.Predecessors(v, buf)
			for _, w := range buf {
				if alive(w) && compID[w] == -1 {
					compID[w] = id
					queue = append(queue, w)
				}
			}
		}
	}
	if len(compSizes) == 0 {
		return 0, 0, dead
	}

	src := r
	if !alive(src) {
		largest := 0
		for id, s := range compSizes {
			if s > compSizes[largest] {
				largest = id
			}
		}
		src = nearestInComponentLegacy(g, r, largest, compID)
		if src < 0 {
			return 0, 0, dead
		}
	}

	id := compID[src]
	dist := map[int]int{src: 0}
	frontier := []int{src}
	depth := 0
	for len(frontier) > 0 {
		var next []int
		for _, v := range frontier {
			buf = g.Successors(v, buf)
			for _, w := range buf {
				if w == v || compID[w] != id {
					continue
				}
				if _, ok := dist[w]; !ok {
					dist[w] = dist[v] + 1
					next = append(next, w)
				}
			}
		}
		if len(next) > 0 {
			depth++
		}
		frontier = next
	}
	return compSizes[id], depth, dead
}

func nearestInComponentLegacy(g *debruijn.Graph, r, id int, compID []int) int {
	seen := map[int]bool{r: true}
	frontier := []int{r}
	var buf []int
	consider := func(w, best int) int {
		if compID[w] == id && (best == -1 || w < best) {
			return w
		}
		return best
	}
	if compID[r] == id {
		return r
	}
	for len(frontier) > 0 {
		var next []int
		best := -1
		for _, v := range frontier {
			buf = g.Successors(v, buf)
			for _, w := range buf {
				if !seen[w] {
					seen[w] = true
					next = append(next, w)
					best = consider(w, best)
				}
			}
			buf = g.Predecessors(v, buf)
			for _, w := range buf {
				if !seen[w] {
					seen[w] = true
					next = append(next, w)
					best = consider(w, best)
				}
			}
		}
		if best >= 0 {
			return best
		}
		frontier = next
	}
	return -1
}

// simulateLegacy drives the map-based trial kernel through the same
// deterministic per-trial stream scheme as SimulateWorkers, sequentially.
func simulateLegacy(d, n int, faultCounts []int, trials int, seed uint64) []SimRow {
	g := debruijn.New(d, n)
	r := g.Successor(g.Repeat(0), 1)
	pcg := rand.NewPCG(0, 0)
	rng := rand.New(pcg)
	rows := make([]SimRow, 0, len(faultCounts))
	for _, f := range faultCounts {
		row := SimRow{F: f, MinSize: g.Size + 1, MinEcc: g.Size + 1, Bound: UpperBound(g, f)}
		var sumSize, sumEcc, sumDead int64
		for trial := 0; trial < trials; trial++ {
			pcg.Seed(seed, trialStream(f, trial))
			size, ecc, dead := oneTrialLegacy(g, r, f, rng)
			sumSize += int64(size)
			sumEcc += int64(ecc)
			sumDead += int64(dead)
			if size > row.MaxSize {
				row.MaxSize = size
			}
			if size < row.MinSize {
				row.MinSize = size
			}
			if ecc > row.MaxEcc {
				row.MaxEcc = ecc
			}
			if ecc < row.MinEcc {
				row.MinEcc = ecc
			}
		}
		row.AvgSize = float64(sumSize) / float64(trials)
		row.AvgEcc = float64(sumEcc) / float64(trials)
		row.AvgDeadNodes = float64(sumDead) / float64(trials)
		rows = append(rows, row)
	}
	return rows
}

// equalResults compares every exported field of two embeddings.
func equalResults(a, b *Result) bool {
	if a.Root != b.Root || a.BStarSize != b.BStarSize || a.Eccentricity != b.Eccentricity ||
		a.FaultyNodeCount != b.FaultyNodeCount {
		return false
	}
	if len(a.Cycle) != len(b.Cycle) {
		return false
	}
	for i := range a.Cycle {
		if a.Cycle[i] != b.Cycle[i] {
			return false
		}
	}
	if len(a.FaultyNecklaces) != len(b.FaultyNecklaces) {
		return false
	}
	for k, v := range a.FaultyNecklaces {
		if b.FaultyNecklaces[k] != v {
			return false
		}
	}
	if len(a.Tree) != len(b.Tree) {
		return false
	}
	for k, v := range a.Tree {
		if b.Tree[k] != v {
			return false
		}
	}
	if len(a.Overrides) != len(b.Overrides) {
		return false
	}
	for k, v := range a.Overrides {
		if b.Overrides[k] != v {
			return false
		}
	}
	return true
}

// TestDenseEmbedMatchesLegacy sweeps randomized (d, n, f, seed) grids and
// asserts the dense Embedder reproduces the legacy map implementation
// field for field, including the reuse of one Embedder across runs.
func TestDenseEmbedMatchesLegacy(t *testing.T) {
	grids := []struct{ d, n int }{{2, 6}, {2, 8}, {3, 4}, {4, 3}, {5, 2}}
	for _, gr := range grids {
		g := debruijn.New(gr.d, gr.n)
		em := NewEmbedder(g) // reused across every case on this graph
		for f := 0; f <= 4; f++ {
			for seed := int64(0); seed < 6; seed++ {
				rng := newTestRNG(seed*1000 + int64(f))
				faults := make([]int, f)
				for i := range faults {
					faults[i] = rng.IntN(g.Size)
				}
				want, wantErr := embedLegacy(g, faults)
				got, gotErr := em.Embed(faults)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("B(%d,%d) faults %v: legacy err %v, dense err %v",
						gr.d, gr.n, faults, wantErr, gotErr)
				}
				if wantErr != nil {
					if wantErr.Error() != gotErr.Error() {
						t.Fatalf("B(%d,%d) faults %v: error mismatch %q vs %q",
							gr.d, gr.n, faults, wantErr, gotErr)
					}
					continue
				}
				if !equalResults(want, got) {
					t.Fatalf("B(%d,%d) faults %v: dense result diverges\nlegacy: %+v\ndense:  %+v",
						gr.d, gr.n, faults, want, got)
				}
			}
		}
	}
}

// TestDenseTrialMatchesLegacy asserts the dense trial kernel consumes the
// RNG identically to the map kernel and returns the same statistics.
func TestDenseTrialMatchesLegacy(t *testing.T) {
	grids := []struct{ d, n int }{{2, 8}, {3, 4}, {4, 5}}
	for _, gr := range grids {
		g := debruijn.New(gr.d, gr.n)
		r := g.Successor(g.Repeat(0), 1)
		sc := &simScratch{g: g, reps: necklaceReps(g)}
		for f := 0; f <= 12; f += 3 {
			for seed := uint64(0); seed < 5; seed++ {
				rngA := rand.New(rand.NewPCG(seed, 42))
				rngB := rand.New(rand.NewPCG(seed, 42))
				s1, e1, d1 := oneTrialLegacy(g, r, f, rngA)
				s2, e2, d2 := sc.oneTrial(r, f, rngB)
				if s1 != s2 || e1 != e2 || d1 != d2 {
					t.Fatalf("B(%d,%d) f=%d seed=%d: legacy (%d,%d,%d) vs dense (%d,%d,%d)",
						gr.d, gr.n, f, seed, s1, e1, d1, s2, e2, d2)
				}
				// Both kernels must leave the shared stream in the same
				// place: the next draws have to agree.
				if a, b := rngA.Uint64(), rngB.Uint64(); a != b {
					t.Fatalf("B(%d,%d) f=%d seed=%d: RNG consumption diverged", gr.d, gr.n, f, seed)
				}
			}
		}
	}
}

// TestSimulateMatchesLegacyTables asserts the sharded dense Simulate
// reproduces the sequential map-based tables byte for byte.
func TestSimulateMatchesLegacyTables(t *testing.T) {
	counts := []int{0, 1, 3, 10}
	want := simulateLegacy(2, 8, counts, 40, 7)
	for _, workers := range []int{1, 4, 8} {
		got := SimulateWorkers(2, 8, counts, 40, 7, workers)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("workers=%d row %d: legacy %+v vs dense %+v", workers, i, want[i], got[i])
			}
		}
	}
}

// TestSimulateWorkerInvariance pins the determinism contract: identical
// output for workers ∈ {1, 4, 8} at a fixed seed.
func TestSimulateWorkerInvariance(t *testing.T) {
	counts := []int{0, 2, 5, 20}
	base := SimulateWorkers(4, 5, counts, 30, 1991, 1)
	for _, workers := range []int{4, 8} {
		rows := SimulateWorkers(4, 5, counts, 30, 1991, workers)
		for i := range base {
			if rows[i] != base[i] {
				t.Fatalf("workers=%d row %d: %+v != %+v", workers, i, rows[i], base[i])
			}
		}
	}
}
