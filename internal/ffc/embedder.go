package ffc

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"debruijnring/internal/debruijn"
	"debruijnring/internal/dense"
)

// Embedder runs the FFC algorithm on one graph with reusable dense
// scratch: all per-run bookkeeping (visited stamps, distances, component
// ids, successor overrides) lives in flat epoch-stamped arrays sized by
// g.Size, so repeated embeddings allocate only their Result.  The
// necklace representative of every node is precomputed once, turning the
// alive-necklace test from an O(n) rotation scan into one array load.
//
// An Embedder is NOT safe for concurrent use; give each goroutine its
// own (topology.DeBruijn keeps a sync.Pool of them).  The one-shot Embed
// function remains the convenience front-end.
type Embedder struct {
	g    *debruijn.Graph
	reps []int32 // necklace representative per node

	// Workers bounds the frontier parallelism of the Step 1.1 broadcast
	// BFS: 1 (or negative) keeps the level scan serial, 0 uses
	// GOMAXPROCS, anything else is the worker count.  Output is
	// bit-identical for every setting — workers scan disjoint frontier
	// segments and their candidate buffers are merged in segment order,
	// which reproduces the serial discovery order exactly (the Simulate
	// determinism recipe) — so Workers is purely a latency knob.
	Workers int

	faultRep  dense.Set  // faulty necklace representatives
	comp      dense.Ints // component id per node
	compSizes []int32
	compMins  []int32
	stack     []int32
	dist      dense.Ints // broadcast distance per node
	order     []int32    // BFS visit order (level order)
	scanBufs  [][]int32  // per-worker next-frontier candidate buffers
	earliest  dense.Ints // necklace rep → earliest-informed node Y
	repList   []int32    // surviving necklace reps in ascending order
	ov        dense.Ints // Step-3 successor overrides, node → node
	stars     []starEdge
	members   []int

	// parallelFrontier overrides the frontier size at which a level is
	// worth sharding; 0 means defaultParallelFrontier.  Tests lower it
	// to drive the worker pool on small instances.
	parallelFrontier int
}

// defaultParallelFrontier is the frontier size below which a level is
// scanned inline: sharding a few hundred nodes costs more in goroutine
// handoff than the scan itself, and small instances (every B(d,n) under
// ~64k nodes never grows a frontier this large) stay on the exact serial
// fast path at any Workers setting.
const defaultParallelFrontier = 2048

// starEdge is one tree edge flattened for Step-2 grouping by label.
type starEdge struct{ w, child, parent int32 }

// NewEmbedder returns an Embedder for g.  Construction costs one O(dⁿ)
// pass to tabulate necklace representatives; everything else is lazily
// sized on first use.
func NewEmbedder(g *debruijn.Graph) *Embedder {
	return &Embedder{g: g, reps: necklaceReps(g)}
}

// necklaceReps tabulates NecklaceRep for every node in O(dⁿ) total: an
// ascending scan meets each necklace first at its minimal member, which
// is the representative of the whole rotation orbit.
func necklaceReps(g *debruijn.Graph) []int32 {
	reps := make([]int32, g.Size)
	for i := range reps {
		reps[i] = -1
	}
	for x := 0; x < g.Size; x++ {
		if reps[x] >= 0 {
			continue
		}
		y := x
		for {
			reps[y] = int32(x)
			y = g.RotL(y)
			if y == x {
				break
			}
		}
	}
	return reps
}

// Rep returns the necklace representative of x from the precomputed
// table.
func (e *Embedder) Rep(x int) int { return int(e.reps[x]) }

// Embed runs the FFC algorithm for the given faulty nodes, equivalent to
// the package-level Embed but reusing the receiver's scratch arrays.
func (e *Embedder) Embed(faults []int) (*Result, error) {
	g := e.g
	d := g.D
	pivot := g.Pow(g.N - 1) // leading-digit stride for predecessor arithmetic

	// Step 0: mark faulty necklaces.
	e.faultRep.Reset(g.Size)
	res := &Result{FaultyNecklaces: make(map[int]bool, len(faults))}
	for _, f := range faults {
		if f < 0 || f >= g.Size {
			panic(fmt.Sprintf("ffc: fault %d out of range", f))
		}
		rep := int(e.reps[f])
		if e.faultRep.Add(rep) {
			res.FaultyNecklaces[rep] = true
			res.FaultyNodeCount += g.Period(rep)
		}
	}
	alive := func(x int) bool { return !e.faultRep.Has(int(e.reps[x])) }

	// Largest surviving component (both edge directions; weak = strong
	// connectivity because whole necklaces are removed).
	e.comp.Reset(g.Size)
	e.compSizes = e.compSizes[:0]
	e.compMins = e.compMins[:0]
	for x := 0; x < g.Size; x++ {
		if !alive(x) || e.comp.Has(x) {
			continue
		}
		id := int32(len(e.compSizes))
		e.compSizes = append(e.compSizes, 0)
		e.compMins = append(e.compMins, int32(x))
		e.stack = append(e.stack[:0], int32(x))
		e.comp.Set(x, id)
		for len(e.stack) > 0 {
			v := int(e.stack[len(e.stack)-1])
			e.stack = e.stack[:len(e.stack)-1]
			e.compSizes[id]++
			base := g.Suffix(v) * d
			pre := v / d
			for a := 0; a < d; a++ {
				if w := base + a; alive(w) && !e.comp.Has(w) {
					e.comp.Set(w, id)
					e.stack = append(e.stack, int32(w))
				}
			}
			for a := 0; a < d; a++ {
				if w := a*pivot + pre; alive(w) && !e.comp.Has(w) {
					e.comp.Set(w, id)
					e.stack = append(e.stack, int32(w))
				}
			}
		}
	}
	if len(e.compSizes) == 0 {
		return nil, errors.New("ffc: every necklace is faulty; no component survives")
	}
	best := 0
	for id := 1; id < len(e.compSizes); id++ {
		if e.compSizes[id] > e.compSizes[best] {
			best = id
		}
	}
	bestID := int32(best)
	root := int(e.compMins[best])
	want := int(e.compSizes[best])
	res.Root = root
	res.BStarSize = want

	// Step 1.1: broadcast from R.  Level-synchronous BFS along directed
	// edges within B*; the visit order doubles as the node list for the
	// passes below.  Large frontiers are sharded across a worker pool
	// (see broadcastLevel); the eccentricity is the depth of the last
	// non-empty level, tracked explicitly so no frontier reordering can
	// silently misreport it.
	res.Eccentricity = e.broadcast(root, bestID)

	// parentOf mirrors the Step 1.1 tie-break: the minimal predecessor
	// one level closer to R.  Computed on demand — only the
	// earliest-informed node of each necklace needs its parent.
	parentOf := func(x int) int {
		dx, ok := e.dist.Get(x)
		if !ok {
			return -1
		}
		pre := x / d
		for a := 0; a < d; a++ {
			p := a*pivot + pre
			if dp, ok := e.dist.Get(p); ok && dp == dx-1 {
				return p
			}
		}
		return -1
	}

	// Step 1.2: the necklace spanning tree T.  An ascending scan over B*
	// meets each necklace first at its representative, so repList comes
	// out sorted; the earliest-informed node Y minimizes (dist, node).
	if int(e.reps[root]) != root {
		return nil, fmt.Errorf("ffc: root %s is not a necklace representative", g.String(root))
	}
	e.earliest.Reset(g.Size)
	e.repList = e.repList[:0]
	for x := 0; x < g.Size; x++ {
		if id, ok := e.comp.Get(x); !ok || id != bestID {
			continue
		}
		rep := int(e.reps[x])
		y, ok := e.earliest.Get(rep)
		if !ok {
			e.earliest.Set(rep, int32(x))
			e.repList = append(e.repList, int32(rep))
			continue
		}
		if distOrZero(&e.dist, x) < distOrZero(&e.dist, int(y)) {
			e.earliest.Set(rep, int32(x))
		}
	}
	tree := make(map[int]TreeEdge, len(e.repList)-1)
	e.stars = e.stars[:0]
	for _, rep32 := range e.repList {
		rep := int(rep32)
		if rep == root {
			continue
		}
		y := int(e.earliest.At(rep))
		p := parentOf(y)
		if p < 0 {
			return nil, fmt.Errorf("ffc: earliest node %s of necklace [%s] has no broadcast parent", g.String(y), g.String(rep))
		}
		w := g.Prefix(y) // Y = wα ⇒ label is Y's leading n−1 digits
		parentRep := int(e.reps[p])
		if parentRep == rep {
			return nil, fmt.Errorf("ffc: necklace [%s] would parent itself", g.String(rep))
		}
		tree[rep] = TreeEdge{Parent: parentRep, W: w}
		e.stars = append(e.stars, starEdge{w: int32(w), child: rep32, parent: int32(parentRep)})
	}
	res.Tree = tree

	// Step 2: close each star T_w into a w-cycle ordered by necklace
	// representative; record the successor overrides densely for the walk
	// and as a map for the Result.
	sort.Slice(e.stars, func(i, j int) bool {
		if e.stars[i].w != e.stars[j].w {
			return e.stars[i].w < e.stars[j].w
		}
		return e.stars[i].child < e.stars[j].child
	})
	e.ov.Reset(g.Size)
	overrides := make(map[int]int, 2*len(e.stars))
	for i := 0; i < len(e.stars); {
		j := i
		for j < len(e.stars) && e.stars[j].w == e.stars[i].w {
			j++
		}
		w := int(e.stars[i].w)
		e.members = e.members[:0]
		for k := i; k < j; k++ {
			e.members = append(e.members, int(e.stars[k].child))
		}
		e.members = append(e.members, int(e.stars[i].parent))
		sort.Ints(e.members)
		k := len(e.members)
		for idx, rep := range e.members {
			next := e.members[(idx+1)%k]
			out := suffixNode(g, rep, w)
			in := prefixNode(g, next, w)
			if out < 0 || in < 0 {
				panic(fmt.Sprintf("ffc: star member [%s] lacks a w-node for w=%s (unreachable)",
					g.String(rep), fmt.Sprint(w)))
			}
			e.ov.Set(out, int32(in))
			overrides[out] = in
		}
		i = j
	}
	res.Overrides = overrides

	// Step 3: read off the cycle from the dense successor rule.
	cycle := make([]int, 0, want)
	x := root
	for {
		cycle = append(cycle, x)
		var next int
		if v, ok := e.ov.Get(x); ok {
			next = int(v)
		} else {
			next = g.RotL(x)
		}
		if next == root {
			break
		}
		if len(cycle) > want {
			return nil, fmt.Errorf("ffc: successor walk exceeded component size %d without closing", want)
		}
		x = next
	}
	if len(cycle) != want {
		return nil, fmt.Errorf("ffc: walk closed after %d nodes, want %d (cycle not Hamiltonian in B*)", len(cycle), want)
	}
	res.Cycle = cycle
	return res, nil
}

// broadcast runs the Step 1.1 level-order BFS from root inside component
// bestID, filling e.dist and e.order, and returns the eccentricity (the
// depth of the deepest level).  Levels whose frontier reaches the
// parallel threshold are sharded across the worker pool: each worker
// scans a contiguous frontier segment and appends every in-component,
// not-yet-stamped successor to its own candidate buffer — a read-only
// pass over comp/dist, so the workers never race — and a sequential
// merge then stamps first occurrences in segment order.  Concatenating
// the segment buffers in order replays the exact candidate stream the
// serial loop would see, so dist, order, and every downstream tie-break
// are bit-identical at any worker count.
func (e *Embedder) broadcast(root int, bestID int32) int {
	g := e.g
	d := g.D
	e.dist.Reset(g.Size)
	e.dist.Set(root, 0)
	e.order = append(e.order[:0], int32(root))

	workers := e.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	threshold := e.parallelFrontier
	if threshold <= 0 {
		threshold = defaultParallelFrontier
	}

	ecc := 0
	for head, depth := 0, 0; head < len(e.order); depth++ {
		levelEnd := len(e.order)
		if workers > 1 && levelEnd-head >= threshold {
			e.broadcastLevel(head, levelEnd, depth, bestID, workers)
		} else {
			for ; head < levelEnd; head++ {
				v := int(e.order[head])
				base := g.Suffix(v) * d
				for a := 0; a < d; a++ {
					w := base + a
					if w == v {
						continue
					}
					if id, ok := e.comp.Get(w); !ok || id != bestID {
						continue
					}
					if !e.dist.Has(w) {
						e.dist.Set(w, int32(depth+1))
						e.order = append(e.order, int32(w))
					}
				}
			}
		}
		head = levelEnd
		if len(e.order) > levelEnd {
			ecc = depth + 1
		}
	}
	return ecc
}

// broadcastLevel shards one BFS level (e.order[head:levelEnd]) across
// nw workers and merges their candidate buffers sequentially.  Workers
// only read comp and dist and write their private buffer; all stamping
// happens after the WaitGroup barrier, on one goroutine.
func (e *Embedder) broadcastLevel(head, levelEnd, depth int, bestID int32, nw int) {
	g := e.g
	d := g.D
	size := levelEnd - head
	if nw > size {
		nw = size
	}
	for len(e.scanBufs) < nw {
		e.scanBufs = append(e.scanBufs, nil)
	}

	var wg sync.WaitGroup
	chunk := (size + nw - 1) / nw
	for wi := 0; wi < nw; wi++ {
		lo := head + wi*chunk
		hi := lo + chunk
		if hi > levelEnd {
			hi = levelEnd
		}
		wg.Add(1)
		go func(wi, lo, hi int) {
			defer wg.Done()
			buf := e.scanBufs[wi][:0]
			for i := lo; i < hi; i++ {
				v := int(e.order[i])
				base := g.Suffix(v) * d
				for a := 0; a < d; a++ {
					w := base + a
					if w == v {
						continue
					}
					if id, ok := e.comp.Get(w); !ok || id != bestID {
						continue
					}
					if !e.dist.Has(w) {
						buf = append(buf, int32(w))
					}
				}
			}
			e.scanBufs[wi] = buf
		}(wi, lo, hi)
	}
	wg.Wait()

	// Sequential merge in segment order: first occurrence wins, exactly
	// as the serial loop's stamp-on-discovery dedup would have chosen.
	d32 := int32(depth + 1)
	for wi := 0; wi < nw; wi++ {
		for _, w32 := range e.scanBufs[wi] {
			if w := int(w32); !e.dist.Has(w) {
				e.dist.Set(w, d32)
				e.order = append(e.order, w32)
			}
		}
	}
}

// distOrZero mirrors the legacy map semantics dist[x] (0 when absent),
// relevant only in unreachable-node corner cases.
func distOrZero(m *dense.Ints, x int) int32 {
	v, _ := m.Get(x)
	return v
}
