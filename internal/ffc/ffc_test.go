package ffc

import (
	"testing"

	"debruijnring/internal/debruijn"
)

func parse(t *testing.T, g *debruijn.Graph, s string) int {
	t.Helper()
	x, err := g.Parse(s)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return x
}

func parseAll(t *testing.T, g *debruijn.Graph, ss ...string) []int {
	out := make([]int, len(ss))
	for i, s := range ss {
		out[i] = parse(t, g, s)
	}
	return out
}

// TestExample21 reproduces Example 2.1 exactly: nodes 020 and 112 fail in
// B(3,3); the FFC algorithm produces the 21-node fault-free cycle
// H = (000, 001, 011, 111, 110, 101, 012, 122, 222, 221, 212, 120, 201,
// 010, 102, 022, 220, 202, 021, 210, 100).
func TestExample21(t *testing.T) {
	g := debruijn.New(3, 3)
	faults := parseAll(t, g, "020", "112")
	res, err := Embed(g, faults)
	if err != nil {
		t.Fatal(err)
	}
	if res.BStarSize != 21 {
		t.Errorf("|B*| = %d, want 21", res.BStarSize)
	}
	want := parseAll(t, g,
		"000", "001", "011", "111", "110", "101", "012", "122", "222", "221",
		"212", "120", "201", "010", "102", "022", "220", "202", "021", "210", "100")
	if len(res.Cycle) != len(want) {
		t.Fatalf("cycle length %d, want %d", len(res.Cycle), len(want))
	}
	for i := range want {
		if res.Cycle[i] != want[i] {
			got := make([]string, len(res.Cycle))
			for j, x := range res.Cycle {
				got[j] = g.String(x)
			}
			t.Fatalf("cycle diverges at %d: got %v", i, got)
		}
	}
	if !g.IsCycle(res.Cycle) {
		t.Error("H is not a valid cycle")
	}
}

// TestExample21Tree checks the spanning tree of Figure 2.4(a): each
// surviving necklace hangs from the expected parent under the expected
// label.
func TestExample21Tree(t *testing.T) {
	g := debruijn.New(3, 3)
	res, err := Embed(g, parseAll(t, g, "020", "112"))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]struct{ parent, w string }{
		"001": {"000", "00"},
		"011": {"001", "01"},
		"012": {"001", "01"},
		"111": {"011", "11"},
		"122": {"012", "12"},
		"222": {"122", "22"},
		"021": {"001", "10"},
		"022": {"021", "02"},
	}
	if len(res.Tree) != len(want) {
		t.Fatalf("tree has %d edges, want %d", len(res.Tree), len(want))
	}
	wspace := debruijn.New(3, 2)
	for child, exp := range want {
		edge, ok := res.Tree[parse(t, g, child)]
		if !ok {
			t.Errorf("necklace [%s] missing from tree", child)
			continue
		}
		if g.String(edge.Parent) != exp.parent || wspace.String(edge.W) != exp.w {
			t.Errorf("[%s]: parent [%s] label %s, want [%s] label %s",
				child, g.String(edge.Parent), wspace.String(edge.W), exp.parent, exp.w)
		}
	}
}

// TestFigure23 spot-checks the necklace adjacency graph N* of
// B(3,3) − {N(020), N(112)} against Figure 2.3.
func TestFigure23(t *testing.T) {
	g := debruijn.New(3, 3)
	faultyReps := FaultyNecklaces(g, parseAll(t, g, "020", "112"))
	alive := func(x int) bool { return !faultyReps[g.NecklaceRep(x)] }
	comp, err := LargestComponent(g, alive)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp.Nodes) != 21 {
		t.Fatalf("component has %d nodes, want 21 (graph stays connected)", len(comp.Nodes))
	}
	adj := NecklaceAdjacency(g, comp)
	if len(adj) != 9 {
		t.Errorf("N* has %d necklace-nodes, want 9", len(adj))
	}
	wspace := debruijn.New(3, 2)
	has := func(from, to, label string) bool {
		for _, e := range adj[parse(t, g, from)] {
			if e.To == parse(t, g, to) && wspace.String(e.W) == label {
				return true
			}
		}
		return false
	}
	for _, e := range []struct{ from, to, label string }{
		{"000", "001", "00"},
		{"001", "000", "00"},
		{"001", "011", "01"},
		{"001", "011", "10"},
		{"011", "111", "11"},
		{"012", "122", "12"},
		{"122", "222", "22"},
		{"021", "022", "02"},
	} {
		if !has(e.from, e.to, e.label) {
			t.Errorf("N* missing %s-edge [%s] → [%s]", e.label, e.from, e.to)
		}
	}
	// Every N* edge has its antiparallel companion (the note after the
	// Definition in §2.2).
	for from, edges := range adj {
		for _, e := range edges {
			found := false
			for _, back := range adj[e.To] {
				if back.To == from && back.W == e.W {
					found = true
				}
			}
			if !found {
				t.Errorf("edge [%s]→[%s] (w=%s) lacks antiparallel companion",
					g.String(from), g.String(e.To), wspace.String(e.W))
			}
		}
	}
}

// TestExample22 checks the incoming/outgoing node structure of Example 2.2:
// necklace [0122] in B(3,4) with incident labels {012, 201, 220} has
// incoming nodes {0122, 2012, 2201}, outgoing nodes {2012, 2201, 1220} and
// splits into necklace paths (0122, 1220), (2201), (2012).
func TestExample22(t *testing.T) {
	g := debruijn.New(3, 4)
	rep := parse(t, g, "0122")
	w3 := debruijn.New(3, 3)
	labels := []int{}
	for _, s := range []string{"012", "201", "220"} {
		v, err := w3.Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		labels = append(labels, v)
	}
	outgoing := map[int]bool{}
	incoming := map[int]bool{}
	for _, w := range labels {
		out := suffixNode(g, rep, w)
		in := prefixNode(g, rep, w)
		if out < 0 || in < 0 {
			t.Fatalf("label %s has no node on [0122]", w3.String(w))
		}
		outgoing[out] = true
		incoming[in] = true
	}
	wantOut := parseAll(t, g, "2012", "2201", "1220")
	wantIn := parseAll(t, g, "0122", "2012", "2201")
	for _, x := range wantOut {
		if !outgoing[x] {
			t.Errorf("outgoing nodes missing %s", g.String(x))
		}
	}
	for _, x := range wantIn {
		if !incoming[x] {
			t.Errorf("incoming nodes missing %s", g.String(x))
		}
	}
	// Lemma 2.1: every node lies on exactly one incoming→outgoing path.
	// Walk the necklace and extract the paths.
	var paths [][]int
	var current []int
	start := parse(t, g, "0122") // an incoming node
	x := start
	for {
		current = append(current, x)
		if outgoing[x] {
			paths = append(paths, current)
			current = nil
		}
		x = g.RotL(x)
		if x == start {
			break
		}
	}
	if len(current) != 0 {
		t.Error("necklace walk did not end on an outgoing node")
	}
	if len(paths) != 3 {
		t.Fatalf("necklace splits into %d paths, want 3", len(paths))
	}
	wantPaths := [][]int{
		parseAll(t, g, "0122", "1220"),
		parseAll(t, g, "2201"),
		parseAll(t, g, "2012"),
	}
	for i, wp := range wantPaths {
		if len(paths[i]) != len(wp) {
			t.Fatalf("path %d = %v, want %v", i, paths[i], wp)
		}
		for j := range wp {
			if paths[i][j] != wp[j] {
				t.Fatalf("path %d node %d mismatch", i, j)
			}
		}
	}
}

// TestProp22Guarantee: for f ≤ d−2 node faults the FFC cycle has length at
// least dⁿ − nf and the broadcast eccentricity is at most 2n.
func TestProp22Guarantee(t *testing.T) {
	cases := []struct {
		d, n   int
		faults [][]string
	}{
		{3, 3, [][]string{{"020"}, {"002"}, {"111"}}},
		{4, 3, [][]string{{"013"}, {"013", "113"}, {"000", "123"}, {"331", "132"}}},
		{5, 2, [][]string{{"04"}, {"04", "14"}, {"04", "14", "24"}, {"00", "11", "22"}}},
		{4, 4, [][]string{{"0003", "1113"}, {"0123", "3210"}}},
		{3, 5, [][]string{{"00120"}}},
	}
	for _, tc := range cases {
		g := debruijn.New(tc.d, tc.n)
		for _, fs := range tc.faults {
			if len(fs) > tc.d-2 {
				t.Fatalf("test case exceeds d−2 faults")
			}
			faults := parseAll(t, g, fs...)
			res, err := Embed(g, faults)
			if err != nil {
				t.Fatalf("B(%d,%d) faults %v: %v", tc.d, tc.n, fs, err)
			}
			if !g.IsCycle(res.Cycle) {
				t.Fatalf("B(%d,%d) faults %v: invalid cycle", tc.d, tc.n, fs)
			}
			bound := UpperBound(g, len(faults))
			if len(res.Cycle) < bound {
				t.Errorf("B(%d,%d) faults %v: cycle %d < bound %d", tc.d, tc.n, fs, len(res.Cycle), bound)
			}
			if res.Eccentricity > 2*tc.n {
				t.Errorf("B(%d,%d) faults %v: eccentricity %d > 2n", tc.d, tc.n, fs, res.Eccentricity)
			}
			for _, x := range res.Cycle {
				if res.FaultyNecklaces[g.NecklaceRep(x)] {
					t.Fatalf("cycle visits faulty necklace node %s", g.String(x))
				}
			}
		}
	}
}

// TestEmbedManyRandomFaults exercises the algorithm far beyond the d−2
// guarantee (the regime of the §2.5.2 simulations): the cycle must always
// be a valid Hamiltonian cycle of B*.
func TestEmbedManyRandomFaults(t *testing.T) {
	g := debruijn.New(2, 8)
	rng := newTestRNG(7)
	for trial := 0; trial < 60; trial++ {
		f := 1 + rng.IntN(12)
		faults := make([]int, f)
		for i := range faults {
			faults[i] = rng.IntN(g.Size)
		}
		res, err := Embed(g, faults)
		if err != nil {
			continue // all necklaces dead is acceptable at this fault rate
		}
		if !g.IsCycle(res.Cycle) {
			t.Fatalf("trial %d: invalid cycle", trial)
		}
		if len(res.Cycle) != res.BStarSize {
			t.Fatalf("trial %d: cycle %d ≠ |B*| %d", trial, len(res.Cycle), res.BStarSize)
		}
		seen := map[int]bool{}
		for _, x := range res.Cycle {
			if res.FaultyNecklaces[g.NecklaceRep(x)] {
				t.Fatalf("trial %d: faulty node on cycle", trial)
			}
			if seen[x] {
				t.Fatalf("trial %d: repeated node", trial)
			}
			seen[x] = true
		}
	}
}

// TestProp23BinarySingleFault: in B(2,n) with one faulty node the FFC cycle
// has length at least 2ⁿ − (n+1).
func TestProp23BinarySingleFault(t *testing.T) {
	for n := 4; n <= 10; n++ {
		g := debruijn.New(2, n)
		for fault := 0; fault < g.Size; fault++ {
			res, err := Embed(g, []int{fault})
			if err != nil {
				t.Fatalf("B(2,%d) fault %s: %v", n, g.String(fault), err)
			}
			if len(res.Cycle) < g.Size-(n+1) {
				t.Errorf("B(2,%d) fault %s: cycle %d < 2^n − (n+1) = %d",
					n, g.String(fault), len(res.Cycle), g.Size-(n+1))
			}
		}
	}
}

// TestWorstCaseOptimality certifies by exhaustive search that the fault
// family {α^{n−1}(d−1)} admits no fault-free cycle longer than dⁿ − nf
// (§2.5), and that the FFC algorithm achieves exactly that.
func TestWorstCaseOptimality(t *testing.T) {
	cases := []struct{ d, n, f int }{
		{4, 2, 1}, {4, 2, 2}, {2, 4, 0}, {3, 2, 1},
	}
	if !testing.Short() {
		// The full certification sweep is exponential-time exhaustive
		// search; run it only outside -short.  {5,2,2} is omitted: it
		// alone costs ~30s, and its shape is covered by {4,2,2} (two
		// faults) plus {5,2,3} (same graph, larger fault family).
		cases = append(cases, []struct{ d, n, f int }{{3, 3, 1}, {5, 2, 3}}...)
	}
	for _, tc := range cases {
		g := debruijn.New(tc.d, tc.n)
		faults := WorstCaseFaults(g, tc.f)
		fm := map[int]bool{}
		for _, x := range faults {
			fm[x] = true
		}
		longest := g.LongestCycleAvoiding(fm)
		bound := UpperBound(g, tc.f)
		if len(longest) != bound {
			t.Errorf("B(%d,%d) f=%d: longest fault-free cycle %d, want exactly %d",
				tc.d, tc.n, tc.f, len(longest), bound)
		}
		if tc.f > 0 {
			res, err := Embed(g, faults)
			if err != nil {
				t.Fatalf("B(%d,%d) f=%d: %v", tc.d, tc.n, tc.f, err)
			}
			if len(res.Cycle) != bound {
				t.Errorf("B(%d,%d) f=%d: FFC finds %d, optimum %d",
					tc.d, tc.n, tc.f, len(res.Cycle), bound)
			}
		}
	}
}

// TestFaultFreePath verifies the constructive routing of Proposition 2.2:
// length ≤ 2n, valid edges, and no faulty necklaces.
func TestFaultFreePath(t *testing.T) {
	for _, tc := range []struct{ d, n, f int }{{3, 3, 1}, {4, 3, 2}, {5, 2, 3}, {4, 4, 2}, {5, 3, 3}} {
		g := debruijn.New(tc.d, tc.n)
		rng := newTestRNG(int64(tc.d*100 + tc.n))
		for trial := 0; trial < 40; trial++ {
			faults := make([]int, tc.f)
			for i := range faults {
				faults[i] = rng.IntN(g.Size)
			}
			reps := FaultyNecklaces(g, faults)
			if len(reps) > tc.d-2 {
				continue // Proposition 2.2 premise is f ≤ d−2 necklaces
			}
			bad := func(v int) bool { return reps[g.NecklaceRep(v)] }
			x, y := rng.IntN(g.Size), rng.IntN(g.Size)
			if bad(x) || bad(y) {
				continue
			}
			path, err := FaultFreePath(g, x, y, reps)
			if err != nil {
				t.Fatalf("B(%d,%d) trial %d: %v", tc.d, tc.n, trial, err)
			}
			if len(path)-1 > 2*tc.n {
				t.Fatalf("path length %d > 2n = %d", len(path)-1, 2*tc.n)
			}
			if path[0] != x || path[len(path)-1] != y {
				t.Fatalf("path endpoints wrong")
			}
			for i := 0; i+1 < len(path); i++ {
				if !g.IsEdge(path[i], path[i+1]) {
					t.Fatalf("step %d not an edge", i)
				}
			}
			for _, v := range path {
				if bad(v) {
					t.Fatalf("path visits faulty necklace node %s", g.String(v))
				}
			}
		}
	}
}

// TestPathFamiliesNecklaceDisjoint verifies the two lemmas inside the proof
// of Proposition 2.2: the d outward paths P_α are pairwise necklace-
// disjoint, as are the d−1 return paths Q_i.
func TestPathFamiliesNecklaceDisjoint(t *testing.T) {
	for _, tc := range []struct{ d, n int }{{3, 3}, {4, 3}, {5, 2}, {4, 4}} {
		g := debruijn.New(tc.d, tc.n)
		rng := newTestRNG(int64(tc.d + tc.n))
		for trial := 0; trial < 25; trial++ {
			x := rng.IntN(g.Size)
			fam := OutwardFamily(g, x)
			for a := 0; a < len(fam); a++ {
				sa := NecklacesOnPath(g, fam[a])
				for b := a + 1; b < len(fam); b++ {
					for rep := range NecklacesOnPath(g, fam[b]) {
						if sa[rep] {
							t.Fatalf("B(%d,%d): P_%d and P_%d share necklace %s",
								tc.d, tc.n, a, b, g.String(rep))
						}
					}
				}
			}
			y := rng.IntN(g.Size)
			alpha := rng.IntN(g.D)
			ret := ReturnFamily(g, alpha, y)
			for a := 0; a < len(ret); a++ {
				sa := NecklacesOnPath(g, ret[a])
				for b := a + 1; b < len(ret); b++ {
					for rep := range NecklacesOnPath(g, ret[b]) {
						if sa[rep] {
							t.Fatalf("B(%d,%d): Q paths share necklace %s", tc.d, tc.n, g.String(rep))
						}
					}
				}
			}
		}
	}
}

// TestComparisonHypercubeParagraph reproduces the Chapter 2 comparison:
// with two faults in the 4096-node B(4,6), a fault-free cycle of length at
// least 4084 is found; B(4,6) has 16384 edges versus the hypercube's
// 24576.
func TestComparisonHypercubeParagraph(t *testing.T) {
	g := debruijn.New(4, 6)
	if g.NumEdges() != 16384 {
		t.Errorf("B(4,6) has %d edges, want 16384", g.NumEdges())
	}
	rng := newTestRNG(42)
	for trial := 0; trial < 10; trial++ {
		faults := []int{rng.IntN(g.Size), rng.IntN(g.Size)}
		res, err := Embed(g, faults)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Cycle) < 4084 {
			t.Errorf("trial %d: cycle %d < 4084", trial, len(res.Cycle))
		}
		if !g.IsCycle(res.Cycle) {
			t.Fatal("invalid cycle")
		}
	}
}

func TestEmbedAllNecklacesFaulty(t *testing.T) {
	g := debruijn.New(2, 2)
	// Faults covering every necklace: 00, 01, 11 kill [00], [01], [11].
	if _, err := Embed(g, parseAll(t, g, "00", "01", "11")); err == nil {
		t.Error("expected error when every necklace is faulty")
	}
}

func TestEmbedNoFaults(t *testing.T) {
	// With no faults the FFC produces a Hamiltonian cycle of B(d,n) — a
	// De Bruijn sequence.
	for _, tc := range []struct{ d, n int }{{2, 4}, {2, 6}, {3, 3}, {4, 3}, {5, 2}} {
		g := debruijn.New(tc.d, tc.n)
		res, err := Embed(g, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsHamiltonian(res.Cycle) {
			t.Errorf("B(%d,%d): no-fault FFC cycle is not Hamiltonian (len %d)", tc.d, tc.n, len(res.Cycle))
		}
	}
}

func TestWorstCaseFaultsShape(t *testing.T) {
	g := debruijn.New(4, 3)
	faults := WorstCaseFaults(g, 2)
	want := parseAll(t, g, "003", "113")
	for i := range want {
		if faults[i] != want[i] {
			t.Errorf("fault %d = %s, want %s", i, g.String(faults[i]), g.String(want[i]))
		}
	}
	// Each fault sits on a distinct full-length necklace: removing them
	// costs exactly nf nodes.
	reps := FaultyNecklaces(g, faults)
	total := 0
	for rep := range reps {
		total += g.Period(rep)
	}
	if total != g.N*len(faults) {
		t.Errorf("worst-case faults remove %d nodes, want %d", total, g.N*len(faults))
	}
}

func BenchmarkEmbedB46TwoFaults(b *testing.B) {
	g := debruijn.New(4, 6)
	faults := []int{123, 3456}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Embed(g, faults); err != nil {
			b.Fatal(err)
		}
	}
}
