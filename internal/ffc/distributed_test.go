package ffc

import (
	"sync"
	"testing"

	"debruijnring/internal/debruijn"
)

// TestDistributedMatchesSequential: the distributed protocol must produce
// exactly the cycle of the sequential algorithm when rooted at the same R
// (both implement the same deterministic tie-breaking).
func TestDistributedMatchesSequential(t *testing.T) {
	cases := []struct {
		d, n   int
		faults []string
	}{
		{3, 3, []string{"020", "112"}}, // Example 2.1
		{3, 3, nil},
		{2, 5, []string{"00101"}},
		{4, 3, []string{"013", "122"}},
		{5, 2, []string{"04", "13", "22"}},
		{2, 7, []string{"0010111"}},
		{4, 4, []string{"0123", "3321"}},
	}
	for _, tc := range cases {
		g := debruijn.New(tc.d, tc.n)
		faults := parseAll(t, g, tc.faults...)
		seq, err := Embed(g, faults)
		if err != nil {
			t.Fatalf("B(%d,%d) %v: sequential: %v", tc.d, tc.n, tc.faults, err)
		}
		dist, err := EmbedDistributedFrom(g, faults, seq.Root)
		if err != nil {
			t.Fatalf("B(%d,%d) %v: distributed: %v", tc.d, tc.n, tc.faults, err)
		}
		if dist.BStarSize != seq.BStarSize {
			t.Errorf("B(%d,%d) %v: |B*| %d vs %d", tc.d, tc.n, tc.faults, dist.BStarSize, seq.BStarSize)
		}
		if len(dist.Cycle) != len(seq.Cycle) {
			t.Fatalf("B(%d,%d) %v: cycle lengths %d vs %d", tc.d, tc.n, tc.faults, len(dist.Cycle), len(seq.Cycle))
		}
		for i := range seq.Cycle {
			if dist.Cycle[i] != seq.Cycle[i] {
				t.Fatalf("B(%d,%d) %v: cycles diverge at %d: %s vs %s",
					tc.d, tc.n, tc.faults, i, g.String(dist.Cycle[i]), g.String(seq.Cycle[i]))
			}
		}
	}
}

// TestDistributedRandom cross-checks the two implementations under random
// fault sets, including fault counts beyond d−2.
func TestDistributedRandom(t *testing.T) {
	g := debruijn.New(3, 4)
	rng := newTestRNG(11)
	for trial := 0; trial < 40; trial++ {
		f := rng.IntN(5)
		faults := make([]int, f)
		for i := range faults {
			faults[i] = rng.IntN(g.Size)
		}
		seq, err := Embed(g, faults)
		if err != nil {
			continue
		}
		dist, err := EmbedDistributedFrom(g, faults, seq.Root)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !g.IsCycle(dist.Cycle) {
			t.Fatalf("trial %d: invalid distributed cycle", trial)
		}
		if len(dist.Cycle) != len(seq.Cycle) {
			t.Fatalf("trial %d: lengths differ: %d vs %d", trial, len(dist.Cycle), len(seq.Cycle))
		}
	}
}

// TestDistributedRoundComplexity: the paper's Θ(n) claim (Proposition 2.2)
// — with f ≤ d−2 faults the whole protocol takes O(n) rounds: 3n + K + 2
// with K ≤ 2n.
func TestDistributedRoundComplexity(t *testing.T) {
	cases := []struct {
		d, n   int
		faults []string
	}{
		{3, 3, []string{"020"}},
		{4, 3, []string{"013", "113"}},
		{5, 2, []string{"04", "14", "23"}},
		{4, 4, []string{"0123", "3210"}},
		{3, 5, []string{"00120"}},
	}
	for _, tc := range cases {
		g := debruijn.New(tc.d, tc.n)
		faults := parseAll(t, g, tc.faults...)
		res, err := EmbedDistributed(g, faults)
		if err != nil {
			t.Fatalf("B(%d,%d): %v", tc.d, tc.n, err)
		}
		n := tc.n
		if res.Rounds.Probe != n || res.Rounds.Leader != n || res.Rounds.Membership != n {
			t.Errorf("B(%d,%d): necklace phases %+v, want %d each", tc.d, tc.n, res.Rounds, n)
		}
		if res.Rounds.Broadcast > 2*n {
			t.Errorf("B(%d,%d): broadcast took %d rounds > 2n (diameter bound of Prop 2.2)",
				tc.d, tc.n, res.Rounds.Broadcast)
		}
		if res.Rounds.Total() > 5*n+2 {
			t.Errorf("B(%d,%d): total rounds %d exceed 5n+2", tc.d, tc.n, res.Rounds.Total())
		}
		if res.Messages <= 0 {
			t.Error("message count not recorded")
		}
	}
}

// TestDistributedAutoRoot: without an explicit root the protocol roots at
// the minimal alive representative and still produces a valid ring.
func TestDistributedAutoRoot(t *testing.T) {
	g := debruijn.New(3, 3)
	res, err := EmbedDistributed(g, parseAll(t, g, "000"))
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsCycle(res.Cycle) {
		t.Error("invalid cycle")
	}
	// [000] is faulty, so the minimal alive representative is [001].
	if g.String(res.Root) != "001" {
		t.Errorf("auto root = %s, want 001", g.String(res.Root))
	}
}

func TestDistributedBadRoot(t *testing.T) {
	g := debruijn.New(3, 3)
	faults := parseAll(t, g, "020")
	// 020's necklace is faulty; 200 is not a representative.
	for _, root := range []string{"020", "200", "110"} {
		if _, err := EmbedDistributedFrom(g, faults, parse(t, g, root)); err == nil {
			t.Errorf("root %s should be rejected", root)
		}
	}
}

func TestDistributedAllFaulty(t *testing.T) {
	g := debruijn.New(2, 2)
	if _, err := EmbedDistributed(g, parseAll(t, g, "00", "01", "11")); err == nil {
		t.Error("expected error with every necklace faulty")
	}
}

// TestDistributedScratchReuse interleaves runs over different graphs
// and fault sets (including concurrent ones) and checks the pooled
// simulation scratch never leaks state between runs: each repetition is
// bit-identical to a fresh first run.
func TestDistributedScratchReuse(t *testing.T) {
	g1 := debruijn.New(2, 6)
	g2 := debruijn.New(3, 4)
	ref1, err := EmbedDistributed(g1, []int{5, 40})
	if err != nil {
		t.Fatal(err)
	}
	// A different (larger) graph between repetitions dirties the pool.
	if _, err := EmbedDistributed(g2, []int{7}); err != nil {
		t.Fatal(err)
	}
	again, err := EmbedDistributed(g1, []int{5, 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Cycle) != len(ref1.Cycle) || again.Messages != ref1.Messages || again.Rounds != ref1.Rounds {
		t.Fatalf("pooled rerun diverged: %+v vs %+v", again.Rounds, ref1.Rounds)
	}
	for i := range ref1.Cycle {
		if again.Cycle[i] != ref1.Cycle[i] {
			t.Fatalf("pooled rerun cycle diverges at %d", i)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				res, err := EmbedDistributed(g1, []int{5, 40})
				if err != nil {
					t.Error(err)
					return
				}
				if len(res.Cycle) != len(ref1.Cycle) {
					t.Errorf("concurrent run cycle length %d != %d", len(res.Cycle), len(ref1.Cycle))
					return
				}
			}
		}()
	}
	wg.Wait()
}

func BenchmarkDistributedB45(b *testing.B) {
	g := debruijn.New(4, 5)
	faults := []int{17, 923}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EmbedDistributed(g, faults); err != nil {
			b.Fatal(err)
		}
	}
}
