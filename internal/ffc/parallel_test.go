package ffc

// Determinism harness for the frontier-parallel Step 1.1 broadcast: the
// parallel BFS must be bit-identical to the serial scan — same ring,
// same necklace tree, same eccentricity, same overrides — for every
// worker count, because sessions journal rings by hash and replicas
// replay them.  The tests force the worker pool onto small instances by
// lowering the parallel threshold, so `go test -race ./internal/ffc/`
// exercises the real worker/merge code paths.

import (
	"hash/fnv"
	"math/rand/v2"
	"reflect"
	"sort"
	"testing"

	"debruijnring/internal/debruijn"
)

// resultHash canonically hashes the observable embedding output (ring,
// eccentricity, tree, overrides) — the same identity sessions rely on
// when journaled rings are hash-verified across replicas.
func resultHash(res *Result) uint64 {
	h := fnv.New64a()
	wr := func(vs ...int) {
		var b [8]byte
		for _, v := range vs {
			for i := 0; i < 8; i++ {
				b[i] = byte(uint64(v) >> (8 * i))
			}
			h.Write(b[:])
		}
	}
	wr(res.Root, res.BStarSize, res.Eccentricity, len(res.Cycle))
	wr(res.Cycle...)
	reps := make([]int, 0, len(res.Tree))
	for rep := range res.Tree {
		reps = append(reps, rep)
	}
	sort.Ints(reps)
	for _, rep := range reps {
		e := res.Tree[rep]
		wr(rep, e.Parent, e.W)
	}
	outs := make([]int, 0, len(res.Overrides))
	for o := range res.Overrides {
		outs = append(outs, o)
	}
	sort.Ints(outs)
	for _, o := range outs {
		wr(o, res.Overrides[o])
	}
	return h.Sum64()
}

func randomFaults(rng *rand.Rand, size, nf int) []int {
	faults := make([]int, 0, nf)
	for len(faults) < nf {
		faults = append(faults, rng.IntN(size))
	}
	return faults
}

func TestEmbedParallelDeterminism(t *testing.T) {
	grid := []struct{ d, n int }{{2, 6}, {2, 8}, {2, 10}, {3, 5}, {4, 4}}
	for _, tc := range grid {
		g := debruijn.New(tc.d, tc.n)
		rng := rand.New(rand.NewPCG(uint64(tc.d), uint64(tc.n)))
		for trial := 0; trial < 4; trial++ {
			faults := randomFaults(rng, g.Size, trial)

			serial := NewEmbedder(g)
			serial.Workers = 1
			want, wantErr := serial.Embed(faults)

			// Threshold 1 puts every level through the worker pool;
			// threshold 8 mixes serial shallow levels with parallel deep
			// ones — both must replay the serial output exactly.
			for _, threshold := range []int{1, 8} {
				for _, w := range []int{1, 2, 4, 8} {
					em := NewEmbedder(g)
					em.Workers = w
					em.parallelFrontier = threshold
					got, err := em.Embed(faults)
					if (err != nil) != (wantErr != nil) {
						t.Fatalf("B(%d,%d) faults=%v workers=%d threshold=%d: err=%v, serial err=%v",
							tc.d, tc.n, faults, w, threshold, err, wantErr)
					}
					if err != nil {
						continue
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("B(%d,%d) faults=%v workers=%d threshold=%d: result diverges from serial",
							tc.d, tc.n, faults, w, threshold)
					}
					if resultHash(got) != resultHash(want) {
						t.Fatalf("B(%d,%d) faults=%v workers=%d threshold=%d: hash diverges from serial",
							tc.d, tc.n, faults, w, threshold)
					}
				}
			}
		}
	}
}

// TestEmbedParallelScratchReuse drives one pooled embedder through many
// parallel embeddings (the adapter-pool usage pattern) and pins each
// against a fresh serial run: epoch-stamped scratch reuse must not leak
// state between runs at any worker count.
func TestEmbedParallelScratchReuse(t *testing.T) {
	g := debruijn.New(2, 9)
	em := NewEmbedder(g)
	em.Workers = 4
	em.parallelFrontier = 1
	rng := rand.New(rand.NewPCG(7, 9))
	for trial := 0; trial < 12; trial++ {
		faults := randomFaults(rng, g.Size, trial%3)
		serial := NewEmbedder(g)
		serial.Workers = 1
		want, wantErr := serial.Embed(faults)
		got, err := em.Embed(faults)
		if (err != nil) != (wantErr != nil) {
			t.Fatalf("trial %d faults=%v: err=%v, serial err=%v", trial, faults, err, wantErr)
		}
		if err == nil && !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d faults=%v: reused parallel embedder diverges from fresh serial", trial, faults)
		}
	}
}

// TestEmbedEccentricityMatchesLegacy pins the explicit level-depth
// eccentricity against the legacy map-based broadcast.  The old code
// read the distance of the *last visited* node, which is only correct
// under strict level order — any frontier-merge reordering would have
// silently misreported it; the explicit counter cannot.
func TestEmbedEccentricityMatchesLegacy(t *testing.T) {
	grid := []struct{ d, n int }{{2, 8}, {2, 10}, {3, 5}, {4, 4}}
	for _, tc := range grid {
		g := debruijn.New(tc.d, tc.n)
		rng := rand.New(rand.NewPCG(uint64(tc.n), uint64(tc.d)))
		for trial := 0; trial < 4; trial++ {
			faults := randomFaults(rng, g.Size, trial)
			em := NewEmbedder(g)
			em.Workers = 4
			em.parallelFrontier = 1
			res, err := em.Embed(faults)
			if err != nil {
				continue
			}
			faultyReps := FaultyNecklaces(g, faults)
			alive := func(x int) bool { return !faultyReps[g.NecklaceRep(x)] }
			comp, err := LargestComponent(g, alive)
			if err != nil {
				t.Fatalf("B(%d,%d) faults=%v: %v", tc.d, tc.n, faults, err)
			}
			_, _, ecc := broadcastTreeLegacy(g, comp.MinNode, comp.Member)
			if res.Eccentricity != ecc {
				t.Errorf("B(%d,%d) faults=%v: Eccentricity=%d, legacy broadcast says %d",
					tc.d, tc.n, faults, res.Eccentricity, ecc)
			}
		}
	}
}
