// Package ffc implements Chapter 2 of Rowley–Bose: the fault-free cycle
// (FFC) algorithm, which embeds a ring in the d-ary De Bruijn network
// B(d,n) in the presence of node failures.
//
// The algorithm treats a necklace (rotation cycle) as faulty when it
// contains a faulty node, removes the faulty necklaces, and stitches the
// surviving necklaces of the largest remaining component B* into a single
// Hamiltonian cycle of B*.  The stitching is guided by a spanning tree of
// the necklace adjacency graph N* whose same-label edge sets T_w are
// height-one stars (Step 1), each star being closed into a directed cycle
// (Step 2); the ring is then read off by a purely local successor rule
// (Step 3, Proposition 2.1).
//
// The package also provides the constructive fault-free routing paths of
// Proposition 2.2, the worst-case fault family of §2.5, the random-fault
// simulation harness behind Tables 2.1 and 2.2, and a distributed
// implementation of the algorithm (§2.4) on a synchronous message-passing
// network simulator.
package ffc

import (
	"errors"
	"fmt"
	"sort"

	"debruijnring/internal/debruijn"
)

// Result reports an embedding produced by Embed.
type Result struct {
	Cycle           []int        // Hamiltonian cycle of B*, starting at Root
	Root            int          // the distinguished node R (minimal node of B*)
	BStarSize       int          // |B*|
	Eccentricity    int          // eccentricity of Root in B* (broadcast rounds, Step 1.1)
	FaultyNecklaces map[int]bool // representatives of removed necklaces
	FaultyNodeCount int          // total nodes in faulty necklaces (N_F of §2.5)

	// Tree is the spanning tree T of N* built in Step 1: for each non-root
	// necklace representative, its parent representative and edge label w.
	Tree map[int]TreeEdge
	// Overrides is the Step-3 successor map derived from the modified tree
	// D: for every outgoing node, the entry node of the next necklace on
	// its w-cycle.  Nodes absent from the map follow their necklace
	// successor (left rotation).
	Overrides map[int]int
}

// TreeEdge is one edge of the necklace spanning tree T: the child necklace
// hangs from Parent with label W (an (n−1)-digit code).
type TreeEdge struct {
	Parent int // parent necklace representative
	W      int // edge label, an (n−1)-tuple code
}

// Embed runs the FFC algorithm on B(d,n) with the given faulty nodes and
// returns the fault-free ring.  It fails only when no nonfaulty necklace
// survives.
func Embed(g *debruijn.Graph, faults []int) (*Result, error) {
	faultyReps := FaultyNecklaces(g, faults)
	alive := func(x int) bool { return !faultyReps[g.NecklaceRep(x)] }

	comp, err := LargestComponent(g, alive)
	if err != nil {
		return nil, err
	}
	root := comp.MinNode

	res := &Result{
		Root:            root,
		BStarSize:       len(comp.Nodes),
		FaultyNecklaces: faultyReps,
	}
	for rep := range faultyReps {
		res.FaultyNodeCount += g.Period(rep)
	}

	// Step 1.1: broadcast from R; dist and min-predecessor parents.
	dist, parent, ecc := broadcastTree(g, root, comp.Member)
	res.Eccentricity = ecc

	// Step 1.2: derive the necklace spanning tree T.
	tree, err := necklaceTree(g, root, comp, dist, parent)
	if err != nil {
		return nil, err
	}
	res.Tree = tree

	// Step 2: close each star T_w into a w-cycle; record successor
	// overrides (Step 3 preparation).
	res.Overrides = modifiedTreeOverrides(g, root, tree)

	// Step 3: walk the successor rule from R.
	cycle, err := walk(g, root, res.Overrides, len(comp.Nodes))
	if err != nil {
		return nil, err
	}
	res.Cycle = cycle
	return res, nil
}

// FaultyNecklaces returns the set of necklace representatives containing at
// least one of the given faulty nodes.
func FaultyNecklaces(g *debruijn.Graph, faults []int) map[int]bool {
	reps := make(map[int]bool, len(faults))
	for _, f := range faults {
		if f < 0 || f >= g.Size {
			panic(fmt.Sprintf("ffc: fault %d out of range", f))
		}
		reps[g.NecklaceRep(f)] = true
	}
	return reps
}

// Component is a connected component of the surviving subgraph.  Because
// whole necklaces are removed, weak and strong connectivity coincide
// (every inter-necklace edge αw → wβ has a directed return path through the
// two necklaces via βw → wα), so Nodes is exactly the set reachable from
// MinNode along directed edges.
type Component struct {
	Nodes   []int
	MinNode int
	Member  func(int) bool
}

// LargestComponent returns the largest component of the subgraph induced by
// alive nodes, breaking ties toward the component with the smallest node.
func LargestComponent(g *debruijn.Graph, alive func(int) bool) (*Component, error) {
	compID := make([]int, g.Size)
	for i := range compID {
		compID[i] = -1
	}
	var sizes []int
	var minNodes []int
	var stack, buf []int
	for x := 0; x < g.Size; x++ {
		if !alive(x) || compID[x] != -1 {
			continue
		}
		id := len(sizes)
		sizes = append(sizes, 0)
		minNodes = append(minNodes, x)
		stack = append(stack[:0], x)
		compID[x] = id
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			sizes[id]++
			buf = g.Successors(v, buf)
			for _, w := range buf {
				if alive(w) && compID[w] == -1 {
					compID[w] = id
					stack = append(stack, w)
				}
			}
			buf = g.Predecessors(v, buf)
			for _, w := range buf {
				if alive(w) && compID[w] == -1 {
					compID[w] = id
					stack = append(stack, w)
				}
			}
		}
	}
	if len(sizes) == 0 {
		return nil, errors.New("ffc: every necklace is faulty; no component survives")
	}
	best := 0
	for id := 1; id < len(sizes); id++ {
		if sizes[id] > sizes[best] {
			best = id
		}
	}
	nodes := make([]int, 0, sizes[best])
	for x := 0; x < g.Size; x++ {
		if compID[x] == best {
			nodes = append(nodes, x)
		}
	}
	member := func(x int) bool { return x >= 0 && x < g.Size && compID[x] == best }
	return &Component{Nodes: nodes, MinNode: minNodes[best], Member: member}, nil
}

// broadcastTree performs the Step 1.1 broadcast: BFS from root along
// directed edges within the component.  The parent of x is the minimal
// predecessor at distance dist(x)−1, mirroring "the predecessor from which
// X first receives M, ties broken toward the minimal predecessor".
func broadcastTree(g *debruijn.Graph, root int, member func(int) bool) (dist map[int]int, parent map[int]int, ecc int) {
	dist = map[int]int{root: 0}
	parent = make(map[int]int)
	frontier := []int{root}
	var buf []int
	for len(frontier) > 0 {
		var next []int
		for _, v := range frontier {
			buf = g.Successors(v, buf)
			for _, w := range buf {
				if w == v || !member(w) {
					continue
				}
				if _, ok := dist[w]; !ok {
					dist[w] = dist[v] + 1
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	for x, dx := range dist {
		if dx > ecc {
			ecc = dx
		}
		if x == root {
			continue
		}
		best := -1
		buf = g.Predecessors(x, buf)
		for _, p := range buf {
			if dp, ok := dist[p]; ok && dp == dx-1 && (best == -1 || p < best) {
				best = p
			}
		}
		if best == -1 {
			panic("ffc: BFS node with no parent (unreachable)")
		}
		parent[x] = best
	}
	return dist, parent, ecc
}

// necklaceTree derives the spanning tree T of N* (Step 1.2): each non-root
// necklace picks its earliest-informed node Y (ties toward the minimal
// node); Y = wα hangs the necklace from the necklace of Y's broadcast
// parent βw under label w.
func necklaceTree(g *debruijn.Graph, root int, comp *Component, dist, parent map[int]int) (map[int]TreeEdge, error) {
	rootRep := g.NecklaceRep(root)
	if rootRep != root {
		return nil, fmt.Errorf("ffc: root %s is not a necklace representative", g.String(root))
	}
	// Earliest node per necklace.
	earliest := make(map[int]int) // rep → Y
	for _, x := range comp.Nodes {
		rep := g.NecklaceRep(x)
		y, ok := earliest[rep]
		if !ok || dist[x] < dist[y] || (dist[x] == dist[y] && x < y) {
			earliest[rep] = x
		}
	}
	tree := make(map[int]TreeEdge, len(earliest)-1)
	for rep, y := range earliest {
		if rep == rootRep {
			continue
		}
		p, ok := parent[y]
		if !ok {
			return nil, fmt.Errorf("ffc: earliest node %s of necklace [%s] has no broadcast parent", g.String(y), g.String(rep))
		}
		w := g.Prefix(y) // Y = wα ⇒ label is Y's leading n−1 digits
		parentRep := g.NecklaceRep(p)
		if parentRep == rep {
			return nil, fmt.Errorf("ffc: necklace [%s] would parent itself", g.String(rep))
		}
		tree[rep] = TreeEdge{Parent: parentRep, W: w}
	}
	return tree, nil
}

// suffixNode returns the unique node of the necklace [rep] whose trailing
// n−1 digits equal w (the outgoing node αw), or −1 if none exists.
func suffixNode(g *debruijn.Graph, rep, w int) int {
	y := rep
	for {
		if g.Suffix(y) == w {
			return y
		}
		y = g.RotL(y)
		if y == rep {
			return -1
		}
	}
}

// prefixNode returns the unique node of [rep] whose leading n−1 digits
// equal w (the incoming node wβ), or −1.
func prefixNode(g *debruijn.Graph, rep, w int) int {
	y := rep
	for {
		if g.Prefix(y) == w {
			return y
		}
		y = g.RotL(y)
		if y == rep {
			return -1
		}
	}
}

// modifiedTreeOverrides performs Step 2: every star T_w (one parent, its
// w-labeled children) becomes a directed cycle ordered by necklace
// representative, and the resulting w-edges are translated into the Step-3
// successor overrides: the outgoing node αw of each necklace on the cycle
// jumps to the incoming node wβ of the next necklace.
func modifiedTreeOverrides(g *debruijn.Graph, root int, tree map[int]TreeEdge) map[int]int {
	stars := make(map[int][]int) // w → member reps (children; parent added once)
	parents := make(map[int]int) // w → parent rep
	for child, e := range tree {
		stars[e.W] = append(stars[e.W], child)
		parents[e.W] = e.Parent
	}
	overrides := make(map[int]int)
	for w, members := range stars {
		members = append(members, parents[w])
		sort.Ints(members)
		k := len(members)
		for i, rep := range members {
			next := members[(i+1)%k]
			out := suffixNode(g, rep, w)
			in := prefixNode(g, next, w)
			if out < 0 || in < 0 {
				panic(fmt.Sprintf("ffc: star member [%s] lacks a w-node for w=%s (unreachable)",
					g.String(rep), fmt.Sprint(w)))
			}
			overrides[out] = in
		}
	}
	_ = root
	return overrides
}

// walk reads off the Hamiltonian cycle of B* from the successor rule: an
// outgoing node follows its override; every other node follows its
// necklace successor (left rotation).
func walk(g *debruijn.Graph, root int, overrides map[int]int, want int) ([]int, error) {
	cycle := make([]int, 0, want)
	x := root
	for {
		cycle = append(cycle, x)
		next, ok := overrides[x]
		if !ok {
			next = g.RotL(x)
		}
		if next == root {
			break
		}
		if len(cycle) > want {
			return nil, fmt.Errorf("ffc: successor walk exceeded component size %d without closing", want)
		}
		x = next
	}
	if len(cycle) != want {
		return nil, fmt.Errorf("ffc: walk closed after %d nodes, want %d (cycle not Hamiltonian in B*)", len(cycle), want)
	}
	return cycle, nil
}

// NecklaceAdjacency builds the necklace adjacency graph N* of the surviving
// component (Definition, §2.2): nodes are necklace representatives; a
// w-labeled edge joins [x] and [y] when αw ∈ [x] and βw ∈ [y] for α ≠ β.
// The result maps each representative to its edge set, each edge giving the
// label and the two endpoints.  Antiparallel pairs are reported once per
// direction.
func NecklaceAdjacency(g *debruijn.Graph, comp *Component) map[int][]AdjEdge {
	adj := make(map[int][]AdjEdge)
	for _, x := range comp.Nodes {
		rep := g.NecklaceRep(x)
		w := g.Suffix(x) // x = αw is the outgoing node for label w
		// Successors wβ of x in other surviving necklaces yield w-edges.
		base := w * g.D
		for beta := 0; beta < g.D; beta++ {
			y := base + beta
			if !comp.Member(y) {
				continue
			}
			yrep := g.NecklaceRep(y)
			if yrep == rep {
				continue
			}
			adj[rep] = append(adj[rep], AdjEdge{W: w, From: rep, To: yrep})
		}
	}
	return adj
}

// AdjEdge is a directed labeled edge of N*.
type AdjEdge struct {
	W        int
	From, To int
}
