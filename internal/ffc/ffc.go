// Package ffc implements Chapter 2 of Rowley–Bose: the fault-free cycle
// (FFC) algorithm, which embeds a ring in the d-ary De Bruijn network
// B(d,n) in the presence of node failures.
//
// The algorithm treats a necklace (rotation cycle) as faulty when it
// contains a faulty node, removes the faulty necklaces, and stitches the
// surviving necklaces of the largest remaining component B* into a single
// Hamiltonian cycle of B*.  The stitching is guided by a spanning tree of
// the necklace adjacency graph N* whose same-label edge sets T_w are
// height-one stars (Step 1), each star being closed into a directed cycle
// (Step 2); the ring is then read off by a purely local successor rule
// (Step 3, Proposition 2.1).
//
// The package also provides the constructive fault-free routing paths of
// Proposition 2.2, the worst-case fault family of §2.5, the random-fault
// simulation harness behind Tables 2.1 and 2.2, and a distributed
// implementation of the algorithm (§2.4) on a synchronous message-passing
// network simulator.
//
// # Dense kernels
//
// The embedding and simulation hot paths run on allocation-free dense
// kernels (see PERF.md at the repo root): an Embedder carries flat
// epoch-stamped scratch arrays — distances, component ids, visited
// stamps, successor overrides — that reset in O(1) between runs, plus a
// precomputed necklace-representative table that turns the alive test
// into one array load.  Simulate shards its Monte-Carlo trials across a
// worker pool; each trial draws from an independent PCG stream derived
// from (seed, fault count, trial index) and the per-row statistics merge
// with commutative integer reductions, so tables are bit-identical for a
// fixed seed at any worker count.  The pre-rewrite map-based kernels are
// preserved in legacy_test.go and pinned against the dense ones by
// equivalence tests.
package ffc

import (
	"errors"
	"fmt"

	"debruijnring/internal/debruijn"
)

// Result reports an embedding produced by Embed.
type Result struct {
	Cycle           []int        // Hamiltonian cycle of B*, starting at Root
	Root            int          // the distinguished node R (minimal node of B*)
	BStarSize       int          // |B*|
	Eccentricity    int          // eccentricity of Root in B* (broadcast rounds, Step 1.1)
	FaultyNecklaces map[int]bool // representatives of removed necklaces
	FaultyNodeCount int          // total nodes in faulty necklaces (N_F of §2.5)

	// Tree is the spanning tree T of N* built in Step 1: for each non-root
	// necklace representative, its parent representative and edge label w.
	Tree map[int]TreeEdge
	// Overrides is the Step-3 successor map derived from the modified tree
	// D: for every outgoing node, the entry node of the next necklace on
	// its w-cycle.  Nodes absent from the map follow their necklace
	// successor (left rotation).
	Overrides map[int]int
}

// TreeEdge is one edge of the necklace spanning tree T: the child necklace
// hangs from Parent with label W (an (n−1)-digit code).
type TreeEdge struct {
	Parent int // parent necklace representative
	W      int // edge label, an (n−1)-tuple code
}

// Embed runs the FFC algorithm on B(d,n) with the given faulty nodes and
// returns the fault-free ring.  It fails only when no nonfaulty necklace
// survives.
//
// Embed allocates a fresh Embedder per call; repeated embeddings on the
// same graph should construct one Embedder (or pool them) and reuse it.
func Embed(g *debruijn.Graph, faults []int) (*Result, error) {
	return NewEmbedder(g).Embed(faults)
}

// FaultyNecklaces returns the set of necklace representatives containing at
// least one of the given faulty nodes.
func FaultyNecklaces(g *debruijn.Graph, faults []int) map[int]bool {
	reps := make(map[int]bool, len(faults))
	for _, f := range faults {
		if f < 0 || f >= g.Size {
			panic(fmt.Sprintf("ffc: fault %d out of range", f))
		}
		reps[g.NecklaceRep(f)] = true
	}
	return reps
}

// Component is a connected component of the surviving subgraph.  Because
// whole necklaces are removed, weak and strong connectivity coincide
// (every inter-necklace edge αw → wβ has a directed return path through the
// two necklaces via βw → wα), so Nodes is exactly the set reachable from
// MinNode along directed edges.
type Component struct {
	Nodes   []int
	MinNode int
	Member  func(int) bool
}

// LargestComponent returns the largest component of the subgraph induced by
// alive nodes, breaking ties toward the component with the smallest node.
func LargestComponent(g *debruijn.Graph, alive func(int) bool) (*Component, error) {
	compID := make([]int, g.Size)
	for i := range compID {
		compID[i] = -1
	}
	var sizes []int
	var minNodes []int
	var stack, buf []int
	for x := 0; x < g.Size; x++ {
		if !alive(x) || compID[x] != -1 {
			continue
		}
		id := len(sizes)
		sizes = append(sizes, 0)
		minNodes = append(minNodes, x)
		stack = append(stack[:0], x)
		compID[x] = id
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			sizes[id]++
			buf = g.Successors(v, buf)
			for _, w := range buf {
				if alive(w) && compID[w] == -1 {
					compID[w] = id
					stack = append(stack, w)
				}
			}
			buf = g.Predecessors(v, buf)
			for _, w := range buf {
				if alive(w) && compID[w] == -1 {
					compID[w] = id
					stack = append(stack, w)
				}
			}
		}
	}
	if len(sizes) == 0 {
		return nil, errors.New("ffc: every necklace is faulty; no component survives")
	}
	best := 0
	for id := 1; id < len(sizes); id++ {
		if sizes[id] > sizes[best] {
			best = id
		}
	}
	nodes := make([]int, 0, sizes[best])
	for x := 0; x < g.Size; x++ {
		if compID[x] == best {
			nodes = append(nodes, x)
		}
	}
	member := func(x int) bool { return x >= 0 && x < g.Size && compID[x] == best }
	return &Component{Nodes: nodes, MinNode: minNodes[best], Member: member}, nil
}

// SuffixNode returns the node of the necklace [rep] whose trailing n−1
// digits equal w (the outgoing node αw of a star labeled w), or −1 if the
// necklace carries no such window.  Exposed for the incremental ring
// repair of internal/repair, which re-closes individual stars without
// rerunning the full algorithm.
func SuffixNode(g *debruijn.Graph, rep, w int) int { return suffixNode(g, rep, w) }

// PrefixNode returns the node of [rep] whose leading n−1 digits equal w
// (the incoming node wβ of a star labeled w), or −1.  See SuffixNode.
func PrefixNode(g *debruijn.Graph, rep, w int) int { return prefixNode(g, rep, w) }

// suffixNode returns the unique node of the necklace [rep] whose trailing
// n−1 digits equal w (the outgoing node αw), or −1 if none exists.
func suffixNode(g *debruijn.Graph, rep, w int) int {
	y := rep
	for {
		if g.Suffix(y) == w {
			return y
		}
		y = g.RotL(y)
		if y == rep {
			return -1
		}
	}
}

// prefixNode returns the unique node of [rep] whose leading n−1 digits
// equal w (the incoming node wβ), or −1.
func prefixNode(g *debruijn.Graph, rep, w int) int {
	y := rep
	for {
		if g.Prefix(y) == w {
			return y
		}
		y = g.RotL(y)
		if y == rep {
			return -1
		}
	}
}

// NecklaceAdjacency builds the necklace adjacency graph N* of the surviving
// component (Definition, §2.2): nodes are necklace representatives; a
// w-labeled edge joins [x] and [y] when αw ∈ [x] and βw ∈ [y] for α ≠ β.
// The result maps each representative to its edge set, each edge giving the
// label and the two endpoints.  Antiparallel pairs are reported once per
// direction.
func NecklaceAdjacency(g *debruijn.Graph, comp *Component) map[int][]AdjEdge {
	adj := make(map[int][]AdjEdge)
	for _, x := range comp.Nodes {
		rep := g.NecklaceRep(x)
		w := g.Suffix(x) // x = αw is the outgoing node for label w
		// Successors wβ of x in other surviving necklaces yield w-edges.
		base := w * g.D
		for beta := 0; beta < g.D; beta++ {
			y := base + beta
			if !comp.Member(y) {
				continue
			}
			yrep := g.NecklaceRep(y)
			if yrep == rep {
				continue
			}
			adj[rep] = append(adj[rep], AdjEdge{W: w, From: rep, To: yrep})
		}
	}
	return adj
}

// AdjEdge is a directed labeled edge of N*.
type AdjEdge struct {
	W        int
	From, To int
}
