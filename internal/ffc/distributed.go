package ffc

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"debruijnring/internal/debruijn"
	"debruijnring/internal/netsim"
)

// PhaseRounds breaks down the communication cost of the distributed FFC
// run, mirroring the accounting of §2.4–§2.5: Θ(n) necklace-local work plus
// the broadcast eccentricity K, for a total of O(K + n) rounds.
type PhaseRounds struct {
	Probe      int // necklace fault detection: n rounds
	Broadcast  int // spanning-tree broadcast from R: ecc(R) rounds
	Leader     int // earliest-node circulation: n rounds
	Register   int // child-Y → parent registration: 1 round
	Announce   int // star exit announcements: 1 round
	Membership int // star membership circulation: n rounds
}

// Total returns the total number of communication rounds.
func (p PhaseRounds) Total() int {
	return p.Probe + p.Broadcast + p.Leader + p.Register + p.Announce + p.Membership
}

// DistResult is the outcome of the distributed FFC execution.
type DistResult struct {
	Cycle     []int
	Root      int
	BStarSize int
	Rounds    PhaseRounds
	Messages  int64
}

// Message payloads of the §2.4 protocol.  All messages travel along De
// Bruijn edges except the single child→parent registration, which uses the
// reverse direction of one edge (physical links are bidirectional).
type (
	probeMsg    struct{ Origin, Min int }
	bcastMsg    struct{ Dist int }
	leaderMsg   struct{ Dist, Node, TTL int }
	registerMsg struct{ W int }
	announceMsg struct{ Rep, Exit int }
	memberMsg   struct {
		W    int
		TTL  int
		List []announceMsg
	}
)

// nodeState is the per-processor memory of the protocol.
type nodeState struct {
	faulty    bool
	alive     bool // necklace known fault-free after the probe phase
	rep       int  // necklace representative (learned during the probe)
	dist      int  // broadcast distance from R (−1 = not reached)
	parent    int  // broadcast parent (minimal sender at first receipt)
	bestDist  int  // leader-election working state
	bestNode  int
	isExit    bool // outgoing node of its necklace for label exitW
	exitW     int
	successor int // computed H-successor (−1 until known)
}

// distScratch carries the reusable simulation state of one distributed
// run — the simulator's per-node message buffers, the protocol states
// and the successor iteration buffer the phase handlers share — so
// repeated runs (Monte-Carlo sweeps, benchmark loops) reuse one
// allocation set, extending the dense epoch-stamped scratch discipline
// of the sequential kernels (PERF.md) to the simulator.  Handlers run
// sequentially within a round, so one shared successor buffer is safe.
type distScratch struct {
	net    *netsim.Network
	states []nodeState
	succ   []int
}

var distPool = sync.Pool{New: func() any { return &distScratch{net: netsim.New(0)} }}

// EmbedDistributed runs the network-level FFC implementation of §2.4 on a
// simulated synchronous De Bruijn network, rooting the broadcast at the
// minimal alive necklace representative.
func EmbedDistributed(g *debruijn.Graph, faults []int) (*DistResult, error) {
	return EmbedDistributedFrom(g, faults, -1)
}

// EmbedDistributedFrom is EmbedDistributed with an explicit distinguished
// node R (which must be the representative of a nonfaulty necklace, as in
// the paper's Step 1.1).  root = −1 selects the minimal alive
// representative.  The ring spans the component of B(d,n) minus faulty
// necklaces that contains R.
func EmbedDistributedFrom(g *debruijn.Graph, faults []int, root int) (*DistResult, error) {
	sc := distPool.Get().(*distScratch)
	defer distPool.Put(sc)
	sc.net.Reset(g.Size)
	net := sc.net
	if cap(sc.states) < g.Size {
		sc.states = make([]nodeState, g.Size)
	}
	states := sc.states[:g.Size]
	for i := range states {
		states[i] = nodeState{dist: -1, parent: -1, successor: -1, rep: -1, bestDist: -1}
	}
	for _, f := range faults {
		states[f].faulty = true
		net.Kill(f)
	}

	rounds := PhaseRounds{}

	// --- Phase 1: necklace fault detection (n rounds, §2.4). ---
	for x := 0; x < g.Size; x++ {
		if !states[x].faulty {
			net.Send(x, g.RotL(x), probeMsg{Origin: x, Min: x})
		}
	}
	net.RunRounds(g.N, func(v int, inbox []netsim.Message) {
		for _, m := range inbox {
			p, ok := m.Payload.(probeMsg)
			if !ok {
				continue
			}
			if p.Origin == v {
				states[v].alive = true
				states[v].rep = min(p.Min, v)
				continue
			}
			if v < p.Min {
				p.Min = v
			}
			net.Send(v, g.RotL(v), p)
		}
	})
	rounds.Probe = g.N

	if root == -1 {
		for x := 0; x < g.Size; x++ {
			if states[x].alive {
				root = x
				break
			}
		}
		if root == -1 {
			return nil, errors.New("ffc: every necklace is faulty; no component survives")
		}
	}
	if root < 0 || root >= g.Size || !states[root].alive || states[root].rep != root {
		return nil, fmt.Errorf("ffc: root must be an alive necklace representative")
	}
	rootRep := states[root].rep

	// --- Phase 2: broadcast from R (K = ecc(R) rounds, Step 1.1). ---
	states[root].dist = 0
	sc.succ = g.Successors(root, sc.succ)
	for _, w := range sc.succ {
		if w != root {
			net.Send(root, w, bcastMsg{Dist: 0})
		}
	}
	rounds.Broadcast = net.RunUntilQuiet(func(v int, inbox []netsim.Message) {
		st := &states[v]
		if !st.alive || st.dist >= 0 {
			return
		}
		first, dist := -1, 0
		for _, m := range inbox {
			bm, ok := m.Payload.(bcastMsg)
			if !ok {
				continue
			}
			if first == -1 || m.From < first {
				first = m.From
				dist = bm.Dist + 1
			}
		}
		if first == -1 {
			return
		}
		st.dist = dist
		st.parent = first
		sc.succ = g.Successors(v, sc.succ)
		for _, w := range sc.succ {
			if w != v {
				net.Send(v, w, bcastMsg{Dist: dist})
			}
		}
	})

	// --- Phase 3: earliest-node circulation (n rounds, Step 1.2). ---
	for x := 0; x < g.Size; x++ {
		st := &states[x]
		if !st.alive || st.dist < 0 {
			continue
		}
		st.bestDist, st.bestNode = st.dist, x
		net.Send(x, g.RotL(x), leaderMsg{Dist: st.dist, Node: x, TTL: g.N})
	}
	net.RunRounds(g.N, func(v int, inbox []netsim.Message) {
		st := &states[v]
		for _, m := range inbox {
			lm, ok := m.Payload.(leaderMsg)
			if !ok {
				continue
			}
			if st.bestDist >= 0 && (lm.Dist < st.bestDist || (lm.Dist == st.bestDist && lm.Node < st.bestNode)) {
				st.bestDist, st.bestNode = lm.Dist, lm.Node
			}
			if lm.TTL > 1 && st.bestDist >= 0 {
				net.Send(v, g.RotL(v), leaderMsg{Dist: st.bestDist, Node: st.bestNode, TTL: lm.TTL - 1})
			}
		}
	})
	rounds.Leader = g.N

	// --- Phase 4: registration (1 round, Step 1.2 → Step 2). ---
	// Y = wα informs its broadcast parent βw that it heads a tree edge
	// labeled w (reverse-edge message); the necklace predecessor of Y marks
	// itself as the child-side star exit.
	for x := 0; x < g.Size; x++ {
		st := &states[x]
		if !st.alive || st.dist < 0 || st.rep == rootRep {
			continue
		}
		if st.bestNode == x {
			net.Send(x, st.parent, registerMsg{W: g.Prefix(x)})
		}
		if g.RotL(x) == st.bestNode {
			st.isExit = true
			st.exitW = g.Suffix(x)
		}
	}
	net.RunRounds(1, func(v int, inbox []netsim.Message) {
		st := &states[v]
		for _, m := range inbox {
			rm, ok := m.Payload.(registerMsg)
			if !ok {
				continue
			}
			if st.isExit && st.exitW != rm.W {
				panic("ffc: node is star exit for two labels (height-1 property violated)")
			}
			st.isExit = true
			st.exitW = rm.W
		}
	})
	rounds.Register = 1

	// --- Phase 5: star exit announcements (1 round, Step 2). ---
	// Exit αw announces (rep, exit) to all successors {wβ}.  All
	// announcements arriving at a node concern the label w of its own
	// prefix; the entry node wα of each star necklace (the one whose own
	// exit announced) collects the star's membership.
	for x := 0; x < g.Size; x++ {
		st := &states[x]
		if !st.alive || st.dist < 0 || !st.isExit {
			continue
		}
		sc.succ = g.Successors(x, sc.succ)
		for _, w := range sc.succ {
			net.Send(x, w, announceMsg{Rep: st.rep, Exit: x})
		}
	}
	entryLists := make(map[int][]announceMsg)
	net.RunRounds(1, func(v int, inbox []netsim.Message) {
		st := &states[v]
		if !st.alive || st.dist < 0 {
			return
		}
		var list []announceMsg
		mine := false
		for _, m := range inbox {
			am, ok := m.Payload.(announceMsg)
			if !ok {
				continue
			}
			list = append(list, am)
			if am.Rep == st.rep {
				mine = true
			}
		}
		if mine {
			entryLists[v] = list
		}
	})
	rounds.Announce = 1

	// --- Phase 6: membership circulation (n rounds, Step 2). ---
	// Each participating entry node passes the membership list around its
	// necklace; when it reaches the exit for the same label, the exit
	// applies the Step-2 ordering to pick its H-successor.
	// Iterate entry nodes in sorted order so the send sequence — and
	// therefore netsim's per-round inbox contents — is independent of
	// Go's randomized map iteration.
	entryNodes := make([]int, 0, len(entryLists))
	for v := range entryLists {
		entryNodes = append(entryNodes, v)
	}
	sort.Ints(entryNodes)
	for _, v := range entryNodes {
		list := entryLists[v]
		w := g.Prefix(v)
		st := &states[v]
		if st.isExit && st.exitW == w && st.successor < 0 {
			st.successor = chooseSuccessor(g, st, list) // loop necklaces: entry = exit
		}
		net.Send(v, g.RotL(v), memberMsg{W: w, TTL: g.N, List: list})
	}
	net.RunRounds(g.N, func(v int, inbox []netsim.Message) {
		st := &states[v]
		for _, m := range inbox {
			mm, ok := m.Payload.(memberMsg)
			if !ok {
				continue
			}
			if st.isExit && st.exitW == mm.W && st.successor < 0 {
				st.successor = chooseSuccessor(g, st, mm.List)
			}
			if mm.TTL > 1 {
				net.Send(v, g.RotL(v), memberMsg{W: mm.W, TTL: mm.TTL - 1, List: mm.List})
			}
		}
	})
	rounds.Membership = g.N

	// --- Step 3: local successor rule; read off the ring. ---
	want := 0
	for x := 0; x < g.Size; x++ {
		st := &states[x]
		if !st.alive || st.dist < 0 {
			continue
		}
		want++
		if st.successor < 0 {
			st.successor = g.RotL(x)
		}
	}
	cycle := make([]int, 0, want)
	x := root
	for {
		cycle = append(cycle, x)
		x = states[x].successor
		if x == root {
			break
		}
		if len(cycle) > want {
			return nil, fmt.Errorf("ffc: distributed walk exceeded %d nodes", want)
		}
	}
	if len(cycle) != want {
		return nil, fmt.Errorf("ffc: distributed walk closed after %d of %d nodes", len(cycle), want)
	}
	return &DistResult{
		Cycle:     cycle,
		Root:      root,
		BStarSize: want,
		Rounds:    rounds,
		Messages:  net.MessagesSent,
	}, nil
}

// chooseSuccessor implements the Step-2 ordering at an exit node: among the
// star members (by representative), jump to the entry node of the
// next-largest necklace, wrapping from the largest to the smallest.  The
// entry node of a member is the left rotation of its exit node.
func chooseSuccessor(g *debruijn.Graph, st *nodeState, list []announceMsg) int {
	nextRep, nextExit := -1, -1
	minRep, minExit := -1, -1
	for _, am := range list {
		if minRep == -1 || am.Rep < minRep {
			minRep, minExit = am.Rep, am.Exit
		}
		if am.Rep > st.rep && (nextRep == -1 || am.Rep < nextRep) {
			nextRep, nextExit = am.Rep, am.Exit
		}
	}
	if nextExit == -1 {
		nextExit = minExit
	}
	return g.RotL(nextExit)
}
