package ffc

import (
	"errors"
	"fmt"

	"debruijnring/internal/debruijn"
)

// FaultFreePath constructs a directed path of length at most 2n from x to y
// avoiding all faulty necklaces, using the necklace-disjoint path families
// of Proposition 2.2: one of the d paths P_α (x → αⁿ) composed, via the
// shortcut edge xₙα^{n−1} → α^{n−1}(α+i), with one of the d−1 paths Q_i
// (αⁿ → y).  It requires f ≤ d−2 faulty necklaces and that x and y lie on
// nonfaulty necklaces; under those premises a fault-free combination always
// exists.
func FaultFreePath(g *debruijn.Graph, x, y int, faultyReps map[int]bool) ([]int, error) {
	bad := func(v int) bool { return faultyReps[g.NecklaceRep(v)] }
	if bad(x) || bad(y) {
		return nil, errors.New("ffc: endpoints must lie on nonfaulty necklaces")
	}
	if x == y {
		return []int{x}, nil
	}
	// Try every α whose outward path P_α is internally fault-free, then
	// every shift i whose return path Q_i is fault-free.
	for alpha := 0; alpha < g.D; alpha++ {
		pa, ok := outwardPath(g, x, alpha, bad)
		if !ok {
			continue
		}
		for i := 1; i < g.D; i++ {
			beta := (alpha + i) % g.D
			qi, ok := returnPath(g, alpha, beta, y, bad)
			if !ok {
				continue
			}
			// pa ends at xₙα^{n−1}; qi begins at α^{n−1}β; the shortcut
			// edge joins them directly, skipping αⁿ.
			path := append(append([]int{}, pa...), qi...)
			path = compressWalk(path)
			if len(path)-1 > 2*g.N {
				return nil, fmt.Errorf("ffc: combined path has length %d > 2n", len(path)-1)
			}
			return path, nil
		}
	}
	return nil, errors.New("ffc: no fault-free P_α/Q_i combination (more than d−2 faults?)")
}

// outwardPath builds P_α up to (and including) the node xₙα^{n−1}, the
// predecessor of αⁿ, verifying that every node after x is on a nonfaulty
// necklace.  (αⁿ itself is skipped by the shortcut.)
func outwardPath(g *debruijn.Graph, x, alpha int, bad func(int) bool) ([]int, bool) {
	path := []int{x}
	v := x
	for j := 0; j < g.N-1; j++ {
		v = g.Successor(v, alpha)
		if bad(v) {
			return nil, false
		}
		path = append(path, v)
	}
	return path, true
}

// returnPath builds the tail of Q_i from α^{n−1}β down to y, verifying
// fault-freedom of every node strictly before y (y itself was checked by
// the caller).  β = α+i.
func returnPath(g *debruijn.Graph, alpha, beta, y int, bad func(int) bool) ([]int, bool) {
	// Nodes: α^{n−1}β, α^{n−2}βy₁, …, βy₁…y_{n−1}, y.
	v := g.Repeat(alpha)
	v = g.Successor(v, beta)
	if bad(v) {
		return nil, false
	}
	path := []int{v}
	for j := 1; j <= g.N; j++ {
		v = g.Successor(v, g.Digit(y, j))
		if j < g.N && bad(v) {
			return nil, false
		}
		path = append(path, v)
	}
	return path, true
}

// compressWalk removes an immediate revisit of the same node (which can
// occur when y's leading digits coincide with the junction pattern) by
// cutting the walk at the first repetition and splicing.  The result is a
// simple path.
func compressWalk(walk []int) []int {
	first := make(map[int]int, len(walk))
	out := make([]int, 0, len(walk))
	for _, v := range walk {
		if idx, seen := first[v]; seen {
			// Cut the loop: drop everything after the first occurrence.
			for _, u := range out[idx+1:] {
				delete(first, u)
			}
			out = out[:idx+1]
			continue
		}
		first[v] = len(out)
		out = append(out, v)
	}
	return out
}

// NecklacesOnPath returns the necklaces of the intermediate nodes of a path
// (S_P of §2.5: initial and final nodes excluded).
func NecklacesOnPath(g *debruijn.Graph, path []int) map[int]bool {
	s := make(map[int]bool)
	for i := 1; i < len(path)-1; i++ {
		s[g.NecklaceRep(path[i])] = true
	}
	return s
}

// OutwardFamily returns the d paths {P_α} from x (each of length n, ending
// at αⁿ), used by tests to verify their pairwise necklace-disjointness.
func OutwardFamily(g *debruijn.Graph, x int) [][]int {
	out := make([][]int, g.D)
	for alpha := 0; alpha < g.D; alpha++ {
		path := []int{x}
		v := x
		for j := 0; j < g.N; j++ {
			v = g.Successor(v, alpha)
			path = append(path, v)
		}
		out[alpha] = path
	}
	return out
}

// ReturnFamily returns the d−1 paths {Q_i} from αⁿ to y (each of length
// n+1), used by tests to verify their pairwise necklace-disjointness.
func ReturnFamily(g *debruijn.Graph, alpha, y int) [][]int {
	out := make([][]int, 0, g.D-1)
	for i := 1; i < g.D; i++ {
		beta := (alpha + i) % g.D
		path := []int{g.Repeat(alpha)}
		v := g.Successor(g.Repeat(alpha), beta)
		path = append(path, v)
		for j := 1; j <= g.N; j++ {
			v = g.Successor(v, g.Digit(y, j))
			path = append(path, v)
		}
		out = append(out, path)
	}
	return out
}

// WorstCaseFaults returns the adversarial fault family of §2.5,
// F = {α^{n−1}(d−1) | 0 ≤ α ≤ f−1}, for which no fault-free cycle longer
// than dⁿ − nf exists.
func WorstCaseFaults(g *debruijn.Graph, f int) []int {
	if f < 0 || f > g.D {
		panic(fmt.Sprintf("ffc: worst-case family needs 0 ≤ f ≤ d, got %d", f))
	}
	out := make([]int, f)
	for a := 0; a < f; a++ {
		out[a] = g.Successor(g.Repeat(a), g.D-1) // α^{n−1}(d−1)
	}
	return out
}

// UpperBound returns dⁿ − nf, the worst-case optimal cycle length of
// Proposition 2.2 (all faults on distinct full-length necklaces).
func UpperBound(g *debruijn.Graph, f int) int { return g.Size - g.N*f }
