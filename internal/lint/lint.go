// Package lint implements ringlint, the repo's invariant-enforcing
// static-analysis suite.  See doc.go for the analyzer catalogue and the
// //ringlint: annotation grammar.
//
// The implementation is standard-library only: packages are parsed with
// go/parser, type-checked with go/types, and stdlib imports are resolved
// by the source importer (go/importer "source"), so the module keeps its
// zero-dependency guarantee.
package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one diagnostic: a rule violation at a position.
type Finding struct {
	Pos      token.Position
	Analyzer string // determinism | noalloc | atomics | journal | directive
	Rule     string // time | rand | maporder | alloc | atomic | journal | directive
	Msg      string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s/%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Rule, f.Msg)
}

// Package is one loaded, type-checked package of the target module.
type Package struct {
	Path   string // import path
	Rel    string // module-relative dir ("." for the root)
	Dir    string
	Files  []*ast.File
	Pkg    *types.Package
	Info   *types.Info
	Kernel bool // determinism time/rand rules apply package-wide
}

// Config classifies the target tree for the analyzers.
type Config struct {
	// Module is the module path; import paths are Module or
	// Module/<rel>.
	Module string
	// KernelPackages are module-relative package dirs whose code must be
	// deterministic: time.Now/Since, the global math/rand source, and
	// unordered map iteration are forbidden there.
	KernelPackages []string
	// KernelFiles are module-relative files given kernel determinism
	// rules even though the rest of their package is not a kernel
	// (e.g. fleet/hash.go).
	KernelFiles []string
	// JournalPackages are module-relative package dirs where every error
	// from a Write/Append/Sync call must be checked (silent ack loss is
	// the fleet's one unforgivable bug).
	JournalPackages []string
	// SkipDirs are directory basenames excluded from the walk, in
	// addition to testdata, hidden dirs, and _-prefixed dirs.
	SkipDirs []string
}

// RepoConfig is the committed classification of this repository.
func RepoConfig() Config {
	return Config{
		Module: "debruijnring",
		KernelPackages: []string{
			"internal/ffc",
			"internal/repair",
			"internal/dense",
			"internal/netsim",
		},
		KernelFiles: []string{
			"fleet/hash.go",
		},
		JournalPackages: []string{
			"session",
			"fleet",
		},
	}
}

func (c Config) kernelPackage(rel string) bool {
	for _, k := range c.KernelPackages {
		if rel == k {
			return true
		}
	}
	return false
}

func (c Config) kernelFile(relFile string) bool {
	for _, k := range c.KernelFiles {
		if relFile == filepath.ToSlash(k) {
			return true
		}
	}
	return false
}

func (c Config) journalPackage(rel string) bool {
	for _, j := range c.JournalPackages {
		if rel == j || strings.HasPrefix(rel, j+"/") {
			return true
		}
	}
	return false
}

// Result is the outcome of one Run: the loaded packages, the parsed
// annotations, and the surviving (non-suppressed) findings.
type Result struct {
	Findings    []Finding
	Packages    []*Package
	Annotations *Annotations
	// NoallocFuncs are the names of the transitive noalloc roots, for
	// the -list self-check.
	NoallocFuncs []string
}

// Loader parses and type-checks the module rooted at Root.
type Loader struct {
	Root   string
	Config Config

	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*Package // by import path
	dirs map[string]string   // import path -> dir
	load map[string]bool     // in-progress, for cycle detection
}

// NewLoader returns a loader for the module tree rooted at root.
func NewLoader(root string, cfg Config) *Loader {
	fset := token.NewFileSet()
	// The source importer type-checks stdlib packages from GOROOT
	// source; cgo variants (net, os/user) cannot be type-checked that
	// way, so force the pure-Go fallbacks.
	build.Default.CgoEnabled = false
	return &Loader{
		Root:   root,
		Config: cfg,
		fset:   fset,
		std:    importer.ForCompiler(fset, "source", nil),
		pkgs:   map[string]*Package{},
		dirs:   map[string]string{},
		load:   map[string]bool{},
	}
}

// Fset exposes the loader's position table.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// LoadAll discovers every non-test package under Root and type-checks
// it (and, transitively, its module-internal imports).  Packages are
// returned sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	if err := l.discover(); err != nil {
		return nil, err
	}
	paths := make([]string, 0, len(l.dirs))
	for p := range l.dirs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.loadPackage(p)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	return out, nil
}

func (l *Loader) skipDir(name string) bool {
	if name == "testdata" || name == "vendor" {
		return true
	}
	if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
		return true
	}
	for _, s := range l.Config.SkipDirs {
		if name == s {
			return true
		}
	}
	return false
}

func (l *Loader) discover() error {
	return filepath.WalkDir(l.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if path != l.Root && l.skipDir(d.Name()) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			rel, err := filepath.Rel(l.Root, path)
			if err != nil {
				return err
			}
			ip := l.Config.Module
			if rel != "." {
				ip = l.Config.Module + "/" + filepath.ToSlash(rel)
			}
			l.dirs[ip] = path
			break
		}
		return nil
	})
}

// Import implements types.Importer: module-internal paths load from the
// tree, everything else (stdlib) goes to the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.Config.Module || strings.HasPrefix(path, l.Config.Module+"/") {
		pkg, err := l.loadPackage(path)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("lint: no such module package %q", path)
		}
		return pkg.Pkg, nil
	}
	return l.std.Import(path)
}

func (l *Loader) loadPackage(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir, ok := l.dirs[path]
	if !ok {
		return nil, fmt.Errorf("lint: unknown package %q", path)
	}
	if l.load[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.load[path] = true
	defer delete(l.load, path)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		l.pkgs[path] = nil
		return nil, nil
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", path, err)
	}
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil {
		return nil, err
	}
	rel = filepath.ToSlash(rel)
	p := &Package{
		Path:   path,
		Rel:    rel,
		Dir:    dir,
		Files:  files,
		Pkg:    tpkg,
		Info:   info,
		Kernel: l.Config.kernelPackage(rel),
	}
	l.pkgs[path] = p
	return p, nil
}

// relFile returns the module-relative slash path of a file position.
func (l *Loader) relFile(pos token.Pos) string {
	file := l.fset.Position(pos).Filename
	rel, err := filepath.Rel(l.Root, file)
	if err != nil {
		return file
	}
	return filepath.ToSlash(rel)
}

// Run loads the module at root and applies every analyzer, returning
// the surviving findings sorted by position.
func Run(root string, cfg Config) (*Result, error) {
	l := NewLoader(root, cfg)
	pkgs, err := l.LoadAll()
	if err != nil {
		return nil, err
	}
	ann := collectAnnotations(l, pkgs)
	res := &Result{Packages: pkgs, Annotations: ann}

	var raw []Finding
	raw = append(raw, ann.problems...)
	raw = append(raw, analyzeDeterminism(l, pkgs)...)
	noalloc, roots := analyzeNoalloc(l, pkgs, ann)
	raw = append(raw, noalloc...)
	res.NoallocFuncs = roots
	raw = append(raw, analyzeAtomics(l, pkgs)...)
	raw = append(raw, analyzeJournal(l, pkgs)...)

	for _, f := range raw {
		if ann.allowed(f) {
			continue
		}
		res.Findings = append(res.Findings, f)
	}
	sort.Slice(res.Findings, func(i, j int) bool {
		a, b := res.Findings[i], res.Findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return res, nil
}
