// Package lint documentation: the ringlint analyzer catalogue and
// annotation grammar.
//
// # Analyzers
//
// ringlint machine-checks the conventions the repo's headline
// guarantees rest on.  Four analyzers run over every non-test package
// of the module:
//
//   - determinism — in kernel-classified code (internal/ffc,
//     internal/repair, internal/dense, internal/netsim, fleet/hash.go)
//     time.Now/time.Since and draws from the global math/rand source
//     are forbidden; module-wide, `range` over a map must be provably
//     order-insensitive (see below) or annotated.  Guards: the
//     hash-verified journal replay (PR 3/6) and bit-identical
//     frontier-parallel embeds (PR 9), plus byte-stable /v1/fleet,
//     /v1/stats and /metrics output.
//
//   - noalloc — functions marked //ringlint:noalloc (obs counters and
//     histograms, the dense epoch-scratch paths, the splice tier's
//     per-event surgery) are walked transitively with their
//     module-internal callees and flagged on make/new, slice/map and
//     &-taken composite literals, append growth, string concatenation,
//     fmt.*, interface boxing, dynamic calls, and calls into stdlib
//     packages not on the known-clean allowlist (sync/atomic, math,
//     math/bits).  Guards: the ~24ns/0-alloc Observe path and the
//     bytes/op CI gates (PR 8/9).
//
//   - atomics — an object whose address is passed to a sync/atomic
//     function must never be read or written plainly anywhere in the
//     module, and values of the atomic.* cell types must not be copied
//     (assignment, argument, return) — go vet's copylocks does not
//     cover them.  Guards: -race cleanliness of the SetEmbedWorkers
//     plumbing and the obs counters.
//
//   - journal — in the session and fleet packages every error from a
//     Write/Append/Sync call must be checked; bare-statement calls,
//     `_ =` discards and go/defer invocations are flagged.  Guards:
//     replication's zero-acknowledged-event-loss story — a dropped
//     journal error is a silently lost ack.
//
// # Order-insensitivity
//
// The determinism analyzer accepts a map-range without annotation when
// it can prove the result is independent of iteration order:
//
//   - pure accumulation — every statement is a keyed map write
//     (m[k] = v, m[k] += v), a numeric compound accumulation
//     (x += v, x |= v, x++), delete(m, k), continue, a plain
//     assignment whose RHS mentions neither calls nor loop-locals
//     (found = true), or an if/nested loop over those forms;
//   - append-then-sort — the body appends to local slices (optionally
//     under if-guards) and every such slice is passed to sort.* /
//     slices.Sort* in the statements after the loop.
//
// The prover treats if-conditions as pure; a side-effecting condition
// can defeat it.  That is a deliberate precision/noise trade-off — the
// analyzer is a lint, not a verifier.
//
// # Annotation grammar
//
// Two comment directives, always lowercase, no space after "//":
//
//	//ringlint:noalloc
//
// placed in a function's doc comment marks it as a transitive
// no-allocation root.
//
//	//ringlint:allow <rule> <reason...>
//
// suppresses findings of <rule> on the same line (trailing comment) or
// on the line directly below the comment.  <rule> is one of time,
// rand, maporder, alloc, atomic, journal.  The reason is mandatory —
// an allow without one is itself a finding.  Examples:
//
//	//ringlint:allow maporder close order is immaterial
//	for name, jw := range rp.writers { ... }
//
//	p.trace = append(p.trace[:0], step) //ringlint:allow alloc pooled, amortized
//
// Malformed or unknown //ringlint: directives are reported by the
// directive pseudo-analyzer.
//
// # Running
//
//	go run ./cmd/ringlint ./...     # lint the whole module, exit 1 on findings
//	go run ./cmd/ringlint -list     # print analyzers, classification, annotation counts
//
// The suite is wired into tier-1 CI next to go vet; fixture-based
// golden tests live under testdata/src and a self-check test asserts
// the repo itself stays finding-free.
package lint
