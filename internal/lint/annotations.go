package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ringlint directives (see doc.go for the grammar):
//
//	//ringlint:noalloc
//	//ringlint:allow <rule> <reason...>
const directivePrefix = "//ringlint:"

// Allow is one parsed //ringlint:allow directive.
type Allow struct {
	Rule   string
	Reason string
	Pos    token.Position
}

// Annotations holds every parsed directive of a run, indexed for
// suppression checks, plus findings for malformed directives.
type Annotations struct {
	// allows maps file name -> line -> allows registered on that line.
	allows map[string]map[int][]Allow
	// noalloc maps the *types.Func of every //ringlint:noalloc-marked
	// function to its declaration.
	noalloc map[*types.Func]*ast.FuncDecl
	// AllowCount counts allow directives by rule, for -list.
	AllowCount map[string]int
	problems   []Finding
}

// NoallocRoots exposes the marked functions (analyzer entry points).
func (a *Annotations) NoallocRoots() map[*types.Func]*ast.FuncDecl { return a.noalloc }

// allowRules are the rule names an allow directive may name.
var allowRules = map[string]bool{
	"time":     true,
	"rand":     true,
	"maporder": true,
	"alloc":    true,
	"atomic":   true,
	"journal":  true,
}

func collectAnnotations(l *Loader, pkgs []*Package) *Annotations {
	a := &Annotations{
		allows:     map[string]map[int][]Allow{},
		noalloc:    map[*types.Func]*ast.FuncDecl{},
		AllowCount: map[string]int{},
	}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					a.parseDirective(l, c)
				}
			}
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					if strings.TrimSpace(c.Text) != directivePrefix+"noalloc" {
						continue
					}
					if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
						a.noalloc[obj] = fd
					}
				}
			}
		}
	}
	return a
}

func (a *Annotations) parseDirective(l *Loader, c *ast.Comment) {
	text := strings.TrimSpace(c.Text)
	if !strings.HasPrefix(text, directivePrefix) {
		return
	}
	pos := l.fset.Position(c.Pos())
	body := strings.TrimPrefix(text, directivePrefix)
	fields := strings.Fields(body)
	if len(fields) == 0 {
		a.problem(pos, "empty ringlint directive")
		return
	}
	switch fields[0] {
	case "noalloc":
		if len(fields) != 1 {
			a.problem(pos, "ringlint:noalloc takes no arguments")
		}
		// Association with a func decl is checked in collectAnnotations;
		// a stray noalloc comment not attached to one is harmless.
	case "allow":
		if len(fields) < 2 || !allowRules[fields[1]] {
			a.problem(pos, "ringlint:allow needs a rule (time|rand|maporder|alloc|atomic|journal)")
			return
		}
		if len(fields) < 3 {
			a.problem(pos, "ringlint:allow "+fields[1]+" needs a reason")
			return
		}
		al := Allow{Rule: fields[1], Reason: strings.Join(fields[2:], " "), Pos: pos}
		byLine := a.allows[pos.Filename]
		if byLine == nil {
			byLine = map[int][]Allow{}
			a.allows[pos.Filename] = byLine
		}
		byLine[pos.Line] = append(byLine[pos.Line], al)
		a.AllowCount[al.Rule]++
	default:
		a.problem(pos, "unknown ringlint directive "+fields[0])
	}
}

func (a *Annotations) problem(pos token.Position, msg string) {
	a.problems = append(a.problems, Finding{Pos: pos, Analyzer: "directive", Rule: "directive", Msg: msg})
}

// allowed reports whether f is suppressed by an allow directive on the
// finding's own line (trailing comment) or the line directly above it.
func (a *Annotations) allowed(f Finding) bool {
	byLine := a.allows[f.Pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range [2]int{f.Pos.Line, f.Pos.Line - 1} {
		for _, al := range byLine[line] {
			if al.Rule == f.Rule {
				return true
			}
		}
	}
	return false
}
