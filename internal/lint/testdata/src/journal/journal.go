// Package fixture exercises the journal analyzer: discarded, blanked
// and unobservable Write/Append/Sync errors in a journal-classified
// package, plus the checked and allowed cases.
package fixture

import "errors"

type journal struct{}

func (journal) Append(ev string) error { return errors.New("disk full") }
func (journal) Sync() error            { return nil }

// Drop is the bad case: the error dies as a bare statement.
func Drop(j journal) {
	j.Append("ev")
}

// Blank is the bad case: the error is assigned to _.
func Blank(j journal) {
	_ = j.Append("ev")
}

// Async is the bad case: a go statement makes the error unobservable.
func Async(j journal) {
	go j.Sync()
}

// Checked is the clean case.
func Checked(j journal) error {
	if err := j.Append("ev"); err != nil {
		return err
	}
	return j.Sync()
}

// Hashed is the allowed case: a writer that cannot fail.
func Hashed(j journal) {
	j.Append("ev") //ringlint:allow journal fixture writer never fails
}
