// Package fixture exercises the noalloc analyzer: direct allocation in
// a marked root, transitive allocation through a helper, fmt calls, and
// the //ringlint:allow alloc escape hatch.
package fixture

import "fmt"

type buf struct {
	scratch []int
}

// Grow is the bad case: a make in a noalloc root.
//
//ringlint:noalloc
func (b *buf) Grow(n int) {
	b.scratch = make([]int, n)
}

// Push is the transitive bad case: the allocation sits in a callee.
//
//ringlint:noalloc
func (b *buf) Push(v int) {
	b.helper(v)
}

func (b *buf) helper(v int) {
	b.scratch = append(b.scratch, v)
	fmt.Sprintln(v)
}

// Zero is the clean case: index writes only.
//
//ringlint:noalloc
func (b *buf) Zero() {
	for i := range b.scratch {
		b.scratch[i] = 0
	}
}

// Pooled is the allowed case: amortized growth of pooled scratch.
//
//ringlint:noalloc
func (b *buf) Pooled(v int) {
	b.scratch = append(b.scratch, v) //ringlint:allow alloc pooled scratch in fixture
}
