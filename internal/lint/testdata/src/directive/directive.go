// Package fixture exercises the directive pseudo-analyzer: malformed
// //ringlint: comments are findings in their own right, so a typo can
// never silently suppress nothing.
package fixture

//ringlint:frobnicate
func Unknown() {}

//ringlint:allow
func MissingRule() {}

//ringlint:allow maporder
func MissingReason() {}

//ringlint:allow bogus because reasons
func BadRule() {}

// WellFormed carries a valid (if unused) allow; no finding.
func WellFormed() int {
	return 1 //ringlint:allow time unused but well-formed
}
