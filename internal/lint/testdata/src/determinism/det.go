// Package fixture exercises the determinism analyzer: kernel wall-clock
// and rand bans, and the module-wide map-order discipline with its
// order-insensitivity prover.  The fixture's Config classifies this
// directory as a kernel package.
package fixture

import (
	"math/rand"
	"sort"
	"time"
)

// Stamp is the bad case: a wall-clock read in kernel code.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Jitter is the bad case: a draw from the global math/rand source.
func Jitter() int {
	return rand.Intn(8)
}

// Seeded is the clean case: constructing a private source is allowed,
// only global draws are banned.
func Seeded() *rand.Rand {
	return rand.New(rand.NewSource(5))
}

// AllowedStamp is the allowed case: trace-only timing.
func AllowedStamp() time.Time {
	return time.Now() //ringlint:allow time trace-only timing in fixture
}

// Sum is the provable case: numeric accumulation commutes.
func Sum(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Keys is the provable case: append then sort.
func Keys(m map[int]int) []int {
	var ks []int
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}

// Leak is the bad case: iteration order escapes into the result.
func Leak(m map[int]int) []int {
	var ks []int
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}

// Annotated is the allowed map-order case.
func Annotated(m map[int]func()) {
	//ringlint:allow maporder call order is immaterial in fixture
	for _, fn := range m {
		fn()
	}
}
