// Package fixture exercises the atomics analyzer: plain access to a
// field that is updated via sync/atomic elsewhere, value copies of the
// typed atomic cells, and the pre-publication allow escape hatch.
package fixture

import "sync/atomic"

type counter struct {
	n int64
}

// Bump updates n atomically; this sanctions n as an atomic field.
func (c *counter) Bump() {
	atomic.AddInt64(&c.n, 1)
}

// Racy is the bad case: a plain read of the atomically-updated field.
func (c *counter) Racy() int64 {
	return c.n
}

// Load is the clean case.
func (c *counter) Load() int64 {
	return atomic.LoadInt64(&c.n)
}

// NewCounter is the allowed case: pre-publication initialization.
func NewCounter() *counter {
	c := new(counter)
	c.n = 1 //ringlint:allow atomic pre-publication init in fixture
	return c
}

type typedCell struct {
	v atomic.Int64
}

// Copy is the bad case: returning the cell by value detaches the copy.
func (t *typedCell) Copy() atomic.Int64 {
	return t.v
}

// Ptr is the clean case: hand out a pointer to the shared cell.
func (t *typedCell) Ptr() *atomic.Int64 {
	return &t.v
}
