package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// analyzeNoalloc walks every //ringlint:noalloc-marked function and its
// module-internal static callees, flagging constructs that allocate (or
// that the analyzer cannot prove allocation-free):
//
//   - make / new / slice, map and &-taken composite literals
//   - append (growth may allocate; pooled amortized growth needs an
//     //ringlint:allow alloc annotation at the site)
//   - string concatenation and []byte/[]rune <-> string conversions
//   - fmt.* calls
//   - conversions and assignments that box a concrete value into an
//     interface
//   - dynamic calls (interface methods, func values, closures) and
//     calls into stdlib packages outside the known-clean allowlist
//     (sync/atomic, math, math/bits) — not provably allocation-free
//   - go statements and defers
//
// It returns the findings plus the sorted names of the marked roots
// (for ringlint -list).
func analyzeNoalloc(l *Loader, pkgs []*Package, ann *Annotations) ([]Finding, []string) {
	w := &noallocWalker{
		l:       l,
		decls:   map[*types.Func]funcDecl{},
		visited: map[*types.Func]bool{},
	}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					w.decls[obj] = funcDecl{fd: fd, pkg: p}
				}
			}
		}
	}
	var roots []string
	for obj := range ann.NoallocRoots() {
		roots = append(roots, obj.FullName())
	}
	sort.Strings(roots)
	// Walk in deterministic order so finding order is stable run-to-run.
	ordered := make([]*types.Func, 0, len(ann.NoallocRoots()))
	for obj := range ann.NoallocRoots() {
		ordered = append(ordered, obj)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].FullName() < ordered[j].FullName() })
	for _, obj := range ordered {
		w.walk(obj, obj.FullName())
	}
	return w.findings, roots
}

type funcDecl struct {
	fd  *ast.FuncDecl
	pkg *Package
}

type noallocWalker struct {
	l        *Loader
	decls    map[*types.Func]funcDecl
	visited  map[*types.Func]bool
	findings []Finding
}

// allocCleanStdlib are stdlib packages whose exported call surface is
// known not to allocate on the paths this repo uses.
var allocCleanStdlib = map[string]bool{
	"sync/atomic": true,
	"math":        true,
	"math/bits":   true,
}

func (w *noallocWalker) report(p *Package, pos token.Pos, msg, root string) {
	w.findings = append(w.findings, Finding{
		Pos:      w.l.fset.Position(pos),
		Analyzer: "noalloc",
		Rule:     "alloc",
		Msg:      msg + " (in noalloc path rooted at " + root + ")",
	})
}

func (w *noallocWalker) walk(obj *types.Func, root string) {
	if w.visited[obj] {
		return
	}
	w.visited[obj] = true
	d, ok := w.decls[obj]
	if !ok || d.fd.Body == nil {
		return
	}
	p := d.pkg
	info := p.Info
	var inspect func(n ast.Node) bool
	inspect = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			w.report(p, x.Pos(), "go statement allocates a goroutine", root)
			return false
		case *ast.DeferStmt:
			w.report(p, x.Pos(), "defer may allocate its frame", root)
			return false
		case *ast.FuncLit:
			w.report(p, x.Pos(), "func literal may allocate a closure", root)
			return false
		case *ast.CompositeLit:
			w.compositeLit(p, x, root, false)
			return true
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if cl, ok := x.X.(*ast.CompositeLit); ok {
					w.compositeLit(p, cl, root, true)
					ast.Inspect(cl, func(n ast.Node) bool {
						if call, ok := n.(*ast.CallExpr); ok {
							w.call(p, call, root)
						}
						return true
					})
					return false
				}
			}
			return true
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringType(info, x.X) {
				w.report(p, x.Pos(), "string concatenation allocates", root)
			}
			return true
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isStringType(info, x.Lhs[0]) {
				w.report(p, x.Pos(), "string += allocates", root)
			}
			w.interfaceAssign(p, x, root)
			return true
		case *ast.CallExpr:
			w.call(p, x, root)
			return true
		}
		return true
	}
	ast.Inspect(d.fd.Body, inspect)
}

func (w *noallocWalker) compositeLit(p *Package, cl *ast.CompositeLit, root string, addressed bool) {
	tv, ok := p.Info.Types[cl]
	if !ok || tv.Type == nil {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		w.report(p, cl.Pos(), "slice literal allocates", root)
	case *types.Map:
		w.report(p, cl.Pos(), "map literal allocates", root)
	default:
		if addressed {
			w.report(p, cl.Pos(), "&composite literal may escape and allocate", root)
		}
	}
}

// interfaceAssign flags assignments whose LHS is interface-typed and
// RHS concrete (boxing).
func (w *noallocWalker) interfaceAssign(p *Package, st *ast.AssignStmt, root string) {
	if len(st.Lhs) != len(st.Rhs) {
		return
	}
	for i := range st.Lhs {
		lt, ok := p.Info.Types[st.Lhs[i]]
		if !ok && st.Tok == token.DEFINE {
			if id, isID := st.Lhs[i].(*ast.Ident); isID {
				if obj, isVar := p.Info.Defs[id].(*types.Var); isVar {
					lt = types.TypeAndValue{Type: obj.Type()}
					ok = true
				}
			}
		}
		if !ok || lt.Type == nil || !types.IsInterface(lt.Type) {
			continue
		}
		rt, rok := p.Info.Types[st.Rhs[i]]
		if !rok || rt.Type == nil || types.IsInterface(rt.Type) {
			continue
		}
		if rt.IsNil() {
			continue
		}
		w.report(p, st.Rhs[i].Pos(), "assignment boxes a concrete value into an interface", root)
	}
}

func (w *noallocWalker) call(p *Package, call *ast.CallExpr, root string) {
	info := p.Info
	// Conversions.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) {
			w.report(p, call.Pos(), "conversion boxes a concrete value into an interface", root)
			return
		}
		if len(call.Args) == 1 {
			at, aok := info.Types[call.Args[0]]
			if aok && at.Type != nil {
				toStr := isStringUnderlying(tv.Type)
				fromStr := isStringUnderlying(at.Type)
				_, toSlice := tv.Type.Underlying().(*types.Slice)
				_, fromSlice := at.Type.Underlying().(*types.Slice)
				if (toStr && fromSlice) || (fromStr && toSlice) {
					w.report(p, call.Pos(), "string<->slice conversion allocates", root)
				}
			}
		}
		return
	}
	// Builtins.
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				w.report(p, call.Pos(), "make allocates", root)
			case "new":
				w.report(p, call.Pos(), "new allocates", root)
			case "append":
				w.report(p, call.Pos(), "append may grow its backing array", root)
			}
			return
		}
	}
	// Resolve a static callee.
	var callee *types.Func
	var viaInterface bool
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		callee, _ = info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		if selObj, ok := info.Selections[fun]; ok {
			callee, _ = selObj.Obj().(*types.Func)
			if _, recvIsIface := selObj.Recv().Underlying().(*types.Interface); recvIsIface {
				viaInterface = true
			}
		} else {
			// Package-qualified call.
			callee, _ = info.Uses[fun.Sel].(*types.Func)
		}
	}
	if callee == nil {
		w.report(p, call.Pos(), "dynamic call (func value) is not provably allocation-free", root)
		return
	}
	if viaInterface {
		w.report(p, call.Pos(), "call through interface "+callee.Name()+" is not provably allocation-free", root)
		return
	}
	pkg := callee.Pkg()
	if pkg == nil {
		return // builtin-like (error.Error on universe scope etc.)
	}
	if pkg.Path() == w.l.Config.Module || strings.HasPrefix(pkg.Path(), w.l.Config.Module+"/") {
		w.walk(callee, root)
		return
	}
	if strings.HasPrefix(pkg.Path(), "fmt") {
		w.report(p, call.Pos(), "fmt."+callee.Name()+" allocates (boxes arguments)", root)
		return
	}
	if !allocCleanStdlib[pkg.Path()] {
		w.report(p, call.Pos(), "call into "+pkg.Path()+" is not provably allocation-free", root)
	}
}

func isStringUnderlying(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func unparen(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}
