package lint

import (
	"go/ast"
	"go/types"
)

// analyzeJournal enforces journal hygiene in the classified packages
// (session, fleet): every call to a Write/Append/Sync method or
// function that returns an error must have that error checked.  A
// dropped journal error is a silently lost acknowledgement — the one
// failure mode the fleet's replication design cannot tolerate.
//
// Flagged shapes: the call as a bare statement, `_ =` (or all-blank)
// assignment of its results, and `go`/`defer` invocations (whose error
// is unobservable).
func analyzeJournal(l *Loader, pkgs []*Package) []Finding {
	var out []Finding
	for _, p := range pkgs {
		if !l.Config.journalPackage(p.Rel) {
			continue
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.ExprStmt:
					if call, ok := st.X.(*ast.CallExpr); ok {
						if name, match := journalCall(p.Info, call); match {
							out = append(out, journalFinding(l, call, name, "error discarded"))
						}
					}
				case *ast.GoStmt:
					if name, match := journalCall(p.Info, st.Call); match {
						out = append(out, journalFinding(l, st.Call, name, "error unobservable in go statement"))
					}
				case *ast.DeferStmt:
					if name, match := journalCall(p.Info, st.Call); match {
						out = append(out, journalFinding(l, st.Call, name, "error unobservable in defer"))
					}
				case *ast.AssignStmt:
					if len(st.Rhs) != 1 {
						return true
					}
					call, ok := st.Rhs[0].(*ast.CallExpr)
					if !ok {
						return true
					}
					name, match := journalCall(p.Info, call)
					if !match {
						return true
					}
					// The error is the last result; flag when its LHS
					// slot (or the single LHS of a 1-result call) is _.
					if isBlank(st.Lhs[len(st.Lhs)-1]) {
						out = append(out, journalFinding(l, call, name, "error assigned to _"))
					}
				}
				return true
			})
		}
	}
	return out
}

func journalFinding(l *Loader, call *ast.CallExpr, name, how string) Finding {
	return Finding{
		Pos:      l.fset.Position(call.Pos()),
		Analyzer: "journal",
		Rule:     "journal",
		Msg:      name + ": " + how + " — journal/store write errors must be checked (silent ack loss), or annotate //ringlint:allow journal <reason>",
	}
}

// journalCall reports whether call invokes a function or method named
// Write, Append or Sync whose last result is error.
func journalCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	var name string
	var obj types.Object
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		name = fun.Sel.Name
		obj = info.Uses[fun.Sel]
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		}
		// Best-effort HTTP response writes are not journal writes: every
		// Go handler drops http.ResponseWriter.Write errors (the peer
		// hanging up is not an integrity event).
		if tv, ok := info.Types[fun.X]; ok && isHTTPResponseWriter(tv.Type) {
			return "", false
		}
	default:
		return "", false
	}
	switch name {
	case "Write", "Append", "Sync":
	default:
		return "", false
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return "", false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	named, ok := last.(*types.Named)
	if !ok || named.Obj().Pkg() != nil || named.Obj().Name() != "error" {
		return "", false
	}
	return fn.FullName(), true
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func isHTTPResponseWriter(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "ResponseWriter"
}
