package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// analyzeAtomics enforces atomics discipline module-wide:
//
//  1. Mixed access: any struct field or package-level variable whose
//     address is passed to a sync/atomic function (atomic.AddInt64(&x.f)
//     style) must never be read or written plainly anywhere in the
//     module — a plain load can observe a torn or stale value and a
//     plain store silently loses concurrent updates.
//
//  2. Value misuse of the atomic.* types: copying an atomic.Int64 (and
//     friends) by value — assignment, argument, return — detaches the
//     copy from the shared cell; go vet's copylocks does not cover
//     these types.
//
// Accessor methods (or an //ringlint:allow atomic annotation for
// pre-publication initialization) are the fixes.
func analyzeAtomics(l *Loader, pkgs []*Package) []Finding {
	a := &atomicsPass{l: l, fields: map[types.Object][]token.Pos{}, sanctioned: map[*ast.Ident]bool{}}
	// Pass 1: collect every object used through sync/atomic functions,
	// remembering the identifiers inside those sanctioned call sites.
	for _, p := range pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				a.recordAtomicCall(p, call)
				return true
			})
		}
	}
	// Pass 2: flag plain accesses of collected objects and value copies
	// of atomic.* typed cells.
	var out []Finding
	for _, p := range pkgs {
		for _, f := range p.Files {
			out = append(out, a.scanPlainAccess(p, f)...)
			out = append(out, a.scanValueCopies(p, f)...)
		}
	}
	sortFindings(out)
	return out
}

type atomicsPass struct {
	l *Loader
	// fields maps each atomically-accessed object to the call positions
	// that sanctioned it (for the diagnostic).
	fields map[types.Object][]token.Pos
	// sanctioned marks identifier nodes that appear inside a
	// sync/atomic call argument (so pass 2 does not flag them).
	sanctioned map[*ast.Ident]bool
}

// recordAtomicCall matches atomic.XxxInt64(&obj, ...) style calls and
// records the addressed object.
func (a *atomicsPass) recordAtomicCall(p *Package, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || selectorPackage(p.Info, sel) != "sync/atomic" {
		return
	}
	for _, arg := range call.Args {
		un, ok := unparen(arg).(*ast.UnaryExpr)
		if !ok || un.Op != token.AND {
			continue
		}
		target := unparen(un.X)
		var id *ast.Ident
		switch t := target.(type) {
		case *ast.Ident:
			id = t
		case *ast.SelectorExpr:
			id = t.Sel
		}
		if id == nil {
			continue
		}
		obj := p.Info.Uses[id]
		if obj == nil {
			continue
		}
		if v, ok := obj.(*types.Var); ok && (v.IsField() || v.Parent() == v.Pkg().Scope()) {
			a.fields[obj] = append(a.fields[obj], call.Pos())
			a.sanctioned[id] = true
		}
	}
}

func (a *atomicsPass) scanPlainAccess(p *Package, f *ast.File) []Finding {
	if len(a.fields) == 0 {
		return nil
	}
	var out []Finding
	ast.Inspect(f, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Info.Uses[id]
		if obj == nil || a.sanctioned[id] {
			return true
		}
		if _, atomicObj := a.fields[obj]; !atomicObj {
			return true
		}
		out = append(out, Finding{
			Pos:      a.l.fset.Position(id.Pos()),
			Analyzer: "atomics",
			Rule:     "atomic",
			Msg:      obj.Name() + " is accessed via sync/atomic elsewhere; plain reads/writes race with it (use the atomic accessors, or //ringlint:allow atomic <reason> for pre-publication init)",
		})
		return true
	})
	return out
}

// scanValueCopies flags value copies of sync/atomic cell types.
func (a *atomicsPass) scanValueCopies(p *Package, f *ast.File) []Finding {
	var out []Finding
	report := func(e ast.Expr, what string) {
		out = append(out, Finding{
			Pos:      a.l.fset.Position(e.Pos()),
			Analyzer: "atomics",
			Rule:     "atomic",
			Msg:      what + " copies a sync/atomic value; the copy detaches from the shared cell (keep a pointer instead)",
		})
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range st.Rhs {
				if isAtomicValueExpr(p.Info, rhs) {
					report(rhs, "assignment")
				}
			}
		case *ast.CallExpr:
			if tv, ok := p.Info.Types[st.Fun]; ok && tv.IsType() {
				return true // conversion, not a call
			}
			for _, arg := range st.Args {
				if isAtomicValueExpr(p.Info, arg) {
					report(arg, "argument")
				}
			}
		case *ast.ReturnStmt:
			for _, r := range st.Results {
				if isAtomicValueExpr(p.Info, r) {
					report(r, "return")
				}
			}
		}
		return true
	})
	return out
}

// isAtomicValueExpr reports whether e is a non-pointer expression of a
// sync/atomic cell type (Int32, Int64, Uint32, Uint64, Uintptr, Bool,
// Value, Pointer[T]) used as a value.  Method calls auto-address the
// receiver and are not matched here (e is the selector's base there,
// not a standalone expression).
func isAtomicValueExpr(info *types.Info, e ast.Expr) bool {
	e = unparen(e)
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
	default:
		return false
	}
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return isAtomicCellType(tv.Type)
}

func isAtomicCellType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		// Pointer[T] instantiations are *types.Named too; aliases
		// resolve through Unalias.
		named, ok = types.Unalias(t).(*types.Named)
		if !ok {
			return false
		}
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return false
	}
	switch obj.Name() {
	case "Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Bool", "Value", "Pointer":
		return true
	}
	return false
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
}
