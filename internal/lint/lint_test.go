package lint

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the fixture goldens")

// fixtures pairs each analyzer fixture under testdata/src with the
// classification its cases assume.  Every fixture holds at least one
// bad case, one clean case and one //ringlint:allow-ed case per rule
// it exercises; expected.txt is the golden finding list.
var fixtures = []struct {
	name string
	cfg  Config
}{
	{"determinism", Config{Module: "fixture", KernelPackages: []string{"."}}},
	{"noalloc", Config{Module: "fixture"}},
	{"atomics", Config{Module: "fixture"}},
	{"journal", Config{Module: "fixture", JournalPackages: []string{"."}}},
	{"directive", Config{Module: "fixture"}},
}

func TestFixtures(t *testing.T) {
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			root, err := filepath.Abs(filepath.Join("testdata", "src", fx.name))
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(root, fx.cfg)
			if err != nil {
				t.Fatalf("Run(%s): %v", fx.name, err)
			}
			got := renderFindings(root, res.Findings)
			golden := filepath.Join(root, "expected.txt")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("findings mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// renderFindings formats findings root-relative without messages, so
// the goldens pin positions and rules but tolerate diagnostic rewording.
func renderFindings(root string, fs []Finding) string {
	var b strings.Builder
	for _, f := range fs {
		name := f.Pos.Filename
		if rel, err := filepath.Rel(root, name); err == nil {
			name = filepath.ToSlash(rel)
		}
		fmt.Fprintf(&b, "%s:%d: [%s/%s]\n", name, f.Pos.Line, f.Analyzer, f.Rule)
	}
	return b.String()
}

// TestRepoClean runs the full suite over the repository itself: the
// committed tree must stay finding-free, the same gate CI enforces via
// cmd/ringlint.
func TestRepoClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not found: %v", err)
	}
	res, err := Run(root, RepoConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Findings {
		t.Errorf("unexpected finding: %s", f)
	}
}
