package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// analyzeDeterminism enforces the determinism rules:
//
//   - in kernel-classified code (packages in Config.KernelPackages plus
//     files in Config.KernelFiles): no time.Now/time.Since, no draws
//     from the global math/rand source;
//   - everywhere in the module: `range` over a map type is forbidden
//     unless the loop body is provably order-insensitive (see
//     orderInsensitive) or carries a //ringlint:allow maporder.
//
// These are the invariants behind hash-verified journal replay and
// bit-identical frontier-parallel embeds: one nondeterministic
// iteration in a kernel or output path and replicas diverge.
func analyzeDeterminism(l *Loader, pkgs []*Package) []Finding {
	var out []Finding
	for _, p := range pkgs {
		for _, file := range p.Files {
			kernel := p.Kernel || l.Config.kernelFile(l.relFile(file.Pos()))
			v := &detVisitor{l: l, p: p, kernel: kernel}
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				v.block(fd.Body.List)
			}
			out = append(out, v.findings...)
		}
	}
	return out
}

type detVisitor struct {
	l        *Loader
	p        *Package
	kernel   bool
	findings []Finding
}

func (v *detVisitor) report(pos token.Pos, rule, msg string) {
	v.findings = append(v.findings, Finding{
		Pos:      v.l.fset.Position(pos),
		Analyzer: "determinism",
		Rule:     rule,
		Msg:      msg,
	})
}

// block scans a statement list: kernel time/rand violations anywhere in
// each statement, plus the map-range check with look-ahead at the
// statements that follow (for the append-then-sort idiom).
func (v *detVisitor) block(stmts []ast.Stmt) {
	for i, s := range stmts {
		v.stmt(s, stmts[i+1:])
	}
}

func (v *detVisitor) stmt(s ast.Stmt, rest []ast.Stmt) {
	if v.kernel {
		v.scanKernelCalls(s)
	}
	switch st := s.(type) {
	case *ast.RangeStmt:
		if isMapType(v.p.Info, st.X) && !v.orderInsensitive(st, rest) {
			v.report(st.Pos(), "maporder",
				"iteration over map "+exprString(st.X)+" is order-nondeterministic and the loop body is not provably order-insensitive (sort the keys, or annotate //ringlint:allow maporder <reason>)")
		}
		if st.Body != nil {
			v.block(st.Body.List)
		}
	case *ast.BlockStmt:
		v.block(st.List)
	case *ast.IfStmt:
		if st.Init != nil {
			v.stmt(st.Init, nil)
		}
		v.block(st.Body.List)
		if st.Else != nil {
			v.stmt(st.Else, nil)
		}
	case *ast.ForStmt:
		if st.Body != nil {
			v.block(st.Body.List)
		}
	case *ast.SwitchStmt:
		v.block(st.Body.List)
	case *ast.TypeSwitchStmt:
		v.block(st.Body.List)
	case *ast.SelectStmt:
		v.block(st.Body.List)
	case *ast.CaseClause:
		v.block(st.Body)
	case *ast.CommClause:
		v.block(st.Body)
	case *ast.LabeledStmt:
		v.stmt(st.Stmt, rest)
	case *ast.GoStmt, *ast.DeferStmt, *ast.ExprStmt, *ast.AssignStmt, *ast.DeclStmt, *ast.ReturnStmt, *ast.SendStmt:
		// Function literals nested in any statement still need scanning
		// for map ranges.
		ast.Inspect(s, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				v.block(fl.Body.List)
				return false
			}
			return true
		})
	}
}

// scanKernelCalls flags time.Now/time.Since and global math/rand draws
// in the subtree of one statement (without descending into nested
// statements twice: only call expressions matter here, so a plain
// Inspect is fine — duplicate positions are deduplicated by the allow
// index being line-based and findings being per-call-site).
func (v *detVisitor) scanKernelCalls(s ast.Stmt) {
	switch s.(type) {
	// Composite statements are visited member-by-member via stmt(); only
	// scan leaves so each call site is reported once.
	case *ast.RangeStmt, *ast.BlockStmt, *ast.IfStmt, *ast.ForStmt,
		*ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt,
		*ast.CaseClause, *ast.CommClause, *ast.LabeledStmt:
		switch st := s.(type) {
		case *ast.RangeStmt:
			v.scanKernelExpr(st.X)
		case *ast.IfStmt:
			v.scanKernelExpr(st.Cond)
		case *ast.ForStmt:
			v.scanKernelExpr(st.Cond)
		case *ast.SwitchStmt:
			v.scanKernelExpr(st.Tag)
		}
		return
	}
	ast.Inspect(s, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // the closure body is scanned via stmt()
		}
		if e, ok := n.(ast.Expr); ok {
			v.kernelCall(e)
		}
		return true
	})
}

func (v *detVisitor) scanKernelExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if x, ok := n.(ast.Expr); ok {
			v.kernelCall(x)
		}
		return true
	})
}

func (v *detVisitor) kernelCall(e ast.Expr) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	pkg := selectorPackage(v.p.Info, sel)
	switch pkg {
	case "time":
		if sel.Sel.Name == "Now" || sel.Sel.Name == "Since" {
			v.report(call.Pos(), "time",
				"time."+sel.Sel.Name+" in kernel code: kernels must be wall-clock free (hash-verified replay; annotate //ringlint:allow time <reason> for trace-only timing)")
		}
	case "math/rand", "math/rand/v2":
		if !isRandConstructor(sel.Sel.Name) {
			v.report(call.Pos(), "rand",
				"global math/rand."+sel.Sel.Name+" in kernel code: draw from an explicitly seeded rand.New source instead")
		}
	}
}

// isRandConstructor reports names of math/rand functions that build a
// seeded source/generator rather than drawing from the global one.
func isRandConstructor(name string) bool {
	switch name {
	case "New", "NewSource", "NewPCG", "NewChaCha8", "NewZipf":
		return true
	}
	return false
}

// selectorPackage returns the import path when sel.X names a package,
// else "".
func selectorPackage(info *types.Info, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

func isMapType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.CallExpr:
		return exprString(x.Fun) + "(...)"
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	}
	return "expression"
}

// ----- order-insensitivity prover -----------------------------------------

// orderInsensitive reports whether a map-range loop provably produces
// the same result for every iteration order.  Two shapes are accepted:
//
//  1. Pure accumulation: every statement in the body is commutative —
//     map-index assignment (m[k] = v, m[k] += v, ...), numeric
//     compound accumulation (x += v, x |= v, ...), x++/x--,
//     delete(m, k), continue, constant/loop-var-free plain assignment
//     (found = true), or an if/nested-loop over those forms.
//
//  2. Append-then-sort: the body (optionally under if-guards) appends
//     loop keys/values to local slices, and every such slice is passed
//     to sort.* / slices.Sort* in the statements following the loop.
//
// Anything else — calls, early exits, order-dependent writes — is not
// provable and needs an explicit //ringlint:allow maporder.
func (v *detVisitor) orderInsensitive(rs *ast.RangeStmt, rest []ast.Stmt) bool {
	if existentialLoop(v.p.Info, rs.Body.List) {
		return true
	}
	pr := &orderProver{info: v.p.Info}
	if !pr.blockOK(rs.Body.List) {
		return false
	}
	if len(pr.appended) == 0 {
		return true
	}
	// Every appended-to slice must be sorted after the loop.
	sorted := map[string]bool{}
	for _, s := range rest {
		collectSortCalls(v.p.Info, s, sorted)
	}
	ok := true
	for path := range pr.appended {
		if !sorted[path] {
			ok = false
		}
	}
	return ok
}

// existentialLoop matches search loops whose only effects are constant:
// optional pure `:=` statements followed by a single trailing if (no
// else, call-free condition) whose body sets constants and/or exits via
// break or a constant return.  Whichever element triggers the exit, the
// observable result is the same — `for e := range a { if b[e] { return
// true } }` and found-flag scans qualify.
func existentialLoop(info *types.Info, stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	for _, s := range stmts[:len(stmts)-1] {
		as, ok := s.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE {
			return false
		}
		for _, rhs := range as.Rhs {
			if containsCall(info, rhs) {
				return false
			}
		}
	}
	ifs, ok := stmts[len(stmts)-1].(*ast.IfStmt)
	if !ok || ifs.Else != nil || containsCall(info, ifs.Cond) {
		return false
	}
	if ifs.Init != nil {
		if as, ok := ifs.Init.(*ast.AssignStmt); !ok || as.Tok != token.DEFINE {
			return false
		} else {
			for _, rhs := range as.Rhs {
				if containsCall(info, rhs) {
					return false
				}
			}
		}
	}
	for _, s := range ifs.Body.List {
		switch st := s.(type) {
		case *ast.AssignStmt:
			if st.Tok != token.ASSIGN {
				return false
			}
			for _, lhs := range st.Lhs {
				if !lvalueOK(info, lhs) {
					return false
				}
			}
			for _, rhs := range st.Rhs {
				if !constantExpr(info, rhs) {
					return false
				}
			}
		case *ast.BranchStmt:
			if st.Tok != token.BREAK {
				return false
			}
		case *ast.ReturnStmt:
			for _, r := range st.Results {
				if !constantExpr(info, r) {
					return false
				}
			}
		default:
			return false
		}
	}
	return true
}

// constantExpr reports whether e is a compile-time constant (or nil).
func constantExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	return tv.Value != nil || tv.IsNil()
}

type orderProver struct {
	info     *types.Info
	appended map[string]bool
}

func (pr *orderProver) blockOK(stmts []ast.Stmt) bool {
	for _, s := range stmts {
		if !pr.stmtOK(s) {
			return false
		}
	}
	return true
}

func (pr *orderProver) stmtOK(s ast.Stmt) bool {
	switch st := s.(type) {
	case *ast.AssignStmt:
		return pr.assignOK(st)
	case *ast.IncDecStmt:
		return lvalueOK(pr.info, st.X)
	case *ast.ExprStmt:
		// delete(m, k) is commutative removal.
		if call, ok := st.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" && pr.info.Uses[id] == nil {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok {
				if b, ok := pr.info.Uses[id].(*types.Builtin); ok && b.Name() == "delete" {
					return true
				}
			}
		}
		return false
	case *ast.BranchStmt:
		return st.Tok == token.CONTINUE
	case *ast.IfStmt:
		// Max/min accumulation: `if x > acc { acc = x }` ends at the
		// same extremum in any order.
		if minmaxOK(pr.info, st) {
			return true
		}
		// Guard conditions are treated as pure; the branches must
		// recursively qualify.  (A side-effecting condition defeats the
		// prover's soundness — that is the documented caveat.)
		if st.Init != nil && !pr.stmtOK(st.Init) {
			return false
		}
		if !pr.blockOK(st.Body.List) {
			return false
		}
		if st.Else != nil {
			return pr.stmtOK(st.Else)
		}
		return true
	case *ast.BlockStmt:
		return pr.blockOK(st.List)
	case *ast.RangeStmt:
		// A nested range over a non-map (the map value, typically a
		// slice) is fine if its body qualifies; a nested map range must
		// qualify on its own (no look-ahead inside the outer body).
		if isMapType(pr.info, st.X) {
			inner := &orderProver{info: pr.info, appended: pr.appended}
			ok := inner.blockOK(st.Body.List)
			pr.appended = inner.appended
			return ok
		}
		return pr.blockOK(st.Body.List)
	case *ast.ForStmt:
		if st.Init != nil && !pr.stmtOK(st.Init) {
			return false
		}
		if st.Post != nil && !pr.stmtOK(st.Post) {
			return false
		}
		return pr.blockOK(st.Body.List)
	case *ast.DeclStmt:
		gd, ok := st.Decl.(*ast.GenDecl)
		if !ok {
			return false
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				return false
			}
			for _, val := range vs.Values {
				if containsCall(pr.info, val) {
					return false
				}
			}
		}
		return true
	}
	return false
}

func (pr *orderProver) assignOK(st *ast.AssignStmt) bool {
	// Form A: append-to-lvalue, x = append(x, ...) (x may be a
	// selector chain like st.Faulty); validated against a sort call
	// after the loop by the caller.
	if st.Tok == token.ASSIGN && len(st.Lhs) == 1 && len(st.Rhs) == 1 {
		if path, ok := appendTarget(pr.info, st.Lhs[0], st.Rhs[0]); ok {
			if pr.appended == nil {
				pr.appended = map[string]bool{}
			}
			pr.appended[path] = true
			return true
		}
	}
	// Form B: every LHS is a map index — keyed writes commute across
	// distinct keys, and a map range visits each key once.
	allMapIndex := len(st.Lhs) > 0
	for _, lhs := range st.Lhs {
		if !isMapIndex(pr.info, lhs) {
			allMapIndex = false
			break
		}
	}
	if allMapIndex {
		return true
	}
	// Form C: numeric compound accumulation on a variable.
	switch st.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
			return false
		}
		if !lvalueOK(pr.info, st.Lhs[0]) {
			return false
		}
		if isStringType(pr.info, st.Lhs[0]) {
			return false // string += is concatenation: order-sensitive
		}
		return !containsCall(pr.info, st.Rhs[0])
	case token.DEFINE:
		// `:=` creates fresh per-iteration locals: no cross-iteration
		// state is written, so only side effects (calls) can leak order.
		for _, rhs := range st.Rhs {
			if containsCall(pr.info, rhs) {
				return false
			}
		}
		return true
	case token.ASSIGN:
		// Plain assignment is idempotent across iterations only when the
		// RHS mentions neither the loop variables nor any call: the same
		// value lands no matter which iteration writes last.
		for _, rhs := range st.Rhs {
			if containsCall(pr.info, rhs) || mentionsLocal(pr.info, rhs) {
				return false
			}
		}
		for _, lhs := range st.Lhs {
			if !lvalueOK(pr.info, lhs) {
				return false
			}
		}
		return true
	}
	return false
}

// minmaxOK matches `if x OP acc { acc = x }` for a comparison OP — a
// commutative extremum accumulation.
func minmaxOK(info *types.Info, st *ast.IfStmt) bool {
	if st.Init != nil || st.Else != nil || len(st.Body.List) != 1 {
		return false
	}
	cond, ok := st.Cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch cond.Op {
	case token.GTR, token.LSS, token.GEQ, token.LEQ:
	default:
		return false
	}
	if containsCall(info, cond.X) || containsCall(info, cond.Y) {
		return false
	}
	as, ok := st.Body.List[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	if !lvalueOK(info, as.Lhs[0]) || containsCall(info, as.Rhs[0]) {
		return false
	}
	lhs, rhs := types.ExprString(as.Lhs[0]), types.ExprString(as.Rhs[0])
	cx, cy := types.ExprString(cond.X), types.ExprString(cond.Y)
	return (cx == rhs && cy == lhs) || (cx == lhs && cy == rhs)
}

// lvalueOK accepts identifiers and field selectors as accumulation
// targets (not indexed slots, whose index could depend on order).
func lvalueOK(info *types.Info, e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		return lvalueOK(info, x.X)
	}
	return false
}

func isMapIndex(info *types.Info, e ast.Expr) bool {
	ix, ok := e.(*ast.IndexExpr)
	if !ok {
		return false
	}
	return isMapType(info, ix.X)
}

func isStringType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// containsCall reports whether e contains any call that is not a type
// conversion or len/cap/min/max.
func containsCall(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			return true // conversion
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok {
				switch b.Name() {
				case "len", "cap", "min", "max":
					return true
				}
			}
		}
		found = true
		return false
	})
	return found
}

// mentionsLocal reports whether e references any non-package-level,
// non-constant identifier (conservative stand-in for "depends on the
// loop iteration").
func mentionsLocal(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		switch o := obj.(type) {
		case *types.Var:
			if o.Parent() != nil && o.Parent() != o.Pkg().Scope() && !o.IsField() {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// lvaluePath canonicalizes an ident-or-selector chain (x, x.f, x.f.g)
// into an identity string rooted at the variable's object, so the same
// target matches between the append inside the loop and the sort after
// it.  Shadowing is safe: the root is keyed by object identity, not
// name.
func lvaluePath(info *types.Info, e ast.Expr) (string, bool) {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		if obj == nil {
			return "", false
		}
		return fmt.Sprintf("%p", obj), true
	case *ast.SelectorExpr:
		base, ok := lvaluePath(info, x.X)
		if !ok {
			return "", false
		}
		return base + "." + x.Sel.Name, true
	}
	return "", false
}

// appendTarget matches `x = append(x, ...)` for an ident-or-selector
// target x, returning its canonical path.
func appendTarget(info *types.Info, lhs, rhs ast.Expr) (string, bool) {
	lp, ok := lvaluePath(info, lhs)
	if !ok {
		return "", false
	}
	call, ok := rhs.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return "", false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok {
		return "", false
	}
	if b, ok := info.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return "", false
	}
	ap, ok := lvaluePath(info, call.Args[0])
	if !ok || ap != lp {
		return "", false
	}
	return lp, true
}

// collectSortCalls records lvalue paths passed to a recognized sorting
// function anywhere in s.
func collectSortCalls(info *types.Info, s ast.Stmt, out map[string]bool) {
	ast.Inspect(s, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		switch selectorPackage(info, sel) {
		case "sort":
			switch sel.Sel.Name {
			case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
			default:
				return true
			}
		case "slices":
			switch sel.Sel.Name {
			case "Sort", "SortFunc", "SortStableFunc":
			default:
				return true
			}
		default:
			return true
		}
		arg := call.Args[0]
		// sort.Sort(byName(x)) wraps the slice in a conversion.
		if conv, ok := arg.(*ast.CallExpr); ok && len(conv.Args) == 1 {
			if tv, ok := info.Types[conv.Fun]; ok && tv.IsType() {
				arg = conv.Args[0]
			}
		}
		if path, ok := lvaluePath(info, arg); ok {
			out[path] = true
		}
		return true
	})
}
