// Package hamilton implements Chapter 3 of Rowley–Bose: edge-disjoint
// Hamiltonian cycles in B(d,n), ring embedding under edge failures, and
// Hamiltonian decompositions of the modified De Bruijn graph MB(d,n).
//
// The constructions build on the maximal cycles of internal/lfsr: for a
// prime power d the d shifted cycles {s + C} partition the non-loop edges
// of B(d,n); each is made Hamiltonian by inserting the missing node sⁿ
// (cycle H_s), and a careful choice of insertion points — Strategies 1–3,
// driven by the arithmetic of Lemma 3.5 — makes ψ(d) of the H_s pairwise
// edge-disjoint.  Composite d is handled by the Rees product composition
// (Lemmas 3.6–3.7).
package hamilton

import (
	"fmt"

	"debruijnring/internal/numtheory"
)

// Psi returns ψ(d), the guaranteed number of pairwise edge-disjoint
// Hamiltonian cycles in B(d,n) (Propositions 3.1 and 3.2, Table 3.1):
//
//   - ψ(2^e) = 2^e − 1,
//   - ψ(p^e) = (p^e + 1)/2 for odd p when (p−1)/2 is even and p satisfies
//     condition (b) of Lemma 3.5,
//   - ψ(p^e) = (p^e − 1)/2 for odd p otherwise,
//   - ψ multiplicative over the prime-power factorization.
func Psi(d int) int {
	if d < 2 {
		panic(fmt.Sprintf("hamilton: Psi undefined for d = %d", d))
	}
	out := 1
	for _, pp := range numtheory.Factor(uint64(d)) {
		out *= psiPrimePower(int(pp.P), int(pp.Value()))
	}
	return out
}

func psiPrimePower(p, q int) int {
	if p == 2 {
		return q - 1
	}
	if (p-1)/2%2 == 0 && satisfiesConditionB(p) {
		return (q + 1) / 2
	}
	return (q - 1) / 2
}

// satisfiesConditionB reports whether some primitive root λ of Z_p admits
// odd A, B with 2 ≡ λ^A + λ^B (mod p) — condition (b) of Lemma 3.5.  It
// holds whenever p ≡ ±1 (mod 8) and for some p ≡ ±3 (mod 8) as well
// (e.g. p = 13, where 2 ≡ 7 + 7⁹).
func satisfiesConditionB(p int) bool {
	_, _, _, ok := conditionBWitness(p)
	return ok
}

// conditionBWitness searches all primitive roots of Z_p for odd exponents
// A, B with λ^A + λ^B ≡ 2.
func conditionBWitness(p int) (lambda, a, b int, ok bool) {
	for _, l := range numtheory.PrimitiveRoots(p) {
		// Powers λ^k for odd k.
		type pw struct{ val, exp int }
		var odd []pw
		x := 1
		for k := 1; k < p-1; k++ {
			x = x * l % p
			if k%2 == 1 {
				odd = append(odd, pw{val: x, exp: k})
			}
		}
		for i := 0; i < len(odd); i++ {
			for j := i; j < len(odd); j++ {
				if (odd[i].val+odd[j].val)%p == 2 {
					return l, odd[i].exp, odd[j].exp, true
				}
			}
		}
	}
	return 0, 0, 0, false
}

// conditionAWitness searches all primitive roots of Z_p for an odd A with
// λ^A ≡ 2 — condition (a) of Lemma 3.5, equivalent to 2 being a quadratic
// nonresidue of p (p ≡ ±3 mod 8).
func conditionAWitness(p int) (lambda, a int, ok bool) {
	for _, l := range numtheory.PrimitiveRoots(p) {
		x := 1
		for k := 1; k < p-1; k++ {
			x = x * l % p
			if x == 2 {
				if k%2 == 1 {
					return l, k, true
				}
				break // dlog is unique; even here means even for this λ
			}
		}
	}
	return 0, 0, false
}

// EdgeFaultPhi returns φ(d) = p₁^e₁ + … + p_k^e_k − 2k for the prime
// factorization of d: the number of edge faults under which Proposition 3.3
// still guarantees a fault-free Hamiltonian cycle.
func EdgeFaultPhi(d int) int {
	if d < 2 {
		panic(fmt.Sprintf("hamilton: EdgeFaultPhi undefined for d = %d", d))
	}
	sum := 0
	for _, pp := range numtheory.Factor(uint64(d)) {
		sum += int(pp.Value()) - 2
	}
	return sum
}

// MaxEdgeFaults returns MAX{ψ(d)−1, φ(d)}, the edge-fault tolerance of
// Proposition 3.4 (Table 3.2).
func MaxEdgeFaults(d int) int {
	return max(Psi(d)-1, EdgeFaultPhi(d))
}
