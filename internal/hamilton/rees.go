package hamilton

import (
	"fmt"

	"debruijnring/internal/numtheory"
)

// ReesProduct composes Hamiltonian cycles of B(s,n) and B(t,n), for
// coprime s and t, into a Hamiltonian cycle of B(st,n) (Lemma 3.6, after
// Rees [Ree46]): the i'th digit is a_{i mod sⁿ}·t + b_{i mod tⁿ}, i ranging
// over (st)ⁿ = lcm(sⁿ, tⁿ).
func ReesProduct(s, t int, a, b []int) []int {
	if numtheory.GCD(s, t) != 1 {
		panic(fmt.Sprintf("hamilton: Rees product needs coprime factors, got %d, %d", s, t))
	}
	la, lb := len(a), len(b)
	out := make([]int, la/1*lb) // (st)ⁿ = sⁿ·tⁿ when gcd(s,t)=1
	for i := range out {
		out[i] = a[i%la]*t + b[i%lb]
	}
	return out
}

// SplitDigit inverts the Rees digit composition: v = a·t + b with a ∈ Z_s
// and b ∈ Z_t.
func SplitDigit(v, t int) (a, b int) { return v / t, v % t }
