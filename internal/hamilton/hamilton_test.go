package hamilton

import (
	"math/rand/v2"
	"testing"

	"debruijnring/internal/debruijn"
	"debruijnring/internal/gf"
	"debruijnring/internal/lfsr"
)

// TestTable31Psi reproduces Table 3.1 verbatim: ψ(d) for 2 ≤ d ≤ 38.
func TestTable31Psi(t *testing.T) {
	want := map[int]int{
		2: 1, 3: 1, 4: 3, 5: 2, 6: 1, 7: 3, 8: 7, 9: 4, 10: 2,
		11: 5, 12: 3, 13: 7, 14: 3, 15: 2, 16: 15, 17: 9, 18: 4, 19: 9, 20: 6,
		21: 3, 22: 5, 23: 11, 24: 7, 25: 12, 26: 7, 27: 13, 28: 9, 29: 15, 30: 2,
		31: 15, 32: 31, 33: 5, 34: 9, 35: 6, 36: 12, 37: 19, 38: 9,
	}
	for d, w := range want {
		if got := Psi(d); got != w {
			t.Errorf("ψ(%d) = %d, want %d", d, got, w)
		}
	}
}

// TestTable32MaxFaults reproduces Table 3.2 verbatim:
// MAX{ψ(d)−1, φ(d)} for 2 ≤ d ≤ 35.
func TestTable32MaxFaults(t *testing.T) {
	want := map[int]int{
		2: 0, 3: 1, 4: 2, 5: 3, 6: 1, 7: 5, 8: 6, 9: 7, 10: 3, 11: 9,
		12: 3, 13: 11, 14: 5, 15: 4, 16: 14, 17: 15, 18: 7, 19: 17, 20: 5,
		21: 6, 22: 9, 23: 21, 24: 7, 25: 23, 26: 11, 27: 25, 28: 8, 29: 27,
		30: 4, 31: 29, 32: 30, 33: 10, 34: 15, 35: 8,
	}
	for d, w := range want {
		if got := MaxEdgeFaults(d); got != w {
			t.Errorf("MAX{ψ−1,φ}(%d) = %d, want %d (ψ=%d, φ=%d)", d, got, w, Psi(d), EdgeFaultPhi(d))
		}
	}
}

func TestEdgeFaultPhi(t *testing.T) {
	// φ(p^e) = p^e − 2; φ(6) = (2−2)+(3−2) = 1; φ(12) = (4−2)+(3−2) = 3.
	cases := map[int]int{2: 0, 3: 1, 4: 2, 5: 3, 6: 1, 8: 6, 9: 7, 12: 3, 28: 7, 30: 4}
	// Note φ(28) = 7 < ψ(28)−1 = 8: the "sole exception" of Table 3.2.
	for d, w := range cases {
		if got := EdgeFaultPhi(d); got != w {
			t.Errorf("φ(%d) = %d, want %d", d, got, w)
		}
	}
}

// verifyFamily checks that a family's cycles are Hamiltonian and pairwise
// edge-disjoint.
func verifyFamily(t *testing.T, fam *Family) {
	t.Helper()
	g := debruijn.New(fam.D, fam.N)
	nodeCycles := make([][]int, len(fam.Cycles))
	for i, seq := range fam.Cycles {
		nodes := g.NodesOfSequence(seq)
		if !g.IsHamiltonian(nodes) {
			t.Fatalf("B(%d,%d): cycle %d is not Hamiltonian (len %d)", fam.D, fam.N, i, len(seq))
		}
		nodeCycles[i] = nodes
	}
	if !g.EdgeDisjoint(nodeCycles...) {
		t.Fatalf("B(%d,%d): family is not edge-disjoint", fam.D, fam.N)
	}
}

// TestDisjointHCsPrimePower: the construction delivers ψ(q) disjoint HCs
// for prime powers.
func TestDisjointHCsPrimePower(t *testing.T) {
	for _, tc := range []struct{ d, n int }{
		{2, 3}, {2, 5}, {3, 2}, {3, 3}, {4, 2}, {4, 3}, {5, 2}, {5, 3},
		{7, 2}, {8, 2}, {9, 2}, {11, 2}, {13, 2}, {16, 2},
	} {
		fam, err := DisjointHCs(tc.d, tc.n)
		if err != nil {
			t.Fatalf("DisjointHCs(%d,%d): %v", tc.d, tc.n, err)
		}
		if len(fam.Cycles) != Psi(tc.d) {
			t.Errorf("B(%d,%d): %d cycles, want ψ = %d", tc.d, tc.n, len(fam.Cycles), Psi(tc.d))
		}
		verifyFamily(t, fam)
	}
}

// TestDisjointHCsGeneral: composite d via the Rees composition.
func TestDisjointHCsGeneral(t *testing.T) {
	for _, tc := range []struct{ d, n int }{{6, 2}, {10, 2}, {12, 2}, {15, 2}, {6, 3}} {
		fam, err := DisjointHCs(tc.d, tc.n)
		if err != nil {
			t.Fatalf("DisjointHCs(%d,%d): %v", tc.d, tc.n, err)
		}
		if len(fam.Cycles) != Psi(tc.d) {
			t.Errorf("B(%d,%d): %d cycles, want ψ = %d", tc.d, tc.n, len(fam.Cycles), Psi(tc.d))
		}
		verifyFamily(t, fam)
	}
}

func TestDisjointHCsRejectsBadArgs(t *testing.T) {
	if _, err := DisjointHCs(4, 1); err == nil {
		t.Error("n = 1 should be rejected")
	}
	if _, err := DisjointHCs(1, 3); err == nil {
		t.Error("d = 1 should be rejected")
	}
}

// TestExample32 verifies the Strategy-1 structure of Example 3.2: in
// B(4,2) with the recurrence c_{2+i} = c_{1+i} + ζ·c_i, the three cycles
// {H_s : s ≠ 0} with f ≡ 0 are disjoint HCs and all replacement edges lie
// in C (= 0 + C).
func TestExample32(t *testing.T) {
	f := gf.MustField(4)
	zeta := f.Generator()
	rec := gf.Recurrence{F: f, A: []int{zeta, 1}}
	m, err := lfsr.FromRecurrence(rec)
	if err != nil {
		t.Fatal(err)
	}
	g := debruijn.New(4, 2)
	var cycles [][]int
	for s := 1; s < 4; s++ {
		hs := HsCycle(m, s, 0)
		nodes := g.NodesOfSequence(hs)
		if !g.IsHamiltonian(nodes) {
			t.Fatalf("H_%d is not Hamiltonian", s)
		}
		cycles = append(cycles, nodes)
		// Both replacement edges must lie in C: the trailing edge sⁿα by
		// construction (f(s) = 0), the leading edge α̂sⁿ because
		// 2s − 0 = 0 in characteristic 2.
		e1, e2 := NewEdges(m, s, 0)
		if got := m.CycleIndexOfEdge(e1); got != 0 {
			t.Errorf("H_%d leading replacement edge in cycle %d + C, want C", s, got)
		}
		if got := m.CycleIndexOfEdge(e2); got != 0 {
			t.Errorf("H_%d trailing replacement edge in cycle %d + C, want C", s, got)
		}
	}
	if !g.EdgeDisjoint(cycles...) {
		t.Error("Example 3.2 family is not edge-disjoint")
	}
}

// TestExample33 builds the paper's d = 13 family with f(x) = 7x, f(0) = 7:
// {H_0, H_1, H_{7²}, H_{7⁴}, H_{7⁶}, H_{7⁸}, H_{7¹⁰}} are 7 disjoint HCs.
func TestExample33(t *testing.T) {
	m, err := lfsr.New(13, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := m.F
	fOf := func(x int) int {
		if x == 0 {
			return 7
		}
		return f.Mul(7, x)
	}
	xs := []int{0, 1}
	for k := 2; k <= 10; k += 2 {
		xs = append(xs, f.Pow(7, k))
	}
	g := debruijn.New(13, 2)
	var cycles [][]int
	for _, x := range xs {
		nodes := g.NodesOfSequence(HsCycle(m, x, fOf(x)))
		if !g.IsHamiltonian(nodes) {
			t.Fatalf("H_%d is not Hamiltonian", x)
		}
		cycles = append(cycles, nodes)
	}
	if len(cycles) != 7 {
		t.Fatalf("family has %d cycles, want 7", len(cycles))
	}
	if !g.EdgeDisjoint(cycles...) {
		t.Error("Example 3.3 family is not edge-disjoint")
	}
}

// TestFigure32ConflictStructure verifies Lemma 3.4 for d = 13, f(x) = 7x:
// H_x and H_y (x, y ≠ 0) share an edge exactly when y/x ∈ {7, 7⁹, 7⁻¹, 7⁻⁹}.
func TestFigure32ConflictStructure(t *testing.T) {
	m, err := lfsr.New(13, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := m.F
	g := debruijn.New(13, 2)
	edgeSets := make([]map[int]bool, 13)
	for x := 1; x < 13; x++ {
		nodes := g.NodesOfSequence(HsCycle(m, x, f.Mul(7, x)))
		set := make(map[int]bool)
		for _, e := range g.CycleEdges(nodes) {
			set[e] = true
		}
		edgeSets[x] = set
	}
	conflictRatios := map[int]bool{
		7:                  true,
		f.Pow(7, 9):        true, // = 2 − 7 = 8
		f.Inv(7):           true, // = 2
		f.Inv(f.Pow(7, 9)): true, // = 5
	}
	for x := 1; x < 13; x++ {
		for y := x + 1; y < 13; y++ {
			shared := false
			for e := range edgeSets[x] {
				if edgeSets[y][e] {
					shared = true
					break
				}
			}
			ratio := f.Div(y, x)
			ratioInv := f.Div(x, y)
			want := conflictRatios[ratio] || conflictRatios[ratioInv]
			if shared != want {
				t.Errorf("H_%d vs H_%d: shared=%v, Lemma 3.4 predicts %v (ratio %d)", x, y, shared, want, ratio)
			}
		}
	}
}

// TestExample34 reproduces the exact disjoint pair of Example 3.4: B(5,2),
// C from Example 3.1, Strategy 3 with λ = 3 (2 = 3³), i.e. f(x) = λ^A·x =
// 2x — the insertion digit is α = sω + 2s(1−ω) = 3s, as the example
// computes:
//
//	H₁ = [1,2,2,0,3,0,1,1,3,3,4,0,4,1,0,0,2,4,2,1,4,4,3,2,3]
//	H₄ = [4,0,0,3,1,3,4,1,1,2,3,2,4,3,3,0,2,0,4,4,2,2,1,0,1]
func TestExample34(t *testing.T) {
	f := gf.MustField(5)
	rec := gf.Recurrence{F: f, A: []int{3, 1}}
	m, err := lfsr.FromRecurrence(rec)
	if err != nil {
		t.Fatal(err)
	}
	h1 := HsCycle(m, 1, 2)           // f(1) = 2·1
	h4 := HsCycle(m, 4, f.Mul(2, 4)) // f(4) = 2·4 = 3
	want1 := []int{1, 2, 2, 0, 3, 0, 1, 1, 3, 3, 4, 0, 4, 1, 0, 0, 2, 4, 2, 1, 4, 4, 3, 2, 3}
	want4 := []int{4, 0, 0, 3, 1, 3, 4, 1, 1, 2, 3, 2, 4, 3, 3, 0, 2, 0, 4, 4, 2, 2, 1, 0, 1}
	if !sameCircular(h1, want1) {
		t.Errorf("H₁ = %v,\nwant rotation of %v", h1, want1)
	}
	if !sameCircular(h4, want4) {
		t.Errorf("H₄ = %v,\nwant rotation of %v", h4, want4)
	}
	g := debruijn.New(5, 2)
	if !g.EdgeDisjoint(g.NodesOfSequence(h1), g.NodesOfSequence(h4)) {
		t.Error("H₁ and H₄ should be disjoint")
	}
}

// sameCircular reports whether two digit sequences are equal as circular
// sequences (i.e. up to rotation).
func sameCircular(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	k := len(a)
	for shift := 0; shift < k; shift++ {
		ok := true
		for i := 0; i < k; i++ {
			if a[i] != b[(i+shift)%k] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// TestExample35 reproduces the Rees product of Example 3.5 exactly.
func TestExample35(t *testing.T) {
	a := []int{0, 0, 1, 1}
	b := []int{0, 0, 2, 2, 1, 2, 0, 1, 1}
	got := ReesProduct(2, 3, a, b)
	want := []int{0, 0, 5, 5, 1, 2, 3, 4, 1, 0, 3, 5, 2, 1, 5, 3, 1, 1,
		3, 3, 2, 2, 4, 5, 0, 1, 4, 3, 0, 2, 5, 4, 2, 0, 4, 4}
	if len(got) != len(want) {
		t.Fatalf("(A,B) has length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("(A,B)[%d] = %d, want %d\nfull: %v", i, got[i], want[i], got)
		}
	}
	g := debruijn.New(6, 2)
	if !g.IsHamiltonian(g.NodesOfSequence(got)) {
		t.Error("(A,B) should be a Hamiltonian cycle of B(6,2)")
	}
}

func TestReesProductPanicsOnCommonFactor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-coprime factors")
		}
	}()
	ReesProduct(2, 4, []int{0, 0, 1, 1}, make([]int, 16))
}

// TestExample36 reproduces the Hamiltonian decomposition of UMB(2,3)
// (Figure 3.3): C = [0,0,1,1,1,0,1] from c_{i+3} = c_{i+2} + c_i; C′ gains
// 000 between 100 and 001; 1+C loses 000 and gains the path 010 → 000 →
// 111 → 101.
func TestExample36(t *testing.T) {
	g := debruijn.New(2, 3)
	cycles, err := MBDecomposition(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateDecomposition(2, 3, cycles); err != nil {
		t.Fatal(err)
	}
	// The first cycle is C′, a genuine Hamiltonian cycle of B(2,3)
	// containing the subpath 100 → 000 → 001.
	cPrime := cycles[0]
	if !g.IsHamiltonian(cPrime) {
		t.Error("C′ should be a Hamiltonian cycle of B(2,3)")
	}
	idx := indexOf(cPrime, 0) // 000
	prev := cPrime[(idx-1+len(cPrime))%len(cPrime)]
	next := cPrime[(idx+1)%len(cPrime)]
	if g.String(prev) != "100" || g.String(next) != "001" {
		t.Errorf("000 spliced between %s and %s, want 100 and 001", g.String(prev), g.String(next))
	}
	// The second cycle contains the new-edge path 010 → 000 → 111 → 101
	// (or its mirror through 101 → … → 010 depending on the p-edge order).
	mod := cycles[1]
	zi := indexOf(mod, 0)
	oi := indexOf(mod, 7)
	if zi < 0 || oi < 0 {
		t.Fatal("modified cycle must contain 000 and 111")
	}
	if (zi+1)%len(mod) != oi {
		t.Errorf("expected 000 immediately followed by 111 in the modified cycle")
	}
}

func TestMBDecompositionOddPrimePowers(t *testing.T) {
	for _, tc := range []struct{ d, n int }{{3, 3}, {5, 2}, {7, 2}, {9, 2}, {3, 4}, {5, 3}} {
		cycles, err := MBDecomposition(tc.d, tc.n)
		if err != nil {
			t.Fatalf("MBDecomposition(%d,%d): %v", tc.d, tc.n, err)
		}
		if err := ValidateDecomposition(tc.d, tc.n, cycles); err != nil {
			t.Errorf("MB(%d,%d): %v", tc.d, tc.n, err)
		}
	}
}

func TestMBDecompositionBinary(t *testing.T) {
	for n := 3; n <= 7; n++ {
		cycles, err := MBDecomposition(2, n)
		if err != nil {
			t.Fatalf("MBDecomposition(2,%d): %v", n, err)
		}
		if err := ValidateDecomposition(2, n, cycles); err != nil {
			t.Errorf("MB(2,%d): %v", n, err)
		}
	}
}

func TestMBDecompositionRejects(t *testing.T) {
	// B(3,2) is the degenerate case: both parallel edges of its maximal
	// cycle splice into real De Bruijn edges, so the simple-graph
	// decomposition does not exist (UMB(3,2) would be a multigraph).
	for _, tc := range []struct{ d, n int }{{6, 3}, {4, 3}, {8, 2}, {2, 2}, {3, 1}, {3, 2}} {
		if _, err := MBDecomposition(tc.d, tc.n); err == nil {
			t.Errorf("MBDecomposition(%d,%d) should fail", tc.d, tc.n)
		}
	}
}

// TestFaultFreeHCTolerance: Proposition 3.4 — a fault-free HC exists under
// up to MAX{ψ(d)−1, φ(d)} edge faults.  Random fault sets at the full
// tolerance, plus adversarial sets concentrated on one node.
func TestFaultFreeHCTolerance(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 7))
	for _, tc := range []struct{ d, n int }{{3, 2}, {4, 2}, {5, 2}, {6, 2}, {8, 2}, {9, 2}, {4, 3}, {5, 3}, {10, 2}, {12, 2}} {
		g := debruijn.New(tc.d, tc.n)
		tol := MaxEdgeFaults(tc.d)
		for trial := 0; trial < 15; trial++ {
			f := tol
			if trial > 0 {
				f = rng.IntN(tol + 1)
			}
			faults := make([][]int, 0, f)
			for len(faults) < f {
				// Random non-loop edge as a digit window.
				w := make([]int, tc.n+1)
				for i := range w {
					w[i] = rng.IntN(tc.d)
				}
				if isConstant(w) {
					continue
				}
				faults = append(faults, w)
			}
			cycle, err := FaultFreeHC(tc.d, tc.n, faults)
			if err != nil {
				t.Fatalf("B(%d,%d) with %d faults: %v", tc.d, tc.n, f, err)
			}
			nodes := g.NodesOfSequence(cycle)
			if !g.IsHamiltonian(nodes) {
				t.Fatalf("B(%d,%d): result not Hamiltonian", tc.d, tc.n)
			}
			if cycleHitsAny(cycle, tc.n, faults) {
				t.Fatalf("B(%d,%d): cycle hits a faulty edge", tc.d, tc.n)
			}
		}
	}
}

// TestFaultFreeHCAdversarial aims φ(d) faults at the incoming edges of a
// single node (the worst case motivating the d−2 bound in §3.3).
func TestFaultFreeHCAdversarial(t *testing.T) {
	for _, tc := range []struct{ d, n int }{{4, 2}, {5, 2}, {5, 3}, {8, 2}, {9, 2}} {
		g := debruijn.New(tc.d, tc.n)
		phi := EdgeFaultPhi(tc.d) // = d−2 for prime powers
		target := 1               // node 0…01
		var faults [][]int
		var buf []int
		buf = g.Predecessors(target, buf)
		for _, p := range buf[:phi] {
			e := g.Edge(p, target)
			w := make([]int, 0, tc.n+1)
			tmp := e
			for i := 0; i <= tc.n; i++ {
				w = append(w, 0)
			}
			for i := tc.n; i >= 0; i-- {
				w[i] = tmp % tc.d
				tmp /= tc.d
			}
			faults = append(faults, w)
		}
		cycle, err := FaultFreeHC(tc.d, tc.n, faults)
		if err != nil {
			t.Fatalf("B(%d,%d): %v", tc.d, tc.n, err)
		}
		if cycleHitsAny(cycle, tc.n, faults) {
			t.Fatalf("B(%d,%d): cycle hits faulty edge", tc.d, tc.n)
		}
		if !g.IsHamiltonian(g.NodesOfSequence(cycle)) {
			t.Fatalf("B(%d,%d): not Hamiltonian", tc.d, tc.n)
		}
	}
}

func TestFaultFreeHCRejectsOverload(t *testing.T) {
	// ψ(2) − 1 = 0 and φ(2) = 0: a single fault on the unique H may be
	// unavoidable... but some fault sets still admit an HC via the other
	// disjoint cycles; here we only require a clean error beyond both
	// bounds when no cycle survives.
	d, n := 3, 2
	g := debruijn.New(d, n)
	// Make every HC impossible: kill all non-loop edges into node 01.
	var faults [][]int
	var buf []int
	buf = g.Predecessors(1, buf)
	for _, p := range buf {
		w := []int{g.Digit(p, 1), g.Digit(p, 2), 1}
		faults = append(faults, w)
	}
	if _, err := FaultFreeHC(d, n, faults); err == nil {
		t.Error("expected failure when a node loses all incoming edges")
	}
}

func TestFaultFreeHCWindowValidation(t *testing.T) {
	if _, err := FaultFreeHC(3, 2, [][]int{{1, 2}}); err == nil {
		t.Error("short fault window should be rejected")
	}
}

func TestHsCyclePanicsOnFixedPoint(t *testing.T) {
	m, err := lfsr.New(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for f(s) = s")
		}
	}()
	HsCycle(m, 2, 2)
}

func BenchmarkDisjointHCs13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := DisjointHCs(13, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFaultFreeHC(b *testing.B) {
	faults := [][]int{{0, 1, 2}, {2, 1, 0}, {1, 1, 2}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FaultFreeHC(5, 2, faults); err != nil {
			b.Fatal(err)
		}
	}
}
