package hamilton

import (
	"fmt"

	"debruijnring/internal/gf"
	"debruijnring/internal/lfsr"
	"debruijnring/internal/numtheory"
)

// Family is a set of pairwise edge-disjoint Hamiltonian cycles of B(d,n),
// each a circular digit sequence of length dⁿ (§3.1 representation).
type Family struct {
	D, N   int
	Cycles [][]int
}

// DisjointHCs constructs ψ(d) pairwise edge-disjoint Hamiltonian cycles of
// B(d,n) (Propositions 3.1 and 3.2).  n must be at least 2: for n = 1 the
// relevant results are the compatible Eulerian circuits of [BBR93] (§3.2.4),
// outside this construction.
func DisjointHCs(d, n int) (*Family, error) {
	if n < 2 {
		return nil, fmt.Errorf("hamilton: DisjointHCs needs n ≥ 2, got %d", n)
	}
	if d < 2 {
		return nil, fmt.Errorf("hamilton: d must be ≥ 2, got %d", d)
	}
	factors := numtheory.Factor(uint64(d))
	fam, err := primePowerFamily(int(factors[0].Value()), n)
	if err != nil {
		return nil, err
	}
	soFar := int(factors[0].Value())
	for _, pp := range factors[1:] {
		t := int(pp.Value())
		next, err := primePowerFamily(t, n)
		if err != nil {
			return nil, err
		}
		// Γ = {(A_i, B_j)}: all pairs are pairwise disjoint by Lemma 3.7.
		combined := make([][]int, 0, len(fam.Cycles)*len(next.Cycles))
		for _, a := range fam.Cycles {
			for _, b := range next.Cycles {
				combined = append(combined, ReesProduct(soFar, t, a, b))
			}
		}
		soFar *= t
		fam = &Family{D: soFar, N: n, Cycles: combined}
	}
	if len(fam.Cycles) != Psi(d) {
		return nil, fmt.Errorf("hamilton: built %d cycles for d=%d, ψ(d)=%d", len(fam.Cycles), d, Psi(d))
	}
	return fam, nil
}

// primePowerFamily builds the ψ(q) disjoint HCs of B(q,n) for a prime
// power q via Strategies 1–3 (§3.2.1).
func primePowerFamily(q, n int) (*Family, error) {
	m, err := lfsr.New(q, n)
	if err != nil {
		return nil, err
	}
	p := m.F.P
	var cycles [][]int
	if p == 2 {
		// Strategy 1: f(x) = 0 for x ≠ 0; {H_s : s ≠ 0} are q−1 disjoint
		// HCs because 2x = 0 in characteristic 2.
		for s := 1; s < q; s++ {
			cycles = append(cycles, HsCycle(m, s, 0))
		}
		return &Family{D: q, N: n, Cycles: cycles}, nil
	}
	// Odd characteristic: choose among Strategies 2 and 3 per Lemma 3.5
	// and Proposition 3.1.
	halfEven := (p-1)/2%2 == 0
	lamB, aB, _, okB := conditionBWitness(p)
	lamA, aA, okA := conditionAWitness(p)

	var lambda int // primitive root, as an element of the prime subfield
	var fOf func(x int) int
	addH0 := false
	f := m.F
	switch {
	case okB && halfEven:
		// Strategy 2 with H_0: (q+1)/2 cycles.
		lambda = lamB
		la := f.Pow(f.Int(lamB), aB)
		fOf = func(x int) int {
			if x == 0 {
				return f.Int(lambda)
			}
			return f.Mul(la, x)
		}
		addH0 = true
	case okA:
		// Strategy 3: f(x) = λ^A·x = 2x.
		lambda = lamA
		la := f.Pow(f.Int(lamA), aA)
		fOf = func(x int) int {
			if x == 0 {
				return f.Int(lambda)
			}
			return f.Mul(la, x)
		}
	case okB:
		// Strategy 2 without H_0 ((p−1)/2 odd).
		lambda = lamB
		la := f.Pow(f.Int(lamB), aB)
		fOf = func(x int) int {
			if x == 0 {
				return f.Int(lambda)
			}
			return f.Mul(la, x)
		}
	default:
		return nil, fmt.Errorf("hamilton: Lemma 3.5 violated for p = %d (unreachable)", p)
	}

	// L = ∪ᵢ {H_x : x = gᵢ·λ^{2k}, 1 ≤ k ≤ (p−1)/2}: the even λ-powers of
	// every coset of J = ⟨λ⟩ in GF(q)*.
	lamEl := f.Int(lambda)
	lam2 := f.Mul(lamEl, lamEl)
	inCoset := make([]bool, q)
	for g := 1; g < q; g++ {
		if inCoset[g] {
			continue
		}
		// Mark the whole coset g·J and collect its even-power members.
		x := g
		for k := 0; k < p-1; k++ {
			inCoset[x] = true
			x = f.Mul(x, lamEl)
		}
		member := f.Mul(g, lam2)
		for k := 1; k <= (p-1)/2; k++ {
			cycles = append(cycles, HsCycle(m, member, fOf(member)))
			member = f.Mul(member, lam2)
		}
	}
	if addH0 {
		cycles = append(cycles, HsCycle(m, 0, fOf(0)))
	}
	return &Family{D: q, N: n, Cycles: cycles}, nil
}

// HsCycle builds the Hamiltonian cycle H_s of B(q,n): the cycle s + C with
// the missing node sⁿ spliced in by replacing the edge α̂s^{n−1} → s^{n−1}α
// with the two edges through sⁿ, where α = s·ω + f(s)·(1−ω) so that the new
// edge sⁿα lies on cycle f(s) + C (§3.2.1).  fs is the value f(s); it must
// differ from s.
func HsCycle(m *lfsr.Maximal, s, fs int) []int {
	if fs == s {
		panic("hamilton: HsCycle needs f(s) ≠ s")
	}
	f := m.F
	alpha := f.Add(f.Mul(s, m.Omega), f.Mul(fs, f.Sub(1, m.Omega)))
	seq := m.Shifted(s)
	j := findRun(seq, s, alpha, m.N)
	if j < 0 {
		panic(fmt.Sprintf("hamilton: node s^{n-1}α not found in %d + C (s=%d, α=%d)", s, s, alpha))
	}
	out := make([]int, 0, len(seq)+1)
	out = append(out, seq[:j]...)
	out = append(out, s)
	out = append(out, seq[j:]...)
	return out
}

// findRun locates the start of the circular window s^{n−1}·α in seq,
// returning −1 if absent.  The returned index j is normalized so that the
// full run s^{n−1} beginning at j lies within the linear slice whenever
// possible; if the window wraps, the sequence is rotated conceptually by
// scanning circularly.
func findRun(seq []int, s, alpha, n int) int {
	k := len(seq)
	for j := 0; j < k; j++ {
		ok := true
		for i := 0; i < n-1; i++ {
			if seq[(j+i)%k] != s {
				ok = false
				break
			}
		}
		if ok && seq[(j+n-1)%k] == alpha {
			return j
		}
	}
	return -1
}

// NewEdges returns the two edges (as (n+1)-digit windows) that splice sⁿ
// into s + C for the insertion trailing digit α: α̂sⁿ and sⁿα.  Used by the
// edge-fault construction and by tests of Lemma 3.4.
func NewEdges(m *lfsr.Maximal, s, fs int) (e1, e2 []int) {
	f := m.F
	alpha := f.Add(f.Mul(s, m.Omega), f.Mul(fs, f.Sub(1, m.Omega)))
	seq := m.Shifted(s)
	j := findRun(seq, s, alpha, m.N)
	if j < 0 {
		panic("hamilton: insertion point not found")
	}
	k := len(seq)
	alphaHat := seq[(j-1+k)%k]
	e1 = make([]int, m.N+1)
	e2 = make([]int, m.N+1)
	e1[0] = alphaHat
	for i := 1; i <= m.N; i++ {
		e1[i] = s
	}
	for i := 0; i < m.N; i++ {
		e2[i] = s
	}
	e2[m.N] = alpha
	return e1, e2
}

// Field exposes the GF(q) arithmetic backing a maximal cycle; convenience
// for callers composing custom families (e.g. the Example 3.3 tests).
func Field(m *lfsr.Maximal) *gf.Field { return m.F }
