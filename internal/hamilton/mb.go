package hamilton

import (
	"fmt"

	"debruijnring/internal/debruijn"
	"debruijnring/internal/lfsr"
	"debruijnring/internal/numtheory"
)

// MBDecomposition constructs a Hamiltonian decomposition of the modified
// De Bruijn graph MB(d,n) (§3.2.3): d pairwise edge-disjoint Hamiltonian
// cycles, returned as node sequences (some of their edges are the new,
// non-De-Bruijn edges through the nodes sⁿ).  It is defined for d an odd
// prime power (d cycles via parallel-edge surgery on the {s + C}) and for
// d = 2 (the two-cycle construction of the section).  The union MB(d,n)
// has in- and out-degree d at every node, and its undirected version
// contains UB(d,n).
func MBDecomposition(d, n int) ([][]int, error) {
	if n < 2 {
		return nil, fmt.Errorf("hamilton: MBDecomposition needs n ≥ 2, got %d", n)
	}
	if d == 2 {
		if n < 3 {
			return nil, fmt.Errorf("hamilton: binary MBDecomposition needs n ≥ 3")
		}
		return mbBinary(n)
	}
	p, _, ok := numtheory.PrimePowerOf(d)
	if !ok || p == 2 {
		return nil, fmt.Errorf("hamilton: MBDecomposition is defined for odd prime powers and d = 2, got %d", d)
	}
	m, err := lfsr.New(d, n)
	if err != nil {
		return nil, err
	}
	g := debruijn.New(d, n)
	base := g.NodesOfSequence(m.Seq)
	// The maximal cycle contains exactly d−1 parallel edges; for n = 2 a
	// splice can coincide with a real De Bruijn edge (when β = 0), so try
	// each candidate until the decomposition validates.
	var lastErr error
	for _, j := range parallelEdgePositions(g, base) {
		cycles := make([][]int, d)
		for s := 0; s < d; s++ {
			nodes := g.NodesOfSequence(m.Shifted(s))
			// The shifted parallel edge E_s sits at the same position j;
			// splice sⁿ between its endpoints.
			hs := make([]int, 0, len(nodes)+1)
			hs = append(hs, nodes[:j+1]...)
			hs = append(hs, g.Repeat(s))
			hs = append(hs, nodes[j+1:]...)
			cycles[s] = hs
		}
		if err := ValidateDecomposition(d, n, cycles); err != nil {
			lastErr = err
			continue
		}
		return cycles, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("maximal cycle contains no parallel edge")
	}
	return nil, fmt.Errorf("hamilton: MBDecomposition of B(%d,%d) failed: %w", d, n, lastErr)
}

// parallelEdgePositions returns every index j such that
// (nodes[j], nodes[j+1]) is a p-edge (ᾱβ, β̄α) with α ≠ β.
func parallelEdgePositions(g *debruijn.Graph, nodes []int) []int {
	var out []int
	for j := 0; j+1 < len(nodes); j++ {
		u := nodes[j]
		a, b := g.Digit(u, 1), g.Digit(u, 2)
		if a != b && u == g.Alternating(a, b) && nodes[j+1] == g.Alternating(b, a) {
			out = append(out, j)
		}
	}
	return out
}

// mbBinary builds the two disjoint Hamiltonian cycles of MB(2,n): the
// maximal cycle C extended with 0ⁿ (between 10^{n−1} and 0^{n−1}1), and
// 1 + C with 0ⁿ removed and the path 0ⁿ → 1ⁿ spliced into a parallel edge
// (Example 3.6 / Figure 3.3).
func mbBinary(n int) ([][]int, error) {
	m, err := lfsr.New(2, n)
	if err != nil {
		return nil, err
	}
	g := debruijn.New(2, n)
	zero, one := g.Repeat(0), g.Repeat(1)

	// C′ = C with 0ⁿ inserted.  C omits 0ⁿ, so it must use the edge
	// 10^{n−1} → 0^{n−1}1, which the insertion replaces.
	c := g.NodesOfSequence(m.Seq)
	pre := g.Predecessor(zero, 1) // 10^{n−1}
	ci := indexOf(c, pre)
	if ci < 0 {
		return nil, fmt.Errorf("hamilton: node 10^{n-1} missing from maximal cycle (unreachable)")
	}
	cPrime := make([]int, 0, len(c)+1)
	cPrime = append(cPrime, c[:ci+1]...)
	cPrime = append(cPrime, zero)
	cPrime = append(cPrime, c[ci+1:]...)

	// 1 + C misses 1ⁿ and contains 0ⁿ; remove 0ⁿ (its cycle neighbours
	// 10^{n−1} and 0^{n−1}1 are directly adjacent, reusing the edge C′
	// just gave up).
	oc := g.NodesOfSequence(m.Shifted(1))
	zi := indexOf(oc, zero)
	if zi < 0 {
		return nil, fmt.Errorf("hamilton: 0ⁿ missing from 1 + C (unreachable)")
	}
	reduced := append(append([]int{}, oc[:zi]...), oc[zi+1:]...)

	// Splice 0ⁿ → 1ⁿ into whichever of the two parallel edges
	// (0̄1 → 1̄0) or (1̄0 → 0̄1) the reduced cycle uses (at least one of the
	// pair lies on 1 + C since the other's shift lies on C).
	u01, u10 := g.Alternating(0, 1), g.Alternating(1, 0)
	k := len(reduced)
	pos := -1
	for i := 0; i < k; i++ {
		a, b := reduced[i], reduced[(i+1)%k]
		if (a == u01 && b == u10) || (a == u10 && b == u01) {
			pos = i
			break
		}
	}
	if pos < 0 {
		return nil, fmt.Errorf("hamilton: 1 + C contains neither parallel edge (unreachable)")
	}
	modified := make([]int, 0, k+2)
	modified = append(modified, reduced[:pos+1]...)
	modified = append(modified, zero, one)
	modified = append(modified, reduced[pos+1:]...)

	return [][]int{cPrime, modified}, nil
}

func indexOf(nodes []int, x int) int {
	for i, v := range nodes {
		if v == x {
			return i
		}
	}
	return -1
}

// ValidateDecomposition checks the MB(d,n) claims on a set of node cycles:
// every cycle visits all dⁿ nodes exactly once; the union has no repeated
// directed edge (so in- and out-degrees are d everywhere); and the
// undirected union contains every non-loop edge of UB(d,n).  It returns an
// error describing the first violation.
func ValidateDecomposition(d, n int, cycles [][]int) error {
	g := debruijn.New(d, n)
	if len(cycles) != d {
		return fmt.Errorf("decomposition has %d cycles, want d = %d", len(cycles), d)
	}
	edges := make(map[[2]int]bool)
	for ci, cyc := range cycles {
		if len(cyc) != g.Size {
			return fmt.Errorf("cycle %d has %d nodes, want %d", ci, len(cyc), g.Size)
		}
		seen := make(map[int]bool, len(cyc))
		for i, x := range cyc {
			if seen[x] {
				return fmt.Errorf("cycle %d repeats node %s", ci, g.String(x))
			}
			seen[x] = true
			e := [2]int{x, cyc[(i+1)%len(cyc)]}
			if edges[e] {
				return fmt.Errorf("directed edge %s→%s used twice", g.String(e[0]), g.String(e[1]))
			}
			edges[e] = true
		}
	}
	var buf []int
	for x := 0; x < g.Size; x++ {
		buf = g.Successors(x, buf)
		for _, y := range buf {
			if y == x {
				continue
			}
			if !edges[[2]int{x, y}] && !edges[[2]int{y, x}] {
				return fmt.Errorf("UB edge {%s,%s} missing from UMB", g.String(x), g.String(y))
			}
		}
	}
	return nil
}
