package hamilton

import (
	"fmt"

	"debruijnring/internal/lfsr"
	"debruijnring/internal/numtheory"
	"debruijnring/internal/word"
)

// FaultFreeHC finds a Hamiltonian cycle of B(d,n) avoiding the given faulty
// edges, each an (n+1)-digit window.  It implements Proposition 3.4: first
// it scans the ψ(d) disjoint Hamiltonian cycles (at most ψ(d)−1 of which
// can be hit), then falls back on the constructive recursion of
// Proposition 3.3, which tolerates φ(d) faults.  The returned cycle is a
// digit sequence of length dⁿ.
func FaultFreeHC(d, n int, faultWindows [][]int) ([]int, error) {
	for _, w := range faultWindows {
		if len(w) != n+1 {
			return nil, fmt.Errorf("hamilton: fault window %v has length %d, want n+1 = %d", w, len(w), n+1)
		}
	}
	if fam, err := DisjointHCs(d, n); err == nil {
		for _, c := range fam.Cycles {
			if !cycleHitsAny(c, n, faultWindows) {
				return c, nil
			}
		}
	}
	cycle, err := prop33(d, n, faultWindows)
	if err != nil {
		return nil, fmt.Errorf("hamilton: no fault-free HC with %d faults (tolerance MAX{ψ−1, φ} = %d): %w",
			len(faultWindows), MaxEdgeFaults(d), err)
	}
	return cycle, nil
}

// cycleHitsAny reports whether the digit cycle contains any fault window.
func cycleHitsAny(cycle []int, n int, faults [][]int) bool {
	if len(faults) == 0 {
		return false
	}
	// Code windows as integers for set lookup.
	d := 0
	for _, c := range cycle {
		if c >= d {
			d = c + 1
		}
	}
	for _, w := range faults {
		for _, c := range w {
			if c >= d {
				d = c + 1
			}
		}
	}
	code := func(w []int) int64 {
		v := int64(0)
		for _, c := range w {
			v = v*int64(d) + int64(c)
		}
		return v
	}
	bad := make(map[int64]bool, len(faults))
	for _, w := range faults {
		bad[code(w)] = true
	}
	k := len(cycle)
	win := make([]int, n+1)
	for i := 0; i < k; i++ {
		for j := 0; j <= n; j++ {
			win[j] = cycle[(i+j)%k]
		}
		if bad[code(win)] {
			return true
		}
	}
	return false
}

// prop33 is the constructive recursion of Proposition 3.3: a fault-free HC
// of B(d,n) under at most φ(d) edge faults.
func prop33(d, n int, faults [][]int) ([]int, error) {
	if len(faults) > EdgeFaultPhi(d) {
		return nil, fmt.Errorf("%d faults exceed φ(%d) = %d", len(faults), d, EdgeFaultPhi(d))
	}
	if _, _, ok := numtheory.PrimePowerOf(d); ok {
		return primePowerFaultFree(d, n, faults)
	}
	// Composite: d = s·t with t the largest prime-power factor.  An HC
	// (A,B) avoids the fault v₀…vₙ when A avoids its s-projection or B its
	// t-projection, so the faults may be split arbitrarily subject to the
	// recursive capacities φ(s) and φ(t).
	factors := numtheory.Factor(uint64(d))
	t := int(factors[len(factors)-1].Value())
	s := d / t
	capS := EdgeFaultPhi(s)
	var fa, fb [][]int
	for _, w := range faults {
		pa := make([]int, len(w))
		pb := make([]int, len(w))
		for i, v := range w {
			pa[i], pb[i] = SplitDigit(v, t)
		}
		if len(fa) < capS {
			fa = append(fa, pa)
		} else {
			fb = append(fb, pb)
		}
	}
	a, err := prop33(s, n, fa)
	if err != nil {
		return nil, err
	}
	b, err := prop33(t, n, fb)
	if err != nil {
		return nil, err
	}
	return ReesProduct(s, t, a, b), nil
}

// primePowerFaultFree implements the prime-power case of Proposition 3.3:
// among the d edge-disjoint cycles {s + C} at least one is fault-free when
// f ≤ d−2; it is made Hamiltonian with a replacement-edge pair (one of the
// d−1 candidates) that avoids the faults.
func primePowerFaultFree(q, n int, faults [][]int) ([]int, error) {
	m, err := lfsr.New(q, n)
	if err != nil {
		return nil, err
	}
	// Attribute each fault to its cycle s + C (loop edges sⁿ⁺¹ lie on no
	// cycle but the formula returns s; treat them as hitting nothing by
	// checking for the loop pattern).
	hits := make([]int, q)
	space := word.New(q, n+1)
	faultSet := make(map[int]bool, len(faults))
	for _, w := range faults {
		faultSet[space.FromDigits(w)] = true
		if isConstant(w) {
			continue // loop edge: on no cycle
		}
		hits[m.CycleIndexOfEdge(w)]++
	}
	for s := 0; s < q; s++ {
		if hits[s] != 0 {
			continue
		}
		// Candidate replacement pairs: one per k ≠ s (the trailing digit
		// α = sω + k(1−ω) determines the pair).  A fault kills at most one
		// pair (n > 1), so with f ≤ q−2 some pair is free.
		for k := 0; k < q; k++ {
			if k == s {
				continue
			}
			e1, e2 := NewEdges(m, s, k)
			if faultSet[space.FromDigits(e1)] || faultSet[space.FromDigits(e2)] {
				continue
			}
			return HsCycle(m, s, k), nil
		}
	}
	return nil, fmt.Errorf("no fault-free cycle/replacement pair in B(%d,%d) with %d faults", q, n, len(faults))
}

func isConstant(w []int) bool {
	for _, v := range w[1:] {
		if v != w[0] {
			return false
		}
	}
	return true
}
