package hamilton

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"debruijnring/internal/debruijn"
	"debruijnring/internal/lfsr"
)

// Property (Lemma 3.4): for random prime-power d and x ≠ y with
// y ∉ {f(x), 2x−f(x)} and x ∉ {f(y), 2y−f(y)}, the cycles H_x and H_y are
// edge-disjoint; when the membership holds they share an edge.
func TestPropertyLemma34(t *testing.T) {
	for _, q := range []int{5, 7, 9} {
		m, err := lfsr.New(q, 2)
		if err != nil {
			t.Fatal(err)
		}
		f := m.F
		g := debruijn.New(q, 2)
		check := func(xr, yr, cr uint8) bool {
			x := 1 + int(xr)%(q-1)
			y := 1 + int(yr)%(q-1)
			if x == y {
				return true
			}
			// A fixed-point-free f: multiply by a constant c ∉ {0, 1}.
			c := 2 + int(cr)%(q-2)
			if f.Mul(c, x) == x || f.Mul(c, y) == y {
				return true
			}
			fx, fy := f.Mul(c, x), f.Mul(c, y)
			hx := g.NodesOfSequence(HsCycle(m, x, fx))
			hy := g.NodesOfSequence(HsCycle(m, y, fy))
			shared := !g.EdgeDisjoint(hx, hy)
			two := f.Two()
			predict := y == fx || y == f.Sub(f.Mul(two, x), fx) ||
				x == fy || x == f.Sub(f.Mul(two, y), fy)
			return shared == predict
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("q=%d: %v", q, err)
		}
	}
}

// Property: every H_s is Hamiltonian for every admissible (s, f(s)) pair.
func TestPropertyHsAlwaysHamiltonian(t *testing.T) {
	for _, tc := range []struct{ q, n int }{{4, 2}, {5, 2}, {3, 3}, {8, 2}} {
		m, err := lfsr.New(tc.q, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		g := debruijn.New(tc.q, tc.n)
		for s := 0; s < tc.q; s++ {
			for fs := 0; fs < tc.q; fs++ {
				if fs == s {
					continue
				}
				nodes := g.NodesOfSequence(HsCycle(m, s, fs))
				if !g.IsHamiltonian(nodes) {
					t.Fatalf("B(%d,%d): H_%d with f(s)=%d not Hamiltonian", tc.q, tc.n, s, fs)
				}
			}
		}
	}
}

// Property: the Rees product of random rotations of Hamiltonian cycles is
// Hamiltonian (Lemma 3.6 does not depend on the phase).
func TestPropertyReesRotations(t *testing.T) {
	famA, err := DisjointHCs(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	famB, err := DisjointHCs(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	a0, b0 := famA.Cycles[0], famB.Cycles[0]
	g := debruijn.New(6, 2)
	check := func(ra, rb uint16) bool {
		a := rotate(a0, int(ra)%len(a0))
		b := rotate(b0, int(rb)%len(b0))
		return g.IsHamiltonian(g.NodesOfSequence(ReesProduct(2, 3, a, b)))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func rotate(seq []int, k int) []int {
	out := make([]int, len(seq))
	copy(out, seq[k:])
	copy(out[len(seq)-k:], seq[:k])
	return out
}

// Property: FaultFreeHC never returns a cycle through a fault, for fault
// sets within tolerance across a sweep of arities.
func TestPropertyFaultFreeHCSafety(t *testing.T) {
	rng := rand.New(rand.NewPCG(77, 88))
	for _, d := range []int{3, 4, 5, 6, 7, 9, 10} {
		n := 2
		tol := MaxEdgeFaults(d)
		for trial := 0; trial < 8; trial++ {
			f := rng.IntN(tol + 1)
			var faults [][]int
			for len(faults) < f {
				w := []int{rng.IntN(d), rng.IntN(d), rng.IntN(d)}
				if isConstant(w) {
					continue
				}
				faults = append(faults, w)
			}
			cycle, err := FaultFreeHC(d, n, faults)
			if err != nil {
				t.Fatalf("d=%d f=%d: %v", d, f, err)
			}
			if cycleHitsAny(cycle, n, faults) {
				t.Fatalf("d=%d: cycle hits fault", d)
			}
		}
	}
}
