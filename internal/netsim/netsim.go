// Package netsim is a small synchronous message-passing network simulator:
// the substrate on which the distributed FFC algorithm of Rowley–Bose §2.4
// runs.  Time advances in rounds; every message sent in round r is
// delivered at the start of round r+1 (the multi-port model: a node may
// send to all neighbours in one round).  The simulator counts rounds and
// messages, which are exactly the complexity measures the paper reports.
//
// Fault model: killed nodes send nothing and silently drop everything
// addressed to them, matching the paper's total-failure assumption.
package netsim

import (
	"fmt"
	"sort"
)

// Message is an in-flight payload with its sender.
type Message struct {
	From    int
	Payload any
}

// Network is a synchronous network of n nodes addressed 0..n−1.
type Network struct {
	n       int
	dead    []bool
	pending [][]Message // messages to deliver at the next Step
	queued  [][]Message // messages sent during the current Step

	Round        int   // rounds executed so far
	MessagesSent int64 // total messages accepted from live senders
}

// New creates a network of n nodes, all alive.
func New(n int) *Network {
	net := &Network{}
	net.Reset(n)
	return net
}

// Reset returns the network to its initial all-alive, zero-round state
// for n nodes, reusing the per-node message buffers of previous runs so
// pooled simulations (see ffc.EmbedDistributed) stop reallocating
// O(size) inbox bookkeeping per run.
func (net *Network) Reset(n int) {
	if cap(net.dead) < n {
		net.dead = make([]bool, n)
		net.pending = make([][]Message, n)
		net.queued = make([][]Message, n)
	} else {
		net.dead = net.dead[:n]
		clear(net.dead)
		net.pending = net.pending[:n]
		net.queued = net.queued[:n]
		for i := 0; i < n; i++ {
			net.pending[i] = net.pending[i][:0]
			net.queued[i] = net.queued[i][:0]
		}
	}
	net.n = n
	net.Round = 0
	net.MessagesSent = 0
}

// Size returns the number of nodes.
func (net *Network) Size() int { return net.n }

// Kill marks a node faulty: it will neither send nor receive.
func (net *Network) Kill(node int) { net.dead[node] = true }

// Alive reports whether a node is not faulty.
func (net *Network) Alive(node int) bool { return !net.dead[node] }

// Send queues a message for delivery in the next round.  Sends from dead
// nodes are ignored; sends to dead nodes are counted but dropped.
func (net *Network) Send(from, to int, payload any) {
	if from < 0 || from >= net.n || to < 0 || to >= net.n {
		panic(fmt.Sprintf("netsim: send %d → %d out of range", from, to))
	}
	if net.dead[from] {
		return
	}
	net.MessagesSent++
	if net.dead[to] {
		return
	}
	net.queued[to] = append(net.queued[to], Message{From: from, Payload: payload})
}

// Step delivers every message queued in the previous round, invoking
// handler once per node that has mail (in ascending node order, with each
// inbox sorted by sender so runs are deterministic).  Handlers send the
// next round's messages via Send.  Step reports whether anything was
// delivered and advances the round counter when so.
func (net *Network) Step(handler func(node int, inbox []Message)) bool {
	net.pending, net.queued = net.queued, net.pending
	for i := range net.queued {
		net.queued[i] = net.queued[i][:0]
	}
	any := false
	for node := 0; node < net.n; node++ {
		if len(net.pending[node]) > 0 {
			any = true
			break
		}
	}
	if !any {
		return false
	}
	net.Round++ // handlers observe the round in which their mail arrives
	for node := 0; node < net.n; node++ {
		inbox := net.pending[node]
		if len(inbox) == 0 {
			continue
		}
		sort.SliceStable(inbox, func(i, j int) bool { return inbox[i].From < inbox[j].From })
		handler(node, inbox)
	}
	return true
}

// RunUntilQuiet repeatedly Steps until no messages are in flight and
// returns the number of rounds that delivered mail.
func (net *Network) RunUntilQuiet(handler func(node int, inbox []Message)) int {
	rounds := 0
	for net.Step(handler) {
		rounds++
	}
	return rounds
}

// RunRounds executes exactly k delivery rounds (quiet rounds count toward
// k; this models protocol phases with a fixed round budget).
func (net *Network) RunRounds(k int, handler func(node int, inbox []Message)) {
	for i := 0; i < k; i++ {
		if !net.Step(handler) {
			net.Round++ // a silent round still consumes time
		}
	}
}
