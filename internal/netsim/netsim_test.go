package netsim

import "testing"

func TestPingPong(t *testing.T) {
	net := New(2)
	net.Send(0, 1, "ping")
	hops := 0
	rounds := net.RunUntilQuiet(func(node int, inbox []Message) {
		for _, m := range inbox {
			hops++
			if hops < 5 {
				net.Send(node, m.From, "pong")
			}
		}
	})
	if hops != 5 {
		t.Errorf("hops = %d, want 5", hops)
	}
	if rounds != 5 {
		t.Errorf("rounds = %d, want 5", rounds)
	}
	if net.MessagesSent != 5 {
		t.Errorf("messages = %d, want 5", net.MessagesSent)
	}
}

func TestDeadNodesDropMail(t *testing.T) {
	net := New(3)
	net.Kill(1)
	if net.Alive(1) {
		t.Error("killed node reported alive")
	}
	net.Send(0, 1, "lost") // counted, dropped
	net.Send(1, 2, "never")
	delivered := 0
	net.RunUntilQuiet(func(node int, inbox []Message) { delivered += len(inbox) })
	if delivered != 0 {
		t.Errorf("delivered %d messages through a dead node", delivered)
	}
	if net.MessagesSent != 1 {
		t.Errorf("MessagesSent = %d, want 1 (dead senders not counted)", net.MessagesSent)
	}
}

func TestSynchronousDelivery(t *testing.T) {
	// A message sent in round r arrives in round r+1, never earlier.
	net := New(2)
	net.Send(0, 1, 1)
	arrivals := []int{}
	net.RunUntilQuiet(func(node int, inbox []Message) {
		for range inbox {
			arrivals = append(arrivals, net.Round)
		}
		if net.Round < 3 {
			net.Send(node, node^1, 1)
		}
	})
	want := []int{1, 2, 3}
	if len(arrivals) != len(want) {
		t.Fatalf("arrivals = %v", arrivals)
	}
	for i := range want {
		if arrivals[i] != want[i] {
			t.Fatalf("arrivals = %v, want %v", arrivals, want)
		}
	}
}

func TestInboxOrderDeterministic(t *testing.T) {
	net := New(4)
	net.Send(2, 0, "b")
	net.Send(1, 0, "a")
	net.Send(3, 0, "c")
	net.Step(func(node int, inbox []Message) {
		if len(inbox) != 3 {
			t.Fatalf("inbox size %d", len(inbox))
		}
		for i, from := range []int{1, 2, 3} {
			if inbox[i].From != from {
				t.Errorf("inbox[%d].From = %d, want %d", i, inbox[i].From, from)
			}
		}
	})
}

func TestRunRoundsCountsSilentRounds(t *testing.T) {
	net := New(2)
	net.RunRounds(3, func(int, []Message) {})
	if net.Round != 3 {
		t.Errorf("Round = %d, want 3 (silent rounds consume time)", net.Round)
	}
}

func TestSendRangePanics(t *testing.T) {
	net := New(2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on out-of-range send")
		}
	}()
	net.Send(0, 5, nil)
}

func TestResetReuse(t *testing.T) {
	net := New(3)
	net.Kill(1)
	net.Send(0, 2, "x")
	net.Step(func(node int, inbox []Message) {})
	if net.Round != 1 || net.MessagesSent != 1 {
		t.Fatalf("pre-reset state: round %d, sent %d", net.Round, net.MessagesSent)
	}

	net.Reset(3)
	if net.Round != 0 || net.MessagesSent != 0 {
		t.Errorf("reset kept counters: round %d, sent %d", net.Round, net.MessagesSent)
	}
	if !net.Alive(1) {
		t.Error("reset kept node 1 dead")
	}
	if net.Step(func(node int, inbox []Message) { t.Error("stale message delivered") }) {
		t.Error("reset network still had mail in flight")
	}

	// Growing past the previous capacity reallocates cleanly.
	net.Reset(8)
	if net.Size() != 8 || !net.Alive(7) {
		t.Errorf("grown reset: size %d", net.Size())
	}
	net.Send(7, 0, "y")
	delivered := false
	net.Step(func(node int, inbox []Message) { delivered = node == 0 })
	if !delivered {
		t.Error("grown network did not deliver")
	}
}
