package gf

import (
	"testing"
	"testing/quick"
)

func TestNewFieldErrors(t *testing.T) {
	for _, q := range []int{0, 1, 6, 10, 12, 15} {
		if _, err := NewField(q); err == nil {
			t.Errorf("NewField(%d) should fail", q)
		}
	}
	if _, err := NewField(1 << 13); err == nil {
		t.Error("oversized field should fail")
	}
}

func TestPrimeFieldMatchesModularArithmetic(t *testing.T) {
	for _, p := range []int{2, 3, 5, 7, 13} {
		f := MustField(p)
		for a := 0; a < p; a++ {
			for b := 0; b < p; b++ {
				if got := f.Add(a, b); got != (a+b)%p {
					t.Fatalf("GF(%d): %d+%d = %d", p, a, b, got)
				}
				if got := f.Mul(a, b); got != (a*b)%p {
					t.Fatalf("GF(%d): %d·%d = %d", p, a, b, got)
				}
			}
			if got := f.Neg(a); got != (p-a)%p {
				t.Fatalf("GF(%d): −%d = %d", p, a, got)
			}
		}
	}
}

// fieldAxioms exhaustively checks the field axioms for GF(q).
func fieldAxioms(t *testing.T, q int) {
	t.Helper()
	f := MustField(q)
	for a := 0; a < q; a++ {
		if f.Add(a, 0) != a || f.Mul(a, 1) != a || f.Mul(a, 0) != 0 {
			t.Fatalf("GF(%d): identity laws fail at %d", q, a)
		}
		if f.Add(a, f.Neg(a)) != 0 {
			t.Fatalf("GF(%d): a + (−a) ≠ 0 at %d", q, a)
		}
		if a != 0 && f.Mul(a, f.Inv(a)) != 1 {
			t.Fatalf("GF(%d): a·a⁻¹ ≠ 1 at %d", q, a)
		}
		for b := 0; b < q; b++ {
			if f.Add(a, b) != f.Add(b, a) || f.Mul(a, b) != f.Mul(b, a) {
				t.Fatalf("GF(%d): commutativity fails at (%d,%d)", q, a, b)
			}
			if f.Sub(f.Add(a, b), b) != a {
				t.Fatalf("GF(%d): (a+b)−b ≠ a at (%d,%d)", q, a, b)
			}
			for c := 0; c < q; c++ {
				if f.Mul(a, f.Add(b, c)) != f.Add(f.Mul(a, b), f.Mul(a, c)) {
					t.Fatalf("GF(%d): distributivity fails at (%d,%d,%d)", q, a, b, c)
				}
				if f.Mul(f.Mul(a, b), c) != f.Mul(a, f.Mul(b, c)) {
					t.Fatalf("GF(%d): associativity fails at (%d,%d,%d)", q, a, b, c)
				}
			}
		}
	}
}

func TestFieldAxioms(t *testing.T) {
	for _, q := range []int{2, 3, 4, 5, 8, 9, 16, 25, 27} {
		fieldAxioms(t, q)
	}
}

func TestGF4Structure(t *testing.T) {
	// Example 3.2 uses GF(4) = {0, 1, ζ, ζ²} with ζ a root of x²+x+1:
	// 1 + ζ = ζ², 1 + ζ² = ζ, ζ + ζ² = 1 and ζ³ = 1.
	f := MustField(4)
	zeta := f.Generator()
	z2 := f.Mul(zeta, zeta)
	if f.Add(1, zeta) != z2 {
		t.Errorf("1 + ζ = %d, want ζ² = %d", f.Add(1, zeta), z2)
	}
	if f.Add(1, z2) != zeta {
		t.Errorf("1 + ζ² = %d, want ζ = %d", f.Add(1, z2), zeta)
	}
	if f.Add(zeta, z2) != 1 {
		t.Errorf("ζ + ζ² = %d, want 1", f.Add(zeta, z2))
	}
	if f.Pow(zeta, 3) != 1 {
		t.Errorf("ζ³ = %d, want 1", f.Pow(zeta, 3))
	}
	if f.Two() != 0 {
		t.Errorf("2 = %d in GF(4), want 0 (characteristic 2)", f.Two())
	}
}

func TestCharacteristic(t *testing.T) {
	for _, q := range []int{2, 4, 8, 16, 32} {
		f := MustField(q)
		for a := 0; a < q; a++ {
			if f.Add(a, a) != 0 {
				t.Fatalf("GF(%d): a + a ≠ 0 at %d", q, a)
			}
		}
	}
	f9 := MustField(9)
	for a := 0; a < 9; a++ {
		if f9.Add(f9.Add(a, a), a) != 0 {
			t.Fatalf("GF(9): 3a ≠ 0 at %d", a)
		}
	}
}

func TestOrderAndGenerator(t *testing.T) {
	for _, q := range []int{4, 5, 8, 9, 13, 16, 25} {
		f := MustField(q)
		g := f.Generator()
		if ord := f.Order(g); ord != q-1 {
			t.Errorf("GF(%d): generator order %d, want %d", q, ord, q-1)
		}
		// Order divides q−1 for every nonzero element.
		for a := 1; a < q; a++ {
			if (q-1)%f.Order(a) != 0 {
				t.Errorf("GF(%d): order(%d) = %d does not divide %d", q, a, f.Order(a), q-1)
			}
			if f.Pow(a, f.Order(a)) != 1 {
				t.Errorf("GF(%d): a^order ≠ 1 at %d", q, a)
			}
		}
	}
}

func TestIntEmbedding(t *testing.T) {
	f := MustField(9)
	if f.Int(3) != 0 {
		t.Errorf("Int(3) in GF(9) = %d, want 0", f.Int(3))
	}
	if f.Int(5) != 2 {
		t.Errorf("Int(5) in GF(9) = %d, want 2", f.Int(5))
	}
	if f.Int(-1) != f.Neg(1) {
		t.Errorf("Int(-1) = %d, want %d", f.Int(-1), f.Neg(1))
	}
	if f.Two() != 2 {
		t.Errorf("Two() in GF(9) = %d, want 2", f.Two())
	}
}

func TestPowProperties(t *testing.T) {
	f := MustField(13)
	check := func(a uint8, i, j uint8) bool {
		x := int(a) % 13
		if x == 0 {
			x = 1
		}
		return f.Mul(f.Pow(x, int(i%20)), f.Pow(x, int(j%20))) == f.Pow(x, int(i%20)+int(j%20))
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestPolyModAndPowX(t *testing.T) {
	f := MustField(3)
	// m(x) = x² + 1 over GF(3); x² ≡ −1 ≡ 2.
	m := Poly{1, 0, 1}
	got := PowXMod(f, 2, m)
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("x² mod (x²+1) over GF(3) = %v, want [2]", got)
	}
	// x⁴ ≡ (−1)² = 1.
	got = PowXMod(f, 4, m)
	if !isOne(got) {
		t.Errorf("x⁴ mod (x²+1) = %v, want 1", got)
	}
	// x^0 = 1.
	if !isOne(PowXMod(f, 0, m)) {
		t.Error("x⁰ should be 1")
	}
}

func TestPrimitiveRecurrenceKnownPolynomials(t *testing.T) {
	// x² − x − 3 is primitive over GF(5) (Example 3.1): the recurrence
	// s_{2+i} = s_{1+i} + 3s_i has period 24.
	f := MustField(5)
	r := Recurrence{F: f, A: []int{3, 1}}
	if !r.IsPrimitive() {
		t.Error("x² − x − 3 should be primitive over GF(5)")
	}
	// x³ = x² + 1 over GF(2), i.e. c_{i+3} = c_{i+2} + c_i (Example 3.6).
	f2 := MustField(2)
	r2 := Recurrence{F: f2, A: []int{1, 0, 1}}
	if !r2.IsPrimitive() {
		t.Error("x³ − x² − 1 should be primitive over GF(2)")
	}
	// x² − x − ζ is primitive over GF(4) (Example 3.2), with ζ the
	// generator of GF(4)*.
	f4 := MustField(4)
	zeta := f4.Generator()
	r4 := Recurrence{F: f4, A: []int{zeta, 1}}
	if !r4.IsPrimitive() {
		t.Error("x² − x − ζ should be primitive over GF(4)")
	}
	// Non-primitive examples: x² − 1 = (x−1)(x+1) over GF(5);
	// x² − 2 is irreducible over GF(5) but has order 8 < 24.
	if (Recurrence{F: f, A: []int{1, 0}}).IsPrimitive() {
		t.Error("x² − 1 must not be primitive over GF(5)")
	}
	if (Recurrence{F: f, A: []int{2, 0}}).IsPrimitive() {
		t.Error("x² − 2 must not be primitive over GF(5)")
	}
	// Zero constant term can never be primitive.
	if (Recurrence{F: f, A: []int{0, 1}}).IsPrimitive() {
		t.Error("recurrence with a_0 = 0 must not be primitive")
	}
}

// sequencePeriod runs the recurrence from the given seed and returns the
// period of the resulting sequence (brute force).
func sequencePeriod(r Recurrence, seed []int) int {
	n := r.N()
	window := append([]int(nil), seed...)
	start := append([]int(nil), seed...)
	period := 0
	for {
		next := r.Next(window)
		copy(window, window[1:])
		window[n-1] = next
		period++
		same := true
		for i := range window {
			if window[i] != start[i] {
				same = false
				break
			}
		}
		if same {
			return period
		}
		if period > 1<<20 {
			return -1
		}
	}
}

func TestPrimitiveRecurrenceSequencePeriod(t *testing.T) {
	// A primitive recurrence of order n over GF(q) yields a sequence of
	// period qⁿ − 1 from any nonzero seed (§3.1).
	for _, tc := range []struct{ q, n int }{{2, 3}, {2, 5}, {3, 3}, {4, 2}, {5, 2}, {8, 2}, {9, 2}, {13, 2}} {
		f := MustField(tc.q)
		r := PrimitiveRecurrence(f, tc.n)
		want := 1
		for i := 0; i < tc.n; i++ {
			want *= tc.q
		}
		want--
		seed := make([]int, tc.n)
		seed[tc.n-1] = 1
		if got := sequencePeriod(r, seed); got != want {
			t.Errorf("GF(%d) order %d: sequence period %d, want %d", tc.q, tc.n, got, want)
		}
	}
}

func TestPrimitiveRecurrenceDeterministic(t *testing.T) {
	f := MustField(5)
	a := PrimitiveRecurrence(f, 3)
	b := PrimitiveRecurrence(f, 3)
	if len(a.A) != len(b.A) {
		t.Fatal("nondeterministic search")
	}
	for i := range a.A {
		if a.A[i] != b.A[i] {
			t.Fatal("nondeterministic search")
		}
	}
}

func TestRecurrenceFromCharPoly(t *testing.T) {
	f := MustField(5)
	r := Recurrence{F: f, A: []int{3, 1}}
	p := r.CharPoly() // x² − x − 3 = x² + 4x + 2 over GF(5)
	if p[0] != 2 || p[1] != 4 || p[2] != 1 {
		t.Fatalf("CharPoly = %v", p)
	}
	back := RecurrenceFromCharPoly(f, p)
	if back.A[0] != 3 || back.A[1] != 1 {
		t.Fatalf("round trip = %v", back.A)
	}
}

func TestOmegaSum(t *testing.T) {
	f := MustField(5)
	r := Recurrence{F: f, A: []int{3, 1}}
	if got := r.OmegaSum(); got != 4 {
		t.Errorf("ω = %d, want 4", got)
	}
	// For a primitive polynomial, 1 − ω ≠ 0 (else x = 1 would be a root).
	for _, q := range []int{2, 3, 4, 5, 8, 9, 13} {
		fq := MustField(q)
		rq := PrimitiveRecurrence(fq, 2)
		if fq.Sub(1, rq.OmegaSum()) == 0 {
			t.Errorf("GF(%d): 1 − ω = 0 for primitive polynomial", q)
		}
	}
}

func BenchmarkPrimitiveRecurrence(b *testing.B) {
	f := MustField(13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PrimitiveRecurrence(f, 2)
	}
}

func BenchmarkFieldMul(b *testing.B) {
	f := MustField(16)
	s := 0
	for i := 0; i < b.N; i++ {
		s += f.Mul(i&15, (i>>4)&15)
	}
	_ = s
}
