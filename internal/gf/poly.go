package gf

import (
	"fmt"

	"debruijnring/internal/numtheory"
)

// Poly is a polynomial over a Field, coefficient slice indexed by degree
// (p[0] is the constant term).  The zero polynomial is the empty slice.
// Polynomials are kept normalized: the leading coefficient is nonzero.
type Poly []int

// trim removes leading zero coefficients.
func trim(p Poly) Poly {
	for len(p) > 0 && p[len(p)-1] == 0 {
		p = p[:len(p)-1]
	}
	return p
}

// Degree returns the degree of p, with Degree(0) = −1.
func (p Poly) Degree() int { return len(p) - 1 }

// MulMod returns a·b mod m over f, where m is monic of degree ≥ 1.
func MulMod(f *Field, a, b, m Poly) Poly {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	prod := make(Poly, len(a)+len(b)-1)
	for i, x := range a {
		if x == 0 {
			continue
		}
		for j, y := range b {
			prod[i+j] = f.Add(prod[i+j], f.Mul(x, y))
		}
	}
	return Mod(f, prod, m)
}

// Mod reduces p modulo monic m.
func Mod(f *Field, p, m Poly) Poly {
	dm := m.Degree()
	if dm < 1 {
		panic("gf: modulus must have degree ≥ 1")
	}
	r := make(Poly, len(p))
	copy(r, p)
	for d := len(r) - 1; d >= dm; d-- {
		c := r[d]
		if c == 0 {
			continue
		}
		for i := 0; i <= dm; i++ {
			r[d-dm+i] = f.Sub(r[d-dm+i], f.Mul(c, m[i]))
		}
	}
	if len(r) > dm {
		r = r[:dm]
	}
	return trim(r)
}

// PowXMod returns x^k mod m for monic m, by binary exponentiation.
func PowXMod(f *Field, k uint64, m Poly) Poly {
	result := Poly{1}
	base := Poly{0, 1} // x
	base = Mod(f, base, m)
	for k > 0 {
		if k&1 == 1 {
			result = MulMod(f, result, base, m)
		}
		base = MulMod(f, base, base, m)
		k >>= 1
	}
	return result
}

// isOne reports whether p is the constant polynomial 1.
func isOne(p Poly) bool { return len(p) == 1 && p[0] == 1 }

// Recurrence holds the coefficients of the degree-n linear recurrence
//
//	c_{n+i} = a_{n−1}·c_{n−1+i} + … + a_0·c_i     (paper eq. 3.1)
//
// over a field, i.e. the characteristic polynomial is
//
//	p(x) = xⁿ − a_{n−1}x^{n−1} − … − a_0          (paper eq. 3.2)
type Recurrence struct {
	F *Field
	A []int // a_0 … a_{n−1}
}

// N returns the recurrence order.
func (r Recurrence) N() int { return len(r.A) }

// CharPoly returns the characteristic polynomial xⁿ − a_{n−1}x^{n−1} − … − a_0.
func (r Recurrence) CharPoly() Poly {
	n := len(r.A)
	p := make(Poly, n+1)
	for i, a := range r.A {
		p[i] = r.F.Neg(a)
	}
	p[n] = 1
	return p
}

// OmegaSum returns ω = a_0 + … + a_{n−1} in the field (Lemma 3.2).
func (r Recurrence) OmegaSum() int {
	w := 0
	for _, a := range r.A {
		w = r.F.Add(w, a)
	}
	return w
}

// Next computes the next sequence element from the window c_i…c_{n−1+i}.
func (r Recurrence) Next(window []int) int {
	s := 0
	for i, a := range r.A {
		s = r.F.Add(s, r.F.Mul(a, window[i]))
	}
	return s
}

// IsPrimitive reports whether the characteristic polynomial of r is
// primitive over GF(q): the order of x modulo p(x) is qⁿ − 1.  (When the
// order is qⁿ − 1 the quotient ring must be a field, so irreducibility is
// implied and need not be tested separately.)
func (r Recurrence) IsPrimitive() bool {
	if len(r.A) == 0 || r.A[0] == 0 {
		return false // x divides p(x)
	}
	q, n := r.F.Q, len(r.A)
	order := uint64(1)
	for i := 0; i < n; i++ {
		order *= uint64(q)
	}
	order--
	m := r.CharPoly()
	if !isOne(PowXMod(r.F, order, m)) {
		return false
	}
	for _, pp := range numtheory.Factor(order) {
		if isOne(PowXMod(r.F, order/pp.P, m)) {
			return false
		}
	}
	return true
}

// PrimitiveRecurrence finds the lexicographically least recurrence of order
// n over GF(q) whose characteristic polynomial is primitive.  The search is
// deterministic, so callers (and tests) always see the same maximal cycle
// for given (q, n).
func PrimitiveRecurrence(f *Field, n int) Recurrence {
	if n < 1 {
		panic("gf: recurrence order must be ≥ 1")
	}
	total := 1
	for i := 0; i < n-1; i++ {
		if total > 1<<30/f.Q {
			panic(fmt.Sprintf("gf: primitive polynomial search space too large (q=%d, n=%d)", f.Q, n))
		}
		total *= f.Q
	}
	a := make([]int, n)
	for a0 := 1; a0 < f.Q; a0++ {
		for rest := 0; rest < total; rest++ {
			a[0] = a0
			v := rest
			for i := 1; i < n; i++ {
				a[i] = v % f.Q
				v /= f.Q
			}
			r := Recurrence{F: f, A: append([]int(nil), a...)}
			if r.IsPrimitive() {
				return r
			}
		}
	}
	panic(fmt.Sprintf("gf: no primitive polynomial of degree %d over GF(%d) (unreachable)", n, f.Q))
}

// RecurrenceFromCharPoly builds the Recurrence whose characteristic
// polynomial is the given monic p(x) of degree ≥ 1: a_i = −p[i].
func RecurrenceFromCharPoly(f *Field, p Poly) Recurrence {
	n := p.Degree()
	if n < 1 || p[n] != 1 {
		panic("gf: characteristic polynomial must be monic of degree ≥ 1")
	}
	a := make([]int, n)
	for i := 0; i < n; i++ {
		a[i] = f.Neg(p[i])
	}
	return Recurrence{F: f, A: a}
}
