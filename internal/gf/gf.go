// Package gf implements arithmetic in finite fields GF(p^e) and the search
// for primitive polynomials over them.  Chapter 3 of Rowley–Bose builds
// maximal cycles in B(d,n) (d a prime power) from linear recurrences whose
// characteristic polynomial is primitive over GF(d); this package supplies
// the field arithmetic and the polynomials.
//
// Field elements are coded as integers in [0, q): the element with code
// c_{e−1}·p^{e−1} + … + c_1·p + c_0 is the residue class of the polynomial
// c_{e−1}t^{e−1} + … + c_0 modulo a fixed irreducible polynomial of degree e
// over Z_p.  Code 0 is the additive identity and code 1 the multiplicative
// identity.  For e = 1 this reduces to ordinary arithmetic mod p.
package gf

import (
	"fmt"

	"debruijnring/internal/numtheory"
)

// MaxOrder bounds the field sizes this package will construct.  The paper's
// experiments never need fields beyond GF(64).
const MaxOrder = 1 << 12

// Field is the Galois field GF(q) with q = p^e.  It precomputes full
// addition and multiplication tables (q ≤ MaxOrder keeps them small) so that
// element operations are single table lookups.  A Field is immutable after
// NewField and safe for concurrent use.
type Field struct {
	P int // characteristic
	E int // extension degree
	Q int // order p^e

	add [][]uint16
	mul [][]uint16
	inv []uint16 // inv[0] unused
	neg []uint16

	modulus []int // irreducible polynomial over Z_p used to build the field (degree E, monic)
}

// NewField constructs GF(q).  q must be a prime power not exceeding
// MaxOrder.
func NewField(q int) (*Field, error) {
	p, e, ok := numtheory.PrimePowerOf(q)
	if !ok {
		return nil, fmt.Errorf("gf: %d is not a prime power", q)
	}
	if q > MaxOrder {
		return nil, fmt.Errorf("gf: field order %d exceeds limit %d", q, MaxOrder)
	}
	f := &Field{P: p, E: e, Q: q}
	f.modulus = findIrreducible(p, e)
	f.buildTables()
	return f, nil
}

// MustField is NewField for callers with statically valid q.
func MustField(q int) *Field {
	f, err := NewField(q)
	if err != nil {
		panic(err)
	}
	return f
}

// findIrreducible returns a monic irreducible polynomial of degree e over
// Z_p as a coefficient slice c[0..e] with c[e] = 1, found by exhaustive
// search in lexicographic order of the low coefficients.  For e = 1 it
// returns t (so reduction is just mod p).
func findIrreducible(p, e int) []int {
	if e == 1 {
		return []int{0, 1}
	}
	total := 1
	for i := 0; i < e; i++ {
		total *= p
	}
	lower := enumerateMonic(p, e)
	for code := 0; code < total; code++ {
		cand := make([]int, e+1)
		v := code
		for i := 0; i < e; i++ {
			cand[i] = v % p
			v /= p
		}
		cand[e] = 1
		if isIrreducibleZp(cand, p, lower) {
			return cand
		}
	}
	panic(fmt.Sprintf("gf: no irreducible polynomial of degree %d over Z_%d (unreachable)", e, p))
}

// enumerateMonic lists all monic polynomials over Z_p of degree 1..e/2,
// the candidate divisors for trial division.
func enumerateMonic(p, e int) [][]int {
	var out [][]int
	for deg := 1; deg <= e/2; deg++ {
		total := 1
		for i := 0; i < deg; i++ {
			total *= p
		}
		for code := 0; code < total; code++ {
			poly := make([]int, deg+1)
			v := code
			for i := 0; i < deg; i++ {
				poly[i] = v % p
				v /= p
			}
			poly[deg] = 1
			out = append(out, poly)
		}
	}
	return out
}

// isIrreducibleZp tests irreducibility by trial division over Z_p.
func isIrreducibleZp(f []int, p int, divisors [][]int) bool {
	for _, g := range divisors {
		if polyRemZeroZp(f, g, p) {
			return false
		}
	}
	return true
}

// polyRemZeroZp reports whether g divides f over Z_p (g monic).
func polyRemZeroZp(f, g []int, p int) bool {
	r := make([]int, len(f))
	copy(r, f)
	dg := len(g) - 1
	for dr := len(r) - 1; dr >= dg; dr-- {
		c := r[dr]
		if c == 0 {
			continue
		}
		for i := 0; i <= dg; i++ {
			r[dr-dg+i] = ((r[dr-dg+i]-c*g[i])%p + p*p) % p
		}
	}
	for i := 0; i < dg; i++ {
		if r[i] != 0 {
			return false
		}
	}
	return true
}

func (f *Field) buildTables() {
	q, p, e := f.Q, f.P, f.E
	f.add = make([][]uint16, q)
	f.mul = make([][]uint16, q)
	f.neg = make([]uint16, q)
	f.inv = make([]uint16, q)
	for a := 0; a < q; a++ {
		f.add[a] = make([]uint16, q)
		f.mul[a] = make([]uint16, q)
	}
	// Addition: coefficient-wise mod p.
	for a := 0; a < q; a++ {
		for b := a; b < q; b++ {
			s, av, bv, pw := 0, a, b, 1
			for i := 0; i < e; i++ {
				s += (av%p + bv%p) % p * pw
				av /= p
				bv /= p
				pw *= p
			}
			f.add[a][b] = uint16(s)
			f.add[b][a] = uint16(s)
		}
	}
	for a := 0; a < q; a++ {
		n, av, pw := 0, a, 1
		for i := 0; i < e; i++ {
			n += (p - av%p) % p * pw
			av /= p
			pw *= p
		}
		f.neg[a] = uint16(n)
	}
	// Multiplication: polynomial product modulo the field modulus.
	coeffs := func(a int) []int {
		c := make([]int, e)
		for i := 0; i < e; i++ {
			c[i] = a % p
			a /= p
		}
		return c
	}
	for a := 0; a < q; a++ {
		ca := coeffs(a)
		for b := a; b < q; b++ {
			cb := coeffs(b)
			prod := make([]int, 2*e-1)
			for i, x := range ca {
				if x == 0 {
					continue
				}
				for j, y := range cb {
					prod[i+j] = (prod[i+j] + x*y) % p
				}
			}
			// Reduce modulo the monic modulus of degree e.
			for d := len(prod) - 1; d >= e; d-- {
				c := prod[d]
				if c == 0 {
					continue
				}
				for i := 0; i <= e; i++ {
					prod[d-e+i] = ((prod[d-e+i]-c*f.modulus[i])%p + p*p) % p
				}
			}
			v, pw := 0, 1
			for i := 0; i < e; i++ {
				v += prod[i] * pw
				pw *= p
			}
			f.mul[a][b] = uint16(v)
			f.mul[b][a] = uint16(v)
		}
	}
	// Inverses by scanning the multiplication table rows.
	for a := 1; a < q; a++ {
		for b := 1; b < q; b++ {
			if f.mul[a][b] == 1 {
				f.inv[a] = uint16(b)
				break
			}
		}
		if f.inv[a] == 0 {
			panic(fmt.Sprintf("gf: element %d has no inverse in GF(%d); modulus not irreducible", a, q))
		}
	}
}

// Add returns a + b.
func (f *Field) Add(a, b int) int { return int(f.add[a][b]) }

// Sub returns a − b.
func (f *Field) Sub(a, b int) int { return int(f.add[a][f.neg[b]]) }

// Neg returns −a.
func (f *Field) Neg(a int) int { return int(f.neg[a]) }

// Mul returns a·b.
func (f *Field) Mul(a, b int) int { return int(f.mul[a][b]) }

// Inv returns a⁻¹; it panics on a = 0.
func (f *Field) Inv(a int) int {
	if a == 0 {
		panic("gf: inverse of zero")
	}
	return int(f.inv[a])
}

// Div returns a·b⁻¹.
func (f *Field) Div(a, b int) int { return f.Mul(a, f.Inv(b)) }

// Pow returns a^k for k ≥ 0 (0⁰ = 1).
func (f *Field) Pow(a, k int) int {
	r := 1
	for k > 0 {
		if k&1 == 1 {
			r = f.Mul(r, a)
		}
		a = f.Mul(a, a)
		k >>= 1
	}
	return r
}

// Int returns the field element equal to the integer m (the image of m
// under the ring map Z → GF(q)), i.e. 1 added to itself m mod p times.
func (f *Field) Int(m int) int {
	m %= f.P
	if m < 0 {
		m += f.P
	}
	return m // constant polynomials are coded by their value in [0, p)
}

// Two returns the field element 2 = 1 + 1 (0 in characteristic 2).
func (f *Field) Two() int { return f.Int(2) }

// Order returns the multiplicative order of a ≠ 0.
func (f *Field) Order(a int) int {
	if a == 0 {
		panic("gf: order of zero")
	}
	n := f.Q - 1
	ord := n
	for _, pp := range numtheory.Factor(uint64(n)) {
		for ord%int(pp.P) == 0 && f.Pow(a, ord/int(pp.P)) == 1 {
			ord /= int(pp.P)
		}
	}
	return ord
}

// Generator returns the least element (by code) generating GF(q)*.
func (f *Field) Generator() int {
	for a := 1; a < f.Q; a++ {
		if f.Order(a) == f.Q-1 {
			return a
		}
	}
	panic("gf: no generator (unreachable)")
}

// Modulus returns a copy of the irreducible Z_p polynomial defining the
// field (degree E, monic), low coefficient first.
func (f *Field) Modulus() []int {
	out := make([]int, len(f.modulus))
	copy(out, f.modulus)
	return out
}
