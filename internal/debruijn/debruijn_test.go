package debruijn

import (
	"testing"
)

func parse(t *testing.T, g *Graph, s string) int {
	t.Helper()
	x, err := g.Parse(s)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return x
}

func TestSuccessorsPredecessors(t *testing.T) {
	g := New(2, 3)
	x := parse(t, g, "010")
	succ := g.Successors(x, nil)
	if len(succ) != 2 || g.String(succ[0]) != "100" || g.String(succ[1]) != "101" {
		t.Errorf("successors of 010 = %v", succ)
	}
	pred := g.Predecessors(x, nil)
	if len(pred) != 2 || g.String(pred[0]) != "001" || g.String(pred[1]) != "101" {
		t.Errorf("predecessors of 010 = %v", pred)
	}
	// Consistency: y ∈ succ(x) ⇔ x ∈ pred(y), over the whole graph.
	g2 := New(3, 3)
	var sbuf, pbuf []int
	for x := 0; x < g2.Size; x++ {
		sbuf = g2.Successors(x, sbuf)
		for _, y := range sbuf {
			found := false
			pbuf = g2.Predecessors(y, pbuf)
			for _, z := range pbuf {
				if z == x {
					found = true
				}
			}
			if !found {
				t.Fatalf("%s ∈ succ(%s) but not vice versa", g2.String(y), g2.String(x))
			}
		}
	}
}

func TestLoops(t *testing.T) {
	g := New(3, 4)
	loops := 0
	for x := 0; x < g.Size; x++ {
		if g.HasLoop(x) {
			loops++
			if x != g.Repeat(g.Digit(x, 1)) {
				t.Errorf("unexpected loop at %s", g.String(x))
			}
		}
	}
	if loops != g.D {
		t.Errorf("%d loops, want %d", loops, g.D)
	}
	if g.NumEdges() != g.D*g.Size {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
}

// TestFigure11 checks the structure of B(2,3) against Figure 1.1(a):
// in/out degree 2 everywhere, loops at 000 and 111, and spot-checked edges.
func TestFigure11(t *testing.T) {
	g := New(2, 3)
	if g.Size != 8 {
		t.Fatalf("B(2,3) has %d nodes", g.Size)
	}
	edges := map[[2]string]bool{}
	var buf []int
	for x := 0; x < g.Size; x++ {
		buf = g.Successors(x, buf)
		for _, y := range buf {
			edges[[2]string{g.String(x), g.String(y)}] = true
		}
	}
	for _, e := range [][2]string{
		{"000", "000"}, {"000", "001"}, {"001", "010"}, {"001", "011"},
		{"100", "000"}, {"100", "001"}, {"110", "101"}, {"111", "111"},
	} {
		if !edges[e] {
			t.Errorf("edge %v missing from B(2,3)", e)
		}
	}
	if edges[[2]string{"000", "010"}] {
		t.Error("B(2,3) must not contain edge 000→010")
	}
	// B(2,4) (Figure 1.1(b)) has 16 nodes and 32 edges.
	g4 := New(2, 4)
	if g4.Size != 16 || g4.NumEdges() != 32 {
		t.Errorf("B(2,4): %d nodes, %d edges", g4.Size, g4.NumEdges())
	}
}

// TestFigure12 checks the UB(d,n) degree census of §1.2 [PR82]: d nodes of
// degree 2d−2, d(d−1) nodes of degree 2d−1, dⁿ − d² of degree 2d.
func TestFigure12(t *testing.T) {
	for _, tc := range []struct{ d, n int }{{2, 3}, {2, 4}, {3, 3}, {3, 4}, {4, 3}, {2, 5}} {
		g := New(tc.d, tc.n)
		census := map[int]int{}
		for x := 0; x < g.Size; x++ {
			census[g.UndirectedDegree(x)]++
		}
		d := tc.d
		want := map[int]int{}
		want[2*d-2] += d
		want[2*d-1] += d * (d - 1)
		want[2*d] += g.Size - d*d
		for deg, cnt := range want {
			if cnt == 0 {
				continue
			}
			if census[deg] != cnt {
				t.Errorf("UB(%d,%d): %d nodes of degree %d, want %d (census %v)",
					tc.d, tc.n, census[deg], deg, cnt, census)
			}
		}
	}
	// UB(2,3) concretely (Figure 1.2): 000 and 111 have degree 2.
	g := New(2, 3)
	if g.UndirectedDegree(parse(t, g, "000")) != 2 {
		t.Error("deg(000) in UB(2,3) should be 2")
	}
	if g.UndirectedDegree(parse(t, g, "010")) != 3 {
		t.Error("deg(010) in UB(2,3) should be 3")
	}
}

func TestIsCycle(t *testing.T) {
	g := New(3, 3)
	// [0,1,2,1,2] denotes the 5-cycle (012,121,212,120,201) (§3.1).
	nodes := g.NodesOfSequence([]int{0, 1, 2, 1, 2})
	want := []string{"012", "121", "212", "120", "201"}
	for i, w := range want {
		if g.String(nodes[i]) != w {
			t.Fatalf("node %d = %s, want %s", i, g.String(nodes[i]), w)
		}
	}
	if !g.IsCycle(nodes) {
		t.Error("(012,121,212,120,201) should be a cycle")
	}
	if !g.IsCycleSequence([]int{0, 1, 2, 1, 2}) {
		t.Error("[0,1,2,1,2] should denote a cycle")
	}
	// Repeated window ⇒ not a cycle.
	if g.IsCycleSequence([]int{0, 1, 2, 0, 1, 2}) {
		t.Error("[0,1,2,0,1,2] repeats windows; not a cycle")
	}
	// Wrong adjacency ⇒ not a cycle.
	if g.IsCycle([]int{0, 5}) {
		t.Error("arbitrary pair should not be a cycle")
	}
	if g.IsCycle(nil) {
		t.Error("empty sequence is not a cycle")
	}
	// Loop node: length-1 cycle.
	if !g.IsCycle([]int{g.Repeat(1)}) {
		t.Error("loop node should form a 1-cycle")
	}
	if g.IsCycle([]int{parse(t, g, "012")}) {
		t.Error("non-loop node is not a 1-cycle")
	}
	// Round trip sequence ↔ nodes.
	seq := g.SequenceOfNodes(nodes)
	for i, c := range []int{0, 1, 2, 1, 2} {
		if seq[i] != c {
			t.Fatalf("SequenceOfNodes = %v", seq)
		}
	}
}

func TestEdgeDisjoint(t *testing.T) {
	g := New(2, 3)
	c1 := g.NodesOfSequence([]int{0, 0, 1, 1, 1, 0, 1}) // maximal cycle
	if !g.IsCycle(c1) {
		t.Fatal("c1 should be a cycle")
	}
	c2 := g.NodesOfSequence([]int{1, 1, 0, 0, 0, 1, 0}) // its complement shift
	if !g.IsCycle(c2) {
		t.Fatal("c2 should be a cycle")
	}
	if !g.EdgeDisjoint(c1, c2) {
		t.Error("C and 1+C should be edge-disjoint")
	}
	if g.EdgeDisjoint(c1, c1) {
		t.Error("a cycle is not edge-disjoint from itself")
	}
}

func TestLineGraphCorrespondence(t *testing.T) {
	// The cycle (012,122,221,212,120,201) in B(3,3) corresponds to the
	// circuit (01,12,22,21,12,20) in B(3,2) (§2.5).
	g3 := New(3, 3)
	g2 := New(3, 2)
	cycle := g3.NodesOfSequence([]int{0, 1, 2, 2, 1, 2})
	wantCycle := []string{"012", "122", "221", "212", "120", "201"}
	for i, w := range wantCycle {
		if g3.String(cycle[i]) != w {
			t.Fatalf("cycle node %d = %s, want %s", i, g3.String(cycle[i]), w)
		}
	}
	if !g3.IsCycle(cycle) {
		t.Fatal("should be a cycle")
	}
	circuit := g3.CycleToCircuit(g2, cycle)
	wantCircuit := []string{"01", "12", "22", "21", "12", "20"}
	for i, w := range wantCircuit {
		if g2.String(circuit[i]) != w {
			t.Errorf("circuit node %d = %s, want %s", i, g2.String(circuit[i]), w)
		}
	}
	// Consecutive circuit nodes are adjacent in B(3,2), and the edges
	// (coded as 3-tuples) are exactly the cycle's nodes.
	for i := range circuit {
		j := (i + 1) % len(circuit)
		if !g2.IsEdge(circuit[i], circuit[j]) {
			t.Errorf("circuit step %d not an edge", i)
		}
		if g3.LineGraphNode(g2, circuit[i], circuit[j]) != cycle[i] {
			t.Errorf("line graph label mismatch at %d", i)
		}
	}
}

func TestLongestCycleFullGraph(t *testing.T) {
	// With no faults the longest cycle is Hamiltonian (De Bruijn's
	// theorem); check on B(2,3) and B(3,2).
	for _, tc := range []struct{ d, n int }{{2, 3}, {3, 2}} {
		g := New(tc.d, tc.n)
		c := g.LongestCycleAvoiding(nil)
		if len(c) != g.Size {
			t.Errorf("B(%d,%d): longest cycle %d, want %d", tc.d, tc.n, len(c), g.Size)
		}
		if !g.IsHamiltonian(c) {
			t.Errorf("B(%d,%d): result not Hamiltonian", tc.d, tc.n)
		}
	}
}

func TestPancyclicSmall(t *testing.T) {
	// B(d,n) is pancyclic [Lem71]: cycles of every length 1..dⁿ exist.
	g := New(2, 4)
	for k := 1; k <= g.Size; k++ {
		c := g.FindCycleOfLength(k, nil)
		if c == nil {
			t.Fatalf("B(2,4): no cycle of length %d found", k)
		}
		if len(c) != k || !g.IsCycle(c) {
			t.Fatalf("B(2,4): invalid cycle of length %d", k)
		}
	}
	if g.FindCycleOfLength(g.Size+1, nil) != nil {
		t.Error("cycle longer than the graph should not exist")
	}
}

func TestLongestCycleAvoidsFaults(t *testing.T) {
	g := New(3, 2)
	faults := map[int]bool{parse(t, g, "00"): true, parse(t, g, "12"): true}
	c := g.LongestCycleAvoiding(faults)
	if !g.IsCycle(c) {
		t.Fatal("result must be a cycle")
	}
	for _, x := range c {
		if faults[x] {
			t.Fatalf("cycle visits faulty node %s", g.String(x))
		}
	}
	if len(c) < g.Size-4 {
		t.Errorf("longest fault-free cycle too short: %d", len(c))
	}
}

func BenchmarkLongestCycleB23(b *testing.B) {
	g := New(2, 3)
	for i := 0; i < b.N; i++ {
		g.LongestCycleAvoiding(nil)
	}
}

// undirectedDegreeReference is the pre-rewrite map-based implementation,
// kept as the oracle for the arithmetic neighbor-merging version.
func undirectedDegreeReference(g *Graph, x int) int {
	neighbors := make(map[int]bool)
	var buf []int
	for _, y := range g.Successors(x, buf) {
		if y != x {
			neighbors[y] = true
		}
	}
	buf = g.Predecessors(x, nil)
	for _, y := range buf {
		if y != x {
			neighbors[y] = true
		}
	}
	return len(neighbors)
}

func TestUndirectedDegreeMatchesReference(t *testing.T) {
	for _, tc := range []struct{ d, n int }{{2, 1}, {3, 1}, {2, 2}, {2, 6}, {3, 4}, {4, 3}, {5, 2}, {7, 2}} {
		g := New(tc.d, tc.n)
		for x := 0; x < g.Size; x++ {
			if got, want := g.UndirectedDegree(x), undirectedDegreeReference(g, x); got != want {
				t.Fatalf("B(%d,%d): UndirectedDegree(%s) = %d, want %d", tc.d, tc.n, g.String(x), got, want)
			}
		}
	}
}

func TestUndirectedDegreeAllocFree(t *testing.T) {
	g := New(4, 5)
	allocs := testing.AllocsPerRun(100, func() {
		for x := 0; x < 64; x++ {
			g.UndirectedDegree(x)
		}
	})
	if allocs != 0 {
		t.Errorf("UndirectedDegree allocates %.1f times per census pass, want 0", allocs)
	}
}
