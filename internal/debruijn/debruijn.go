// Package debruijn models the d-ary De Bruijn digraph B(d,n) and its
// undirected companion UB(d,n), together with the cycle/sequence duality of
// §3.1 and the validators used throughout the reproduction: cycle checks,
// Hamiltonicity, edge-disjointness, and exhaustive longest-cycle search on
// small instances (used to certify the worst-case optimality argument of
// §2.5).
package debruijn

import (
	"fmt"

	"debruijnring/internal/word"
)

// Graph is the d-ary De Bruijn digraph B(d,n).  Nodes are the integer-coded
// n-tuples of the embedded word.Space; the edge x₁…xₙ → x₂…xₙα exists for
// every α (nodes αⁿ carry loops).  Graph is immutable and safe for
// concurrent use.
type Graph struct {
	*word.Space
}

// New returns B(d,n).
func New(d, n int) *Graph { return &Graph{Space: word.New(d, n)} }

// Successors appends the d successors of x to dst (including the loop when
// x = αⁿ) and returns the slice.
func (g *Graph) Successors(x int, dst []int) []int {
	dst = dst[:0]
	base := g.Suffix(x) * g.D
	for a := 0; a < g.D; a++ {
		dst = append(dst, base+a)
	}
	return dst
}

// Predecessors appends the d predecessors of x to dst.
func (g *Graph) Predecessors(x int, dst []int) []int {
	dst = dst[:0]
	pre := x / g.D
	for a := 0; a < g.D; a++ {
		dst = append(dst, a*g.Pow(g.N-1)+pre)
	}
	return dst
}

// HasLoop reports whether x has a self-loop (x = αⁿ).
func (g *Graph) HasLoop(x int) bool { return g.Successor(x, x%g.D) == x }

// NumEdges returns the number of edges of B(d,n) including loops: d·dⁿ.
func (g *Graph) NumEdges() int { return g.D * g.Size }

// UndirectedDegree returns the degree of x in UB(d,n), the graph obtained
// by deleting loops, dropping orientation and merging parallel edges
// (§1.2).  UB(d,n) has d nodes of degree 2d−2, d(d−1) of degree 2d−1 and
// dⁿ − d² of degree 2d [PR82].
// Both neighbor families are arithmetic progressions — successors fill
// [suffix·d, suffix·d + d), predecessors are pre + a·dⁿ⁻¹ — so merged
// neighbors can be counted without materializing a set: count successors
// ≠ x, then predecessors that are neither x nor inside the successor
// range.
func (g *Graph) UndirectedDegree(x int) int {
	d := g.D
	base := g.Suffix(x) * d // successors are base, …, base+d−1
	pivot := g.Pow(g.N - 1)
	pre := x / d
	deg := 0
	for a := 0; a < d; a++ {
		if base+a != x {
			deg++
		}
	}
	for a := 0; a < d; a++ {
		y := a*pivot + pre
		if y == x || (y >= base && y < base+d) {
			continue
		}
		deg++
	}
	return deg
}

// IsCycle reports whether seq is a cycle of B(d,n): nonempty, all nodes
// distinct, each consecutive pair (and the wrap-around pair) an edge.
// Length-1 sequences are cycles only at loop nodes αⁿ.
func (g *Graph) IsCycle(seq []int) bool {
	k := len(seq)
	if k == 0 {
		return false
	}
	seen := make(map[int]bool, k)
	for i, x := range seq {
		if x < 0 || x >= g.Size || seen[x] {
			return false
		}
		seen[x] = true
		if !g.IsEdge(x, seq[(i+1)%k]) {
			return false
		}
	}
	return true
}

// IsHamiltonian reports whether seq is a Hamiltonian cycle of B(d,n).
func (g *Graph) IsHamiltonian(seq []int) bool {
	return len(seq) == g.Size && g.IsCycle(seq)
}

// CycleEdges returns the edge codes ((n+1)-tuples) of the cycle seq.
func (g *Graph) CycleEdges(seq []int) []int {
	k := len(seq)
	edges := make([]int, k)
	for i, x := range seq {
		edges[i] = g.Edge(x, seq[(i+1)%k])
	}
	return edges
}

// EdgeDisjoint reports whether the given cycles are pairwise edge-disjoint
// (§3.1: their (n+1)-tuple sets are disjoint).
func (g *Graph) EdgeDisjoint(cycles ...[]int) bool {
	seen := make(map[int]bool)
	for _, c := range cycles {
		for _, e := range g.CycleEdges(c) {
			if seen[e] {
				return false
			}
			seen[e] = true
		}
	}
	return true
}

// NodesOfSequence converts a circular d-ary sequence C = [c₀, …, c_{k−1}]
// into the closed walk of B(d,n) it denotes (§3.1): the i'th node is
// c_i c_{i+1} … c_{i+n−1} with subscripts mod k.
func (g *Graph) NodesOfSequence(seq []int) []int {
	k := len(seq)
	if k == 0 {
		return nil
	}
	nodes := make([]int, k)
	for i := 0; i < k; i++ {
		x := 0
		for j := 0; j < g.N; j++ {
			x = x*g.D + seq[(i+j)%k]
		}
		nodes[i] = x
	}
	return nodes
}

// SequenceOfNodes converts a cycle (node sequence) back to its circular
// digit sequence: the i'th digit is the first digit of the i'th node.
func (g *Graph) SequenceOfNodes(nodes []int) []int {
	seq := make([]int, len(nodes))
	for i, x := range nodes {
		seq[i] = g.Digit(x, 1)
	}
	return seq
}

// IsCycleSequence reports whether the circular sequence denotes a cycle,
// i.e. all its length-n windows are distinct (§3.1).
func (g *Graph) IsCycleSequence(seq []int) bool {
	return g.IsCycle(g.NodesOfSequence(seq))
}

// LineGraphNode maps the edge (x, y) of B(d,n−1) to its node in B(d,n):
// B(d,n) is the line graph of B(d,n−1), the edge from x₁…x_{n−1} to
// x₂…xₙ being labeled x₁…xₙ (§2.5).  The receiver must be B(d,n); prev is
// B(d,n−1).
func (g *Graph) LineGraphNode(prev *Graph, x, y int) int {
	if prev.D != g.D || prev.N != g.N-1 {
		panic("debruijn: LineGraphNode wants prev = B(d,n−1)")
	}
	return prev.Edge(x, y)
}

// CycleToCircuit maps a cycle of B(d,n) to the corresponding closed circuit
// of B(d,n−1) (the line-graph correspondence of §2.5).  The returned slice
// lists the circuit's nodes; edges may repeat nodes but not edges.
func (g *Graph) CycleToCircuit(prev *Graph, cycle []int) []int {
	out := make([]int, len(cycle))
	for i, x := range cycle {
		out[i] = x / g.D // leading n−1 digits
	}
	_ = prev
	return out
}

// reachable reports which allowed nodes can be reached from x along
// directed edges through allowed nodes.
func (g *Graph) reachable(x int, allowed func(int) bool) map[int]bool {
	seen := map[int]bool{x: true}
	stack := []int{x}
	var buf []int
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		buf = g.Successors(v, buf)
		for _, w := range buf {
			if !seen[w] && allowed(w) {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return seen
}

// LongestCycleAvoiding exhaustively searches for a longest cycle of B(d,n)
// that avoids the given fault set.  It is exponential-time and intended for
// the small certification instances of §2.5 only; it panics when the graph
// has more than maxSearchNodes nodes.
func (g *Graph) LongestCycleAvoiding(faults map[int]bool) []int {
	const maxSearchNodes = 80
	if g.Size > maxSearchNodes {
		panic(fmt.Sprintf("debruijn: exhaustive search limited to %d nodes, got %d", maxSearchNodes, g.Size))
	}
	var best []int
	onPath := make([]bool, g.Size)
	path := make([]int, 0, g.Size)

	// The start node is allowed as a target so the reachability prune can
	// tell whether the current path can still close into a cycle.
	allowedFrom := func(start int) func(int) bool {
		return func(v int) bool {
			return !faults[v] && v >= start && (v == start || !onPath[v])
		}
	}

	var dfs func(start, v int)
	dfs = func(start, v int) {
		// Close the cycle if possible and record.
		if len(path) > len(best) && g.IsEdge(v, start) {
			best = append(best[:0], path...)
		}
		// Prune: even taking every remaining allowed node cannot beat best.
		reach := g.reachable(v, allowedFrom(start))
		if !reach[start] && !g.IsEdge(v, start) {
			return
		}
		remaining := 0
		for w := range reach {
			if !onPath[w] {
				remaining++
			}
		}
		if len(path)+remaining <= len(best) {
			return
		}
		var buf [64]int
		succ := g.Successors(v, buf[:0])
		for _, w := range succ {
			if w == v || faults[w] || onPath[w] || w < start {
				continue
			}
			onPath[w] = true
			path = append(path, w)
			dfs(start, w)
			path = path[:len(path)-1]
			onPath[w] = false
		}
	}

	// Canonical enumeration: every cycle is found from its minimal node.
	for start := 0; start < g.Size; start++ {
		if faults[start] {
			continue
		}
		onPath[start] = true
		path = append(path[:0], start)
		dfs(start, start)
		onPath[start] = false
	}
	return best
}

// FindCycleOfLength searches for a cycle of exactly length k avoiding
// faults, returning nil if none exists.  Same scale limits as
// LongestCycleAvoiding.  Used to verify pancyclicity [Lem71] on small
// instances.
func (g *Graph) FindCycleOfLength(k int, faults map[int]bool) []int {
	const maxSearchNodes = 80
	if g.Size > maxSearchNodes {
		panic("debruijn: exhaustive search limited to small graphs")
	}
	if k < 1 || k > g.Size {
		return nil
	}
	onPath := make([]bool, g.Size)
	path := make([]int, 0, k)
	var found []int

	var dfs func(start, v int) bool
	dfs = func(start, v int) bool {
		if len(path) == k {
			if g.IsEdge(v, start) {
				found = append([]int(nil), path...)
				return true
			}
			return false
		}
		var buf [64]int
		for _, w := range g.Successors(v, buf[:0]) {
			if w == v || faults[w] || onPath[w] || w < start {
				continue
			}
			onPath[w] = true
			path = append(path, w)
			if dfs(start, w) {
				return true
			}
			path = path[:len(path)-1]
			onPath[w] = false
		}
		return false
	}

	for start := 0; start < g.Size; start++ {
		if faults[start] {
			continue
		}
		if k == 1 {
			if g.HasLoop(start) {
				return []int{start}
			}
			continue
		}
		onPath[start] = true
		path = append(path[:0], start)
		if dfs(start, start) {
			return found
		}
		onPath[start] = false
	}
	return nil
}
