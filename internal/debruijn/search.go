package debruijn

import "fmt"

// This file holds the exhaustive search primitives used to certify
// optimality claims (§2.5) and to probe the open questions of Chapter 5 on
// small instances: Hamiltonian cycle search under forbidden edges,
// enumeration of all Hamiltonian cycles, and the undirected (UB) variants.

const maxSearchNodes = 80

// FindHamiltonianAvoidingEdges searches for a Hamiltonian cycle of B(d,n)
// that uses none of the forbidden edges (edge codes as produced by Edge).
// Returns nil when none exists.  Exhaustive; graphs are limited to
// maxSearchNodes nodes.
func (g *Graph) FindHamiltonianAvoidingEdges(badEdges map[int]bool) []int {
	if g.Size > maxSearchNodes {
		panic(fmt.Sprintf("debruijn: exhaustive search limited to %d nodes", maxSearchNodes))
	}
	onPath := make([]bool, g.Size)
	path := make([]int, 0, g.Size)
	var found []int

	allowed := func(x, y int) bool { return !badEdges[g.Edge(x, y)] }

	var dfs func(v int) bool
	dfs = func(v int) bool {
		if len(path) == g.Size {
			if g.IsEdge(v, path[0]) && allowed(v, path[0]) {
				found = append([]int(nil), path...)
				return true
			}
			return false
		}
		var buf [64]int
		for _, w := range g.Successors(v, buf[:0]) {
			if w == v || onPath[w] || !allowed(v, w) {
				continue
			}
			onPath[w] = true
			path = append(path, w)
			if dfs(w) {
				return true
			}
			path = path[:len(path)-1]
			onPath[w] = false
		}
		return false
	}

	onPath[0] = true
	path = append(path, 0)
	if dfs(0) {
		return found
	}
	return nil
}

// AllHamiltonianCycles enumerates every Hamiltonian cycle of B(d,n), each
// reported once as a node sequence starting at node 0.  limit > 0 caps the
// enumeration.  Exhaustive; small graphs only.  (The count for B(d,n) is
// the classical (d!)^(dⁿ⁻¹)/dⁿ De Bruijn sequence count.)
func (g *Graph) AllHamiltonianCycles(limit int) [][]int {
	if g.Size > maxSearchNodes {
		panic("debruijn: exhaustive search limited to small graphs")
	}
	onPath := make([]bool, g.Size)
	path := make([]int, 0, g.Size)
	var out [][]int

	var dfs func(v int) bool
	dfs = func(v int) bool {
		if len(path) == g.Size {
			if g.IsEdge(v, path[0]) {
				out = append(out, append([]int(nil), path...))
				if limit > 0 && len(out) >= limit {
					return true
				}
			}
			return false
		}
		var buf [64]int
		for _, w := range g.Successors(v, buf[:0]) {
			if w == v || onPath[w] {
				continue
			}
			onPath[w] = true
			path = append(path, w)
			if dfs(w) {
				return true
			}
			path = path[:len(path)-1]
			onPath[w] = false
		}
		return false
	}

	onPath[0] = true
	path = append(path, 0)
	dfs(0)
	return out
}

// UndirectedNeighbors appends the UB(d,n) neighbours of x (loops removed,
// orientation dropped, parallels merged) and returns the slice.
func (g *Graph) UndirectedNeighbors(x int, dst []int) []int {
	dst = dst[:0]
	var buf [64]int
	seen := map[int]bool{x: true}
	for _, y := range g.Successors(x, buf[:0]) {
		if !seen[y] {
			seen[y] = true
			dst = append(dst, y)
		}
	}
	for _, y := range g.Predecessors(x, buf[:0]) {
		if !seen[y] {
			seen[y] = true
			dst = append(dst, y)
		}
	}
	return dst
}

// IsUndirectedCycle reports whether seq is a cycle of UB(d,n): distinct
// nodes, consecutive pairs adjacent in either direction, length ≥ 3 (UB is
// a simple graph).
func (g *Graph) IsUndirectedCycle(seq []int) bool {
	if len(seq) < 3 {
		return false
	}
	seen := make(map[int]bool, len(seq))
	for i, x := range seq {
		if x < 0 || x >= g.Size || seen[x] {
			return false
		}
		seen[x] = true
		y := seq[(i+1)%len(seq)]
		if x == y || (!g.IsEdge(x, y) && !g.IsEdge(y, x)) {
			return false
		}
	}
	return true
}

// LongestUndirectedCycleAvoiding exhaustively finds a longest cycle of
// UB(d,n) avoiding the given faulty nodes.  Small graphs only.
func (g *Graph) LongestUndirectedCycleAvoiding(faults map[int]bool) []int {
	if g.Size > maxSearchNodes {
		panic("debruijn: exhaustive search limited to small graphs")
	}
	var best []int
	onPath := make([]bool, g.Size)
	path := make([]int, 0, g.Size)

	adjacent := func(x, y int) bool { return g.IsEdge(x, y) || g.IsEdge(y, x) }

	var dfs func(start, v int)
	dfs = func(start, v int) {
		if len(path) >= 3 && adjacent(v, start) && len(path) > len(best) {
			best = append(best[:0], path...)
		}
		if len(path)+remainingUpper(g, start, v, onPath, faults) <= len(best) {
			return
		}
		var buf []int
		for _, w := range g.UndirectedNeighbors(v, buf) {
			if w < start || onPath[w] || faults[w] {
				continue
			}
			onPath[w] = true
			path = append(path, w)
			dfs(start, w)
			path = path[:len(path)-1]
			onPath[w] = false
		}
	}

	for start := 0; start < g.Size; start++ {
		if faults[start] {
			continue
		}
		onPath[start] = true
		path = append(path[:0], start)
		dfs(start, start)
		onPath[start] = false
	}
	return best
}

// remainingUpper bounds how many more nodes the current undirected path
// can still collect: the nodes reachable (undirected) from v through
// unvisited, allowed nodes ≥ start.
func remainingUpper(g *Graph, start, v int, onPath []bool, faults map[int]bool) int {
	seen := map[int]bool{v: true}
	stack := []int{v}
	count := 0
	var buf []int
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.UndirectedNeighbors(u, buf) {
			if seen[w] || w < start || faults[w] {
				continue
			}
			seen[w] = true
			if !onPath[w] {
				count++
				stack = append(stack, w)
			}
		}
	}
	return count
}

// FindUndirectedHamiltonianAvoidingEdges searches for a Hamiltonian cycle
// of UB(d,n) avoiding the given undirected edges (each coded as an ordered
// pair {min, max}).  Small graphs only; returns nil if none exists.
func (g *Graph) FindUndirectedHamiltonianAvoidingEdges(bad map[[2]int]bool) []int {
	if g.Size > maxSearchNodes {
		panic("debruijn: exhaustive search limited to small graphs")
	}
	norm := func(x, y int) [2]int {
		if x > y {
			x, y = y, x
		}
		return [2]int{x, y}
	}
	onPath := make([]bool, g.Size)
	path := make([]int, 0, g.Size)
	var found []int

	var dfs func(v int) bool
	dfs = func(v int) bool {
		if len(path) == g.Size {
			if (g.IsEdge(v, path[0]) || g.IsEdge(path[0], v)) && !bad[norm(v, path[0])] {
				found = append([]int(nil), path...)
				return true
			}
			return false
		}
		var buf []int
		for _, w := range g.UndirectedNeighbors(v, buf) {
			if onPath[w] || bad[norm(v, w)] {
				continue
			}
			onPath[w] = true
			path = append(path, w)
			if dfs(w) {
				return true
			}
			path = path[:len(path)-1]
			onPath[w] = false
		}
		return false
	}

	onPath[0] = true
	path = append(path, 0)
	if dfs(0) {
		return found
	}
	return nil
}
