package debruijn

import "testing"

func TestFindHamiltonianAvoidingEdges(t *testing.T) {
	g := New(2, 3)
	// Without restrictions an HC exists.
	hc := g.FindHamiltonianAvoidingEdges(nil)
	if !g.IsHamiltonian(hc) {
		t.Fatal("unrestricted search should find an HC")
	}
	// Forbid one of its edges; another HC must route around it (B(2,3)
	// tolerates 0 = d−2 edge faults in general, but this particular edge
	// happens to be avoidable or not — just verify consistency).
	e := g.Edge(hc[0], hc[1])
	alt := g.FindHamiltonianAvoidingEdges(map[int]bool{e: true})
	if alt != nil {
		if !g.IsHamiltonian(alt) {
			t.Fatal("result must be an HC")
		}
		for i, x := range alt {
			if g.Edge(x, alt[(i+1)%len(alt)]) == e {
				t.Fatal("HC uses the forbidden edge")
			}
		}
	}
	// Forbidding all edges out of node 001 makes an HC impossible.
	bad := map[int]bool{}
	x, _ := g.Parse("001")
	for _, y := range g.Successors(x, nil) {
		bad[g.Edge(x, y)] = true
	}
	if got := g.FindHamiltonianAvoidingEdges(bad); got != nil {
		t.Error("HC should not exist when a node has no outgoing edges")
	}
}

func TestAllHamiltonianCycles(t *testing.T) {
	// The number of Hamiltonian cycles of B(d,n) equals the De Bruijn
	// sequence count (d!)^(dⁿ⁻¹)/dⁿ: 2 for B(2,3), 16 for B(2,4),
	// 24 for B(3,2).
	cases := []struct{ d, n, want int }{
		{2, 3, 2}, {2, 4, 16}, {3, 2, 24},
	}
	for _, tc := range cases {
		g := New(tc.d, tc.n)
		all := g.AllHamiltonianCycles(0)
		if len(all) != tc.want {
			t.Errorf("B(%d,%d): %d Hamiltonian cycles, want %d", tc.d, tc.n, len(all), tc.want)
		}
		for _, hc := range all {
			if !g.IsHamiltonian(hc) {
				t.Fatalf("B(%d,%d): invalid HC in enumeration", tc.d, tc.n)
			}
			if hc[0] != 0 {
				t.Fatalf("HCs must be canonicalized to start at 0")
			}
		}
	}
	// The limit parameter caps the enumeration.
	g := New(3, 2)
	if got := g.AllHamiltonianCycles(5); len(got) != 5 {
		t.Errorf("limit ignored: got %d", len(got))
	}
}

func TestUndirectedNeighbors(t *testing.T) {
	g := New(2, 3)
	x, _ := g.Parse("010")
	nb := g.UndirectedNeighbors(x, nil)
	if len(nb) != 3 {
		t.Errorf("UB neighbours of 010: %v", nb)
	}
	// Matches the degree census everywhere.
	for v := 0; v < g.Size; v++ {
		if len(g.UndirectedNeighbors(v, nil)) != g.UndirectedDegree(v) {
			t.Fatalf("neighbour list and degree disagree at %s", g.String(v))
		}
	}
}

func TestIsUndirectedCycle(t *testing.T) {
	g := New(2, 3)
	// 010 – 101 – 011 – 110 – 010? 110→010? no; build a known UB cycle:
	// 000 – 001 – 010 – 100 – 000 (using both edge directions).
	seq := make([]int, 4)
	for i, s := range []string{"001", "010", "100", "000"} {
		seq[i], _ = g.Parse(s)
	}
	if !g.IsUndirectedCycle(seq) {
		t.Error("001-010-100-000 should be a UB cycle")
	}
	if g.IsUndirectedCycle(seq[:2]) {
		t.Error("length-2 sequences are not UB cycles")
	}
	if g.IsUndirectedCycle([]int{0, 1, 0, 1}) {
		t.Error("repeated nodes are not a cycle")
	}
}

func TestLongestUndirectedCycle(t *testing.T) {
	g := New(2, 3)
	c := g.LongestUndirectedCycleAvoiding(nil)
	// UB(2,3) is Hamiltonian.
	if len(c) != g.Size {
		t.Errorf("longest UB(2,3) cycle %d, want %d", len(c), g.Size)
	}
	if !g.IsUndirectedCycle(c) {
		t.Error("invalid cycle")
	}
	// With a fault, the cycle shrinks but stays valid.
	x, _ := g.Parse("001")
	c = g.LongestUndirectedCycleAvoiding(map[int]bool{x: true})
	if !g.IsUndirectedCycle(c) {
		t.Error("invalid faulty cycle")
	}
	for _, v := range c {
		if v == x {
			t.Error("cycle visits the fault")
		}
	}
}

func TestFindUndirectedHamiltonianAvoidingEdges(t *testing.T) {
	g := New(3, 2)
	hc := g.FindUndirectedHamiltonianAvoidingEdges(nil)
	if len(hc) != g.Size || !g.IsUndirectedCycle(hc) {
		t.Fatal("UB(3,2) should be Hamiltonian")
	}
	// Forbid two of its edges; UB(3,2) has enough slack to reroute.
	bad := map[[2]int]bool{}
	for i := 0; i < 2; i++ {
		a, b := hc[i], hc[i+1]
		if a > b {
			a, b = b, a
		}
		bad[[2]int{a, b}] = true
	}
	alt := g.FindUndirectedHamiltonianAvoidingEdges(bad)
	if alt == nil {
		t.Fatal("rerouted UB HC should exist")
	}
	for i, x := range alt {
		y := alt[(i+1)%len(alt)]
		a, b := x, y
		if a > b {
			a, b = b, a
		}
		if bad[[2]int{a, b}] {
			t.Fatal("HC uses forbidden edge")
		}
	}
}
