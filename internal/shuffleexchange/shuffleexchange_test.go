package shuffleexchange

import (
	"math/big"
	"testing"

	"debruijnring/internal/debruijn"
	"debruijnring/internal/necklace"
	"debruijnring/internal/word"
)

func TestNeighborsAndEdges(t *testing.T) {
	g := New(2, 3)
	x, _ := g.Parse("010")
	// Shuffle: 100; unshuffle: 001; exchange: 011.
	if g.String(g.Shuffle(x)) != "100" || g.String(g.Unshuffle(x)) != "001" {
		t.Errorf("shuffle/unshuffle of 010: %s, %s", g.String(g.Shuffle(x)), g.String(g.Unshuffle(x)))
	}
	ex := g.Exchanges(x, nil)
	if len(ex) != 1 || g.String(ex[0]) != "011" {
		t.Errorf("exchanges of 010: %v", ex)
	}
	nb := g.Neighbors(x, nil)
	if len(nb) != 3 {
		t.Errorf("neighbours of 010: %v", nb)
	}
	for _, y := range nb {
		if !g.IsEdge(x, y) || !g.IsEdge(y, x) {
			t.Errorf("edge {%s,%s} not symmetric", g.String(x), g.String(y))
		}
	}
	if g.IsEdge(x, x) {
		t.Error("no self edges")
	}
	// Constant words lose both rotation edges (self-loops removed),
	// keeping only their exchange neighbour(s).
	zero := g.Repeat(0)
	nb = g.Neighbors(zero, nil)
	if len(nb) != 1 || g.String(nb[0]) != "001" {
		t.Errorf("neighbours of 000: %v (want just the exchange 001)", nb)
	}
}

// TestShuffleOrbitsAreNecklaces: the shuffle-only subgraph decomposes into
// exactly the necklaces of Chapter 4, and the orbit count matches the
// closed-form total.
func TestShuffleOrbitsAreNecklaces(t *testing.T) {
	for _, tc := range []struct{ d, n int }{{2, 6}, {2, 12}, {3, 4}, {4, 3}} {
		g := New(tc.d, tc.n)
		orbits := g.ShuffleOrbits()
		want := necklace.CountAll(tc.d, tc.n)
		if big.NewInt(int64(len(orbits))).Cmp(want) != 0 {
			t.Errorf("SE(%d,%d): %d shuffle orbits, formula gives %v", tc.d, tc.n, len(orbits), want)
		}
		covered := 0
		for rep, nodes := range orbits {
			covered += len(nodes)
			for _, x := range nodes {
				if g.NecklaceRep(x) != rep {
					t.Fatalf("orbit of %s misassigned", g.String(x))
				}
			}
			// Consecutive orbit members are shuffle neighbours.
			for i, x := range nodes {
				if g.Shuffle(x) != nodes[(i+1)%len(nodes)] {
					t.Fatalf("orbit of [%s] is not a shuffle cycle", g.String(rep))
				}
			}
		}
		if covered != g.Size {
			t.Errorf("SE(%d,%d): orbits cover %d of %d nodes", tc.d, tc.n, covered, g.Size)
		}
	}
}

// TestAsymptoticNecklaceDensity checks the [PI92]-flavoured asymptotics the
// chapter mentions: the necklace count approaches dⁿ/n as n grows (full-
// length necklaces dominate).
func TestAsymptoticNecklaceDensity(t *testing.T) {
	for _, n := range []int{8, 12, 16, 20} {
		s := word.New(2, n)
		count := necklace.CountAll(2, n)
		ideal := new(big.Int).Div(big.NewInt(int64(s.Size)), big.NewInt(int64(n)))
		ratio := new(big.Float).Quo(new(big.Float).SetInt(count), new(big.Float).SetInt(ideal))
		r, _ := ratio.Float64()
		if r < 1.0 || r > 1.2 {
			t.Errorf("n=%d: necklace count / (2ⁿ/n) = %.4f, want → 1⁺", n, r)
		}
	}
}

func TestEmulateDeBruijnEdge(t *testing.T) {
	g := New(3, 3)
	db := debruijn.New(3, 3)
	var buf []int
	for x := 0; x < db.Size; x++ {
		buf = db.Successors(x, buf)
		for _, y := range buf {
			if x == y {
				continue
			}
			path, err := g.EmulateDeBruijnEdge(x, y)
			if err != nil {
				t.Fatalf("edge (%s,%s): %v", db.String(x), db.String(y), err)
			}
			if len(path) > 3 || path[0] != x || path[len(path)-1] != y {
				t.Fatalf("bad emulation path %v", path)
			}
			for i := 0; i+1 < len(path); i++ {
				if !g.IsEdge(path[i], path[i+1]) {
					t.Fatalf("emulation step (%s,%s) is not an SE edge",
						g.String(path[i]), g.String(path[i+1]))
				}
			}
		}
	}
	// Non-De-Bruijn pairs are rejected.
	if _, err := g.EmulateDeBruijnEdge(0, 8); err == nil {
		t.Error("non-edge should be rejected")
	}
}

// TestEmbedRingFaultFree: the FFC ring transfers to SE(d,n) with dilation
// ≤ 2, congestion 1 per directed channel, and no faulty necklace touched —
// including by the intermediate nodes.
func TestEmbedRingFaultFree(t *testing.T) {
	for _, tc := range []struct {
		d, n   int
		faults []string
	}{
		{3, 3, []string{"020", "112"}},
		{4, 3, []string{"013", "231"}},
		{5, 2, []string{"04", "13", "22"}},
	} {
		db := debruijn.New(tc.d, tc.n)
		var faults []int
		for _, s := range tc.faults {
			x, err := db.Parse(s)
			if err != nil {
				t.Fatal(err)
			}
			faults = append(faults, x)
		}
		emb, err := EmbedRing(tc.d, tc.n, faults)
		if err != nil {
			t.Fatalf("SE(%d,%d): %v", tc.d, tc.n, err)
		}
		g := New(tc.d, tc.n)
		if emb.Dilation() > 2 {
			t.Errorf("dilation %d > 2", emb.Dilation())
		}
		if len(emb.Walk) > 2*len(emb.Ring) {
			t.Errorf("walk length %d exceeds 2×ring %d", len(emb.Walk), 2*len(emb.Ring))
		}
		// Walk validity and fault avoidance (whole faulty necklaces).
		bad := map[int]bool{}
		for _, f := range faults {
			bad[db.NecklaceRep(f)] = true
		}
		k := len(emb.Walk)
		channelUse := map[[2]int]int{} // directed
		wireUse := map[[2]int]int{}    // undirected
		for i, x := range emb.Walk {
			y := emb.Walk[(i+1)%k]
			if !g.IsEdge(x, y) {
				t.Fatalf("walk step (%s,%s) is not an SE edge", g.String(x), g.String(y))
			}
			if bad[db.NecklaceRep(x)] {
				t.Fatalf("walk visits faulty necklace node %s", g.String(x))
			}
			channelUse[[2]int{x, y}]++
			a, b := x, y
			if a > b {
				a, b = b, a
			}
			wireUse[[2]int{a, b}]++
		}
		for e, uses := range channelUse {
			if uses > 1 {
				t.Errorf("directed SE channel %v carries %d ring edges (congestion > 1)", e, uses)
			}
		}
		for e, uses := range wireUse {
			if uses > 2 {
				t.Errorf("undirected SE wire %v carries %d ring edges (> 2)", e, uses)
			}
		}
	}
}

func BenchmarkEmbedRingSE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := EmbedRing(4, 4, []int{7, 99}); err != nil {
			b.Fatal(err)
		}
	}
}
