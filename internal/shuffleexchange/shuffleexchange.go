// Package shuffleexchange models the d-ary shuffle-exchange network
// SE(d,n), the second graph family whose necklace structure Chapter 4 of
// Rowley–Bose studies (after [LMR88], [Lei83], [LHC89], [PI92] and the
// authors' own [RB90]).
//
// SE(d,n) has the dⁿ nodes of B(d,n); a node x₁…xₙ is joined by
//
//   - a shuffle edge to its left rotation x₂…xₙx₁ (and, undirected, to its
//     right rotation), and
//   - exchange edges to the d−1 nodes differing from it in the last digit.
//
// The shuffle edges alone decompose SE(d,n) into exactly the necklaces of
// Chapter 4 — that identification is what makes the counting formulas
// matter for shuffle-exchange layouts and routing.  Moreover every De
// Bruijn edge factors as a shuffle followed by an exchange, so any ring
// embedded in B(d,n) — in particular the fault-free FFC ring of Chapter 2 —
// transfers to SE(d,n) with dilation 2 and congestion 1 per directed
// channel (an undirected wire, carrying one channel each way, sees at most
// one ring edge per direction).  The transfer preserves fault-freedom
// because the inserted intermediate node is always a rotation
// (necklace-mate) of a ring node.
package shuffleexchange

import (
	"fmt"

	"debruijnring/internal/debruijn"
	"debruijnring/internal/ffc"
	"debruijnring/internal/word"
)

// Graph is the d-ary shuffle-exchange network SE(d,n).
type Graph struct {
	*word.Space
}

// New returns SE(d,n).
func New(d, n int) *Graph { return &Graph{Space: word.New(d, n)} }

// Shuffle returns the shuffle neighbour: the left rotation.
func (g *Graph) Shuffle(x int) int { return g.RotL(x) }

// Unshuffle returns the inverse-shuffle neighbour: the right rotation.
func (g *Graph) Unshuffle(x int) int { return g.RotLBy(x, -1) }

// Exchanges appends the d−1 exchange neighbours (last digit changed).
func (g *Graph) Exchanges(x int, dst []int) []int {
	dst = dst[:0]
	last := x % g.D
	base := x - last
	for a := 0; a < g.D; a++ {
		if a != last {
			dst = append(dst, base+a)
		}
	}
	return dst
}

// Neighbors appends all distinct SE neighbours of x (shuffle, unshuffle,
// exchanges; self-adjacencies from constant words removed).
func (g *Graph) Neighbors(x int, dst []int) []int {
	dst = dst[:0]
	seen := map[int]bool{x: true}
	for _, y := range []int{g.Shuffle(x), g.Unshuffle(x)} {
		if !seen[y] {
			seen[y] = true
			dst = append(dst, y)
		}
	}
	var buf [64]int
	for _, y := range g.Exchanges(x, buf[:0]) {
		if !seen[y] {
			seen[y] = true
			dst = append(dst, y)
		}
	}
	return dst
}

// IsEdge reports whether {x, y} is an SE edge (undirected).
func (g *Graph) IsEdge(x, y int) bool {
	if x == y {
		return false
	}
	return g.Shuffle(x) == y || g.Unshuffle(x) == y || g.Prefix(x) == g.Prefix(y)
}

// ShuffleOrbits returns the connected components of the shuffle-only
// subgraph: exactly the necklaces of B(d,n), keyed by representative.
func (g *Graph) ShuffleOrbits() map[int][]int {
	orbits := make(map[int][]int)
	for x := 0; x < g.Size; x++ {
		if g.NecklaceRep(x) == x {
			orbits[x] = g.NecklaceNodes(x, nil)
		}
	}
	return orbits
}

// EmulateDeBruijnEdge returns the SE path realizing the De Bruijn edge
// x → y = x₂…xₙα: the shuffle step to x₂…xₙx₁ followed, when α ≠ x₁, by
// one exchange step.  The path has length 1 or 2.
func (g *Graph) EmulateDeBruijnEdge(x, y int) ([]int, error) {
	mid := g.Shuffle(x)
	if mid == y {
		return []int{x, y}, nil
	}
	if mid == x {
		// x is a constant word αⁿ: its shuffle is a self-loop, but its De
		// Bruijn successors α^{n−1}β are direct exchange neighbours.
		if g.Prefix(x) == g.Prefix(y) && x != y {
			return []int{x, y}, nil
		}
		return nil, fmt.Errorf("shuffleexchange: (%s,%s) is not a De Bruijn edge", g.String(x), g.String(y))
	}
	if g.Prefix(mid) != g.Prefix(y) {
		return nil, fmt.Errorf("shuffleexchange: (%s,%s) is not a De Bruijn edge", g.String(x), g.String(y))
	}
	return []int{x, mid, y}, nil
}

// Embedding is a ring embedded in SE(d,n) with dilation ≤ 2: Walk lists
// the SE nodes visited in order (ring nodes plus at most one intermediate
// per ring edge); Ring gives the underlying De Bruijn ring.
type Embedding struct {
	Ring []int
	Walk []int
}

// Dilation returns the longest SE path realizing one ring edge (1 or 2).
func (e *Embedding) Dilation() int {
	if len(e.Walk) > len(e.Ring) {
		return 2
	}
	return 1
}

// EmbedRing embeds a fault-free ring in SE(d,n) under node faults: the FFC
// ring of Chapter 2 transferred edge-by-edge through the shuffle-exchange
// factorization.  Every intermediate node is a rotation of a ring node and
// hence lies on a nonfaulty necklace, so the walk never touches a faulty
// processor; each directed SE channel carries at most one ring edge
// (congestion 1 per channel).
func EmbedRing(d, n int, faults []int) (*Embedding, error) {
	db := debruijn.New(d, n)
	res, err := ffc.Embed(db, faults)
	if err != nil {
		return nil, err
	}
	g := New(d, n)
	walk := make([]int, 0, 2*len(res.Cycle))
	k := len(res.Cycle)
	for i, x := range res.Cycle {
		y := res.Cycle[(i+1)%k]
		path, err := g.EmulateDeBruijnEdge(x, y)
		if err != nil {
			return nil, err
		}
		walk = append(walk, path[:len(path)-1]...) // y starts the next hop
	}
	return &Embedding{Ring: res.Cycle, Walk: walk}, nil
}
