package lfsr

import (
	"testing"

	"debruijnring/internal/debruijn"
	"debruijnring/internal/gf"
)

func TestExample31(t *testing.T) {
	// Example 3.1: p(x) = x² − x − 3 over GF(5), s_{2+i} = s_{1+i} + 3sᵢ,
	// s₀ = 0, s₁ = 1 gives the maximal cycle
	// [0,1,1,4,2,4,0,2,2,3,4,3,0,4,4,1,3,1,0,3,3,2,1,2] in B(5,2).
	f := gf.MustField(5)
	rec := gf.Recurrence{F: f, A: []int{3, 1}}
	m, err := FromRecurrence(rec)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 1, 4, 2, 4, 0, 2, 2, 3, 4, 3, 0, 4, 4, 1, 3, 1, 0, 3, 3, 2, 1, 2}
	if len(m.Seq) != len(want) {
		t.Fatalf("sequence length %d, want %d", len(m.Seq), len(want))
	}
	for i := range want {
		if m.Seq[i] != want[i] {
			t.Fatalf("Seq[%d] = %d, want %d (full: %v)", i, m.Seq[i], want[i], m.Seq)
		}
	}
	g := debruijn.New(5, 2)
	if !g.IsCycleSequence(m.Seq) {
		t.Error("Example 3.1 sequence should denote a cycle")
	}
}

func TestMaximalCycleProperties(t *testing.T) {
	for _, tc := range []struct{ q, n int }{{2, 3}, {2, 6}, {3, 3}, {4, 2}, {5, 2}, {7, 2}, {8, 2}, {9, 2}, {13, 2}} {
		m, err := New(tc.q, tc.n)
		if err != nil {
			t.Fatalf("New(%d,%d): %v", tc.q, tc.n, err)
		}
		g := debruijn.New(tc.q, tc.n)
		if len(m.Seq) != g.Size-1 {
			t.Errorf("B(%d,%d): maximal cycle length %d, want %d", tc.q, tc.n, len(m.Seq), g.Size-1)
		}
		nodes := g.NodesOfSequence(m.Seq)
		if !g.IsCycle(nodes) {
			t.Fatalf("B(%d,%d): maximal sequence is not a cycle", tc.q, tc.n)
		}
		// Every node except 0ⁿ appears exactly once.
		seen := make(map[int]bool, len(nodes))
		for _, x := range nodes {
			seen[x] = true
		}
		if seen[0] {
			t.Errorf("B(%d,%d): maximal cycle must omit 0ⁿ", tc.q, tc.n)
		}
		if len(seen) != g.Size-1 {
			t.Errorf("B(%d,%d): cycle covers %d nodes, want %d", tc.q, tc.n, len(seen), g.Size-1)
		}
	}
}

func TestShiftedCycles(t *testing.T) {
	// Lemma 3.1: s + C is a cycle.  Lemma 3.3: the cycles {s + C} are
	// pairwise edge-disjoint.  Together they partition the non-loop edges.
	for _, tc := range []struct{ q, n int }{{2, 4}, {3, 3}, {4, 2}, {5, 2}, {9, 2}} {
		m, err := New(tc.q, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		g := debruijn.New(tc.q, tc.n)
		cycles := make([][]int, tc.q)
		for s := 0; s < tc.q; s++ {
			seq := m.Shifted(s)
			nodes := g.NodesOfSequence(seq)
			if !g.IsCycle(nodes) {
				t.Fatalf("B(%d,%d): %d + C is not a cycle", tc.q, tc.n, s)
			}
			// s + C omits exactly sⁿ.
			omitted := g.Repeat(s)
			for _, x := range nodes {
				if x == omitted {
					t.Fatalf("B(%d,%d): %d + C contains %s", tc.q, tc.n, s, g.String(x))
				}
			}
			cycles[s] = nodes
		}
		if !g.EdgeDisjoint(cycles...) {
			t.Fatalf("B(%d,%d): shifted cycles are not edge-disjoint", tc.q, tc.n)
		}
		// Edge partition: d cycles of dⁿ−1 edges + d loops = all dⁿ⁺¹ edges.
		totalCycleEdges := tc.q * (g.Size - 1)
		if totalCycleEdges+tc.q != g.D*g.Size {
			t.Fatalf("B(%d,%d): edge count mismatch", tc.q, tc.n)
		}
	}
}

func TestCycleIndexOfEdge(t *testing.T) {
	m, err := New(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Every window of s + C must be attributed to cycle s.
	for s := 0; s < 5; s++ {
		seq := m.Shifted(s)
		k := len(seq)
		window := make([]int, m.N+1)
		for i := 0; i < k; i++ {
			for j := 0; j <= m.N; j++ {
				window[j] = seq[(i+j)%k]
			}
			if got := m.CycleIndexOfEdge(window); got != s {
				t.Fatalf("window %v of %d + C attributed to cycle %d", window, s, got)
			}
			if got := m.NextDigitOn(s, window[:m.N]); got != window[m.N] {
				t.Fatalf("NextDigitOn(%d, %v) = %d, want %d", s, window[:m.N], got, window[m.N])
			}
		}
	}
	// The loop edge sⁿ⁺¹ maps to s by the formula.
	if got := m.CycleIndexOfEdge([]int{2, 2, 2}); got != 2 {
		t.Errorf("loop window attributed to %d, want 2", got)
	}
}

func TestFromRecurrenceRejectsNonPrimitive(t *testing.T) {
	f := gf.MustField(5)
	if _, err := FromRecurrence(gf.Recurrence{F: f, A: []int{1, 0}}); err == nil {
		t.Error("x² − 1 should be rejected")
	}
}

func TestFromRecurrenceSeedValidation(t *testing.T) {
	f := gf.MustField(5)
	rec := gf.Recurrence{F: f, A: []int{3, 1}}
	if _, err := FromRecurrenceSeed(rec, []int{0, 0}); err == nil {
		t.Error("zero seed should be rejected")
	}
	if _, err := FromRecurrenceSeed(rec, []int{1}); err == nil {
		t.Error("short seed should be rejected")
	}
	// Different nonzero seeds give rotations of the same cycle.
	a, err := FromRecurrenceSeed(rec, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromRecurrenceSeed(rec, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	g := debruijn.New(5, 2)
	ea := g.CycleEdges(g.NodesOfSequence(a.Seq))
	eb := g.CycleEdges(g.NodesOfSequence(b.Seq))
	seen := make(map[int]bool)
	for _, e := range ea {
		seen[e] = true
	}
	for _, e := range eb {
		if !seen[e] {
			t.Fatal("different seeds should trace the same maximal cycle")
		}
	}
}

func BenchmarkMaximalCycle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := New(4, 5); err != nil {
			b.Fatal(err)
		}
	}
}
