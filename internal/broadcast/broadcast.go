// Package broadcast implements the motivating application of Chapter 3:
// all-to-all broadcast over rings embedded in a De Bruijn network.  Every
// node must deliver an identical message to all other nodes.  On a single
// Hamiltonian ring the pipelined algorithm takes N−1 steps, each step
// moving whole messages.  With t edge-disjoint Hamiltonian cycles each
// message is split into t submessages, one per ring, cutting the per-link
// traffic — and hence the transmission time under a length-proportional
// cost model — by a factor of t (§3.2, after [LS90]).
package broadcast

import (
	"fmt"

	"debruijnring/internal/netsim"
)

// Result summarizes an all-to-all broadcast simulation.
type Result struct {
	Nodes       int
	Rings       int
	Steps       int   // pipeline rounds executed (N−1)
	ChunkSize   int   // units moved per link per round
	TimeUnits   int   // Steps × ChunkSize: completion time under the linear cost model
	TotalUnits  int64 // total payload units carried by all links
	MaxLinkLoad int   // maximum units carried by any single directed link per round
}

// chunk is the unit payload: a piece of origin's message travelling on one
// ring.
type chunk struct {
	Origin int
	Ring   int
	Size   int
}

// Run simulates the pipelined all-to-all broadcast over the given rings.
// Every ring must visit each of the netSize nodes exactly once (they are
// Hamiltonian), and msgSize must be divisible by the number of rings.  The
// rings' edges should be disjoint for the congestion figures to be
// meaningful; Run reports the observed per-link load either way.
func Run(netSize int, rings [][]int, msgSize int) (*Result, error) {
	t := len(rings)
	if t == 0 {
		return nil, fmt.Errorf("broadcast: need at least one ring")
	}
	if msgSize%t != 0 {
		return nil, fmt.Errorf("broadcast: message size %d not divisible by %d rings", msgSize, t)
	}
	for ri, ring := range rings {
		if len(ring) != netSize {
			return nil, fmt.Errorf("broadcast: ring %d visits %d of %d nodes", ri, len(ring), netSize)
		}
	}
	chunkSize := msgSize / t

	// successor[r][v] = v's ring-r successor.
	succ := make([]map[int]int, t)
	for r, ring := range rings {
		succ[r] = make(map[int]int, netSize)
		for i, v := range ring {
			succ[r][v] = ring[(i+1)%len(ring)]
		}
	}

	net := netsim.New(netSize)
	received := make([]map[[2]int]bool, netSize) // node → {origin, ring} seen
	linkLoad := make(map[[2]int]int)
	for v := 0; v < netSize; v++ {
		received[v] = make(map[[2]int]bool, netSize*t)
		for r := 0; r < t; r++ {
			received[v][[2]int{v, r}] = true
			to := succ[r][v]
			net.Send(v, to, chunk{Origin: v, Ring: r, Size: chunkSize})
			linkLoad[[2]int{v, to}] += chunkSize
		}
	}
	steps := net.RunUntilQuiet(func(v int, inbox []netsim.Message) {
		for _, m := range inbox {
			c, ok := m.Payload.(chunk)
			if !ok {
				continue
			}
			key := [2]int{c.Origin, c.Ring}
			if received[v][key] {
				continue
			}
			received[v][key] = true
			to := succ[c.Ring][v]
			if to == c.Origin {
				continue // the chunk has gone all the way around
			}
			net.Send(v, to, c)
			linkLoad[[2]int{v, to}] += c.Size
		}
	})

	// Completeness: every node holds every origin's chunk on every ring.
	for v := 0; v < netSize; v++ {
		if len(received[v]) != netSize*t {
			return nil, fmt.Errorf("broadcast: node %d received %d of %d chunks", v, len(received[v]), netSize*t)
		}
	}
	res := &Result{
		Nodes:      netSize,
		Rings:      t,
		Steps:      steps,
		ChunkSize:  chunkSize,
		TimeUnits:  steps * chunkSize,
		TotalUnits: int64(chunkSize) * int64(t) * int64(netSize) * int64(netSize-1),
	}
	for _, load := range linkLoad {
		// Loads accumulate over rounds; per-round load is load/steps-ish,
		// but the congestion guarantee is per-link totals: with disjoint
		// rings each link belongs to at most one ring and carries exactly
		// (N−1) chunks of one ring.
		perRound := (load + steps - 1) / steps
		if perRound > res.MaxLinkLoad {
			res.MaxLinkLoad = perRound
		}
	}
	return res, nil
}
