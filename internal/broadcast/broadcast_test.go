package broadcast

import (
	"testing"

	"debruijnring/internal/debruijn"
	"debruijnring/internal/hamilton"
)

func ringsFor(t *testing.T, d, n, count int) (int, [][]int) {
	t.Helper()
	g := debruijn.New(d, n)
	fam, err := hamilton.DisjointHCs(d, n)
	if err != nil {
		t.Fatal(err)
	}
	if count > len(fam.Cycles) {
		t.Fatalf("asked for %d rings, only ψ = %d available", count, len(fam.Cycles))
	}
	rings := make([][]int, count)
	for i := 0; i < count; i++ {
		rings[i] = g.NodesOfSequence(fam.Cycles[i])
	}
	return g.Size, rings
}

func TestSingleRingAllToAll(t *testing.T) {
	size, rings := ringsFor(t, 4, 2, 1)
	res, err := Run(size, rings, 12)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != size-1 {
		t.Errorf("steps = %d, want N−1 = %d", res.Steps, size-1)
	}
	if res.TimeUnits != (size-1)*12 {
		t.Errorf("time = %d, want %d", res.TimeUnits, (size-1)*12)
	}
	if res.MaxLinkLoad != 12 {
		t.Errorf("per-round link load = %d, want full message 12", res.MaxLinkLoad)
	}
}

// TestDisjointSpeedup: with t disjoint HCs the completion time drops by a
// factor of t and the per-link load stays at one chunk.
func TestDisjointSpeedup(t *testing.T) {
	size, rings := ringsFor(t, 4, 2, 3)
	msg := 12
	single, err := Run(size, rings[:1], msg)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Run(size, rings, msg)
	if err != nil {
		t.Fatal(err)
	}
	if multi.Steps != single.Steps {
		t.Errorf("rounds changed: %d vs %d", multi.Steps, single.Steps)
	}
	if want := single.TimeUnits / 3; multi.TimeUnits != want {
		t.Errorf("multi-ring time %d, want %d (3× speedup)", multi.TimeUnits, want)
	}
	if multi.MaxLinkLoad != msg/3 {
		t.Errorf("per-round link load %d, want one chunk = %d", multi.MaxLinkLoad, msg/3)
	}
}

func TestRunValidation(t *testing.T) {
	size, rings := ringsFor(t, 4, 2, 3)
	if _, err := Run(size, nil, 6); err == nil {
		t.Error("no rings should fail")
	}
	if _, err := Run(size, rings, 7); err == nil {
		t.Error("message not divisible by the ring count should fail")
	}
	if _, err := Run(size+1, rings, 6); err == nil {
		t.Error("non-Hamiltonian ring should fail")
	}
}

func TestLargerNetwork(t *testing.T) {
	size, rings := ringsFor(t, 2, 6, 1)
	res, err := Run(size, rings, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != size-1 {
		t.Errorf("steps = %d, want %d", res.Steps, size-1)
	}
	if res.TotalUnits != int64(4*size*(size-1)) {
		t.Errorf("total units = %d", res.TotalUnits)
	}
}

func BenchmarkAllToAllSingle(b *testing.B) {
	g := debruijn.New(4, 2)
	fam, err := hamilton.DisjointHCs(4, 2)
	if err != nil {
		b.Fatal(err)
	}
	rings := [][]int{g.NodesOfSequence(fam.Cycles[0])}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(g.Size, rings, 12); err != nil {
			b.Fatal(err)
		}
	}
}
