// Package kautz models the Kautz digraph K(d,n), the second bounded-degree
// family (after butterflies) that Chapter 5 of Rowley–Bose names when
// asking how far the disjoint-Hamiltonian-cycle results extend.
//
// K(d,n) has the (d+1)·dⁿ⁻¹ words of length n over a (d+1)-letter alphabet
// in which consecutive letters differ; edges shift left and append any
// letter different from the current last one, so in- and out-degrees are
// exactly d and there are no loops.  Like B(d,n), K(d,n) is the line graph
// of K(d,n−1) — the property behind the §2.5 worst-case argument — and it
// is Hamiltonian.  Unlike B(d,n), its words do not rotate freely (a word
// with x₁ = xₙ leaves the graph when rotated), so the necklace machinery of
// Chapter 2 does not transfer verbatim; this package provides the model
// plus exhaustive tooling to measure how many disjoint Hamiltonian cycles
// small instances actually have.
package kautz

import (
	"fmt"
	"strings"
)

// Graph is the Kautz digraph K(d,n): degree d, alphabet size d+1.
type Graph struct {
	D     int   // degree; alphabet has d+1 letters
	N     int   // word length
	Size  int   // (d+1)·dⁿ⁻¹
	nodes []int // node id → packed word
	index map[int]int
	pow   []int
}

// New returns K(d,n) for d ≥ 2, n ≥ 1.
func New(d, n int) *Graph {
	if d < 2 || n < 1 {
		panic(fmt.Sprintf("kautz: invalid dimensions d=%d n=%d", d, n))
	}
	base := d + 1
	pow := make([]int, n+1)
	pow[0] = 1
	for i := 1; i <= n; i++ {
		pow[i] = pow[i-1] * base
	}
	g := &Graph{D: d, N: n, index: make(map[int]int), pow: pow}
	var rec func(word, length, last int)
	rec = func(word, length, last int) {
		if length == n {
			g.index[word] = len(g.nodes)
			g.nodes = append(g.nodes, word)
			return
		}
		for a := 0; a < base; a++ {
			if length > 0 && a == last {
				continue
			}
			rec(word*base+a, length+1, a)
		}
	}
	rec(0, 0, -1)
	g.Size = len(g.nodes)
	return g
}

// Word returns the packed word of a node id.
func (g *Graph) Word(id int) int { return g.nodes[id] }

// Digit returns the i'th letter (1-indexed) of node id.
func (g *Graph) Digit(id, i int) int {
	return g.nodes[id] / g.pow[g.N-i] % (g.D + 1)
}

// String renders a node's word.
func (g *Graph) String(id int) string {
	var b strings.Builder
	for i := 1; i <= g.N; i++ {
		v := g.Digit(id, i)
		if v < 10 {
			b.WriteByte(byte('0' + v))
		} else {
			b.WriteByte(byte('a' + v - 10))
		}
	}
	return b.String()
}

// Parse converts a word string to a node id.
func (g *Graph) Parse(s string) (int, error) {
	if len(s) != g.N {
		return 0, fmt.Errorf("kautz: %q has length %d, want %d", s, len(s), g.N)
	}
	w := 0
	last := -1
	for _, c := range s {
		var v int
		switch {
		case c >= '0' && c <= '9':
			v = int(c - '0')
		case c >= 'a' && c <= 'z':
			v = int(c-'a') + 10
		default:
			return 0, fmt.Errorf("kautz: bad letter %q", c)
		}
		if v > g.D {
			return 0, fmt.Errorf("kautz: letter %d out of alphabet [0,%d]", v, g.D)
		}
		if v == last {
			return 0, fmt.Errorf("kautz: %q repeats consecutive letters", s)
		}
		last = v
		w = w*(g.D+1) + v
	}
	id, ok := g.index[w]
	if !ok {
		return 0, fmt.Errorf("kautz: %q is not a Kautz word", s)
	}
	return id, nil
}

// Successors appends the d successors of a node: shift left, append any
// letter different from the last.
func (g *Graph) Successors(id int, dst []int) []int {
	dst = dst[:0]
	w := g.nodes[id]
	last := w % (g.D + 1)
	suffix := w % g.pow[g.N-1]
	for a := 0; a <= g.D; a++ {
		if a == last {
			continue
		}
		dst = append(dst, g.index[suffix*(g.D+1)+a])
	}
	return dst
}

// IsEdge reports whether (x, y) is a Kautz edge.
func (g *Graph) IsEdge(x, y int) bool {
	return g.nodes[y]/(g.D+1) == g.nodes[x]%g.pow[g.N-1]
}

// IsCycle reports whether seq is a cycle of K(d,n).
func (g *Graph) IsCycle(seq []int) bool {
	if len(seq) < 2 {
		return false // K(d,n) has no loops
	}
	seen := make(map[int]bool, len(seq))
	for i, x := range seq {
		if x < 0 || x >= g.Size || seen[x] {
			return false
		}
		seen[x] = true
		if !g.IsEdge(x, seq[(i+1)%len(seq)]) {
			return false
		}
	}
	return true
}

// IsHamiltonian reports whether seq is a Hamiltonian cycle.
func (g *Graph) IsHamiltonian(seq []int) bool {
	return len(seq) == g.Size && g.IsCycle(seq)
}

// FindHamiltonian searches exhaustively for a Hamiltonian cycle avoiding
// the given forbidden node pairs.  Small graphs only.
func (g *Graph) FindHamiltonian(badEdges map[[2]int]bool) []int {
	const maxSearch = 120
	if g.Size > maxSearch {
		panic("kautz: exhaustive search limited to small graphs")
	}
	onPath := make([]bool, g.Size)
	path := make([]int, 0, g.Size)
	var found []int

	var dfs func(v int) bool
	dfs = func(v int) bool {
		if len(path) == g.Size {
			if g.IsEdge(v, path[0]) && !badEdges[[2]int{v, path[0]}] {
				found = append([]int(nil), path...)
				return true
			}
			return false
		}
		var buf [64]int
		for _, w := range g.Successors(v, buf[:0]) {
			if onPath[w] || badEdges[[2]int{v, w}] {
				continue
			}
			onPath[w] = true
			path = append(path, w)
			if dfs(w) {
				return true
			}
			path = path[:len(path)-1]
			onPath[w] = false
		}
		return false
	}

	onPath[0] = true
	path = append(path, 0)
	if dfs(0) {
		return found
	}
	return nil
}

// MaxDisjointHCs greedily extends a family of pairwise edge-disjoint
// Hamiltonian cycles by repeated search, returning the family found.  For
// small instances this answers the Chapter 5 question "how many disjoint
// HCs do Kautz graphs have?" constructively from below (the true maximum
// is at most d).
func (g *Graph) MaxDisjointHCs() [][]int {
	bad := make(map[[2]int]bool)
	var fam [][]int
	for {
		hc := g.FindHamiltonian(bad)
		if hc == nil {
			return fam
		}
		fam = append(fam, hc)
		for i, x := range hc {
			bad[[2]int{x, hc[(i+1)%len(hc)]}] = true
		}
	}
}

// AllHamiltonianCycles enumerates every Hamiltonian cycle (canonicalized
// to start at node 0), stopping at limit when limit > 0.  Small graphs.
func (g *Graph) AllHamiltonianCycles(limit int) [][]int {
	const maxSearch = 40
	if g.Size > maxSearch {
		panic("kautz: full HC enumeration limited to tiny graphs")
	}
	onPath := make([]bool, g.Size)
	path := make([]int, 0, g.Size)
	var out [][]int

	var dfs func(v int) bool
	dfs = func(v int) bool {
		if len(path) == g.Size {
			if g.IsEdge(v, path[0]) {
				out = append(out, append([]int(nil), path...))
				if limit > 0 && len(out) >= limit {
					return true
				}
			}
			return false
		}
		var buf [64]int
		for _, w := range g.Successors(v, buf[:0]) {
			if onPath[w] {
				continue
			}
			onPath[w] = true
			path = append(path, w)
			if dfs(w) {
				return true
			}
			path = path[:len(path)-1]
			onPath[w] = false
		}
		return false
	}

	onPath[0] = true
	path = append(path, 0)
	dfs(0)
	return out
}

// MaxDisjointHCsExact computes the exact maximum number of pairwise
// edge-disjoint Hamiltonian cycles by exhaustive set packing over the full
// HC enumeration.  Tiny graphs only; returns a maximum family.
func (g *Graph) MaxDisjointHCsExact() [][]int {
	all := g.AllHamiltonianCycles(0)
	edgeSets := make([]map[[2]int]bool, len(all))
	for i, hc := range all {
		es := make(map[[2]int]bool, len(hc))
		for j, x := range hc {
			es[[2]int{x, hc[(j+1)%len(hc)]}] = true
		}
		edgeSets[i] = es
	}
	disjoint := func(a, b map[[2]int]bool) bool {
		if len(a) > len(b) {
			a, b = b, a
		}
		for e := range a {
			if b[e] {
				return false
			}
		}
		return true
	}
	var best []int
	var chosen []int
	var pick func(from int)
	pick = func(from int) {
		if len(chosen) > len(best) {
			best = append(best[:0], chosen...)
		}
		if len(chosen)+len(all)-from <= len(best) || len(chosen) == g.D {
			return
		}
		for i := from; i < len(all); i++ {
			ok := true
			for _, j := range chosen {
				if !disjoint(edgeSets[i], edgeSets[j]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			chosen = append(chosen, i)
			pick(i + 1)
			chosen = chosen[:len(chosen)-1]
		}
	}
	pick(0)
	fam := make([][]int, len(best))
	for i, j := range best {
		fam[i] = all[j]
	}
	return fam
}
