package kautz

import "testing"

func TestStructure(t *testing.T) {
	for _, tc := range []struct{ d, n, size int }{
		{2, 2, 6}, {2, 3, 12}, {2, 4, 24}, {3, 2, 12}, {3, 3, 36}, {4, 2, 20},
	} {
		g := New(tc.d, tc.n)
		if g.Size != tc.size {
			t.Errorf("K(%d,%d) has %d nodes, want (d+1)dⁿ⁻¹ = %d", tc.d, tc.n, g.Size, tc.size)
		}
		var buf []int
		for v := 0; v < g.Size; v++ {
			buf = g.Successors(v, buf)
			if len(buf) != tc.d {
				t.Fatalf("K(%d,%d): out-degree %d at %s", tc.d, tc.n, len(buf), g.String(v))
			}
			for _, w := range buf {
				if w == v {
					t.Fatalf("K(%d,%d): loop at %s (impossible)", tc.d, tc.n, g.String(v))
				}
				if !g.IsEdge(v, w) {
					t.Fatalf("K(%d,%d): successor not an edge", tc.d, tc.n)
				}
			}
		}
		// In-degree is d as well.
		indeg := make([]int, g.Size)
		for v := 0; v < g.Size; v++ {
			buf = g.Successors(v, buf)
			for _, w := range buf {
				indeg[w]++
			}
		}
		for v, k := range indeg {
			if k != tc.d {
				t.Fatalf("K(%d,%d): in-degree %d at %s", tc.d, tc.n, k, g.String(v))
			}
		}
	}
}

func TestParseString(t *testing.T) {
	g := New(2, 3)
	for v := 0; v < g.Size; v++ {
		s := g.String(v)
		back, err := g.Parse(s)
		if err != nil || back != v {
			t.Fatalf("Parse(String(%d)) = %d, %v", v, back, err)
		}
	}
	// Words with repeated consecutive letters are rejected.
	if _, err := g.Parse("001"); err == nil {
		t.Error("001 is not a Kautz word")
	}
	if _, err := g.Parse("03"); err == nil {
		t.Error("wrong length should fail")
	}
	if _, err := g.Parse("091"); err == nil {
		t.Error("letter out of alphabet should fail")
	}
}

func TestLineGraphProperty(t *testing.T) {
	// K(d,n) is the line graph of K(d,n−1): edge counts match node counts
	// one level up, and edges of K(d,n−1) biject with nodes of K(d,n).
	for _, tc := range []struct{ d, n int }{{2, 3}, {3, 3}, {2, 4}} {
		small := New(tc.d, tc.n-1)
		big := New(tc.d, tc.n)
		if small.Size*tc.d != big.Size {
			t.Errorf("K(%d,%d) edges %d ≠ K(%d,%d) nodes %d",
				tc.d, tc.n-1, small.Size*tc.d, tc.d, tc.n, big.Size)
		}
	}
}

func TestHamiltonian(t *testing.T) {
	for _, tc := range []struct{ d, n int }{{2, 2}, {2, 3}, {2, 4}, {3, 2}, {3, 3}, {4, 2}} {
		g := New(tc.d, tc.n)
		hc := g.FindHamiltonian(nil)
		if hc == nil {
			t.Fatalf("K(%d,%d) should be Hamiltonian", tc.d, tc.n)
		}
		if !g.IsHamiltonian(hc) {
			t.Fatalf("K(%d,%d): invalid HC", tc.d, tc.n)
		}
	}
}

// TestDisjointHCsExact answers the Chapter 5 Kautz question definitively
// on tiny instances: the exact maximum number of pairwise edge-disjoint
// Hamiltonian cycles.
func TestDisjointHCsExact(t *testing.T) {
	cases := []struct {
		d, n, exact int
	}{
		// K(2,2) ≅ L(K₃*): an HC corresponds to an Eulerian circuit of the
		// loopless K₃, and the complementary transition system always
		// splits — so the maximum is 1, strictly below the degree bound.
		{2, 2, 1},
		{2, 3, 1},
		// K(3,2) packs a full Hamiltonian decomposition (3 = d cycles).
		{3, 2, 3},
	}
	for _, tc := range cases {
		g := New(tc.d, tc.n)
		fam := g.MaxDisjointHCsExact()
		if len(fam) != tc.exact {
			t.Errorf("K(%d,%d): exact maximum %d disjoint HCs, want %d",
				tc.d, tc.n, len(fam), tc.exact)
		}
		seen := map[[2]int]bool{}
		for _, hc := range fam {
			if !g.IsHamiltonian(hc) {
				t.Fatalf("K(%d,%d): invalid HC in family", tc.d, tc.n)
			}
			for i, x := range hc {
				e := [2]int{x, hc[(i+1)%len(hc)]}
				if seen[e] {
					t.Fatalf("K(%d,%d): family shares edge", tc.d, tc.n)
				}
				seen[e] = true
			}
		}
	}
}

// TestDisjointHCsGreedy: the cheap greedy packer respects the degree bound
// and produces verified families on larger instances.
func TestDisjointHCsGreedy(t *testing.T) {
	for _, tc := range []struct{ d, n int }{{3, 2}, {2, 4}, {4, 2}} {
		g := New(tc.d, tc.n)
		fam := g.MaxDisjointHCs()
		if len(fam) < 1 || len(fam) > tc.d {
			t.Errorf("K(%d,%d): greedy family size %d outside [1,%d]", tc.d, tc.n, len(fam), tc.d)
		}
		seen := map[[2]int]bool{}
		for _, hc := range fam {
			if !g.IsHamiltonian(hc) {
				t.Fatalf("K(%d,%d): invalid HC", tc.d, tc.n)
			}
			for i, x := range hc {
				e := [2]int{x, hc[(i+1)%len(hc)]}
				if seen[e] {
					t.Fatalf("K(%d,%d): shared edge", tc.d, tc.n)
				}
				seen[e] = true
			}
		}
		t.Logf("K(%d,%d): greedy packs %d disjoint HCs (degree bound %d)", tc.d, tc.n, len(fam), tc.d)
	}
}

func TestIsCycleRejects(t *testing.T) {
	g := New(2, 2)
	if g.IsCycle([]int{0}) {
		t.Error("no 1-cycles in a loopless digraph")
	}
	if g.IsCycle([]int{0, 0}) {
		t.Error("repeated nodes are not a cycle")
	}
}

func BenchmarkKautzHamiltonian(b *testing.B) {
	g := New(3, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.FindHamiltonian(nil) == nil {
			b.Fatal("no HC")
		}
	}
}
