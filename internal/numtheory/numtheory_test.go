package numtheory

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestGCDLCM(t *testing.T) {
	cases := []struct{ a, b, gcd, lcm int }{
		{12, 18, 6, 36},
		{7, 13, 1, 91},
		{0, 5, 5, 0},
		{4, 0, 4, 0},
		{1, 1, 1, 1},
		{4, 6, 2, 12},
		{4096, 12, 4, 12288},
	}
	for _, c := range cases {
		if g := GCD(c.a, c.b); g != c.gcd {
			t.Errorf("GCD(%d,%d) = %d, want %d", c.a, c.b, g, c.gcd)
		}
		if l := LCM(c.a, c.b); l != c.lcm {
			t.Errorf("LCM(%d,%d) = %d, want %d", c.a, c.b, l, c.lcm)
		}
	}
}

func TestIsPrimeSmall(t *testing.T) {
	// Sieve comparison up to 10000.
	limit := 10000
	sieve := make([]bool, limit+1)
	for i := 2; i <= limit; i++ {
		sieve[i] = true
	}
	for i := 2; i*i <= limit; i++ {
		if sieve[i] {
			for j := i * i; j <= limit; j += i {
				sieve[j] = false
			}
		}
	}
	for n := 0; n <= limit; n++ {
		if got := IsPrime(uint64(n)); got != sieve[n] {
			t.Fatalf("IsPrime(%d) = %v, want %v", n, got, sieve[n])
		}
	}
}

func TestIsPrimeLarge(t *testing.T) {
	primes := []uint64{
		(1 << 31) - 1, // Mersenne prime 2^31-1
		1000000007,
		1000000009,
		18446744073709551557, // largest 64-bit prime
	}
	for _, p := range primes {
		if !IsPrime(p) {
			t.Errorf("IsPrime(%d) = false, want true", p)
		}
	}
	composites := []uint64{
		(1 << 31), 1000000007 * 2, 3215031751, // strong pseudoprime to bases 2,3,5,7
		341550071728321, // strong pseudoprime to bases 2..17
	}
	for _, c := range composites {
		if IsPrime(c) {
			t.Errorf("IsPrime(%d) = true, want false", c)
		}
	}
}

func TestFactor(t *testing.T) {
	cases := map[uint64][]PrimePower{
		1:    nil,
		2:    {{2, 1}},
		360:  {{2, 3}, {3, 2}, {5, 1}},
		1023: {{3, 1}, {11, 1}, {31, 1}}, // 2^10 − 1
		1024: {{2, 10}},
	}
	for n, want := range cases {
		got := Factor(n)
		if len(got) != len(want) {
			t.Fatalf("Factor(%d) = %v, want %v", n, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Factor(%d) = %v, want %v", n, got, want)
			}
		}
	}
	// Factorization reconstructs the number, for a spread of inputs
	// including semiprimes that force Pollard rho.
	for _, n := range []uint64{2 * 3 * 5 * 7 * 11 * 13, 1<<40 - 1, 999999999989 * 2, 1000003 * 1000033} {
		prod := uint64(1)
		for _, pp := range Factor(n) {
			if !IsPrime(pp.P) {
				t.Fatalf("Factor(%d) returned composite factor %d", n, pp.P)
			}
			prod *= pp.Value()
		}
		if prod != n {
			t.Fatalf("Factor(%d) product = %d", n, prod)
		}
	}
}

func TestEulerPhi(t *testing.T) {
	want := map[uint64]uint64{1: 1, 2: 1, 3: 2, 4: 2, 5: 4, 6: 2, 9: 6, 10: 4, 12: 4, 36: 12, 97: 96}
	for n, w := range want {
		if got := EulerPhi(n); got != w {
			t.Errorf("φ(%d) = %d, want %d", n, got, w)
		}
	}
	// Multiplicativity φ(mn) = φ(m)φ(n) for coprime m, n.
	f := func(a, b uint8) bool {
		m, n := uint64(a%50+2), uint64(b%50+2)
		if GCD(int(m), int(n)) != 1 {
			return true
		}
		return EulerPhi(m*n) == EulerPhi(m)*EulerPhi(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMobius(t *testing.T) {
	want := map[uint64]int{1: 1, 2: -1, 3: -1, 4: 0, 5: -1, 6: 1, 12: 0, 30: -1, 35: 1, 36: 0}
	for n, w := range want {
		if got := Mobius(n); got != w {
			t.Errorf("µ(%d) = %d, want %d", n, got, w)
		}
	}
	// Σ_{d|n} µ(d) = [n = 1].
	for n := 1; n <= 200; n++ {
		sum := 0
		for _, d := range Divisors(n) {
			sum += Mobius(uint64(d))
		}
		want := 0
		if n == 1 {
			want = 1
		}
		if sum != want {
			t.Fatalf("Σ µ(d|%d) = %d, want %d", n, sum, want)
		}
	}
}

func TestDivisors(t *testing.T) {
	got := Divisors(12)
	want := []int{1, 2, 3, 4, 6, 12}
	if len(got) != len(want) {
		t.Fatalf("Divisors(12) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Divisors(12) = %v", got)
		}
	}
	if Divisors(0) != nil {
		t.Error("Divisors(0) should be nil")
	}
}

func TestPrimePowerOf(t *testing.T) {
	cases := []struct {
		n, p, e int
		ok      bool
	}{
		{2, 2, 1, true}, {4, 2, 2, true}, {8, 2, 3, true}, {9, 3, 2, true},
		{25, 5, 2, true}, {27, 3, 3, true}, {32, 2, 5, true}, {13, 13, 1, true},
		{6, 0, 0, false}, {12, 0, 0, false}, {1, 0, 0, false}, {0, 0, 0, false},
		{36, 0, 0, false},
	}
	for _, c := range cases {
		p, e, ok := PrimePowerOf(c.n)
		if p != c.p || e != c.e || ok != c.ok {
			t.Errorf("PrimePowerOf(%d) = (%d,%d,%v), want (%d,%d,%v)", c.n, p, e, ok, c.p, c.e, c.ok)
		}
	}
}

func TestPrimitiveRoot(t *testing.T) {
	// Known least primitive roots.
	want := map[int]int{3: 2, 5: 2, 7: 3, 11: 2, 13: 2, 17: 3, 19: 2, 23: 5, 29: 2, 31: 3, 37: 2}
	for p, w := range want {
		if got := PrimitiveRoot(p); got != w {
			t.Errorf("PrimitiveRoot(%d) = %d, want %d", p, got, w)
		}
	}
	// Every root generates the full multiplicative group, and there are
	// φ(p−1) of them.
	for _, p := range []int{5, 13, 29} {
		roots := PrimitiveRoots(p)
		if len(roots) != int(EulerPhi(uint64(p-1))) {
			t.Errorf("p=%d: %d primitive roots, want φ(%d) = %d", p, len(roots), p-1, EulerPhi(uint64(p-1)))
		}
		for _, g := range roots {
			seen := make(map[int]bool)
			x := 1
			for i := 0; i < p-1; i++ {
				x = x * g % p
				seen[x] = true
			}
			if len(seen) != p-1 {
				t.Errorf("p=%d: %d does not generate Z_p*", p, g)
			}
		}
	}
	// 7 is a primitive root of Z_13 (used in Example 3.3).
	found := false
	for _, g := range PrimitiveRoots(13) {
		if g == 7 {
			found = true
		}
	}
	if !found {
		t.Error("7 should be a primitive root of Z_13")
	}
}

func TestPowMod(t *testing.T) {
	if got := PowMod(7, 11, 13); got != 2 {
		t.Errorf("7^11 mod 13 = %d, want 2", got)
	}
	if got := PowMod(7, 9, 13); got != PowMod(7, 9, 13) {
		t.Error("PowMod not deterministic")
	}
	// 2 ≡ 7^11 ≡ 7 + 7^9 (mod 13), the Example 3.3 identity.
	if (PowMod(7, 1, 13)+PowMod(7, 9, 13))%13 != 2 {
		t.Error("7 + 7^9 ≢ 2 (mod 13)")
	}
}

func TestBinomialMultinomial(t *testing.T) {
	if got := Binomial(12, 4); got.Cmp(big.NewInt(495)) != 0 {
		t.Errorf("C(12,4) = %v, want 495", got)
	}
	if got := Binomial(6, 2); got.Cmp(big.NewInt(15)) != 0 {
		t.Errorf("C(6,2) = %v, want 15", got)
	}
	if Binomial(5, -1).Sign() != 0 || Binomial(5, 6).Sign() != 0 {
		t.Error("out-of-range binomial should be 0")
	}
	// Type [0,3,2,1]: 6!/(0!3!2!1!) = 60 (§4.3 example: 312211 has type
	// [0,3,2,1]; the count of 6-tuples of that type).
	if got := Multinomial(6, []int{0, 3, 2, 1}); got.Cmp(big.NewInt(60)) != 0 {
		t.Errorf("Multinomial(6;0,3,2,1) = %v, want 60", got)
	}
	if Multinomial(6, []int{1, 2}).Sign() != 0 {
		t.Error("parts not summing to n should give 0")
	}
	if Multinomial(3, []int{-1, 4}).Sign() != 0 {
		t.Error("negative part should give 0")
	}
}

func TestBoundedCompositions(t *testing.T) {
	// d = 2 reduces to binomials.
	for n := 0; n <= 10; n++ {
		for k := 0; k <= n; k++ {
			if BoundedCompositions(2, n, k).Cmp(Binomial(n, k)) != 0 {
				t.Fatalf("c_2(%d,%d) ≠ C(%d,%d)", n, k, n, k)
			}
		}
	}
	// c_3(4,4) = 19 (§4.3: number of ternary 4-tuples of weight 4).
	if got := BoundedCompositions(3, 4, 4); got.Cmp(big.NewInt(19)) != 0 {
		t.Errorf("c_3(4,4) = %v, want 19", got)
	}
	// Exhaustive check against enumeration for several (d, n).
	for _, d := range []int{2, 3, 4, 5} {
		n := 5
		counts := make([]int64, n*(d-1)+1)
		total := 1
		for i := 0; i < n; i++ {
			total *= d
		}
		for x := 0; x < total; x++ {
			w, v := 0, x
			for i := 0; i < n; i++ {
				w += v % d
				v /= d
			}
			counts[w]++
		}
		for k := 0; k <= n*(d-1); k++ {
			if got := BoundedCompositions(d, n, k); got.Cmp(big.NewInt(counts[k])) != 0 {
				t.Fatalf("c_%d(%d,%d) = %v, want %d", d, n, k, got, counts[k])
			}
		}
		if BoundedCompositions(d, n, n*(d-1)+1).Sign() != 0 {
			t.Fatalf("c_%d(%d, max+1) should be 0", d, n)
		}
	}
}

func BenchmarkFactor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Factor(uint64(1)<<40 - 1)
	}
}

func BenchmarkIsPrime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		IsPrime(18446744073709551557)
	}
}
