// Package numtheory supplies the elementary number theory used throughout
// the Rowley–Bose reproduction: gcd/lcm, the Euler and Möbius functions,
// deterministic 64-bit primality testing, Pollard-rho factorization,
// prime-power decomposition, primitive roots of Z_p, and binomial /
// multinomial / bounded-composition counting (Chapter 4).
package numtheory

import (
	"fmt"
	"math/big"
	"math/bits"
	"sort"
)

// GCD returns the greatest common divisor of a and b (non-negative inputs).
func GCD(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// LCM returns the least common multiple of a and b.  LCM(0, x) = 0.
func LCM(a, b int) int {
	if a == 0 || b == 0 {
		return 0
	}
	return a / GCD(a, b) * b
}

// mulmod returns a*b mod m without overflow for m < 2^63.
func mulmod(a, b, m uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, rem := bits.Div64(hi%m, lo, m)
	return rem
}

// powmod returns a^e mod m.
func powmod(a, e, m uint64) uint64 {
	if m == 1 {
		return 0
	}
	r := uint64(1)
	a %= m
	for e > 0 {
		if e&1 == 1 {
			r = mulmod(r, a, m)
		}
		a = mulmod(a, a, m)
		e >>= 1
	}
	return r
}

// IsPrime reports whether n is prime.  It uses the deterministic
// Miller–Rabin witness set valid for all 64-bit integers.
func IsPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, p := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if n%p == 0 {
			return n == p
		}
	}
	d := n - 1
	r := 0
	for d&1 == 0 {
		d >>= 1
		r++
	}
	// Sinclair's deterministic witness set for n < 2^64.
witness:
	for _, a := range []uint64{2, 325, 9375, 28178, 450775, 9780504, 1795265022} {
		x := powmod(a%n, d, n)
		if x == 0 || x == 1 || x == n-1 {
			continue
		}
		for i := 0; i < r-1; i++ {
			x = mulmod(x, x, n)
			if x == n-1 {
				continue witness
			}
		}
		return false
	}
	return true
}

// pollardRho returns a non-trivial factor of composite odd n > 1.
func pollardRho(n uint64) uint64 {
	if n%2 == 0 {
		return 2
	}
	for c := uint64(1); ; c++ {
		f := func(x uint64) uint64 { return (mulmod(x, x, n) + c) % n }
		x, y, d := uint64(2), uint64(2), uint64(1)
		for d == 1 {
			x = f(x)
			y = f(f(y))
			diff := x - y
			if x < y {
				diff = y - x
			}
			if diff == 0 {
				break // cycle without factor; retry with new c
			}
			d = uint64(GCD(int(diff), int(n)))
		}
		if d != 1 && d != n {
			return d
		}
	}
}

// Factor returns the prime factorization of n ≥ 1 as sorted (prime,
// exponent) pairs.  Factor(1) returns nil.
func Factor(n uint64) []PrimePower {
	if n <= 1 {
		return nil
	}
	counts := make(map[uint64]int)
	factorInto(n, counts)
	primes := make([]uint64, 0, len(counts))
	for p := range counts {
		primes = append(primes, p)
	}
	sort.Slice(primes, func(i, j int) bool { return primes[i] < primes[j] })
	out := make([]PrimePower, len(primes))
	for i, p := range primes {
		out[i] = PrimePower{P: p, E: counts[p]}
	}
	return out
}

// PrimePower is one term p^e of a factorization.
type PrimePower struct {
	P uint64
	E int
}

// Value returns p^e.
func (pp PrimePower) Value() uint64 {
	v := uint64(1)
	for i := 0; i < pp.E; i++ {
		v *= pp.P
	}
	return v
}

func factorInto(n uint64, counts map[uint64]int) {
	for n%2 == 0 {
		counts[2]++
		n /= 2
	}
	for p := uint64(3); p*p <= n && p < 1<<20; p += 2 {
		for n%p == 0 {
			counts[p]++
			n /= p
		}
	}
	if n == 1 {
		return
	}
	if IsPrime(n) {
		counts[n]++
		return
	}
	d := pollardRho(n)
	factorInto(d, counts)
	factorInto(n/d, counts)
}

// EulerPhi returns φ(n), the number of positive integers ≤ n coprime to n.
func EulerPhi(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	r := n
	for _, pp := range Factor(n) {
		r = r / pp.P * (pp.P - 1)
	}
	return r
}

// Mobius returns µ(n): 1 if n = 1, (−1)^k for a product of k distinct
// primes, and 0 if n has a repeated prime factor (§4.1).
func Mobius(n uint64) int {
	if n == 1 {
		return 1
	}
	fs := Factor(n)
	for _, pp := range fs {
		if pp.E > 1 {
			return 0
		}
	}
	if len(fs)%2 == 0 {
		return 1
	}
	return -1
}

// Divisors returns the positive divisors of n in increasing order.
func Divisors(n int) []int {
	if n < 1 {
		return nil
	}
	var ds []int
	for i := 1; i*i <= n; i++ {
		if n%i == 0 {
			ds = append(ds, i)
			if j := n / i; j != i {
				ds = append(ds, j)
			}
		}
	}
	sort.Ints(ds)
	return ds
}

// PrimePowerOf reports whether n = p^e for a prime p and e ≥ 1, returning
// p and e when so.
func PrimePowerOf(n int) (p int, e int, ok bool) {
	if n < 2 {
		return 0, 0, false
	}
	fs := Factor(uint64(n))
	if len(fs) != 1 {
		return 0, 0, false
	}
	return int(fs[0].P), fs[0].E, true
}

// PrimitiveRoot returns the least primitive root of Z_p for prime p ≥ 3.
func PrimitiveRoot(p int) int {
	if !IsPrime(uint64(p)) || p < 3 {
		panic(fmt.Sprintf("numtheory: PrimitiveRoot wants an odd prime, got %d", p))
	}
	phi := uint64(p - 1)
	fs := Factor(phi)
	for g := 2; g < p; g++ {
		ok := true
		for _, pp := range fs {
			if powmod(uint64(g), phi/pp.P, uint64(p)) == 1 {
				ok = false
				break
			}
		}
		if ok {
			return g
		}
	}
	panic("numtheory: no primitive root found (unreachable for prime p)")
}

// PrimitiveRoots returns all primitive roots of Z_p in increasing order.
func PrimitiveRoots(p int) []int {
	g := PrimitiveRoot(p)
	var roots []int
	// λ^k is a primitive root iff gcd(k, p−1) = 1.
	x := 1
	for k := 1; k < p; k++ {
		x = x * g % p
		if GCD(k, p-1) == 1 {
			roots = append(roots, x)
		}
	}
	sort.Ints(roots)
	return roots
}

// PowMod returns a^e mod m for non-negative ints.
func PowMod(a, e, m int) int {
	return int(powmod(uint64(a%m+m)%uint64(m), uint64(e), uint64(m)))
}

// Binomial returns C(n, k) as a big.Int; zero when k < 0 or k > n.
func Binomial(n, k int) *big.Int {
	if k < 0 || k > n {
		return big.NewInt(0)
	}
	return new(big.Int).Binomial(int64(n), int64(k))
}

// Multinomial returns n! / (k₀!·k₁!·…·k_{m−1}!) as a big.Int; the parts
// must be non-negative and sum to n, else the result is zero.
func Multinomial(n int, parts []int) *big.Int {
	sum := 0
	for _, k := range parts {
		if k < 0 {
			return big.NewInt(0)
		}
		sum += k
	}
	if sum != n {
		return big.NewInt(0)
	}
	r := big.NewInt(1)
	rem := n
	for _, k := range parts {
		r.Mul(r, Binomial(rem, k))
		rem -= k
	}
	return r
}

// BoundedCompositions returns c_d(n, k): the number of d-ary n-tuples of
// weight k, i.e. ways to choose k from n objects with each chosen at most
// d−1 times (§4.3, after [Knu73]):
//
//	c_d(n,k) = Σ_{i=0}^{⌊k/d⌋} (−1)ⁱ C(n,i) C(n−1+k−di, n−1)
func BoundedCompositions(d, n, k int) *big.Int {
	if k < 0 || k > n*(d-1) {
		return big.NewInt(0)
	}
	if n == 0 {
		return big.NewInt(1) // the empty tuple, weight 0
	}
	total := big.NewInt(0)
	term := new(big.Int)
	for i := 0; i*d <= k; i++ {
		term.Mul(Binomial(n, i), Binomial(n-1+k-d*i, n-1))
		if i%2 == 1 {
			total.Sub(total, term)
		} else {
			total.Add(total, term)
		}
	}
	return total
}
