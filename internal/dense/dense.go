// Package dense provides the allocation-free bookkeeping primitives behind
// the hot paths of the reproduction: epoch-stamped scratch sets and arrays
// whose reset is O(1) instead of O(size).
//
// The epoch trick: each slot carries the epoch at which it was last
// written; a slot is "present" only when its stamp equals the current
// epoch, so Reset just increments the epoch.  Repeated Monte-Carlo trials
// over the same graph therefore reuse one allocation and never pay a
// clearing pass.  On the (astronomically rare) epoch wrap-around the
// stamps are cleared once to keep stale entries from resurfacing.
package dense

// Set is an epoch-stamped membership set over [0, n) with O(1) Reset.
// The zero value is ready to use after a Reset.
type Set struct {
	epoch uint32
	stamp []uint32
}

// Reset empties the set and (re)sizes it to hold members in [0, n).
//
//ringlint:noalloc
func (s *Set) Reset(n int) {
	if len(s.stamp) < n {
		s.stamp = make([]uint32, n) //ringlint:allow alloc grow-once resize; steady-state resets are stamp bumps
		s.epoch = 1
		return
	}
	s.epoch++
	if s.epoch == 0 { // wrapped: stale stamps could alias, clear once
		clear(s.stamp)
		s.epoch = 1
	}
}

// Add inserts i, reporting whether it was newly added.
//
//ringlint:noalloc
func (s *Set) Add(i int) bool {
	if s.stamp[i] == s.epoch {
		return false
	}
	s.stamp[i] = s.epoch
	return true
}

// Has reports membership of i.
//
//ringlint:noalloc
func (s *Set) Has(i int) bool { return s.stamp[i] == s.epoch }

// Ints is an epoch-stamped map [0, n) → int32 with O(1) Reset; absent
// slots are distinguished from zero values by their stamp.  The zero
// value is ready to use after a Reset.
type Ints struct {
	epoch uint32
	stamp []uint32
	val   []int32
}

// Reset empties the map and (re)sizes it to keys in [0, n).
//
//ringlint:noalloc
func (m *Ints) Reset(n int) {
	if len(m.stamp) < n {
		m.stamp = make([]uint32, n) //ringlint:allow alloc grow-once resize; steady-state resets are stamp bumps
		m.val = make([]int32, n) //ringlint:allow alloc grow-once resize; steady-state resets are stamp bumps
		m.epoch = 1
		return
	}
	m.epoch++
	if m.epoch == 0 {
		clear(m.stamp)
		m.epoch = 1
	}
}

// Set stores v at key i.
//
//ringlint:noalloc
func (m *Ints) Set(i int, v int32) {
	m.stamp[i] = m.epoch
	m.val[i] = v
}

// Get returns the value at i and whether it is present.
//
//ringlint:noalloc
func (m *Ints) Get(i int) (int32, bool) {
	if m.stamp[i] != m.epoch {
		return 0, false
	}
	return m.val[i], true
}

// Has reports whether key i is present.
//
//ringlint:noalloc
func (m *Ints) Has(i int) bool { return m.stamp[i] == m.epoch }

// At returns the value at i; it must be present.
//
//ringlint:noalloc
func (m *Ints) At(i int) int32 { return m.val[i] }
