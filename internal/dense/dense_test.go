package dense

import "testing"

func TestSetEpochReset(t *testing.T) {
	var s Set
	s.Reset(10)
	if !s.Add(3) || s.Add(3) || !s.Has(3) || s.Has(4) {
		t.Error("basic Add/Has wrong")
	}
	s.Reset(10)
	if s.Has(3) {
		t.Error("membership survived Reset")
	}
	if !s.Add(3) {
		t.Error("re-Add after Reset not new")
	}
	// Growing reallocates; shrinking reuses.
	s.Reset(20)
	s.Add(19)
	s.Reset(5)
	if s.Has(19) || s.Has(3) {
		t.Error("membership survived resize Reset")
	}
}

func TestSetEpochWrap(t *testing.T) {
	var s Set
	s.Reset(4)
	s.Add(2)
	s.epoch = ^uint32(0) // force the next Reset to wrap
	s.stamp[1] = 0       // a stale stamp that would alias epoch 0
	s.Reset(4)
	if s.Has(1) || s.Has(2) {
		t.Error("stale members resurfaced after epoch wrap")
	}
	if !s.Add(1) {
		t.Error("Add after wrap not new")
	}
}

func TestInts(t *testing.T) {
	var m Ints
	m.Reset(8)
	if _, ok := m.Get(5); ok {
		t.Error("fresh map has entries")
	}
	m.Set(5, 0) // zero value must still read as present
	if v, ok := m.Get(5); !ok || v != 0 {
		t.Error("zero value not distinguishable from absent")
	}
	m.Set(5, -7)
	if v, ok := m.Get(5); !ok || v != -7 || m.At(5) != -7 {
		t.Error("overwrite lost")
	}
	if !m.Has(5) || m.Has(6) {
		t.Error("Has wrong")
	}
	m.Reset(8)
	if m.Has(5) {
		t.Error("entry survived Reset")
	}
}

func BenchmarkSetResetAdd(b *testing.B) {
	var s Set
	for i := 0; i < b.N; i++ {
		s.Reset(1024)
		for j := 0; j < 64; j++ {
			s.Add(j * 16)
		}
	}
}
