package repair

import (
	"encoding/json"
	"fmt"
	"time"

	"debruijnring/topology"
)

// chainPatcher layers the two repair tiers for De Bruijn sessions into
// a single Patcher: the FFC structural tier first, and whenever it
// returns Unsupported — root-necklace loss (including the root-fault
// and root-necklace-exit-link cases that used to always recompute),
// non-spanning survivor graphs, unreorderable stars, failed reattach —
// the generic splice tier attempts a local bypass repair of the live
// ring before the session pays for a cold re-embed.  The resulting
// repair ladder is
//
//	FFC surgery (~O(touched stars)) → splice bypass (~O(ring)) → re-embed (O(dⁿ))
//
// with each tier declining to the next.  Splice-tier results are
// reported as Spliced so sessions can journal (and stats can count)
// which tier resolved each event.
//
// The chain mirrors the live ring and cumulative fault set itself; the
// splice tier is synchronized lazily from that mirror the first time
// the FFC tier declines.  Once the splice tier has modified the ring,
// the FFC tier's structures no longer describe it, so the chain routes
// every later Patch/Unpatch straight to the splice tier until the next
// successful Embed — at which point the FFC tier re-adopts the ring and
// the ladder resets.  All decisions are deterministic, so journal
// replay retraces the exact tier sequence.
type chainPatcher struct {
	ffc    *ffcPatcher
	splice *genericPatcher

	// Mirror of the session's live ring and cumulative canonical fault
	// set.  De Bruijn embeddings are always dilation 1, so the mirror is
	// sufficient to (re)build the splice tier's whole state.
	ring   []int
	faults topology.FaultSet

	// spliceOwns marks that the splice tier last modified the ring (the
	// FFC tier is stale until the next successful Embed).  spliceSynced
	// marks that the splice tier's internal state matches the mirror.
	spliceOwns   bool
	spliceSynced bool

	// trace holds the tier ladder of the most recent Patch/Unpatch for
	// LastTrace (session repair traces).
	trace []TierStep
}

// LastTrace implements Tracer: the tier steps of the most recent
// Patch/Unpatch, in descent order.
func (c *chainPatcher) LastTrace() []TierStep { return c.trace }

// traceStep appends one tier attempt to the current call's trace.
func (c *chainPatcher) traceStep(tier string, o Outcome, touched int, start time.Time) {
	//ringlint:allow time trace-only timing; Elapsed is diagnostic, never replayed or hashed
	c.trace = append(c.trace, TierStep{Tier: tier, Outcome: o, Touched: touched, Elapsed: time.Since(start)})
}

func newChainPatcher(t *topology.DeBruijn) *chainPatcher {
	return &chainPatcher{ffc: newFFCPatcher(t), splice: &genericPatcher{net: t}}
}

func (c *chainPatcher) Embed(f topology.FaultSet) ([]int, *topology.EmbedInfo, error) {
	ring, info, err := c.ffc.Embed(f)
	if err != nil {
		// Nothing to adopt; the previous state (and tier ownership)
		// survives a rejected embed.
		return nil, nil, err
	}
	c.ring = append(c.ring[:0], ring...)
	c.faults = f.Canonical()
	c.spliceOwns = false
	c.spliceSynced = false
	return ring, info, nil
}

// validBatch mirrors the session's input validation: a batch with
// out-of-range coordinates is rejected before either tier sees it, so
// bad input can never poison healthy tier state.
func (c *chainPatcher) validBatch(f topology.FaultSet) bool {
	size := c.ffc.g.Size
	for _, x := range f.Nodes {
		if x < 0 || x >= size {
			return false
		}
	}
	for _, e := range f.Edges {
		if e.From < 0 || e.From >= size || e.To < 0 || e.To >= size {
			return false
		}
	}
	return true
}

// syncSplice (re)builds the splice tier's state from the chain's
// mirror.  Restore(nil, …) re-checks node distinctness, so a corrupted
// mirror can never be spliced.
func (c *chainPatcher) syncSplice() bool {
	if c.spliceSynced {
		return c.splice.valid
	}
	if err := c.splice.Restore(nil, c.ring, c.faults); err != nil {
		return false
	}
	c.spliceSynced = true
	return c.splice.valid
}

func (c *chainPatcher) Patch(add topology.FaultSet) ([]int, Outcome) {
	c.trace = c.trace[:0]
	add = add.Canonical()
	if !c.validBatch(add) {
		return nil, Unsupported
	}
	if !c.spliceOwns {
		start := time.Now() //ringlint:allow time trace-only timing
		r, o := c.ffc.Patch(add)
		c.traceStep("ffc", o, c.ffc.touched, start)
		if o != Unsupported {
			if r != nil {
				c.ring = append(c.ring[:0], r...)
			}
			c.faults = c.faults.Union(add)
			c.spliceSynced = false
			return r, o
		}
		// The FFC tier declined; its bookkeeping may not include this
		// batch, but it is now invalid (or permanently non-spanning) and
		// declines everything until the next Embed, so the mirror is the
		// single source of truth for the splice tier below.
	}
	start := time.Now() //ringlint:allow time trace-only timing
	if !c.syncSplice() {
		c.traceStep("splice", Unsupported, 0, start)
		return nil, Unsupported
	}
	r, o := c.splice.Patch(add)
	c.traceStep("splice", o, c.splice.touched, start)
	switch o {
	case Patched:
		c.ring = append(c.ring[:0], r...)
		c.faults = c.faults.Union(add)
		c.spliceOwns = true
		return r, Spliced
	case Noop:
		c.faults = c.faults.Union(add)
		return nil, Noop
	}
	// The splice tier mutated nothing on Unsupported beyond its own
	// validity; force a resync from the mirror before its next use.
	c.spliceSynced = false
	return nil, Unsupported
}

func (c *chainPatcher) Unpatch(remove topology.FaultSet) ([]int, Outcome) {
	c.trace = c.trace[:0]
	remove = remove.Canonical()
	if !c.validBatch(remove) {
		return nil, Unsupported
	}
	if !c.spliceOwns {
		start := time.Now() //ringlint:allow time trace-only timing
		r, o := c.ffc.Unpatch(remove)
		c.traceStep("ffc", o, c.ffc.touched, start)
		if o != Unsupported {
			if r != nil {
				c.ring = append(c.ring[:0], r...)
			}
			c.faults = c.faults.Minus(remove)
			c.spliceSynced = false
			return r, o
		}
	}
	start := time.Now() //ringlint:allow time trace-only timing
	if !c.syncSplice() {
		c.traceStep("splice", Unsupported, 0, start)
		return nil, Unsupported
	}
	reduced := c.faults.Minus(remove)
	healed := c.faults.Minus(reduced)
	r, o := c.splice.Unpatch(remove)
	c.traceStep("splice", o, c.splice.touched, start)
	switch o {
	case Readmitted:
		// Accept only complete re-admissions: a splice heal that leaves
		// healed processors off-ring would silently freeze the ring short
		// of what a re-embed restores, so partial heals decline and let
		// the session regrow via Embed.  The splice tier's pooled
		// membership set is current right after its Unpatch, so the check
		// costs no allocation (validBatch already range-checked v).
		for _, v := range healed.Nodes {
			if !c.splice.onRingHas(v) {
				c.spliceSynced = false // the splice tier mutated; resync before reuse
				return nil, Unsupported
			}
		}
		c.ring = append(c.ring[:0], r...)
		c.faults = reduced
		c.spliceOwns = true
		return r, Spliced
	case Noop:
		if len(healed.Nodes) > 0 {
			// Healed processors found no insertion slot: decline so the
			// session re-embeds and the ring grows back.
			c.spliceSynced = false
			return nil, Unsupported
		}
		c.faults = reduced
		return nil, Noop
	}
	c.spliceSynced = false
	return nil, Unsupported
}

// chainState wraps the owning tier's snapshot so Restore rebuilds the
// right tier.  Journals from before the chain carry a bare ffcState (no
// "tier" key) and restore as the FFC tier.
type chainState struct {
	Tier  string          `json:"tier"`
	State json.RawMessage `json:"state,omitempty"`
}

func (c *chainPatcher) Snapshot() ([]byte, error) {
	if c.spliceOwns {
		st, err := c.splice.Snapshot()
		if err != nil {
			return nil, err
		}
		return json.Marshal(chainState{Tier: "splice", State: st})
	}
	st, err := c.ffc.Snapshot()
	if err != nil || st == nil {
		return nil, err
	}
	return json.Marshal(chainState{Tier: "ffc", State: st})
}

func (c *chainPatcher) Restore(state []byte, ring []int, f topology.FaultSet) error {
	f = f.Canonical()
	c.ring = append(c.ring[:0], ring...)
	c.faults = f
	c.spliceOwns = false
	c.spliceSynced = false
	if len(state) == 0 {
		// Both tiers stale: the FFC tier declines until the next Embed
		// and the splice tier resyncs lazily from (ring, faults) — the
		// same state a live chain is in right after the FFC tier
		// invalidates.
		return nil
	}
	var st chainState
	if err := json.Unmarshal(state, &st); err != nil {
		return fmt.Errorf("repair: bad chain snapshot: %w", err)
	}
	switch st.Tier {
	case "splice":
		if err := c.splice.Restore(st.State, ring, f); err != nil {
			return err
		}
		if !c.splice.valid {
			return fmt.Errorf("repair: splice snapshot restored to an unsplicable ring")
		}
		c.spliceOwns = true
		c.spliceSynced = true
		return nil
	case "ffc":
		return c.ffc.Restore(st.State, ring, f)
	case "":
		// Legacy snapshot: a bare ffcState recorded before the chain.
		return c.ffc.Restore(state, ring, f)
	}
	return fmt.Errorf("repair: unknown chain snapshot tier %q", st.Tier)
}
