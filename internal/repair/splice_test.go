package repair

// Tests for the alloc-flat splice tier: pooled dense scratch must not
// change any splice decision, the incremental onRing state must track
// the live ring across heal events, and a single Patch batch that cuts
// the ring in several places must give every cut edge's bypass the full
// uncommitted candidate space (a failed or earlier attempt must not
// shrink the search for the next).

import (
	"runtime"
	"testing"

	"debruijnring/topology"
)

// TestGenericPatcherMultiCutBatch cuts two non-adjacent nodes out of a
// Q₄ ring in ONE batch, forcing two multi-hop bypasses in a single
// patch call.  Both detours must thread through the off-ring spares:
// the first commits interior nodes 14,12,13 and the second must still
// find 9,8,10 — which only works because bypass attempts never leak
// candidate marks into the shared used set before commit.
func TestGenericPatcherMultiCutBatch(t *testing.T) {
	net, err := topology.NewHypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	p := For(net).(*genericPatcher)
	ring := []int{0, 1, 3, 2, 6, 7, 5, 4} // Gray cycle; spares 8..15
	if err := p.Restore(nil, ring, topology.FaultSet{}); err != nil {
		t.Fatal(err)
	}
	faults := topology.NodeFaults(3, 7)
	got, outcome := p.Patch(faults)
	if outcome != Patched {
		t.Fatalf("outcome %v, want Patched", outcome)
	}
	if p.touched != 2 {
		t.Errorf("touched = %d, want 2 (two independent cut edges)", p.touched)
	}
	if !topology.VerifyRing(net, got, faults) {
		t.Fatalf("patched ring %v fails verification", got)
	}
	for _, v := range got {
		if v == 3 || v == 7 {
			t.Fatalf("patched ring %v still carries a faulty node", got)
		}
	}
	// Both arcs survive and both bypasses ran multi-hop (6—5 and 1—2 are
	// not hypercube edges, so each reconnect needs interior nodes).
	if len(got) < 6+2 {
		t.Errorf("patched ring %v too short for two multi-hop detours", got)
	}
}

// TestGenericPatcherMultiCutEdgeBatch is the link-fault analogue: two
// ring hops severed in one batch, two bypasses in one call.
func TestGenericPatcherMultiCutEdgeBatch(t *testing.T) {
	net, err := topology.NewHypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	p := For(net)
	ring := []int{0, 1, 3, 2, 6, 7, 5, 4}
	if err := p.Restore(nil, ring, topology.FaultSet{}); err != nil {
		t.Fatal(err)
	}
	faults := topology.EdgeFaults(
		topology.Edge{From: 3, To: 2},
		topology.Edge{From: 5, To: 4},
	)
	got, outcome := p.Patch(faults)
	if outcome != Patched {
		t.Fatalf("outcome %v, want Patched", outcome)
	}
	if !topology.VerifyRing(net, got, faults) {
		t.Fatalf("patched ring %v fails verification", got)
	}
}

// ringMembership asserts the pooled incremental onRing set is marked
// valid and matches the live ring exactly.
func ringMembership(t *testing.T, p *genericPatcher) {
	t.Helper()
	if !p.onRingOK {
		t.Fatal("onRing not marked valid after a splice event")
	}
	want := make(map[int]bool, len(p.ring))
	for _, v := range p.ring {
		want[v] = true
	}
	for v := 0; v < p.net.Nodes(); v++ {
		if p.onRing.Has(v) != want[v] {
			t.Fatalf("onRing.Has(%d) = %v, ring membership = %v", v, p.onRing.Has(v), want[v])
		}
	}
}

// TestOnRingIncrementalState walks a fault/heal lifecycle and checks
// the pooled membership set stays exact at every step — patch refreshes
// it by the used-set swap, insertAfter maintains it across heals, and
// consecutive heal events reuse the state instead of rebuilding it.
func TestOnRingIncrementalState(t *testing.T) {
	net, err := topology.NewHypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	p := For(net).(*genericPatcher)
	ring := []int{0, 1, 3, 2, 6, 7, 5, 4}
	// 8 and 10 start as healed-later faults, off-ring as faults must be.
	if err := p.Restore(nil, ring, topology.NodeFaults(8, 10)); err != nil {
		t.Fatal(err)
	}
	ringMembership(t, p) // Restore's distinctness scan doubles as the build

	if _, o := p.Patch(topology.NodeFaults(7)); o != Patched {
		t.Fatalf("patch outcome %v", o)
	}
	ringMembership(t, p) // refreshed by the used↔onRing swap

	if _, o := p.Unpatch(topology.NodeFaults(8)); o != Readmitted {
		t.Fatalf("heal 8 outcome %v", o)
	}
	ringMembership(t, p) // maintained incrementally by insertAfter

	// A second consecutive heal event must see current state without a
	// rebuild (onRingOK survived the previous Unpatch).
	if !p.onRingOK {
		t.Fatal("membership state invalidated between consecutive heal events")
	}
	if _, o := p.Unpatch(topology.NodeFaults(10)); o != Readmitted {
		t.Fatalf("heal 10 outcome %v", o)
	}
	ringMembership(t, p)
	if !topology.VerifyRing(net, p.ring, topology.NodeFaults(7)) {
		t.Fatalf("ring %v fails verification after the heal sequence", p.ring)
	}

	// Re-healing an already-healed node is pure bookkeeping.
	if _, o := p.Unpatch(topology.NodeFaults(10)); o != Noop {
		t.Fatalf("re-heal outcome %v, want Noop", o)
	}
	ringMembership(t, p)
}

// TestSpliceSteadyStateBytes pins the allocation flattening: a warm
// B(2,10) splice round trip (the BenchmarkRepairSpliceFallback shape)
// must stay under 60KB — the two returned ring copies plus small
// fault-set bookkeeping — where the map-based tier burned ~320KB in
// O(ring)-sized builds per round.
func TestSpliceSteadyStateBytes(t *testing.T) {
	net, err := topology.NewDeBruijn(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	p := For(net)
	ring, _, err := p.Embed(topology.FaultSet{})
	if err != nil {
		t.Fatal(err)
	}
	batch := topology.NodeFaults(ring[0]) // the root: the FFC tier declines it
	for i := 0; i < 3; i++ {
		p.Patch(batch)
		p.Unpatch(batch)
	}

	const rounds = 50
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < rounds; i++ {
		if _, o := p.Patch(batch); o != Spliced {
			t.Fatalf("patch outcome %v", o)
		}
		if _, o := p.Unpatch(batch); o != Spliced {
			t.Fatalf("unpatch outcome %v", o)
		}
	}
	runtime.ReadMemStats(&after)
	perRound := (after.TotalAlloc - before.TotalAlloc) / rounds
	if perRound > 60_000 {
		t.Errorf("steady-state splice round trip allocates %d bytes, want < 60000", perRound)
	}
}
