// Package repair implements incremental ring repair: given an embedded
// ring and a batch of newly failed — or newly repaired — components, it
// attempts a local patch of the existing ring instead of a full
// re-embed; the operation behind long-lived fault-evolving sessions
// (package session).
//
// Two repair tiers are provided, and for De Bruijn networks they are
// chained.  The structural tier operates on the FFC algorithm's own
// data structures (the necklace spanning tree T, its height-one
// same-label stars T_w and the Step-3 successor overrides of
// Rowley–Bose §2.2): removing a faulty necklace detaches it from its
// parent star, re-parents its orphaned children along other surviving
// shift-edge labels, and re-closes only the affected w-cycles, so the
// repaired ring still satisfies Proposition 2.1 and costs O(affected
// stars) instead of O(dⁿ).  The lifecycle is bidirectional: a faulted
// ring link whose endpoints are healthy is absorbed by reordering
// window choices within the touched star (Proposition 2.1 holds for ANY
// single-cycle member order), and Unpatch reverses the surgery — a
// repaired necklace is re-expanded into the tree, growing the ring back
// toward dⁿ.  The generic splice tier works on any unit-dilation
// topology with no structural knowledge at all: it cuts the faulted
// nodes and links out of the ring, reconnects the surviving arcs
// through direct links or bounded-BFS bypass paths over off-ring
// survivors, and on heal re-inserts the repaired processors either
// directly between adjacent ring neighbors or via a multi-hop bypass
// path on one side.
//
// For(net) wires the tiers per topology.  De Bruijn sessions get the
// chain (see chainPatcher): the FFC tier first, and on any of its
// Unsupported exits — root-necklace loss, non-spanning survivor graphs,
// unreorderable stars, failed reattach — the splice tier attempts a
// local bypass repair of the live ring before the caller pays for a
// cold re-embed.  Every other topology gets the splice tier alone.
//
// A patcher is a stateful, single-goroutine object owned by one session.
// Patch and Unpatch are best-effort: Patched/Reordered/Readmitted/
// Spliced results still need topology.VerifyRing by the caller, and any
// Unsupported outcome (or failed verification) must be followed by
// Embed to re-synchronize the patcher's state with a full re-embed.
package repair

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"time"

	"debruijnring/internal/dense"
	"debruijnring/topology"
)

// TierStep records one repair tier's attempt during a single Patch or
// Unpatch call: which tier ran, how it answered, how much structure it
// touched (stars re-closed for the FFC tier, arcs/insertions spliced
// for the splice tier) and how long it took.
type TierStep struct {
	Tier    string        // "ffc" or "splice"
	Outcome Outcome
	Touched int
	Elapsed time.Duration
}

// Tracer is implemented by patchers that record the tier ladder each
// Patch/Unpatch call descended.  LastTrace returns the steps of the
// most recent call; the slice is owned by the patcher and only valid
// until the next Patch/Unpatch/Embed.
type Tracer interface {
	LastTrace() []TierStep
}

// Outcome classifies one Patch attempt.
type Outcome int

const (
	// Unsupported means the patcher cannot absorb the faults locally;
	// the caller must fall back to Embed (full re-embed).  The patcher's
	// incremental state is invalid until Embed succeeds.
	Unsupported Outcome = iota
	// Noop means the faults do not touch the current ring (off-component
	// nodes, already-faulty necklaces, links the ring does not use); the
	// ring is unchanged.
	Noop
	// Patched means the ring was locally repaired; the returned ring
	// replaces the old one pending the caller's verification.
	Patched
	// Reordered means an on-ring link fault was absorbed without
	// removing any necklace, by reordering window choices within the
	// touched stars; the returned ring replaces the old one pending
	// verification.
	Reordered
	// Readmitted means Unpatch re-admitted repaired components locally
	// (the ring grew back); the returned ring replaces the old one
	// pending verification.
	Readmitted
	// Spliced means the structural tier declined but the generic splice
	// tier absorbed the batch by local bypass surgery on the live ring
	// (chain patchers only); the returned ring replaces the old one
	// pending verification.
	Spliced
)

// String renders the outcome for stats and journal events.
func (o Outcome) String() string {
	switch o {
	case Noop:
		return "noop"
	case Patched:
		return "patched"
	case Reordered:
		return "reordered"
	case Readmitted:
		return "readmitted"
	case Spliced:
		return "spliced"
	}
	return "unsupported"
}

// ParseOutcome inverts String, for journal and stats consumers that
// round-trip outcomes through their text form.
func ParseOutcome(s string) (Outcome, bool) {
	switch s {
	case "unsupported":
		return Unsupported, true
	case "noop":
		return Noop, true
	case "patched":
		return Patched, true
	case "reordered":
		return Reordered, true
	case "readmitted":
		return Readmitted, true
	case "spliced":
		return Spliced, true
	}
	return Unsupported, false
}

// Patcher maintains the incremental-repair state of one ring.
type Patcher interface {
	// Embed performs a full re-embed for the cumulative fault set f,
	// resetting the patcher's incremental state.  It is also the initial
	// embedding of a session.
	Embed(f topology.FaultSet) ([]int, *topology.EmbedInfo, error)
	// Patch attempts to absorb the newly added faults (on top of every
	// fault previously passed to Embed/Patch) by local repair.  On
	// Patched or Reordered the returned ring is the candidate
	// replacement; on Noop the ring is unchanged; on Unsupported the
	// caller must re-Embed.
	Patch(add topology.FaultSet) ([]int, Outcome)
	// Unpatch attempts to absorb a batch of healed components — faults
	// leaving the cumulative set — by local repair, growing the ring
	// back toward the fault-free embedding.  On Readmitted the returned
	// ring is the candidate replacement; on Noop the ring is unchanged
	// (the heal was pure bookkeeping); on Unsupported the caller must
	// re-Embed with the reduced fault set.
	Unpatch(remove topology.FaultSet) ([]int, Outcome)
	// Snapshot serializes the incremental state needed to resume
	// patching after a restart (the session persists ring and faults
	// itself).  A nil snapshot is valid: Restore(nil, …) rebuilds only
	// what (ring, faults) alone support — the chain patcher can still
	// splice via its lazily resynced bypass tier, while structural
	// surgery declines until the next Embed.
	Snapshot() ([]byte, error)
	// Restore reinstates a snapshot taken at the given ring and
	// cumulative fault set.
	Restore(state []byte, ring []int, f topology.FaultSet) error
}

// For returns the patcher suited to net: the FFC-structural/splice
// repair chain for De Bruijn networks, the generic splice patcher alone
// otherwise.
func For(net topology.RingEmbedder) Patcher {
	if db, ok := net.(*topology.DeBruijn); ok {
		return newChainPatcher(db)
	}
	return &genericPatcher{net: net}
}

// genericPatcher repairs rings on any unit-dilation topology by cutting
// out the faulted components and re-splicing the surviving arcs.  Bypass
// paths run through off-ring survivors only, so it shines once faults
// have already shrunk the ring below the network size and degrades to
// Unsupported (→ full re-embed) on a fresh Hamiltonian ring whose cut
// ends are not directly linked.
type genericPatcher struct {
	net    topology.RingEmbedder
	valid  bool
	ring   []int
	faults topology.FaultSet

	// touched counts the splice operations of the most recent
	// Patch/Unpatch (arcs reconnected, processors re-inserted); trace
	// holds that call's TierStep for LastTrace.
	touched int
	trace   []TierStep

	// Pooled dense scratch, reused across every Patch/Unpatch/bypass so
	// a steady-state splice event allocates only the ring copy it hands
	// back.  All sets are epoch-stamped (O(1) reset, internal/dense).
	//
	// onRing is *incremental* ring-membership state: it stays valid
	// across heal events (insertAfter registers new members) and is only
	// rebuilt — lazily, via ensureOnRing — after a ring replacement that
	// bypassed it (onRingOK false).  A successful patch refreshes it for
	// free by swapping in the used set, whose members are by then exactly
	// the new ring.
	used     dense.Set  // patch: surviving arcs + committed bypass interiors
	onRing   dense.Set  // incremental ring membership (see onRingOK)
	onRingOK bool       // onRing matches p.ring
	prev     dense.Ints // bypass BFS parent pointers, epoch-reset per attempt
	frontier []int32    // bypass BFS frontier double-buffer
	nextF    []int32
	succBuf  []int // topology.Successors scratch
	pathBuf  []int // bypass path reconstruction (returned; valid until next bypass)
	seqBuf   []int // insertHealed splice sequence
	segFlat  []int // surviving arcs, flattened
	segEnds  []int // exclusive end offsets into segFlat, one per arc
	ringNext []int // patch result double-buffer, swapped with ring
}

// LastTrace implements Tracer for the standalone splice patcher.
func (p *genericPatcher) LastTrace() []TierStep { return p.trace }

// traceCall records the single splice-tier step of one Patch/Unpatch.
func (p *genericPatcher) traceCall(o Outcome, start time.Time) {
	p.trace = append(p.trace[:0], TierStep{
		Tier:    "splice",
		Outcome: o,
		Touched: p.touched,
		Elapsed: time.Since(start), //ringlint:allow time trace-only timing; Elapsed is diagnostic, never replayed or hashed
	})
}

// maxBypassLen bounds the length of one bypass path: twice the diameter
// scale log₂(size) covers every adapter in the repo (De Bruijn and Kautz
// diameters are n, the hypercube's is log₂ size, the butterfly's Θ(n)).
func (p *genericPatcher) maxBypassLen() int {
	return 2*bits.Len(uint(p.net.Nodes())) + 2 //ringlint:allow alloc adapter Nodes is a field read on every in-tree topology
}

func (p *genericPatcher) Embed(f topology.FaultSet) ([]int, *topology.EmbedInfo, error) {
	ring, info, err := p.net.EmbedRing(f)
	if err != nil {
		// Nothing was mutated: a rejected fault set (out-of-range
		// coordinates, over-tolerance batch) must not poison a healthy
		// patcher — the previous ring state stays patchable.
		return nil, nil, err
	}
	p.reset(ring, f, info.Dilation)
	return ring, info, nil
}

// reset installs a freshly embedded ring.  Dilation-2 closed walks
// revisit nodes, so splice surgery does not apply to them; the patcher
// stays invalid and every Patch reports Unsupported.
func (p *genericPatcher) reset(ring []int, f topology.FaultSet, dilation int) {
	p.ring = append(p.ring[:0], ring...)
	p.faults = f.Canonical()
	p.valid = dilation <= 1 && len(ring) <= p.net.Nodes()
	p.onRingOK = false
}

// ensureOnRing rebuilds the pooled ring-membership set if (and only if)
// the ring was replaced since it was last valid.  Callers must hold
// p.valid, which guarantees every ring node is in [0, Nodes()).
func (p *genericPatcher) ensureOnRing() {
	if p.onRingOK {
		return
	}
	p.onRing.Reset(p.net.Nodes())
	for _, v := range p.ring {
		p.onRing.Add(v)
	}
	p.onRingOK = true
}

// onRingHas reports ring membership from the pooled incremental set.
// v must be in [0, Nodes()) and the patcher valid — the chain patcher
// range-checks every batch before either tier sees it.
func (p *genericPatcher) onRingHas(v int) bool {
	p.ensureOnRing()
	return p.onRing.Has(v)
}

// genericState persists the one bit of incremental state the session's
// (ring, faults) pair cannot reconstruct: whether the embedding was
// splicable (dilation ≤ 1).  Before this was persisted, Restore trusted
// node distinctness alone, and a restored dilation-2 closed walk with
// coincidentally distinct nodes would have been spliced illegally.
type genericState struct {
	Splicable bool `json:"splicable"`
}

func (p *genericPatcher) Snapshot() ([]byte, error) {
	return json.Marshal(genericState{Splicable: p.valid})
}

func (p *genericPatcher) Restore(state []byte, ring []int, f topology.FaultSet) error {
	dilation := 1
	if len(state) > 0 {
		var st genericState
		if err := json.Unmarshal(state, &st); err != nil {
			return fmt.Errorf("repair: bad splice snapshot: %w", err)
		}
		if !st.Splicable {
			// The snapshot records an unsplicable embedding (a dilation-2
			// closed walk): stay invalid even when the walk's nodes happen
			// to be distinct.
			dilation = 2
		}
	}
	// Journals from before the splicability bit carry no snapshot; for
	// them (state == nil) the distinct-node check below is the only
	// available gate.
	p.reset(ring, f, dilation)
	if p.valid {
		// The distinctness scan doubles as the onRing build.  Restored
		// rings come from journals, so range-check before dense indexing:
		// a corrupt ring must invalidate the patcher, not panic it.
		n := p.net.Nodes()
		p.onRing.Reset(n)
		for _, v := range ring {
			if v < 0 || v >= n || !p.onRing.Add(v) {
				p.valid = false
				break
			}
		}
		p.onRingOK = p.valid
	}
	return nil
}

func (p *genericPatcher) Patch(add topology.FaultSet) ([]int, Outcome) {
	start := time.Now() //ringlint:allow time trace-only timing
	p.touched = 0
	r, o := p.patch(add)
	p.traceCall(o, start)
	return r, o
}

func (p *genericPatcher) patch(add topology.FaultSet) ([]int, Outcome) {
	if !p.valid || len(p.ring) == 0 {
		return nil, Unsupported
	}
	combined := p.faults.Union(add)
	undirected := topology.Undirected(p.net)
	badNode := combined.NodeSet()
	badEdge := combined.EdgeSet()
	edgeCut := func(u, v int) bool {
		if badEdge[topology.Edge{From: u, To: v}] {
			return true
		}
		return undirected && badEdge[topology.Edge{From: v, To: u}]
	}

	k := len(p.ring)
	hit := false
	for i, v := range p.ring {
		if badNode[v] || edgeCut(v, p.ring[(i+1)%k]) {
			hit = true
			break
		}
	}
	if !hit {
		p.faults = combined
		return nil, Noop
	}

	// Cut the ring into surviving arcs, flattened into the pooled
	// segFlat/segEnds pair (segment i is segFlat[segEnds[i-1]:segEnds[i]]).
	// Start the scan just past a severed hop so segments never straddle
	// the wrap-around.
	s := 0
	for i := 0; i < k; i++ {
		prev := p.ring[(i-1+k)%k]
		if badNode[prev] || edgeCut(prev, p.ring[i]) {
			s = i
			break
		}
	}
	p.segFlat = p.segFlat[:0]
	p.segEnds = p.segEnds[:0]
	for j := 0; j < k; j++ {
		v := p.ring[(s+j)%k]
		if badNode[v] {
			p.closeSeg()
			continue
		}
		p.segFlat = append(p.segFlat, v)
		if next := p.ring[(s+j+1)%k]; !badNode[next] && edgeCut(v, next) {
			p.segEnds = append(p.segEnds, len(p.segFlat))
		}
	}
	p.closeSeg()
	nseg := len(p.segEnds)
	if nseg == 0 {
		p.valid = false
		return nil, Unsupported
	}

	// Reconnect consecutive arcs in ring order: a direct surviving link,
	// or a bypass path through fault-free nodes not already in use.
	// bypass never marks candidates itself — only paths actually woven
	// into the ring are committed to used, so a failed attempt for one
	// cut edge cannot shrink the search space of the next.
	p.used.Reset(p.net.Nodes())
	for _, v := range p.segFlat {
		p.used.Add(v)
	}
	newRing := p.ringNext[:0]
	for gi := 0; gi < nseg; gi++ {
		lo := 0
		if gi > 0 {
			lo = p.segEnds[gi-1]
		}
		seg := p.segFlat[lo:p.segEnds[gi]]
		newRing = append(newRing, seg...)
		ni := (gi + 1) % nseg
		nlo := 0
		if ni > 0 {
			nlo = p.segEnds[ni-1]
		}
		path, ok := p.bypass(seg[len(seg)-1], p.segFlat[nlo], badNode, edgeCut, &p.used)
		if !ok {
			p.valid = false
			return nil, Unsupported
		}
		p.touched++
		for _, x := range path {
			p.used.Add(x)
		}
		newRing = append(newRing, path...)
	}
	p.ringNext = p.ring
	p.ring = newRing
	// used now holds exactly the new ring's membership (arcs + committed
	// interiors): swap it in as the incremental onRing state for free.
	p.used, p.onRing = p.onRing, p.used
	p.onRingOK = true
	p.faults = combined
	return append([]int(nil), newRing...), Patched
}

// closeSeg ends the currently open arc, if any, at len(segFlat).
//
//ringlint:noalloc
func (p *genericPatcher) closeSeg() {
	if n := len(p.segFlat); n > 0 && (len(p.segEnds) == 0 || p.segEnds[len(p.segEnds)-1] < n) {
		p.segEnds = append(p.segEnds, n) //ringlint:allow alloc pooled segment index; growth amortizes to zero
	}
}

// Unpatch absorbs healed components.  Healed links are pure
// bookkeeping (the ring never traverses a faulty wire, so nothing needs
// rerouting — but dropping them from the fault set lets later bypasses
// use the restored wire again).  Each healed processor is re-inserted
// between a pair of adjacent ring neighbors: directly when it links
// both — reversing the cut-and-bypass of the original fault — or, the
// multi-hop heal, via a bounded-BFS bypass path through off-ring
// fault-free survivors on one side, which pulls those survivors back
// onto the ring with it.  A healed node with no insertion slot at all
// stays off-ring (the ring remains valid; a later Embed re-balances),
// so Unpatch never reports Unsupported for slotless heals alone.
func (p *genericPatcher) Unpatch(remove topology.FaultSet) ([]int, Outcome) {
	start := time.Now() //ringlint:allow time trace-only timing
	p.touched = 0
	r, o := p.unpatch(remove)
	p.traceCall(o, start)
	return r, o
}

func (p *genericPatcher) unpatch(remove topology.FaultSet) ([]int, Outcome) {
	if !p.valid || len(p.ring) == 0 {
		return nil, Unsupported
	}
	remove = remove.Canonical()
	reduced := p.faults.Minus(remove)
	healed := p.faults.Minus(reduced) // the part of remove actually present
	p.faults = reduced
	if len(healed.Nodes) == 0 {
		return nil, Noop
	}

	undirected := topology.Undirected(p.net)
	badEdge := reduced.EdgeSet()
	edgeCut := func(u, v int) bool {
		if badEdge[topology.Edge{From: u, To: v}] {
			return true
		}
		return undirected && badEdge[topology.Edge{From: v, To: u}]
	}
	badNode := reduced.NodeSet()
	// The pooled membership set survives from the last event when the
	// ring has not been replaced since; otherwise one rebuild here.
	p.ensureOnRing()

	n := p.net.Nodes()
	changed := false
	for _, v := range healed.Nodes {
		if v < 0 || v >= n || p.onRing.Has(v) {
			// Out-of-range heals can never join a ring (defensive: the
			// standalone patcher accepts unvalidated batches); on-ring
			// heals are defensive too — a faulty node is never on the ring.
			continue
		}
		if p.insertHealed(v, badNode, edgeCut) {
			changed = true
			p.touched++
		}
	}
	if !changed {
		return nil, Noop
	}
	return append([]int(nil), p.ring...), Readmitted
}

// insertHealed re-inserts one healed processor v into the ring.  The
// direct slot — a ring hop u→w with surviving wires u→v→w — is the
// exact inverse of a node-fault splice and is tried first.  Failing
// that, the multi-hop heal opens one ring hop u→w into u → v → … → w
// (or u → … → v → w) with the longer side running through off-ring
// fault-free survivors found by the same bounded BFS the fault
// direction uses for bypasses.
func (p *genericPatcher) insertHealed(v int, badNode map[int]bool, edgeCut func(int, int) bool) bool {
	k := len(p.ring)
	for i, u := range p.ring {
		w := p.ring[(i+1)%k]
		if p.net.IsEdge(u, v) && p.net.IsEdge(v, w) && !edgeCut(u, v) && !edgeCut(v, w) {
			p.seqBuf = append(p.seqBuf[:0], v)
			p.insertAfter(i, p.seqBuf)
			return true
		}
	}
	for i, u := range p.ring {
		w := p.ring[(i+1)%k]
		if p.net.IsEdge(u, v) && !edgeCut(u, v) {
			if path, ok := p.bypass(v, w, badNode, edgeCut, &p.onRing); ok {
				p.seqBuf = append(p.seqBuf[:0], v)
				p.seqBuf = append(p.seqBuf, path...)
				p.insertAfter(i, p.seqBuf)
				return true
			}
		}
		if p.net.IsEdge(v, w) && !edgeCut(v, w) {
			if path, ok := p.bypass(u, v, badNode, edgeCut, &p.onRing); ok {
				p.seqBuf = append(p.seqBuf[:0], path...)
				p.seqBuf = append(p.seqBuf, v)
				p.insertAfter(i, p.seqBuf)
				return true
			}
		}
	}
	return false
}

// insertAfter splices seq into the ring after position i, registering
// the new members in the incremental onRing set (which thereby stays
// valid across consecutive heal events).
//
//ringlint:noalloc
func (p *genericPatcher) insertAfter(i int, seq []int) {
	old := len(p.ring)
	p.ring = append(p.ring, seq...) //ringlint:allow alloc pooled ring buffer; bounded by node count
	copy(p.ring[i+1+len(seq):], p.ring[i+1:old])
	copy(p.ring[i+1:i+1+len(seq)], seq)
	for _, x := range seq {
		p.onRing.Add(x)
	}
}

// bypass finds a path from tail to head whose interior avoids faulty and
// already-used nodes, shorter than maxBypassLen hops.  It returns the
// interior nodes (empty for a direct link), valid only until the next
// bypass call.  The search runs entirely on pooled epoch-stamped
// scratch, reset per attempt, and never mutates used — the caller
// commits accepted paths, so one attempt's candidate marks cannot leak
// into the next.
//
//ringlint:noalloc
func (p *genericPatcher) bypass(tail, head int, badNode map[int]bool, edgeCut func(int, int) bool, used *dense.Set) ([]int, bool) {
	if tail == head {
		// A single one-node segment closing on itself needs a self-loop,
		// which no adapter's verification accepts as a ring.
		return nil, false
	}
	//ringlint:allow alloc adapter IsEdge and the edgeCut closure are arithmetic on every in-tree topology
	if p.net.IsEdge(tail, head) && !edgeCut(tail, head) {
		return nil, true
	}
	limit := p.maxBypassLen()
	p.prev.Reset(p.net.Nodes()) //ringlint:allow alloc adapter Nodes is a field read on every in-tree topology
	p.prev.Set(tail, -1)
	p.frontier = append(p.frontier[:0], int32(tail)) //ringlint:allow alloc pooled BFS frontier; growth amortizes to zero
	for depth := 0; depth < limit && len(p.frontier) > 0; depth++ {
		p.nextF = p.nextF[:0]
		for _, u32 := range p.frontier {
			u := int(u32)
			p.succBuf = p.net.Successors(u, p.succBuf) //ringlint:allow alloc adapter contract: Successors fills the caller's buffer in place
			for _, w := range p.succBuf {
				if w == u || edgeCut(u, w) { //ringlint:allow alloc edgeCut closures are arithmetic over captured fault sets
					continue
				}
				if w == head {
					if u == tail {
						continue // direct link already rejected (faulty)
					}
					// Reconstruct the interior path u … tail, reversed.
					path := p.pathBuf[:0]
					for x := u; x != tail; x = int(p.prev.At(x)) {
						path = append(path, x) //ringlint:allow alloc pooled path scratch; growth amortizes to zero
					}
					for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
						path[i], path[j] = path[j], path[i]
					}
					p.pathBuf = path
					return path, true
				}
				if badNode[w] || used.Has(w) || p.prev.Has(w) {
					continue
				}
				p.prev.Set(w, int32(u))
				p.nextF = append(p.nextF, int32(w)) //ringlint:allow alloc pooled BFS frontier; growth amortizes to zero
			}
		}
		p.frontier, p.nextF = p.nextF, p.frontier
	}
	return nil, false
}
