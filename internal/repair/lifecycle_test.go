package repair

import (
	"math/rand"
	"testing"

	"debruijnring/topology"
)

// TestOutcomeStringRoundTrip pins String/ParseOutcome as inverses for
// every outcome, including the unpatch- and splice-era ones.
func TestOutcomeStringRoundTrip(t *testing.T) {
	outcomes := []Outcome{Unsupported, Noop, Patched, Reordered, Readmitted, Spliced}
	seen := map[string]bool{}
	for _, o := range outcomes {
		s := o.String()
		if seen[s] {
			t.Fatalf("duplicate outcome string %q", s)
		}
		seen[s] = true
		got, ok := ParseOutcome(s)
		if !ok || got != o {
			t.Errorf("ParseOutcome(%q) = %v, %v; want %v, true", s, got, ok, o)
		}
	}
	if _, ok := ParseOutcome("gibberish"); ok {
		t.Error("ParseOutcome accepted gibberish")
	}
	if Outcome(99).String() != "unsupported" {
		t.Error("unknown outcomes should render as unsupported")
	}
}

// TestFFCPatcherUnpatchReadmits streams a fault in and back out: the
// heal must be absorbed locally and restore the full dⁿ ring.
func TestFFCPatcherUnpatchReadmits(t *testing.T) {
	for _, tc := range []struct{ d, n int }{{2, 8}, {3, 5}, {4, 4}} {
		net, err := topology.NewDeBruijn(tc.d, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		p := For(net)
		ring, _, err := p.Embed(topology.FaultSet{})
		if err != nil {
			t.Fatal(err)
		}
		x := ring[len(ring)/3]
		faults := topology.NodeFaults(x)
		if _, o := p.Patch(faults); o != Patched {
			t.Fatalf("B(%d,%d): fault at %d: outcome %v, want Patched", tc.d, tc.n, x, o)
		}
		healed, o := p.Unpatch(faults)
		if o != Readmitted {
			t.Fatalf("B(%d,%d): heal of %d: outcome %v, want Readmitted", tc.d, tc.n, x, o)
		}
		if len(healed) != net.Nodes() {
			t.Errorf("B(%d,%d): healed ring has %d of %d nodes", tc.d, tc.n, len(healed), net.Nodes())
		}
		if !topology.VerifyRing(net, healed, topology.FaultSet{}) {
			t.Errorf("B(%d,%d): healed ring fails verification", tc.d, tc.n)
		}
	}
}

// TestFFCPatcherUnpatchPartialNecklace heals one processor of a
// multi-fault necklace: the necklace stays out until its last fault
// heals.
func TestFFCPatcherUnpatchPartialNecklace(t *testing.T) {
	net, _ := topology.NewDeBruijn(2, 6)
	g := net.Graph()
	// Find a non-loop node whose necklace removal patches locally (some
	// removals legitimately fall back, e.g. ones orphaning a period-1
	// neighbor).
	var p Patcher
	var x, rot int
	patched := false
	for cand := 1; cand < net.Nodes() && !patched; cand++ {
		if g.RotL(cand) == cand {
			continue
		}
		p = For(net)
		if _, _, err := p.Embed(topology.FaultSet{}); err != nil {
			t.Fatal(err)
		}
		x, rot = cand, g.RotL(cand)
		// Two faults on the same necklace.
		if _, o := p.Patch(topology.NodeFaults(x, rot)); o == Patched {
			patched = true
		}
	}
	if !patched {
		t.Fatal("no candidate necklace patched locally")
	}
	// Healing only one keeps the necklace out (bookkeeping noop).
	if _, o := p.Unpatch(topology.NodeFaults(x)); o != Noop {
		t.Fatalf("partial heal: outcome %v, want Noop", o)
	}
	// Healing the other re-admits it.
	healed, o := p.Unpatch(topology.NodeFaults(rot))
	if o != Readmitted {
		t.Fatalf("final heal: outcome %v, want Readmitted", o)
	}
	if len(healed) != net.Nodes() {
		t.Errorf("healed ring has %d of %d nodes", len(healed), net.Nodes())
	}
	// Healing a fault that was never injected is a noop.
	if _, o := p.Unpatch(topology.NodeFaults(1, 2, 3)); o != Noop {
		t.Errorf("heal of non-faults: outcome %v, want Noop", o)
	}
}

// TestFFCPatcherAbsorbsOnRingLink pins the tentpole case: a faulted
// ring link between healthy endpoints is absorbed by star reordering
// (or star re-hanging) instead of a full re-embed.
func TestFFCPatcherAbsorbsOnRingLink(t *testing.T) {
	for _, tc := range []struct{ d, n int }{{2, 8}, {2, 10}, {3, 5}, {4, 4}} {
		net, err := topology.NewDeBruijn(tc.d, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		p := For(net)
		ring, _, err := p.Embed(topology.FaultSet{})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(100*tc.d + tc.n)))
		var faults topology.FaultSet
		absorbed, reembeds := 0, 0
		for i := 0; i < 12; i++ {
			j := rng.Intn(len(ring))
			e := topology.Edge{From: ring[j], To: ring[(j+1)%len(ring)]}
			add := topology.EdgeFaults(e)
			faults = faults.Union(add)
			r, o := p.Patch(add)
			switch o {
			case Reordered:
				absorbed++
				ring = r
			case Noop:
				t.Fatalf("B(%d,%d) link %d: on-ring fault reported Noop", tc.d, tc.n, i)
			case Unsupported:
				reembeds++
				ring, _, err = p.Embed(faults)
				if err != nil {
					// Over the absorbable tolerance for this instance;
					// stop the stream here.
					i = 12
					ring = nil
				}
			}
			if ring == nil {
				break
			}
			if !topology.VerifyRing(net, ring, faults) {
				t.Fatalf("B(%d,%d) link %d (outcome %v): ring fails verification", tc.d, tc.n, i, o)
			}
			if len(ring) != net.Nodes() {
				t.Fatalf("B(%d,%d) link %d: link absorption dropped nodes: %d of %d",
					tc.d, tc.n, i, len(ring), net.Nodes())
			}
		}
		if absorbed == 0 {
			t.Errorf("B(%d,%d): no on-ring link fault was absorbed locally (%d re-embeds)",
				tc.d, tc.n, reembeds)
		}
		t.Logf("B(%d,%d): %d absorbed, %d re-embeds", tc.d, tc.n, absorbed, reembeds)
	}
}

// TestFFCPatcherOffRingLinkStaysNoop: a link the ring does not traverse
// is bookkeeping only.
func TestFFCPatcherOffRingLinkStaysNoop(t *testing.T) {
	net, _ := topology.NewDeBruijn(2, 6)
	p := For(net)
	ring, _, err := p.Embed(topology.FaultSet{})
	if err != nil {
		t.Fatal(err)
	}
	succ := make(map[int]int, len(ring))
	for i, v := range ring {
		succ[v] = ring[(i+1)%len(ring)]
	}
	var off topology.Edge
	found := false
	var buf []int
	for u := 0; u < net.Nodes() && !found; u++ {
		for _, w := range net.Successors(u, buf) {
			if w != u && succ[u] != w {
				off = topology.Edge{From: u, To: w}
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("no off-ring link found")
	}
	if _, o := p.Patch(topology.EdgeFaults(off)); o != Noop {
		t.Errorf("off-ring link fault: outcome %v, want Noop", o)
	}
	// Healing it back is a noop too.
	if _, o := p.Unpatch(topology.EdgeFaults(off)); o != Noop {
		t.Errorf("off-ring link heal: outcome %v, want Noop", o)
	}
}

// TestFFCPatcherMixedLifecycleRandom drives seeded random add/heal/link
// schedules at the patcher level, checking every intermediate ring and
// the dⁿ − nf bound under the CURRENT (shrinkable) fault count.
func TestFFCPatcherMixedLifecycleRandom(t *testing.T) {
	cases := []struct{ d, n int }{{2, 8}, {3, 5}, {4, 4}}
	for _, tc := range cases {
		net, err := topology.NewDeBruijn(tc.d, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		p := For(net)
		ring, _, err := p.Embed(topology.FaultSet{})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(31*tc.d + tc.n)))
		var faults topology.FaultSet
		prev := faults
		spliced := false
		var buf []int
		for step := 0; step < 60; step++ {
			var add, remove topology.FaultSet
			switch k := rng.Intn(4); {
			case k == 0 && len(faults.Nodes) > 0:
				remove = topology.NodeFaults(faults.Nodes[rng.Intn(len(faults.Nodes))])
			case k == 1 && len(faults.Edges) > 0:
				remove = topology.EdgeFaults(faults.Edges[rng.Intn(len(faults.Edges))])
			case k == 2 && len(faults.Nodes) < tc.n:
				u := rng.Intn(net.Nodes())
				buf = net.Successors(u, buf)
				add = topology.EdgeFaults(topology.Edge{From: u, To: buf[rng.Intn(len(buf))]})
			case len(faults.Nodes) < tc.n:
				add = topology.NodeFaults(rng.Intn(net.Nodes()))
			default:
				continue
			}
			var r []int
			var o Outcome
			prev = faults
			if !remove.IsEmpty() {
				faults = faults.Minus(remove)
				r, o = p.Unpatch(remove)
			} else {
				faults = faults.Union(add)
				r, o = p.Patch(add)
			}
			switch o {
			case Patched, Reordered, Readmitted, Spliced:
				if o == Spliced {
					spliced = true
				}
				ring = r
			case Noop:
			case Unsupported:
				ring, _, err = p.Embed(faults)
				if err != nil {
					// Best-effort mixed embedding can reject a batch (a
					// faulty wire no reorder avoids); mirror the session:
					// keep the previous state and carry on.
					faults = prev
					ring, _, err = p.Embed(faults)
					if err != nil {
						t.Fatalf("B(%d,%d) step %d: re-embed of previous state: %v", tc.d, tc.n, step, err)
					}
				}
				spliced = false // the FFC tier re-adopted the ring
			}
			if !topology.VerifyRing(net, ring, faults) {
				t.Fatalf("B(%d,%d) step %d (outcome %v): ring fails verification", tc.d, tc.n, step, o)
			}
			if bound := net.Nodes() - tc.n*len(faults.Nodes); len(ring) < bound && !spliced {
				// The paper guarantees dⁿ − nf only for f ≤ d−2; beyond
				// it the survivor necklace graph can disconnect.  The
				// invariant that always holds (until the splice tier has
				// intentionally departed from the FFC shape — splice rings
				// keep necklace-mates the cold embed drops) is equivalence
				// with a cold embed of the same fault set.
				cold, _, coldErr := For(net).Embed(faults)
				if coldErr != nil || len(cold) != len(ring) {
					t.Fatalf("B(%d,%d) step %d: ring length %d below bound %d and != cold embed (%d, %v)",
						tc.d, tc.n, step, len(ring), bound, len(cold), coldErr)
				}
			}
		}
	}
}
