package repair

import (
	"math/rand"
	"testing"

	"debruijnring/topology"
)

// TestFFCPatcherIncrementalNodeFaults streams random node faults one at
// a time into the structural patcher on several De Bruijn instances and
// checks every patched ring verifies, respects the dⁿ − nf bound, and
// that most events are absorbed locally.
func TestFFCPatcherIncrementalNodeFaults(t *testing.T) {
	cases := []struct{ d, n, faults int }{
		{2, 8, 8},
		{2, 10, 10},
		{3, 5, 5},
		{4, 4, 4},
	}
	for _, tc := range cases {
		net, err := topology.NewDeBruijn(tc.d, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		p := newFFCPatcher(net) // the structural tier in isolation
		ring, info, err := p.Embed(topology.FaultSet{})
		if err != nil {
			t.Fatalf("B(%d,%d): initial embed: %v", tc.d, tc.n, err)
		}
		if len(ring) != net.Nodes() {
			t.Fatalf("B(%d,%d): fault-free ring has %d of %d nodes", tc.d, tc.n, len(ring), net.Nodes())
		}
		_ = info

		rng := rand.New(rand.NewSource(int64(7*tc.d + tc.n)))
		var faults topology.FaultSet
		patched, reembeds := 0, 0
		for i := 0; i < tc.faults; i++ {
			x := rng.Intn(net.Nodes())
			add := topology.NodeFaults(x)
			faults = faults.Union(add)
			newRing, outcome := p.Patch(add)
			switch outcome {
			case Patched:
				patched++
				ring = newRing
			case Noop:
				// ring unchanged
			case Unsupported:
				reembeds++
				ring, _, err = p.Embed(faults)
				if err != nil {
					t.Fatalf("B(%d,%d) fault %d: fallback embed: %v", tc.d, tc.n, i, err)
				}
			}
			if !topology.VerifyRing(net, ring, faults) {
				t.Fatalf("B(%d,%d) fault %d (node %d, outcome %v): ring fails verification",
					tc.d, tc.n, i, x, outcome)
			}
			if bound := net.Nodes() - tc.n*len(faults.Canonical().Nodes); len(ring) < bound {
				t.Fatalf("B(%d,%d) fault %d: ring length %d below bound %d",
					tc.d, tc.n, i, len(ring), bound)
			}
		}
		if patched == 0 {
			t.Errorf("B(%d,%d): no fault was absorbed locally (%d re-embeds)", tc.d, tc.n, reembeds)
		}
	}
}

// TestFFCPatcherDuplicateAndOffComponentFaults checks the Noop paths: a
// fault on an already-faulty necklace and a fault outside the embedded
// component leave the ring untouched.
func TestFFCPatcherDuplicateAndOffComponentFaults(t *testing.T) {
	net, _ := topology.NewDeBruijn(2, 6)
	p := newFFCPatcher(net)
	ring, _, err := p.Embed(topology.NodeFaults(5))
	if err != nil {
		t.Fatal(err)
	}
	// Another node of necklace(5) — 5 = 000101 rotates through 10 (001010).
	g := net.Graph()
	rot := g.RotL(5)
	if _, outcome := p.Patch(topology.NodeFaults(rot)); outcome != Noop {
		t.Errorf("fault on already-faulty necklace: outcome %v, want Noop", outcome)
	}
	if _, outcome := p.Patch(topology.NodeFaults(5)); outcome != Noop {
		t.Errorf("duplicate fault: outcome %v, want Noop", outcome)
	}
	// An off-ring edge fault is absorbed; the ring it traverses is not.
	var off topology.Edge
	onRing := make(map[int]int, len(ring))
	for i, v := range ring {
		onRing[v] = ring[(i+1)%len(ring)]
	}
	found := false
	for u := 0; u < net.Nodes() && !found; u++ {
		var buf []int
		for _, w := range net.Successors(u, buf) {
			if w != u && onRing[u] != w {
				off = topology.Edge{From: u, To: w}
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("no off-ring edge found")
	}
	if _, outcome := p.Patch(topology.EdgeFaults(off)); outcome != Noop {
		t.Errorf("off-ring edge fault: outcome %v, want Noop", outcome)
	}
	if _, outcome := p.Patch(topology.EdgeFaults(topology.Edge{From: ring[0], To: onRing[ring[0]]})); outcome != Unsupported {
		t.Errorf("on-ring edge fault: want Unsupported (re-embed)")
	}
}

// TestFFCPatcherRootFaultFallsBack removes the distinguished node's
// necklace, which must force a full re-embed.
func TestFFCPatcherRootFaultFallsBack(t *testing.T) {
	net, _ := topology.NewDeBruijn(2, 6)
	p := newFFCPatcher(net)
	ring, _, err := p.Embed(topology.FaultSet{})
	if err != nil {
		t.Fatal(err)
	}
	if ring[0] != 0 {
		t.Fatalf("fault-free ring roots at %d, want 0", ring[0])
	}
	if _, outcome := p.Patch(topology.NodeFaults(0)); outcome != Unsupported {
		t.Errorf("root fault: outcome %v, want Unsupported", outcome)
	}
	// The fallback re-embed restores patchability.
	ring, _, err = p.Embed(topology.NodeFaults(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, outcome := p.Patch(topology.NodeFaults(ring[3])); outcome != Patched {
		t.Errorf("post-fallback patch: outcome %v, want Patched", outcome)
	}
}

// TestFFCPatcherSnapshotRestore round-trips the structural state through
// a snapshot and checks the restored patcher keeps patching identically.
func TestFFCPatcherSnapshotRestore(t *testing.T) {
	net, _ := topology.NewDeBruijn(2, 8)
	p := For(net)
	ring, _, err := p.Embed(topology.FaultSet{})
	if err != nil {
		t.Fatal(err)
	}
	faults := topology.FaultSet{}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 4; i++ {
		add := topology.NodeFaults(rng.Intn(net.Nodes()))
		faults = faults.Union(add)
		if r, o := p.Patch(add); o == Patched {
			ring = r
		} else if o == Unsupported {
			ring, _, err = p.Embed(faults)
			if err != nil {
				t.Fatal(err)
			}
		}
	}

	state, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(state) == 0 {
		t.Fatal("valid patcher produced an empty snapshot")
	}
	q := For(net)
	if err := q.Restore(state, ring, faults); err != nil {
		t.Fatalf("Restore: %v", err)
	}

	// Both patchers absorb the same subsequent fault identically.
	add := topology.NodeFaults(ring[len(ring)/2])
	faults = faults.Union(add)
	r1, o1 := p.Patch(add)
	r2, o2 := q.Patch(add)
	if o1 != o2 {
		t.Fatalf("outcomes diverge after restore: %v vs %v", o1, o2)
	}
	if o1 == Patched {
		if !equalInts(r1, r2) {
			t.Error("patched rings diverge after restore")
		}
		if !topology.VerifyRing(net, r2, faults) {
			t.Error("restored patcher produced an invalid ring")
		}
	}

	// A corrupted ring is rejected.
	bad := append([]int(nil), ring...)
	bad[0], bad[1] = bad[1], bad[0]
	if err := For(net).Restore(state, bad, faults); err == nil {
		t.Error("Restore accepted a snapshot that does not reproduce the ring")
	}
}

// TestGenericPatcherBypassSplice pins the splice machinery on Q₃ with a
// hand-built ring that leaves off-ring spares (the repo's embedders
// cover every survivor, so spares only arise from shrunk or restored
// rings): cutting node 5 from the 6-ring 0-1-3-7-5-4 must reroute
// 7 → 6 → 4 through the spare 6.
func TestGenericPatcherBypassSplice(t *testing.T) {
	net, err := topology.NewHypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	p := For(net)
	if _, ok := p.(*genericPatcher); !ok {
		t.Fatal("expected the generic patcher for the hypercube")
	}
	ring := []int{0, 1, 3, 7, 5, 4} // spares: 2 and 6
	if err := p.Restore(nil, ring, topology.FaultSet{}); err != nil {
		t.Fatal(err)
	}
	faults := topology.NodeFaults(5)
	got, outcome := p.Patch(faults)
	if outcome != Patched {
		t.Fatalf("outcome %v, want Patched", outcome)
	}
	want := []int{4, 0, 1, 3, 7, 6}
	if !equalInts(got, want) {
		t.Fatalf("patched ring = %v, want %v", got, want)
	}
	if !topology.VerifyRing(net, got, faults) {
		t.Error("patched ring fails verification")
	}

	// Off-ring faults (the unused spare 2) are a Noop.
	if _, o := p.Patch(topology.NodeFaults(2)); o != Noop {
		t.Errorf("off-ring fault: outcome %v, want Noop", o)
	}
}

// TestGenericPatcherEdgeFaultBypass cuts a link the ring uses; the
// splice must reroute through the two spares and avoid the failed wire
// in both orientations (the hypercube is undirected).
func TestGenericPatcherEdgeFaultBypass(t *testing.T) {
	net, err := topology.NewHypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	p := For(net)
	ring := []int{0, 1, 3, 7, 5, 4} // spares: 2 and 6
	if err := p.Restore(nil, ring, topology.FaultSet{}); err != nil {
		t.Fatal(err)
	}
	faults := topology.EdgeFaults(topology.Edge{From: 3, To: 7})
	got, outcome := p.Patch(faults)
	if outcome != Patched {
		t.Fatalf("outcome %v, want Patched", outcome)
	}
	if !topology.VerifyRing(net, got, faults) {
		t.Fatalf("patched ring %v fails verification", got)
	}
	if len(got) != 8 {
		t.Errorf("bypass ring has %d nodes, want 8 (detour through both spares)", len(got))
	}
	// The reverse orientation must be avoided too.
	if !topology.VerifyRing(net, got, topology.EdgeFaults(topology.Edge{From: 7, To: 3})) {
		t.Error("patched ring uses the failed wire in reverse")
	}
}

// TestGenericPatcherFallbackOnHamiltonian streams node faults onto a
// fresh Hamiltonian hypercube ring: with no spares the patcher must
// decline cleanly (never produce an invalid ring) and recover through
// Embed fallbacks.
func TestGenericPatcherFallbackOnHamiltonian(t *testing.T) {
	net, err := topology.NewHypercube(6)
	if err != nil {
		t.Fatal(err)
	}
	p := For(net)
	ring, _, err := p.Embed(topology.FaultSet{})
	if err != nil {
		t.Fatal(err)
	}
	faults := topology.FaultSet{}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 4; i++ { // the hypercube construction tolerates n−2 faults
		x := ring[rng.Intn(len(ring))]
		add := topology.NodeFaults(x)
		faults = faults.Union(add)
		r, outcome := p.Patch(add)
		switch outcome {
		case Patched:
			ring = r
		case Noop:
		case Unsupported:
			ring, _, err = p.Embed(faults)
			if err != nil {
				t.Fatalf("fault %d: fallback embed: %v", i, err)
			}
		}
		if !topology.VerifyRing(net, ring, faults) {
			t.Fatalf("fault %d (node %d, outcome %v): ring fails verification", i, x, outcome)
		}
	}
}

// TestPatcherSelection pins the For dispatch.
func TestPatcherSelection(t *testing.T) {
	db, _ := topology.NewDeBruijn(2, 4)
	if _, ok := For(db).(*chainPatcher); !ok {
		t.Error("De Bruijn did not get the structural/splice repair chain")
	}
	se, err := topology.NewShuffleExchange(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := For(se)
	if _, ok := p.(*genericPatcher); !ok {
		t.Error("shuffle-exchange did not get the generic patcher")
	}
	// Dilation-2 closed walks are not splicable: every patch re-embeds.
	if _, _, err := p.Embed(topology.FaultSet{}); err != nil {
		t.Fatal(err)
	}
	if _, o := p.Patch(topology.NodeFaults(1)); o != Unsupported {
		t.Errorf("dilation-2 patch: outcome %v, want Unsupported", o)
	}
}
