package repair

import (
	"bytes"
	"testing"

	"debruijnring/topology"
)

// TestChainSpliceOnRootFault pins the tentpole case: a fault on the
// distinguished node's necklace — which the FFC tier always declines —
// is absorbed by the splice tier cutting the node out of the live ring,
// instead of forcing a cold re-embed.  The heal direction re-inserts it
// through the splice tier too, and a later Embed hands the ring back to
// the FFC tier.
func TestChainSpliceOnRootFault(t *testing.T) {
	for _, tc := range []struct{ d, n int }{{2, 8}, {3, 5}, {4, 4}} {
		net, err := topology.NewDeBruijn(tc.d, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		p := For(net)
		ring, _, err := p.Embed(topology.FaultSet{})
		if err != nil {
			t.Fatal(err)
		}
		root := ring[0]
		faults := topology.NodeFaults(root)
		r, o := p.Patch(faults)
		if o != Spliced {
			t.Fatalf("B(%d,%d): root fault outcome %v, want Spliced", tc.d, tc.n, o)
		}
		if !topology.VerifyRing(net, r, faults) {
			t.Fatalf("B(%d,%d): spliced ring fails verification", tc.d, tc.n)
		}
		if bound := net.Nodes() - tc.n; len(r) < bound {
			t.Fatalf("B(%d,%d): spliced ring %d below dⁿ−n = %d", tc.d, tc.n, len(r), bound)
		}

		// Heal: the splice tier owns the ring now, so the re-insertion
		// runs there as well.
		r, o = p.Unpatch(faults)
		if o != Spliced {
			t.Fatalf("B(%d,%d): root heal outcome %v, want Spliced", tc.d, tc.n, o)
		}
		if len(r) != net.Nodes() || !topology.VerifyRing(net, r, topology.FaultSet{}) {
			t.Fatalf("B(%d,%d): healed ring has %d of %d nodes or fails verification",
				tc.d, tc.n, len(r), net.Nodes())
		}

		// A successful Embed re-synchronizes the FFC tier: the next
		// ordinary fault patches structurally again.
		ring, _, err = p.Embed(topology.FaultSet{})
		if err != nil {
			t.Fatal(err)
		}
		if _, o := p.Patch(topology.NodeFaults(ring[len(ring)/2])); o != Patched {
			t.Errorf("B(%d,%d): post-embed patch outcome %v, want Patched (FFC re-adopted)", tc.d, tc.n, o)
		}
	}
}

// TestChainDeclinesToReembedWhenSpliceExhausted walks the full ladder:
// after a root splice on an otherwise fault-free ring there are no
// off-ring spares, so a second interior cut deterministically declines
// both tiers (FFC stale, no bypass material) and the caller's Embed
// re-adopts the ring for the FFC tier.
func TestChainDeclinesToReembedWhenSpliceExhausted(t *testing.T) {
	net, _ := topology.NewDeBruijn(2, 8)
	p := For(net)
	ring, _, err := p.Embed(topology.FaultSet{})
	if err != nil {
		t.Fatal(err)
	}
	faults := topology.NodeFaults(ring[0])
	r, o := p.Patch(faults)
	if o != Spliced {
		t.Fatalf("root fault outcome %v, want Spliced", o)
	}
	add := topology.NodeFaults(r[len(r)/2])
	faults = faults.Union(add)
	if _, o := p.Patch(add); o != Unsupported {
		t.Fatalf("spare-free interior cut outcome %v, want Unsupported (tier 3)", o)
	}
	ring, _, err = p.Embed(faults)
	if err != nil {
		t.Fatal(err)
	}
	if !topology.VerifyRing(net, ring, faults) {
		t.Fatal("re-embedded ring fails verification")
	}
	if _, o := p.Patch(topology.NodeFaults(ring[len(ring)/3])); o != Patched {
		t.Errorf("post-re-embed patch outcome %v, want Patched (FFC re-adopted)", o)
	}
}

// TestChainBadBatchDoesNotPoison is the poisoning regression: an
// out-of-range batch must reject without invalidating, so the very next
// well-formed fault still patches locally instead of re-embedding.
func TestChainBadBatchDoesNotPoison(t *testing.T) {
	net, _ := topology.NewDeBruijn(2, 8)
	for name, p := range map[string]Patcher{"chain": For(net), "ffc": newFFCPatcher(net)} {
		ring, _, err := p.Embed(topology.FaultSet{})
		if err != nil {
			t.Fatal(err)
		}
		if _, o := p.Patch(topology.NodeFaults(-1)); o != Unsupported {
			t.Fatalf("%s: bad node batch outcome %v, want Unsupported", name, o)
		}
		if _, o := p.Patch(topology.EdgeFaults(topology.Edge{From: 3, To: net.Nodes()})); o != Unsupported {
			t.Fatalf("%s: bad edge batch outcome %v, want Unsupported", name, o)
		}
		if _, o := p.Unpatch(topology.NodeFaults(net.Nodes() + 7)); o != Unsupported && o != Noop {
			t.Fatalf("%s: bad heal batch outcome %v", name, o)
		}
		// A rejected Embed must not poison either.
		if _, _, err := p.Embed(topology.NodeFaults(-5)); err == nil {
			t.Fatalf("%s: Embed accepted an out-of-range fault", name)
		}
		if _, o := p.Patch(topology.NodeFaults(ring[len(ring)/2])); o != Patched {
			t.Errorf("%s: patcher poisoned: post-rejection outcome %v, want Patched", name, o)
		}
	}
}

// TestGenericRestorePersistsSplicability is the dilation regression: a
// snapshot of an unsplicable embedding (dilation-2 closed walk) must
// restore unsplicable even when the walk's nodes happen to be distinct.
// Only legacy journals without a snapshot fall back to the distinct-node
// heuristic.
func TestGenericRestorePersistsSplicability(t *testing.T) {
	net, err := topology.NewHypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	ring := []int{0, 1, 3, 2} // distinct nodes: the heuristic alone would splice it
	p := &genericPatcher{net: net}
	p.reset(ring, topology.FaultSet{}, 2) // a dilation-2 embedding
	state, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(state) == 0 || !bytes.Contains(state, []byte("splicable")) {
		t.Fatalf("snapshot %q does not persist splicability", state)
	}

	q := &genericPatcher{net: net}
	if err := q.Restore(state, ring, topology.FaultSet{}); err != nil {
		t.Fatal(err)
	}
	if _, o := q.Patch(topology.NodeFaults(1)); o != Unsupported {
		t.Errorf("restored dilation-2 walk was spliced: outcome %v, want Unsupported", o)
	}

	// The legacy path (no snapshot) still restores splicable rings.
	q2 := &genericPatcher{net: net}
	if err := q2.Restore(nil, ring, topology.FaultSet{}); err != nil {
		t.Fatal(err)
	}
	if _, o := q2.Patch(topology.NodeFaults(1)); o != Patched {
		t.Errorf("legacy restore of a splicable ring: outcome %v, want Patched", o)
	}

	// And a splicable snapshot round-trips splicable.
	p2 := &genericPatcher{net: net}
	p2.reset(ring, topology.FaultSet{}, 1)
	st2, _ := p2.Snapshot()
	q3 := &genericPatcher{net: net}
	if err := q3.Restore(st2, ring, topology.FaultSet{}); err != nil {
		t.Fatal(err)
	}
	if _, o := q3.Patch(topology.NodeFaults(1)); o != Patched {
		t.Errorf("splicable snapshot restore: outcome %v, want Patched", o)
	}
}

// TestGenericMultiHopHeal pins the multi-hop bypass heal: a healed
// processor whose only surviving attachment needs an off-ring relay is
// re-inserted via the bounded BFS (the old direct-slot-only heal left
// it off-ring as a Noop).
func TestGenericMultiHopHeal(t *testing.T) {
	net, err := topology.NewHypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	p := &genericPatcher{net: net}
	// 4-ring 0-1-3-2 with node 5 faulty; 4, 6, 7 are off-ring spares.
	if err := p.Restore(nil, []int{0, 1, 3, 2}, topology.NodeFaults(5)); err != nil {
		t.Fatal(err)
	}
	r, o := p.Unpatch(topology.NodeFaults(5))
	if o != Readmitted {
		t.Fatalf("multi-hop heal outcome %v, want Readmitted", o)
	}
	// No hop u→w of the ring has both u–5 and 5–w links, so the heal
	// must have opened a hop into a bypass through a spare (1 → 5 → 7 →
	// 3 is the canonical one).
	if len(r) < 6 {
		t.Fatalf("healed ring %v has %d nodes, want ≥ 6 (v plus its relay)", r, len(r))
	}
	if !topology.VerifyRing(net, r, topology.FaultSet{}) {
		t.Fatalf("healed ring %v fails verification", r)
	}
	found := false
	for _, v := range r {
		if v == 5 {
			found = true
		}
	}
	if !found {
		t.Fatal("healed node 5 still off-ring")
	}
}

// TestChainSnapshotRestoreSpliceTier round-trips a splice-owned chain
// through Snapshot/Restore: the restored patcher must keep resolving in
// the splice tier with identical rings.
func TestChainSnapshotRestoreSpliceTier(t *testing.T) {
	net, _ := topology.NewDeBruijn(2, 8)
	p := For(net)
	ring, _, err := p.Embed(topology.FaultSet{})
	if err != nil {
		t.Fatal(err)
	}
	faults := topology.NodeFaults(ring[0])
	r, o := p.Patch(faults)
	if o != Spliced {
		t.Fatalf("root fault outcome %v, want Spliced", o)
	}
	state, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(state, []byte(`"tier":"splice"`)) {
		t.Fatalf("snapshot %q does not record the splice tier", state)
	}

	q := For(net)
	if err := q.Restore(state, r, faults); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	// The deterministic follow-up both must serve identically from the
	// splice tier: healing the spliced-out root re-inserts it.
	r1, o1 := p.Unpatch(faults)
	r2, o2 := q.Unpatch(faults)
	if o1 != o2 || o1 != Spliced {
		t.Fatalf("outcomes diverge after restore: %v vs %v (want Spliced)", o1, o2)
	}
	if !equalInts(r1, r2) {
		t.Error("spliced rings diverge after restore")
	}
	if len(r2) != net.Nodes() || !topology.VerifyRing(net, r2, topology.FaultSet{}) {
		t.Error("restored chain produced an invalid healed ring")
	}
}

// TestChainSnapshotRestoreFFCTier: an FFC-owned chain snapshot restores
// into the FFC tier (and legacy bare-ffcState snapshots still restore).
func TestChainSnapshotRestoreFFCTier(t *testing.T) {
	net, _ := topology.NewDeBruijn(2, 8)
	p := For(net).(*chainPatcher)
	ring, _, err := p.Embed(topology.FaultSet{})
	if err != nil {
		t.Fatal(err)
	}
	faults := topology.NodeFaults(ring[5])
	r, o := p.Patch(faults)
	if o != Patched {
		t.Fatalf("outcome %v, want Patched", o)
	}
	state, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(state, []byte(`"tier":"ffc"`)) {
		t.Fatalf("snapshot %q does not record the ffc tier", state)
	}
	q := For(net)
	if err := q.Restore(state, r, faults); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if _, o := q.Patch(topology.NodeFaults(r[9])); o != Patched {
		t.Errorf("restored chain patch outcome %v, want Patched", o)
	}

	// Legacy journals persisted the bare FFC state; the chain must still
	// accept it.
	legacy, err := p.ffc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	q2 := For(net)
	if err := q2.Restore(legacy, r, faults); err != nil {
		t.Fatalf("legacy restore: %v", err)
	}
}
