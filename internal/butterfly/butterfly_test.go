package butterfly

import (
	"math/rand/v2"
	"testing"

	"debruijnring/internal/debruijn"
	"debruijnring/internal/hamilton"
)

// TestFigure34Structure checks F(2,3) against Figure 3.4: 24 nodes, out-
// degree 2, level-advancing edges.
func TestFigure34Structure(t *testing.T) {
	g := New(2, 3)
	if g.Size != 24 {
		t.Fatalf("F(2,3) has %d nodes, want 24", g.Size)
	}
	if g.NumEdges() != 48 {
		t.Errorf("F(2,3) has %d edges, want 48", g.NumEdges())
	}
	var buf []int
	for v := 0; v < g.Size; v++ {
		buf = g.Successors(v, buf)
		if len(buf) != 2 {
			t.Fatalf("node %s has %d successors", g.String(v), len(buf))
		}
		k, _ := g.Split(v)
		for _, w := range buf {
			kw, _ := g.Split(w)
			if kw != (k+1)%3 {
				t.Fatalf("edge %s → %s does not advance the level", g.String(v), g.String(w))
			}
			if !g.IsEdge(v, w) {
				t.Fatalf("IsEdge(%s,%s) = false", g.String(v), g.String(w))
			}
		}
	}
	// Spot-check Figure 3.4 edges: (0,000) → (1,000) and (0,000) → (1,010)
	// (level-0 edges may change digit 1... here digit k+1 = 1 is the
	// second digit in paper numbering x₀x₁x₂; in our 1-indexed digits the
	// successors of (0,000) change digit 1).
	zero := g.Node(0, 0)
	succ := g.Successors(zero, nil)
	want := map[string]bool{"(1,000)": true, "(1,100)": true}
	for _, w := range succ {
		if !want[g.String(w)] {
			t.Errorf("unexpected successor %s of (0,000)", g.String(w))
		}
	}
}

// TestFigure35Partition checks the [ABR90] partition: the classes S_x
// partition the butterfly's nodes, and every De Bruijn edge induces
// butterfly edges at every level (Lemma 3.8).
func TestFigure35Partition(t *testing.T) {
	for _, tc := range []struct{ d, n int }{{2, 3}, {3, 3}, {2, 4}, {3, 4}} {
		g := New(tc.d, tc.n)
		db := debruijn.New(tc.d, tc.n)
		seen := make(map[int]int)
		for x := 0; x < db.Size; x++ {
			for _, v := range g.DeBruijnClass(x) {
				if prev, dup := seen[v]; dup {
					t.Fatalf("F(%d,%d): node %s in S_%s and S_%s",
						tc.d, tc.n, g.String(v), db.String(prev), db.String(x))
				}
				seen[v] = x
			}
		}
		if len(seen) != g.Size {
			t.Fatalf("F(%d,%d): classes cover %d of %d nodes", tc.d, tc.n, len(seen), g.Size)
		}
		// Lemma 3.8: for each De Bruijn edge (x,y) and level i, there is a
		// butterfly edge S_x^i → S_y^{i+1}.
		var buf []int
		for x := 0; x < db.Size; x++ {
			buf = db.Successors(x, buf)
			for _, y := range buf {
				for i := 0; i < tc.n; i++ {
					u, v := g.ClassNode(x, i), g.ClassNode(y, i+1)
					if !g.IsEdge(u, v) {
						t.Fatalf("F(%d,%d): Lemma 3.8 fails for %s→%s at level %d",
							tc.d, tc.n, db.String(x), db.String(y), i)
					}
					from, to, ok := g.ProjectEdge(db, u, v)
					if !ok || from != x || to != y {
						t.Fatalf("F(%d,%d): ProjectEdge(%s,%s) = (%s,%s,%v), want (%s,%s)",
							tc.d, tc.n, g.String(u), g.String(v),
							db.String(from), db.String(to), ok, db.String(x), db.String(y))
					}
				}
			}
		}
	}
}

// TestLemma39Example reproduces the worked example after Lemma 3.9: the
// 4-cycle (110, 100, 001, 011) of B(2,3) lifts to the stated 12-cycle of
// F(2,3).
func TestLemma39Example(t *testing.T) {
	g := New(2, 3)
	db := debruijn.New(2, 3)
	cycle := make([]int, 4)
	for i, s := range []string{"110", "100", "001", "011"} {
		x, err := db.Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		cycle[i] = x
	}
	if !db.IsCycle(cycle) {
		t.Fatal("(110,100,001,011) should be a cycle of B(2,3)")
	}
	lifted := g.Lift(db, cycle)
	want := []string{
		"(0,110)", "(1,010)", "(2,010)", "(0,011)", "(1,011)", "(2,001)",
		"(0,001)", "(1,101)", "(2,101)", "(0,100)", "(1,100)", "(2,110)",
	}
	if len(lifted) != len(want) {
		t.Fatalf("lifted cycle has length %d, want 12", len(lifted))
	}
	for i, w := range want {
		if g.String(lifted[i]) != w {
			t.Fatalf("Φ(C)[%d] = %s, want %s", i, g.String(lifted[i]), w)
		}
	}
	if !g.IsCycle(lifted) {
		t.Error("Φ(C) should be a cycle of F(2,3)")
	}
}

// TestLiftLengths: Φ maps a k-cycle to an LCM(k,n)-cycle (Lemma 3.9).
func TestLiftLengths(t *testing.T) {
	db := debruijn.New(2, 4)
	g := New(2, 4)
	for k := 1; k <= db.Size; k++ {
		c := db.FindCycleOfLength(k, nil)
		if c == nil {
			continue
		}
		lifted := g.Lift(db, c)
		if !g.IsCycle(lifted) {
			t.Fatalf("lift of a %d-cycle is not a cycle", k)
		}
		wantLen := k
		for wantLen%4 != 0 {
			wantLen += k
		}
		if len(lifted) != wantLen {
			t.Errorf("lift of %d-cycle has length %d, want lcm(k,n) = %d", k, len(lifted), wantLen)
		}
	}
}

// TestProp35FaultFreeHC: F(d,n) with gcd(d,n)=1 admits a Hamiltonian cycle
// avoiding up to MAX{ψ(d)−1, φ(d)} faulty edges.
func TestProp35FaultFreeHC(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	for _, tc := range []struct{ d, n int }{{2, 3}, {3, 2}, {4, 3}, {5, 2}, {3, 4}, {5, 3}} {
		g := New(tc.d, tc.n)
		tol := hamilton.MaxEdgeFaults(tc.d)
		for trial := 0; trial < 10; trial++ {
			f := tol
			if trial > 0 {
				f = rng.IntN(tol + 1)
			}
			var faults [][2]int
			var buf []int
			for len(faults) < f {
				u := rng.IntN(g.Size)
				buf = g.Successors(u, buf)
				v := buf[rng.IntN(len(buf))]
				// Skip faults projecting to De Bruijn loops: they lie on
				// no Hamiltonian cycle anyway.
				db := debruijn.New(tc.d, tc.n)
				if from, to, _ := g.ProjectEdge(db, u, v); from == to {
					continue
				}
				faults = append(faults, [2]int{u, v})
			}
			hc, err := g.FaultFreeHC(faults)
			if err != nil {
				t.Fatalf("F(%d,%d) with %d faults: %v", tc.d, tc.n, f, err)
			}
			if len(hc) != g.Size {
				t.Fatalf("F(%d,%d): HC length %d, want %d", tc.d, tc.n, len(hc), g.Size)
			}
			if !g.IsCycle(hc) {
				t.Fatalf("F(%d,%d): result is not a cycle", tc.d, tc.n)
			}
			onCycle := make(map[[2]int]bool, len(hc))
			for i, v := range hc {
				onCycle[[2]int{v, hc[(i+1)%len(hc)]}] = true
			}
			for _, e := range faults {
				if onCycle[e] {
					t.Fatalf("F(%d,%d): HC uses faulty edge %v", tc.d, tc.n, e)
				}
			}
		}
	}
}

// TestProp36DisjointHCs: ψ(d) disjoint Hamiltonian cycles of F(d,n).
func TestProp36DisjointHCs(t *testing.T) {
	for _, tc := range []struct{ d, n int }{{2, 3}, {3, 2}, {4, 3}, {5, 2}, {3, 4}} {
		g := New(tc.d, tc.n)
		cycles, err := g.DisjointHCs()
		if err != nil {
			t.Fatalf("F(%d,%d): %v", tc.d, tc.n, err)
		}
		if len(cycles) != hamilton.Psi(tc.d) {
			t.Errorf("F(%d,%d): %d cycles, want ψ = %d", tc.d, tc.n, len(cycles), hamilton.Psi(tc.d))
		}
		for i, c := range cycles {
			if len(c) != g.Size || !g.IsCycle(c) {
				t.Fatalf("F(%d,%d): cycle %d invalid", tc.d, tc.n, i)
			}
		}
		if !g.EdgeDisjoint(cycles...) {
			t.Errorf("F(%d,%d): cycles are not edge-disjoint", tc.d, tc.n)
		}
	}
}

func TestGCDRestriction(t *testing.T) {
	g := New(2, 4) // gcd(2,4) = 2
	if _, err := g.FaultFreeHC(nil); err == nil {
		t.Error("FaultFreeHC should reject gcd(d,n) > 1")
	}
	if _, err := g.DisjointHCs(); err == nil {
		t.Error("DisjointHCs should reject gcd(d,n) > 1")
	}
}

func TestNodeSplitRoundTrip(t *testing.T) {
	g := New(3, 4)
	for v := 0; v < g.Size; v++ {
		k, x := g.Split(v)
		if g.Node(k, x) != v {
			t.Fatalf("Node(Split(%d)) = %d", v, g.Node(k, x))
		}
	}
}

func BenchmarkLiftHC(b *testing.B) {
	db := debruijn.New(3, 4)
	g := New(3, 4)
	fam, err := hamilton.DisjointHCs(3, 4)
	if err != nil {
		b.Fatal(err)
	}
	nodes := db.NodesOfSequence(fam.Cycles[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Lift(db, nodes)
	}
}
