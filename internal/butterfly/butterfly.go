// Package butterfly implements §3.4 of Rowley–Bose: the d-ary wrapped
// butterfly digraph F(d,n), its structural relationship to B(d,n) (the
// partition of [ABR90]), and the Φ map that lifts cycles of the De Bruijn
// graph to cycles of the butterfly — carrying the edge-fault-tolerant
// Hamiltonian cycle results over to butterflies when gcd(d,n) = 1
// (Propositions 3.5 and 3.6).
package butterfly

import (
	"fmt"

	"debruijnring/internal/debruijn"
	"debruijnring/internal/hamilton"
	"debruijnring/internal/numtheory"
	"debruijnring/internal/word"
)

// Graph is the d-ary butterfly digraph F(d,n): nodes are pairs
// (level k ∈ Z_n, column x ∈ Z_dⁿ); node (k, x) has an edge to
// (k+1 mod n, y) for every y agreeing with x except possibly in digit k+1
// (1-indexed as in word.Space).
type Graph struct {
	D, N int
	Cols *word.Space // column tuples
	Size int         // n·dⁿ
}

// New returns F(d,n).
func New(d, n int) *Graph {
	cols := word.New(d, n)
	return &Graph{D: d, N: n, Cols: cols, Size: n * cols.Size}
}

// Node codes the butterfly node (level, column) as level·dⁿ + column.
func (g *Graph) Node(level, col int) int {
	if level < 0 || level >= g.N || col < 0 || col >= g.Cols.Size {
		panic(fmt.Sprintf("butterfly: node (%d,%d) out of range", level, col))
	}
	return level*g.Cols.Size + col
}

// Split decodes a node into (level, column).
func (g *Graph) Split(v int) (level, col int) {
	return v / g.Cols.Size, v % g.Cols.Size
}

// String renders a node as "(k,x₁…xₙ)".
func (g *Graph) String(v int) string {
	k, x := g.Split(v)
	return fmt.Sprintf("(%d,%s)", k, g.Cols.String(x))
}

// Successors appends the d successors of v: level k+1, column x with digit
// k+1 replaced by each α ∈ Z_d.
func (g *Graph) Successors(v int, dst []int) []int {
	dst = dst[:0]
	k, x := g.Split(v)
	next := (k + 1) % g.N
	pos := k + 1 // digit to replace, 1-indexed
	base := x - g.Cols.Digit(x, pos)*g.Cols.Pow(g.N-pos)
	for a := 0; a < g.D; a++ {
		dst = append(dst, g.Node(next, base+a*g.Cols.Pow(g.N-pos)))
	}
	return dst
}

// IsEdge reports whether (u, v) is a butterfly edge.
func (g *Graph) IsEdge(u, v int) bool {
	ku, xu := g.Split(u)
	kv, xv := g.Split(v)
	if kv != (ku+1)%g.N {
		return false
	}
	pos := ku + 1
	// Columns must agree except possibly at digit pos.
	return xu-xu/g.Cols.Pow(g.N-pos)%g.D*g.Cols.Pow(g.N-pos) ==
		xv-xv/g.Cols.Pow(g.N-pos)%g.D*g.Cols.Pow(g.N-pos)
}

// NumEdges returns the edge count d·n·dⁿ.
func (g *Graph) NumEdges() int { return g.D * g.Size }

// IsCycle reports whether seq is a cycle of F(d,n).
func (g *Graph) IsCycle(seq []int) bool {
	if len(seq) == 0 {
		return false
	}
	seen := make(map[int]bool, len(seq))
	for i, v := range seq {
		if v < 0 || v >= g.Size || seen[v] {
			return false
		}
		seen[v] = true
		if !g.IsEdge(v, seq[(i+1)%len(seq)]) {
			return false
		}
	}
	return true
}

// DeBruijnClass returns the set S_x of butterfly nodes associated with De
// Bruijn node x in the [ABR90] partition: S_x = {(i, π⁻ⁱ(x)) : 0 ≤ i < n}.
func (g *Graph) DeBruijnClass(x int) []int {
	out := make([]int, g.N)
	for i := 0; i < g.N; i++ {
		out[i] = g.Node(i, g.Cols.RotLBy(x, -i))
	}
	return out
}

// ClassNode returns S_x^i = (i, π⁻ⁱ(x)), the level-i member of S_x.
func (g *Graph) ClassNode(x, i int) int {
	i %= g.N
	if i < 0 {
		i += g.N
	}
	return g.Node(i, g.Cols.RotLBy(x, -i))
}

// Lift applies the Φ map (Lemma 3.9) to a k-cycle C = (v₀, …, v_{k−1}) of
// B(d,n): the butterfly cycle (S_{v₀}⁰, S_{v₁}¹, …) of length lcm(k, n).
func (g *Graph) Lift(db *debruijn.Graph, cycle []int) []int {
	if db.D != g.D || db.N != g.N {
		panic("butterfly: Lift wants a De Bruijn graph of matching d, n")
	}
	k := len(cycle)
	t := numtheory.LCM(k, g.N)
	out := make([]int, t)
	for i := 0; i < t; i++ {
		out[i] = g.ClassNode(cycle[i%k], i%g.N)
	}
	return out
}

// ProjectEdge maps the butterfly edge S_U^j → S_V^{j+1} to the De Bruijn
// edge (U, V) underlying it.  Every butterfly edge projects to exactly one
// De Bruijn edge (Lemma 3.8); the second return is false if (u, v) is not
// a butterfly edge.
func (g *Graph) ProjectEdge(db *debruijn.Graph, u, v int) (dbEdgeFrom, dbEdgeTo int, ok bool) {
	if !g.IsEdge(u, v) {
		return 0, 0, false
	}
	ku, xu := g.Split(u)
	kv, xv := g.Split(v)
	from := g.Cols.RotLBy(xu, ku)
	to := g.Cols.RotLBy(xv, kv)
	if !db.IsEdge(from, to) {
		return 0, 0, false
	}
	return from, to, true
}

// FaultFreeHC returns a Hamiltonian cycle of F(d,n) avoiding the given
// faulty butterfly edges (each an ordered node pair), implementing
// Proposition 3.5: project the faults to De Bruijn edges, find a De Bruijn
// HC avoiding them (tolerance MAX{ψ(d)−1, φ(d)}), and lift it with Φ.
// Requires gcd(d,n) = 1, which makes lcm(dⁿ, n) = n·dⁿ.
func (g *Graph) FaultFreeHC(faultEdges [][2]int) ([]int, error) {
	if numtheory.GCD(g.D, g.N) != 1 {
		return nil, fmt.Errorf("butterfly: Proposition 3.5 needs gcd(d,n) = 1, got d=%d n=%d", g.D, g.N)
	}
	db := debruijn.New(g.D, g.N)
	var windows [][]int
	for _, e := range faultEdges {
		from, to, ok := g.ProjectEdge(db, e[0], e[1])
		if !ok {
			return nil, fmt.Errorf("butterfly: fault %v is not an edge of F(%d,%d)", e, g.D, g.N)
		}
		w := make([]int, g.N+1)
		for i := 1; i <= g.N; i++ {
			w[i-1] = db.Digit(from, i)
		}
		w[g.N] = db.Digit(to, g.N)
		windows = append(windows, w)
	}
	seq, err := hamilton.FaultFreeHC(g.D, g.N, windows)
	if err != nil {
		return nil, err
	}
	return g.Lift(db, db.NodesOfSequence(seq)), nil
}

// DisjointHCs returns ψ(d) pairwise edge-disjoint Hamiltonian cycles of
// F(d,n) (Proposition 3.6), again requiring gcd(d,n) = 1.
func (g *Graph) DisjointHCs() ([][]int, error) {
	if numtheory.GCD(g.D, g.N) != 1 {
		return nil, fmt.Errorf("butterfly: Proposition 3.6 needs gcd(d,n) = 1, got d=%d n=%d", g.D, g.N)
	}
	db := debruijn.New(g.D, g.N)
	fam, err := hamilton.DisjointHCs(g.D, g.N)
	if err != nil {
		return nil, err
	}
	out := make([][]int, len(fam.Cycles))
	for i, seq := range fam.Cycles {
		out[i] = g.Lift(db, db.NodesOfSequence(seq))
	}
	return out, nil
}

// EdgeDisjoint reports whether the given butterfly cycles share no edge.
func (g *Graph) EdgeDisjoint(cycles ...[]int) bool {
	seen := make(map[[2]int]bool)
	for _, c := range cycles {
		for i, v := range c {
			e := [2]int{v, c[(i+1)%len(c)]}
			if seen[e] {
				return false
			}
			seen[e] = true
		}
	}
	return true
}
