package fleet

import (
	"errors"
	"io/fs"
	"math/rand"
	"sync"
	"time"

	"debruijnring/engine"
	"debruijnring/session"
)

// ReplicaState names the replication health of a shard's store, as
// surfaced in /v1/replication and the router's fleet status.
type ReplicaState string

const (
	// ReplicaOff: no replica target configured; journaling is local-only
	// by design (the group is one failure from loss, and says so).
	ReplicaOff ReplicaState = "off"
	// ReplicaOK: every append ships to the replica before the client ack.
	ReplicaOK ReplicaState = "ok"
	// ReplicaCatchup: the replica is (or was) unreachable or freshly
	// assigned; a background loop is re-streaming the affected journals
	// with jittered backoff.  Events acked in this state are local-only
	// until the catch-up completes.
	ReplicaCatchup ReplicaState = "catchup"
	// ReplicaFenced: the replica answered "promoted" — this process is a
	// stale ex-primary whose journals have been superseded.  It must stop
	// serving sessions and demote itself (see Shard.demote).
	ReplicaFenced ReplicaState = "fenced"
)

// ReplicationStatus is the primary-side replication snapshot.
type ReplicationStatus struct {
	State  ReplicaState `json:"state"`
	Target string       `json:"target,omitempty"`
	// Lag counts events acked locally while the replica was not in sync
	// (catch-up resets it to zero when the journals converge).
	Lag int64 `json:"lag,omitempty"`
	// PendingSessions counts journals still waiting for a catch-up
	// re-stream.
	PendingSessions int `json:"pending_sessions,omitempty"`
}

// ReplicatedStore is a session.Store that tees every journal append to
// a replica shard over HTTP before the append returns — which is before
// the session acknowledges the event to its client.  That ordering is
// the fleet's durability contract: an acknowledged event is on two
// processes, so SIGKILLing the owning shard loses nothing a client was
// told had happened, and the promoted replica's hash-verified replay
// reconstructs the exact acknowledged rings.
//
// Unlike the first fleet iteration, a replica failure is a state, not a
// shrug: the store drops to ReplicaCatchup, keeps acking locally (the
// event survives a restart but not a shard loss, and the lag counter
// says so), and a background loop re-streams the affected journals with
// jittered backoff until the replica has byte-equivalent journals
// again, at which point synchronous acks resume.  The same machinery
// bootstraps a freshly assigned standby (SetTarget): every local
// journal is marked dirty and streamed over, so a promoted shard is
// back to one-failure-from-safe without an operator restart.
//
// If the replica answers "promoted" the store fences instead: this
// process is a stale ex-primary, its journals are superseded, and the
// OnFenced callback (the shard's self-demotion) takes over.
//
// Reads (Load, Names) and Restore never touch the replica — the local
// journal is authoritative for this process's own lifetime.
type ReplicatedStore struct {
	local session.Store
	eng   *engine.Engine // replication counters; may be nil
	logf  func(string, ...any)

	// OnFenced is invoked (once, on its own goroutine) when the replica
	// refuses ingest because it has been promoted.  Set before use.
	OnFenced func()

	// RetryBase / RetryCap tune the catch-up loop's jittered exponential
	// backoff (defaults 100ms / 5s); tests shorten them.
	RetryBase time.Duration
	RetryCap  time.Duration

	mu     sync.Mutex
	target string
	client *ReplicaClient
	state  ReplicaState
	dirty  map[string]bool // journals needing a full re-stream
	lag    int64
	loopOn bool
	closed bool
	stopc  chan struct{}
}

// NewReplicatedStore wraps local so every append is also shipped to the
// target replica ("" starts with replication off; SetTarget can assign
// one later).  eng (optional) receives RecordReplication counts; logf
// (optional) receives degraded-mode complaints.
func NewReplicatedStore(local session.Store, target string, eng *engine.Engine, logf func(string, ...any)) *ReplicatedStore {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s := &ReplicatedStore{
		local: local,
		eng:   eng,
		logf:  logf,
		state: ReplicaOff,
		dirty: make(map[string]bool),
		stopc: make(chan struct{}),
	}
	if target != "" {
		s.target = target
		s.client = &ReplicaClient{Base: target}
		s.state = ReplicaOK
	}
	return s
}

// Local returns the wrapped process-local store.
func (s *ReplicatedStore) Local() session.Store { return s.local }

// Status reports the replication state for /v1/replication.
func (s *ReplicatedStore) Status() ReplicationStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ReplicationStatus{
		State:           s.state,
		Target:          s.target,
		Lag:             s.lag,
		PendingSessions: len(s.dirty),
	}
}

// SetTarget points the store at a (new) replica and bootstraps it:
// every existing local journal is marked for a full re-stream through
// the catch-up loop, and synchronous acks resume once the streams
// converge.  An empty target turns replication off.  SetTarget clears a
// fence — the caller (the shard's demotion/re-target path) decides when
// the store is clean enough for that.
func (s *ReplicatedStore) SetTarget(target string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("fleet: replicated store is closed")
	}
	s.target = target
	s.lag = 0
	s.dirty = make(map[string]bool)
	if target == "" {
		s.client = nil
		s.state = ReplicaOff
		return nil
	}
	s.client = &ReplicaClient{Base: target}
	names, err := s.local.Names()
	if err != nil {
		return err
	}
	if len(names) == 0 {
		s.state = ReplicaOK
		return nil
	}
	for _, name := range names {
		s.dirty[name] = true
	}
	s.state = ReplicaCatchup
	s.startLoopLocked()
	return nil
}

// Bootstrap marks one session's journal for a full re-stream to the
// replica — used when a journal materialized outside the append path
// (a rebalance adoption) and the replica has none of its prefix.
func (s *ReplicatedStore) Bootstrap(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.target == "" || s.state == ReplicaFenced {
		return
	}
	s.dirty[name] = true
	s.state = ReplicaCatchup
	s.startLoopLocked()
}

// Fenced reports whether the store has been fenced by a promoted peer.
func (s *ReplicatedStore) Fenced() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state == ReplicaFenced
}

// Close stops the catch-up loop.  The local store stays usable.
func (s *ReplicatedStore) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	close(s.stopc)
}

// Create opens a fresh local journal; the replica's copy materializes
// when the first append (the created event) ships.
func (s *ReplicatedStore) Create(name string) (session.JournalWriter, error) {
	w, err := s.local.Create(name)
	if err != nil {
		return nil, err
	}
	return &replicatedWriter{name: name, local: w, store: s}, nil
}

// Open reopens the local journal for appending; subsequent appends
// resume the replication stream mid-journal (the replica's copy is kept
// in lockstep with the local file while the state is ok, and caught up
// by full re-streams otherwise).
func (s *ReplicatedStore) Open(name string) (session.JournalWriter, error) {
	w, err := s.local.Open(name)
	if err != nil {
		return nil, err
	}
	return &replicatedWriter{name: name, local: w, store: s}, nil
}

// Load reads the local journal.
func (s *ReplicatedStore) Load(name string) ([]session.Event, error) { return s.local.Load(name) }

// Names lists the local journals.
func (s *ReplicatedStore) Names() ([]string, error) { return s.local.Names() }

// Remove deletes the journal on both sides.
func (s *ReplicatedStore) Remove(name string) error {
	s.mu.Lock()
	client := s.client
	fenced := s.state == ReplicaFenced
	delete(s.dirty, name)
	s.mu.Unlock()
	if client != nil && !fenced {
		if err := client.Remove(name); err != nil {
			if errors.Is(err, ErrPeerPromoted) {
				s.fence()
			}
			s.logf("fleet: replica remove %s: %v", name, err)
		}
	}
	return s.local.Remove(name)
}

// record feeds the engine's replication counters.
func (s *ReplicatedStore) record(ok bool) {
	if s.eng != nil {
		s.eng.RecordReplication(ok)
	}
}

// degrade enters catch-up after a failed synchronous append: the event
// is local-only, the session's journal is marked for a full re-stream,
// and the background loop owns recovery from here.
func (s *ReplicatedStore) degrade(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.state == ReplicaFenced || s.target == "" {
		return
	}
	s.dirty[name] = true
	s.lag++
	if s.state != ReplicaCatchup {
		s.state = ReplicaCatchup
		s.logf("fleet: replica %s unreachable; degrading to catch-up replication", s.target)
	}
	s.startLoopLocked()
}

// fence records that the replica has been promoted: this process is a
// stale ex-primary and must stop serving.  The OnFenced callback (the
// shard's demotion) runs once, on its own goroutine.
func (s *ReplicatedStore) fence() {
	s.mu.Lock()
	if s.state == ReplicaFenced || s.closed {
		s.mu.Unlock()
		return
	}
	s.state = ReplicaFenced
	target, cb := s.target, s.OnFenced
	s.mu.Unlock()
	s.logf("fleet: replica %s reports promoted — this shard is a stale ex-primary; fencing", target)
	if cb != nil {
		go cb()
	}
}

// startLoopLocked launches the catch-up goroutine if it is not already
// running; callers hold s.mu.
func (s *ReplicatedStore) startLoopLocked() {
	if s.loopOn || s.closed {
		return
	}
	s.loopOn = true
	go s.catchupLoop()
}

// catchupLoop re-streams dirty journals with jittered exponential
// backoff until none remain (then synchronous replication resumes) or
// the store is closed, re-targeted away, or fenced.
func (s *ReplicatedStore) catchupLoop() {
	base, cap := s.RetryBase, s.RetryCap
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if cap <= 0 {
		cap = 5 * time.Second
	}
	backoff := base
	for {
		s.mu.Lock()
		if s.closed || s.state != ReplicaCatchup || s.target == "" {
			s.loopOn = false
			s.mu.Unlock()
			return
		}
		var name string
		//ringlint:allow maporder any dirty journal may catch up first; convergence is unordered
		for n := range s.dirty {
			name = n
			break
		}
		if name == "" {
			// Everything converged: resume synchronous acks.
			s.state = ReplicaOK
			s.lag = 0
			s.loopOn = false
			target := s.target
			s.mu.Unlock()
			s.logf("fleet: replica %s caught up; synchronous replication resumed", target)
			return
		}
		// Clear the mark before loading: appends landing mid-stream
		// re-mark the journal and force another pass, so no event is
		// skipped.
		delete(s.dirty, name)
		client := s.client
		s.mu.Unlock()

		err := s.streamJournal(client, name)
		switch {
		case err == nil:
			backoff = base
			continue
		case errors.Is(err, ErrPeerPromoted):
			s.fence()
			s.mu.Lock()
			s.loopOn = false
			s.mu.Unlock()
			return
		default:
			s.mu.Lock()
			if s.state == ReplicaCatchup {
				s.dirty[name] = true
			}
			s.mu.Unlock()
			s.logf("fleet: catch-up of %s to %s: %v (retrying in ~%s)", name, client.Base, err, backoff)
			// ±50% jitter decorrelates shards retrying into a recovering
			// replica.
			d := backoff/2 + time.Duration(rand.Int63n(int64(backoff)))
			if backoff *= 2; backoff > cap {
				backoff = cap
			}
			select {
			case <-time.After(d):
			case <-s.stopc:
				s.mu.Lock()
				s.loopOn = false
				s.mu.Unlock()
				return
			}
		}
	}
}

// catchupBatch bounds one catch-up append request.
const catchupBatch = 512

// streamJournal re-streams one session's full local journal to the
// replica.  The first batch starts with the created event, which the
// replica treats as a replacing stream, so re-streaming is idempotent:
// a half-shipped journal is simply replaced on the next attempt.
func (s *ReplicatedStore) streamJournal(client *ReplicaClient, name string) error {
	events, err := s.local.Load(name)
	if errors.Is(err, fs.ErrNotExist) {
		// Deleted mid-catch-up: drop the replica's stale copy too.
		if rerr := client.Remove(name); rerr != nil {
			s.logf("fleet: replica remove %s after local delete: %v", name, rerr)
		}
		return nil
	}
	if err != nil {
		return err
	}
	for start := 0; start < len(events); start += catchupBatch {
		end := start + catchupBatch
		if end > len(events) {
			end = len(events)
		}
		if err := client.Append(name, events[start:end]); err != nil {
			return err
		}
	}
	return nil
}

// replicatedWriter is one session's teeing journal handle.
type replicatedWriter struct {
	name  string
	local session.JournalWriter
	store *ReplicatedStore
}

// Append journals the event locally, then ships it to the replica and
// only then returns — the ack path of the zero-acknowledged-loss
// guarantee.  A replica failure degrades to catch-up mode (counted,
// logged, and repaired in the background), never to a refused event.
func (w *replicatedWriter) Append(ev session.Event) error {
	err := w.local.Append(ev)
	s := w.store
	s.mu.Lock()
	switch s.state {
	case ReplicaOff:
		s.mu.Unlock()
		return err
	case ReplicaFenced:
		s.mu.Unlock()
		s.record(false)
		return err
	case ReplicaCatchup:
		// The background loop owns this journal; the event is local-only
		// for now and rides the next full re-stream.
		s.dirty[w.name] = true
		s.lag++
		s.mu.Unlock()
		s.record(false)
		return err
	}
	client := s.client
	s.mu.Unlock()

	rerr := client.Append(w.name, []session.Event{ev})
	s.record(rerr == nil)
	if rerr == nil {
		return err
	}
	if errors.Is(rerr, ErrPeerPromoted) {
		s.fence()
		return err
	}
	s.logf("fleet: replicate %s seq %d: %v (event is local-only until catch-up)", w.name, ev.Seq, rerr)
	s.degrade(w.name)
	return err
}

func (w *replicatedWriter) Sync() error  { return w.local.Sync() }
func (w *replicatedWriter) Close() error { return w.local.Close() }
