package fleet

import (
	"debruijnring/engine"
	"debruijnring/session"
)

// ReplicatedStore is a session.Store that tees every journal append to
// a replica shard over HTTP before the append returns — which is before
// the session acknowledges the event to its client.  That ordering is
// the fleet's durability contract: an acknowledged event is on two
// processes, so SIGKILLing the owning shard loses nothing a client was
// told had happened, and the promoted replica's hash-verified replay
// reconstructs the exact acknowledged rings.
//
// Replication is best-effort beyond the happy path: if the replica is
// unreachable the append degrades to local-only journaling (the event
// survives a shard restart but not a shard loss), the failure is
// counted in the engine's replica_errors, and traffic keeps flowing.
// Reads (Load, Names) and Restore never touch the replica — the local
// journal is authoritative for this process's own lifetime.
type ReplicatedStore struct {
	local   session.Store
	replica *ReplicaClient
	eng     *engine.Engine // replication counters; may be nil
	logf    func(string, ...any)
}

// NewReplicatedStore wraps local so every append is also shipped to
// replica.  eng (optional) receives RecordReplication counts; logf
// (optional) receives degraded-mode complaints.
func NewReplicatedStore(local session.Store, replica *ReplicaClient, eng *engine.Engine, logf func(string, ...any)) *ReplicatedStore {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &ReplicatedStore{local: local, replica: replica, eng: eng, logf: logf}
}

// Create opens a fresh local journal; the replica's copy materializes
// when the first append (the created event) ships.
func (s *ReplicatedStore) Create(name string) (session.JournalWriter, error) {
	w, err := s.local.Create(name)
	if err != nil {
		return nil, err
	}
	return &replicatedWriter{name: name, local: w, store: s}, nil
}

// Open reopens the local journal for appending; subsequent appends
// resume the replication stream mid-journal (the replica tolerates
// tails it has already seen only as far as it never re-reads — the
// stream is append-only in lockstep with the local file).
func (s *ReplicatedStore) Open(name string) (session.JournalWriter, error) {
	w, err := s.local.Open(name)
	if err != nil {
		return nil, err
	}
	return &replicatedWriter{name: name, local: w, store: s}, nil
}

// Load reads the local journal.
func (s *ReplicatedStore) Load(name string) ([]session.Event, error) { return s.local.Load(name) }

// Names lists the local journals.
func (s *ReplicatedStore) Names() ([]string, error) { return s.local.Names() }

// Remove deletes the journal on both sides.
func (s *ReplicatedStore) Remove(name string) error {
	if err := s.replica.Remove(name); err != nil {
		s.logf("fleet: replica remove %s: %v", name, err)
	}
	return s.local.Remove(name)
}

// replicatedWriter is one session's teeing journal handle.
type replicatedWriter struct {
	name  string
	local session.JournalWriter
	store *ReplicatedStore
}

// Append journals the event locally, then ships it to the replica and
// only then returns — the ack path of the zero-acknowledged-loss
// guarantee.  A replica failure degrades to local-only (counted and
// logged), never to a refused event.
func (w *replicatedWriter) Append(ev session.Event) error {
	err := w.local.Append(ev)
	rerr := w.store.replica.Append(w.name, []session.Event{ev})
	if w.store.eng != nil {
		w.store.eng.RecordReplication(rerr == nil)
	}
	if rerr != nil {
		w.store.logf("fleet: replicate %s seq %d: %v (event is local-only)", w.name, ev.Seq, rerr)
	}
	return err
}

func (w *replicatedWriter) Sync() error  { return w.local.Sync() }
func (w *replicatedWriter) Close() error { return w.local.Close() }
