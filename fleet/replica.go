package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"sync"
	"time"

	"debruijnring/session"
)

// Replica is the ingest side of shard replication: it receives journal
// events from a primary shard's ReplicatedStore and appends them —
// cold, without running the session state machine — to this process's
// local store.  On promotion it closes the ingest writers and restores
// every journal through the session manager's deterministic,
// hash-verified replay, bringing the victim's sessions back hot.
type Replica struct {
	store session.Store    // local store the events are appended to
	mgr   *session.Manager // promotion target; its Restore goes hot
	logf  func(string, ...any)

	// Gate (optional) epoch-guards promotion so two routers racing the
	// same failover converge on one winner; nil leaves promotion
	// unguarded.  The shard shares one gate across all its control
	// endpoints.
	Gate *EpochGate

	mu       sync.Mutex
	writers  map[string]session.JournalWriter
	promoted bool
}

// NewReplica returns a Replica appending into store and promoting into
// mgr.  store must be the process-local store (not a ReplicatedStore):
// ingested events are already someone else's replication stream.
func NewReplica(store session.Store, mgr *session.Manager, logf func(string, ...any)) *Replica {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Replica{store: store, mgr: mgr, logf: logf, writers: make(map[string]session.JournalWriter)}
}

// appendRequest is the replication wire format: one session's events,
// in journal order.
type appendRequest struct {
	Name   string          `json:"name"`
	Events []session.Event `json:"events"`
}

type appendResponse struct {
	Appended int `json:"appended"`
}

// promoteRequest carries the (optional) epoch of the router issuing the
// promotion; zero/absent is unguarded.
type promoteRequest struct {
	Epoch uint64 `json:"epoch,omitempty"`
}

// promoteResponse reports a promotion: sessions restored hot and the
// journals that failed replay (left on disk, untouched).
type promoteResponse struct {
	Restored int      `json:"restored"`
	Already  bool     `json:"already,omitempty"`
	Errors   []string `json:"errors,omitempty"`
}

// statusResponse is the replica's observability snapshot.
type statusResponse struct {
	Promoted bool     `json:"promoted"`
	Journals []string `json:"journals"`
}

// Handler exposes the replication endpoints, mounted under /v1/replica:
//
//	POST   /v1/replica/append          ingest one batch of journal events
//	DELETE /v1/replica/sessions/{name} drop a replicated journal
//	POST   /v1/replica/promote         restore every journal hot (idempotent)
//	GET    /v1/replica/status          promoted flag + replicated journals
func (rp *Replica) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/replica/append", rp.handleAppend)
	mux.HandleFunc("DELETE /v1/replica/sessions/{name}", rp.handleRemove)
	mux.HandleFunc("POST /v1/replica/promote", rp.handlePromote)
	mux.HandleFunc("GET /v1/replica/status", rp.handleStatus)
	return mux
}

func (rp *Replica) handleAppend(w http.ResponseWriter, r *http.Request) {
	if rp.store == nil {
		replicaError(w, http.StatusServiceUnavailable, errors.New("replica: no journal store (start the shard with -journal)"))
		return
	}
	var req appendRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	if err := dec.Decode(&req); err != nil {
		replicaError(w, http.StatusBadRequest, fmt.Errorf("bad append body: %w", err))
		return
	}
	if !session.ValidName(req.Name) || len(req.Events) == 0 {
		replicaError(w, http.StatusBadRequest, errors.New("append needs a valid session name and at least one event"))
		return
	}
	n, err := rp.ingest(req.Name, req.Events)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, errPromoted) {
			status = http.StatusConflict
		}
		replicaError(w, status, err)
		return
	}
	writeReplicaJSON(w, appendResponse{Appended: n})
}

// errPromoted refuses ingest after promotion: the journals now back
// live sessions appending their own events.
var errPromoted = errors.New("replica: promoted; no longer accepting replication")

// ingest appends one batch to the named journal, opening (or creating)
// it on first touch.  A batch starting with the session's created event
// replaces any stale journal of the same name, so a re-created session
// mirrors cleanly over leftovers from a deleted ancestor.
func (rp *Replica) ingest(name string, events []session.Event) (int, error) {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	if rp.promoted {
		return 0, errPromoted
	}
	if rp.mgr != nil {
		if _, live := rp.mgr.Get(name); live {
			return 0, fmt.Errorf("replica: session %q is live on this shard", name)
		}
	}
	w, err := rp.writerLocked(name, events[0])
	if err != nil {
		return 0, err
	}
	for i, ev := range events {
		if err := w.Append(ev); err != nil {
			return i, fmt.Errorf("replica: append %s seq %d: %w", name, ev.Seq, err)
		}
	}
	return len(events), nil
}

func (rp *Replica) writerLocked(name string, first session.Event) (session.JournalWriter, error) {
	if first.Kind == "created" && first.Seq == 0 {
		// A fresh stream: drop any cached writer and stale journal.
		if w, ok := rp.writers[name]; ok {
			w.Close()
			delete(rp.writers, name)
		}
		if err := rp.store.Remove(name); err != nil {
			return nil, err
		}
		w, err := rp.store.Create(name)
		if err != nil {
			return nil, err
		}
		rp.writers[name] = w
		return w, nil
	}
	if w, ok := rp.writers[name]; ok {
		return w, nil
	}
	w, err := rp.store.Open(name)
	if errors.Is(err, fs.ErrNotExist) {
		// Mid-stream adoption (the primary outlived a replica restart):
		// accept the tail so failover still has the recent events; the
		// next created stream replaces it.
		w, err = rp.store.Create(name)
	}
	if err != nil {
		return nil, err
	}
	rp.writers[name] = w
	return w, nil
}

func (rp *Replica) handleRemove(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	rp.mu.Lock()
	if jw, ok := rp.writers[name]; ok {
		jw.Close()
		delete(rp.writers, name)
	}
	var err error
	if rp.store != nil && !rp.promoted {
		err = rp.store.Remove(name)
	}
	rp.mu.Unlock()
	if err != nil {
		replicaError(w, http.StatusInternalServerError, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handlePromote flips the replica hot: ingest stops, every replicated
// journal is restored through the manager's hash-verified replay, and
// the process serves /v1/sessions for the victim's keyspace from here
// on.  Promoting twice is a cheap no-op — checked before the epoch
// guard, so two routers racing the same failover both converge on the
// one promotion instead of the loser seeing a rejection.
func (rp *Replica) handlePromote(w http.ResponseWriter, r *http.Request) {
	var req promoteRequest
	if r.Body != nil {
		// The body is optional (legacy and manual promotions send none).
		json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req)
	}
	rp.mu.Lock()
	if rp.promoted {
		rp.mu.Unlock()
		writeReplicaJSON(w, promoteResponse{Already: true})
		return
	}
	if rp.Gate != nil {
		if current, ok := rp.Gate.Admit(req.Epoch); !ok {
			rp.mu.Unlock()
			replicaReject(w, current, "", fmt.Errorf("replica: stale promotion epoch %d (current %d)", req.Epoch, current))
			return
		}
	}
	rp.promoted = true
	//ringlint:allow maporder close order across journal writers is immaterial
	for name, jw := range rp.writers {
		jw.Close()
		delete(rp.writers, name)
	}
	rp.mu.Unlock()

	resp := promoteResponse{}
	if rp.mgr != nil {
		restored, errs := rp.mgr.Restore()
		resp.Restored = len(restored)
		for _, err := range errs {
			resp.Errors = append(resp.Errors, err.Error())
		}
	}
	rp.logf("fleet: promoted: %d session(s) restored hot, %d error(s)", resp.Restored, len(resp.Errors))
	writeReplicaJSON(w, resp)
}

func (rp *Replica) handleStatus(w http.ResponseWriter, r *http.Request) {
	rp.mu.Lock()
	promoted := rp.promoted
	rp.mu.Unlock()
	st := statusResponse{Promoted: promoted, Journals: []string{}}
	if rp.store != nil {
		if names, err := rp.store.Names(); err == nil {
			st.Journals = names
		}
	}
	writeReplicaJSON(w, st)
}

// Promoted reports whether the replica has gone hot.
func (rp *Replica) Promoted() bool {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	return rp.promoted
}

// Close releases the ingest writers (a standby being shut down).
func (rp *Replica) Close() {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	//ringlint:allow maporder close order across journal writers is immaterial
	for name, jw := range rp.writers {
		jw.Close()
		delete(rp.writers, name)
	}
}

// ReplicaClient is the shard side of the replication stream: a thin
// client for a peer's /v1/replica endpoints.
type ReplicaClient struct {
	// Base is the replica's server root, e.g. "http://replica1:8080".
	Base string
	// HTTP is the underlying client; nil uses a keep-alive client with
	// a 10s timeout (replication is synchronous on the ack path — a
	// bounded timeout keeps a hung replica from wedging the shard).
	HTTP *http.Client
}

// replicaHTTP is the shared default client: replication sits on the ack
// path of every event, so it runs on the fleet transport's deep
// keep-alive pool.
var replicaHTTP = &http.Client{Timeout: 10 * time.Second, Transport: fleetTransport}

func (c *ReplicaClient) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return replicaHTTP
}

// ErrPeerPromoted reports that the peer refused a replication write
// because it has been promoted: the caller is a stale ex-primary whose
// journals are superseded, and must fence itself (see
// ReplicatedStore).
var ErrPeerPromoted = errors.New("fleet: peer replica is promoted")

// PeerError is a decoded HTTP error from a peer's control endpoints.
// Epoch-guarded rejections carry the winning epoch (and, for
// replication re-targeting, the winning target) so a stale router can
// adopt the winner's state instead of retrying blindly.
type PeerError struct {
	Status int
	Msg    string
	Epoch  uint64
	Target string
}

func (e *PeerError) Error() string {
	return fmt.Sprintf("%s (HTTP %d)", e.Msg, e.Status)
}

// Append ships one batch of journal events for the named session.
func (c *ReplicaClient) Append(name string, events []session.Event) error {
	body, err := json.Marshal(appendRequest{Name: name, Events: events})
	if err != nil {
		return err
	}
	return markPromoted(c.post("/v1/replica/append", body, nil))
}

// Remove drops the named session's replicated journal.
func (c *ReplicaClient) Remove(name string) error {
	req, err := http.NewRequest(http.MethodDelete, c.Base+"/v1/replica/sessions/"+name, nil)
	if err != nil {
		return err
	}
	return markPromoted(c.roundTrip(req, nil))
}

// markPromoted wraps a 409 from the replication write path in
// ErrPeerPromoted (the only way those endpoints answer Conflict).
func markPromoted(err error) error {
	var pe *PeerError
	if errors.As(err, &pe) && pe.Status == http.StatusConflict {
		return fmt.Errorf("%w: %s", ErrPeerPromoted, pe.Msg)
	}
	return err
}

// Status fetches the peer's replica status — a restarting ex-primary
// asks this before restoring, so a promotion that happened while it was
// dead fences it immediately instead of on its first stale append.
func (c *ReplicaClient) Status() (*statusResponse, error) {
	req, err := http.NewRequest(http.MethodGet, c.Base+"/v1/replica/status", nil)
	if err != nil {
		return nil, err
	}
	var st statusResponse
	if err := c.roundTrip(req, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Promote flips the replica hot, returning the restore report.  epoch
// guards against dueling routers (0 is unguarded); a stale epoch is
// rejected with a *PeerError carrying the winning epoch.
func (c *ReplicaClient) Promote(epoch uint64) (*promoteResponse, error) {
	body, err := json.Marshal(promoteRequest{Epoch: epoch})
	if err != nil {
		return nil, err
	}
	var resp promoteResponse
	if err := c.post("/v1/replica/promote", body, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (c *ReplicaClient) post(path string, body []byte, dst any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(http.MethodPost, c.Base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	return c.roundTrip(req, dst)
}

func (c *ReplicaClient) roundTrip(req *http.Request, dst any) error {
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var e struct {
			Error  string `json:"error"`
			Epoch  uint64 `json:"epoch,omitempty"`
			Target string `json:"target,omitempty"`
		}
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return &PeerError{
				Status: resp.StatusCode,
				Msg:    fmt.Sprintf("replica %s: %s", req.URL.Path, e.Error),
				Epoch:  e.Epoch,
				Target: e.Target,
			}
		}
		return &PeerError{Status: resp.StatusCode, Msg: fmt.Sprintf("replica %s: HTTP %d", req.URL.Path, resp.StatusCode)}
	}
	if dst == nil {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(dst)
}

func writeReplicaJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func replicaError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// replicaReject answers an epoch-guarded rejection: 409 plus the
// winning epoch (and target, when relevant) so the stale caller can
// adopt the winner's state.
func replicaReject(w http.ResponseWriter, epoch uint64, target string, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusConflict)
	json.NewEncoder(w).Encode(map[string]any{
		"error":  err.Error(),
		"epoch":  epoch,
		"target": target,
	})
}
