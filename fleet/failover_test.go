package fleet

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"debruijnring/session"
)

// TestShardHelperProcess is not a test: it is the shard subprocess body
// for the kill-9 failover test, re-executing this test binary.  It
// assembles a shard from FLEET_SHARD_* environment variables, prints
// its listen address, and serves until killed.
func TestShardHelperProcess(t *testing.T) {
	if os.Getenv("FLEET_SHARD_HELPER") != "1" {
		t.Skip("helper-process body; spawned by TestFleetFailoverKill9")
	}
	shard, err := NewShard(ShardConfig{
		JournalDir:  os.Getenv("FLEET_SHARD_JOURNAL"),
		ReplicateTo: os.Getenv("FLEET_SHARD_REPLICATE_TO"),
		Standby:     os.Getenv("FLEET_SHARD_STANDBY") == "1",
	})
	if err != nil {
		fmt.Printf("SHARD_ERR=%v\n", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Printf("SHARD_ERR=%v\n", err)
		os.Exit(1)
	}
	fmt.Printf("SHARD_ADDR=http://%s\n", ln.Addr())
	http.Serve(ln, shard.Handler())
}

// shardProc is one shard subprocess.
type shardProc struct {
	cmd *exec.Cmd
	url string
}

// startShardProc re-executes the test binary as a shard process and
// waits for it to announce its address.
func startShardProc(t *testing.T, journal, replicateTo string, standby bool) *shardProc {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestShardHelperProcess$")
	cmd.Env = append(os.Environ(),
		"FLEET_SHARD_HELPER=1",
		"FLEET_SHARD_JOURNAL="+journal,
		"FLEET_SHARD_REPLICATE_TO="+replicateTo,
	)
	if standby {
		cmd.Env = append(cmd.Env, "FLEET_SHARD_STANDBY=1")
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &shardProc{cmd: cmd}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	addr := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if v, ok := strings.CutPrefix(line, "SHARD_ADDR="); ok {
				addr <- v
				break
			}
			if v, ok := strings.CutPrefix(line, "SHARD_ERR="); ok {
				addr <- "ERR:" + v
				break
			}
		}
		io.Copy(io.Discard, stdout)
	}()
	select {
	case v := <-addr:
		if strings.HasPrefix(v, "ERR:") {
			t.Fatalf("shard process failed to start: %s", v[4:])
		}
		p.url = v
	case <-time.After(30 * time.Second):
		t.Fatal("shard process never announced its address")
	}
	return p
}

// TestFleetFailoverKill9 is the durability acceptance test: three
// primary shards each streaming journals to a standby replica, fronted
// by the router; the primary owning a slice of the sessions is
// SIGKILLed mid fault-stream.  Every event the fleet acknowledged must
// survive — the promoted replica serves each session at exactly the
// acked sequence with the acked ring hash — and traffic resumes within
// the health-check budget via the client's retries.
func TestFleetFailoverKill9(t *testing.T) {
	const groupsN, sessionsN, rounds, killAfter = 3, 12, 5, 2

	groups := make([]ShardGroup, groupsN)
	primaries := make([]*shardProc, groupsN)
	for i := range groups {
		replica := startShardProc(t, t.TempDir(), "", true)
		primary := startShardProc(t, t.TempDir(), replica.url, false)
		primaries[i] = primary
		groups[i] = ShardGroup{Name: fmt.Sprintf("g%d", i), Primary: primary.url, Replica: replica.url}
	}
	rt, err := NewRouter(groups, RouterOptions{
		CheckInterval: 50 * time.Millisecond,
		FailAfter:     2,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rts := httptest.NewServer(rt)
	defer rts.Close()

	ctx := context.Background()
	c := &session.Client{Base: rts.URL, MaxAttempts: 10, RetryBase: 50 * time.Millisecond, RetryCap: 500 * time.Millisecond}

	names := make([]string, sessionsN)
	rings := make(map[string][]string, sessionsN)
	acked := make(map[string]session.StateJSON, sessionsN)
	for i := range names {
		names[i] = fmt.Sprintf("kill-%02d", i)
		st, err := c.Create(ctx, session.CreateRequest{Name: names[i], Topology: "debruijn(2,6)"})
		if err != nil {
			t.Fatalf("create %s: %v", names[i], err)
		}
		rings[names[i]] = st.Ring
		acked[names[i]] = *st
	}

	// The victim owns the first session; find which groups own anything
	// so the blast radius is known.
	victim := rt.Lookup(names[0]).Name
	victimSessions := 0
	for _, name := range names {
		if rt.Lookup(name).Name == victim {
			victimSessions++
		}
	}
	if victimSessions == 0 || victimSessions == sessionsN {
		t.Fatalf("degenerate split: victim %s owns %d of %d sessions", victim, victimSessions, sessionsN)
	}
	t.Logf("victim group %s owns %d of %d sessions", victim, victimSessions, sessionsN)

	killed := false
	for round := 0; round < rounds; round++ {
		if round == killAfter {
			// SIGKILL the victim primary mid-stream: no flush, no
			// goodbye.  Acked events are already on its replica.
			for i, g := range groups {
				if g.Name == victim {
					if err := primaries[i].cmd.Process.Kill(); err != nil {
						t.Fatal(err)
					}
					primaries[i].cmd.Wait()
				}
			}
			killed = true
		}
		for _, name := range names {
			label := rings[name][2*round+1]
			res, err := c.AddFaults(ctx, name, session.FaultsRequest{NodeFaults: []string{label}})
			if err != nil {
				t.Fatalf("round %d (killed=%v): fault on %s: %v", round, killed, name, err)
			}
			acked[name] = res.State
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		status := rt.Status()
		promoted := false
		for _, gs := range status {
			if gs.Name == victim && gs.Promoted {
				promoted = true
			}
		}
		if promoted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("victim group %s never promoted: %+v", victim, rt.Status())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Every session — victim-owned restored from the replica, the rest
	// untouched — must sit at exactly its last acked seq and ring hash:
	// zero acknowledged-event loss, bit-identical rings.
	for _, name := range names {
		got, err := c.State(ctx, name)
		if err != nil {
			t.Fatalf("state %s after failover: %v", name, err)
		}
		want := acked[name]
		if got.Seq != want.Seq || got.RingHash != want.RingHash {
			t.Errorf("session %s (owner %s): seq/hash = %d/%s, acked %d/%s",
				name, rt.Lookup(name).Name, got.Seq, got.RingHash, want.Seq, want.RingHash)
		}
	}

	// The promoted group keeps absorbing the stream.
	for _, name := range names {
		if rt.Lookup(name).Name != victim {
			continue
		}
		if _, err := c.AddFaults(ctx, name, session.FaultsRequest{NodeFaults: []string{rings[name][11]}}); err != nil {
			t.Fatalf("post-failover fault on %s: %v", name, err)
		}
	}
}
