package fleet

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVnodes is the virtual-node count per shard on the hash ring.
// 128 vnodes keep the keyspace split within a few percent of fair for
// single-digit fleets while adding or removing one shard remaps only
// ~1/N of the session names.
const DefaultVnodes = 128

// Hash is a consistent-hash ring mapping session names to shard names.
// The ring is deterministic in its member set: two rings built from the
// same shard names — in any insertion order, in different processes, on
// different days — route every key identically, which is what lets a
// restarted router (or an independently configured second router) keep
// sending existing sessions to the shards that own their journals.
//
// Hash is not safe for concurrent mutation; Lookup is safe to call
// concurrently once the membership is settled.
type Hash struct {
	vnodes int
	keys   []uint64          // sorted vnode positions
	owner  map[uint64]string // vnode position -> shard name
}

// NewHash returns a ring with the given virtual-node count (<= 0 uses
// DefaultVnodes) over the named shards.
func NewHash(vnodes int, shards ...string) *Hash {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	h := &Hash{vnodes: vnodes, owner: make(map[uint64]string, vnodes*len(shards))}
	for _, s := range shards {
		h.Add(s)
	}
	return h
}

// Add inserts a shard's vnodes into the ring.  Adding a shard that is
// already a member is a no-op.
func (h *Hash) Add(shard string) {
	if h.Member(shard) {
		return
	}
	for i := 0; i < h.vnodes; i++ {
		pos := hashKey(shard + "#" + strconv.Itoa(i))
		cur, taken := h.owner[pos]
		// On the (vanishingly rare) vnode collision, the
		// lexicographically smaller shard name wins, independent of
		// insertion order — determinism over fairness.
		if taken && cur <= shard {
			continue
		}
		if !taken {
			h.keys = append(h.keys, pos)
		}
		h.owner[pos] = shard
	}
	sort.Slice(h.keys, func(i, j int) bool { return h.keys[i] < h.keys[j] })
}

// Remove deletes a shard's vnodes from the ring.
func (h *Hash) Remove(shard string) {
	kept := h.keys[:0]
	for _, pos := range h.keys {
		if h.owner[pos] == shard {
			delete(h.owner, pos)
			continue
		}
		kept = append(kept, pos)
	}
	h.keys = kept
}

// Member reports whether the shard is on the ring.
func (h *Hash) Member(shard string) bool {
	for _, s := range h.owner {
		if s == shard {
			return true
		}
	}
	return false
}

// Lookup returns the shard owning the key: the first vnode at or after
// the key's position, wrapping around.  An empty ring returns "".
func (h *Hash) Lookup(key string) string {
	if len(h.keys) == 0 {
		return ""
	}
	pos := hashKey(key)
	i := sort.Search(len(h.keys), func(i int) bool { return h.keys[i] >= pos })
	if i == len(h.keys) {
		i = 0
	}
	return h.owner[h.keys[i]]
}

func hashKey(s string) uint64 {
	f := fnv.New64a()
	f.Write([]byte(s)) //ringlint:allow journal hash.Hash writes never return an error
	// FNV alone spreads the near-identical vnode keys ("s0#17",
	// "s0#18", …) unevenly around the ring; a splitmix64 finalizer
	// restores avalanche so the keyspace split stays close to fair.
	x := f.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
