package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"

	"debruijnring/obs"
)

// initMetrics wires the router's own registry: per-group routing
// counters mirrored from live routing state at scrape time, plus the
// draining-response counter bumped on the hot path.  The fleet-wide
// view served at /metrics and /v1/metrics merges this registry with
// every active shard's snapshot — see FleetMetrics.
func (rt *Router) initMetrics() {
	rt.metrics = obs.NewRegistry()
	rt.metrics.SetHelp("fleet_router_requests_total", "Requests proxied to each shard group.")
	rt.metrics.SetHelp("fleet_router_promotions_total", "Replica promotions performed for each shard group.")
	rt.metrics.SetHelp("fleet_router_group_down", "Whether the group is down (1) or serving (0).")
	rt.metrics.SetHelp("fleet_router_draining_total", "Requests answered 503-draining during rebalances.")
	rt.drainCount = rt.metrics.Counter("fleet_router_draining_total")
	rt.metrics.AddCollector(func(r *obs.Registry) {
		view := rt.view.Load()
		if view == nil {
			return
		}
		for _, name := range view.order {
			g := view.groups[name]
			g.mu.Lock()
			promotions, down := g.promotions, g.down
			g.mu.Unlock()
			r.Counter("fleet_router_requests_total", "group", name).Set(g.requests.Load())
			r.Counter("fleet_router_promotions_total", "group", name).Set(int64(promotions))
			var dv int64
			if down {
				dv = 1
			}
			r.Gauge("fleet_router_group_down", "group", name).Set(dv)
		}
	})
}

// Metrics returns the router's own registry (per-group routing
// counters).  The fleet-wide merged view is FleetMetrics.
func (rt *Router) Metrics() *obs.Registry { return rt.metrics }

// FleetMetrics builds the fleet-wide metrics snapshot: the router's own
// registry merged with every active shard's /v1/metrics snapshot.
// Counters and gauges sum across shards; histograms merge exactly
// (same bucket scheme), so a quantile read off the merged
// session_repair_ns is the true fleet-wide quantile, not an average of
// per-shard quantiles.  Groups that fail to answer are skipped and
// returned in partial — their series are simply absent from this
// scrape, mirroring serveList's partial-listing contract.
func (rt *Router) FleetMetrics() (obs.Snapshot, []string, error) {
	view := rt.view.Load()
	snaps := []obs.Snapshot{rt.metrics.Snapshot()}
	type result struct {
		name string
		snap obs.Snapshot
		err  error
	}
	results := make(chan result, len(view.order))
	n := 0
	for _, name := range view.order {
		g := view.groups[name]
		if g.isDown() {
			continue
		}
		n++
		go func(name, base string) {
			snap, err := rt.fetchMetrics(base)
			results <- result{name: name, snap: snap, err: err}
		}(name, g.activeURL())
	}
	var partial []string
	for i := 0; i < n; i++ {
		res := <-results
		if res.err != nil {
			partial = append(partial, res.name)
			continue
		}
		snaps = append(snaps, res.snap)
	}
	sort.Strings(partial)
	merged, err := obs.Merge(snaps...)
	if err != nil {
		// Only a bucket-scheme mismatch (mixed binary versions) lands
		// here; nothing sane to merge.
		return obs.Snapshot{}, partial, err
	}
	return merged, partial, nil
}

// fetchMetrics pulls one shard's JSON metrics snapshot.
func (rt *Router) fetchMetrics(base string) (obs.Snapshot, error) {
	var snap obs.Snapshot
	resp, err := rt.fanout.Get(base + "/v1/metrics")
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
		return snap, fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return snap, err
	}
	return snap, nil
}

// serveMetrics answers GET /metrics (Prometheus text) and
// GET /v1/metrics (JSON snapshot) with the fleet-wide merged view.
func (rt *Router) serveMetrics(w http.ResponseWriter, text bool) {
	snap, partial, err := rt.FleetMetrics()
	if err != nil {
		routerError(w, http.StatusInternalServerError, err)
		return
	}
	if len(partial) > 0 {
		w.Header().Set("X-Fleet-Partial", strings.Join(partial, ","))
	}
	if text {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		snap.WriteText(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(snap)
}
