package fleet

import "sync"

// EpochGate serializes control-plane operations (promotion,
// replication re-targeting, rebalance hand-offs) issued by possibly
// dueling routers.  Two ringfleet routers run over the same hash ring
// with no coordination protocol; instead every control operation
// carries an epoch — a router-local monotonic stamp seeded from wall
// time — and each shard admits only strictly increasing epochs.  A
// partitioned or lagging router's stale operation bounces with the
// winning epoch in the 409 body, and the loser adopts the winner's
// state on its next health pass instead of undoing it.
//
// Epoch 0 (or an omitted epoch) is unguarded: manual curl-driven
// operations keep working without bookkeeping, at the operator's risk.
type EpochGate struct {
	mu      sync.Mutex
	current uint64
}

// Admit records epoch if it supersedes the gate's current value and
// reports whether the operation may proceed; the returned value is the
// gate's (possibly just-advanced) current epoch either way.
func (g *EpochGate) Admit(epoch uint64) (current uint64, ok bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if epoch == 0 {
		return g.current, true
	}
	if epoch <= g.current {
		return g.current, false
	}
	g.current = epoch
	return g.current, true
}

// Current returns the last admitted epoch.
func (g *EpochGate) Current() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.current
}
