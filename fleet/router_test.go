package fleet

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"debruijnring/session"
)

// newTestShard assembles an in-process shard behind an httptest server.
func newTestShard(t *testing.T, replicateTo string, standby bool) (*Shard, *httptest.Server) {
	t.Helper()
	shard, err := NewShard(ShardConfig{
		JournalDir:  t.TempDir(),
		ReplicateTo: replicateTo,
		Standby:     standby,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(shard.Handler())
	t.Cleanup(func() {
		ts.Close()
		shard.Close()
	})
	return shard, ts
}

func newTestRouter(t *testing.T, groups []ShardGroup, opts RouterOptions) (*Router, *httptest.Server) {
	t.Helper()
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	rt, err := NewRouter(groups, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt)
	t.Cleanup(func() {
		ts.Close()
		rt.Close()
	})
	return rt, ts
}

// TestRouterRoutesByName checks the core contract: every session
// operation lands on the shard the consistent hash names, listings
// merge the whole fleet, and deletion reaches the owner.
func TestRouterRoutesByName(t *testing.T) {
	shards := make(map[string]*Shard, 3)
	groups := make([]ShardGroup, 0, 3)
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("g%d", i)
		shard, ts := newTestShard(t, "", false)
		shards[name] = shard
		groups = append(groups, ShardGroup{Name: name, Primary: ts.URL})
	}
	rt, rts := newTestRouter(t, groups, RouterOptions{CheckInterval: time.Hour})

	ctx := context.Background()
	c := &session.Client{Base: rts.URL}
	var names []string
	for i := 0; i < 24; i++ {
		names = append(names, fmt.Sprintf("route-%02d", i))
	}
	owners := map[string]int{}
	for _, name := range names {
		if _, err := c.Create(ctx, session.CreateRequest{Name: name, Topology: "debruijn(2,6)"}); err != nil {
			t.Fatalf("create %s: %v", name, err)
		}
		owner := rt.Lookup(name).Name
		owners[owner]++
		if _, ok := shards[owner].Sessions.Get(name); !ok {
			t.Fatalf("session %s missing on its hash owner %s", name, owner)
		}
		for g, shard := range shards {
			if _, ok := shard.Sessions.Get(name); ok != (g == owner) {
				t.Fatalf("session %s presence on %s = %v, owner is %s", name, g, ok, owner)
			}
		}
	}
	if len(owners) < 2 {
		t.Fatalf("24 sessions all landed on one shard: %v", owners)
	}

	// State and faults flow through the router to the owner.
	st, err := c.State(ctx, names[0])
	if err != nil || st.Name != names[0] {
		t.Fatalf("state through router = %+v, %v", st, err)
	}
	if _, err := c.AddFaults(ctx, names[0], session.FaultsRequest{NodeFaults: []string{st.Ring[3]}}); err != nil {
		t.Fatalf("faults through router: %v", err)
	}

	// The listing merges every shard, sorted.
	list, err := c.List(ctx)
	if err != nil || len(list) != len(names) {
		t.Fatalf("list = %d sessions, %v", len(list), err)
	}
	for i := 1; i < len(list); i++ {
		if list[i-1].Name >= list[i].Name {
			t.Fatalf("merged listing unsorted at %d: %s >= %s", i, list[i-1].Name, list[i].Name)
		}
	}

	// Deletion reaches the owner.
	if err := c.Delete(ctx, names[1]); err != nil {
		t.Fatal(err)
	}
	if _, ok := shards[rt.Lookup(names[1]).Name].Sessions.Get(names[1]); ok {
		t.Error("deleted session still live on its shard")
	}

	// Stateless endpoints answer round-robin from any shard.
	resp, err := http.Get(rts.URL + "/v1/stats")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("stats through router: %v (%v)", err, resp)
	}
	resp.Body.Close()

	// Fleet status reports every group serving its primary.
	var status []GroupStatus
	resp, err = http.Get(rts.URL + "/v1/fleet")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(status) != 3 {
		t.Fatalf("fleet status = %+v", status)
	}
	for _, gs := range status {
		if gs.Promoted || gs.Down || gs.Active != gs.Primary {
			t.Errorf("group %s unexpectedly degraded: %+v", gs.Name, gs)
		}
	}
}

// TestRouterWatchSSEProxy checks the streaming path survives the proxy:
// SSE frames flush through unbuffered while the upstream holds the
// connection open.
func TestRouterWatchSSEProxy(t *testing.T) {
	shard, ts := newTestShard(t, "", false)
	_, rts := newTestRouter(t, []ShardGroup{{Name: "g0", Primary: ts.URL}},
		RouterOptions{CheckInterval: time.Hour})

	ctx := context.Background()
	c := &session.Client{Base: rts.URL}
	if _, err := c.Create(ctx, session.CreateRequest{Name: "sse", Topology: "debruijn(2,6)"}); err != nil {
		t.Fatal(err)
	}

	req, _ := http.NewRequest(http.MethodGet, rts.URL+"/v1/sessions/sse/watch", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type through proxy = %q", ct)
	}

	go func() {
		time.Sleep(20 * time.Millisecond)
		s, _ := shard.Sessions.Get("sse")
		ring := s.Ring()
		c.AddFaults(ctx, "sse", session.FaultsRequest{NodeFaults: []string{s.Network().Label(ring[3])}})
	}()

	sc := bufio.NewScanner(resp.Body)
	var kinds []string
	deadline := time.After(10 * time.Second)
	lines := make(chan string)
	go func() {
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	for len(kinds) < 2 {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("stream closed early; got %v", kinds)
			}
			if strings.HasPrefix(line, "event: ") {
				kinds = append(kinds, strings.TrimPrefix(line, "event: "))
			}
		case <-deadline:
			t.Fatalf("timed out waiting for proxied SSE frames; got %v", kinds)
		}
	}
	if kinds[0] != "embed" || kinds[1] != "fault" {
		t.Errorf("proxied SSE kinds = %v, want [embed fault]", kinds)
	}
}

// TestRouterPromotesDeadPrimary runs an in-process failover: a primary
// replicating to a standby dies, the health loop promotes the standby,
// and the session comes back through the router with an identical ring
// hash.  (The cross-process SIGKILL variant lives in failover_test.go.)
func TestRouterPromotesDeadPrimary(t *testing.T) {
	replica, replicaTS := newTestShard(t, "", true)
	primary, primaryTS := newTestShard(t, replicaTS.URL, false)
	_ = primary
	rt, rts := newTestRouter(t,
		[]ShardGroup{{Name: "g0", Primary: primaryTS.URL, Replica: replicaTS.URL}},
		RouterOptions{CheckInterval: 50 * time.Millisecond, FailAfter: 2})

	ctx := context.Background()
	c := &session.Client{Base: rts.URL}
	st, err := c.Create(ctx, session.CreateRequest{Name: "fo", Topology: "debruijn(2,6)"})
	if err != nil {
		t.Fatal(err)
	}
	var acked session.StateJSON
	for i := 0; i < 3; i++ {
		res, err := c.AddFaults(ctx, "fo", session.FaultsRequest{NodeFaults: []string{st.Ring[2*i+1]}})
		if err != nil {
			t.Fatalf("fault %d: %v", i, err)
		}
		acked = res.State
	}

	primaryTS.CloseClientConnections()
	primaryTS.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if rt.Status()[0].Promoted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("router never promoted the replica")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !replica.Replica.Promoted() {
		t.Fatal("replica shard not marked promoted")
	}

	got, err := c.State(ctx, "fo")
	if err != nil {
		t.Fatalf("state after failover: %v", err)
	}
	if got.RingHash != acked.RingHash || got.Seq != acked.Seq {
		t.Fatalf("restored session hash/seq = %s/%d, acked %s/%d",
			got.RingHash, got.Seq, acked.RingHash, acked.Seq)
	}
	// The promoted shard keeps absorbing events.
	if _, err := c.AddFaults(ctx, "fo", session.FaultsRequest{NodeFaults: []string{st.Ring[9]}}); err != nil {
		t.Fatalf("fault after failover: %v", err)
	}
}

// TestRouterCreateValidation pins the router's own 4xx paths.
func TestRouterCreateValidation(t *testing.T) {
	_, ts := newTestShard(t, "", false)
	_, rts := newTestRouter(t, []ShardGroup{{Name: "g0", Primary: ts.URL}},
		RouterOptions{CheckInterval: time.Hour})

	resp, err := http.Post(rts.URL+"/v1/sessions", "application/json", strings.NewReader(`{"topology":"debruijn(2,6)"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("nameless create through router = HTTP %d, want 400", resp.StatusCode)
	}
}
