package fleet

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"debruijnring/obs"
	"debruijnring/session"
)

// waitGroupStatus polls the router's fleet status until the single
// group's row satisfies pred, failing the test on timeout.
func waitGroupStatus(t *testing.T, rt *Router, desc string, pred func(GroupStatus) bool) GroupStatus {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		status := rt.Status()
		if len(status) > 0 && pred(status[0]) {
			return status[0]
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never reached %q: %+v", desc, status)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestFleetDoubleFailure is the self-healing acceptance test: a group
// survives TWO primary losses.  After the first SIGKILL the router
// promotes the replica and re-replicates it to a spare standby; once
// the group reports full strength ("ok" replication to the spare) the
// promoted shard is SIGKILLed too and the spare is promoted in turn.
// Zero acknowledged events may be lost across either failure.
func TestFleetDoubleFailure(t *testing.T) {
	const sessionsN = 6

	replica := startShardProc(t, t.TempDir(), "", true)
	primary := startShardProc(t, t.TempDir(), replica.url, false)
	spare := startShardProc(t, t.TempDir(), "", true)

	rt, err := NewRouter(
		[]ShardGroup{{Name: "g0", Primary: primary.url, Replica: replica.url}},
		RouterOptions{
			CheckInterval: 50 * time.Millisecond,
			FailAfter:     2,
			Spares:        []string{spare.url},
			Logf:          t.Logf,
		})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rts := httptest.NewServer(rt)
	defer rts.Close()

	ctx := context.Background()
	c := &session.Client{Base: rts.URL, MaxAttempts: 10, RetryBase: 50 * time.Millisecond, RetryCap: 500 * time.Millisecond}

	names := make([]string, sessionsN)
	rings := make(map[string][]string, sessionsN)
	acked := make(map[string]session.StateJSON, sessionsN)
	for i := range names {
		names[i] = fmt.Sprintf("dbl-%02d", i)
		st, err := c.Create(ctx, session.CreateRequest{Name: names[i], Topology: "debruijn(2,6)"})
		if err != nil {
			t.Fatalf("create %s: %v", names[i], err)
		}
		rings[names[i]] = st.Ring
		acked[names[i]] = *st
	}

	round := func(r int) {
		t.Helper()
		for _, name := range names {
			label := rings[name][2*r+1]
			res, err := c.AddFaults(ctx, name, session.FaultsRequest{NodeFaults: []string{label}})
			if err != nil {
				t.Fatalf("round %d: fault on %s: %v", r, name, err)
			}
			acked[name] = res.State
		}
	}
	verify := func(stage string) {
		t.Helper()
		for _, name := range names {
			got, err := c.State(ctx, name)
			if err != nil {
				t.Fatalf("state %s after %s: %v", name, stage, err)
			}
			want := acked[name]
			if got.Seq != want.Seq || got.RingHash != want.RingHash {
				t.Errorf("session %s after %s: seq/hash = %d/%s, acked %d/%s",
					name, stage, got.Seq, got.RingHash, want.Seq, want.RingHash)
			}
		}
	}

	round(0)
	round(1)

	// First failure: SIGKILL the primary mid-stream.  The replica holds
	// every acked event; the next round rides the client's retries
	// across the promotion.
	if err := primary.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	primary.cmd.Wait()
	round(2)

	waitGroupStatus(t, rt, "first promotion", func(gs GroupStatus) bool {
		return gs.Promotions == 1 && gs.Active == replica.url
	})
	verify("first failover")

	// Self-healing: the router must re-target the survivor at the spare
	// and return the group to full strength — promoted flag cleared,
	// replication "ok" — before a second failure is survivable.
	full := waitGroupStatus(t, rt, "full strength after re-replication", func(gs GroupStatus) bool {
		return gs.Promotions == 1 && !gs.Promoted &&
			gs.Replica == spare.url && gs.ReplicaState == string(ReplicaOK)
	})
	if full.Primary != replica.url {
		t.Fatalf("after re-replication primary = %s, want the promoted survivor %s", full.Primary, replica.url)
	}

	round(3)
	round(4)

	// Second failure: SIGKILL the promoted survivor.  Everything acked —
	// including the pre-first-failure prefix the spare only ever saw via
	// the bootstrap re-stream — must come back from the spare.
	if err := replica.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	replica.cmd.Wait()
	round(5)

	waitGroupStatus(t, rt, "second promotion", func(gs GroupStatus) bool {
		return gs.Promotions == 2 && gs.Active == spare.url
	})
	verify("second failover")
}

// TestStalePrimaryFencesAndDemotes pins the split-brain half of the
// lifecycle: once its replica has been promoted behind its back, a
// primary's next replicated append fences the shard (503 on the session
// API), and the demotion that follows leaves it a clean standby — no
// live sessions, no journals, replica ingest accepted again.
func TestStalePrimaryFencesAndDemotes(t *testing.T) {
	standbyShard, standbyTS := newTestShard(t, "", true)
	primaryShard, primaryTS := newTestShard(t, standbyTS.URL, false)

	ctx := context.Background()
	c := &session.Client{Base: primaryTS.URL, MaxAttempts: 1}
	st, err := c.Create(ctx, session.CreateRequest{Name: "split", Topology: "debruijn(2,6)"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.AddFaults(ctx, "split", session.FaultsRequest{NodeFaults: []string{st.Ring[1]}})
	if err != nil {
		t.Fatal(err)
	}
	acked := res.State

	// Hold the demotion so the fenced window is observable.
	fenced := make(chan struct{})
	release := make(chan struct{})
	primaryShard.repl.OnFenced = func() {
		close(fenced)
		<-release
		primaryShard.demote()
	}

	// Promote the standby behind the primary's back (epoch 0: manual op).
	pr, err := (&ReplicaClient{Base: standbyTS.URL}).Promote(0)
	if err != nil {
		t.Fatalf("manual promote: %v", err)
	}
	if pr.Restored != 1 {
		t.Fatalf("promote restored %d sessions, want 1", pr.Restored)
	}

	// The stale primary's next replicated append trips the fence.
	c.AddFaults(ctx, "split", session.FaultsRequest{NodeFaults: []string{st.Ring[3]}})
	select {
	case <-fenced:
	case <-time.After(5 * time.Second):
		t.Fatal("stale primary never fenced after its replica was promoted")
	}
	if !primaryShard.repl.Fenced() {
		t.Fatal("store not in fenced state")
	}

	// While fenced, the session API answers 503 — the client's retry
	// rides over to the promoted shard via the router.
	if _, err := c.State(ctx, "split"); err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("fenced shard answered a session read: %v", err)
	}

	// Let the demotion run: sessions closed, journals wiped, fence
	// lifted, process serving as a clean standby.
	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for primaryShard.demotions.Load() == 0 || primaryShard.repl.Fenced() {
		if time.Now().After(deadline) {
			t.Fatal("demotion never completed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if live := primaryShard.Sessions.List(); len(live) != 0 {
		t.Fatalf("%d sessions still live after demotion", len(live))
	}
	if names, err := primaryShard.local.Names(); err != nil || len(names) != 0 {
		t.Fatalf("journals after demotion = %v, %v; want none", names, err)
	}
	if list, err := c.List(ctx); err != nil || len(list) != 0 {
		t.Fatalf("demoted shard list = %v, %v; want empty 200", list, err)
	}

	// The promoted standby owns the session at exactly the last state it
	// acknowledged as a replica; the stale primary's post-promotion
	// append died with the wiped journals.
	cs := &session.Client{Base: standbyTS.URL, MaxAttempts: 1}
	got, err := cs.State(ctx, "split")
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != acked.Seq || got.RingHash != acked.RingHash {
		t.Fatalf("promoted state = %d/%s, want acked %d/%s", got.Seq, got.RingHash, acked.Seq, acked.RingHash)
	}

	// And the demoted ex-primary accepts replica ingest again — it can
	// serve as the promoted shard's new standby.
	evs, err := standbyShard.local.Load("split")
	if err != nil {
		t.Fatal(err)
	}
	if err := (&ReplicaClient{Base: primaryTS.URL}).Append("split", evs); err != nil {
		t.Fatalf("demoted shard refused replica ingest: %v", err)
	}
}

// TestFleetRebalanceMovesOnlyStolenKeyspace grows a two-group fleet to
// three at runtime under live write traffic.  Sessions in the moved
// keyspace ride the drain's 503-retry choreography (counted separately
// as DrainRetries, zero errors); sessions outside it must see no
// retries at all.  Journals land on the new owner hash-verified and are
// forgotten by the old ones.
func TestFleetRebalanceMovesOnlyStolenKeyspace(t *testing.T) {
	const sessionsN = 16

	shards := map[string]*Shard{}
	var groups []ShardGroup
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("g%d", i)
		shard, ts := newTestShard(t, "", false)
		shards[name] = shard
		groups = append(groups, ShardGroup{Name: name, Primary: ts.URL})
	}
	rt, rts := newTestRouter(t, groups, RouterOptions{CheckInterval: time.Hour})

	ctx := context.Background()
	setup := &session.Client{Base: rts.URL}
	names := make([]string, sessionsN)
	rings := make(map[string][]string, sessionsN)
	preSeq := make(map[string]uint64, sessionsN)
	oldOwner := make(map[string]string, sessionsN)
	for i := range names {
		names[i] = fmt.Sprintf("reb-%02d", i)
		st, err := setup.Create(ctx, session.CreateRequest{Name: names[i], Topology: "debruijn(2,6)"})
		if err != nil {
			t.Fatalf("create %s: %v", names[i], err)
		}
		rings[names[i]] = st.Ring
		preSeq[names[i]] = st.Seq
		oldOwner[names[i]] = rt.Lookup(names[i]).Name
	}

	// The shard that will join; not part of the fleet yet.
	newShard, newTS := newTestShard(t, "", false)

	// Live traffic: one client per session, re-applying its fault batch
	// (a journaled noop after the first application) throughout the
	// rebalance.  Per-client counters separate drain choreography from
	// real retries.
	clients := make(map[string]*session.Client, sessionsN)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var mu sync.Mutex
	writeErrs := map[string]error{}
	for _, name := range names {
		// Per-client registries: the retry assertions below read the
		// metrics surface, the same counters a fleet scrape serves.
		cl := &session.Client{Base: rts.URL, MaxAttempts: 12, RetryBase: 10 * time.Millisecond, RetryCap: 100 * time.Millisecond,
			Metrics: obs.NewRegistry()}
		clients[name] = cl
		label := rings[name][5]
		wg.Add(1)
		go func(name string, cl *session.Client) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := cl.AddFaults(ctx, name, session.FaultsRequest{NodeFaults: []string{label}}); err != nil {
					mu.Lock()
					writeErrs[name] = err
					mu.Unlock()
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
		}(name, cl)
	}
	time.Sleep(50 * time.Millisecond)

	// Grow the fleet through the HTTP membership endpoint.
	body := fmt.Sprintf(`{"name":"g2","primary":%q}`, newTS.URL)
	resp, err := http.Post(rts.URL+"/v1/fleet/shards", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/fleet/shards = HTTP %d", resp.StatusCode)
	}

	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	for name, err := range writeErrs {
		t.Errorf("writer %s failed: %v", name, err)
	}

	var moved, stayed []string
	for _, name := range names {
		if rt.Lookup(name).Name == "g2" {
			moved = append(moved, name)
		} else {
			stayed = append(stayed, name)
		}
	}
	if len(moved) == 0 || len(stayed) == 0 {
		t.Fatalf("degenerate rebalance: %d moved, %d stayed", len(moved), len(stayed))
	}
	t.Logf("rebalance moved %d of %d sessions to g2", len(moved), sessionsN)

	// Moved sessions live on the new owner; the old owner holds neither
	// the live session nor the journal.
	for _, name := range moved {
		if _, ok := newShard.Sessions.Get(name); !ok {
			t.Errorf("moved session %s not live on the new shard", name)
		}
		old := shards[oldOwner[name]]
		if _, ok := old.Sessions.Get(name); ok {
			t.Errorf("moved session %s still live on old owner %s", name, oldOwner[name])
		}
		if _, err := old.local.Load(name); !errors.Is(err, fs.ErrNotExist) {
			t.Errorf("old owner %s still holds journal for %s (err=%v)", oldOwner[name], name, err)
		}
	}

	// Only the moved keyspace saw the drain; everything else rode
	// through with zero retries of any kind.
	for _, name := range stayed {
		snap := clients[name].Metrics.Snapshot()
		r := snap.Counters[obs.Key("session_client_retries_total", "kind", "transient")]
		d := snap.Counters[obs.Key("session_client_retries_total", "kind", "drain")]
		if r != 0 || d != 0 {
			t.Errorf("unmoved session %s saw retries=%d drain=%d, want 0/0", name, r, d)
		}
	}

	// Every session — moved or not — kept absorbing events: state is at
	// or past its pre-rebalance seq and still accepts a fresh batch.
	for _, name := range names {
		st, err := setup.State(ctx, name)
		if err != nil {
			t.Fatalf("state %s after rebalance: %v", name, err)
		}
		if st.Seq < preSeq[name] || st.RingHash == "" {
			t.Errorf("session %s went backwards: seq %d (pre %d), hash %q", name, st.Seq, preSeq[name], st.RingHash)
		}
		if _, err := setup.AddFaults(ctx, name, session.FaultsRequest{NodeFaults: []string{rings[name][7]}}); err != nil {
			t.Fatalf("post-rebalance fault on %s: %v", name, err)
		}
	}
	list, err := setup.List(ctx)
	if err != nil || len(list) != sessionsN {
		t.Fatalf("merged list after rebalance = %d sessions, %v", len(list), err)
	}
}

// flakyBackend fronts a shard handler with a toggleable outage.
type flakyBackend struct {
	inner http.Handler
	down  atomic.Bool
}

func (f *flakyBackend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.down.Load() {
		http.Error(w, `{"error":"replica unreachable"}`, http.StatusServiceUnavailable)
		return
	}
	f.inner.ServeHTTP(w, r)
}

// TestReplicationCatchupReconnect pins satellite (a): a replica outage
// degrades the shard to catch-up (appends still acked, lag counted)
// instead of permanent local-only journaling, and when the replica
// returns the backoff loop re-streams the dirty journals until
// synchronous replication resumes with the standby fully converged.
func TestReplicationCatchupReconnect(t *testing.T) {
	standby, err := NewShard(ShardConfig{JournalDir: t.TempDir(), Standby: true, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer standby.Close()
	flaky := &flakyBackend{inner: standby.Handler()}
	fts := httptest.NewServer(flaky)
	defer fts.Close()

	primary, err := NewShard(ShardConfig{JournalDir: t.TempDir(), ReplicateTo: fts.URL, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	primary.repl.RetryBase = 2 * time.Millisecond
	primary.repl.RetryCap = 20 * time.Millisecond
	pts := httptest.NewServer(primary.Handler())
	defer pts.Close()

	ctx := context.Background()
	c := &session.Client{Base: pts.URL, MaxAttempts: 1}
	st, err := c.Create(ctx, session.CreateRequest{Name: "cr", Topology: "debruijn(2,6)"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddFaults(ctx, "cr", session.FaultsRequest{NodeFaults: []string{st.Ring[1]}}); err != nil {
		t.Fatal(err)
	}
	if rs := primary.Replication(); rs.State != ReplicaOK {
		t.Fatalf("replication state with healthy replica = %s, want ok", rs.State)
	}

	// Outage: appends keep acking, the shard degrades to catch-up and
	// counts the single-copy lag instead of silently dropping the
	// replica for good.
	flaky.down.Store(true)
	for i := 0; i < 2; i++ {
		if _, err := c.AddFaults(ctx, "cr", session.FaultsRequest{NodeFaults: []string{st.Ring[3 + 2*i]}}); err != nil {
			t.Fatalf("append during replica outage: %v", err)
		}
	}
	rs := primary.Replication()
	if rs.State != ReplicaCatchup || rs.Lag == 0 {
		t.Fatalf("during outage: state=%s lag=%d, want catchup with positive lag", rs.State, rs.Lag)
	}

	// Recovery: the backoff loop re-streams the journal and flips back
	// to synchronous replication with zero lag.
	flaky.down.Store(false)
	deadline := time.Now().Add(10 * time.Second)
	for {
		rs = primary.Replication()
		if rs.State == ReplicaOK && rs.Lag == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replication never recovered: state=%s lag=%d", rs.State, rs.Lag)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The standby converged on the full journal: its copy ends at the
	// primary's live seq and ring hash.
	sess, ok := primary.Sessions.Get("cr")
	if !ok {
		t.Fatal("session lost on primary")
	}
	snap := sess.StateSnapshot(false)
	evs, err := standby.local.Load("cr")
	if err != nil {
		t.Fatal(err)
	}
	seq, hash := journalSummary(evs)
	if seq != snap.Seq || hash != snap.RingHash {
		t.Fatalf("standby journal ends at %d/%s, primary live at %d/%s", seq, hash, snap.Seq, snap.RingHash)
	}

	// And the next append ships synchronously again.
	before := len(evs)
	if _, err := c.AddFaults(ctx, "cr", session.FaultsRequest{NodeFaults: []string{st.Ring[9]}}); err != nil {
		t.Fatal(err)
	}
	if evs, err = standby.local.Load("cr"); err != nil || len(evs) <= before {
		t.Fatalf("post-recovery append not replicated synchronously: %d events (was %d), %v", len(evs), before, err)
	}
}

// TestEpochGate pins the gate's ordering rules: zero is the unguarded
// manual path, epochs must strictly increase, and rejections report the
// winning epoch.
func TestEpochGate(t *testing.T) {
	var g EpochGate
	if _, ok := g.Admit(0); !ok {
		t.Fatal("epoch 0 (manual op) must always be admitted")
	}
	if _, ok := g.Admit(5); !ok {
		t.Fatal("first real epoch rejected")
	}
	if cur, ok := g.Admit(5); ok || cur != 5 {
		t.Fatalf("replayed epoch admitted (cur=%d ok=%v)", cur, ok)
	}
	if cur, ok := g.Admit(4); ok || cur != 5 {
		t.Fatalf("stale epoch admitted (cur=%d ok=%v)", cur, ok)
	}
	if _, ok := g.Admit(6); !ok {
		t.Fatal("advancing epoch rejected")
	}
	if _, ok := g.Admit(0); !ok {
		t.Fatal("epoch 0 must stay admitted after real epochs")
	}
	if g.Current() != 6 {
		t.Fatalf("current = %d, want 6", g.Current())
	}
}

// TestEpochGateGuardsControlPlane drives the dueling-routers contract
// over HTTP: a shard that has seen epoch N rejects control operations
// with stale epochs via 409 carrying the winning epoch (and, for
// re-targets, the winning target) so the losing router can adopt the
// decision, while promotion stays idempotent regardless of epoch.
func TestEpochGateGuardsControlPlane(t *testing.T) {
	_, ts := newTestShard(t, "", true)
	rc := &ReplicaClient{Base: ts.URL}

	// A winning router re-targets replication at epoch 100.
	if _, err := rc.SetTarget("", 100); err != nil {
		t.Fatalf("SetTarget epoch 100: %v", err)
	}

	// A slower router's decisions at lower epochs bounce with the
	// winning epoch attached.
	var pe *PeerError
	if _, err := rc.SetTarget("http://elsewhere:1", 50); !errors.As(err, &pe) ||
		pe.Status != http.StatusConflict || pe.Epoch != 100 {
		t.Fatalf("stale SetTarget = %v, want 409 PeerError carrying epoch 100", err)
	}
	pe = nil
	if _, err := rc.Promote(50); !errors.As(err, &pe) ||
		pe.Status != http.StatusConflict || pe.Epoch != 100 {
		t.Fatalf("stale Promote = %v, want 409 PeerError carrying epoch 100", err)
	}

	// A fresh epoch proceeds; a replayed promotion — any epoch — is the
	// idempotent convergence path, not a conflict.
	if resp, err := rc.Promote(150); err != nil || resp.Already {
		t.Fatalf("Promote epoch 150 = %+v, %v", resp, err)
	}
	if resp, err := rc.Promote(40); err != nil || !resp.Already {
		t.Fatalf("replayed Promote = %+v, %v; want Already=true", resp, err)
	}
}
