package fleet

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("session-%04d", i)
	}
	return out
}

// TestHashDeterministicAcrossOrder is the property a restarted (or
// independently configured) router depends on: the routing function is
// determined by the member set alone, not by construction history.
func TestHashDeterministicAcrossOrder(t *testing.T) {
	orders := [][]string{
		{"alpha", "beta", "gamma", "delta"},
		{"delta", "gamma", "beta", "alpha"},
		{"beta", "delta", "alpha", "gamma"},
	}
	rings := make([]*Hash, len(orders))
	for i, o := range orders {
		rings[i] = NewHash(0, o...)
	}
	// A ring that reached the same member set through churn must also
	// agree: add a shard, remove it again.
	churned := NewHash(0, orders[0]...)
	churned.Add("epsilon")
	churned.Remove("epsilon")
	rings = append(rings, churned)

	for _, k := range keys(2000) {
		want := rings[0].Lookup(k)
		for i, h := range rings[1:] {
			if got := h.Lookup(k); got != want {
				t.Fatalf("ring %d routes %q to %q, ring 0 to %q", i+1, k, got, want)
			}
		}
	}
}

// TestHashRemapFraction checks the consistent-hash contract: growing a
// fleet of N shards by one remaps roughly 1/(N+1) of the names — and
// every remapped name moves TO the new shard, never between old ones.
func TestHashRemapFraction(t *testing.T) {
	shards := []string{"s0", "s1", "s2", "s3"}
	before := NewHash(0, shards...)
	after := NewHash(0, append(shards, "s4")...)

	names := keys(5000)
	moved := 0
	for _, k := range names {
		b, a := before.Lookup(k), after.Lookup(k)
		if b == a {
			continue
		}
		moved++
		if a != "s4" {
			t.Fatalf("adding s4 moved %q from %q to %q (old-to-old churn)", k, b, a)
		}
	}
	frac := float64(moved) / float64(len(names))
	// Ideal is 1/5 = 20%; vnode variance keeps it in a band, nowhere
	// near the ~80% a naive mod-N rehash would churn.
	if frac < 0.08 || frac > 0.35 {
		t.Errorf("adding 1 shard to 4 remapped %.1f%% of names, want ≈20%%", 100*frac)
	}

	// Removing the shard again restores the original routing exactly.
	after.Remove("s4")
	for _, k := range names {
		if b, a := before.Lookup(k), after.Lookup(k); b != a {
			t.Fatalf("after remove, %q routes to %q, originally %q", k, a, b)
		}
	}
}

// TestHashDistribution checks the vnode count keeps the keyspace split
// usably fair for a small fleet.
func TestHashDistribution(t *testing.T) {
	h := NewHash(0, "s0", "s1", "s2")
	counts := map[string]int{}
	names := keys(9000)
	for _, k := range names {
		counts[h.Lookup(k)]++
	}
	for shard, n := range counts {
		frac := float64(n) / float64(len(names))
		// Ideal 33%; 128 vnodes should land each shard within about
		// ±12 points.
		if frac < 0.21 || frac > 0.45 {
			t.Errorf("shard %s owns %.1f%% of names, want ≈33%%", shard, 100*frac)
		}
	}
}

func TestHashEdgeCases(t *testing.T) {
	empty := NewHash(0)
	if got := empty.Lookup("anything"); got != "" {
		t.Errorf("empty ring routed to %q", got)
	}
	h := NewHash(0, "only")
	for _, k := range keys(50) {
		if got := h.Lookup(k); got != "only" {
			t.Fatalf("single-shard ring routed %q to %q", k, got)
		}
	}
	h.Add("only") // duplicate add is a no-op
	if !h.Member("only") || h.Member("ghost") {
		t.Error("membership bookkeeping wrong")
	}
}
