package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"debruijnring/session"
)

// ShardGroup is one consistent-hash slot of the fleet: a primary shard
// and (optionally) the replica its journal streams to.
type ShardGroup struct {
	// Name is the group's stable hash identity; session placement
	// follows it across router restarts and primary/replica swaps.
	// Empty defaults to the primary URL.
	Name string
	// Primary is the owning shard's base URL.
	Primary string
	// Replica is the standby's base URL; "" leaves the group
	// unreplicated (a dead primary then just stays down).
	Replica string
}

// RouterOptions tunes the router.
type RouterOptions struct {
	// Vnodes per group on the hash ring (<= 0 uses DefaultVnodes).
	Vnodes int
	// CheckInterval is the health-check cadence (default 2s).
	CheckInterval time.Duration
	// FailAfter is the consecutive health-check failures that trigger
	// promotion (default 3); the failover budget is roughly
	// CheckInterval*FailAfter plus the promotion itself.
	FailAfter int
	// Client is used for health checks; nil uses a client bounded by
	// CheckInterval.  Promotions use a separate 60s-bounded client
	// (restores replay journals and can take a while).
	Client *http.Client
	// Logf receives failover decisions; nil discards them.
	Logf func(string, ...any)
}

// group is one ShardGroup's live routing state.
type group struct {
	cfg ShardGroup

	mu       sync.Mutex
	active   string // base URL currently serving the group's keyspace
	promoted bool
	fails    int  // consecutive health-check failures of active
	down     bool // active failed FailAfter times and no promotion is possible

	requests atomic.Int64
}

func (g *group) activeURL() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.active
}

func (g *group) isDown() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.down
}

// Router fronts the fleet: it consistent-hashes session names to shard
// groups, proxies all /v1/sessions traffic (long-poll and SSE watch
// included) to the owning group's active shard, spreads the stateless
// one-shot endpoints round-robin, health-checks every group, and on a
// dead primary promotes the replica and re-targets the group.
type Router struct {
	opts    RouterOptions
	hash    *Hash
	order   []string // group names, sorted — round-robin order
	groups  map[string]*group
	proxies map[string]*httputil.ReverseProxy

	health  *http.Client
	promote *http.Client
	fanout  *http.Client // list-merge fan-out; health's timeout is too tight
	logf    func(string, ...any)

	rr   atomic.Uint64
	kick chan *group
	stop chan struct{}
	wg   sync.WaitGroup
}

// NewRouter builds a router over the groups and starts its health loop;
// Close stops it.  Group names must be unique.
func NewRouter(groups []ShardGroup, opts RouterOptions) (*Router, error) {
	if len(groups) == 0 {
		return nil, errors.New("fleet: router needs at least one shard group")
	}
	if opts.CheckInterval <= 0 {
		opts.CheckInterval = 2 * time.Second
	}
	if opts.FailAfter <= 0 {
		opts.FailAfter = 3
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	health := opts.Client
	if health == nil {
		health = &http.Client{Timeout: opts.CheckInterval, Transport: fleetTransport}
	}
	rt := &Router{
		opts:    opts,
		groups:  make(map[string]*group, len(groups)),
		proxies: make(map[string]*httputil.ReverseProxy, len(groups)),
		health:  health,
		promote: &http.Client{Timeout: 60 * time.Second, Transport: fleetTransport},
		fanout:  &http.Client{Timeout: 15 * time.Second, Transport: fleetTransport},
		logf:    logf,
		kick:    make(chan *group, len(groups)),
		stop:    make(chan struct{}),
	}
	names := make([]string, 0, len(groups))
	for _, cfg := range groups {
		if cfg.Name == "" {
			cfg.Name = cfg.Primary
		}
		if cfg.Primary == "" {
			return nil, fmt.Errorf("fleet: group %q has no primary URL", cfg.Name)
		}
		if _, err := url.Parse(cfg.Primary); err != nil {
			return nil, fmt.Errorf("fleet: group %q primary: %w", cfg.Name, err)
		}
		if _, dup := rt.groups[cfg.Name]; dup {
			return nil, fmt.Errorf("fleet: duplicate group name %q", cfg.Name)
		}
		g := &group{cfg: cfg, active: cfg.Primary}
		rt.groups[cfg.Name] = g
		rt.proxies[cfg.Name] = rt.newProxy(g)
		names = append(names, cfg.Name)
	}
	sort.Strings(names)
	rt.order = names
	rt.hash = NewHash(opts.Vnodes, names...)

	rt.wg.Add(1)
	go rt.healthLoop()
	return rt, nil
}

// Close stops the health loop (in-flight proxied requests finish on
// their own).
func (rt *Router) Close() {
	close(rt.stop)
	rt.wg.Wait()
}

// Lookup returns the group owning a session name.
func (rt *Router) Lookup(name string) ShardGroup {
	return rt.groups[rt.hash.Lookup(name)].cfg
}

// newProxy builds the group's reverse proxy.  The target resolves per
// request from the group's active URL, so a promotion re-targets every
// subsequent request without touching the proxy.  FlushInterval -1
// streams SSE watch frames through unbuffered.
func (rt *Router) newProxy(g *group) *httputil.ReverseProxy {
	return &httputil.ReverseProxy{
		Transport: fleetTransport,
		Rewrite: func(pr *httputil.ProxyRequest) {
			target, err := url.Parse(g.activeURL())
			if err != nil {
				return
			}
			pr.SetURL(target)
			pr.Out.Host = target.Host
		},
		FlushInterval: -1,
		ErrorHandler: func(w http.ResponseWriter, r *http.Request, err error) {
			// A proxy error is an early fault signal: wake the health
			// loop instead of waiting out the cadence.  The client sees
			// 502 and retries through the failover window.
			select {
			case rt.kick <- g:
			default:
			}
			routerError(w, http.StatusBadGateway,
				fmt.Errorf("fleet: shard %s unreachable: %w", g.cfg.Name, err))
		},
	}
}

// ServeHTTP routes: /v1/sessions traffic by consistent hash of the
// session name, the stateless endpoints round-robin across groups, and
// the router's own health and fleet-status endpoints.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	switch {
	case path == "/healthz":
		w.Write([]byte("ok\n"))
	case path == "/v1/fleet":
		rt.serveFleetStatus(w)
	case path == "/v1/sessions":
		if r.Method == http.MethodPost {
			rt.routeCreate(w, r)
			return
		}
		rt.serveList(w, r)
	case strings.HasPrefix(path, "/v1/sessions/"):
		seg := strings.SplitN(strings.TrimPrefix(path, "/v1/sessions/"), "/", 2)[0]
		name, err := url.PathUnescape(seg)
		if err != nil || name == "" {
			routerError(w, http.StatusBadRequest, fmt.Errorf("bad session name %q", seg))
			return
		}
		rt.proxyTo(rt.hash.Lookup(name), w, r)
	default:
		// Stateless endpoints (embed, verify, stats, …): any shard
		// answers; spread the load.
		rt.proxyTo(rt.nextGroup(), w, r)
	}
}

// routeCreate peeks the create payload for the session name — the only
// routing key POST /v1/sessions carries — then forwards the request,
// body restored, to the owning shard.
func (rt *Router) routeCreate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		routerError(w, http.StatusBadRequest, fmt.Errorf("reading create body: %w", err))
		return
	}
	var req struct {
		Name string `json:"name"`
	}
	if err := json.Unmarshal(body, &req); err != nil || req.Name == "" {
		routerError(w, http.StatusBadRequest, errors.New("create payload names no session"))
		return
	}
	r.Body = io.NopCloser(bytes.NewReader(body))
	r.ContentLength = int64(len(body))
	rt.proxyTo(rt.hash.Lookup(req.Name), w, r)
}

// serveList fans GET /v1/sessions out to every group and merges the
// summaries sorted by name.  Groups that fail to answer are skipped and
// named in the X-Fleet-Partial header — a session on a mid-failover
// group briefly disappears from listings rather than failing them.
func (rt *Router) serveList(w http.ResponseWriter, r *http.Request) {
	type result struct {
		name     string
		sessions []session.StateJSON
		err      error
	}
	results := make(chan result, len(rt.order))
	for _, name := range rt.order {
		g := rt.groups[name]
		go func() {
			req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, g.activeURL()+"/v1/sessions", nil)
			if err != nil {
				results <- result{name: name, err: err}
				return
			}
			resp, err := rt.fanout.Do(req)
			if err != nil {
				results <- result{name: name, err: err}
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				results <- result{name: name, err: fmt.Errorf("HTTP %d", resp.StatusCode)}
				return
			}
			var sessions []session.StateJSON
			err = json.NewDecoder(resp.Body).Decode(&sessions)
			results <- result{name: name, sessions: sessions, err: err}
		}()
	}
	merged := []session.StateJSON{}
	var partial []string
	for range rt.order {
		res := <-results
		if res.err != nil {
			partial = append(partial, res.name)
			continue
		}
		merged = append(merged, res.sessions...)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].Name < merged[j].Name })
	if len(partial) > 0 {
		sort.Strings(partial)
		w.Header().Set("X-Fleet-Partial", strings.Join(partial, ","))
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(merged)
}

func (rt *Router) proxyTo(groupName string, w http.ResponseWriter, r *http.Request) {
	g, ok := rt.groups[groupName]
	if !ok {
		routerError(w, http.StatusInternalServerError, fmt.Errorf("no group %q", groupName))
		return
	}
	if g.isDown() {
		routerError(w, http.StatusServiceUnavailable,
			fmt.Errorf("fleet: shard group %s is down (no replica to promote)", groupName))
		return
	}
	g.requests.Add(1)
	rt.proxies[groupName].ServeHTTP(w, r)
}

// nextGroup round-robins the stateless endpoints over non-down groups.
func (rt *Router) nextGroup() string {
	n := len(rt.order)
	start := int(rt.rr.Add(1))
	for i := 0; i < n; i++ {
		name := rt.order[(start+i)%n]
		if !rt.groups[name].isDown() {
			return name
		}
	}
	return rt.order[start%n]
}

// GroupStatus is one group's row in the fleet-status report.
type GroupStatus struct {
	Name     string `json:"name"`
	Primary  string `json:"primary"`
	Replica  string `json:"replica,omitempty"`
	Active   string `json:"active"`
	Promoted bool   `json:"promoted,omitempty"`
	Down     bool   `json:"down,omitempty"`
	Fails    int    `json:"consecutive_fails,omitempty"`
	Requests int64  `json:"requests"`
}

func (rt *Router) serveFleetStatus(w http.ResponseWriter) {
	out := make([]GroupStatus, 0, len(rt.order))
	for _, name := range rt.order {
		g := rt.groups[name]
		g.mu.Lock()
		out = append(out, GroupStatus{
			Name:     name,
			Primary:  g.cfg.Primary,
			Replica:  g.cfg.Replica,
			Active:   g.active,
			Promoted: g.promoted,
			Down:     g.down,
			Fails:    g.fails,
			Requests: g.requests.Load(),
		})
		g.mu.Unlock()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// Status returns the fleet-status rows (the /v1/fleet payload).
func (rt *Router) Status() []GroupStatus {
	var buf bytes.Buffer
	rw := &statusRecorder{body: &buf}
	rt.serveFleetStatus(rw)
	var out []GroupStatus
	json.Unmarshal(buf.Bytes(), &out)
	return out
}

// statusRecorder is a minimal ResponseWriter for Status.
type statusRecorder struct{ body *bytes.Buffer }

func (s *statusRecorder) Header() http.Header        { return http.Header{} }
func (s *statusRecorder) Write(p []byte) (int, error) { return s.body.Write(p) }
func (s *statusRecorder) WriteHeader(int)            {}

// healthLoop drives the failure detector: every CheckInterval (or
// immediately on a proxy-error kick) each group's active shard is
// probed; FailAfter consecutive failures promote the replica (or mark
// an unreplicated group down).  Recovery of the active shard clears the
// failure count — but a dead PRIMARY whose group already promoted stays
// retired even if it comes back: the replica owns the journals now.
func (rt *Router) healthLoop() {
	defer rt.wg.Done()
	ticker := time.NewTicker(rt.opts.CheckInterval)
	defer ticker.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case g := <-rt.kick:
			rt.checkGroup(g)
		case <-ticker.C:
			for _, name := range rt.order {
				rt.checkGroup(rt.groups[name])
			}
		}
	}
}

func (rt *Router) checkGroup(g *group) {
	ok := rt.probe(g.activeURL())
	g.mu.Lock()
	if ok {
		g.fails = 0
		if g.down {
			rt.logf("fleet: group %s recovered (%s answering)", g.cfg.Name, g.active)
		}
		g.down = false
		g.mu.Unlock()
		return
	}
	g.fails++
	promotable := !g.promoted && g.cfg.Replica != "" && g.fails >= rt.opts.FailAfter
	failed := g.fails
	g.mu.Unlock()

	if !promotable {
		if failed >= rt.opts.FailAfter {
			g.mu.Lock()
			if !g.down {
				rt.logf("fleet: group %s is down after %d failed checks (no replica to promote)", g.cfg.Name, failed)
			}
			g.down = true
			g.mu.Unlock()
		}
		return
	}

	rt.logf("fleet: group %s primary %s failed %d checks; promoting replica %s",
		g.cfg.Name, g.cfg.Primary, failed, g.cfg.Replica)
	rc := &ReplicaClient{Base: g.cfg.Replica, HTTP: rt.promote}
	resp, err := rc.Promote()
	g.mu.Lock()
	defer g.mu.Unlock()
	if err != nil {
		rt.logf("fleet: group %s promotion failed: %v", g.cfg.Name, err)
		g.down = true
		return
	}
	g.active = g.cfg.Replica
	g.promoted = true
	g.fails = 0
	g.down = false
	rt.logf("fleet: group %s now served by %s (%d session(s) restored, %d restore error(s))",
		g.cfg.Name, g.active, resp.Restored, len(resp.Errors))
}

// probe reports whether the shard's health endpoint answers.
func (rt *Router) probe(base string) bool {
	resp, err := rt.health.Get(base + "/healthz")
	if err != nil {
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

func routerError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
