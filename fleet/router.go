package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"debruijnring/obs"
	"debruijnring/session"
)

// ShardGroup is one consistent-hash slot of the fleet: a primary shard
// and (optionally) the replica its journal streams to.
type ShardGroup struct {
	// Name is the group's stable hash identity; session placement
	// follows it across router restarts and primary/replica swaps.
	// Empty defaults to the primary URL.
	Name string `json:"name"`
	// Primary is the owning shard's base URL.
	Primary string `json:"primary"`
	// Replica is the standby's base URL; "" leaves the group
	// unreplicated (a dead primary then just stays down).
	Replica string `json:"replica,omitempty"`
}

// RouterOptions tunes the router.
type RouterOptions struct {
	// Vnodes per group on the hash ring (<= 0 uses DefaultVnodes).
	Vnodes int
	// CheckInterval is the health-check cadence (default 2s).
	CheckInterval time.Duration
	// FailAfter is the consecutive health-check failures that trigger
	// promotion (default 3); the failover budget is roughly
	// CheckInterval*FailAfter plus the promotion itself.
	FailAfter int
	// Spares are standby shard URLs the router draws from after a
	// promotion: the promoted shard is re-targeted at a spare and
	// bootstraps it by streaming its journals, so the group returns to
	// full strength — one failure from safe again — without an operator.
	// With an empty pool a promoted group runs un-replicated (logged).
	Spares []string
	// Client is used for health checks; nil uses a client bounded by
	// CheckInterval.  Promotions use a separate 60s-bounded client
	// (restores replay journals and can take a while).
	Client *http.Client
	// Logf receives failover decisions; nil discards them.
	Logf func(string, ...any)
}

// group is one ShardGroup's live routing state.
type group struct {
	mu         sync.Mutex
	cfg        ShardGroup // mutable: re-replication resets primary/replica
	active     string     // base URL currently serving the group's keyspace
	promoted   bool
	promotions int  // lifetime promotions (survives full-strength resets)
	fails      int  // consecutive health-check failures of active
	down       bool // active failed FailAfter times and no promotion is possible

	requests atomic.Int64
}

func (g *group) activeURL() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.active
}

func (g *group) isDown() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.down
}

// routing is the immutable routing view: hash ring, group set, and
// proxies.  The hot path reads it through one atomic load; membership
// changes build a new view and swap the pointer (copy-on-write), so
// request routing never takes the membership lock.
type routing struct {
	hash    *Hash
	order   []string // group names, sorted — round-robin order
	groups  map[string]*group
	proxies map[string]*httputil.ReverseProxy
}

// drainView marks an in-flight rebalance: requests for moved sessions
// answer 503-with-Retry-After (the client's backoff rides them across
// the flip), and creates that would land differently under the pending
// ring are held off so no journal is stranded on the old owner.
type drainView struct {
	moved   map[string]bool
	pending *Hash
}

// Router fronts the fleet: it consistent-hashes session names to shard
// groups, proxies all /v1/sessions traffic (long-poll and SSE watch
// included) to the owning group's active shard, spreads the stateless
// one-shot endpoints round-robin, health-checks every group, promotes
// replicas of dead primaries (then re-replicates the survivor to a
// spare), and grows the shard set at runtime via POST /v1/fleet/shards
// with a drain + journal-handoff + hash-verify + flip sequence.
//
// Two routers may front the same fleet with no coordination protocol:
// both converge on the same failure decisions through health checks
// and the shards' epoch gates (see EpochGate); run them behind a VIP
// or round-robin DNS.
type Router struct {
	opts RouterOptions
	view atomic.Pointer[routing]
	// drain is non-nil while a rebalance is moving sessions.
	drain atomic.Pointer[drainView]

	memberMu sync.Mutex // serializes membership changes (view swaps)

	sparesMu sync.Mutex
	spares   []string

	epochMu   sync.Mutex
	lastEpoch uint64

	health  *http.Client
	promote *http.Client
	fanout  *http.Client // list-merge fan-out; health's timeout is too tight
	logf    func(string, ...any)

	// metrics is the router's own registry (per-group routing counters);
	// /metrics merges it with every shard's snapshot.  See metrics.go.
	metrics    *obs.Registry
	drainCount *obs.Counter

	rr   atomic.Uint64
	kick chan *group
	stop chan struct{}
	wg   sync.WaitGroup
}

// NewRouter builds a router over the groups and starts its health loop;
// Close stops it.  Group names must be unique.
func NewRouter(groups []ShardGroup, opts RouterOptions) (*Router, error) {
	if len(groups) == 0 {
		return nil, errors.New("fleet: router needs at least one shard group")
	}
	if opts.CheckInterval <= 0 {
		opts.CheckInterval = 2 * time.Second
	}
	if opts.FailAfter <= 0 {
		opts.FailAfter = 3
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	health := opts.Client
	if health == nil {
		health = &http.Client{Timeout: opts.CheckInterval, Transport: fleetTransport}
	}
	rt := &Router{
		opts:    opts,
		spares:  append([]string(nil), opts.Spares...),
		health:  health,
		promote: &http.Client{Timeout: 60 * time.Second, Transport: fleetTransport},
		fanout:  &http.Client{Timeout: 15 * time.Second, Transport: fleetTransport},
		logf:    logf,
		kick:    make(chan *group, 64),
		stop:    make(chan struct{}),
	}
	rt.initMetrics()
	view := &routing{
		groups:  make(map[string]*group, len(groups)),
		proxies: make(map[string]*httputil.ReverseProxy, len(groups)),
	}
	names := make([]string, 0, len(groups))
	for _, cfg := range groups {
		if cfg.Name == "" {
			cfg.Name = cfg.Primary
		}
		if err := validateGroup(cfg); err != nil {
			return nil, err
		}
		if _, dup := view.groups[cfg.Name]; dup {
			return nil, fmt.Errorf("fleet: duplicate group name %q", cfg.Name)
		}
		g := &group{cfg: cfg, active: cfg.Primary}
		view.groups[cfg.Name] = g
		view.proxies[cfg.Name] = rt.newProxy(g)
		names = append(names, cfg.Name)
	}
	sort.Strings(names)
	view.order = names
	view.hash = NewHash(opts.Vnodes, names...)
	rt.view.Store(view)

	rt.wg.Add(1)
	go rt.healthLoop()
	return rt, nil
}

func validateGroup(cfg ShardGroup) error {
	if cfg.Primary == "" {
		return fmt.Errorf("fleet: group %q has no primary URL", cfg.Name)
	}
	if _, err := url.Parse(cfg.Primary); err != nil {
		return fmt.Errorf("fleet: group %q primary: %w", cfg.Name, err)
	}
	return nil
}

// Close stops the health loop and any re-replication watchers
// (in-flight proxied requests finish on their own).
func (rt *Router) Close() {
	close(rt.stop)
	rt.wg.Wait()
}

// Lookup returns the group owning a session name.
func (rt *Router) Lookup(name string) ShardGroup {
	view := rt.view.Load()
	g := view.groups[view.hash.Lookup(name)]
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cfg
}

// nextEpoch mints a control-plane epoch: wall-clock milliseconds,
// forced monotonic per router.  Two uncoordinated routers' epochs are
// ordered by time (within clock skew), so the later decision wins at
// each shard's gate and the loser adopts it — see EpochGate.
func (rt *Router) nextEpoch() uint64 {
	rt.epochMu.Lock()
	defer rt.epochMu.Unlock()
	e := uint64(time.Now().UnixMilli())
	if e <= rt.lastEpoch {
		e = rt.lastEpoch + 1
	}
	rt.lastEpoch = e
	return e
}

// newProxy builds the group's reverse proxy.  The target resolves per
// request from the group's active URL, so a promotion re-targets every
// subsequent request without touching the proxy.  FlushInterval -1
// streams SSE watch frames through unbuffered.
func (rt *Router) newProxy(g *group) *httputil.ReverseProxy {
	return &httputil.ReverseProxy{
		Transport: fleetTransport,
		Rewrite: func(pr *httputil.ProxyRequest) {
			target, err := url.Parse(g.activeURL())
			if err != nil {
				return
			}
			pr.SetURL(target)
			pr.Out.Host = target.Host
		},
		FlushInterval: -1,
		ErrorHandler: func(w http.ResponseWriter, r *http.Request, err error) {
			// A proxy error is an early fault signal: wake the health
			// loop instead of waiting out the cadence.  The client sees
			// 502 and retries through the failover window.
			select {
			case rt.kick <- g:
			default:
			}
			routerError(w, http.StatusBadGateway,
				fmt.Errorf("fleet: shard %s unreachable: %w", g.cfg.Name, err))
		},
	}
}

// ServeHTTP routes: /v1/sessions traffic by consistent hash of the
// session name, the stateless endpoints round-robin across groups, and
// the router's own health, fleet-status and membership endpoints.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	switch {
	case path == "/healthz":
		w.Write([]byte("ok\n"))
	case path == "/v1/fleet":
		rt.serveFleetStatus(w)
	case path == "/metrics":
		rt.serveMetrics(w, true)
	case path == "/v1/metrics":
		rt.serveMetrics(w, false)
	case path == "/v1/fleet/shards":
		if r.Method != http.MethodPost {
			routerError(w, http.StatusMethodNotAllowed, errors.New("POST a shard group to add it"))
			return
		}
		rt.handleAddShard(w, r)
	case path == "/v1/sessions":
		if r.Method == http.MethodPost {
			rt.routeCreate(w, r)
			return
		}
		rt.serveList(w, r)
	case strings.HasPrefix(path, "/v1/sessions/"):
		seg := strings.SplitN(strings.TrimPrefix(path, "/v1/sessions/"), "/", 2)[0]
		name, err := url.PathUnescape(seg)
		if err != nil || name == "" {
			routerError(w, http.StatusBadRequest, fmt.Errorf("bad session name %q", seg))
			return
		}
		if d := rt.drain.Load(); d != nil && d.moved[name] {
			rt.routerDraining(w, name)
			return
		}
		view := rt.view.Load()
		rt.proxyTo(view, view.hash.Lookup(name), w, r)
	default:
		// Stateless endpoints (embed, verify, stats, …): any shard
		// answers; spread the load.
		view := rt.view.Load()
		rt.proxyTo(view, rt.nextGroup(view), w, r)
	}
}

// routerDraining answers a request for a session that is mid-handoff:
// 503 with Retry-After and the draining marker, so the client's backoff
// (session.Client counts these separately as ErrDraining) carries it
// across the routing flip.
func (rt *Router) routerDraining(w http.ResponseWriter, name string) {
	rt.drainCount.Inc()
	w.Header().Set("Retry-After", "1")
	w.Header().Set("X-Fleet-Draining", "1")
	routerError(w, http.StatusServiceUnavailable,
		fmt.Errorf("fleet: session %q is draining (rebalance in progress)", name))
}

// routeCreate peeks the create payload for the session name — the only
// routing key POST /v1/sessions carries — then forwards the request,
// body restored, to the owning shard.
func (rt *Router) routeCreate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		routerError(w, http.StatusBadRequest, fmt.Errorf("reading create body: %w", err))
		return
	}
	var req struct {
		Name string `json:"name"`
	}
	if err := json.Unmarshal(body, &req); err != nil || req.Name == "" {
		routerError(w, http.StatusBadRequest, errors.New("create payload names no session"))
		return
	}
	view := rt.view.Load()
	if d := rt.drain.Load(); d != nil && d.pending.Lookup(req.Name) != view.hash.Lookup(req.Name) {
		// Creating on the old owner would strand the journal the moment
		// the pending ring flips; hold the create until it does.
		rt.routerDraining(w, req.Name)
		return
	}
	r.Body = io.NopCloser(bytes.NewReader(body))
	r.ContentLength = int64(len(body))
	rt.proxyTo(view, view.hash.Lookup(req.Name), w, r)
}

// serveList fans GET /v1/sessions out to every group and merges the
// summaries sorted by name.  Groups that fail to answer are skipped and
// named in the X-Fleet-Partial header — a session on a mid-failover
// group briefly disappears from listings rather than failing them.
func (rt *Router) serveList(w http.ResponseWriter, r *http.Request) {
	view := rt.view.Load()
	type result struct {
		name     string
		sessions []session.StateJSON
		err      error
	}
	results := make(chan result, len(view.order))
	for _, name := range view.order {
		g := view.groups[name]
		go func() {
			sessions, err := rt.fetchSessions(r, g.activeURL())
			results <- result{name: name, sessions: sessions, err: err}
		}()
	}
	merged := []session.StateJSON{}
	var partial []string
	for range view.order {
		res := <-results
		if res.err != nil {
			partial = append(partial, res.name)
			continue
		}
		merged = append(merged, res.sessions...)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].Name < merged[j].Name })
	if len(partial) > 0 {
		sort.Strings(partial)
		w.Header().Set("X-Fleet-Partial", strings.Join(partial, ","))
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(merged)
}

// fetchSessions lists one shard's sessions.
func (rt *Router) fetchSessions(r *http.Request, base string) ([]session.StateJSON, error) {
	req, err := http.NewRequest(http.MethodGet, base+"/v1/sessions", nil)
	if err != nil {
		return nil, err
	}
	if r != nil {
		req = req.WithContext(r.Context())
	}
	resp, err := rt.fanout.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	var sessions []session.StateJSON
	if err := json.NewDecoder(resp.Body).Decode(&sessions); err != nil {
		return nil, err
	}
	return sessions, nil
}

func (rt *Router) proxyTo(view *routing, groupName string, w http.ResponseWriter, r *http.Request) {
	g, ok := view.groups[groupName]
	if !ok {
		routerError(w, http.StatusInternalServerError, fmt.Errorf("no group %q", groupName))
		return
	}
	if g.isDown() {
		routerError(w, http.StatusServiceUnavailable,
			fmt.Errorf("fleet: shard group %s is down (no replica to promote)", groupName))
		return
	}
	g.requests.Add(1)
	view.proxies[groupName].ServeHTTP(w, r)
}

// nextGroup round-robins the stateless endpoints over non-down groups.
func (rt *Router) nextGroup(view *routing) string {
	n := len(view.order)
	start := int(rt.rr.Add(1))
	for i := 0; i < n; i++ {
		name := view.order[(start+i)%n]
		if !view.groups[name].isDown() {
			return name
		}
	}
	return view.order[start%n]
}

// GroupStatus is one group's row in the fleet-status report.
type GroupStatus struct {
	Name       string `json:"name"`
	Primary    string `json:"primary"`
	Replica    string `json:"replica,omitempty"`
	Active     string `json:"active"`
	Promoted   bool   `json:"promoted,omitempty"`
	Promotions int    `json:"promotions,omitempty"`
	Down       bool   `json:"down,omitempty"`
	Fails      int    `json:"consecutive_fails,omitempty"`
	Requests   int64  `json:"requests"`
	// ReplicaState / ReplicaLag mirror the active shard's
	// /v1/replication report: "ok" means every acknowledged event is on
	// two processes; "catchup" means the standby is being re-streamed
	// and ReplicaLag events are single-copy meanwhile.
	ReplicaState string `json:"replica_state,omitempty"`
	ReplicaLag   int64  `json:"replica_lag,omitempty"`
}

func (rt *Router) serveFleetStatus(w http.ResponseWriter) {
	view := rt.view.Load()
	out := make([]GroupStatus, 0, len(view.order))
	for _, name := range view.order {
		g := view.groups[name]
		g.mu.Lock()
		out = append(out, GroupStatus{
			Name:       name,
			Primary:    g.cfg.Primary,
			Replica:    g.cfg.Replica,
			Active:     g.active,
			Promoted:   g.promoted,
			Promotions: g.promotions,
			Down:       g.down,
			Fails:      g.fails,
			Requests:   g.requests.Load(),
		})
		g.mu.Unlock()
	}
	// Merge each active shard's replication health (best-effort, in
	// parallel; an unreachable shard just reports no replica state).
	var wg sync.WaitGroup
	for i := range out {
		if out[i].Down {
			continue
		}
		wg.Add(1)
		go func(row *GroupStatus) {
			defer wg.Done()
			rs, err := (&ReplicaClient{Base: row.Active, HTTP: rt.health}).Replication()
			if err != nil {
				return
			}
			row.ReplicaState = string(rs.State)
			row.ReplicaLag = rs.Lag
		}(&out[i])
	}
	wg.Wait()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// Status returns the fleet-status rows (the /v1/fleet payload).
func (rt *Router) Status() []GroupStatus {
	var buf bytes.Buffer
	rw := &statusRecorder{body: &buf}
	rt.serveFleetStatus(rw)
	var out []GroupStatus
	json.Unmarshal(buf.Bytes(), &out)
	return out
}

// statusRecorder is a minimal ResponseWriter for Status.
type statusRecorder struct{ body *bytes.Buffer }

func (s *statusRecorder) Header() http.Header         { return http.Header{} }
func (s *statusRecorder) Write(p []byte) (int, error) { return s.body.Write(p) }
func (s *statusRecorder) WriteHeader(int)             {}

// healthLoop drives the failure detector: every CheckInterval (or
// immediately on a proxy-error kick) each group's active shard is
// probed; FailAfter consecutive failures promote the replica (or mark
// an unreplicated group down).  Recovery of the active shard clears the
// failure count — but a dead PRIMARY whose group already promoted stays
// retired even if it comes back: the replica owns the journals now (and
// the shard fences itself against exactly that return — see
// ReplicatedStore).
func (rt *Router) healthLoop() {
	defer rt.wg.Done()
	ticker := time.NewTicker(rt.opts.CheckInterval)
	defer ticker.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case g := <-rt.kick:
			rt.checkGroup(g)
		case <-ticker.C:
			view := rt.view.Load()
			for _, name := range view.order {
				rt.checkGroup(view.groups[name])
			}
		}
	}
}

func (rt *Router) checkGroup(g *group) {
	ok := rt.probe(g.activeURL())
	g.mu.Lock()
	if ok {
		g.fails = 0
		if g.down {
			rt.logf("fleet: group %s recovered (%s answering)", g.cfg.Name, g.active)
		}
		g.down = false
		g.mu.Unlock()
		return
	}
	g.fails++
	promotable := !g.promoted && g.cfg.Replica != "" && g.fails >= rt.opts.FailAfter
	failed := g.fails
	name, primary, replica := g.cfg.Name, g.cfg.Primary, g.cfg.Replica
	g.mu.Unlock()

	if !promotable {
		if failed >= rt.opts.FailAfter {
			g.mu.Lock()
			if !g.down {
				rt.logf("fleet: group %s is down after %d failed checks (no replica to promote)", name, failed)
			}
			g.down = true
			g.mu.Unlock()
		}
		return
	}

	rt.logf("fleet: group %s primary %s failed %d checks; promoting replica %s",
		name, primary, failed, replica)
	rc := &ReplicaClient{Base: replica, HTTP: rt.promote}
	resp, err := rc.Promote(rt.nextEpoch())
	g.mu.Lock()
	if err != nil {
		rt.logf("fleet: group %s promotion failed: %v", name, err)
		g.down = true
		g.mu.Unlock()
		return
	}
	g.active = replica
	g.promoted = true
	g.promotions++
	g.fails = 0
	g.down = false
	g.mu.Unlock()
	if resp.Already {
		rt.logf("fleet: group %s now served by %s (already promoted — a peer router won the race)", name, replica)
	} else {
		rt.logf("fleet: group %s now served by %s (%d session(s) restored, %d restore error(s))",
			name, replica, resp.Restored, len(resp.Errors))
	}

	// Close the durability gap: assign the survivor a fresh standby.
	rt.wg.Add(1)
	go rt.reReplicate(g)
}

// reReplicate re-arms a freshly promoted group with a standby from the
// spares pool: the promoted shard is re-targeted at the spare, its
// store streams every journal over (catch-up bootstrap), and once the
// shard reports replication "ok" the group is reset to full strength —
// promoted flag cleared, so the health loop can survive (and promote
// through) the NEXT failure too.
func (rt *Router) reReplicate(g *group) {
	defer rt.wg.Done()
	g.mu.Lock()
	active, name := g.active, g.cfg.Name
	g.mu.Unlock()

	spare := rt.takeSpare()
	if spare == "" {
		rt.logf("fleet: group %s has no spare standby; running un-replicated until one is added", name)
		return
	}
	rc := &ReplicaClient{Base: active, HTTP: rt.promote}
	if _, err := rc.SetTarget(spare, rt.nextEpoch()); err != nil {
		var pe *PeerError
		if errors.As(err, &pe) && pe.Status == http.StatusConflict && pe.Target != "" {
			// A peer router re-targeted first; adopt its assignment.
			rt.logf("fleet: group %s already re-targeted to %s by a peer router; adopting", name, pe.Target)
			rt.returnSpare(spare)
			spare = pe.Target
		} else {
			rt.returnSpare(spare)
			rt.logf("fleet: group %s re-replication to %s failed: %v", name, spare, err)
			return
		}
	} else {
		rt.logf("fleet: group %s re-replicating to spare %s", name, spare)
	}

	// Wait for the bootstrap to converge before declaring the group
	// safe again; acknowledged events are single-copy until then.
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		select {
		case <-rt.stop:
			return
		case <-time.After(rt.opts.CheckInterval / 4):
		}
		rs, err := rc.Replication()
		if err != nil || rs.State != ReplicaOK {
			continue
		}
		if rs.Target != "" && rs.Target != spare {
			// Another router's assignment won while we waited.
			rt.returnSpare(spare)
			spare = rs.Target
		}
		g.mu.Lock()
		g.cfg.Primary = active
		g.cfg.Replica = spare
		g.promoted = false
		g.fails = 0
		g.mu.Unlock()
		rt.logf("fleet: group %s back to full strength (primary %s, standby %s); a second failure is survivable", name, active, spare)
		return
	}
	rt.logf("fleet: group %s re-replication to %s did not converge before the deadline; group remains promoted and un-replicated", name, spare)
}

func (rt *Router) takeSpare() string {
	rt.sparesMu.Lock()
	defer rt.sparesMu.Unlock()
	if len(rt.spares) == 0 {
		return ""
	}
	spare := rt.spares[0]
	rt.spares = rt.spares[1:]
	return spare
}

func (rt *Router) returnSpare(spare string) {
	rt.sparesMu.Lock()
	defer rt.sparesMu.Unlock()
	rt.spares = append(rt.spares, spare)
}

// AddShard grows the fleet at runtime: validate and health-check the
// new group, compute the keyspace that moves to it under the extended
// hash ring, drain those sessions (503-retry), hand each journal off to
// the new owner (full stream through the replica-append path), verify
// the new owner's hash-verified replay against the journal's final seq
// and ring hash, then flip the routing view and drop the old copies.
// Sessions outside the moved keyspace are untouched and never see an
// error.  On any hand-off failure the whole rebalance rolls back: moved
// sessions are re-adopted by their old owners and the new copies
// dropped.
func (rt *Router) AddShard(cfg ShardGroup) error {
	rt.memberMu.Lock()
	defer rt.memberMu.Unlock()

	view := rt.view.Load()
	if cfg.Name == "" {
		cfg.Name = cfg.Primary
	}
	if err := validateGroup(cfg); err != nil {
		return err
	}
	if _, dup := view.groups[cfg.Name]; dup {
		return fmt.Errorf("fleet: group %q already exists", cfg.Name)
	}
	if !rt.probe(cfg.Primary) {
		return fmt.Errorf("fleet: new shard %s is not answering health checks", cfg.Primary)
	}

	order := append(append([]string(nil), view.order...), cfg.Name)
	sort.Strings(order)
	pending := NewHash(rt.opts.Vnodes, order...)

	// Discover the moved keyspace: sessions whose owner under the
	// extended ring is the new group.
	type movedSession struct {
		name string
		src  *group
	}
	var moved []movedSession
	for _, gname := range view.order {
		g := view.groups[gname]
		sessions, err := rt.fetchSessions(nil, g.activeURL())
		if err != nil {
			return fmt.Errorf("fleet: listing sessions on group %s: %w", gname, err)
		}
		for _, st := range sessions {
			if pending.Lookup(st.Name) == cfg.Name {
				moved = append(moved, movedSession{name: st.Name, src: g})
			}
		}
	}

	// Drain: writes (and reads) to the moved keyspace now answer
	// 503-retry; everything else proceeds normally.
	movedSet := make(map[string]bool, len(moved))
	for _, m := range moved {
		movedSet[m.name] = true
	}
	rt.drain.Store(&drainView{moved: movedSet, pending: pending})
	defer rt.drain.Store(nil)
	rt.logf("fleet: adding group %s (%s): %d session(s) moving", cfg.Name, cfg.Primary, len(moved))

	newShard := &ReplicaClient{Base: cfg.Primary, HTTP: rt.promote}
	handedOff := 0
	var failure error
	for _, m := range moved {
		src := &ReplicaClient{Base: m.src.activeURL(), HTTP: rt.promote}
		ho, err := src.Handoff(m.name, cfg.Primary, rt.nextEpoch())
		if err != nil {
			failure = fmt.Errorf("fleet: handoff of %s from group %s: %w", m.name, m.src.cfg.Name, err)
			handedOff++ // the source released it; roll this one back too
			break
		}
		ad, err := newShard.Adopt(m.name, rt.nextEpoch())
		if err != nil {
			failure = fmt.Errorf("fleet: adopt of %s on %s: %w", m.name, cfg.Primary, err)
			handedOff++
			break
		}
		if ad.Seq != ho.Seq || ad.RingHash != ho.RingHash || ho.RingHash == "" {
			failure = fmt.Errorf("fleet: handoff verification of %s failed: journal seq %d hash %q, replayed seq %d hash %q",
				m.name, ho.Seq, ho.RingHash, ad.Seq, ad.RingHash)
			handedOff++
			break
		}
		handedOff++
	}

	if failure != nil {
		rt.logf("fleet: rebalance aborted: %v; rolling back %d hand-off(s)", failure, handedOff)
		for _, m := range moved[:handedOff] {
			src := &ReplicaClient{Base: m.src.activeURL(), HTTP: rt.promote}
			if _, err := src.Adopt(m.name, rt.nextEpoch()); err != nil {
				rt.logf("fleet: rollback: re-adopt %s on group %s: %v", m.name, m.src.cfg.Name, err)
			}
			if err := newShard.Forget(m.name); err != nil {
				rt.logf("fleet: rollback: forget %s on %s: %v", m.name, cfg.Primary, err)
			}
		}
		return failure
	}

	// Flip: copy-on-write a new routing view including the new group.
	g := &group{cfg: cfg, active: cfg.Primary}
	next := &routing{
		hash:    pending,
		order:   order,
		groups:  make(map[string]*group, len(view.groups)+1),
		proxies: make(map[string]*httputil.ReverseProxy, len(view.proxies)+1),
	}
	for name, og := range view.groups {
		next.groups[name] = og
		next.proxies[name] = view.proxies[name]
	}
	next.groups[cfg.Name] = g
	next.proxies[cfg.Name] = rt.newProxy(g)
	rt.view.Store(next)

	// Post-flip cleanup: the old owners (and their standbys) drop the
	// moved journals.  Best-effort — a leftover journal is fenced by the
	// hand-off marker on the shard and never routed to.
	for _, m := range moved {
		src := &ReplicaClient{Base: m.src.activeURL(), HTTP: rt.promote}
		if err := src.Forget(m.name); err != nil {
			rt.logf("fleet: post-flip forget of %s on group %s: %v", m.name, m.src.cfg.Name, err)
		}
	}
	rt.logf("fleet: group %s joined: %d session(s) moved, hash ring now %d group(s)", cfg.Name, len(moved), len(order))
	return nil
}

// handleAddShard is POST /v1/fleet/shards: the HTTP face of AddShard.
func (rt *Router) handleAddShard(w http.ResponseWriter, r *http.Request) {
	var cfg ShardGroup
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&cfg); err != nil {
		routerError(w, http.StatusBadRequest, fmt.Errorf("bad shard group body: %w", err))
		return
	}
	if err := rt.AddShard(cfg); err != nil {
		routerError(w, http.StatusConflict, err)
		return
	}
	rt.serveFleetStatus(w)
}

// probe reports whether the shard's health endpoint answers.
func (rt *Router) probe(base string) bool {
	resp, err := rt.health.Get(base + "/healthz")
	if err != nil {
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

func routerError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
