package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"

	"debruijnring/engine"
	"debruijnring/obs"
	"debruijnring/session"
)

// ShardConfig assembles one fleet worker process.
type ShardConfig struct {
	// JournalDir is the local journal directory; "" keeps sessions
	// in-memory (then neither replication nor replica ingest works).
	JournalDir string
	// ReplicateTo is the peer replica's base URL (e.g.
	// "http://replica1:8080"); "" starts with outbound replication off.
	// Either way the store supports runtime re-targeting
	// (POST /v1/replication/target), so a promoted standby can be
	// assigned a fresh replica without a restart.
	ReplicateTo string
	// Standby suppresses the startup Restore: a standby shard holds its
	// journals cold until the router promotes it.  A primary restores
	// its own journals at startup as before.
	Standby bool
	// SnapshotEvery / EventBuffer are passed to the session manager.
	SnapshotEvery int
	EventBuffer   int
	// Workers / EmbedWorkers / CacheSize are passed to the engine
	// (EmbedWorkers bounds the intra-embed BFS parallelism of adapters
	// that shard internally; 0 = GOMAXPROCS, 1 = serial).
	Workers      int
	EmbedWorkers int
	CacheSize    int
	// Logf receives operational complaints; nil discards them.
	Logf func(string, ...any)
}

// Shard is one assembled fleet worker: engine, session manager wired
// through the replicated store, the replica ingest side, and the
// control endpoints a router drives (promotion, replication
// re-targeting, rebalance hand-offs).  cmd/ringsrv mounts these next to
// its one-shot embedding endpoints; tests and benchmarks serve Handler
// directly.
type Shard struct {
	Engine   *engine.Engine
	Sessions *session.Manager
	Replica  *Replica
	// Gate epoch-guards the control endpoints against dueling routers.
	Gate *EpochGate
	// Restored counts the sessions brought back hot at startup.
	Restored int
	// RestoreErrors carries the journals that failed to restore.
	RestoreErrors []error

	local session.Store    // raw on-disk store (replica ingest side)
	repl  *ReplicatedStore // the manager's store; nil without a journal
	logf  func(string, ...any)

	demotions atomic.Int64

	// handedOff names sessions released by a rebalance hand-off whose
	// journals are still here: a straggling request that raced the
	// router's drain gets 503-retry instead of a 404, and rides its
	// backoff over to the new owner.  Cleared by forget (flip succeeded)
	// or a local adopt (flip rolled back).
	hoMu      sync.Mutex
	handedOff map[string]bool
}

// NewShard builds a shard from the config: local store, replication
// wrapper, manager, replica ingest, epoch gate, and (unless Standby)
// the startup restore — guarded by a peer check, so an ex-primary
// restarting after its replica was promoted demotes instead of serving
// stale sessions.
func NewShard(cfg ShardConfig) (*Shard, error) {
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	eng := engine.New(engine.Options{Workers: cfg.Workers, EmbedWorkers: cfg.EmbedWorkers, CacheSize: cfg.CacheSize})

	var local session.Store
	var repl *ReplicatedStore
	var store session.Store
	if cfg.JournalDir != "" {
		local = session.NewDirStore(cfg.JournalDir)
		repl = NewReplicatedStore(local, cfg.ReplicateTo, eng, logf)
		store = repl
	} else if cfg.ReplicateTo != "" {
		return nil, errors.New("fleet: -replicate-to requires a journal directory (replication streams the journal)")
	}

	mgr := session.NewManager(eng, session.Options{
		Store:         store,
		SnapshotEvery: cfg.SnapshotEvery,
		EventBuffer:   cfg.EventBuffer,
	})
	s := &Shard{
		Engine:    eng,
		Sessions:  mgr,
		Replica:   NewReplica(local, mgr, logf),
		Gate:      &EpochGate{},
		local:     local,
		repl:      repl,
		logf:      logf,
		handedOff: make(map[string]bool),
	}
	s.Replica.Gate = s.Gate
	if repl != nil {
		repl.OnFenced = s.demote
	}
	// Mirror the shard's control-plane state into the engine's registry
	// at scrape time, so /metrics (and the router's fleet-wide merge)
	// carries session counts, replication health and fence/demotion
	// counts alongside the engine's own families.  Summed across shards
	// by the router's merge: fleet_replica_state{state="ok"} then counts
	// the shards currently in that state.
	reg := eng.Registry()
	reg.SetHelp("fleet_shard_sessions", "Live sessions on this shard.")
	reg.SetHelp("fleet_shard_demotions_total", "Times this shard fenced itself and demoted to a clean standby.")
	reg.SetHelp("fleet_replica_lag", "Events acked locally but not yet on the replica (catch-up backlog).")
	reg.SetHelp("fleet_replica_state", "Shards currently in each replication state (1 per shard).")
	reg.AddCollector(func(r *obs.Registry) {
		r.Gauge("fleet_shard_sessions").Set(int64(len(mgr.List())))
		r.Counter("fleet_shard_demotions_total").Set(s.demotions.Load())
		rs := s.Replication()
		r.Gauge("fleet_replica_lag").Set(rs.Lag)
		for _, st := range []ReplicaState{ReplicaOff, ReplicaOK, ReplicaCatchup} {
			var v int64
			if rs.State == st {
				v = 1
			}
			r.Gauge("fleet_replica_state", "state", string(st)).Set(v)
		}
	})
	if store != nil && !cfg.Standby {
		if cfg.ReplicateTo != "" && s.peerPromoted(cfg.ReplicateTo) {
			// The replica went hot while this process was dead: its
			// journals supersede ours.  Start as a clean standby.
			logf("fleet: replica %s is already promoted; starting as a clean standby instead of restoring", cfg.ReplicateTo)
			s.wipeJournals()
			repl.SetTarget("")
			s.demotions.Add(1)
			return s, nil
		}
		restored, errs := mgr.Restore()
		s.Restored = len(restored)
		s.RestoreErrors = errs
		for _, err := range errs {
			logf("fleet: restore: %v", err)
		}
	}
	return s, nil
}

// peerPromoted asks the configured replica whether it has gone hot; an
// unreachable peer reads as "no" (the first replicated append will
// fence us if we guessed wrong).
func (s *Shard) peerPromoted(base string) bool {
	st, err := (&ReplicaClient{Base: base}).Status()
	return err == nil && st.Promoted
}

// Replication reports the store's replication status plus the shard's
// control-plane counters; surfaced as GET /v1/replication and merged
// into the router's fleet status.
func (s *Shard) Replication() ReplicationStatus {
	if s.repl == nil {
		return ReplicationStatus{State: ReplicaOff}
	}
	return s.repl.Status()
}

// demote turns a fenced ex-primary into a clean standby: every live
// session is closed and every local journal removed (the promoted
// replica owns the authoritative copies — including every acknowledged
// event, by the synchronous-replication contract; what dies here is
// only the un-replicated suffix written after the promotion, which is
// exactly the split-brain data that must not survive), and the
// replication target is cleared, which also lifts the fence so replica
// ingest can stream this process back into standby duty.
func (s *Shard) demote() {
	s.demotions.Add(1)
	s.logf("fleet: demoting to clean standby: closing sessions and discarding superseded journals")
	for _, sess := range s.Sessions.List() {
		if err := s.Sessions.Delete(sess.Name()); err != nil {
			s.logf("fleet: demote: close %s: %v", sess.Name(), err)
		}
	}
	s.wipeJournals()
	if s.repl != nil {
		s.repl.SetTarget("")
	}
	s.logf("fleet: demotion complete; serving as standby")
}

// wipeJournals removes every local journal (demotion path; the store's
// fence/off state keeps the removals from propagating anywhere).
func (s *Shard) wipeJournals() {
	if s.local == nil {
		return
	}
	names, err := s.local.Names()
	if err != nil {
		s.logf("fleet: demote: listing journals: %v", err)
		return
	}
	for _, name := range names {
		if err := s.local.Remove(name); err != nil {
			s.logf("fleet: demote: remove journal %s: %v", name, err)
		}
	}
}

// Handler serves the shard's session API (fenced while a stale
// ex-primary is demoting), replication endpoints, stats, metrics
// (Prometheus text at /metrics, JSON snapshot at /v1/metrics) and health —
// everything the router and a peer primary need.  (The ringsrv binary
// serves a superset: these plus the one-shot embedding endpoints.)
func (s *Shard) Handler() http.Handler {
	mux := http.NewServeMux()
	h := s.SessionHandler()
	mux.Handle("/v1/sessions", h)
	mux.Handle("/v1/sessions/", h)
	mux.Handle("/v1/replica/", s.Replica.Handler())
	rh := s.ReplicationHandler()
	mux.Handle("/v1/replication", rh)
	mux.Handle("/v1/replication/", rh)
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeReplicaJSON(w, s.Engine.Stats())
	})
	mux.Handle("GET /metrics", s.Engine.Registry().Handler())
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeReplicaJSON(w, s.Engine.Registry().Snapshot())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return mux
}

// SessionHandler wraps the session API in the split-brain fence: once
// the replica reports itself promoted, this process answers 503 with
// Retry-After on every session request — the client's retry rides over
// to the promoted shard via the router — instead of serving (or
// mutating) stale sessions with a diverging journal.
func (s *Shard) SessionHandler() http.Handler {
	h := session.Handler(s.Sessions)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.repl != nil && s.repl.Fenced() {
			w.Header().Set("Retry-After", "1")
			replicaError(w, http.StatusServiceUnavailable,
				errors.New("fleet: fenced ex-primary (replica promoted); demoting to standby"))
			return
		}
		if name := sessionPathName(r.URL.Path); name != "" {
			if s.isHandedOff(name) {
				writeDraining(w, name)
				return
			}
			// The check above races the hand-off's release: a request can
			// pass it, then find the session gone.  Catch the resulting 404
			// at write time and turn it into the same 503-retry, so the
			// client rides its backoff to the new owner instead of failing.
			w = &drainOn404{ResponseWriter: w, shard: s, name: name}
		}
		h.ServeHTTP(w, r)
	})
}

// writeDraining answers a request for a handed-off session: 503 with
// Retry-After and the draining marker the client counts separately.
func writeDraining(w http.ResponseWriter, name string) {
	w.Header().Set("Retry-After", "1")
	w.Header().Set("X-Fleet-Draining", "1")
	replicaError(w, http.StatusServiceUnavailable,
		fmt.Errorf("fleet: session %q was handed off in a rebalance; retry through the router", name))
}

// drainOn404 rewrites a 404 for a session that is (by write time)
// marked handed-off into the drain's 503-retry: the session vanished
// between the fence check and the manager lookup because a rebalance
// released it, and the client must retry, not fail.
type drainOn404 struct {
	http.ResponseWriter
	shard   *Shard
	name    string
	wrote   bool
	drained bool
}

func (w *drainOn404) WriteHeader(code int) {
	if w.wrote {
		return
	}
	w.wrote = true
	if code == http.StatusNotFound && w.shard.isHandedOff(w.name) {
		w.drained = true
		writeDraining(w.ResponseWriter, w.name)
		return
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *drainOn404) Write(p []byte) (int, error) {
	if !w.wrote {
		w.WriteHeader(http.StatusOK)
	}
	if w.drained {
		// Swallow the handler's 404 body; the drain payload is written.
		return len(p), nil
	}
	return w.ResponseWriter.Write(p)
}

// Flush keeps the SSE watch path streaming through the wrapper.
func (w *drainOn404) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// sessionPathName extracts the session name from a /v1/sessions/{name}
// path ("" for the collection endpoints).
func sessionPathName(path string) string {
	rest, ok := strings.CutPrefix(path, "/v1/sessions/")
	if !ok {
		return ""
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	return rest
}

func (s *Shard) isHandedOff(name string) bool {
	s.hoMu.Lock()
	defer s.hoMu.Unlock()
	return s.handedOff[name]
}

func (s *Shard) setHandedOff(name string, off bool) {
	s.hoMu.Lock()
	defer s.hoMu.Unlock()
	if off {
		s.handedOff[name] = true
	} else {
		delete(s.handedOff, name)
	}
}

// replication wire formats.
type targetRequest struct {
	Target string `json:"target"`
	Epoch  uint64 `json:"epoch,omitempty"`
}

type handoffRequest struct {
	Name   string `json:"name"`
	Target string `json:"target"`
	Epoch  uint64 `json:"epoch,omitempty"`
}

type handoffResponse struct {
	Name     string `json:"name"`
	Events   int    `json:"events"`
	Seq      uint64 `json:"seq"`
	RingHash string `json:"ring_hash"`
}

type adoptRequest struct {
	Name  string `json:"name"`
	Epoch uint64 `json:"epoch,omitempty"`
}

type adoptResponse struct {
	Name     string `json:"name"`
	Seq      uint64 `json:"seq"`
	RingHash string `json:"ring_hash"`
}

type forgetRequest struct {
	Name string `json:"name"`
}

// replicationStatusResponse is the GET /v1/replication payload.
type replicationStatusResponse struct {
	ReplicationStatus
	Epoch     uint64 `json:"epoch,omitempty"`
	Demotions int64  `json:"demotions,omitempty"`
}

// ReplicationHandler exposes the shard's replication control plane:
//
//	GET  /v1/replication         replication state, target, lag, epoch
//	POST /v1/replication/target  point the store at a (new) replica and
//	                             bootstrap it by streaming every journal
//	POST /v1/replication/handoff release one session and stream its
//	                             journal to another shard (rebalance)
//	POST /v1/replication/adopt   restore a streamed-in journal hot and
//	                             re-replicate it to this shard's standby
//	POST /v1/replication/forget  drop a handed-off journal (post-flip)
//
// target, handoff and adopt are epoch-guarded (see EpochGate).
func (s *Shard) ReplicationHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/replication", s.handleReplicationStatus)
	mux.HandleFunc("POST /v1/replication/target", s.handleTarget)
	mux.HandleFunc("POST /v1/replication/handoff", s.handleHandoff)
	mux.HandleFunc("POST /v1/replication/adopt", s.handleAdopt)
	mux.HandleFunc("POST /v1/replication/forget", s.handleForget)
	return mux
}

func (s *Shard) handleReplicationStatus(w http.ResponseWriter, r *http.Request) {
	writeReplicaJSON(w, replicationStatusResponse{
		ReplicationStatus: s.Replication(),
		Epoch:             s.Gate.Current(),
		Demotions:         s.demotions.Load(),
	})
}

func (s *Shard) handleTarget(w http.ResponseWriter, r *http.Request) {
	if s.repl == nil {
		replicaError(w, http.StatusServiceUnavailable, errors.New("fleet: no journal store (start the shard with -journal)"))
		return
	}
	var req targetRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		replicaError(w, http.StatusBadRequest, fmt.Errorf("bad target body: %w", err))
		return
	}
	if current, ok := s.Gate.Admit(req.Epoch); !ok {
		replicaReject(w, current, s.repl.Status().Target,
			fmt.Errorf("fleet: stale replication-target epoch %d (current %d)", req.Epoch, current))
		return
	}
	if err := s.repl.SetTarget(req.Target); err != nil {
		replicaError(w, http.StatusInternalServerError, err)
		return
	}
	if req.Target != "" {
		s.logf("fleet: replication re-targeted to %s (epoch %d); bootstrapping", req.Target, req.Epoch)
	}
	writeReplicaJSON(w, replicationStatusResponse{
		ReplicationStatus: s.repl.Status(),
		Epoch:             s.Gate.Current(),
		Demotions:         s.demotions.Load(),
	})
}

// handleHandoff is the sending half of a rebalance: release the live
// session (journal flushed and kept), stream the full journal to the
// new owner's replica ingest, and report the journal's final seq and
// ring hash so the router can verify the new owner's replay against
// them end to end.
func (s *Shard) handleHandoff(w http.ResponseWriter, r *http.Request) {
	if s.repl == nil {
		replicaError(w, http.StatusServiceUnavailable, errors.New("fleet: no journal store (start the shard with -journal)"))
		return
	}
	var req handoffRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		replicaError(w, http.StatusBadRequest, fmt.Errorf("bad handoff body: %w", err))
		return
	}
	if !session.ValidName(req.Name) || req.Target == "" {
		replicaError(w, http.StatusBadRequest, errors.New("handoff needs a valid session name and a target URL"))
		return
	}
	if current, ok := s.Gate.Admit(req.Epoch); !ok {
		replicaReject(w, current, "", fmt.Errorf("fleet: stale handoff epoch %d (current %d)", req.Epoch, current))
		return
	}
	// Mark before releasing: a request that raced past the router's
	// drain must find either the live session or the 503-retry marker,
	// never the gap between them (a 404 is not retried by the client).
	s.setHandedOff(req.Name, true)
	// Release so the journal is final; "no session" is fine (a previous
	// attempt already released it, or it was never restored).
	if err := s.Sessions.Release(req.Name); err != nil && !strings.Contains(err.Error(), "no session") {
		s.setHandedOff(req.Name, false)
		replicaError(w, http.StatusInternalServerError, err)
		return
	}
	events, err := s.local.Load(req.Name)
	if errors.Is(err, fs.ErrNotExist) {
		s.setHandedOff(req.Name, false)
		replicaError(w, http.StatusNotFound, fmt.Errorf("fleet: no journal for %q", req.Name))
		return
	}
	if err != nil {
		// The session is already released; leave the marker up — the
		// router's rollback re-adopt clears it.
		replicaError(w, http.StatusInternalServerError, err)
		return
	}
	rc := &ReplicaClient{Base: req.Target}
	for start := 0; start < len(events); start += catchupBatch {
		end := min(start+catchupBatch, len(events))
		if err := rc.Append(req.Name, events[start:end]); err != nil {
			replicaError(w, http.StatusBadGateway, fmt.Errorf("fleet: streaming %s to %s: %w", req.Name, req.Target, err))
			return
		}
	}
	seq, hash := journalSummary(events)
	writeReplicaJSON(w, handoffResponse{Name: req.Name, Events: len(events), Seq: seq, RingHash: hash})
}

// handleAdopt is the receiving half: restore the streamed-in journal
// through the deterministic hash-verified replay, mark it for a full
// re-stream to this shard's own standby (the standby saw none of the
// journal's prefix), and report the live session's seq and ring hash
// for the router's end-to-end check.
func (s *Shard) handleAdopt(w http.ResponseWriter, r *http.Request) {
	var req adoptRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		replicaError(w, http.StatusBadRequest, fmt.Errorf("bad adopt body: %w", err))
		return
	}
	if !session.ValidName(req.Name) {
		replicaError(w, http.StatusBadRequest, errors.New("adopt needs a valid session name"))
		return
	}
	if current, ok := s.Gate.Admit(req.Epoch); !ok {
		replicaReject(w, current, "", fmt.Errorf("fleet: stale adopt epoch %d (current %d)", req.Epoch, current))
		return
	}
	sess, err := s.Sessions.RestoreNamed(req.Name)
	if err != nil {
		replicaError(w, http.StatusUnprocessableEntity, fmt.Errorf("fleet: adopt %s: %w", req.Name, err))
		return
	}
	s.setHandedOff(req.Name, false)
	if s.repl != nil {
		s.repl.Bootstrap(req.Name)
	}
	st := sess.StateSnapshot(false)
	writeReplicaJSON(w, adoptResponse{Name: req.Name, Seq: st.Seq, RingHash: st.RingHash})
}

// handleForget drops a handed-off journal after the routing flip —
// through the replicated store, so this shard's own standby drops its
// copy too.  Refused while the session is live (that means the flip
// went the other way).
func (s *Shard) handleForget(w http.ResponseWriter, r *http.Request) {
	if s.repl == nil {
		replicaError(w, http.StatusServiceUnavailable, errors.New("fleet: no journal store (start the shard with -journal)"))
		return
	}
	var req forgetRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		replicaError(w, http.StatusBadRequest, fmt.Errorf("bad forget body: %w", err))
		return
	}
	if _, live := s.Sessions.Get(req.Name); live {
		replicaError(w, http.StatusConflict, fmt.Errorf("fleet: session %q is live on this shard", req.Name))
		return
	}
	if err := s.repl.Remove(req.Name); err != nil && !errors.Is(err, fs.ErrNotExist) {
		replicaError(w, http.StatusInternalServerError, err)
		return
	}
	// The handed-off marker outlives the forget: a straggler request
	// still in flight under the pre-flip routing gets 503-retry here and
	// reaches the new owner through the router, instead of a 404.  A
	// later re-adoption (the keyspace moving back) clears it.
	w.WriteHeader(http.StatusNoContent)
}

// Shard-control client methods (the router side of the endpoints
// above).  They live on ReplicaClient: one client type per peer, for
// both the data stream and the control plane.

// SetTarget points the peer's replicated store at a (new) replica.
func (c *ReplicaClient) SetTarget(target string, epoch uint64) (*replicationStatusResponse, error) {
	body, err := json.Marshal(targetRequest{Target: target, Epoch: epoch})
	if err != nil {
		return nil, err
	}
	var resp replicationStatusResponse
	if err := c.post("/v1/replication/target", body, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Replication fetches the peer's replication status.
func (c *ReplicaClient) Replication() (*replicationStatusResponse, error) {
	req, err := http.NewRequest(http.MethodGet, c.Base+"/v1/replication", nil)
	if err != nil {
		return nil, err
	}
	var resp replicationStatusResponse
	if err := c.roundTrip(req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Handoff asks the peer to release one session and stream its journal
// to target.
func (c *ReplicaClient) Handoff(name, target string, epoch uint64) (*handoffResponse, error) {
	body, err := json.Marshal(handoffRequest{Name: name, Target: target, Epoch: epoch})
	if err != nil {
		return nil, err
	}
	var resp handoffResponse
	if err := c.post("/v1/replication/handoff", body, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Adopt asks the peer to restore a streamed-in journal hot.
func (c *ReplicaClient) Adopt(name string, epoch uint64) (*adoptResponse, error) {
	body, err := json.Marshal(adoptRequest{Name: name, Epoch: epoch})
	if err != nil {
		return nil, err
	}
	var resp adoptResponse
	if err := c.post("/v1/replication/adopt", body, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Forget asks the peer to drop a handed-off journal.
func (c *ReplicaClient) Forget(name string) error {
	body, err := json.Marshal(forgetRequest{Name: name})
	if err != nil {
		return err
	}
	return c.post("/v1/replication/forget", body, nil)
}

// journalSummary extracts the last sequence number and the most recent
// ring hash from a journal's events (snapshot events repeat the hash of
// the ring they captured, so the scan rarely walks far).
func journalSummary(events []session.Event) (seq uint64, hash string) {
	if len(events) > 0 {
		seq = events[len(events)-1].Seq
	}
	for i := len(events) - 1; i >= 0; i-- {
		if events[i].RingHash != "" {
			return seq, events[i].RingHash
		}
	}
	return seq, ""
}

// Close shuts the shard down: sessions snapshotted, journals flushed
// and synced, ingest writers released, catch-up loop stopped.
func (s *Shard) Close() {
	s.Sessions.Close()
	s.Replica.Close()
	if s.repl != nil {
		s.repl.Close()
	}
}
