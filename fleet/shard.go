package fleet

import (
	"errors"
	"net/http"

	"debruijnring/engine"
	"debruijnring/session"
)

// ShardConfig assembles one fleet worker process.
type ShardConfig struct {
	// JournalDir is the local journal directory; "" keeps sessions
	// in-memory (then neither replication nor replica ingest works).
	JournalDir string
	// ReplicateTo is the peer replica's base URL (e.g.
	// "http://replica1:8080"); "" disables outbound replication.
	ReplicateTo string
	// Standby suppresses the startup Restore: a standby shard holds its
	// journals cold until the router promotes it.  A primary restores
	// its own journals at startup as before.
	Standby bool
	// SnapshotEvery / EventBuffer are passed to the session manager.
	SnapshotEvery int
	EventBuffer   int
	// Workers / CacheSize are passed to the engine.
	Workers   int
	CacheSize int
	// Logf receives operational complaints; nil discards them.
	Logf func(string, ...any)
}

// Shard is one assembled fleet worker: engine, session manager wired
// through the (possibly replicated) store, and the replica ingest side.
// cmd/ringsrv mounts these next to its one-shot embedding endpoints;
// tests and benchmarks serve Handler directly.
type Shard struct {
	Engine   *engine.Engine
	Sessions *session.Manager
	Replica  *Replica
	// Restored counts the sessions brought back hot at startup.
	Restored int
	// RestoreErrors carries the journals that failed to restore.
	RestoreErrors []error
}

// NewShard builds a shard from the config: local store, optional
// replication wrapper, manager, replica ingest, and (unless Standby)
// the startup restore.
func NewShard(cfg ShardConfig) (*Shard, error) {
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	eng := engine.New(engine.Options{Workers: cfg.Workers, CacheSize: cfg.CacheSize})

	var local session.Store
	if cfg.JournalDir != "" {
		local = session.NewDirStore(cfg.JournalDir)
	}
	store := local
	if cfg.ReplicateTo != "" {
		if local == nil {
			return nil, errors.New("fleet: -replicate-to requires a journal directory (replication streams the journal)")
		}
		store = NewReplicatedStore(local, &ReplicaClient{Base: cfg.ReplicateTo}, eng, logf)
	}

	mgr := session.NewManager(eng, session.Options{
		Store:         store,
		SnapshotEvery: cfg.SnapshotEvery,
		EventBuffer:   cfg.EventBuffer,
	})
	s := &Shard{
		Engine:   eng,
		Sessions: mgr,
		Replica:  NewReplica(local, mgr, logf),
	}
	if store != nil && !cfg.Standby {
		restored, errs := mgr.Restore()
		s.Restored = len(restored)
		s.RestoreErrors = errs
		for _, err := range errs {
			logf("fleet: restore: %v", err)
		}
	}
	return s, nil
}

// Handler serves the shard's session API, replication endpoints, stats
// and health — everything the router and a peer primary need.  (The
// ringsrv binary serves a superset: these plus the one-shot embedding
// endpoints.)
func (s *Shard) Handler() http.Handler {
	mux := http.NewServeMux()
	h := session.Handler(s.Sessions)
	mux.Handle("/v1/sessions", h)
	mux.Handle("/v1/sessions/", h)
	mux.Handle("/v1/replica/", s.Replica.Handler())
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeReplicaJSON(w, s.Engine.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return mux
}

// Close shuts the shard down: sessions snapshotted, journals flushed
// and synced, ingest writers released.
func (s *Shard) Close() {
	s.Sessions.Close()
	s.Replica.Close()
}
