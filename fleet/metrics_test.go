package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"debruijnring/obs"
	"debruijnring/session"
)

func fetchSnapshot(t *testing.T, url string) obs.Snapshot {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestFleetMetricsMerge checks the fleet-wide metrics contract: the
// router's /v1/metrics equals the shard-local snapshots merged offline
// with the router's own registry (histograms bucket-for-bucket), and
// the Prometheus text endpoints serve the merged families.
func TestFleetMetricsMerge(t *testing.T) {
	shards := make([]*Shard, 2)
	urls := make([]string, 2)
	groups := make([]ShardGroup, 0, 2)
	for i := range shards {
		shard, ts := newTestShard(t, "", false)
		shards[i], urls[i] = shard, ts.URL
		groups = append(groups, ShardGroup{Name: fmt.Sprintf("g%d", i), Primary: ts.URL})
	}
	rt, rts := newTestRouter(t, groups, RouterOptions{CheckInterval: time.Hour})

	// Drive traffic through the router so both shards accumulate engine
	// and repair histogram samples.
	ctx := context.Background()
	c := &session.Client{Base: rts.URL}
	sessions := 0
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("m%d", i)
		st, err := c.Create(ctx, session.CreateRequest{Name: name, Topology: "debruijn(2,6)"})
		if err != nil {
			t.Fatal(err)
		}
		sessions++
		if _, err := c.AddFaults(ctx, name, session.FaultsRequest{NodeFaults: []string{st.Ring[3]}}); err != nil {
			t.Fatal(err)
		}
	}

	// Fleet-wide view through the router, then the same shards scraped
	// directly and merged offline with the router's own registry.
	merged := fetchSnapshot(t, rts.URL+"/v1/metrics")
	offline := []obs.Snapshot{rt.Metrics().Snapshot()}
	for _, u := range urls {
		offline = append(offline, fetchSnapshot(t, u+"/v1/metrics"))
	}
	want, err := obs.Merge(offline...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged.Counters, want.Counters) {
		t.Errorf("merged counters disagree with offline merge:\n got %v\nwant %v", merged.Counters, want.Counters)
	}
	if !reflect.DeepEqual(merged.Gauges, want.Gauges) {
		t.Errorf("merged gauges disagree with offline merge:\n got %v\nwant %v", merged.Gauges, want.Gauges)
	}
	if !reflect.DeepEqual(merged.Histograms, want.Histograms) {
		t.Errorf("merged histograms disagree with offline merge:\n got %v\nwant %v", merged.Histograms, want.Histograms)
	}

	// The merged view carries each layer's families: summed shard
	// gauges, per-tier repair histograms with fleet-wide counts, and the
	// router's per-group counters.
	if got := merged.Gauges["fleet_shard_sessions"]; got != int64(sessions) {
		t.Errorf("fleet_shard_sessions = %d, want %d", got, sessions)
	}
	var repairs int64
	for key, h := range merged.Histograms {
		if obs.Family(key) == "session_repair_ns" {
			repairs += h.Count
		}
	}
	if repairs < int64(sessions) {
		t.Errorf("fleet-wide repair histogram count = %d, want >= %d", repairs, sessions)
	}
	var routed int64
	for _, g := range groups {
		key := obs.Key("fleet_router_requests_total", "group", g.Name)
		if _, ok := merged.Counters[key]; !ok {
			t.Errorf("merged view is missing %s", key)
		}
		routed += merged.Counters[key]
	}
	if routed < int64(2*sessions) {
		t.Errorf("router request counters sum to %d, want >= %d", routed, 2*sessions)
	}
	// Per-shard collector state survives the merge: both shards run
	// replication off, so the summed state gauge counts both.
	if got := merged.Gauges[obs.Key("fleet_replica_state", "state", "off")]; got != 2 {
		t.Errorf(`fleet_replica_state{state="off"} = %d, want 2`, got)
	}

	// Text exposition on both layers.
	for _, u := range []string{urls[0] + "/metrics", rts.URL + "/metrics"} {
		resp, err := http.Get(u)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
			t.Errorf("GET %s: Content-Type = %q", u, ct)
		}
		for _, family := range []string{"engine_request_ns_bucket", "session_repair_ns_bucket", "fleet_shard_sessions"} {
			if !strings.Contains(string(body), family) {
				t.Errorf("GET %s: exposition is missing %s", u, family)
			}
		}
	}
	if !strings.Contains(mustGet(t, rts.URL+"/metrics"), "fleet_router_requests_total") {
		t.Error("router exposition is missing its own fleet_router_requests_total")
	}
}

// TestFleetMetricsPartial pins the degraded-scrape contract: a shard
// that stops answering before the health loop notices is named in
// X-Fleet-Partial, and the merged view still carries every family the
// reachable shards and the router itself contribute.
func TestFleetMetricsPartial(t *testing.T) {
	_, ts0 := newTestShard(t, "", false)
	_, ts1 := newTestShard(t, "", false)
	groups := []ShardGroup{
		{Name: "g0", Primary: ts0.URL},
		{Name: "g1", Primary: ts1.URL},
	}
	// An hour-long check interval parks the health loop, so the dead
	// shard is still considered up when the scrape fans out.
	_, rts := newTestRouter(t, groups, RouterOptions{CheckInterval: time.Hour})
	ts1.Close()

	resp, err := http.Get(rts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/metrics: HTTP %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Fleet-Partial"); got != "g1" {
		t.Errorf("X-Fleet-Partial = %q, want %q", got, "g1")
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if _, ok := snap.Histograms["engine_request_ns"]; !ok {
		t.Error("partial merge lost the reachable shard's engine_request_ns")
	}
	if _, ok := snap.Counters[obs.Key("fleet_router_requests_total", "group", "g0")]; !ok {
		t.Error("partial merge lost the router's own counters")
	}
}

func mustGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}
