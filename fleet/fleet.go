// Package fleet shards the session subsystem across worker processes
// and keeps every shard hot-failoverable — redundancy at the service
// layer to match the redundancy the ring-embedding algorithms provide
// inside the topology.
//
// The fleet has three roles, all built from the same ringsrv binary:
//
//   - A shard owns a slice of the session keyspace: a plain ringsrv
//     process whose session.Manager journals through a ReplicatedStore,
//     so every acknowledged journal event is also appended — before the
//     client sees the ack — to a designated replica shard over HTTP.
//
//   - A replica ingests those events into its own journal store via the
//     /v1/replica endpoints (Replica), cold: sessions are not live until
//     promotion.  Because journals are hash-chained and replay is
//     deterministic and hash-verified (see package session), promotion
//     restores every session bit-identical to the victim's last
//     acknowledged state.
//
//   - The router (Router, command ringfleet) consistent-hashes session
//     names to shard groups, proxies all /v1/sessions traffic — create,
//     fault/heal batches, long-poll and SSE watch — to the owning
//     shard, health-checks each group, and on shard death promotes the
//     replica and re-targets the group, restoring service without
//     losing a single acknowledged event.
//
// Failover is not the end of the story; the fleet heals back to full
// strength and changes shape while serving:
//
//   - Re-replication: after a promotion the router draws a standby
//     from its spare pool (RouterOptions.Spares), re-targets the
//     promoted shard at it (SetTarget), and bootstraps it with a full
//     journal stream per session, so the group survives a second
//     failure.  Catch-up replication retries with jittered backoff;
//     GET /v1/fleet exposes replica_state and replica_lag.
//
//   - Fencing: every control operation (promote, re-target) carries an
//     epoch, gated per shard by a strictly-increasing EpochGate.  A
//     stale primary that resurfaces fails its next replicated append
//     closed — 503 to the client, never a silent local-only ack — and
//     demotes itself to a clean standby.  The gate also lets two
//     uncoordinated routers front the same fleet (router HA): their
//     control ops become last-writer-wins, and a 409 rejection carries
//     the winning epoch and target for the loser to adopt.
//
//   - Live membership: Router.AddShard (POST /v1/fleet/shards) drains
//     the keyspace the new shard steals (requests get retryable 503s
//     with an X-Fleet-Draining marker), hands each moved session's
//     journal off to the new owner, hash-verifies the replayed state
//     against the source, then flips routing and deletes the source
//     copies.  Sessions that stay put never see a retry.
//
// The paper's thesis — lose a processor, keep the ring — applied one
// level up: lose a shard, keep every session.
package fleet

import "net/http"

// fleetTransport is the HTTP transport shared by the router's proxies
// and the replication clients.  DefaultTransport's 2 idle connections
// per host collapses fleet traffic — dozens of concurrent session
// streams funneling into a handful of shard hosts — into constant
// connection churn; a deep idle pool keeps each stream on a hot
// connection.
var fleetTransport = func() *http.Transport {
	t := http.DefaultTransport.(*http.Transport).Clone()
	t.MaxIdleConns = 256
	t.MaxIdleConnsPerHost = 128
	return t
}()
