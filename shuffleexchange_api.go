package debruijnring

import (
	"debruijnring/topology"
)

// ShuffleExchangeRing is a fault-free ring carried into the shuffle-
// exchange network SE(d,n): Ring lists the underlying De Bruijn ring
// processors, Walk the SE nodes traversed (ring processors plus at most
// one rotation intermediate per hop).
type ShuffleExchangeRing struct {
	Ring []int
	Walk []int
}

// Dilation returns the embedding's dilation (1 or 2).
func (r *ShuffleExchangeRing) Dilation() int {
	if len(r.Walk) > len(r.Ring) {
		return 2
	}
	return 1
}

// EmbedRingShuffleExchange carries the Chapter 2 fault-free ring into the
// shuffle-exchange network SE(d,n): every De Bruijn hop factors as a
// shuffle followed by an exchange, giving an embedding with dilation ≤ 2
// and congestion 1 per directed channel that stays clear of faulty
// necklaces (the intermediates are rotations of ring processors).  It is
// the topology.ShuffleExchange adapter's embedding.
func EmbedRingShuffleExchange(d, n int, faults []int) (*ShuffleExchangeRing, error) {
	net, err := topology.NewShuffleExchange(d, n)
	if err != nil {
		return nil, err
	}
	ring, walk, err := net.EmbedWalk(faults)
	if err != nil {
		return nil, err
	}
	return &ShuffleExchangeRing{Ring: ring, Walk: walk}, nil
}
