package debruijnring

import (
	"fmt"

	"debruijnring/internal/debruijn"
	"debruijnring/internal/ffc"
)

// Graph is a d-ary De Bruijn network B(d,n) with dⁿ processors.
type Graph struct {
	d, n int
	g    *debruijn.Graph
}

// New returns B(d,n).  d must be at least 2 and n at least 1.
func New(d, n int) (*Graph, error) {
	if d < 2 || n < 1 {
		return nil, fmt.Errorf("debruijnring: invalid dimensions d=%d, n=%d", d, n)
	}
	return &Graph{d: d, n: n, g: debruijn.New(d, n)}, nil
}

// D returns the arity (alphabet size) d.
func (g *Graph) D() int { return g.d }

// N returns the word length n.
func (g *Graph) N() int { return g.n }

// Nodes returns the processor count dⁿ.
func (g *Graph) Nodes() int { return g.g.Size }

// Edges returns the link count d·dⁿ (loops included).
func (g *Graph) Edges() int { return g.g.NumEdges() }

// Node parses a processor label such as "0112" into its node id.
func (g *Graph) Node(label string) (int, error) { return g.g.Parse(label) }

// Label renders a node id as its d-ary word.
func (g *Graph) Label(node int) string { return g.g.String(node) }

// Neighbors returns the De Bruijn successors of a node.
func (g *Graph) Neighbors(node int) []int {
	return g.g.Successors(node, nil)
}

// Ring is an embedded ring: a cycle of distinct processors in which
// consecutive entries (and the final-to-first pair) are joined by network
// links.  Embedded rings have unit dilation and congestion.
type Ring struct {
	Nodes []int
}

// Len returns the ring length.
func (r *Ring) Len() int { return len(r.Nodes) }

// EmbedStats reports the bookkeeping of a node-fault embedding.
type EmbedStats struct {
	BStarSize           int // processors in the surviving component B*
	FaultyNecklaceNodes int // processors sacrificed with faulty necklaces (≤ nf)
	Eccentricity        int // broadcast rounds from the ring's root (Step 1.1)
	LowerBound          int // dⁿ − nf, guaranteed when f ≤ d−2 (Prop 2.2)
}

// EmbedRing finds a ring through every processor of the largest component
// that survives removing the necklaces of the faulty nodes (the FFC
// algorithm of Chapter 2).  With f ≤ d−2 faults the ring is guaranteed to
// have length at least dⁿ − nf.
func (g *Graph) EmbedRing(faults []int) (*Ring, *EmbedStats, error) {
	if err := g.checkNodes(faults); err != nil {
		return nil, nil, err
	}
	res, err := ffc.Embed(g.g, faults)
	if err != nil {
		return nil, nil, err
	}
	stats := &EmbedStats{
		BStarSize:           res.BStarSize,
		FaultyNecklaceNodes: res.FaultyNodeCount,
		Eccentricity:        res.Eccentricity,
		LowerBound:          ffc.UpperBound(g.g, len(faults)),
	}
	return &Ring{Nodes: res.Cycle}, stats, nil
}

// DistributedStats reports the communication cost of the network-level
// embedding: the paper's complexity measure.
type DistributedStats struct {
	Rounds         int   // total synchronous communication rounds (O(K + n))
	BroadcastRound int   // rounds spent broadcasting (K, the eccentricity)
	Messages       int64 // total messages exchanged
}

// EmbedRingDistributed runs the distributed implementation of the FFC
// algorithm (§2.4) on a simulated synchronous network and returns the same
// ring as EmbedRing together with its communication cost.
func (g *Graph) EmbedRingDistributed(faults []int) (*Ring, *DistributedStats, error) {
	if err := g.checkNodes(faults); err != nil {
		return nil, nil, err
	}
	seq, err := ffc.Embed(g.g, faults)
	if err != nil {
		return nil, nil, err
	}
	res, err := ffc.EmbedDistributedFrom(g.g, faults, seq.Root)
	if err != nil {
		return nil, nil, err
	}
	stats := &DistributedStats{
		Rounds:         res.Rounds.Total(),
		BroadcastRound: res.Rounds.Broadcast,
		Messages:       res.Messages,
	}
	return &Ring{Nodes: res.Cycle}, stats, nil
}

// RouteAround returns a fault-free path of length at most 2n between two
// processors on nonfaulty necklaces, valid whenever at most d−2 necklaces
// are faulty (Proposition 2.2).
func (g *Graph) RouteAround(from, to int, faults []int) ([]int, error) {
	if err := g.checkNodes(append([]int{from, to}, faults...)); err != nil {
		return nil, err
	}
	return ffc.FaultFreePath(g.g, from, to, ffc.FaultyNecklaces(g.g, faults))
}

// Verify reports whether the ring is a valid cycle of this network that
// avoids the given faulty nodes.
func (g *Graph) Verify(r *Ring, faults []int) bool {
	if r == nil || !g.g.IsCycle(r.Nodes) {
		return false
	}
	bad := make(map[int]bool, len(faults))
	for _, f := range faults {
		bad[f] = true
	}
	for _, v := range r.Nodes {
		if bad[v] {
			return false
		}
	}
	return true
}

func (g *Graph) checkNodes(nodes []int) error {
	for _, v := range nodes {
		if v < 0 || v >= g.g.Size {
			return fmt.Errorf("debruijnring: node %d out of range [0,%d)", v, g.g.Size)
		}
	}
	return nil
}
