package debruijnring

import (
	"fmt"

	"debruijnring/internal/debruijn"
	"debruijnring/internal/ffc"
	"debruijnring/topology"
)

// Graph is a d-ary De Bruijn network B(d,n) with dⁿ processors.  It is a
// thin wrapper over the topology.DeBruijn adapter; Network exposes the
// adapter for use with the topology-generic engine and verification
// helpers.
type Graph struct {
	d, n int
	g    *debruijn.Graph
	net  *topology.DeBruijn
}

// New returns B(d,n).  d must be at least 2 and n at least 1.
func New(d, n int) (*Graph, error) {
	net, err := topology.NewDeBruijn(d, n)
	if err != nil {
		return nil, fmt.Errorf("debruijnring: invalid dimensions d=%d, n=%d", d, n)
	}
	return &Graph{d: d, n: n, g: net.Graph(), net: net}, nil
}

// Network returns the topology-generic adapter for this network,
// implementing topology.Network, topology.RingEmbedder and
// topology.CycleFamily.
func (g *Graph) Network() *topology.DeBruijn { return g.net }

// D returns the arity (alphabet size) d.
func (g *Graph) D() int { return g.d }

// N returns the word length n.
func (g *Graph) N() int { return g.n }

// Nodes returns the processor count dⁿ.
func (g *Graph) Nodes() int { return g.g.Size }

// Edges returns the link count d·dⁿ (loops included).
func (g *Graph) Edges() int { return g.g.NumEdges() }

// Node parses a processor label such as "0112" into its node id.
func (g *Graph) Node(label string) (int, error) { return g.g.Parse(label) }

// Label renders a node id as its d-ary word.
func (g *Graph) Label(node int) string { return g.g.String(node) }

// Neighbors returns the De Bruijn successors of a node.
func (g *Graph) Neighbors(node int) []int {
	return g.g.Successors(node, nil)
}

// Ring is an embedded ring: a cycle of distinct processors in which
// consecutive entries (and the final-to-first pair) are joined by network
// links.  Embedded rings have unit dilation and congestion.
type Ring struct {
	Nodes []int
}

// Len returns the ring length.
func (r *Ring) Len() int { return len(r.Nodes) }

// EmbedStats reports the bookkeeping of a node-fault embedding.
type EmbedStats struct {
	BStarSize           int // processors in the surviving component B*
	FaultyNecklaceNodes int // processors sacrificed with faulty necklaces (≤ nf)
	Eccentricity        int // broadcast rounds from the ring's root (Step 1.1)
	LowerBound          int // dⁿ − nf, guaranteed when f ≤ d−2 (Prop 2.2)
}

// EmbedRing finds a ring through every processor of the largest component
// that survives removing the necklaces of the faulty nodes (the FFC
// algorithm of Chapter 2).  With f ≤ d−2 faults the ring is guaranteed to
// have length at least dⁿ − nf.
func (g *Graph) EmbedRing(faults []int) (*Ring, *EmbedStats, error) {
	if err := g.checkNodes(faults); err != nil {
		return nil, nil, err
	}
	res, err := ffc.Embed(g.g, faults)
	if err != nil {
		return nil, nil, err
	}
	stats := &EmbedStats{
		BStarSize:           res.BStarSize,
		FaultyNecklaceNodes: res.FaultyNodeCount,
		Eccentricity:        res.Eccentricity,
		LowerBound:          ffc.UpperBound(g.g, len(faults)),
	}
	return &Ring{Nodes: res.Cycle}, stats, nil
}

// DistributedStats reports the communication cost of the network-level
// embedding: the paper's complexity measure.
type DistributedStats struct {
	Rounds         int   // total synchronous communication rounds (O(K + n))
	BroadcastRound int   // rounds spent broadcasting (K, the eccentricity)
	Messages       int64 // total messages exchanged
}

// EmbedRingDistributed runs the distributed implementation of the FFC
// algorithm (§2.4) on a simulated synchronous network and returns the same
// ring as EmbedRing together with its communication cost.
func (g *Graph) EmbedRingDistributed(faults []int) (*Ring, *DistributedStats, error) {
	if err := g.checkNodes(faults); err != nil {
		return nil, nil, err
	}
	seq, err := ffc.Embed(g.g, faults)
	if err != nil {
		return nil, nil, err
	}
	res, err := ffc.EmbedDistributedFrom(g.g, faults, seq.Root)
	if err != nil {
		return nil, nil, err
	}
	stats := &DistributedStats{
		Rounds:         res.Rounds.Total(),
		BroadcastRound: res.Rounds.Broadcast,
		Messages:       res.Messages,
	}
	return &Ring{Nodes: res.Cycle}, stats, nil
}

// RouteAround returns a fault-free path of length at most 2n between two
// processors on nonfaulty necklaces, valid whenever at most d−2 necklaces
// are faulty (Proposition 2.2).
func (g *Graph) RouteAround(from, to int, faults []int) ([]int, error) {
	if err := g.checkNodes(append([]int{from, to}, faults...)); err != nil {
		return nil, err
	}
	return ffc.FaultFreePath(g.g, from, to, ffc.FaultyNecklaces(g.g, faults))
}

// Verify reports whether the ring is a valid cycle of this network that
// avoids the given faulty nodes.  It is the shared topology.VerifyRing
// codepath specialized to node faults.
func (g *Graph) Verify(r *Ring, faults []int) bool {
	return r != nil && topology.VerifyRing(g.net, r.Nodes, topology.NodeFaults(faults...))
}

// EmbedRingFaults embeds a ring around a unified fault set through the
// topology-generic adapter: node-only sets run the Chapter 2 FFC
// algorithm, edge-only sets the Chapter 3 Hamiltonian construction; see
// topology.DeBruijn.EmbedRing for the mixed-set semantics.
func (g *Graph) EmbedRingFaults(f topology.FaultSet) (*Ring, *topology.EmbedInfo, error) {
	cycle, info, err := g.net.EmbedRing(f)
	if err != nil {
		return nil, nil, err
	}
	return &Ring{Nodes: cycle}, info, nil
}

func (g *Graph) checkNodes(nodes []int) error {
	for _, v := range nodes {
		if v < 0 || v >= g.g.Size {
			return fmt.Errorf("debruijnring: node %d out of range [0,%d)", v, g.g.Size)
		}
	}
	return nil
}
