// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablations for the design choices called out in
// DESIGN.md.  Each benchmark exercises exactly the code path that produces
// the corresponding artifact; `go test -bench=. -benchmem` therefore
// doubles as the experiment driver (EXPERIMENTS.md records the outputs).
package debruijnring

import (
	"testing"

	"debruijnring/internal/broadcast"
	"debruijnring/internal/butterfly"
	"debruijnring/internal/debruijn"
	"debruijnring/internal/ffc"
	"debruijnring/internal/hamilton"
	"debruijnring/internal/hypercube"
	"debruijnring/internal/lfsr"
	"debruijnring/internal/necklace"
	"debruijnring/internal/repair"
	"debruijnring/internal/word"
	"debruijnring/obs"
	"debruijnring/topology"
)

// BenchmarkTable21 regenerates a Table 2.1 row set: component size and
// eccentricity statistics in B(2,10) under random faults.
func BenchmarkTable21(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ffc.Simulate(2, 10, []int{1, 5, 10, 50}, 25, uint64(i))
	}
}

// BenchmarkTable22 regenerates a Table 2.2 row set for B(4,5).
func BenchmarkTable22(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ffc.Simulate(4, 5, []int{1, 5, 10, 50}, 25, uint64(i))
	}
}

// BenchmarkTable31 regenerates Table 3.1: ψ(d) for 2 ≤ d ≤ 38.
func BenchmarkTable31(b *testing.B) {
	sink := 0
	for i := 0; i < b.N; i++ {
		for d := 2; d <= 38; d++ {
			sink += hamilton.Psi(d)
		}
	}
	_ = sink
}

// BenchmarkTable32 regenerates Table 3.2: MAX{ψ(d)−1, φ(d)} for 2 ≤ d ≤ 35.
func BenchmarkTable32(b *testing.B) {
	sink := 0
	for i := 0; i < b.N; i++ {
		for d := 2; d <= 35; d++ {
			sink += hamilton.MaxEdgeFaults(d)
		}
	}
	_ = sink
}

// BenchmarkFig11GraphBuild regenerates the Figure 1.1/1.2 structures: the
// graphs B(2,3), B(2,4) and the UB degree census.
func BenchmarkFig11GraphBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, nn := range []int{3, 4} {
			g := debruijn.New(2, nn)
			census := 0
			for x := 0; x < g.Size; x++ {
				census += g.UndirectedDegree(x)
			}
			_ = census
		}
	}
}

// BenchmarkFig23FFC regenerates the Example 2.1 / Figures 2.3–2.4
// instance: the 21-node fault-free cycle of B(3,3) − {020, 112}, including
// the necklace adjacency graph.
func BenchmarkFig23FFC(b *testing.B) {
	g := debruijn.New(3, 3)
	f1, _ := g.Parse("020")
	f2, _ := g.Parse("112")
	faults := []int{f1, f2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ffc.Embed(g, faults)
		if err != nil || len(res.Cycle) != 21 {
			b.Fatal("wrong cycle")
		}
	}
}

// BenchmarkProp22 measures the FFC embedding at the guarantee boundary
// f = d−2 on the 4096-node B(4,6).
func BenchmarkProp22(b *testing.B) {
	g := debruijn.New(4, 6)
	faults := ffc.WorstCaseFaults(g, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ffc.Embed(g, faults)
		if err != nil || len(res.Cycle) < ffc.UpperBound(g, 2) {
			b.Fatal("bound violated")
		}
	}
}

// BenchmarkProp23 measures the binary single-fault embedding in B(2,10).
func BenchmarkProp23(b *testing.B) {
	g := debruijn.New(2, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ffc.Embed(g, []int{i % g.Size})
		if err != nil || len(res.Cycle) < g.Size-(g.N+1) {
			b.Fatal("bound violated")
		}
	}
}

// BenchmarkEmbedParallelSerial and BenchmarkEmbedParallel measure one
// cold FFC embed of the 65536-node B(2,16) — the large-instance class
// the session fleet re-embeds on splice exhaustion — with the Step 1.1
// broadcast BFS serial versus sharded across GOMAXPROCS workers.  The
// two are bit-identical in output (TestEmbedParallelDeterminism), so on
// 1-core CI hosts they must also run neck and neck: the parallel
// benchmark is gated to pin the determinism machinery's overhead near
// zero, not to demonstrate speedup (see PERF.md for the caveat).
func BenchmarkEmbedParallelSerial(b *testing.B) {
	benchmarkEmbedWorkers(b, 1)
}

func BenchmarkEmbedParallel(b *testing.B) {
	benchmarkEmbedWorkers(b, 0)
}

func benchmarkEmbedWorkers(b *testing.B, workers int) {
	g := debruijn.New(2, 16)
	em := ffc.NewEmbedder(g)
	em.Workers = workers
	faults := []int{12345}
	// Warm the pooled scratch (comp/dist/order growth is a one-time
	// cost) so B/op and allocs/op reflect the steady-state embed at the
	// CI job's tiny -benchtime, matching the repair benchmarks below.
	if _, err := em.Embed(faults); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := em.Embed(faults)
		if err != nil || len(res.Cycle) < g.Size-(g.N+1) {
			b.Fatal("bound violated")
		}
	}
}

// BenchmarkRepairUnpatch measures the incremental lifecycle round trip
// on B(2,10): one local fault patch plus one local heal un-patch (the
// session hot path for a fault that is later repaired).  Contrast with
// BenchmarkRepairReembed, the cold path the un-patch replaces.
func BenchmarkRepairUnpatch(b *testing.B) {
	net, err := topology.NewDeBruijn(2, 10)
	if err != nil {
		b.Fatal(err)
	}
	p := repair.For(net)
	ring, _, err := p.Embed(topology.FaultSet{})
	if err != nil {
		b.Fatal(err)
	}
	batch := topology.NodeFaults(ring[100])
	// Warm the patcher's maps to steady state so allocs/op is stable at
	// the CI job's tiny -benchtime.
	for i := 0; i < 3; i++ {
		p.Patch(batch)
		p.Unpatch(batch)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, o := p.Patch(batch); o != repair.Patched {
			b.Fatalf("patch outcome %v", o)
		}
		if _, o := p.Unpatch(batch); o != repair.Readmitted {
			b.Fatalf("unpatch outcome %v", o)
		}
	}
}

// BenchmarkRepairSpliceFallback measures the middle rung of the repair
// ladder on B(2,10): a fault on the distinguished processor — which the
// FFC structural tier always declines — absorbed by the splice tier's
// bypass surgery, plus the splice-tier heal that re-inserts it.  This
// is the path that used to cost a full re-embed round trip
// (BenchmarkRepairReembed) on every FFC-rejected fault set.
func BenchmarkRepairSpliceFallback(b *testing.B) {
	net, err := topology.NewDeBruijn(2, 10)
	if err != nil {
		b.Fatal(err)
	}
	p := repair.For(net)
	ring, _, err := p.Embed(topology.FaultSet{})
	if err != nil {
		b.Fatal(err)
	}
	batch := topology.NodeFaults(ring[0]) // the root: the FFC tier declines it
	// Warm to steady state (the first Patch pays the FFC decline plus
	// the lazy splice-tier sync).
	for i := 0; i < 3; i++ {
		p.Patch(batch)
		p.Unpatch(batch)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, o := p.Patch(batch); o != repair.Spliced {
			b.Fatalf("patch outcome %v", o)
		}
		if _, o := p.Unpatch(batch); o != repair.Spliced {
			b.Fatalf("unpatch outcome %v", o)
		}
	}
}

// BenchmarkRepairHealDenseFaults measures the heal hot path under a
// dense cumulative fault set on B(2,10): eight live node faults, with
// one more faulted and healed per iteration.  Full-heal detection used
// to rescan the whole fault set per healed node (O(|faults|·period));
// the per-necklace live-fault counter makes it O(1).
func BenchmarkRepairHealDenseFaults(b *testing.B) {
	net, err := topology.NewDeBruijn(2, 10)
	if err != nil {
		b.Fatal(err)
	}
	p := repair.For(net)
	ring, _, err := p.Embed(topology.FaultSet{})
	if err != nil {
		b.Fatal(err)
	}
	faults := topology.FaultSet{}
	for i := 1; i <= 8; i++ {
		add := topology.NodeFaults(ring[101*i])
		faults = faults.Union(add)
		if _, o := p.Patch(add); o == repair.Unsupported {
			if ring, _, err = p.Embed(faults); err != nil {
				b.Fatal(err)
			}
		}
	}
	batch := topology.NodeFaults(ring[50])
	for i := 0; i < 3; i++ {
		if _, o := p.Patch(batch); o == repair.Unsupported {
			b.Fatalf("setup patch declined")
		}
		if _, o := p.Unpatch(batch); o == repair.Unsupported {
			b.Fatalf("setup unpatch declined")
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, o := p.Patch(batch); o == repair.Unsupported {
			b.Fatalf("patch outcome %v", o)
		}
		if _, o := p.Unpatch(batch); o == repair.Unsupported {
			b.Fatalf("unpatch outcome %v", o)
		}
	}
}

// BenchmarkRepairReembed measures the cold alternative to the un-patch:
// a full FFC re-embed of B(2,10) around the reduced fault set.
func BenchmarkRepairReembed(b *testing.B) {
	net, err := topology.NewDeBruijn(2, 10)
	if err != nil {
		b.Fatal(err)
	}
	p := repair.For(net)
	if _, _, err := p.Embed(topology.FaultSet{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.Embed(topology.FaultSet{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDistributedFFC measures the network-level implementation
// (§2.4) on B(4,5), rounds and all.
func BenchmarkDistributedFFC(b *testing.B) {
	g := debruijn.New(4, 5)
	faults := []int{11, 222}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ffc.EmbedDistributed(g, faults); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHypercubeBaseline regenerates the Chapter 2 comparison: Q_12
// with two faults (4092-node ring) versus B(4,6) with two faults
// (≥ 4084-node ring).
func BenchmarkHypercubeBaseline(b *testing.B) {
	b.Run("Q12", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c, err := hypercube.FaultFreeCycle(12, []int{100, 2000})
			if err != nil || len(c) < 4092 {
				b.Fatal("bound violated")
			}
		}
	})
	b.Run("B46", func(b *testing.B) {
		g := debruijn.New(4, 6)
		for i := 0; i < b.N; i++ {
			res, err := ffc.Embed(g, []int{100, 2000})
			if err != nil || len(res.Cycle) < 4084 {
				b.Fatal("bound violated")
			}
		}
	})
}

// BenchmarkFig32DisjointHCs regenerates the Example 3.3 / Figure 3.2
// object: the 7 pairwise disjoint Hamiltonian cycles of B(13,2).
func BenchmarkFig32DisjointHCs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fam, err := hamilton.DisjointHCs(13, 2)
		if err != nil || len(fam.Cycles) != 7 {
			b.Fatal("wrong family")
		}
	}
}

// BenchmarkFig33MBDecomposition regenerates the Figure 3.3 object: the
// Hamiltonian decomposition of UMB(2,n), at the paper's n = 3 and at a
// larger size.
func BenchmarkFig33MBDecomposition(b *testing.B) {
	b.Run("UMB23", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := hamilton.MBDecomposition(2, 3); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("UMB52", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := hamilton.MBDecomposition(5, 2); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig34ButterflyEmbed regenerates the §3.4 lift: Hamiltonian
// cycles of the butterfly F(3,4) via Φ (Figure 3.4/3.5 machinery,
// Propositions 3.5/3.6).
func BenchmarkFig34ButterflyEmbed(b *testing.B) {
	g := butterfly.New(3, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycles, err := g.DisjointHCs()
		if err != nil || len(cycles) != hamilton.Psi(3) {
			b.Fatal("wrong lift")
		}
	}
}

// BenchmarkProp34EdgeFaults measures fault-free HC construction at the
// full tolerance for a composite arity (d = 12: tolerance 3).
func BenchmarkProp34EdgeFaults(b *testing.B) {
	faults := [][]int{{0, 1, 2}, {3, 2, 1}, {5, 5, 4}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hamilton.FaultFreeHC(12, 2, faults); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCh4Counting regenerates the §4.3 example values and a large
// count (all necklaces of B(2,32)).
func BenchmarkCh4Counting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if necklace.CountAll(2, 12).Int64() != 352 {
			b.Fatal("wrong count")
		}
		if necklace.CountAllByLength(2, 12, 6).Int64() != 9 {
			b.Fatal("wrong count")
		}
		if necklace.CountWeightTotal(2, 12, 4).Int64() != 43 {
			b.Fatal("wrong count")
		}
		necklace.CountAll(2, 32)
	}
}

// BenchmarkAblationFFCVsSearch contrasts the necklace-stitching FFC
// (linear time) against exhaustive longest-cycle search on the same faulty
// instance — the reason the paper's constructive algorithm matters.
func BenchmarkAblationFFCVsSearch(b *testing.B) {
	g := debruijn.New(3, 3)
	// The worst-case single fault 002 (§2.5), for which the optimum is
	// exactly dⁿ − n = 24 — both methods hit it, at very different cost.
	faults := ffc.WorstCaseFaults(g, 1)
	fm := map[int]bool{faults[0]: true}
	b.Run("FFC", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ffc.Embed(g, faults); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ExhaustiveSearch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if c := g.LongestCycleAvoiding(fm); len(c) != 24 {
				b.Fatal("wrong length")
			}
		}
	})
}

// BenchmarkAblationHsCache contrasts rebuilding the maximal cycle for each
// H_s against caching it — the reason lfsr.Maximal is a reusable object.
func BenchmarkAblationHsCache(b *testing.B) {
	b.Run("Recompute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := lfsr.New(13, 2)
			if err != nil {
				b.Fatal(err)
			}
			hamilton.HsCycle(m, 1+i%12, 0)
		}
	})
	b.Run("Cached", func(b *testing.B) {
		m, err := lfsr.New(13, 2)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			hamilton.HsCycle(m, 1+i%12, 0)
		}
	})
}

// BenchmarkAblationBroadcastSplit contrasts all-to-all broadcast over one
// ring versus ψ(d) disjoint rings (the Chapter 3 motivation).
func BenchmarkAblationBroadcastSplit(b *testing.B) {
	g := debruijn.New(4, 2)
	fam, err := hamilton.DisjointHCs(4, 2)
	if err != nil {
		b.Fatal(err)
	}
	rings := make([][]int, len(fam.Cycles))
	for i, seq := range fam.Cycles {
		rings[i] = g.NodesOfSequence(seq)
	}
	b.Run("OneRing", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := broadcast.Run(g.Size, rings[:1], 12); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ThreeRings", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := broadcast.Run(g.Size, rings, 12); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkObsObserve measures histogram observation — the
// instrumentation cost paid inline on every engine request and repair
// event.  Each iteration records 1000 observations spread across the
// value range, so ns/op ÷ 1000 is the per-observation cost (pinned
// well under 100ns) and allocs/op must stay 0; the inner loop keeps
// the CI job's tiny -benchtime above timer noise.
func BenchmarkObsObserve(b *testing.B) {
	h := &obs.Histogram{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for v := int64(0); v < 1000; v++ {
			h.Observe(v << uint(v%40))
		}
	}
	if h.Count() != int64(b.N)*1000 {
		b.Fatal("lost observations")
	}
}

// BenchmarkWordKernels measures the integer-coded tuple primitives that
// every algorithm above leans on.
func BenchmarkWordKernels(b *testing.B) {
	s := word.New(4, 10)
	x := 123456
	b.Run("RotL", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			x = s.RotL(x)
		}
	})
	b.Run("NecklaceRep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = s.NecklaceRep(i % s.Size)
		}
	})
	_ = x
}
