package obs

import (
	"strings"
	"testing"
)

// Golden test for the Prometheus text exposition format: fixed
// observations must render byte-identically, so downstream scrapers
// can rely on family ordering, label splicing, and cumulative buckets.
func TestWriteTextGolden(t *testing.T) {
	r := NewRegistry()
	r.SetHelp("engine_requests_total", "total embed requests")
	r.Counter("engine_requests_total").Add(12)
	r.Gauge("engine_cache_entries").Set(3)
	h := r.Histogram("repair_ns", "tier", "local")
	h.Observe(5)  // unit bucket 5, max 5
	h.Observe(20) // bucket [20,21], max 21
	h.Observe(20)
	h.Observe(1000) // bucket [960,1023]

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE engine_cache_entries gauge
engine_cache_entries 3
# HELP engine_requests_total total embed requests
# TYPE engine_requests_total counter
engine_requests_total 12
# TYPE repair_ns histogram
repair_ns_bucket{tier="local",le="5"} 1
repair_ns_bucket{tier="local",le="21"} 3
repair_ns_bucket{tier="local",le="1023"} 4
repair_ns_bucket{tier="local",le="+Inf"} 4
repair_ns_sum{tier="local"} 1045
repair_ns_count{tier="local"} 4
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
