package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
)

// The histogram is log-linear (HDR-style): each power-of-two octave is
// split into 2^histSubBits equal-width sub-buckets, so the bucket width
// is at most 1/2^histSubBits of the bucket's lower bound (12.5% with
// histSubBits=3).  Values below 2^histSubBits land in exact unit-width
// buckets.  Bucket boundaries are fixed by the scheme constant, which
// makes cross-shard merging exact: two histograms with the same scheme
// can be combined bucket-by-bucket with no re-binning error.
const (
	// HistScheme versions the bucket layout.  Snapshots carry it and
	// Merge refuses to combine snapshots from different schemes.
	HistScheme = 1

	histSubBits  = 3
	histSubCount = 1 << histSubBits // sub-buckets per octave
	histMaxExp   = 62               // non-negative int64 top bit
	numBuckets   = (histMaxExp-histSubBits+1)*histSubCount + histSubCount
)

// Histogram is a lock-free log-linear histogram over non-negative
// int64 observations (negative values are clamped to zero).  Observe
// is three atomic adds: no locks, no allocation.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [numBuckets]atomic.Int64
}

// bucketIndex maps a value to its bucket.  Values < histSubCount get
// exact unit buckets; above that, the octave (from bits.Len64) picks
// the block and the top histSubBits bits below the leading bit pick
// the sub-bucket.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < histSubCount {
		return int(u)
	}
	exp := uint(bits.Len64(u) - 1) // >= histSubBits
	sub := (u >> (exp - histSubBits)) & (histSubCount - 1)
	return int(exp-histSubBits+1)*histSubCount + int(sub)
}

// bucketLower returns the inclusive lower bound of bucket idx.
func bucketLower(idx int) int64 {
	if idx < histSubCount {
		return int64(idx)
	}
	block := idx/histSubCount - 1
	sub := idx % histSubCount
	exp := uint(block) + histSubBits
	return int64(uint64(1)<<exp + uint64(sub)<<(exp-histSubBits))
}

// bucketMax returns the inclusive upper bound of bucket idx.
func bucketMax(idx int) int64 {
	if idx+1 >= numBuckets {
		return math.MaxInt64
	}
	return bucketLower(idx+1) - 1
}

// bucketMid returns the representative value reported for a bucket:
// the midpoint, which bounds the quantile error by half the bucket
// width (and is exact in the unit-width region).
func bucketMid(idx int) int64 {
	lo := bucketLower(idx)
	hi := bucketMax(idx)
	return lo + (hi-lo)/2
}

// Observe records one value.  Safe for concurrent use; nil-safe so
// callers can leave metrics unwired.
//
//ringlint:noalloc
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile returns an estimate of the q-quantile (q in [0,1]) with
// relative error bounded by the bucket width (≤ 2^-histSubBits of the
// true value, exact below 2^histSubBits).  Returns 0 on an empty
// histogram.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	return h.Snapshot().Quantile(q)
}

// Snapshot captures the histogram into a mergeable, JSON-serialisable
// form.  Buckets are stored sparsely as [index, count] pairs in
// ascending index order.  A snapshot taken concurrently with writers
// is internally consistent per bucket but count/sum may momentarily
// lead or lag the bucket totals; quantiles are computed from the
// bucket totals so they are always self-consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Scheme: HistScheme}
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			s.Buckets = append(s.Buckets, [2]int64{int64(i), n})
		}
	}
	return s
}

// HistogramSnapshot is the wire form of a Histogram.
type HistogramSnapshot struct {
	Scheme  int        `json:"scheme"`
	Count   int64      `json:"count"`
	Sum     int64      `json:"sum"`
	Buckets [][2]int64 `json:"buckets,omitempty"` // sparse [index, count], ascending
}

// Quantile computes the q-quantile from the snapshot's buckets with
// the same error bound as Histogram.Quantile.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	var total int64
	for _, b := range s.Buckets {
		total += b[1]
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for _, b := range s.Buckets {
		cum += b[1]
		if cum >= rank {
			return bucketMid(int(b[0]))
		}
	}
	return bucketMid(int(s.Buckets[len(s.Buckets)-1][0]))
}

// Mean returns the arithmetic mean of the observations, 0 if empty.
func (s HistogramSnapshot) Mean() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / s.Count
}

// MergeHistograms combines snapshots bucket-by-bucket.  Because the
// bucket boundaries are fixed per scheme the merge is exact: merging
// shard-local snapshots yields byte-identical buckets to a single
// histogram that observed the union of the values.  Snapshots with
// mismatched schemes are rejected.
func MergeHistograms(snaps ...HistogramSnapshot) (HistogramSnapshot, error) {
	out := HistogramSnapshot{Scheme: HistScheme}
	acc := map[int64]int64{}
	for _, s := range snaps {
		if len(s.Buckets) == 0 && s.Count == 0 {
			continue // empty snapshots merge regardless of scheme
		}
		if s.Scheme != HistScheme {
			return out, fmt.Errorf("obs: histogram scheme mismatch: %d != %d", s.Scheme, HistScheme)
		}
		out.Count += s.Count
		out.Sum += s.Sum
		for _, b := range s.Buckets {
			acc[b[0]] += b[1]
		}
	}
	if len(acc) > 0 {
		out.Buckets = make([][2]int64, 0, len(acc))
		//ringlint:allow maporder buckets are sorted by sortBucketPairs below
		for idx, n := range acc {
			out.Buckets = append(out.Buckets, [2]int64{idx, n})
		}
		sortBucketPairs(out.Buckets)
	}
	return out, nil
}

func sortBucketPairs(b [][2]int64) {
	// Insertion sort: bucket lists are short (≤ numBuckets) and
	// usually nearly sorted already.
	for i := 1; i < len(b); i++ {
		for j := i; j > 0 && b[j][0] < b[j-1][0]; j-- {
			b[j], b[j-1] = b[j-1], b[j]
		}
	}
}
