package obs

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func TestBucketIndexMonotoneAndBounded(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 2, 7, 8, 9, 15, 16, 17, 31, 32, 100, 1000, 1 << 20, 1 << 40, math.MaxInt64} {
		idx := bucketIndex(v)
		if idx < 0 || idx >= numBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range [0,%d)", v, idx, numBuckets)
		}
		if idx < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, idx, prev)
		}
		prev = idx
		if lo, hi := bucketLower(idx), bucketMax(idx); v < lo || v > hi {
			t.Fatalf("value %d outside its bucket %d bounds [%d,%d]", v, idx, lo, hi)
		}
	}
	if bucketIndex(-5) != 0 {
		t.Fatalf("negative values must clamp to bucket 0")
	}
}

func TestBucketBoundsContiguous(t *testing.T) {
	for idx := 0; idx < numBuckets-1; idx++ {
		if bucketMax(idx)+1 != bucketLower(idx+1) {
			t.Fatalf("gap between bucket %d (max %d) and %d (lower %d)",
				idx, bucketMax(idx), idx+1, bucketLower(idx+1))
		}
	}
}

// Quantile estimates must stay within one bucket width of the true
// order statistic: relative error ≤ 2^-histSubBits for large values,
// exact below 2^histSubBits.
func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h Histogram
	values := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Mix of magnitudes: exercise the unit region and several octaves.
		var v int64
		switch i % 3 {
		case 0:
			v = rng.Int63n(histSubCount)
		case 1:
			v = rng.Int63n(100_000)
		default:
			v = rng.Int63n(10_000_000_000)
		}
		values = append(values, v)
		h.Observe(v)
	}
	sortInt64s(values)
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 0.999, 1} {
		got := h.Quantile(q)
		rank := int(math.Ceil(q * float64(len(values))))
		if rank < 1 {
			rank = 1
		}
		want := values[rank-1]
		var bound float64
		if want >= histSubCount {
			bound = float64(want) / float64(histSubCount) // one bucket width
		} else {
			bound = 0 // unit-width region is exact
		}
		if math.Abs(float64(got-want)) > bound {
			t.Errorf("q=%v: got %d want %d (±%v)", q, got, want, bound)
		}
	}
	if h.Count() != int64(len(values)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(values))
	}
}

func sortInt64s(v []int64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// Merging shard-local histograms must be exact and associative:
// merge(a, merge(b, c)) == merge(merge(a, b), c) == one histogram that
// saw every value.
func TestHistogramMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var all, ha, hb, hc Histogram
	parts := []*Histogram{&ha, &hb, &hc}
	for i := 0; i < 9000; i++ {
		v := rng.Int63n(1_000_000_000)
		all.Observe(v)
		parts[i%3].Observe(v)
	}
	a, b, c := ha.Snapshot(), hb.Snapshot(), hc.Snapshot()

	bc, err := MergeHistograms(b, c)
	if err != nil {
		t.Fatal(err)
	}
	left, err := MergeHistograms(a, bc)
	if err != nil {
		t.Fatal(err)
	}
	ab, err := MergeHistograms(a, b)
	if err != nil {
		t.Fatal(err)
	}
	right, err := MergeHistograms(ab, c)
	if err != nil {
		t.Fatal(err)
	}
	want := all.Snapshot()
	for name, got := range map[string]HistogramSnapshot{"left-assoc": left, "right-assoc": right} {
		if got.Count != want.Count || got.Sum != want.Sum {
			t.Fatalf("%s: count/sum = %d/%d, want %d/%d", name, got.Count, got.Sum, want.Count, want.Sum)
		}
		if len(got.Buckets) != len(want.Buckets) {
			t.Fatalf("%s: %d buckets, want %d", name, len(got.Buckets), len(want.Buckets))
		}
		for i := range got.Buckets {
			if got.Buckets[i] != want.Buckets[i] {
				t.Fatalf("%s: bucket %d = %v, want %v", name, i, got.Buckets[i], want.Buckets[i])
			}
		}
	}

	if _, err := MergeHistograms(a, HistogramSnapshot{Scheme: 99, Count: 1, Buckets: [][2]int64{{0, 1}}}); err == nil {
		t.Fatal("merging mismatched schemes must fail")
	}
	if _, err := MergeHistograms(a, HistogramSnapshot{}); err != nil {
		t.Fatalf("empty snapshots must merge regardless of scheme: %v", err)
	}
}

func TestRegistryMergeCountersAndGauges(t *testing.T) {
	r1, r2 := NewRegistry(), NewRegistry()
	r1.Counter("reqs_total").Add(3)
	r2.Counter("reqs_total").Add(4)
	r1.Gauge("live").Set(5)
	r2.Gauge("live").Set(7)
	r1.Histogram("lat_ns", "tier", "local").Observe(100)
	r2.Histogram("lat_ns", "tier", "local").Observe(200)
	r1.SetHelp("reqs_total", "total requests")

	m, err := Merge(r1.Snapshot(), r2.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if m.Counters["reqs_total"] != 7 {
		t.Fatalf("merged counter = %d, want 7", m.Counters["reqs_total"])
	}
	if m.Gauges["live"] != 12 {
		t.Fatalf("merged gauge = %d, want 12", m.Gauges["live"])
	}
	h := m.Histograms[Key("lat_ns", "tier", "local")]
	if h.Count != 2 || h.Sum != 300 {
		t.Fatalf("merged histogram count/sum = %d/%d, want 2/300", h.Count, h.Sum)
	}
	if m.Help["reqs_total"] != "total requests" {
		t.Fatalf("help lost in merge: %q", m.Help["reqs_total"])
	}
}

// Concurrent writers plus snapshots under -race: every observation
// must land exactly once.
func TestHistogramConcurrent(t *testing.T) {
	reg := NewRegistry()
	const writers, perWriter = 8, 5000
	var wg sync.WaitGroup
	done := make(chan struct{})
	go func() { // concurrent scraper
		for {
			select {
			case <-done:
				return
			default:
				reg.Snapshot()
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			h := reg.Histogram("conc_ns")
			c := reg.Counter("conc_total")
			for i := 0; i < perWriter; i++ {
				h.Observe(rng.Int63n(1 << 30))
				c.Inc()
			}
		}(int64(w))
	}
	wg.Wait()
	close(done)
	s := reg.Snapshot()
	if got := s.Histograms["conc_ns"].Count; got != writers*perWriter {
		t.Fatalf("histogram count = %d, want %d", got, writers*perWriter)
	}
	var bucketTotal int64
	for _, b := range s.Histograms["conc_ns"].Buckets {
		bucketTotal += b[1]
	}
	if bucketTotal != writers*perWriter {
		t.Fatalf("bucket total = %d, want %d", bucketTotal, writers*perWriter)
	}
	if s.Counters["conc_total"] != writers*perWriter {
		t.Fatalf("counter = %d, want %d", s.Counters["conc_total"], writers*perWriter)
	}
}

func TestKeyAndFamily(t *testing.T) {
	if got := Key("a_total"); got != "a_total" {
		t.Fatalf("Key no labels = %q", got)
	}
	k := Key("lat_ns", "tier", "local", "shard", "g0")
	if k != `lat_ns{tier="local",shard="g0"}` {
		t.Fatalf("Key = %q", k)
	}
	if Family(k) != "lat_ns" {
		t.Fatalf("Family = %q", Family(k))
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(2)
	r.Histogram("z").Observe(3)
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram must read as empty")
	}
	r.Snapshot() // must not panic
}
