package obs

import (
	"bufio"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WriteText renders the registry in Prometheus text exposition format
// (version 0.0.4).  Output is deterministic: families and samples are
// sorted lexically.
func (r *Registry) WriteText(w io.Writer) error {
	return r.Snapshot().WriteText(w)
}

// WriteText renders a snapshot in Prometheus text exposition format.
// Histograms emit cumulative `le` buckets (inclusive integer upper
// bounds) for every occupied bucket, plus `+Inf`, `_sum` and `_count`.
func (s Snapshot) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)

	families := map[string]string{} // family -> type
	for k := range s.Counters {
		families[Family(k)] = "counter"
	}
	for k := range s.Gauges {
		families[Family(k)] = "gauge"
	}
	for k := range s.Histograms {
		families[Family(k)] = "histogram"
	}

	names := sortedKeys(families)
	for _, fam := range names {
		typ := families[fam]
		if help := s.Help[fam]; help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(fam)
			bw.WriteByte(' ')
			bw.WriteString(help)
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(fam)
		bw.WriteByte(' ')
		bw.WriteString(typ)
		bw.WriteByte('\n')
		switch typ {
		case "counter":
			writeScalarFamily(bw, fam, s.Counters)
		case "gauge":
			writeScalarFamily(bw, fam, s.Gauges)
		case "histogram":
			writeHistogramFamily(bw, fam, s.Histograms)
		}
	}
	return bw.Flush()
}

func writeScalarFamily(bw *bufio.Writer, fam string, m map[string]int64) {
	keys := make([]string, 0, 4)
	for k := range m {
		if Family(k) == fam {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		bw.WriteString(k)
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatInt(m[k], 10))
		bw.WriteByte('\n')
	}
}

func writeHistogramFamily(bw *bufio.Writer, fam string, m map[string]HistogramSnapshot) {
	keys := make([]string, 0, 4)
	for k := range m {
		if Family(k) == fam {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		h := m[k]
		labels := ""
		if i := strings.IndexByte(k, '{'); i >= 0 {
			labels = strings.TrimSuffix(k[i+1:], "}")
		}
		var cum int64
		for _, b := range h.Buckets {
			cum += b[1]
			writeBucketLine(bw, fam, labels, strconv.FormatInt(bucketMax(int(b[0])), 10), cum)
		}
		// +Inf reports the bucket total, which is what the cumulative
		// series converges to even if count races ahead mid-scrape.
		writeBucketLine(bw, fam, labels, "+Inf", cum)
		writeSuffixLine(bw, fam, "_sum", labels, h.Sum)
		writeSuffixLine(bw, fam, "_count", labels, h.Count)
	}
}

func writeBucketLine(bw *bufio.Writer, fam, labels, le string, v int64) {
	bw.WriteString(fam)
	bw.WriteString("_bucket{")
	if labels != "" {
		bw.WriteString(labels)
		bw.WriteByte(',')
	}
	bw.WriteString(`le="`)
	bw.WriteString(le)
	bw.WriteString(`"} `)
	bw.WriteString(strconv.FormatInt(v, 10))
	bw.WriteByte('\n')
}

func writeSuffixLine(bw *bufio.Writer, fam, suffix, labels string, v int64) {
	bw.WriteString(fam)
	bw.WriteString(suffix)
	if labels != "" {
		bw.WriteByte('{')
		bw.WriteString(labels)
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatInt(v, 10))
	bw.WriteByte('\n')
}

// Handler returns an http.Handler serving the registry as Prometheus
// text exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}
