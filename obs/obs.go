// Package obs is a dependency-free metrics layer for the ring-embedding
// stack: lock-free counters, gauges, and log-linear histograms behind a
// registry that snapshots to JSON (so shard-local registries can be
// merged router-side with zero re-binning error) and renders Prometheus
// text exposition for /metrics endpoints.
//
// Hot-path cost: Counter.Add and Gauge.Set are one atomic op,
// Histogram.Observe is three; none allocate.  Callers on hot paths
// should resolve the metric pointer once (Registry lookups take a
// read lock) and hold it.
package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.  (Set exists for
// scrape-time mirroring of externally maintained totals.)
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
//
//ringlint:noalloc
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
//
//ringlint:noalloc
func (c *Counter) Inc() { c.Add(1) }

// Set overwrites the counter; for collectors mirroring totals owned
// elsewhere, not for hot-path use.
func (c *Counter) Set(n int64) {
	if c != nil {
		c.v.Store(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value.
//
//ringlint:noalloc
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the gauge by n (may be negative).
//
//ringlint:noalloc
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry holds named metrics.  Metric identity is the family name
// plus an optional ordered list of label pairs; the rendered key is
// the Prometheus sample name, e.g. `session_repair_ns{tier="local"}`.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	help       map[string]string
	collectors []func(*Registry)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
		help:       map[string]string{},
	}
}

// Key renders the metric key for a family and label pairs
// ("k1", "v1", "k2", "v2", ...).  A trailing odd label is ignored.
func Key(family string, labels ...string) string {
	if len(labels) < 2 {
		return family
	}
	var b strings.Builder
	b.WriteString(family)
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(labels[i+1])
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// Family extracts the family name from a metric key.
func Family(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i]
	}
	return key
}

// Counter returns (creating if absent) the counter for family+labels.
func (r *Registry) Counter(family string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	key := Key(family, labels...)
	r.mu.RLock()
	c := r.counters[key]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[key]; c == nil {
		c = &Counter{}
		r.counters[key] = c
	}
	return c
}

// Gauge returns (creating if absent) the gauge for family+labels.
func (r *Registry) Gauge(family string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	key := Key(family, labels...)
	r.mu.RLock()
	g := r.gauges[key]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[key]; g == nil {
		g = &Gauge{}
		r.gauges[key] = g
	}
	return g
}

// Histogram returns (creating if absent) the histogram for
// family+labels.
func (r *Registry) Histogram(family string, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	key := Key(family, labels...)
	r.mu.RLock()
	h := r.histograms[key]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[key]; h == nil {
		h = &Histogram{}
		r.histograms[key] = h
	}
	return h
}

// SetHelp attaches exposition help text to a metric family.
func (r *Registry) SetHelp(family, text string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.help[family] = text
	r.mu.Unlock()
}

// AddCollector registers fn to run at every Snapshot/WriteText, for
// mirroring state owned elsewhere (cache sizes, replication lag) into
// the registry at scrape time.
func (r *Registry) AddCollector(fn func(*Registry)) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

func (r *Registry) collect() {
	r.mu.RLock()
	fns := make([]func(*Registry), len(r.collectors))
	copy(fns, r.collectors)
	r.mu.RUnlock()
	for _, fn := range fns {
		fn(r)
	}
}

// Snapshot is a point-in-time, mergeable view of a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Help       map[string]string            `json:"help,omitempty"`
}

// Snapshot runs collectors, then captures every metric.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
		Help:       map[string]string{},
	}
	if r == nil {
		return s
	}
	r.collect()
	r.mu.RLock()
	defer r.mu.RUnlock()
	for k, c := range r.counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range r.gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range r.histograms {
		s.Histograms[k] = h.Snapshot()
	}
	for k, v := range r.help {
		s.Help[k] = v
	}
	return s
}

// Merge combines snapshots: counters and gauges sum per key,
// histograms merge exactly bucket-by-bucket, help text is
// first-writer-wins.  Merge is associative and commutative up to
// help-text ties, so router-side aggregation order does not matter.
func Merge(snaps ...Snapshot) (Snapshot, error) {
	out := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
		Help:       map[string]string{},
	}
	for _, s := range snaps {
		for k, v := range s.Counters {
			out.Counters[k] += v
		}
		for k, v := range s.Gauges {
			out.Gauges[k] += v
		}
		//ringlint:allow maporder keyed merge; MergeHistograms is commutative per key
		for k, h := range s.Histograms {
			merged, err := MergeHistograms(out.Histograms[k], h)
			if err != nil {
				return out, err
			}
			out.Histograms[k] = merged
		}
		for k, v := range s.Help {
			if _, ok := out.Help[k]; !ok {
				out.Help[k] = v
			}
		}
	}
	return out, nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
