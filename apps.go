package debruijnring

import (
	"fmt"

	"debruijnring/internal/broadcast"
	"debruijnring/internal/hypercube"
	"debruijnring/topology"
)

// BroadcastResult summarizes an all-to-all broadcast simulation (§3.2's
// motivating application, after [LS90]).
type BroadcastResult struct {
	Rings       int // rings used
	Steps       int // pipeline rounds (N−1)
	TimeUnits   int // completion time under the length-proportional model
	MaxLinkLoad int // payload units per link per round
}

// AllToAllBroadcast simulates every processor broadcasting a message of
// the given size to all others over the supplied rings (obtained from
// DisjointHamiltonianCycles), splitting each message evenly across the
// rings.  With t edge-disjoint rings the completion time improves by a
// factor of t over a single ring.
func (g *Graph) AllToAllBroadcast(rings []*Ring, msgSize int) (*BroadcastResult, error) {
	raw := make([][]int, len(rings))
	for i, r := range rings {
		raw[i] = r.Nodes
	}
	res, err := broadcast.Run(g.Nodes(), raw, msgSize)
	if err != nil {
		return nil, err
	}
	return &BroadcastResult{
		Rings:       res.Rings,
		Steps:       res.Steps,
		TimeUnits:   res.TimeUnits,
		MaxLinkLoad: res.MaxLinkLoad,
	}, nil
}

// HypercubeRing embeds a fault-free ring of length at least 2ⁿ − 2f in the
// binary n-cube with f ≤ n−2 faulty processors — the baseline the paper
// compares against ([WC92, CL91a]; see the Chapter 2 comparison of Q_12
// with B(4,6)).  It is the topology.Hypercube adapter's embedding.
func HypercubeRing(n int, faults []int) ([]int, error) {
	net, err := topology.NewHypercube(n)
	if err != nil {
		return nil, err
	}
	cycle, _, err := net.EmbedRing(topology.NodeFaults(faults...))
	return cycle, err
}

// HypercubeEdges returns the link count n·2ⁿ⁻¹ of Q_n, for the
// edges-per-node-count comparison of Chapter 2.
func HypercubeEdges(n int) int {
	if n < 1 {
		panic(fmt.Sprintf("debruijnring: invalid hypercube dimension %d", n))
	}
	return hypercube.NumEdges(n)
}
