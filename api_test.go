package debruijnring

import (
	"math/big"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(1, 3); err == nil {
		t.Error("d = 1 should fail")
	}
	if _, err := New(3, 0); err == nil {
		t.Error("n = 0 should fail")
	}
	g, err := New(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.D() != 3 || g.N() != 3 || g.Nodes() != 27 || g.Edges() != 81 {
		t.Errorf("B(3,3) dims wrong: %d %d %d %d", g.D(), g.N(), g.Nodes(), g.Edges())
	}
}

func TestNodeLabelRoundTrip(t *testing.T) {
	g, _ := New(3, 3)
	id, err := g.Node("020")
	if err != nil {
		t.Fatal(err)
	}
	if g.Label(id) != "020" {
		t.Errorf("Label = %q", g.Label(id))
	}
	if _, err := g.Node("99"); err == nil {
		t.Error("bad label should fail")
	}
	nb := g.Neighbors(id)
	if len(nb) != 3 {
		t.Errorf("Neighbors = %v", nb)
	}
}

func TestEmbedRingExample21(t *testing.T) {
	g, _ := New(3, 3)
	a, _ := g.Node("020")
	b, _ := g.Node("112")
	ring, stats, err := g.EmbedRing([]int{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if ring.Len() != 21 || stats.BStarSize != 21 {
		t.Errorf("ring length %d (B* %d), want 21", ring.Len(), stats.BStarSize)
	}
	if stats.LowerBound != 27-3*2 {
		t.Errorf("bound = %d", stats.LowerBound)
	}
	if !g.Verify(ring, []int{a, b}) {
		t.Error("ring fails verification")
	}
	if g.Verify(&Ring{Nodes: []int{0, 1}}, nil) {
		t.Error("bogus ring should fail verification")
	}
	if _, _, err := g.EmbedRing([]int{-1}); err == nil {
		t.Error("out-of-range fault should fail")
	}
}

func TestEmbedRingDistributedAgrees(t *testing.T) {
	g, _ := New(4, 3)
	a, _ := g.Node("013")
	seq, _, err := g.EmbedRing([]int{a})
	if err != nil {
		t.Fatal(err)
	}
	dist, stats, err := g.EmbedRingDistributed([]int{a})
	if err != nil {
		t.Fatal(err)
	}
	if dist.Len() != seq.Len() {
		t.Errorf("distributed ring %d vs sequential %d", dist.Len(), seq.Len())
	}
	if stats.Rounds <= 0 || stats.Messages <= 0 {
		t.Errorf("stats not populated: %+v", stats)
	}
	// O(K + n): with one fault the total is at most 5n + 2.
	if stats.Rounds > 5*g.N()+2 {
		t.Errorf("rounds %d exceed 5n + 2", stats.Rounds)
	}
}

func TestRouteAround(t *testing.T) {
	g, _ := New(4, 3)
	f, _ := g.Node("013")
	from, _ := g.Node("000")
	to, _ := g.Node("321")
	path, err := g.RouteAround(from, to, []int{f})
	if err != nil {
		t.Fatal(err)
	}
	if len(path)-1 > 2*g.N() {
		t.Errorf("path length %d exceeds 2n", len(path)-1)
	}
	if path[0] != from || path[len(path)-1] != to {
		t.Error("wrong endpoints")
	}
}

func TestDisjointHamiltonianCycles(t *testing.T) {
	g, _ := New(4, 3)
	rings, err := g.DisjointHamiltonianCycles()
	if err != nil {
		t.Fatal(err)
	}
	if len(rings) != Psi(4) {
		t.Errorf("%d rings, want ψ(4) = %d", len(rings), Psi(4))
	}
	seen := map[[2]int]bool{}
	for _, r := range rings {
		if !g.Verify(r, nil) || r.Len() != g.Nodes() {
			t.Fatal("ring invalid")
		}
		for i, v := range r.Nodes {
			e := [2]int{v, r.Nodes[(i+1)%r.Len()]}
			if seen[e] {
				t.Fatal("rings share a link")
			}
			seen[e] = true
		}
	}
	// A Hamiltonian ring's digit sequence is a De Bruijn sequence.
	seq := g.DeBruijnSequence(rings[0])
	if len(seq) != g.Nodes() {
		t.Errorf("sequence length %d", len(seq))
	}
}

func TestEmbedRingEdgeFaults(t *testing.T) {
	g, _ := New(5, 2)
	u, _ := g.Node("01")
	faults := []Edge{}
	for _, v := range g.Neighbors(u) {
		faults = append(faults, Edge{From: u, To: v})
		if len(faults) == MaxTolerableEdgeFaults(5) {
			break
		}
	}
	ring, err := g.EmbedRingEdgeFaults(faults)
	if err != nil {
		t.Fatal(err)
	}
	if !g.VerifyEdgeAvoidance(ring, faults) {
		t.Error("ring uses a faulty link")
	}
	// Non-edge faults are rejected.
	if _, err := g.EmbedRingEdgeFaults([]Edge{{From: 0, To: 24}}); err == nil {
		t.Error("non-edge should be rejected")
	}
}

func TestPsiPhiTables(t *testing.T) {
	if Psi(16) != 15 || Psi(13) != 7 || Psi(30) != 2 {
		t.Error("Psi spot checks failed")
	}
	if Phi(5) != 3 || Phi(12) != 3 || Phi(28) != 7 {
		t.Error("Phi spot checks failed")
	}
	if MaxTolerableEdgeFaults(28) != 8 {
		t.Error("MaxTolerableEdgeFaults(28) should be 8 (the Table 3.2 exception)")
	}
}

func TestModifiedDecomposition(t *testing.T) {
	g, _ := New(5, 2)
	rings, err := g.ModifiedDecomposition()
	if err != nil {
		t.Fatal(err)
	}
	if len(rings) != 5 {
		t.Errorf("%d rings, want d = 5", len(rings))
	}
	g2, _ := New(6, 2)
	if _, err := g2.ModifiedDecomposition(); err == nil {
		t.Error("composite d should fail")
	}
}

func TestCountingAPI(t *testing.T) {
	if NecklaceCount(2, 12).Cmp(big.NewInt(352)) != 0 {
		t.Error("NecklaceCount(2,12) ≠ 352")
	}
	if NecklaceCountByLength(2, 12, 6).Cmp(big.NewInt(9)) != 0 {
		t.Error("length-6 count ≠ 9")
	}
	if NecklaceCountByWeight(2, 12, 4).Cmp(big.NewInt(43)) != 0 {
		t.Error("weight-4 count ≠ 43")
	}
	if NecklaceCountByWeightLength(2, 12, 4, 6).Cmp(big.NewInt(2)) != 0 {
		t.Error("weight-4 length-6 count ≠ 2")
	}
	if NecklaceCountByType(2, 12, []int{8, 4}).Cmp(big.NewInt(43)) != 0 {
		t.Error("type [8,4] count ≠ 43")
	}
	g, _ := New(3, 4)
	x, _ := g.Node("1120")
	rep, length := g.Necklace(x)
	if g.Label(rep) != "0112" || length != 4 {
		t.Errorf("Necklace(1120) = %s, %d", g.Label(rep), length)
	}
	if len(g.NecklaceMembers(x)) != 4 {
		t.Error("NecklaceMembers size wrong")
	}
}

func TestButterflyAPI(t *testing.T) {
	f, err := NewButterfly(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if f.Nodes() != 24 {
		t.Errorf("F(2,3) nodes = %d", f.Nodes())
	}
	if _, err := NewButterfly(1, 3); err == nil {
		t.Error("d = 1 should fail")
	}
	rings, err := f.DisjointHamiltonianCycles()
	if err != nil {
		t.Fatal(err)
	}
	if len(rings) != Psi(2) {
		t.Errorf("%d rings, want ψ(2) = 1", len(rings))
	}
	if !f.Verify(rings[0], nil) {
		t.Error("butterfly ring invalid")
	}
	lvl, col := f.Split(f.Node(1, 5))
	if lvl != 1 || col != 5 {
		t.Error("Node/Split mismatch")
	}
	if f.Label(f.Node(0, 0)) != "(0,000)" {
		t.Errorf("Label = %q", f.Label(f.Node(0, 0)))
	}
	// Edge-fault embedding with one faulty link.
	u := f.Node(0, 3)
	ring0, err := f.EmbedRingEdgeFaults(nil)
	if err != nil {
		t.Fatal(err)
	}
	var faulty Edge
	for i, v := range ring0.Nodes {
		if v == u {
			faulty = Edge{From: u, To: ring0.Nodes[(i+1)%len(ring0.Nodes)]}
		}
	}
	_ = faulty // ψ(2)−1 = 0 and φ(2) = 0: no guarantee for d = 2; use d = 3 below.

	f3, _ := NewButterfly(3, 2)
	ringA, err := f3.EmbedRingEdgeFaults(nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := Edge{From: ringA.Nodes[0], To: ringA.Nodes[1]}
	ringB, err := f3.EmbedRingEdgeFaults([]Edge{bad})
	if err != nil {
		t.Fatal(err)
	}
	if !f3.Verify(ringB, []Edge{bad}) {
		t.Error("butterfly edge-fault ring invalid")
	}
}

func TestAllToAllBroadcastAPI(t *testing.T) {
	g, _ := New(4, 2)
	rings, err := g.DisjointHamiltonianCycles()
	if err != nil {
		t.Fatal(err)
	}
	single, err := g.AllToAllBroadcast(rings[:1], 12)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := g.AllToAllBroadcast(rings, 12)
	if err != nil {
		t.Fatal(err)
	}
	if multi.TimeUnits*3 != single.TimeUnits {
		t.Errorf("expected 3× speedup: single %d, multi %d", single.TimeUnits, multi.TimeUnits)
	}
}

func TestShuffleExchangeAPI(t *testing.T) {
	g, _ := New(3, 3)
	a, _ := g.Node("020")
	b, _ := g.Node("112")
	se, err := EmbedRingShuffleExchange(3, 3, []int{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(se.Ring) != 21 {
		t.Errorf("SE ring carries %d processors, want 21", len(se.Ring))
	}
	if se.Dilation() != 2 {
		t.Errorf("dilation = %d, want 2", se.Dilation())
	}
	if len(se.Walk) > 2*len(se.Ring) {
		t.Errorf("walk %d longer than 2×ring", len(se.Walk))
	}
}

func TestHypercubeBaselineAPI(t *testing.T) {
	// The Chapter 2 comparison: Q_12, f = 2 → ring of length 4092;
	// B(4,6), f = 2 → ring of length ≥ 4084, with 16384 vs 24576 links.
	cycle, err := HypercubeRing(12, []int{7, 77})
	if err != nil {
		t.Fatal(err)
	}
	if len(cycle) < 4092 {
		t.Errorf("hypercube ring %d < 4092", len(cycle))
	}
	if HypercubeEdges(12) != 24576 {
		t.Errorf("Q_12 edges = %d", HypercubeEdges(12))
	}
	g, _ := New(4, 6)
	if g.Edges() != 16384 {
		t.Errorf("B(4,6) edges = %d", g.Edges())
	}
	ring, _, err := g.EmbedRing([]int{7, 77})
	if err != nil {
		t.Fatal(err)
	}
	if ring.Len() < 4084 {
		t.Errorf("De Bruijn ring %d < 4084", ring.Len())
	}
}
