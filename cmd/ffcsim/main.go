// Command ffcsim regenerates Tables 2.1 and 2.2 of Rowley–Bose: the size
// of the component containing R = 0…01 and the eccentricity of R in B(d,n)
// with f randomly distributed faulty necklaces.
//
// Usage:
//
//	ffcsim                     # both paper tables (B(2,10) and B(4,5))
//	ffcsim -d 2 -n 10          # one table
//	ffcsim -d 4 -n 5 -trials 5000 -seed 7 -faults 0,1,2,5 -workers 8
//
// Trials are sharded across the worker pool with per-trial PCG streams,
// so the tables are bit-identical for a fixed seed at any -workers value.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"debruijnring/internal/ffc"
)

func main() {
	d := flag.Int("d", 0, "arity (0 = run both paper configurations)")
	n := flag.Int("n", 0, "word length")
	trials := flag.Int("trials", 1000, "trials per fault count")
	seed := flag.Uint64("seed", 1991, "RNG seed")
	workers := flag.Int("workers", 0, "simulation worker count (0 = GOMAXPROCS); results are identical for any value")
	faultList := flag.String("faults", "", "comma-separated fault counts (default: the paper's column)")
	flag.Parse()

	counts := ffc.DefaultFaultCounts
	if *faultList != "" {
		counts = nil
		for _, tok := range strings.Split(*faultList, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || v < 0 {
				fmt.Fprintf(os.Stderr, "ffcsim: bad fault count %q\n", tok)
				os.Exit(2)
			}
			counts = append(counts, v)
		}
	}

	run := func(d, n int, title string) {
		fmt.Printf("%s (%d trials per row, seed %d)\n", title, *trials, *seed)
		rows := ffc.SimulateWorkers(d, n, counts, *trials, *seed, *workers)
		ffc.WriteTable(os.Stdout, d, n, rows)
		fmt.Println()
	}

	if *d == 0 {
		run(2, 10, "Table 2.1")
		run(4, 5, "Table 2.2")
		return
	}
	if *n == 0 {
		fmt.Fprintln(os.Stderr, "ffcsim: -n required with -d")
		os.Exit(2)
	}
	run(*d, *n, fmt.Sprintf("B(%d,%d) simulation", *d, *n))
}
