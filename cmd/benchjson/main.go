// Command benchjson runs `go test -bench` and renders the results as
// machine-readable JSON, the regression artifact behind the BENCH_*.json
// files checked in at the repo root and emitted by the CI bench smoke job.
//
// Usage:
//
//	benchjson                                  # Table 2.1/2.2 benchmarks → stdout
//	benchjson -bench 'Table21|Table22' -benchtime 5x -label dense -out BENCH_dense.json
//	benchjson -pkg ./... -bench . -count 3
//	benchjson -bench 'Table21|Table22' -compare BENCH_dense.json -tolerance 0.25
//
// The output records, per benchmark, iterations, ns/op, B/op, allocs/op
// and MB/s when reported, plus the environment header (goos, goarch, cpu)
// so two artifacts can be compared meaningfully.
//
// With -compare, the fresh run is checked against a baseline artifact:
// any benchmark present in both whose ns/op regressed by more than
// -tolerance (a fraction; 0.25 = +25%) fails the run with exit status 1
// — the regression gate of the CI bench job.  Allocation counts are
// machine-independent and gated strictly at the same tolerance; bytes
// per op are gated at the separate, looser -bytes-tolerance (short CI
// runs amortize one-time pool growth over fewer iterations, so B/op
// needs more headroom than allocs/op — the gate still catches the
// order-of-magnitude map-rebuild regressions it exists for).
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
}

// Report is the full JSON artifact.
type Report struct {
	Label      string      `json:"label,omitempty"`
	Date       string      `json:"date"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	CPU        string      `json:"cpu,omitempty"`
	Package    string      `json:"package,omitempty"`
	Bench      string      `json:"bench"`
	Benchtime  string      `json:"benchtime,omitempty"`
	Count      int         `json:"count"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkTable21-8   3   34624236 ns/op   9878968 B/op   11386 allocs/op
//	BenchmarkCopy        5   1234 ns/op       812.44 MB/s
//
// B/op and allocs/op are extracted separately so custom b.ReportMetric
// units (e.g. FleetRebalance's drainretries/op) sitting between ns/op
// and the -benchmem columns don't silently drop them from the artifact.
var (
	benchLine = regexp.MustCompile(
		`^(Benchmark[^\s]+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op`)
	mbLine     = regexp.MustCompile(`\s([\d.]+) MB/s`)
	bytesLine  = regexp.MustCompile(`\s(\d+) B/op`)
	allocsLine = regexp.MustCompile(`\s(\d+) allocs/op`)
)

func main() {
	bench := flag.String("bench", "Table21|Table22", "benchmark regexp passed to go test -bench")
	benchtime := flag.String("benchtime", "", "go test -benchtime value (e.g. 1x, 5x, 2s); empty = default")
	count := flag.Int("count", 1, "go test -count value")
	pkg := flag.String("pkg", ".", "package pattern to benchmark")
	out := flag.String("out", "", "output file (empty = stdout)")
	label := flag.String("label", "", "free-form label recorded in the artifact (e.g. baseline, dense)")
	compare := flag.String("compare", "", "baseline artifact to gate against (exit 1 on regression)")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional ns/op and allocs/op regression vs the baseline")
	bytesTolerance := flag.Float64("bytes-tolerance", 0.5, "allowed fractional bytes/op regression vs the baseline")
	flag.Parse()

	args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem", "-count", strconv.Itoa(*count)}
	if *benchtime != "" {
		args = append(args, "-benchtime", *benchtime)
	}
	args = append(args, *pkg)

	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go %s: %v\n%s", strings.Join(args, " "), err, buf.String())
		os.Exit(1)
	}

	report := Report{
		Label:     *label,
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Package:   *pkg,
		Bench:     *bench,
		Benchtime: *benchtime,
		Count:     *count,
	}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		line := sc.Text()
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			report.CPU = cpu
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		b := Benchmark{Name: strings.TrimPrefix(m[1], "Benchmark")}
		b.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		b.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if mm := mbLine.FindStringSubmatch(line); mm != nil {
			b.MBPerS, _ = strconv.ParseFloat(mm[1], 64)
		}
		if mm := bytesLine.FindStringSubmatch(line); mm != nil {
			b.BytesPerOp, _ = strconv.ParseInt(mm[1], 10, 64)
		}
		if mm := allocsLine.FindStringSubmatch(line); mm != nil {
			b.AllocsPerOp, _ = strconv.ParseInt(mm[1], 10, 64)
		}
		report.Benchmarks = append(report.Benchmarks, b)
	}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmarks matched %q in %s\n", *bench, *pkg)
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(report.Benchmarks), *out)
	}

	if *compare != "" {
		regressions, err := compareBaseline(*compare, report, *tolerance, *bytesTolerance)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d regression(s) beyond %.0f%% vs %s:\n",
				len(regressions), *tolerance*100, *compare)
			for _, r := range regressions {
				fmt.Fprintln(os.Stderr, "  "+r)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: no regressions beyond %.0f%% vs %s\n", *tolerance*100, *compare)
	}
}

// compareBaseline gates the fresh report against a baseline artifact:
// benchmarks present in both must not regress in ns/op or allocs/op by
// more than the tolerance fraction, nor in bytes/op by more than the
// (looser) bytesTolerance fraction.  Benchmarks that exist on only one
// side are ignored (the bench suite may grow or shrink between commits).
func compareBaseline(path string, report Report, tolerance, bytesTolerance float64) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	baseline := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseline[b.Name] = b
	}
	var regressions []string
	matched := 0
	for _, b := range report.Benchmarks {
		ref, ok := baseline[b.Name]
		if !ok {
			continue
		}
		matched++
		if ref.NsPerOp > 0 && b.NsPerOp > ref.NsPerOp*(1+tolerance) {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.0f ns/op vs baseline %.0f (%+.0f%%)",
				b.Name, b.NsPerOp, ref.NsPerOp, 100*(b.NsPerOp/ref.NsPerOp-1)))
		}
		if ref.AllocsPerOp > 0 && float64(b.AllocsPerOp) > float64(ref.AllocsPerOp)*(1+tolerance) {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %d allocs/op vs baseline %d (%+.0f%%)",
				b.Name, b.AllocsPerOp, ref.AllocsPerOp,
				100*(float64(b.AllocsPerOp)/float64(ref.AllocsPerOp)-1)))
		}
		if ref.BytesPerOp > 0 && float64(b.BytesPerOp) > float64(ref.BytesPerOp)*(1+bytesTolerance) {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %d B/op vs baseline %d (%+.0f%%)",
				b.Name, b.BytesPerOp, ref.BytesPerOp,
				100*(float64(b.BytesPerOp)/float64(ref.BytesPerOp)-1)))
		}
	}
	if matched == 0 {
		return nil, fmt.Errorf("baseline %s shares no benchmarks with this run (bench %q)", path, report.Bench)
	}
	return regressions, nil
}
