package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"debruijnring/engine"
	"debruijnring/topology"
)

// batchRequest is one JSON-lines embedding request: a topology spec plus
// failed components named by processor label.
type batchRequest struct {
	Topology   string   `json:"topology"`
	NodeFaults []string `json:"node_faults,omitempty"`
	EdgeFaults []struct {
		From string `json:"from"`
		To   string `json:"to"`
	} `json:"edge_faults,omitempty"`
}

// runBatch reads JSON-lines requests, serves them concurrently through
// the memoizing engine, and prints one summary line per request (in
// input order) plus the cache counters.
func runBatch(path string, workers, embedWorkers int, quiet bool) error {
	var in io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	var reqs []engine.Request
	var nets []topology.RingEmbedder
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 0, 1<<20), 1<<20)
	line := 0
	for scanner.Scan() {
		line++
		text := strings.TrimSpace(scanner.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var br batchRequest
		if err := json.Unmarshal([]byte(text), &br); err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		net, err := topology.FromSpec(br.Topology)
		if err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		edges := make([][2]string, len(br.EdgeFaults))
		for i, e := range br.EdgeFaults {
			edges[i] = [2]string{e.From, e.To}
		}
		fs, err := topology.ParseFaults(net, br.NodeFaults, edges)
		if err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		reqs = append(reqs, engine.Request{Network: net, Faults: fs})
		nets = append(nets, net)
	}
	if err := scanner.Err(); err != nil {
		return err
	}
	if len(reqs) == 0 {
		return fmt.Errorf("batch input holds no requests")
	}

	eng := engine.New(engine.Options{Workers: workers, EmbedWorkers: embedWorkers})
	results := eng.EmbedBatch(context.Background(), reqs)
	for i, res := range results {
		if res.Err != nil {
			fmt.Printf("[%d] %s: ERROR: %v\n", i, nets[i].Name(), res.Err)
			continue
		}
		hit := " "
		if res.Stats.CacheHit {
			hit = "*"
		}
		fmt.Printf("[%d]%s %s: ring %d (bound %d, survivors %d, rounds %d, dilation %d) in %s\n",
			i, hit, res.Stats.Topology, res.Stats.RingLength, res.Stats.LowerBound,
			res.Stats.Survivors, res.Stats.Rounds, res.Stats.Dilation, res.Stats.Elapsed)
		if !quiet {
			labels := make([]string, len(res.Ring))
			for j, v := range res.Ring {
				labels[j] = nets[i].Label(v)
			}
			fmt.Println("   ", strings.Join(labels, " "))
		}
	}
	cs := eng.CacheStats()
	fmt.Printf("%d requests: %d computed, %d served from cache (* = cache hit)\n",
		len(results), cs.Misses, cs.Hits)
	return nil
}
