// Command ringembed embeds a fault-free ring in a De Bruijn network with
// failed processors or links, or batches embedding requests across every
// supported topology through the concurrent engine.
//
// Usage:
//
//	ringembed -d 3 -n 3 -faults 020,112            # node faults (Chapter 2)
//	ringembed -d 3 -n 3 -faults 020,112 -dist      # distributed run with round counts
//	ringembed -d 5 -n 2 -edgefaults 01-12,14-40    # link faults (Chapter 3)
//	ringembed -batch requests.jsonl -workers 8     # batch mode over the engine
//
// Batch input is JSON lines ("-" reads stdin), one request per line:
//
//	{"topology":"debruijn(3,3)","node_faults":["020","112"]}
//	{"topology":"hypercube(12)","node_faults":["000000000111"]}
//	{"topology":"butterfly(3,2)","edge_faults":[{"from":"(0,00)","to":"(1,00)"}]}
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"debruijnring"
)

func main() {
	d := flag.Int("d", 3, "arity")
	n := flag.Int("n", 3, "word length")
	faults := flag.String("faults", "", "comma-separated faulty processor labels")
	edgeFaults := flag.String("edgefaults", "", "comma-separated faulty links, from-to")
	dist := flag.Bool("dist", false, "run the distributed (network-level) algorithm")
	quiet := flag.Bool("quiet", false, "suppress the ring listing")
	batch := flag.String("batch", "", "batch mode: JSON-lines request file, or - for stdin")
	workers := flag.Int("workers", 0, "batch worker pool size (0 = GOMAXPROCS)")
	embedWorkers := flag.Int("embed-workers", 0, "per-embed BFS worker count on adapters that shard internally (0 = GOMAXPROCS, 1 = serial; output identical)")
	flag.Parse()

	if *batch != "" {
		if err := runBatch(*batch, *workers, *embedWorkers, *quiet); err != nil {
			fail(err)
		}
		return
	}

	g, err := debruijnring.New(*d, *n)
	if err != nil {
		fail(err)
	}
	g.Network().SetEmbedWorkers(*embedWorkers)

	if *edgeFaults != "" {
		var edges []debruijnring.Edge
		for _, tok := range strings.Split(*edgeFaults, ",") {
			parts := strings.SplitN(strings.TrimSpace(tok), "-", 2)
			if len(parts) != 2 {
				fail(fmt.Errorf("bad link %q (want from-to)", tok))
			}
			from, err := g.Node(parts[0])
			if err != nil {
				fail(err)
			}
			to, err := g.Node(parts[1])
			if err != nil {
				fail(err)
			}
			edges = append(edges, debruijnring.Edge{From: from, To: to})
		}
		ring, err := g.EmbedRingEdgeFaults(edges)
		if err != nil {
			fail(err)
		}
		fmt.Printf("B(%d,%d): Hamiltonian ring of length %d avoiding %d faulty links (tolerance %d)\n",
			*d, *n, ring.Len(), len(edges), debruijnring.MaxTolerableEdgeFaults(*d))
		printRing(g, ring, *quiet)
		return
	}

	var nodes []int
	if *faults != "" {
		for _, tok := range strings.Split(*faults, ",") {
			v, err := g.Node(strings.TrimSpace(tok))
			if err != nil {
				fail(err)
			}
			nodes = append(nodes, v)
		}
	}
	if *dist {
		ring, stats, err := g.EmbedRingDistributed(nodes)
		if err != nil {
			fail(err)
		}
		fmt.Printf("B(%d,%d): ring of length %d found distributively in %d rounds (%d broadcast) with %d messages\n",
			*d, *n, ring.Len(), stats.Rounds, stats.BroadcastRound, stats.Messages)
		printRing(g, ring, *quiet)
		return
	}
	ring, stats, err := g.EmbedRing(nodes)
	if err != nil {
		fail(err)
	}
	fmt.Printf("B(%d,%d): ring of length %d (|B*| = %d, bound dⁿ−nf = %d, eccentricity %d)\n",
		*d, *n, ring.Len(), stats.BStarSize, stats.LowerBound, stats.Eccentricity)
	printRing(g, ring, *quiet)
}

func printRing(g *debruijnring.Graph, ring *debruijnring.Ring, quiet bool) {
	if quiet {
		return
	}
	labels := make([]string, ring.Len())
	for i, v := range ring.Nodes {
		labels[i] = g.Label(v)
	}
	fmt.Println(strings.Join(labels, " "))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ringembed:", err)
	os.Exit(1)
}
