// Command necklaces counts and enumerates necklaces in B(d,n) using the
// Chapter 4 formulas (Propositions 4.1 and 4.2).
//
// Usage:
//
//	necklaces -d 2 -n 12                 # counts by length + total
//	necklaces -d 2 -n 12 -weight 4       # restricted to weight 4
//	necklaces -d 3 -n 4 -type 1,2,1      # restricted to a digit type
//	necklaces -d 3 -n 4 -list            # enumerate representatives
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"debruijnring/internal/necklace"
	"debruijnring/internal/numtheory"
	"debruijnring/internal/word"
)

func main() {
	d := flag.Int("d", 2, "alphabet size")
	n := flag.Int("n", 12, "necklace length")
	weight := flag.Int("weight", -1, "restrict to nodes of this digit sum")
	typeStr := flag.String("type", "", "restrict to this digit type, e.g. 1,2,1")
	list := flag.Bool("list", false, "enumerate representatives (small n only)")
	flag.Parse()

	var gamma necklace.GammaFunc
	var what string
	switch {
	case *typeStr != "":
		var typ []int
		for _, tok := range strings.Split(*typeStr, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil {
				fmt.Fprintf(os.Stderr, "necklaces: bad type entry %q\n", tok)
				os.Exit(2)
			}
			typ = append(typ, v)
		}
		if len(typ) != *d {
			fmt.Fprintf(os.Stderr, "necklaces: type needs %d entries\n", *d)
			os.Exit(2)
		}
		gamma = necklace.GammaType(*n, typ)
		what = fmt.Sprintf("of type %v", typ)
	case *weight >= 0:
		gamma = necklace.GammaWeight(*d, *n, *weight)
		what = fmt.Sprintf("of weight %d", *weight)
	default:
		gamma = necklace.GammaAll(*d)
		what = ""
	}

	fmt.Printf("Necklaces %sin B(%d,%d)\n", spaced(what), *d, *n)
	fmt.Printf("%8s %s\n", "length", "count")
	for _, t := range numtheory.Divisors(*n) {
		fmt.Printf("%8d %s\n", t, necklace.CountByLength(*n, t, gamma))
	}
	fmt.Printf("%8s %s\n", "total", necklace.CountTotal(*n, gamma))

	if *list {
		s := word.New(*d, *n)
		if s.Size > 1<<20 {
			fmt.Fprintln(os.Stderr, "necklaces: graph too large to enumerate")
			os.Exit(1)
		}
		fmt.Println("representatives:")
		for _, nk := range necklace.EnumerateFKM(s) {
			fmt.Printf("  [%s] length %d\n", s.String(nk.Rep), nk.Length)
		}
	}
}

func spaced(s string) string {
	if s == "" {
		return ""
	}
	return s + " "
}
