// Command dhc works with disjoint Hamiltonian cycles in De Bruijn
// networks (Chapter 3 of Rowley–Bose).
//
// Usage:
//
//	dhc -table psi           # Table 3.1: ψ(d), 2 ≤ d ≤ 38
//	dhc -table maxfaults     # Table 3.2: MAX{ψ(d)−1, φ(d)}, 2 ≤ d ≤ 35
//	dhc -d 13 -n 2           # build, verify and print ψ(13) disjoint HCs
//	dhc -d 5 -n 2 -mb        # Hamiltonian decomposition of MB(5,2)
package main

import (
	"flag"
	"fmt"
	"os"

	"debruijnring/internal/debruijn"
	"debruijnring/internal/hamilton"
)

func main() {
	table := flag.String("table", "", "psi | maxfaults")
	d := flag.Int("d", 0, "arity")
	n := flag.Int("n", 2, "word length")
	mb := flag.Bool("mb", false, "decompose the modified graph MB(d,n) instead")
	quiet := flag.Bool("quiet", false, "suppress cycle listings")
	flag.Parse()

	switch *table {
	case "psi":
		fmt.Println("Table 3.1: ψ(d), the guaranteed number of disjoint Hamiltonian cycles")
		fmt.Printf("%4s %6s\n", "d", "ψ(d)")
		for dd := 2; dd <= 38; dd++ {
			fmt.Printf("%4d %6d\n", dd, hamilton.Psi(dd))
		}
		return
	case "maxfaults":
		fmt.Println("Table 3.2: MAX{ψ(d)−1, φ(d)}, the tolerated edge-fault count")
		fmt.Printf("%4s %6s %6s %12s\n", "d", "ψ(d)", "φ(d)", "MAX{ψ−1,φ}")
		for dd := 2; dd <= 35; dd++ {
			fmt.Printf("%4d %6d %6d %12d\n", dd, hamilton.Psi(dd), hamilton.EdgeFaultPhi(dd), hamilton.MaxEdgeFaults(dd))
		}
		return
	case "":
	default:
		fmt.Fprintf(os.Stderr, "dhc: unknown table %q\n", *table)
		os.Exit(2)
	}

	if *d == 0 {
		flag.Usage()
		os.Exit(2)
	}
	g := debruijn.New(*d, *n)

	if *mb {
		cycles, err := hamilton.MBDecomposition(*d, *n)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dhc:", err)
			os.Exit(1)
		}
		if err := hamilton.ValidateDecomposition(*d, *n, cycles); err != nil {
			fmt.Fprintln(os.Stderr, "dhc: validation failed:", err)
			os.Exit(1)
		}
		fmt.Printf("MB(%d,%d): Hamiltonian decomposition into %d cycles of length %d (validated)\n",
			*d, *n, len(cycles), g.Size)
		if !*quiet {
			for i, c := range cycles {
				fmt.Printf("H_%d:", i)
				for _, x := range c {
					fmt.Printf(" %s", g.String(x))
				}
				fmt.Println()
			}
		}
		return
	}

	fam, err := hamilton.DisjointHCs(*d, *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dhc:", err)
		os.Exit(1)
	}
	nodeCycles := make([][]int, len(fam.Cycles))
	for i, seq := range fam.Cycles {
		nodeCycles[i] = g.NodesOfSequence(seq)
		if !g.IsHamiltonian(nodeCycles[i]) {
			fmt.Fprintf(os.Stderr, "dhc: cycle %d failed Hamiltonicity check\n", i)
			os.Exit(1)
		}
	}
	if !g.EdgeDisjoint(nodeCycles...) {
		fmt.Fprintln(os.Stderr, "dhc: cycles are not edge-disjoint")
		os.Exit(1)
	}
	fmt.Printf("B(%d,%d): %d pairwise edge-disjoint Hamiltonian cycles (ψ(%d) = %d, verified)\n",
		*d, *n, len(fam.Cycles), *d, hamilton.Psi(*d))
	if !*quiet {
		for i, seq := range fam.Cycles {
			fmt.Printf("H_%d (as a De Bruijn sequence): %v\n", i, seq)
		}
	}
}
