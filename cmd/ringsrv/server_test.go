package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"debruijnring/engine"
	"debruijnring/obs"
	"debruijnring/session"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	eng := engine.New(engine.Options{})
	sessions := session.NewManager(eng, session.Options{})
	ts := httptest.NewServer(newServer(eng, sessions, nil, false))
	t.Cleanup(ts.Close)
	return ts
}

// TestSessionEndpointsMounted drives one session through the mounted
// /v1/sessions surface and checks the repair counters reach /v1/stats.
func TestSessionEndpointsMounted(t *testing.T) {
	ts := newTestServer(t)
	c := &session.Client{Base: ts.URL}
	ctx := context.Background()
	st, err := c.Create(ctx, session.CreateRequest{Name: "s", Topology: "debruijn(2,6)"})
	if err != nil {
		t.Fatal(err)
	}
	if st.RingLength != 64 {
		t.Errorf("created ring length %d", st.RingLength)
	}
	res, err := c.AddFaults(ctx, "s", session.FaultsRequest{NodeFaults: []string{st.Ring[5]}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Event.Repair != "local" && res.Event.Repair != "reembed" {
		t.Errorf("repair kind %q", res.Event.Repair)
	}

	var stats engine.EngineStats
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Sessions.LocalRepairs+stats.Sessions.Reembeds != 1 {
		t.Errorf("session stats did not reach /v1/stats: %+v", stats.Sessions)
	}
}

func postJSON(t *testing.T, url, body string, dst any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if dst != nil {
		if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp.StatusCode
}

func TestEmbedEndpointAndCache(t *testing.T) {
	ts := newTestServer(t)
	var out embedResponse
	code := postJSON(t, ts.URL+"/v1/embed",
		`{"topology":"debruijn(3,3)","node_faults":["020","112"]}`, &out)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(out.Ring) != 21 || out.Stats.RingLength != 21 || out.Stats.LowerBound != 21 {
		t.Errorf("response = %+v", out.Stats)
	}
	if out.Stats.CacheHit {
		t.Error("first request hit the cache")
	}
	for _, label := range out.Ring {
		if label == "020" || label == "112" {
			t.Error("ring contains a faulty processor")
		}
	}
	// Same faults, reversed order: served from cache.
	code = postJSON(t, ts.URL+"/v1/embed",
		`{"topology":"debruijn(3,3)","node_faults":["112","020"]}`, &out)
	if code != http.StatusOK || !out.Stats.CacheHit {
		t.Errorf("repeat: status %d, cache hit %v", code, out.Stats.CacheHit)
	}

	var stats engine.EngineStats
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Hits != 1 || stats.Misses != 1 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.Requests != 2 || stats.HitRate != 0.5 {
		t.Errorf("stats = %+v, want 2 requests at hit rate 0.5", stats)
	}
	if stats.LatencySamples != 2 || stats.LatencyP50Ns <= 0 {
		t.Errorf("latency stats missing: %+v", stats)
	}
}

func TestEmbedEndpointEdgeFaultsAndErrors(t *testing.T) {
	ts := newTestServer(t)
	var out embedResponse
	code := postJSON(t, ts.URL+"/v1/embed",
		`{"topology":"butterfly(3,2)","edge_faults":[{"from":"(0,00)","to":"(1,00)"}]}`, &out)
	if code != http.StatusOK || out.Stats.RingLength != 18 {
		t.Errorf("butterfly embed: status %d, stats %+v", code, out.Stats)
	}
	// Unsupported fault class → 422 with an error payload.
	var em map[string]string
	code = postJSON(t, ts.URL+"/v1/embed",
		`{"topology":"butterfly(3,2)","node_faults":["(0,00)"]}`, &em)
	if code != http.StatusUnprocessableEntity || em["error"] == "" {
		t.Errorf("status %d, body %v", code, em)
	}
	// Bad topology and bad label → 400.
	if code := postJSON(t, ts.URL+"/v1/embed", `{"topology":"tube(9)"}`, nil); code != http.StatusBadRequest {
		t.Errorf("bad topology: status %d", code)
	}
	if code := postJSON(t, ts.URL+"/v1/embed",
		`{"topology":"debruijn(3,3)","node_faults":["999"]}`, nil); code != http.StatusBadRequest {
		t.Errorf("bad label: status %d", code)
	}
	// Unknown fields and broken JSON → 400.
	if code := postJSON(t, ts.URL+"/v1/embed", `{"topolgy":"debruijn(3,3)"}`, nil); code != http.StatusBadRequest {
		t.Errorf("unknown field: status %d", code)
	}
	if code := postJSON(t, ts.URL+"/v1/embed", `{`, nil); code != http.StatusBadRequest {
		t.Errorf("broken JSON: status %d", code)
	}
}

func TestVerifyEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var emb embedResponse
	postJSON(t, ts.URL+"/v1/embed", `{"topology":"debruijn(3,3)","node_faults":["020"]}`, &emb)

	body, _ := json.Marshal(map[string]any{
		"topology":    "debruijn(3,3)",
		"node_faults": []string{"020"},
		"ring":        emb.Ring,
	})
	var ver verifyResponse
	if code := postJSON(t, ts.URL+"/v1/verify", string(body), &ver); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !ver.Valid {
		t.Error("embedded ring did not verify")
	}
	// The same ring against a fault it traverses is invalid.
	body, _ = json.Marshal(map[string]any{
		"topology":    "debruijn(3,3)",
		"node_faults": []string{emb.Ring[0]},
		"ring":        emb.Ring,
	})
	postJSON(t, ts.URL+"/v1/verify", string(body), &ver)
	if ver.Valid {
		t.Error("ring through faulty processor verified")
	}
	// A fault-free full embedding is Hamiltonian.
	postJSON(t, ts.URL+"/v1/embed", `{"topology":"debruijn(3,3)"}`, &emb)
	body, _ = json.Marshal(map[string]any{"topology": "debruijn(3,3)", "ring": emb.Ring})
	postJSON(t, ts.URL+"/v1/verify", string(body), &ver)
	if !ver.Valid || !ver.Hamiltonian {
		t.Errorf("full ring: %+v", ver)
	}
}

func TestDisjointCyclesEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var out disjointCyclesResponse
	code := postJSON(t, ts.URL+"/v1/disjoint-cycles",
		`{"topology":"debruijn(4,2)","max_cycles":2}`, &out)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if out.Count != 3 || out.Length != 16 || len(out.Cycles) != 2 {
		t.Errorf("response = count %d, length %d, %d cycles", out.Count, out.Length, len(out.Cycles))
	}
	// Shuffle-exchange carries no Hamiltonian family → 422.
	if code := postJSON(t, ts.URL+"/v1/disjoint-cycles",
		`{"topology":"shuffleexchange(3,3)"}`, nil); code != http.StatusUnprocessableEntity {
		t.Errorf("SE: status %d", code)
	}
}

func TestBroadcastEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var single, multi broadcastResponse
	if code := postJSON(t, ts.URL+"/v1/broadcast",
		`{"topology":"debruijn(4,2)","message_size":12,"rings":1}`, &single); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if code := postJSON(t, ts.URL+"/v1/broadcast",
		`{"topology":"debruijn(4,2)","message_size":12}`, &multi); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if multi.Rings != 3 || multi.TimeUnits*3 != single.TimeUnits {
		t.Errorf("expected 3× speedup: single %+v, multi %+v", single, multi)
	}
}

// TestMetricsEndpoints checks the exposition surface: /metrics serves
// Prometheus text with the engine families, /v1/metrics the JSON
// snapshot, and /debug/pprof/ is absent unless opted in.
func TestMetricsEndpoints(t *testing.T) {
	ts := newTestServer(t)
	postJSON(t, ts.URL+"/v1/embed", `{"topology":"debruijn(3,3)","node_faults":["020"]}`, nil)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE engine_request_ns histogram",
		"engine_request_ns_count 1",
		"engine_cache_misses_total 1",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics is missing %q", want)
		}
	}

	var snap obs.Snapshot
	resp, err = http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Histograms["engine_request_ns"].Count != 1 {
		t.Errorf("snapshot engine_request_ns count = %d, want 1", snap.Histograms["engine_request_ns"].Count)
	}

	// pprof is opt-in: absent on the default server, mounted with the flag.
	resp, err = http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/debug/pprof/ without -pprof: status %d, want 404", resp.StatusCode)
	}
	eng := engine.New(engine.Options{})
	pts := httptest.NewServer(newServer(eng, nil, nil, true))
	defer pts.Close()
	resp, err = http.Get(pts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ with -pprof: status %d, want 200", resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}
}
