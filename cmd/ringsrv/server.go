package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"

	"debruijnring/engine"
	"debruijnring/internal/broadcast"
	"debruijnring/session"
	"debruijnring/topology"
)

// server wires the embedding engine and the session manager to the
// HTTP/JSON surface.
type server struct {
	eng *engine.Engine
	mux *http.ServeMux
}

// newServer mounts the one-shot embedding endpoints next to the
// session/fleet surface.  shardH — a fleet Shard's handler — takes
// precedence for the session, replica and replication routes, carrying
// the shard's split-brain fence and control plane; a bare sessions
// manager (tests) mounts the session API directly.  enablePprof mounts
// net/http/pprof under /debug/pprof/ (opt-in: the profiles leak
// internals, so production deployments keep it off unless diagnosing).
func newServer(eng *engine.Engine, sessions *session.Manager, shardH http.Handler, enablePprof bool) *server {
	s := &server{eng: eng, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/embed", s.handleEmbed)
	s.mux.HandleFunc("POST /v1/verify", s.handleVerify)
	s.mux.HandleFunc("POST /v1/disjoint-cycles", s.handleDisjointCycles)
	s.mux.HandleFunc("POST /v1/broadcast", s.handleBroadcast)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.Handle("GET /metrics", eng.Registry().Handler())
	s.mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, eng.Registry().Snapshot())
	})
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	if enablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	switch {
	case shardH != nil:
		for _, p := range []string{"/v1/sessions", "/v1/sessions/", "/v1/replica/", "/v1/replication", "/v1/replication/"} {
			s.mux.Handle(p, shardH)
		}
	case sessions != nil:
		h := session.Handler(sessions)
		s.mux.Handle("/v1/sessions", h)
		s.mux.Handle("/v1/sessions/", h)
	}
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// edgeJSON is a faulty link named by processor labels.
type edgeJSON struct {
	From string `json:"from"`
	To   string `json:"to"`
}

// faultsJSON names failed components by their processor labels.
type faultsJSON struct {
	Topology   string     `json:"topology"`
	NodeFaults []string   `json:"node_faults,omitempty"`
	EdgeFaults []edgeJSON `json:"edge_faults,omitempty"`
}

// resolve parses the topology spec and the labeled fault set.
func (f *faultsJSON) resolve() (topology.RingEmbedder, topology.FaultSet, error) {
	net, err := topology.FromSpec(f.Topology)
	if err != nil {
		return nil, topology.FaultSet{}, err
	}
	edges := make([][2]string, len(f.EdgeFaults))
	for i, e := range f.EdgeFaults {
		edges[i] = [2]string{e.From, e.To}
	}
	fs, err := topology.ParseFaults(net, f.NodeFaults, edges)
	if err != nil {
		return nil, topology.FaultSet{}, err
	}
	return net, fs, nil
}

type embedResponse struct {
	Ring  []string     `json:"ring"`
	Stats engine.Stats `json:"stats"`
}

func (s *server) handleEmbed(w http.ResponseWriter, r *http.Request) {
	var req faultsJSON
	if !decode(w, r, &req) {
		return
	}
	net, fs, err := req.resolve()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.eng.EmbedRing(r.Context(), engine.Request{Network: net, Faults: fs})
	if err != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusServiceUnavailable
		}
		httpError(w, status, err)
		return
	}
	writeJSON(w, embedResponse{Ring: labels(net, res.Ring), Stats: res.Stats})
}

type verifyRequest struct {
	faultsJSON
	Ring []string `json:"ring"`
}

type verifyResponse struct {
	Valid       bool `json:"valid"`
	Hamiltonian bool `json:"hamiltonian"`
}

func (s *server) handleVerify(w http.ResponseWriter, r *http.Request) {
	var req verifyRequest
	if !decode(w, r, &req) {
		return
	}
	net, fs, err := req.resolve()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	ring := make([]int, len(req.Ring))
	for i, label := range req.Ring {
		if ring[i], err = net.Parse(label); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
	}
	writeJSON(w, verifyResponse{
		Valid:       topology.VerifyRing(net, ring, fs),
		Hamiltonian: topology.VerifyHamiltonian(net, ring, fs),
	})
}

type disjointCyclesRequest struct {
	Topology  string `json:"topology"`
	MaxCycles int    `json:"max_cycles,omitempty"` // 0 = all
}

type disjointCyclesResponse struct {
	Count  int        `json:"count"`
	Length int        `json:"length"`
	Cycles [][]string `json:"cycles"`
}

func (s *server) handleDisjointCycles(w http.ResponseWriter, r *http.Request) {
	var req disjointCyclesRequest
	if !decode(w, r, &req) {
		return
	}
	net, err := topology.FromSpec(req.Topology)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	fam, ok := net.(topology.CycleFamily)
	if !ok {
		httpError(w, http.StatusUnprocessableEntity,
			fmt.Errorf("topology %s carries no disjoint Hamiltonian cycle family", net.Name()))
		return
	}
	cycles, err := fam.DisjointCycles()
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	resp := disjointCyclesResponse{Count: len(cycles)}
	if len(cycles) > 0 {
		resp.Length = len(cycles[0])
	}
	limit := len(cycles)
	if req.MaxCycles > 0 && req.MaxCycles < limit {
		limit = req.MaxCycles
	}
	for _, c := range cycles[:limit] {
		resp.Cycles = append(resp.Cycles, labels(net, c))
	}
	writeJSON(w, resp)
}

type broadcastRequest struct {
	Topology    string `json:"topology"`
	MessageSize int    `json:"message_size"`
	Rings       int    `json:"rings,omitempty"` // 0 = the whole disjoint family
}

type broadcastResponse struct {
	Rings       int `json:"rings"`
	Steps       int `json:"steps"`
	TimeUnits   int `json:"time_units"`
	MaxLinkLoad int `json:"max_link_load"`
}

func (s *server) handleBroadcast(w http.ResponseWriter, r *http.Request) {
	var req broadcastRequest
	if !decode(w, r, &req) {
		return
	}
	net, err := topology.FromSpec(req.Topology)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	fam, ok := net.(topology.CycleFamily)
	if !ok {
		httpError(w, http.StatusUnprocessableEntity,
			fmt.Errorf("topology %s carries no disjoint Hamiltonian cycle family", net.Name()))
		return
	}
	cycles, err := fam.DisjointCycles()
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	if req.Rings > 0 && req.Rings < len(cycles) {
		cycles = cycles[:req.Rings]
	}
	res, err := broadcast.Run(net.Nodes(), cycles, req.MessageSize)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, broadcastResponse{
		Rings:       res.Rings,
		Steps:       res.Steps,
		TimeUnits:   res.TimeUnits,
		MaxLinkLoad: res.MaxLinkLoad,
	})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.eng.Stats())
}

func labels(net topology.Network, nodes []int) []string {
	out := make([]string, len(nodes))
	for i, v := range nodes {
		out[i] = net.Label(v)
	}
	return out
}

func decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
