// Command ringsrv serves fault-tolerant ring embedding over HTTP/JSON:
// the concurrent, memoizing engine of package engine fronted by the
// one-shot embedding endpoints, plus the session subsystem for
// long-lived fault-evolving topologies.
//
//	POST /v1/embed            {"topology":"debruijn(3,3)","node_faults":["020","112"]}
//	POST /v1/verify           {"topology":"...", "ring":[...], "node_faults":[...], "edge_faults":[...]}
//	POST /v1/disjoint-cycles  {"topology":"debruijn(4,3)","max_cycles":2}
//	POST /v1/broadcast        {"topology":"debruijn(4,2)","message_size":12,"rings":3}
//	GET  /v1/stats            engine cache + session repair counters
//	GET  /metrics             Prometheus text exposition (histograms included)
//	GET  /v1/metrics          the same registry as a JSON snapshot
//	GET  /healthz
//
//	POST   /v1/sessions                create an incremental-repair session
//	GET    /v1/sessions                list sessions
//	GET    /v1/sessions/{name}         session state (ring, faults, stats)
//	DELETE /v1/sessions/{name}         close and remove a session
//	POST   /v1/sessions/{name}/faults  absorb a fault batch (local repair or re-embed)
//	DELETE /v1/sessions/{name}/faults  re-admit a repaired batch (local un-patch or re-embed)
//	GET    /v1/sessions/{name}/watch   stream ring deltas (long-poll or SSE)
//	GET    /v1/sessions/{name}/trace   recent repair traces (per-tier timings)
//
//	POST   /v1/replica/append          ingest a peer's journal events
//	DELETE /v1/replica/sessions/{name} drop a replicated journal
//	POST   /v1/replica/promote         restore replicated journals hot (epoch-guarded)
//	GET    /v1/replica/status          replication status
//
//	GET  /v1/replication               outbound replication state, target, lag
//	POST /v1/replication/target        re-target replication and bootstrap the new standby
//	POST /v1/replication/handoff       stream one session's journal to another shard
//	POST /v1/replication/adopt         restore a streamed-in journal hot
//	POST /v1/replication/forget        drop a handed-off journal
//
// Usage:
//
//	ringsrv -addr :8080 -workers 8 -cache 1024 -journal /var/lib/ringsrv
//
// With -journal set, every session transition is appended to
// <dir>/<name>.journal and sessions are restored from their journals at
// startup, so a killed server resumes each session with an identical
// ring.
//
// Fleet mode: with -replicate-to http://peer:8081 every journal append
// is synchronously shipped to the peer's /v1/replica endpoints before
// the event is acknowledged, so losing this process loses no
// acknowledged event.  With -standby the startup restore is skipped —
// the process holds replicated journals cold until a router (see
// cmd/ringfleet) promotes it.  An unreachable replica degrades the
// shard to catch-up replication (journals are re-streamed with backoff
// until the standby converges), and the router can re-target
// replication at a fresh standby at runtime.  If the peer turns out to
// be promoted — this process is a stale ex-primary — the shard fences
// itself (503 on /v1/sessions) and demotes to a clean standby instead
// of serving stale sessions.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"debruijnring/engine"
	"debruijnring/fleet"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "embedding worker pool size (0 = GOMAXPROCS)")
	embedWorkers := flag.Int("embed-workers", 0, "per-embed BFS worker count on adapters that shard internally (0 = GOMAXPROCS, 1 = serial; output identical)")
	cacheSize := flag.Int("cache", engine.DefaultCacheSize, "LRU entries memoized per (topology, fault set); negative disables")
	journalDir := flag.String("journal", "", "session journal directory (empty = sessions are in-memory only)")
	snapshotEvery := flag.Int("snapshot-every", 32, "journal snapshot cadence in fault events")
	replicateTo := flag.String("replicate-to", "", "peer base URL to stream journal events to (fleet shard mode)")
	standby := flag.Bool("standby", false, "skip the startup restore; hold journals cold until promoted")
	enablePprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (off by default)")
	flag.Parse()

	shard, err := fleet.NewShard(fleet.ShardConfig{
		JournalDir:    *journalDir,
		ReplicateTo:   *replicateTo,
		Standby:       *standby,
		SnapshotEvery: *snapshotEvery,
		Workers:       *workers,
		EmbedWorkers:  *embedWorkers,
		CacheSize:     *cacheSize,
		Logf:          log.Printf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ringsrv:", err)
		os.Exit(1)
	}
	if shard.Restored > 0 {
		log.Printf("ringsrv: restored %d session(s) from %s", shard.Restored, *journalDir)
	}
	defer shard.Close()
	srv := &http.Server{
		Addr:              *addr,
		Handler:           newServer(shard.Engine, nil, shard.Handler(), *enablePprof),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("ringsrv: listening on %s", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "ringsrv:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		log.Print("ringsrv: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "ringsrv: shutdown:", err)
			os.Exit(1)
		}
	}
}
