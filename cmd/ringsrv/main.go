// Command ringsrv serves fault-tolerant ring embedding over HTTP/JSON:
// the concurrent, memoizing engine of package engine fronted by four
// endpoints, for any topology the Network interface covers.
//
//	POST /v1/embed            {"topology":"debruijn(3,3)","node_faults":["020","112"]}
//	POST /v1/verify           {"topology":"...", "ring":[...], "node_faults":[...], "edge_faults":[...]}
//	POST /v1/disjoint-cycles  {"topology":"debruijn(4,3)","max_cycles":2}
//	POST /v1/broadcast        {"topology":"debruijn(4,2)","message_size":12,"rings":3}
//	GET  /v1/stats            engine cache counters
//	GET  /healthz
//
// Usage:
//
//	ringsrv -addr :8080 -workers 8 -cache 1024
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"debruijnring/engine"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "embedding worker pool size (0 = GOMAXPROCS)")
	cacheSize := flag.Int("cache", engine.DefaultCacheSize, "LRU entries memoized per (topology, fault set); negative disables")
	flag.Parse()

	eng := engine.New(engine.Options{Workers: *workers, CacheSize: *cacheSize})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           newServer(eng),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("ringsrv: listening on %s", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "ringsrv:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		log.Print("ringsrv: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "ringsrv: shutdown:", err)
			os.Exit(1)
		}
	}
}
