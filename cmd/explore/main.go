// Command explore probes the open questions of Chapter 5 of Rowley–Bose on
// small instances by exhaustive search.
//
// Usage:
//
//	explore -q 1 -d 6 -n 2 -trials 25   # HC under d−2 edge faults, composite d
//	explore -q 2 -d 3 -n 2              # how many disjoint HCs exist exactly?
//	explore -q 3 -d 3 -n 2 -trials 25   # UB cycles under 2(d−1)−1 node faults
//	explore -q 4 -d 4 -n 2 -trials 25   # UB HCs under 2(d−2) edge faults
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"sort"

	"debruijnring/internal/debruijn"
	"debruijnring/internal/explore"
	"debruijnring/internal/hamilton"
)

func main() {
	q := flag.Int("q", 1, "question number (1-4, Chapter 5)")
	d := flag.Int("d", 6, "arity")
	n := flag.Int("n", 2, "word length")
	trials := flag.Int("trials", 25, "random fault sets to test")
	seed := flag.Uint64("seed", 5, "RNG seed")
	flag.Parse()

	g := debruijn.New(*d, *n)
	rng := rand.New(rand.NewPCG(*seed, uint64(*q)))

	switch *q {
	case 1:
		var sets [][][2]int
		for t := 0; t < *trials; t++ {
			set := make([][2]int, 0, *d-2)
			seen := map[[2]int]bool{}
			for len(set) < *d-2 {
				u := rng.IntN(g.Size)
				succ := g.Successors(u, nil)
				v := succ[rng.IntN(len(succ))]
				if u == v || seen[[2]int{u, v}] {
					continue
				}
				seen[[2]int{u, v}] = true
				set = append(set, [2]int{u, v})
			}
			sets = append(sets, set)
		}
		tested, counter, err := explore.Question1(*d, *n, sets)
		if err != nil {
			fail(err)
		}
		if counter != nil {
			fmt.Printf("Q1 on B(%d,%d): COUNTEREXAMPLE after %d sets: %v\n", *d, *n, tested, counter)
			return
		}
		fmt.Printf("Q1 on B(%d,%d): all %d random sets of %d edge faults left a Hamiltonian cycle\n",
			*d, *n, tested, *d-2)
		fmt.Printf("(guaranteed tolerance is only MAX{ψ−1, φ} = %d)\n", hamilton.MaxEdgeFaults(*d))

	case 2:
		k := 1
		for {
			if explore.Question2(*d, *n, k+1) == nil {
				break
			}
			k++
		}
		fmt.Printf("Q2 on B(%d,%d): exactly %d pairwise disjoint Hamiltonian cycles exist "+
			"(ψ(%d) = %d guaranteed, d−1 = %d conjectured)\n", *d, *n, k, *d, hamilton.Psi(*d), *d-1)

	case 3:
		f := 2*(*d-1) - 1
		ok := true
		for t := 0; t < *trials; t++ {
			faults := map[int]bool{}
			for len(faults) < f {
				faults[rng.IntN(g.Size)] = true
			}
			var fs []int
			for x := range faults {
				fs = append(fs, x)
			}
			sort.Ints(fs)
			cycle, bound := explore.Question3(*d, *n, fs)
			if bound > 0 && len(cycle) < bound {
				fmt.Printf("Q3 on UB(%d,%d): faults %v leave only a %d-cycle < dⁿ−nf = %d\n",
					*d, *n, fs, len(cycle), bound)
				ok = false
			}
		}
		if ok {
			fmt.Printf("Q3 on UB(%d,%d): all %d sets of %d node faults left a cycle ≥ dⁿ−nf\n",
				*d, *n, *trials, f)
		}

	case 4:
		f := 2 * (*d - 2)
		failures := 0
		for t := 0; t < *trials; t++ {
			var faults [][2]int
			seen := map[[2]int]bool{}
			for len(faults) < f {
				u := rng.IntN(g.Size)
				nb := g.UndirectedNeighbors(u, nil)
				v := nb[rng.IntN(len(nb))]
				a, b := u, v
				if a > b {
					a, b = b, a
				}
				if seen[[2]int{a, b}] {
					continue
				}
				seen[[2]int{a, b}] = true
				faults = append(faults, [2]int{a, b})
			}
			if explore.Question4(*d, *n, faults) == nil {
				fmt.Printf("Q4 on UB(%d,%d): faults %v destroy every Hamiltonian cycle\n", *d, *n, faults)
				failures++
			}
		}
		fmt.Printf("Q4 on UB(%d,%d): %d of %d sets of %d edge faults destroyed all HCs\n",
			*d, *n, failures, *trials, f)
		if failures > 0 {
			fmt.Println("(expected occasionally: random faults can take all but one of a node's edges)")
		}

	default:
		fmt.Fprintln(os.Stderr, "explore: -q must be 1, 2, 3 or 4")
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "explore:", err)
	os.Exit(1)
}
