package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"reflect"
	"sort"
	"time"

	"debruijnring/obs"
)

// fetchSnapshot GETs a JSON metrics snapshot (shard /v1/metrics or the
// router's merged fleet-wide view — same shape either way).
func fetchSnapshot(url string) (obs.Snapshot, error) {
	var snap obs.Snapshot
	resp, err := http.Get(url)
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return snap, err
	}
	return snap, nil
}

// fleetShardURLs asks the server for its fleet status and returns the
// active shard URLs.  A plain ringsrv answers 404 (it is not a router);
// that reads as "no shards" rather than an error.
func fleetShardURLs(server string) []string {
	resp, err := http.Get(server + "/v1/fleet")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var groups []struct {
		Active string `json:"active"`
		Down   bool   `json:"down"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&groups); err != nil {
		return nil
	}
	var urls []string
	for _, g := range groups {
		if !g.Down && g.Active != "" {
			urls = append(urls, g.Active)
		}
	}
	return urls
}

// reportFleetMetrics prints the server-side per-tier repair-latency
// quantiles from the merged metrics snapshot, and — against a ringfleet
// router — verifies the router's merge bucket-for-bucket against the
// shard-local snapshots merged offline.  Quantiles computed on the
// merged histogram are exact fleet-wide quantiles (to bucket width),
// which averaging per-shard quantiles would not be.
func reportFleetMetrics(server string) error {
	merged, err := fetchSnapshot(server + "/v1/metrics")
	if err != nil {
		return fmt.Errorf("fetching server metrics: %w", err)
	}
	var keys []string
	for key := range merged.Histograms {
		if obs.Family(key) == "session_repair_ns" {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	if len(keys) == 0 {
		fmt.Println("server metrics: no session_repair_ns series yet")
		return nil
	}
	fmt.Println()
	fmt.Println("server-side repair histograms (merged fleet view):")
	fmt.Printf("%-36s %8s  %12s  %12s  %12s  %12s\n", "series", "count", "mean", "p50", "p99", "p999")
	for _, key := range keys {
		h := merged.Histograms[key]
		fmt.Printf("%-36s %8d  %12s  %12s  %12s  %12s\n", key, h.Count,
			time.Duration(h.Mean()),
			time.Duration(h.Quantile(0.50)),
			time.Duration(h.Quantile(0.99)),
			time.Duration(h.Quantile(0.999)))
	}

	shards := fleetShardURLs(server)
	if len(shards) == 0 {
		return nil // plain ringsrv: the snapshot IS the shard-local view
	}
	snaps := make([]obs.Snapshot, 0, len(shards))
	for _, u := range shards {
		s, err := fetchSnapshot(u + "/v1/metrics")
		if err != nil {
			// Shards may be unreachable from the client side (router-only
			// network); the cross-check is then impossible, not failed.
			fmt.Fprintf(os.Stderr, "chaos: shard %s metrics unreachable (%v); skipping the offline cross-check\n", u, err)
			return nil
		}
		snaps = append(snaps, s)
	}
	offline, err := obs.Merge(snaps...)
	if err != nil {
		return fmt.Errorf("merging shard snapshots offline: %w", err)
	}
	for _, key := range keys {
		got, want := merged.Histograms[key], offline.Histograms[key]
		if got.Count != want.Count || got.Sum != want.Sum || !reflect.DeepEqual(got.Buckets, want.Buckets) {
			return fmt.Errorf("METRICS DIVERGENCE: %s: router-merged histogram (count %d, sum %d) disagrees with %d shard snapshots merged offline (count %d, sum %d)",
				key, got.Count, got.Sum, len(snaps), want.Count, want.Sum)
		}
	}
	fmt.Printf("fleet metrics check: %d repair series agree with %d shard snapshot(s) merged offline\n",
		len(keys), len(snaps))
	return nil
}
