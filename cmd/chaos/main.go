// Command chaos replays fault traces against a ringsrv instance's
// session API and reports how the incremental-repair subsystem holds
// up: repair-vs-recompute latency and the ring-length degradation curve
// against the paper's dⁿ − nf bound.
//
// Traces are either generated (random faults over the topology, seeded
// and reproducible) or replayed from a recorded JSON file, so a
// production incident can be re-run against a patched server build.
//
// Usage:
//
//	chaos -server http://localhost:8080 -topology 'debruijn(2,10)' -events 10 -seed 7
//	chaos -server http://localhost:8080 -topology 'debruijn(2,10)' -events 64 -record trace.json
//	chaos -server http://localhost:8080 -replay trace.json
//	chaos -topology 'debruijn(4,6)' -events 32 -record trace.json   # generate only
//
// Flags:
//
//	-server    ringsrv base URL (empty with -record: generate the trace and exit)
//	-topology  topology spec for generated traces
//	-events    fault events to generate (one fault per event)
//	-seed      RNG seed for generated traces
//	-edge-prob probability an event is a link fault instead of a node fault
//	-session   session name (default chaos-<seed>)
//	-replay    JSON trace file to replay instead of generating
//	-record    write the generated trace to this file
//	-interval  pause between events (e.g. 100ms), simulating fault arrival
//	-keep      leave the session on the server after the run
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"

	"debruijnring/session"
	"debruijnring/topology"
)

// Trace is the recorded fault stream: a topology and the fault batches
// to feed it, in order.
type Trace struct {
	Topology string                  `json:"topology"`
	Seed     int64                   `json:"seed,omitempty"`
	Events   []session.FaultsRequest `json:"events"`
}

func main() {
	server := flag.String("server", "", "ringsrv base URL, e.g. http://localhost:8080")
	spec := flag.String("topology", "debruijn(2,10)", "topology spec for generated traces")
	events := flag.Int("events", 10, "number of generated fault events")
	seed := flag.Int64("seed", 1, "RNG seed for generated traces")
	edgeProb := flag.Float64("edge-prob", 0, "probability an event is a link fault")
	name := flag.String("session", "", "session name (default chaos-<seed>)")
	replay := flag.String("replay", "", "JSON trace file to replay")
	record := flag.String("record", "", "write the generated trace to this file")
	interval := flag.Duration("interval", 0, "pause between fault events")
	keep := flag.Bool("keep", false, "keep the session after the run")
	flag.Parse()

	trace, err := loadOrGenerate(*replay, *spec, *events, *seed, *edgeProb)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		os.Exit(1)
	}
	if *record != "" {
		if err := writeTrace(*record, trace); err != nil {
			fmt.Fprintln(os.Stderr, "chaos:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "chaos: recorded %d events to %s\n", len(trace.Events), *record)
	}
	if *server == "" {
		if *record == "" {
			fmt.Fprintln(os.Stderr, "chaos: no -server and no -record; nothing to do")
			os.Exit(1)
		}
		return
	}

	sessionName := *name
	if sessionName == "" {
		sessionName = fmt.Sprintf("chaos-%d", trace.Seed)
	}
	if err := run(trace, *server, sessionName, *interval, *keep); err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		os.Exit(1)
	}
}

// loadOrGenerate returns the trace to drive: the recorded file when
// replaying, a seeded random stream otherwise.
func loadOrGenerate(replay, spec string, events int, seed int64, edgeProb float64) (*Trace, error) {
	if replay != "" {
		data, err := os.ReadFile(replay)
		if err != nil {
			return nil, err
		}
		var tr Trace
		if err := json.Unmarshal(data, &tr); err != nil {
			return nil, fmt.Errorf("parsing %s: %w", replay, err)
		}
		if tr.Topology == "" || len(tr.Events) == 0 {
			return nil, fmt.Errorf("%s: trace needs a topology and at least one event", replay)
		}
		return &tr, nil
	}
	net, err := topology.FromSpec(spec)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	tr := &Trace{Topology: spec, Seed: seed}
	var buf []int
	for i := 0; i < events; i++ {
		var ev session.FaultsRequest
		if rng.Float64() < edgeProb {
			u := rng.Intn(net.Nodes())
			buf = net.Successors(u, buf)
			w := buf[rng.Intn(len(buf))]
			ev.EdgeFaults = []session.EdgeJSON{{From: net.Label(u), To: net.Label(w)}}
		} else {
			ev.NodeFaults = []string{net.Label(rng.Intn(net.Nodes()))}
		}
		tr.Events = append(tr.Events, ev)
	}
	return tr, nil
}

func writeTrace(path string, tr *Trace) error {
	data, err := json.MarshalIndent(tr, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// sample is one absorbed event's measurements.
type sample struct {
	repair     string
	ringLen    int
	lowerBound int
	serverNs   int64
	clientNs   int64
	rejected   bool
}

func run(tr *Trace, server, name string, interval time.Duration, keep bool) error {
	ctx := context.Background()
	c := &session.Client{Base: server}
	st, err := c.Create(ctx, session.CreateRequest{Name: name, Topology: tr.Topology})
	if err != nil {
		return err
	}
	fmt.Printf("session %s on %s: initial ring %d nodes\n", name, tr.Topology, st.RingLength)
	if !keep {
		defer c.Delete(ctx, name)
	}

	samples := make([]sample, 0, len(tr.Events))
	fmt.Printf("%5s  %-8s  %9s  %9s  %12s  %12s\n",
		"event", "repair", "ring", "bound", "server", "round-trip")
	for i, ev := range tr.Events {
		if interval > 0 && i > 0 {
			time.Sleep(interval)
		}
		start := time.Now()
		res, err := c.AddFaults(ctx, name, ev)
		clientNs := time.Since(start).Nanoseconds()
		if err != nil {
			// Rejected batches (beyond embeddable tolerance) end the run:
			// the server keeps its last good ring.  The journaled
			// rejection event, when returned, carries the surviving ring.
			s := sample{repair: "rejected", rejected: true, clientNs: clientNs}
			if res != nil {
				s.ringLen = res.Event.RingLength
				s.serverNs = res.Event.ElapsedNs
				fmt.Printf("%5d  rejected (ring stays %d): %v\n", i+1, res.Event.RingLength, err)
			} else {
				fmt.Printf("%5d  rejected: %v\n", i+1, err)
			}
			samples = append(samples, s)
			break
		}
		s := sample{
			repair:     res.Event.Repair,
			ringLen:    res.Event.RingLength,
			lowerBound: res.Event.LowerBound,
			serverNs:   res.Event.ElapsedNs,
			clientNs:   clientNs,
		}
		samples = append(samples, s)
		fmt.Printf("%5d  %-8s  %9d  %9d  %12s  %12s\n",
			i+1, s.repair, s.ringLen, s.lowerBound,
			time.Duration(s.serverNs), time.Duration(s.clientNs))
	}
	report(samples)
	return nil
}

// report prints the repair-vs-recompute summary and the degradation
// curve endpoints.
func report(samples []sample) {
	byKind := map[string][]int64{}
	counts := map[string]int{}
	for _, s := range samples {
		counts[s.repair]++
		byKind[s.repair] = append(byKind[s.repair], s.serverNs)
	}
	fmt.Println()
	fmt.Printf("events: %d  local: %d  reembed: %d  noop: %d  rejected: %d\n",
		len(samples), counts["local"], counts["reembed"], counts["noop"], counts["rejected"])
	if changing := counts["local"] + counts["reembed"]; changing > 0 {
		fmt.Printf("patch hit rate: %.1f%%\n", 100*float64(counts["local"])/float64(changing))
	}
	for _, kind := range []string{"local", "reembed"} {
		lat := byKind[kind]
		if len(lat) == 0 {
			continue
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		var sum int64
		for _, v := range lat {
			sum += v
		}
		fmt.Printf("%-8s latency: mean %s  p50 %s  max %s\n", kind,
			time.Duration(sum/int64(len(lat))),
			time.Duration(lat[len(lat)/2]),
			time.Duration(lat[len(lat)-1]))
	}
	// Degradation: how much ring the stream cost versus the guarantee.
	var last *sample
	for i := range samples {
		if !samples[i].rejected && samples[i].ringLen > 0 {
			last = &samples[i]
		}
	}
	if last != nil {
		fmt.Printf("final ring: %d nodes (guaranteed ≥ %d)\n", last.ringLen, last.lowerBound)
	}
}
