// Command chaos replays fault traces against a ringsrv instance's
// session API and reports how the incremental-repair subsystem holds
// up: repair-vs-recompute latency and the ring-length degradation curve
// against the paper's dⁿ − nf bound.
//
// Traces are either generated (random faults over the topology, seeded
// and reproducible) or replayed from a recorded JSON file, so a
// production incident can be re-run against a patched server build.
// Generated traces model the full bidirectional lifecycle: with
// -heal-rate set, events heal previously injected faults (DELETE
// …/faults) as well as add new ones, exercising the un-patch path.
//
// Usage:
//
//	chaos -server http://localhost:8080 -topology 'debruijn(2,10)' -events 10 -seed 7
//	chaos -server http://localhost:8080 -topology 'debruijn(2,10)' -events 64 -heal-rate 0.3 -record trace.json
//	chaos -server http://localhost:8080 -replay trace.json
//	chaos -server http://localhost:8080 -topology 'debruijn(2,10)' -soak 60s -heal-rate 0.35 -check
//	chaos -server http://localhost:8080 -topology 'debruijn(2,10)' -soak 60s -heal-rate 0.35 \
//	      -splice-rate 0.05 -check -min-splice 1
//	chaos -topology 'debruijn(4,6)' -events 32 -record trace.json   # generate only
//	chaos -server http://localhost:8000 -topology 'debruijn(2,10)' -sessions 120 -events 20 -heal-rate 0.3
//	chaos -server http://localhost:8000 -topology 'debruijn(2,8)' -sessions 32 -soak 45s \
//	      -heal-rate 0.3 -rebalance g-new=http://localhost:8084
//
// Flags:
//
//	-server      ringsrv base URL (empty with -record: generate the trace and exit)
//	-topology    topology spec for generated traces
//	-events      fault events to generate (one fault per event)
//	-seed        RNG seed for generated traces
//	-edge-prob   probability an event is a link fault instead of a node fault
//	-heal-rate   probability an event heals a live injected fault instead of adding one
//	-splice-rate probability an event faults the FFC root processor (node 0), the
//	             fault class the structural tier always declines — exercises the
//	             splice tier of the repair ladder
//	-max-live    cap on concurrently live injected faults (0 = word length n heuristic)
//	-session     session name (default chaos-<seed>)
//	-sessions    drive this many concurrent sessions (fleet load mode: names
//	             <session>-<i>, seeds <seed>+i, per-event output suppressed,
//	             one aggregated report; point -server at a ringfleet router
//	             and the sessions spread across the shards)
//	-rebalance   fleet soak only: add this shard group ("name=primaryURL[=replicaURL]")
//	             to the router at the soak midpoint via POST /v1/fleet/shards, so the
//	             run exercises the drain/hand-off/flip choreography under live load;
//	             the run fails if the add does, and reports drain-induced retries
//	             separately from failover retries
//	-replay      JSON trace file to replay instead of generating
//	-record      write the generated trace to this file
//	-interval    pause between events (e.g. 100ms), simulating fault arrival
//	-soak        keep generating events for this long (overrides -events; soak mode)
//	-check       verify every ring locally and compare against a cold re-embed
//	-min-splice  exit nonzero unless at least this many events resolved in the
//	             splice tier (guards against the chain silently degenerating to
//	             re-embed-only)
//	-keep        leave the session on the server after the run
//
// With -check, chaos independently verifies each reported ring with
// topology.VerifyRing against the session's cumulative fault set and
// cross-checks it against a cold EmbedRing of the same fault set: while
// the structural tier owns the ring the lengths must match exactly;
// once the splice tier has taken over (repair "splice") the ring
// legitimately departs from the cold shape, and the check becomes the
// paper's dⁿ − nf bound whenever the cold embed meets it, until the
// next re-embed re-adopts the ring.  Any verify error or divergence
// exits nonzero, which is what the CI soak job gates on.
//
// -check also reads the server's merged metrics snapshot
// (GET /v1/metrics) and prints per-tier repair-latency quantiles
// (p50/p99/p999) from the server-side histograms; against a ringfleet
// router it additionally re-fetches every shard's local snapshot,
// merges it offline and verifies the router's fleet-wide histograms
// bucket-for-bucket, exiting nonzero on divergence.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"debruijnring/obs"
	"debruijnring/session"
	"debruijnring/topology"
)

// TraceEvent is one recorded lifecycle step: a fault batch (Heal false)
// or a heal batch (Heal true) in the session API's request shape.
// Traces recorded before heals existed decode with Heal == false.
type TraceEvent struct {
	session.FaultsRequest
	Heal bool `json:"heal,omitempty"`
}

// Trace is the recorded fault stream: a topology and the lifecycle
// events to feed it, in order.
type Trace struct {
	Topology string       `json:"topology"`
	Seed     int64        `json:"seed,omitempty"`
	Events   []TraceEvent `json:"events"`
}

func main() {
	server := flag.String("server", "", "ringsrv base URL, e.g. http://localhost:8080")
	spec := flag.String("topology", "debruijn(2,10)", "topology spec for generated traces")
	events := flag.Int("events", 10, "number of generated fault events")
	seed := flag.Int64("seed", 1, "RNG seed for generated traces")
	edgeProb := flag.Float64("edge-prob", 0, "probability an event is a link fault")
	healRate := flag.Float64("heal-rate", 0, "probability an event heals a live injected fault")
	spliceRate := flag.Float64("splice-rate", 0, "probability an event faults the FFC root processor (exercises the splice tier)")
	maxLive := flag.Int("max-live", 0, "cap on live injected faults (0 = topology heuristic)")
	name := flag.String("session", "", "session name (default chaos-<seed>)")
	sessionsN := flag.Int("sessions", 1, "concurrent sessions to drive (fleet load mode; names <session>-<i>, seeds <seed>+i)")
	rebalance := flag.String("rebalance", "", "fleet soak only: add this shard group (name=primaryURL[=replicaURL]) to the router mid-soak via POST /v1/fleet/shards")
	replay := flag.String("replay", "", "JSON trace file to replay")
	record := flag.String("record", "", "write the generated trace to this file")
	interval := flag.Duration("interval", 0, "pause between fault events")
	soak := flag.Duration("soak", 0, "generate events for this duration (soak mode)")
	check := flag.Bool("check", false, "verify rings locally and compare against cold re-embeds")
	minSplice := flag.Int("min-splice", 0, "fail unless at least this many events resolved in the splice tier")
	keep := flag.Bool("keep", false, "keep the session after the run")
	flag.Parse()

	if *soak > 0 && *replay != "" {
		fmt.Fprintln(os.Stderr, "chaos: -soak and -replay are mutually exclusive")
		os.Exit(1)
	}
	if *rebalance != "" && (*sessionsN <= 1 || *soak == 0) {
		fmt.Fprintln(os.Stderr, "chaos: -rebalance needs a fleet soak run (-sessions > 1 and -soak)")
		os.Exit(1)
	}
	if *sessionsN > 1 {
		if *replay != "" || *record != "" {
			fmt.Fprintln(os.Stderr, "chaos: -sessions > 1 drives generated traces only (drop -replay/-record)")
			os.Exit(1)
		}
		if *server == "" {
			fmt.Fprintln(os.Stderr, "chaos: -sessions needs a -server")
			os.Exit(1)
		}
		err := runFleet(fleetConfig{
			server: *server, spec: *spec, baseName: *name,
			sessions: *sessionsN, events: *events, seed: *seed,
			edgeProb: *edgeProb, healRate: *healRate, spliceRate: *spliceRate,
			maxLive: *maxLive, interval: *interval, soak: *soak,
			check: *check, keep: *keep, minSplice: *minSplice,
			rebalance: *rebalance,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaos:", err)
			os.Exit(1)
		}
		return
	}

	var trace *Trace
	var gen *generator
	var err error
	if *replay != "" {
		trace, err = loadTrace(*replay)
	} else {
		gen, err = newGenerator(*spec, *seed, *edgeProb, *healRate, *spliceRate, *maxLive)
		if err == nil && *soak == 0 {
			trace = gen.pregenerate(*events)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		os.Exit(1)
	}
	if *record != "" && trace != nil {
		if err := writeTrace(*record, trace); err != nil {
			fmt.Fprintln(os.Stderr, "chaos:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "chaos: recorded %d events to %s\n", len(trace.Events), *record)
	}
	if *server == "" {
		if *record == "" || trace == nil {
			fmt.Fprintln(os.Stderr, "chaos: no -server and no -record; nothing to do")
			os.Exit(1)
		}
		return
	}

	r := &runner{
		server:    *server,
		interval:  *interval,
		keep:      *keep,
		check:     *check,
		soak:      *soak,
		minSplice: *minSplice,
	}
	if trace != nil {
		r.topology = trace.Topology
		r.events = trace.Events
		r.seed = trace.Seed
	} else {
		r.topology = *spec
		r.gen = gen
		r.seed = *seed
	}
	r.name = *name
	if r.name == "" {
		r.name = fmt.Sprintf("chaos-%d", r.seed)
	}
	if err := r.run(); err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		os.Exit(1)
	}
}

// fleetConfig parameterizes a multi-session run.
type fleetConfig struct {
	server, spec, baseName         string
	sessions, events               int
	seed                           int64
	edgeProb, healRate, spliceRate float64
	maxLive                        int
	interval, soak                 time.Duration
	check, keep                    bool
	minSplice                      int
	// rebalance, when set ("name=primaryURL[=replicaURL]"), adds that
	// shard group to the router at the soak midpoint, so the run
	// exercises the drain/hand-off/flip choreography under live load.
	rebalance string
}

// runFleet drives N concurrent sessions — each with its own derived
// seed and generator — and aggregates their samples into one report.
// This is the fleet acceptance mode: point -server at a ringfleet
// router and the sessions spread over the shards by consistent hash of
// their names, so the stream keeps flowing through shard failovers
// (the client retries through the promotion window).
func runFleet(cfg fleetConfig) error {
	base := cfg.baseName
	if base == "" {
		base = fmt.Sprintf("chaos-%d", cfg.seed)
	}
	// One shared registry: every client mirrors its retry counters into
	// it, so the aggregated report reads one metrics snapshot instead of
	// scraping per-client struct fields.
	metrics := obs.NewRegistry()
	runners := make([]*runner, cfg.sessions)
	for i := range runners {
		seed := cfg.seed + int64(i)
		gen, err := newGenerator(cfg.spec, seed, cfg.edgeProb, cfg.healRate, cfg.spliceRate, cfg.maxLive)
		if err != nil {
			return err
		}
		r := &runner{
			server:   cfg.server,
			topology: cfg.spec,
			name:     fmt.Sprintf("%s-%03d", base, i),
			seed:     seed,
			interval: cfg.interval,
			soak:     cfg.soak,
			keep:     cfg.keep,
			check:    cfg.check,
			quiet:    true,
			// Per-session clients so drain-induced retries (rebalance
			// choreography) are countable apart from failover retries.
			client: &session.Client{Base: cfg.server, Metrics: metrics},
		}
		if cfg.rebalance != "" {
			// The retry budget must outlast the drain window of the
			// mid-soak shard add: the drain covers the whole moved
			// keyspace while sessions hand off one at a time, so a
			// session drained first and moved last waits for the full
			// add (seconds, under race-built shards).  This budget
			// sums to ~8s of backoff.
			r.client.MaxAttempts = 20
			r.client.RetryBase = 25 * time.Millisecond
			r.client.RetryCap = 500 * time.Millisecond
		}
		if cfg.soak > 0 {
			r.gen = gen
		} else {
			r.events = gen.pregenerate(cfg.events).Events
		}
		runners[i] = r
	}
	fmt.Printf("fleet run: %d sessions against %s (%s, seeds %d..%d)\n",
		cfg.sessions, cfg.server, cfg.spec, cfg.seed, cfg.seed+int64(cfg.sessions-1))
	start := time.Now()

	// Mid-soak membership change: add the shard group at the halfway
	// mark, while every session keeps streaming.
	rebalanced := make(chan error, 1)
	if cfg.rebalance != "" {
		go func() {
			time.Sleep(cfg.soak / 2)
			rebalanced <- addShardGroup(cfg.server, cfg.rebalance)
		}()
	}

	errs := make([]error, len(runners))
	var wg sync.WaitGroup
	for i, r := range runners {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = r.drive()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	agg := &runner{}
	failed := 0
	for i, r := range runners {
		agg.samples = append(agg.samples, r.samples...)
		if errs[i] != nil {
			failed++
			fmt.Fprintf(os.Stderr, "chaos: session %s: %v\n", r.name, errs[i])
		}
	}
	fmt.Printf("%d events across %d sessions in %s (%.0f events/s)\n",
		len(agg.samples), cfg.sessions, elapsed.Round(time.Millisecond),
		float64(len(agg.samples))/elapsed.Seconds())
	retries := metrics.Snapshot()
	fmt.Printf("client retries: %d failover/transient, %d drain-induced (rebalance choreography), %d torn-response\n",
		retries.Counters[obs.Key("session_client_retries_total", "kind", "transient")],
		retries.Counters[obs.Key("session_client_retries_total", "kind", "drain")],
		retries.Counters[obs.Key("session_client_retries_total", "kind", "torn")])
	spliced := agg.report()
	if failed > 0 {
		return fmt.Errorf("%d of %d sessions failed", failed, cfg.sessions)
	}
	if cfg.check {
		if err := reportFleetMetrics(cfg.server); err != nil {
			return err
		}
	}
	if cfg.rebalance != "" {
		if err := <-rebalanced; err != nil {
			return fmt.Errorf("mid-soak rebalance: %w", err)
		}
		fmt.Printf("mid-soak shard add succeeded: %s\n", cfg.rebalance)
	}
	if spliced < cfg.minSplice {
		return fmt.Errorf("splice tier resolved %d events, want ≥ %d (-min-splice)", spliced, cfg.minSplice)
	}
	return nil
}

// addShardGroup POSTs a "name=primaryURL[=replicaURL]" group spec to
// the router's live-membership endpoint.
func addShardGroup(server, spec string) error {
	parts := strings.SplitN(spec, "=", 3)
	if len(parts) < 2 || parts[0] == "" || parts[1] == "" {
		return fmt.Errorf("bad -rebalance spec %q (want name=primaryURL[=replicaURL])", spec)
	}
	group := map[string]string{"name": parts[0], "primary": parts[1]}
	if len(parts) == 3 {
		group["replica"] = parts[2]
	}
	body, err := json.Marshal(group)
	if err != nil {
		return err
	}
	resp, err := http.Post(server+"/v1/fleet/shards", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		return fmt.Errorf("POST /v1/fleet/shards: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	return nil
}

// generator produces a seeded random lifecycle stream, tracking the
// live injected faults so heal events always reference a real one.
type generator struct {
	net        topology.RingEmbedder
	spec       string
	seed       int64
	rng        *rand.Rand
	edgeProb   float64
	healRate   float64
	spliceRate float64
	rootLabel  string
	maxLive    int

	liveNodes []string
	liveEdges []session.EdgeJSON
	buf       []int
}

func newGenerator(spec string, seed int64, edgeProb, healRate, spliceRate float64, maxLive int) (*generator, error) {
	net, err := topology.FromSpec(spec)
	if err != nil {
		return nil, err
	}
	if maxLive <= 0 {
		// Keep the stream inside the regime where local repair applies:
		// the paper's f ≤ n tolerance for De Bruijn, a small constant
		// otherwise.
		maxLive = 4
		if db, ok := net.(*topology.DeBruijn); ok {
			maxLive = db.WordLen() - 1
		}
	}
	return &generator{
		net: net, spec: spec, seed: seed,
		rng:      rand.New(rand.NewSource(seed)),
		edgeProb: edgeProb, healRate: healRate, spliceRate: spliceRate,
		rootLabel: net.Label(0), // the FFC algorithm roots at node 0 while it survives
		maxLive:   maxLive,
	}, nil
}

// next produces the next lifecycle event.
func (g *generator) next() TraceEvent {
	live := len(g.liveNodes) + len(g.liveEdges)
	heal := live > 0 && (g.rng.Float64() < g.healRate || live >= g.maxLive)
	var ev TraceEvent
	if heal {
		ev.Heal = true
		i := g.rng.Intn(live)
		if i < len(g.liveNodes) {
			ev.NodeFaults = []string{g.liveNodes[i]}
			g.liveNodes = append(g.liveNodes[:i], g.liveNodes[i+1:]...)
		} else {
			i -= len(g.liveNodes)
			ev.EdgeFaults = []session.EdgeJSON{g.liveEdges[i]}
			g.liveEdges = append(g.liveEdges[:i], g.liveEdges[i+1:]...)
		}
		return ev
	}
	if g.spliceRate > 0 && g.rng.Float64() < g.spliceRate && !g.nodeLive(g.rootLabel) {
		// Fault the distinguished processor: the FFC tier always
		// declines root-necklace loss, so this event lands in the splice
		// tier (or, when that declines too, measures the re-embed cliff).
		ev.NodeFaults = []string{g.rootLabel}
		g.liveNodes = append(g.liveNodes, g.rootLabel)
		return ev
	}
	if g.rng.Float64() < g.edgeProb {
		u := g.rng.Intn(g.net.Nodes())
		g.buf = g.net.Successors(u, g.buf)
		w := g.buf[g.rng.Intn(len(g.buf))]
		e := session.EdgeJSON{From: g.net.Label(u), To: g.net.Label(w)}
		ev.EdgeFaults = []session.EdgeJSON{e}
		g.liveEdges = append(g.liveEdges, e)
	} else {
		label := g.net.Label(g.rng.Intn(g.net.Nodes()))
		ev.NodeFaults = []string{label}
		g.liveNodes = append(g.liveNodes, label)
	}
	return ev
}

// rollback undoes next's live-fault bookkeeping for an event the server
// rejected (the fault never landed / the heal never took), so later
// heal picks and the maxLive throttle keep matching server state.
func (g *generator) rollback(ev TraceEvent) {
	if ev.Heal {
		// The heal was rejected: its fault is still live server-side.
		g.liveNodes = append(g.liveNodes, ev.NodeFaults...)
		g.liveEdges = append(g.liveEdges, ev.EdgeFaults...)
		return
	}
	for _, label := range ev.NodeFaults {
		for i, v := range g.liveNodes {
			if v == label {
				g.liveNodes = append(g.liveNodes[:i], g.liveNodes[i+1:]...)
				break
			}
		}
	}
	for _, e := range ev.EdgeFaults {
		for i, v := range g.liveEdges {
			if v == e {
				g.liveEdges = append(g.liveEdges[:i], g.liveEdges[i+1:]...)
				break
			}
		}
	}
}

// nodeLive reports whether the labeled processor is currently faulted.
func (g *generator) nodeLive(label string) bool {
	for _, v := range g.liveNodes {
		if v == label {
			return true
		}
	}
	return false
}

// pregenerate materializes a fixed-length trace (the recordable form).
func (g *generator) pregenerate(events int) *Trace {
	tr := &Trace{Topology: g.spec, Seed: g.seed}
	for i := 0; i < events; i++ {
		tr.Events = append(tr.Events, g.next())
	}
	return tr
}

func loadTrace(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var tr Trace
	if err := json.Unmarshal(data, &tr); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	if tr.Topology == "" || len(tr.Events) == 0 {
		return nil, fmt.Errorf("%s: trace needs a topology and at least one event", path)
	}
	return &tr, nil
}

func writeTrace(path string, tr *Trace) error {
	data, err := json.MarshalIndent(tr, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// sample is one absorbed event's measurements.
type sample struct {
	heal       bool
	repair     string
	ringLen    int
	lowerBound int
	serverNs   int64
	clientNs   int64
	rejected   bool
}

// runner drives one session through a trace or a live generator.
type runner struct {
	server    string
	topology  string
	name      string
	seed      int64
	interval  time.Duration
	soak      time.Duration
	keep      bool
	check     bool
	minSplice int
	// quiet suppresses the per-event table (multi-session fleet runs
	// aggregate instead).
	quiet bool

	// client, when set, is used instead of a default one — fleet runs
	// inject per-session clients so retry counters survive the run.
	client *session.Client

	events []TraceEvent // fixed trace; nil in soak mode
	gen    *generator   // soak mode source

	net     topology.RingEmbedder // resolved lazily for -check
	samples []sample

	// spliceActive tracks ladder ownership for -check: true from a
	// "splice" resolution until the next re-embed re-adopts the ring
	// for the structural tier.
	spliceActive bool
}

func (r *runner) run() error {
	if err := r.drive(); err != nil {
		return err
	}
	spliced := r.report()
	if r.check {
		if err := reportFleetMetrics(r.server); err != nil {
			return err
		}
	}
	if spliced < r.minSplice {
		return fmt.Errorf("splice tier resolved %d events, want ≥ %d (-min-splice): the repair chain may have degenerated to re-embed-only",
			spliced, r.minSplice)
	}
	return nil
}

// drive runs the session through its trace or generator, collecting
// samples without reporting (the caller aggregates).
func (r *runner) drive() error {
	ctx := context.Background()
	c := r.client
	if c == nil {
		c = &session.Client{Base: r.server}
	}
	st, err := c.Create(ctx, session.CreateRequest{Name: r.name, Topology: r.topology})
	if err != nil {
		return err
	}
	if !r.quiet {
		fmt.Printf("session %s on %s: initial ring %d nodes\n", r.name, r.topology, st.RingLength)
	}
	if !r.keep {
		defer c.Delete(ctx, r.name)
	}
	if r.check {
		if r.net, err = topology.FromSpec(r.topology); err != nil {
			return err
		}
	}

	deadline := time.Time{}
	if r.soak > 0 {
		deadline = time.Now().Add(r.soak)
	}
	if !r.quiet {
		fmt.Printf("%5s  %-5s  %-8s  %9s  %9s  %12s  %12s\n",
			"event", "kind", "repair", "ring", "bound", "server", "round-trip")
	}
	for i := 0; ; i++ {
		var ev TraceEvent
		switch {
		case r.events != nil:
			if i >= len(r.events) {
				goto done
			}
			ev = r.events[i]
		default:
			if time.Now().After(deadline) {
				goto done
			}
			ev = r.gen.next()
		}
		if r.interval > 0 && i > 0 {
			time.Sleep(r.interval)
		}
		stop, err := r.step(ctx, c, i, ev)
		if err != nil {
			return err
		}
		if stop {
			break
		}
	}
done:
	return nil
}

// step sends one event and records its sample.  It returns stop=true
// when a rejected batch should end a fixed-trace run (soak runs carry
// on; the server kept its last good ring).
func (r *runner) step(ctx context.Context, c *session.Client, i int, ev TraceEvent) (bool, error) {
	kind, send := "fault", c.AddFaults
	if ev.Heal {
		kind, send = "heal", c.RemoveFaults
	}
	start := time.Now()
	res, err := send(ctx, r.name, ev.FaultsRequest)
	clientNs := time.Since(start).Nanoseconds()
	if err != nil {
		s := sample{heal: ev.Heal, repair: "rejected", rejected: true, clientNs: clientNs}
		if res != nil {
			s.ringLen = res.Event.RingLength
			s.serverNs = res.Event.ElapsedNs
			if !r.quiet {
				fmt.Printf("%5d  %-5s  rejected (ring stays %d): %v\n", i+1, kind, res.Event.RingLength, err)
			}
		} else if !r.quiet {
			fmt.Printf("%5d  %-5s  rejected: %v\n", i+1, kind, err)
		}
		r.samples = append(r.samples, s)
		// Rejected batches end a fixed-trace run (subsequent events were
		// generated assuming this one landed); soak runs roll the
		// generator's bookkeeping back and keep going.
		if r.soak > 0 && r.gen != nil {
			r.gen.rollback(ev)
		}
		return r.soak == 0, nil
	}
	s := sample{
		heal:       ev.Heal,
		repair:     res.Event.Repair,
		ringLen:    res.Event.RingLength,
		lowerBound: res.Event.LowerBound,
		serverNs:   res.Event.ElapsedNs,
		clientNs:   clientNs,
	}
	r.samples = append(r.samples, s)
	switch s.repair {
	case "splice":
		r.spliceActive = true
	case "reembed":
		r.spliceActive = false
	}
	if !r.quiet {
		fmt.Printf("%5d  %-5s  %-8s  %9d  %9d  %12s  %12s\n",
			i+1, kind, s.repair, s.ringLen, s.lowerBound,
			time.Duration(s.serverNs), time.Duration(s.clientNs))
	}
	if r.check {
		if err := r.verify(ctx, c, i); err != nil {
			return false, err
		}
	}
	return false, nil
}

// verify independently checks the server's ring: fetch it, verify it
// against the cumulative fault set, and compare its length to a cold
// re-embed of the same fault set (repair and recompute must not
// diverge; a cold embed that errors while the repaired ring verifies is
// fine — star absorption handles link faults the one-shot path
// rejects).
func (r *runner) verify(ctx context.Context, c *session.Client, i int) error {
	st, err := c.State(ctx, r.name)
	if err != nil {
		return err
	}
	ring := make([]int, len(st.Ring))
	for j, label := range st.Ring {
		if ring[j], err = r.net.Parse(label); err != nil {
			return fmt.Errorf("event %d: bad ring label %q: %w", i+1, label, err)
		}
	}
	pairs := make([][2]string, len(st.EdgeFaults))
	for j, e := range st.EdgeFaults {
		pairs[j] = [2]string{e.From, e.To}
	}
	faults, err := topology.ParseFaults(r.net, st.NodeFaults, pairs)
	if err != nil {
		return fmt.Errorf("event %d: bad fault labels: %w", i+1, err)
	}
	if !topology.VerifyRing(r.net, ring, faults) {
		return fmt.Errorf("event %d: VERIFY ERROR: server ring fails VerifyRing (%d nodes, %d faults)",
			i+1, len(ring), len(faults.Nodes)+len(faults.Edges))
	}
	// Length equivalence with a cold embed is an FFC-tier invariant;
	// once the splice tier owns the ring it legitimately departs from
	// the cold shape (splice rings keep necklace-mates the cold embed
	// drops and vice versa), so the gate there is the paper's dⁿ − nf
	// bound whenever the cold embed meets it.  The generic splice
	// patcher on other topologies is documented best-effort (a healed
	// node without a slot legitimately stays off-ring), so only De
	// Bruijn sessions are gated at all.
	if db, isDB := r.net.(*topology.DeBruijn); isDB {
		cold, _, coldErr := r.net.EmbedRing(faults)
		if coldErr == nil {
			bound := db.Nodes() - db.WordLen()*len(faults.Nodes)
			switch {
			case !r.spliceActive && len(cold) != len(ring):
				return fmt.Errorf("event %d: DIVERGENCE: repaired ring %d nodes, cold re-embed %d",
					i+1, len(ring), len(cold))
			case r.spliceActive && len(cold) >= bound && len(ring) < bound:
				return fmt.Errorf("event %d: DIVERGENCE: spliced ring %d below dⁿ−nf = %d the cold re-embed meets",
					i+1, len(ring), bound)
			}
		}
	}
	return nil
}

// report prints the per-tier resolution summary (structural "local",
// bypass "splice", "reembed"), the ladder hit rates, per-tier latency
// and the degradation curve endpoints.  It returns the number of
// splice-tier resolutions, for the -min-splice gate.
func (r *runner) report() int {
	samples := r.samples
	byKind := map[string][]int64{}
	counts := map[string]int{}
	healCounts := map[string]int{}
	for _, s := range samples {
		key := s.repair
		if s.heal {
			healCounts[s.repair]++
			key = "heal-" + s.repair
		} else {
			counts[s.repair]++
		}
		byKind[key] = append(byKind[key], s.serverNs)
	}
	fmt.Println()
	fmt.Printf("events: %d  fault[local: %d  splice: %d  reembed: %d  noop: %d  rejected: %d]  heal[local: %d  splice: %d  reembed: %d  noop: %d]\n",
		len(samples), counts["local"], counts["splice"], counts["reembed"], counts["noop"],
		counts["rejected"]+healCounts["rejected"],
		healCounts["local"], healCounts["splice"], healCounts["reembed"], healCounts["noop"])
	if changing := counts["local"] + counts["splice"] + counts["reembed"]; changing > 0 {
		fmt.Printf("patch hit rate:   %.1f%%\n", 100*float64(counts["local"]+counts["splice"])/float64(changing))
	}
	if healing := healCounts["local"] + healCounts["splice"] + healCounts["reembed"]; healing > 0 {
		fmt.Printf("unpatch hit rate: %.1f%%\n", 100*float64(healCounts["local"]+healCounts["splice"])/float64(healing))
	}
	spliced := counts["splice"] + healCounts["splice"]
	if pastFFC := spliced + counts["reembed"] + healCounts["reembed"]; pastFFC > 0 {
		fmt.Printf("splice hit rate:  %.1f%% (%d of %d events past the structural tier)\n",
			100*float64(spliced)/float64(pastFFC), spliced, pastFFC)
	}
	// Per-tier latency through the same log-bucketed histograms the
	// server exposes at /metrics (quantile error bounded by the bucket
	// width), so this table and a fleet-wide scrape read alike.
	header := false
	for _, kind := range []string{"local", "splice", "reembed", "heal-local", "heal-splice", "heal-reembed"} {
		lat := byKind[kind]
		if len(lat) == 0 {
			continue
		}
		h := &obs.Histogram{}
		for _, v := range lat {
			h.Observe(v)
		}
		s := h.Snapshot()
		if !header {
			fmt.Printf("%-12s %8s  %12s  %12s  %12s  %12s\n",
				"tier", "count", "mean", "p50", "p99", "p999")
			header = true
		}
		fmt.Printf("%-12s %8d  %12s  %12s  %12s  %12s\n", kind, s.Count,
			time.Duration(s.Mean()),
			time.Duration(s.Quantile(0.50)),
			time.Duration(s.Quantile(0.99)),
			time.Duration(s.Quantile(0.999)))
	}
	// Degradation: how much ring the stream cost versus the guarantee.
	var last *sample
	for i := range samples {
		if !samples[i].rejected && samples[i].ringLen > 0 {
			last = &samples[i]
		}
	}
	if last != nil {
		fmt.Printf("final ring: %d nodes (guaranteed ≥ %d)\n", last.ringLen, last.lowerBound)
	}
	return spliced
}
