// Command ringlint runs the repo's invariant-enforcing static-analysis
// suite (package internal/lint): determinism of kernels and output
// paths, transitively allocation-free hot paths, atomics discipline,
// and journal-error hygiene.
//
// Usage:
//
//	ringlint [./...]     lint the module containing the working
//	                     directory; print file:line diagnostics and
//	                     exit 1 if there are findings
//	ringlint -list       print the analyzer catalogue, the package
//	                     classification and annotation counts, then
//	                     exit 0 (the CI self-check mode)
//
// Package patterns other than the whole module are not supported: the
// analyzers are cross-package (noalloc walks call graphs, atomics
// correlates accesses module-wide), so ringlint always loads ./...
// relative to the module root.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"debruijnring/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "print analyzers, classified packages and annotation counts")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: ringlint [-list] [./...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ringlint:", err)
		os.Exit(2)
	}
	cfg := lint.RepoConfig()
	res, err := lint.Run(root, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ringlint:", err)
		os.Exit(2)
	}

	if *list {
		printList(cfg, res)
		return
	}

	for _, f := range res.Findings {
		rel := f
		if r, err := filepath.Rel(root, f.Pos.Filename); err == nil {
			rel.Pos.Filename = r
		}
		fmt.Println(rel.String())
	}
	if n := len(res.Findings); n > 0 {
		fmt.Fprintf(os.Stderr, "ringlint: %d finding(s)\n", n)
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

func printList(cfg lint.Config, res *lint.Result) {
	fmt.Println("ringlint analyzers:")
	fmt.Println("  determinism  kernel wall-clock/rand bans + module-wide map-order discipline")
	fmt.Println("  noalloc      transitive allocation-freedom of //ringlint:noalloc roots")
	fmt.Println("  atomics      no mixed atomic/plain access; no atomic.* value copies")
	fmt.Println("  journal      Write/Append/Sync errors checked in session and fleet")
	fmt.Println()
	fmt.Println("kernel packages (time/rand/maporder):")
	for _, p := range cfg.KernelPackages {
		fmt.Println("  " + p)
	}
	for _, f := range cfg.KernelFiles {
		fmt.Println("  " + f + " (file)")
	}
	fmt.Println("journal packages (Write/Append/Sync hygiene):")
	for _, p := range cfg.JournalPackages {
		fmt.Println("  " + p)
	}
	fmt.Println()
	fmt.Printf("packages loaded: %d\n", len(res.Packages))
	fmt.Printf("noalloc roots: %d\n", len(res.NoallocFuncs))
	for _, fn := range res.NoallocFuncs {
		fmt.Println("  " + fn)
	}
	counts := res.Annotations.AllowCount
	rules := make([]string, 0, len(counts))
	total := 0
	for r, n := range counts {
		rules = append(rules, r)
		total += n
	}
	sort.Strings(rules)
	fmt.Printf("allow annotations: %d\n", total)
	for _, r := range rules {
		fmt.Printf("  %-8s %d\n", r, counts[r])
	}
}
