// Command ringfleet fronts a fleet of ringsrv shards with a
// consistent-hash router: session names map deterministically to shard
// groups, all /v1/sessions traffic (long-poll and SSE watch included)
// is proxied to the owning shard, stateless embedding endpoints are
// spread round-robin, and a shard that stops answering health checks
// has its replica promoted — the existing hash-verified journal replay
// brings every session back with an identical ring.
//
// Usage:
//
//	ringfleet -addr :8000 \
//	    -shard http://10.0.0.1:8080=http://10.0.0.2:8080 \
//	    -shard http://10.0.0.3:8080=http://10.0.0.4:8080 \
//	    -shard http://10.0.0.5:8080=http://10.0.0.6:8080 \
//	    -spare http://10.0.0.7:8080
//
// Each -shard is primary[=replica]; the primary should run ringsrv
// with -journal and -replicate-to pointing at the replica, the replica
// with -journal and -standby.  Omitting =replica leaves the group
// unreplicated (a dead primary then just stays down).
//
// Each -spare (repeatable) is a standby ringsrv (-journal -standby)
// the router draws from after a promotion: the promoted shard is
// re-targeted at the spare and streams its journals over, returning
// the group to full strength — so the fleet survives a second failure,
// not just the first.
//
// The router itself serves:
//
//	GET  /healthz      router liveness
//	GET  /v1/fleet     per-group status: active URL, promotion, requests,
//	                   replica_state/replica_lag from each shard
//	GET  /metrics      fleet-wide Prometheus text: every shard's registry
//	                   merged (histograms bucket-exact) with the router's
//	                   own per-group counters
//	GET  /v1/metrics   the same merged view as a JSON snapshot
//	POST /v1/fleet/shards  add a shard group at runtime: the moved
//	                   keyspace is drained, journals are handed off to
//	                   the new owner and hash-verified, then routing
//	                   flips — no restart, no stranded journals
//
// Two ringfleet processes can front the same fleet for router HA: give
// both the same -shard/-spare set and put them behind a VIP or
// round-robin DNS.  They need no coordination channel — each converges
// on shard failures through its own health checks, and the shards'
// epoch gates (wall-clock-ordered, per-shard monotonic) make the
// routers' control operations last-writer-wins instead of dueling:
// promotion is idempotent, and a stale router's re-target bounces with
// the winning epoch and target, which it adopts.  Runtime shard adds
// (POST /v1/fleet/shards) should be posted to every router — each
// performs its own drain/hand-off/verify, and the hand-off stream is
// idempotent (a full journal re-stream replaces the copy), so the
// second router's pass is a cheap no-op re-verification.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"debruijnring/fleet"
)

// shardFlags collects repeated -shard primary[=replica] arguments.
type shardFlags []fleet.ShardGroup

func (s *shardFlags) String() string { return fmt.Sprint(*s) }

func (s *shardFlags) Set(v string) error {
	primary, replica, _ := strings.Cut(v, "=")
	if primary == "" {
		return errors.New("shard needs a primary URL")
	}
	*s = append(*s, fleet.ShardGroup{Primary: primary, Replica: replica})
	return nil
}

// stringFlags collects repeated string arguments (-spare).
type stringFlags []string

func (s *stringFlags) String() string { return fmt.Sprint(*s) }

func (s *stringFlags) Set(v string) error {
	if v == "" {
		return errors.New("empty URL")
	}
	*s = append(*s, v)
	return nil
}

func main() {
	addr := flag.String("addr", ":8000", "listen address")
	vnodes := flag.Int("vnodes", fleet.DefaultVnodes, "virtual nodes per shard on the hash ring")
	checkEvery := flag.Duration("check-interval", 2*time.Second, "shard health-check cadence")
	failAfter := flag.Int("fail-after", 3, "consecutive failed checks before promoting the replica")
	var shards shardFlags
	flag.Var(&shards, "shard", "shard group as primary[=replica] URL pair (repeatable)")
	var spares stringFlags
	flag.Var(&spares, "spare", "standby shard URL for post-promotion re-replication (repeatable)")
	enablePprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (off by default)")
	flag.Parse()

	if len(shards) == 0 {
		fmt.Fprintln(os.Stderr, "ringfleet: at least one -shard is required")
		os.Exit(2)
	}
	router, err := fleet.NewRouter(shards, fleet.RouterOptions{
		Vnodes:        *vnodes,
		CheckInterval: *checkEvery,
		FailAfter:     *failAfter,
		Spares:        spares,
		Logf:          log.Printf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ringfleet:", err)
		os.Exit(1)
	}
	defer router.Close()

	// The router proxies unknown paths to shards round-robin, so pprof
	// (opt-in) is mounted in front of it rather than inside ServeHTTP.
	var handler http.Handler = router
	if *enablePprof {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", router)
		handler = mux
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("ringfleet: routing %d shard group(s) on %s", len(shards), *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "ringfleet:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		log.Print("ringfleet: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "ringfleet: shutdown:", err)
			os.Exit(1)
		}
	}
}
