// Command ringfleet fronts a fleet of ringsrv shards with a
// consistent-hash router: session names map deterministically to shard
// groups, all /v1/sessions traffic (long-poll and SSE watch included)
// is proxied to the owning shard, stateless embedding endpoints are
// spread round-robin, and a shard that stops answering health checks
// has its replica promoted — the existing hash-verified journal replay
// brings every session back with an identical ring.
//
// Usage:
//
//	ringfleet -addr :8000 \
//	    -shard http://10.0.0.1:8080=http://10.0.0.2:8080 \
//	    -shard http://10.0.0.3:8080=http://10.0.0.4:8080 \
//	    -shard http://10.0.0.5:8080=http://10.0.0.6:8080
//
// Each -shard is primary[=replica]; the primary should run ringsrv
// with -journal and -replicate-to pointing at the replica, the replica
// with -journal and -standby.  Omitting =replica leaves the group
// unreplicated (a dead primary then just stays down).
//
// The router itself serves:
//
//	GET /healthz   router liveness
//	GET /v1/fleet  per-group status: active URL, promotion, request counts
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"debruijnring/fleet"
)

// shardFlags collects repeated -shard primary[=replica] arguments.
type shardFlags []fleet.ShardGroup

func (s *shardFlags) String() string { return fmt.Sprint(*s) }

func (s *shardFlags) Set(v string) error {
	primary, replica, _ := strings.Cut(v, "=")
	if primary == "" {
		return errors.New("shard needs a primary URL")
	}
	*s = append(*s, fleet.ShardGroup{Primary: primary, Replica: replica})
	return nil
}

func main() {
	addr := flag.String("addr", ":8000", "listen address")
	vnodes := flag.Int("vnodes", fleet.DefaultVnodes, "virtual nodes per shard on the hash ring")
	checkEvery := flag.Duration("check-interval", 2*time.Second, "shard health-check cadence")
	failAfter := flag.Int("fail-after", 3, "consecutive failed checks before promoting the replica")
	var shards shardFlags
	flag.Var(&shards, "shard", "shard group as primary[=replica] URL pair (repeatable)")
	flag.Parse()

	if len(shards) == 0 {
		fmt.Fprintln(os.Stderr, "ringfleet: at least one -shard is required")
		os.Exit(2)
	}
	router, err := fleet.NewRouter(shards, fleet.RouterOptions{
		Vnodes:        *vnodes,
		CheckInterval: *checkEvery,
		FailAfter:     *failAfter,
		Logf:          log.Printf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ringfleet:", err)
		os.Exit(1)
	}
	defer router.Close()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           router,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("ringfleet: routing %d shard group(s) on %s", len(shards), *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "ringfleet:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		log.Print("ringfleet: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "ringfleet: shutdown:", err)
			os.Exit(1)
		}
	}
}
