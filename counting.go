package debruijnring

import (
	"math/big"

	"debruijnring/internal/necklace"
)

// NecklaceCount returns the number of necklaces (rotation classes of
// processor labels) in B(d,n) — e.g. 352 for B(2,12) (§4.3).
func NecklaceCount(d, n int) *big.Int { return necklace.CountAll(d, n) }

// NecklaceCountByLength returns the number of necklaces of length t in
// B(d,n); nonzero only when t divides n.
func NecklaceCountByLength(d, n, t int) *big.Int { return necklace.CountAllByLength(d, n, t) }

// NecklaceCountByWeight returns the number of necklaces of B(d,n) whose
// nodes have digit sum k.
func NecklaceCountByWeight(d, n, k int) *big.Int { return necklace.CountWeightTotal(d, n, k) }

// NecklaceCountByWeightLength restricts NecklaceCountByWeight to necklaces
// of length t.
func NecklaceCountByWeightLength(d, n, k, t int) *big.Int {
	return necklace.CountWeightByLength(d, n, k, t)
}

// NecklaceCountByType returns the number of necklaces whose nodes contain
// exactly typ[α] occurrences of each digit α; typ must have d entries
// summing to n.
func NecklaceCountByType(d, n int, typ []int) *big.Int {
	return necklace.CountTypeTotal(d, n, typ)
}

// Necklace returns the rotation class of a processor: its canonical
// representative (minimal rotation) and its length.
func (g *Graph) Necklace(node int) (rep, length int) {
	return g.g.NecklaceRep(node), g.g.Period(node)
}

// NecklaceMembers lists the processors on node's necklace in rotation
// order, starting from the canonical representative.
func (g *Graph) NecklaceMembers(node int) []int {
	return g.g.NecklaceNodes(node, nil)
}
