package session

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// Client talks to the /v1/sessions API of a ringsrv instance — the
// programmatic counterpart of the HTTP handler, used by the chaos CLI
// and integration tests.
type Client struct {
	// Base is the server root, e.g. "http://localhost:8080".
	Base string
	// HTTP is the underlying client; nil uses http.DefaultClient.
	HTTP *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) do(ctx context.Context, method, path string, body, dst any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var e struct {
			Error string `json:"error"`
		}
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("%s %s: %s (HTTP %d)", method, path, e.Error, resp.StatusCode)
		}
		// Rejected fault batches return 422 with a full FaultsResponse;
		// decode it so callers see the journaled rejection event.
		if dst != nil {
			json.Unmarshal(data, dst)
		}
		return fmt.Errorf("%s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if dst == nil || resp.StatusCode == http.StatusNoContent {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(dst)
}

// Create starts a session on the server.
func (c *Client) Create(ctx context.Context, req CreateRequest) (*StateJSON, error) {
	var st StateJSON
	if err := c.do(ctx, http.MethodPost, "/v1/sessions", req, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// State fetches a session's current state (ring included).
func (c *Client) State(ctx context.Context, name string) (*StateJSON, error) {
	var st StateJSON
	if err := c.do(ctx, http.MethodGet, "/v1/sessions/"+url.PathEscape(name), nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// List fetches the session summaries.
func (c *Client) List(ctx context.Context) ([]StateJSON, error) {
	var out []StateJSON
	if err := c.do(ctx, http.MethodGet, "/v1/sessions", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// AddFaults streams one fault batch into the session.  The returned
// event's Repair field names the repair-ladder tier that served the
// batch ("local", "splice", "reembed", "noop").  A rejected batch (the
// server kept its last good ring) returns the journaled rejection
// event alongside the error.
func (c *Client) AddFaults(ctx context.Context, name string, req FaultsRequest) (*FaultsResponse, error) {
	return c.applyFaults(ctx, http.MethodPost, name, req)
}

// RemoveFaults streams one heal batch into the session — the DELETE
// counterpart of AddFaults, re-admitting repaired components.  Rejected
// batches behave as in AddFaults.
func (c *Client) RemoveFaults(ctx context.Context, name string, req FaultsRequest) (*FaultsResponse, error) {
	return c.applyFaults(ctx, http.MethodDelete, name, req)
}

func (c *Client) applyFaults(ctx context.Context, method, name string, req FaultsRequest) (*FaultsResponse, error) {
	var out FaultsResponse
	err := c.do(ctx, method, "/v1/sessions/"+url.PathEscape(name)+"/faults", req, &out)
	if err != nil {
		if out.Event.Kind != "" {
			return &out, err
		}
		return nil, err
	}
	return &out, nil
}

// Watch long-polls for events after the given sequence number.
func (c *Client) Watch(ctx context.Context, name string, after uint64, wait time.Duration) (*WatchResponse, error) {
	path := "/v1/sessions/" + url.PathEscape(name) + "/watch?after=" +
		strconv.FormatUint(after, 10) + "&wait=" + url.QueryEscape(wait.String())
	var out WatchResponse
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Delete removes the session (journal included).
func (c *Client) Delete(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, "/v1/sessions/"+url.PathEscape(name), nil, nil)
}
