package session

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync/atomic"
	"time"

	"debruijnring/obs"
)

// ErrDraining marks a 503 carrying the fleet's draining marker: the
// session is mid-handoff in a rebalance, and the retry that follows is
// expected choreography, not a failure.  Callers (the chaos driver)
// count these separately via the client's DrainRetries counter.
var ErrDraining = errors.New("session: draining (fleet rebalance in progress)")

// ErrTorn marks a response whose body was cut off mid-decode (e.g. the
// old owner dropping connections as a drain flips routing).  Idempotent
// GETs wrap their decode error in it and retry; the client counts these
// separately via TornRetries.
var ErrTorn = errors.New("session: torn response")

// Client talks to the /v1/sessions API of a ringsrv instance or a
// ringfleet router — the programmatic counterpart of the HTTP handler,
// used by the chaos CLI and integration tests.
//
// Requests that fail on the transport (connection refused, reset) or
// with a gateway status (502/503/504 — what the fleet router answers
// while a shard is down or mid-promotion) are retried with jittered
// exponential backoff, so a client riding through a shard restart or a
// replica promotion sees latency, not errors.  Fault and heal batches
// are safe to retry: re-applying a batch the server already absorbed is
// a journaled noop.  Application-level errors (4xx, 422 rejections) are
// never retried.
type Client struct {
	// Base is the server root, e.g. "http://localhost:8080".
	Base string
	// HTTP is the underlying client; nil uses http.DefaultClient.
	HTTP *http.Client
	// MaxAttempts caps the total tries per request, retries included
	// (default 5; 1 disables retrying).
	MaxAttempts int
	// RetryBase is the first backoff delay, doubled per retry with
	// ±50% jitter (default 50ms).
	RetryBase time.Duration
	// RetryCap bounds one backoff delay (default 1s).
	RetryCap time.Duration

	// Metrics, when set, mirrors the retry counters into the registry
	// as session_client_retries_total{kind="transient"|"drain"|"torn"},
	// so drivers and tests can read them from a metrics snapshot
	// instead of scraping the struct fields.
	Metrics *obs.Registry

	// Retries counts retried attempts (transport errors and gateway
	// statuses); DrainRetries counts the subset caused by a fleet
	// rebalance draining the session (ErrDraining), which is expected
	// choreography rather than a fault; TornRetries counts idempotent
	// GETs replayed after a response died mid-body (ErrTorn).  All are
	// cumulative over the client's lifetime.
	Retries      atomic.Int64
	DrainRetries atomic.Int64
	TornRetries  atomic.Int64
}

// countRetry classifies one retried attempt into the struct counters
// and (when wired) the metrics registry.
func (c *Client) countRetry(err error) {
	kind := "transient"
	switch {
	case errors.Is(err, ErrDraining):
		c.DrainRetries.Add(1)
		kind = "drain"
	case errors.Is(err, ErrTorn):
		c.TornRetries.Add(1)
		kind = "torn"
	default:
		c.Retries.Add(1)
	}
	if c.Metrics != nil {
		c.Metrics.Counter("session_client_retries_total", "kind", kind).Inc()
	}
}

// defaultHTTP backs clients that don't bring their own http.Client.
// DefaultTransport keeps only 2 idle connections per host — a fleet
// client running dozens of concurrent session streams against one
// router would churn connections on every request — so the default
// client carries a deep keep-alive pool instead.
var defaultHTTP = &http.Client{Transport: func() *http.Transport {
	t := http.DefaultTransport.(*http.Transport).Clone()
	t.MaxIdleConns = 256
	t.MaxIdleConnsPerHost = 128
	return t
}()}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return defaultHTTP
}

func (c *Client) retryPolicy() (attempts int, base, maxDelay time.Duration) {
	attempts, base, maxDelay = c.MaxAttempts, c.RetryBase, c.RetryCap
	if attempts <= 0 {
		attempts = 5
	}
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if maxDelay <= 0 {
		maxDelay = time.Second
	}
	return attempts, base, maxDelay
}

// retryStatus reports the gateway statuses worth retrying: the fleet
// router (and any fronting proxy) answers them while the owning shard
// is unreachable or a replica promotion is in flight.
func retryStatus(code int) bool {
	return code == http.StatusBadGateway ||
		code == http.StatusServiceUnavailable ||
		code == http.StatusGatewayTimeout
}

// do issues one request with retries; body is re-marshaled once and
// replayed on every attempt.
func (c *Client) do(ctx context.Context, method, path string, body, dst any) error {
	var buf []byte
	if body != nil {
		var err error
		if buf, err = json.Marshal(body); err != nil {
			return err
		}
	}
	attempts, base, maxDelay := c.retryPolicy()
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if err := sleepBackoff(ctx, attempt, base, maxDelay); err != nil {
				return lastErr
			}
		}
		retryable, err := c.doOnce(ctx, method, path, buf, dst)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil || !retryable {
			return err
		}
		c.countRetry(err)
		lastErr = err
	}
	return lastErr
}

// sleepBackoff waits out one jittered exponential backoff step or the
// context, whichever ends first.
func sleepBackoff(ctx context.Context, attempt int, base, maxDelay time.Duration) error {
	d := base << (attempt - 1)
	if d > maxDelay || d <= 0 {
		d = maxDelay
	}
	// ±50% jitter decorrelates clients retrying into a recovering shard.
	d = d/2 + time.Duration(rand.Int63n(int64(d)))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// doOnce issues a single attempt.  retryable classifies the failure:
// transport errors and gateway statuses are worth retrying, anything
// the server actually decided (4xx/422) is not.
func (c *Client) doOnce(ctx context.Context, method, path string, body []byte, dst any) (retryable bool, err error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return false, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		// Transport-level failure: nothing reached the server, or the
		// connection died — retry unless the context was cancelled.
		return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded), err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		// A fleet rebalance drains moved sessions with 503 plus this
		// marker; surface the typed error so callers can tell drain
		// choreography from real failures.
		draining := resp.Header.Get("X-Fleet-Draining") != ""
		var e struct {
			Error string `json:"error"`
		}
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			err := fmt.Errorf("%s %s: %s (HTTP %d)", method, path, e.Error, resp.StatusCode)
			if draining {
				err = fmt.Errorf("%w: %v", ErrDraining, err)
			}
			return retryStatus(resp.StatusCode), err
		}
		// Rejected fault batches return 422 with a full FaultsResponse;
		// decode it so callers see the journaled rejection event.
		if dst != nil {
			json.Unmarshal(data, dst)
		}
		err := fmt.Errorf("%s %s: HTTP %d", method, path, resp.StatusCode)
		if draining {
			err = fmt.Errorf("%w: %v", ErrDraining, err)
		}
		return retryStatus(resp.StatusCode), err
	}
	if dst == nil || resp.StatusCode == http.StatusNoContent {
		return false, nil
	}
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		// A connection reset mid-body surfaces here rather than in Do.
		// GETs are idempotent, so a torn response is retried (wrapped in
		// ErrTorn so the retry is counted as such); mutations are not,
		// since the server may have applied them.
		if method == http.MethodGet {
			return true, fmt.Errorf("%w: %v", ErrTorn, err)
		}
		return false, err
	}
	return false, nil
}

// Create starts a session on the server.
func (c *Client) Create(ctx context.Context, req CreateRequest) (*StateJSON, error) {
	var st StateJSON
	if err := c.do(ctx, http.MethodPost, "/v1/sessions", req, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// State fetches a session's current state (ring included).
func (c *Client) State(ctx context.Context, name string) (*StateJSON, error) {
	var st StateJSON
	if err := c.do(ctx, http.MethodGet, "/v1/sessions/"+url.PathEscape(name), nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// List fetches the session summaries.
func (c *Client) List(ctx context.Context) ([]StateJSON, error) {
	var out []StateJSON
	if err := c.do(ctx, http.MethodGet, "/v1/sessions", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// AddFaults streams one fault batch into the session.  The returned
// event's Repair field names the repair-ladder tier that served the
// batch ("local", "splice", "reembed", "noop").  A rejected batch (the
// server kept its last good ring) returns the journaled rejection
// event alongside the error.
func (c *Client) AddFaults(ctx context.Context, name string, req FaultsRequest) (*FaultsResponse, error) {
	return c.applyFaults(ctx, http.MethodPost, name, req)
}

// RemoveFaults streams one heal batch into the session — the DELETE
// counterpart of AddFaults, re-admitting repaired components.  Rejected
// batches behave as in AddFaults.
func (c *Client) RemoveFaults(ctx context.Context, name string, req FaultsRequest) (*FaultsResponse, error) {
	return c.applyFaults(ctx, http.MethodDelete, name, req)
}

func (c *Client) applyFaults(ctx context.Context, method, name string, req FaultsRequest) (*FaultsResponse, error) {
	var out FaultsResponse
	err := c.do(ctx, method, "/v1/sessions/"+url.PathEscape(name)+"/faults", req, &out)
	if err != nil {
		if out.Event.Kind != "" {
			return &out, err
		}
		return nil, err
	}
	return &out, nil
}

// Trace fetches the session's retained repair trace records (limit <= 0
// returns every retained record).
func (c *Client) Trace(ctx context.Context, name string, limit int) (*TraceResponse, error) {
	path := "/v1/sessions/" + url.PathEscape(name) + "/trace"
	if limit > 0 {
		path += "?limit=" + strconv.Itoa(limit)
	}
	var out TraceResponse
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Watch long-polls for events after the given sequence number.
func (c *Client) Watch(ctx context.Context, name string, after uint64, wait time.Duration) (*WatchResponse, error) {
	path := "/v1/sessions/" + url.PathEscape(name) + "/watch?after=" +
		strconv.FormatUint(after, 10) + "&wait=" + url.QueryEscape(wait.String())
	var out WatchResponse
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Delete removes the session (journal included).
func (c *Client) Delete(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, "/v1/sessions/"+url.PathEscape(name), nil, nil)
}
