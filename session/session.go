// Package session manages long-lived fault-evolving topologies: where
// the engine package answers one-shot "embed a ring around these
// faults" requests, a session holds a named topology with a live fault
// set — the paper's actual operating regime, in which processors and
// links fail (and are repaired) one after another while the ring keeps
// carrying traffic.
//
// The fault lifecycle is bidirectional.  AddFaults absorbs newly
// failed components and RemoveFaults re-admits repaired ones; both run
// the layered repair ladder of package internal/repair — structural
// FFC surgery first (cut faulted necklaces out along surviving
// shift-edge labels, reorder star windows around faulted ring links,
// re-expand healed necklaces back into the tree), then the generic
// splice tier (local bypass surgery on the live ring, for the fault
// sets the FFC machinery rejects) — falling back to a full re-embed
// only when every tier declines or the paper's f ≤ n fault bound is
// exceeded.  Every transition appends an event to the
// session's journal — fault or heal batch, repair kind, ring delta,
// ring hash — and periodic snapshots capture the full state, so a
// Manager pointed at the same directory after a crash resumes every
// session with an identical ring (replay is deterministic and verified
// hash-by-hash).  Watchers stream the same events over long-poll or
// SSE via the HTTP handler in this package.
package session

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"strconv"
	"sync"
	"time"

	"debruijnring/engine"
	"debruijnring/internal/repair"
	"debruijnring/topology"
)

// Event is one journaled (and watchable) session transition.  The same
// structure serves as the journal line format, the long-poll/SSE payload
// and the AddFaults result.
type Event struct {
	Seq  uint64    `json:"seq"`
	Time time.Time `json:"time"`
	// Kind is "created", "embed" (the initial embedding), "fault" (one
	// absorbed fault batch), "heal" (one re-admitted repair batch) or
	// "snapshot" (journal-only state capture).
	Kind string `json:"kind"`

	// created events:
	Name string `json:"name,omitempty"`
	Spec string `json:"spec,omitempty"`
	// RepairVer stamps the repair-decision semantics the journal was
	// recorded under (see repairSemVer).  Replay re-runs those
	// decisions, so a journal from a build with different semantics can
	// diverge; the version turns the resulting hash mismatch into an
	// actionable error.  0 on journals predating the stamp.
	RepairVer int `json:"repair_ver,omitempty"`

	// fault/heal events: the canonicalized batch added (or removed)
	// this event and how it was served — "local" (structural tier),
	// "splice" (the generic bypass tier, after the structural tier
	// declined), "reembed", "noop" or "rejected".
	AddNodes    []int    `json:"add_nodes,omitempty"`
	AddEdges    [][2]int `json:"add_edges,omitempty"`
	RemoveNodes []int    `json:"remove_nodes,omitempty"`
	RemoveEdges [][2]int `json:"remove_edges,omitempty"`
	Repair      string   `json:"repair,omitempty"`
	Error       string   `json:"error,omitempty"`
	// Tiers is the repair-tier descent that produced Repair: each rung
	// of the FFC → splice → re-embed ladder that ran, with its outcome,
	// touched-structure count and latency.  Carried on journal lines
	// and watch/SSE payloads; replay ignores it (ring hashes are the
	// determinism check).
	Tiers []TierTrace `json:"tiers,omitempty"`

	// Ring bookkeeping after the event: length, the paper's lower bound,
	// cumulative deduplicated fault count, and an FNV-64a hash of the
	// ring used to verify deterministic journal replay.
	RingLength int    `json:"ring_length,omitempty"`
	LowerBound int    `json:"lower_bound,omitempty"`
	FaultCount int    `json:"fault_count,omitempty"`
	RingHash   string `json:"ring_hash,omitempty"`
	ElapsedNs  int64  `json:"elapsed_ns,omitempty"`

	// Ring delta: nodes that left and (re-embeds only) rejoined the
	// ring.  Omitted when larger than deltaLimit, flagged by
	// DeltaTruncated.
	Removed        []int `json:"removed,omitempty"`
	Added          []int `json:"added,omitempty"`
	DeltaTruncated bool  `json:"delta_truncated,omitempty"`

	// snapshot events (journal-only): the full state to resume from.
	Ring       []int           `json:"ring,omitempty"`
	FaultNodes []int           `json:"fault_nodes,omitempty"`
	FaultEdges [][2]int        `json:"fault_edges,omitempty"`
	Patcher    json.RawMessage `json:"patcher,omitempty"`
	Stats      *Stats          `json:"stats,omitempty"`
}

// deltaLimit bounds the Removed/Added lists carried on events; larger
// deltas report lengths only.
const deltaLimit = 128

// repairSemVer identifies the current repair-decision semantics.  Bump
// it whenever the deterministic repair path changes shape (which ring a
// given fault history produces): 2 = the bidirectional lifecycle with
// star-reorder link absorption; 3 = the layered repair chain (splice
// tier between structural repair and re-embed, multi-hop bypass heal);
// journals without a stamp predate the versioning.
const repairSemVer = 3

// Stats counts a session's fault and heal events by outcome.
// LocalRepairs/SpliceRepairs/Reembeds cover fault batches;
// LocalHeals/SpliceHeals/HealReembeds cover heal batches; Noops and
// Rejected cover both directions.  The splice counters are the middle
// rung of the repair ladder: batches the structural tier declined but
// the generic splice tier absorbed without a re-embed.
type Stats struct {
	Events        int64 `json:"events"`
	LocalRepairs  int64 `json:"local_repairs"`
	Reembeds      int64 `json:"reembeds"`
	Noops         int64 `json:"noops"`
	Rejected      int64 `json:"rejected"`
	LocalHeals    int64 `json:"local_heals,omitempty"`
	HealReembeds  int64 `json:"heal_reembeds,omitempty"`
	SpliceRepairs int64 `json:"splice_repairs,omitempty"`
	SpliceHeals   int64 `json:"splice_heals,omitempty"`
}

// Session is one fault-evolving topology with its current ring.  All
// methods are safe for concurrent use.
type Session struct {
	name string
	spec string
	net  topology.RingEmbedder
	mgr  *Manager

	mu        sync.Mutex
	patcher   repair.Patcher
	faults    topology.FaultSet
	ring      []int
	rounds    int // broadcast rounds of the last full embed
	seq       uint64
	stats     Stats
	journal   JournalWriter // nil when persistence is off
	sinceSnap int
	closed    bool

	// events is a bounded buffer of recent events for watchers; notify
	// is closed and replaced on every publish.
	events []Event
	notify chan struct{}

	// traces is a bounded buffer of per-event repair traces for the
	// trace endpoint (live events only; replay does not refill it).
	traces []TraceRecord
}

// Name returns the session's unique name.
func (s *Session) Name() string { return s.name }

// Spec returns the topology spec the session was created with.
func (s *Session) Spec() string { return s.spec }

// Network returns the session's topology.
func (s *Session) Network() topology.RingEmbedder { return s.net }

// State is a point-in-time snapshot of a session.
type State struct {
	Name       string   `json:"name"`
	Spec       string   `json:"spec"`
	Seq        uint64   `json:"seq"`
	Ring       []int    `json:"ring,omitempty"`
	RingLength int      `json:"ring_length"`
	LowerBound int      `json:"lower_bound"`
	RingHash   string   `json:"ring_hash"`
	FaultNodes []int    `json:"fault_nodes,omitempty"`
	FaultEdges [][2]int `json:"fault_edges,omitempty"`
	Stats      Stats    `json:"stats"`
}

// StateSnapshot returns the session's current state.  includeRing
// controls whether the (possibly large) ring itself is copied.
func (s *Session) StateSnapshot(includeRing bool) State {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := State{
		Name:       s.name,
		Spec:       s.spec,
		Seq:        s.seq,
		RingLength: len(s.ring),
		LowerBound: s.lowerBoundLocked(),
		RingHash:   ringHash(s.ring),
		FaultNodes: append([]int(nil), s.faults.Nodes...),
		FaultEdges: encodeEdges(s.faults.Edges),
		Stats:      s.stats,
	}
	if includeRing {
		st.Ring = append([]int(nil), s.ring...)
	}
	return st
}

// IsClosed reports whether the session has been deleted or shut down;
// watchers use it to end their streams instead of spinning on the
// immediately-returning EventsSince.
func (s *Session) IsClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Ring returns a copy of the current ring.
func (s *Session) Ring() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int(nil), s.ring...)
}

// Faults returns the cumulative canonical fault set.
func (s *Session) Faults() topology.FaultSet {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.faults
}

// lowerBoundLocked is the guaranteed minimum ring length under the
// current fault load; see lowerBoundFor.
func (s *Session) lowerBoundLocked() int { return s.lowerBoundFor(s.faults) }

// withinToleranceLocked gates local repair on the paper's f ≤ n bound
// for De Bruijn sessions (beyond it the dⁿ − nf guarantee degrades and
// the full algorithm should re-balance the ring); other topologies
// always try the patch.
func (s *Session) withinToleranceLocked(combined topology.FaultSet) bool {
	db, ok := s.net.(*topology.DeBruijn)
	if !ok {
		return true
	}
	return len(combined.Nodes) <= db.WordLen()
}

// AddFaults absorbs one batch of newly failed components (the fault set
// can shrink again later via RemoveFaults).  It attempts a local repair
// of the current ring, falls back to a full re-embed, journals the
// transition and wakes watchers.  On error the session keeps its
// previous ring and fault set (the event is still journaled as rejected
// so replay stays faithful).
func (s *Session) AddFaults(add topology.FaultSet) (*Event, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("session %q: %w", s.name, ErrClosed)
	}
	if err := add.Validate(s.net); err != nil {
		return nil, err
	}
	ev, err := s.applyFaultsLocked(add, true)
	s.maybeSnapshotLocked(ev)
	return ev, err
}

// RemoveFaults re-admits one batch of repaired components, shrinking
// the session's fault set — the heal direction of the lifecycle.  It
// attempts a local un-patch of the current ring (re-expand the healed
// necklaces, drop the healed links from the avoidance set), falls back
// to a full re-embed around the reduced fault set, journals the
// transition as a "heal" event and wakes watchers.  Healing components
// that were never faulty is a no-op.  On error the session keeps its
// previous ring and fault set (the event is still journaled as rejected
// so replay stays faithful).
func (s *Session) RemoveFaults(remove topology.FaultSet) (*Event, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("session %q: %w", s.name, ErrClosed)
	}
	if err := remove.Validate(s.net); err != nil {
		return nil, err
	}
	ev, err := s.applyHealLocked(remove, true)
	s.maybeSnapshotLocked(ev)
	return ev, err
}

// maybeSnapshotLocked writes a journal snapshot when the event cadence
// is due.
func (s *Session) maybeSnapshotLocked(ev *Event) {
	if ev != nil && s.journal != nil && s.sinceSnap >= s.mgr.opts.SnapshotEvery {
		s.writeSnapshotLocked()
	}
}

// applyFaultsLocked runs the repair lifecycle for one validated fault
// batch.  With record=false (journal replay) nothing is written and the
// engine's counters stay untouched; the decision path is deterministic,
// so replay reproduces the live rings exactly.
func (s *Session) applyFaultsLocked(add topology.FaultSet, record bool) (*Event, error) {
	start := time.Now()
	add = add.Canonical()
	newOnly := add.Minus(s.faults)
	combined := s.faults.Union(add)

	ev := &Event{
		Kind:       "fault",
		AddNodes:   append([]int(nil), add.Nodes...),
		AddEdges:   encodeEdges(add.Edges),
		FaultCount: len(combined.Nodes) + len(combined.Edges),
	}

	var ring []int
	var embedErr error
	switch {
	case newOnly.IsEmpty():
		ev.Repair = "noop"
	default:
		if s.withinToleranceLocked(combined) {
			r, outcome := s.patcher.Patch(newOnly)
			ev.Tiers = tierTraces(s.patcher)
			if outcome == repair.Noop {
				ev.Repair = "noop"
			} else if (outcome == repair.Patched || outcome == repair.Reordered || outcome == repair.Spliced) &&
				topology.VerifyRing(s.net, r, combined) &&
				len(r) >= s.lowerBoundFor(combined) {
				ev.Repair = "local"
				if outcome == repair.Spliced {
					ev.Repair = "splice"
				}
				ring = r
			}
		}
		if ev.Repair == "" {
			embedStart := time.Now()
			r, info, err := s.patcher.Embed(combined)
			step := TierTrace{Tier: "reembed", Outcome: "ok", ElapsedNs: time.Since(embedStart).Nanoseconds()}
			if err != nil {
				embedErr = err
				step.Outcome = "error"
			} else {
				ev.Repair = "reembed"
				ring = r
				s.rounds = info.Rounds
			}
			ev.Tiers = append(ev.Tiers, step)
		}
	}

	if embedErr != nil {
		// Neither patch nor re-embed absorbed the batch: keep the old
		// state, journal the rejection (replay must take the same path).
		ev.Repair = "rejected"
		ev.Error = embedErr.Error()
		ev.RingLength = len(s.ring)
		ev.RingHash = ringHash(s.ring)
		s.finishEventLocked(ev, start, record, engine.RepairRejected)
		s.stats.Rejected++
		return ev, embedErr
	}

	if ring != nil {
		ev.Removed, ev.Added, ev.DeltaTruncated = ringDelta(s.ring, ring)
		s.ring = ring
	}
	s.faults = combined
	ev.RingLength = len(s.ring)
	ev.LowerBound = s.lowerBoundFor(combined)
	ev.RingHash = ringHash(s.ring)

	var kind engine.RepairKind
	switch ev.Repair {
	case "local":
		kind = engine.RepairLocal
		s.stats.LocalRepairs++
	case "splice":
		kind = engine.RepairSplice
		s.stats.SpliceRepairs++
	case "reembed":
		kind = engine.RepairReembed
		s.stats.Reembeds++
	default:
		kind = engine.RepairNoop
		s.stats.Noops++
	}
	s.finishEventLocked(ev, start, record, kind)
	return ev, nil
}

// applyHealLocked runs the repair lifecycle for one validated heal
// batch — the inverse of applyFaultsLocked.  With record=false (journal
// replay) nothing is written and the engine's counters stay untouched;
// the decision path is deterministic, so replay reproduces the live
// rings exactly.
func (s *Session) applyHealLocked(remove topology.FaultSet, record bool) (*Event, error) {
	start := time.Now()
	remove = remove.Canonical()
	reduced := s.faults.Minus(remove)
	healed := s.faults.Minus(reduced) // the part of remove actually faulty
	ev := &Event{
		Kind:        "heal",
		RemoveNodes: append([]int(nil), remove.Nodes...),
		RemoveEdges: encodeEdges(remove.Edges),
		FaultCount:  len(reduced.Nodes) + len(reduced.Edges),
	}

	var ring []int
	var embedErr error
	switch {
	case healed.IsEmpty():
		ev.Repair = "noop"
	default:
		if s.withinToleranceLocked(reduced) {
			r, outcome := s.patcher.Unpatch(healed)
			ev.Tiers = tierTraces(s.patcher)
			if outcome == repair.Noop {
				ev.Repair = "noop"
			} else if (outcome == repair.Readmitted || outcome == repair.Spliced) &&
				topology.VerifyRing(s.net, r, reduced) &&
				len(r) >= s.lowerBoundFor(reduced) {
				ev.Repair = "local"
				if outcome == repair.Spliced {
					ev.Repair = "splice"
				}
				ring = r
			}
		}
		if ev.Repair == "" {
			embedStart := time.Now()
			r, info, err := s.patcher.Embed(reduced)
			step := TierTrace{Tier: "reembed", Outcome: "ok", ElapsedNs: time.Since(embedStart).Nanoseconds()}
			if err != nil {
				embedErr = err
				step.Outcome = "error"
			} else {
				ev.Repair = "reembed"
				ring = r
				s.rounds = info.Rounds
			}
			ev.Tiers = append(ev.Tiers, step)
		}
	}

	if embedErr != nil {
		// Neither un-patch nor re-embed absorbed the heal: keep the old
		// state, journal the rejection (replay must take the same path).
		ev.Repair = "rejected"
		ev.Error = embedErr.Error()
		ev.RingLength = len(s.ring)
		ev.RingHash = ringHash(s.ring)
		s.finishEventLocked(ev, start, record, engine.RepairRejected)
		s.stats.Rejected++
		return ev, embedErr
	}

	if ring != nil {
		ev.Removed, ev.Added, ev.DeltaTruncated = ringDelta(s.ring, ring)
		s.ring = ring
	}
	s.faults = reduced
	ev.RingLength = len(s.ring)
	ev.LowerBound = s.lowerBoundFor(reduced)
	ev.RingHash = ringHash(s.ring)

	var kind engine.RepairKind
	switch ev.Repair {
	case "local":
		kind = engine.RepairHealLocal
		s.stats.LocalHeals++
	case "splice":
		kind = engine.RepairSpliceHeal
		s.stats.SpliceHeals++
	case "reembed":
		kind = engine.RepairHealReembed
		s.stats.HealReembeds++
	default:
		kind = engine.RepairNoop
		s.stats.Noops++
	}
	s.finishEventLocked(ev, start, record, kind)
	return ev, nil
}

// lowerBoundFor computes the De Bruijn dⁿ − nf bound for a prospective
// fault set (0 for other topologies or when vacuous; other topologies'
// bounds live on their own embed info).
func (s *Session) lowerBoundFor(f topology.FaultSet) int {
	db, ok := s.net.(*topology.DeBruijn)
	if !ok {
		return 0
	}
	b := db.Nodes() - db.WordLen()*len(f.Nodes)
	if b < 0 {
		return 0
	}
	return b
}

// finishEventLocked stamps, sequences, publishes and (when record is
// set) journals one event, retains its repair trace and feeds the
// engine's session counters and per-tier latency histograms.
func (s *Session) finishEventLocked(ev *Event, start time.Time, record bool, kind engine.RepairKind) {
	s.seq++
	ev.Seq = s.seq
	ev.Time = time.Now().UTC()
	ev.ElapsedNs = time.Since(start).Nanoseconds()
	s.stats.Events++
	s.sinceSnap++
	s.publishLocked(*ev)
	if record {
		s.recordTraceLocked(ev)
		s.appendJournal(*ev)
		if s.mgr != nil && s.mgr.eng != nil {
			s.mgr.eng.RecordRepair(kind, time.Duration(ev.ElapsedNs))
		}
	}
}

// appendJournal writes one event through the store's journal writer.
// Append errors do not fail the event — the in-memory state machine is
// authoritative for a live session and degrading to memory-only beats
// rejecting traffic — but the lost durability is counted in the
// engine's session_journal_errors_total so a degrading session is
// visible on /metrics before a restart loses its tail.
func (s *Session) appendJournal(ev Event) {
	if s.journal == nil {
		return
	}
	if err := s.journal.Append(ev); err != nil && s.mgr != nil && s.mgr.eng != nil {
		s.mgr.eng.RecordJournalError()
	}
}

// publishLocked appends the event to the watch buffer and wakes every
// waiting watcher.
func (s *Session) publishLocked(ev Event) {
	if limit := s.mgr.opts.EventBuffer; len(s.events) >= limit {
		s.events = append(s.events[:0], s.events[len(s.events)-limit+1:]...)
	}
	s.events = append(s.events, ev)
	close(s.notify)
	s.notify = make(chan struct{})
}

// EventsSince returns buffered events with Seq > after.  When none are
// available it blocks up to wait (0 = return immediately) for the next
// publish.  truncated reports that older events have been evicted from
// the buffer: the watcher should refetch the full session state.
func (s *Session) EventsSince(after uint64, wait time.Duration, cancel <-chan struct{}) (evs []Event, truncated bool) {
	deadline := time.Now().Add(wait)
	for {
		s.mu.Lock()
		if len(s.events) > 0 && s.events[0].Seq > after+1 {
			truncated = true
		}
		for _, ev := range s.events {
			if ev.Seq > after {
				evs = append(evs, ev)
			}
		}
		notify := s.notify
		closed := s.closed
		s.mu.Unlock()
		if len(evs) > 0 || closed || wait <= 0 {
			return evs, truncated
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, truncated
		}
		timer := time.NewTimer(remain)
		select {
		case <-notify:
			timer.Stop()
		case <-timer.C:
			return nil, truncated
		case <-cancel:
			timer.Stop()
			return nil, truncated
		}
	}
}

// writeSnapshotLocked appends a journal-only snapshot event capturing
// the full session state (ring, faults, patcher structure), resetting
// the replay horizon.
func (s *Session) writeSnapshotLocked() {
	if s.journal == nil {
		return
	}
	state, err := s.patcher.Snapshot()
	if err != nil {
		state = nil
	}
	stats := s.stats
	s.appendJournal(Event{
		Seq:        s.seq,
		Time:       time.Now().UTC(),
		Kind:       "snapshot",
		RingHash:   ringHash(s.ring),
		RingLength: len(s.ring),
		Ring:       s.ring,
		FaultNodes: s.faults.Nodes,
		FaultEdges: encodeEdges(s.faults.Edges),
		Patcher:    state,
		Stats:      &stats,
	})
	s.sinceSnap = 0
}

// closeLocked marks the session closed, optionally writing a final
// snapshot, and releases the journal handle.
func (s *Session) closeLocked(snapshot bool) {
	if s.closed {
		return
	}
	if snapshot && s.sinceSnap > 0 {
		s.writeSnapshotLocked()
	}
	if s.journal != nil {
		s.journal.Close()
		s.journal = nil
	}
	s.closed = true
	close(s.notify)
	s.notify = make(chan struct{})
}

// ringHash is an FNV-64a digest of the ring's node sequence, rendered in
// hex; journal replay verifies restored rings against it.
func ringHash(ring []int) string {
	h := fnv.New64a()
	var b [8]byte
	for _, v := range ring {
		binary.LittleEndian.PutUint64(b[:], uint64(v))
		h.Write(b[:]) //ringlint:allow journal hash.Hash writes never return an error
	}
	return strconv.FormatUint(h.Sum64(), 16)
}

// ringDelta diffs two rings as node sets, truncating large deltas.
func ringDelta(old, cur []int) (removed, added []int, truncated bool) {
	inOld := make(map[int]bool, len(old))
	for _, v := range old {
		inOld[v] = true
	}
	inNew := make(map[int]bool, len(cur))
	for _, v := range cur {
		inNew[v] = true
	}
	for _, v := range old {
		if !inNew[v] {
			removed = append(removed, v)
		}
	}
	for _, v := range cur {
		if !inOld[v] {
			added = append(added, v)
		}
	}
	if len(removed)+len(added) > deltaLimit {
		return nil, nil, true
	}
	return removed, added, false
}

func encodeEdges(edges []topology.Edge) [][2]int {
	if len(edges) == 0 {
		return nil
	}
	out := make([][2]int, len(edges))
	for i, e := range edges {
		out[i] = [2]int{e.From, e.To}
	}
	return out
}

func decodeEdges(pairs [][2]int) []topology.Edge {
	if len(pairs) == 0 {
		return nil
	}
	out := make([]topology.Edge, len(pairs))
	for i, p := range pairs {
		out[i] = topology.Edge{From: p[0], To: p[1]}
	}
	return out
}

// errSessionExists reports a Create against a name already in use.
var errSessionExists = errors.New("session: name already in use")

// ErrClosed is the sentinel wrapped by every mutation attempted after a
// session or its manager has been closed (shutdown or deletion): the
// journal writer is released at close, so post-Close traffic is refused
// instead of racing it.  Check with errors.Is(err, session.ErrClosed).
var ErrClosed = errors.New("session: closed")
