package session

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"debruijnring/topology"
)

// fuzzJournalBytes builds a genuine journal — creation, embeds, fault
// and heal events, a snapshot — and returns its raw JSONL bytes as the
// fuzz seed.
func fuzzJournalBytes(tb testing.TB) []byte {
	tb.Helper()
	dir := tb.TempDir()
	m := NewManager(nil, Options{Dir: dir, SnapshotEvery: 4})
	s, err := m.Create("fz", "debruijn(2,6)", topology.FaultSet{})
	if err != nil {
		tb.Fatal(err)
	}
	ring := s.Ring()
	if _, err := s.AddFaults(topology.NodeFaults(ring[7])); err != nil {
		tb.Fatal(err)
	}
	// Some ring links resist both absorption and mixed re-embedding
	// (e.g. the root's only exit); scan for one the session accepts.
	linked := false
	for j := 2; j < 20 && !linked; j++ {
		cur := s.Ring()
		e := topology.Edge{From: cur[j], To: cur[j+1]}
		if _, err := s.AddFaults(topology.EdgeFaults(e)); err == nil {
			linked = true
		}
	}
	if !linked {
		tb.Fatal("no absorbable ring link found for the seed journal")
	}
	if _, err := s.RemoveFaults(topology.NodeFaults(ring[7])); err != nil {
		tb.Fatal(err)
	}
	if _, err := s.AddFaults(topology.NodeFaults(ring[20])); err != nil {
		tb.Fatal(err)
	}
	m.Close()
	data, err := os.ReadFile(filepath.Join(dir, "fz.journal"))
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzJournalReplay mutates journal bytes and asserts Manager.Restore
// either reproduces a consistent session — the replayed ring passes
// VerifyRing against the replayed fault set, hash chain verified — or
// rejects the journal cleanly.  It must never panic and never accept a
// corrupted ring.
func FuzzJournalReplay(f *testing.F) {
	seed := fuzzJournalBytes(f)
	f.Add(seed)
	// A truncated journal (torn final write) must restore cleanly.
	if i := bytes.LastIndexByte(seed[:len(seed)-1], '\n'); i > 0 {
		f.Add(seed[:i+5])
	}
	// Flipped bytes in the middle of the event stream.
	flip := append([]byte(nil), seed...)
	flip[len(flip)/2] ^= 0x20
	f.Add(flip)
	f.Add([]byte("{\"seq\":1,\"kind\":\"created\",\"name\":\"fz\",\"spec\":\"debruijn(2,6)\"}\n"))
	f.Add([]byte("not json at all\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "fz.journal"), data, 0o644); err != nil {
			t.Skip()
		}
		m := NewManager(nil, Options{Dir: dir})
		restored, errs := m.Restore()
		defer m.Close()
		_ = errs // rejected journals are reported, never panicked on
		for _, s := range restored {
			ring := s.Ring()
			faults := s.Faults()
			if err := faults.Validate(s.Network()); err != nil {
				t.Fatalf("restored session carries invalid faults: %v", err)
			}
			if len(ring) > 0 && !topology.VerifyRing(s.Network(), ring, faults) {
				t.Fatalf("restored session carries a corrupt ring (%d nodes, faults %s)",
					len(ring), faults.Key())
			}
			// The restored state must be internally consistent enough to
			// keep serving: a snapshot of it round-trips.
			st := s.StateSnapshot(true)
			if st.RingLength != len(ring) || st.RingHash != ringHash(ring) {
				t.Fatalf("restored state snapshot disagrees with the session ring")
			}
		}
	})
}
