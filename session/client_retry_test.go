package session

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestClientRetriesGatewayErrors checks the failover-riding behavior: a
// request answered 503 (a router mid-promotion) is retried until the
// backend recovers, and the caller sees success, not the transient.
func TestClientRetriesGatewayErrors(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, `{"error":"shard mid-promotion"}`, http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`[]`))
	}))
	defer ts.Close()

	c := &Client{Base: ts.URL, RetryBase: time.Millisecond, RetryCap: 5 * time.Millisecond}
	list, err := c.List(context.Background())
	if err != nil {
		t.Fatalf("List through flapping server: %v", err)
	}
	if list == nil || calls.Load() != 3 {
		t.Errorf("list = %v after %d calls, want success on call 3", list, calls.Load())
	}
}

// TestClientDoesNotRetryClientErrors: a 4xx is the server's decision,
// not a transient — exactly one attempt.
func TestClientDoesNotRetryClientErrors(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"no such session"}`, http.StatusNotFound)
	}))
	defer ts.Close()

	c := &Client{Base: ts.URL, RetryBase: time.Millisecond}
	if _, err := c.State(context.Background(), "nope"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("State = %v, want 404 error", err)
	}
	if calls.Load() != 1 {
		t.Errorf("4xx retried: %d attempts", calls.Load())
	}
}

// TestClientRetryExhaustion: a persistently dead backend fails after
// exactly MaxAttempts tries with the last transport error.
func TestClientRetryExhaustion(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"down"}`, http.StatusBadGateway)
	}))
	defer ts.Close()

	c := &Client{Base: ts.URL, MaxAttempts: 3, RetryBase: time.Millisecond, RetryCap: 2 * time.Millisecond}
	if _, err := c.List(context.Background()); err == nil || !strings.Contains(err.Error(), "502") {
		t.Fatalf("List = %v, want 502 error after exhaustion", err)
	}
	if calls.Load() != 3 {
		t.Errorf("%d attempts, want exactly MaxAttempts = 3", calls.Load())
	}
}

// TestClientCountsDrainRetriesSeparately: a 503 carrying the fleet's
// draining marker is retried like any gateway error, but lands in the
// DrainRetries counter (as ErrDraining) rather than Retries — rebalance
// choreography is not a fault.
func TestClientCountsDrainRetriesSeparately(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("X-Fleet-Draining", "1")
			http.Error(w, `{"error":"session draining"}`, http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"name":"drained"}`))
	}))
	defer ts.Close()

	c := &Client{Base: ts.URL, RetryBase: time.Millisecond, RetryCap: 5 * time.Millisecond}
	st, err := c.State(context.Background(), "drained")
	if err != nil || st.Name != "drained" {
		t.Fatalf("State through draining window = %+v, %v", st, err)
	}
	if d, r := c.DrainRetries.Load(), c.Retries.Load(); d != 2 || r != 0 {
		t.Errorf("drain/plain retries = %d/%d, want 2/0", d, r)
	}
}

// TestClientRetriesTornGetResponse: a response body cut mid-decode (the
// old owner dropping connections as a rebalance flips routing) is
// retried for idempotent GETs and surfaced immediately for mutations.
func TestClientRetriesTornGetResponse(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if calls.Add(1) == 1 {
			w.Write([]byte(`{"name":"torn`)) // truncated JSON
			return
		}
		w.Write([]byte(`{"name":"torn"}`))
	}))
	defer ts.Close()

	c := &Client{Base: ts.URL, RetryBase: time.Millisecond, RetryCap: 5 * time.Millisecond}
	st, err := c.State(context.Background(), "torn")
	if err != nil || st.Name != "torn" || calls.Load() != 2 {
		t.Fatalf("State through torn response = %+v, %v after %d calls", st, err, calls.Load())
	}

	// The same tear on a mutation is not retried: the server may have
	// applied the batch, and the caller must decide.
	calls.Store(0)
	mc := &Client{Base: ts.URL, RetryBase: time.Millisecond}
	if _, err := mc.AddFaults(context.Background(), "torn", FaultsRequest{}); err == nil {
		t.Fatal("torn mutation response decoded cleanly")
	}
	if calls.Load() != 1 {
		t.Errorf("torn mutation retried: %d attempts", calls.Load())
	}
}

// TestClientRetryRespectsContext: cancellation ends the retry loop
// during backoff instead of sleeping it out.
func TestClientRetryRespectsContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"down"}`, http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	c := &Client{Base: ts.URL, MaxAttempts: 50, RetryBase: 20 * time.Millisecond, RetryCap: time.Hour}
	start := time.Now()
	_, err := c.List(ctx)
	if err == nil {
		t.Fatal("List succeeded against a dead backend")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("retry loop outlived its context by %s", elapsed)
	}
}
