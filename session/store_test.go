package session

import (
	"errors"
	"io/fs"
	"testing"

	"debruijnring/topology"
)

// TestDirStoreRoundtrip pins the Store contract DirStore implements:
// create/append/load fidelity, Names enumeration, fs.ErrNotExist on
// missing journals, and idempotent Remove.
func TestDirStoreRoundtrip(t *testing.T) {
	st := NewDirStore(t.TempDir())

	w, err := st.Create("alpha")
	if err != nil {
		t.Fatal(err)
	}
	events := []Event{
		{Seq: 0, Kind: "created", Spec: "debruijn(2,6)"},
		{Seq: 1, Kind: "embed", RingLength: 64},
		{Seq: 2, Kind: "fault", RingLength: 58},
	}
	for _, ev := range events {
		if err := w.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := st.Load("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("loaded %d events, wrote %d", len(got), len(events))
	}
	for i, ev := range got {
		if ev.Seq != events[i].Seq || ev.Kind != events[i].Kind || ev.RingLength != events[i].RingLength {
			t.Errorf("event %d = %+v, want %+v", i, ev, events[i])
		}
	}

	// Open appends to the existing journal.
	w2, err := st.Open("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append(Event{Seq: 3, Kind: "heal"}); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	if got, _ = st.Load("alpha"); len(got) != 4 || got[3].Kind != "heal" {
		t.Fatalf("after reopen-append, journal = %d events (last %+v)", len(got), got[len(got)-1])
	}

	names, err := st.Names()
	if err != nil || len(names) != 1 || names[0] != "alpha" {
		t.Fatalf("names = %v, %v", names, err)
	}

	// Missing journals are fs.ErrNotExist — the replica's mid-stream
	// adoption path branches on exactly this.
	if _, err := st.Open("ghost"); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("Open(missing) = %v, want fs.ErrNotExist", err)
	}
	if _, err := st.Load("ghost"); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("Load(missing) = %v, want fs.ErrNotExist", err)
	}
	if err := st.Remove("ghost"); err != nil {
		t.Errorf("Remove(missing) = %v, want nil", err)
	}
	if err := st.Remove("alpha"); err != nil {
		t.Fatal(err)
	}
	if names, _ = st.Names(); len(names) != 0 {
		t.Errorf("names after remove = %v", names)
	}
}

// TestManagerClosedSentinel pins the post-Close contract: mutations on
// a closed manager or session fail with an error wrapping ErrClosed, so
// a draining server can tell shutdown races from real faults.
func TestManagerClosedSentinel(t *testing.T) {
	m := NewManager(nil, Options{Dir: t.TempDir()})
	s, err := m.Create("c", "debruijn(2,6)", topology.FaultSet{})
	if err != nil {
		t.Fatal(err)
	}
	ring := s.Ring()
	m.Close()

	if _, err := m.Create("late", "debruijn(2,6)", topology.FaultSet{}); !errors.Is(err, ErrClosed) {
		t.Errorf("Create after Close = %v, want ErrClosed", err)
	}
	if err := m.Delete("c"); !errors.Is(err, ErrClosed) {
		t.Errorf("Delete after Close = %v, want ErrClosed", err)
	}
	if _, err := s.AddFaults(topology.NodeFaults(ring[1])); !errors.Is(err, ErrClosed) {
		t.Errorf("AddFaults after Close = %v, want ErrClosed", err)
	}
	if _, err := s.RemoveFaults(topology.NodeFaults(ring[1])); !errors.Is(err, ErrClosed) {
		t.Errorf("RemoveFaults after Close = %v, want ErrClosed", err)
	}
	// Closing twice is safe.
	m.Close()
}

// TestManagerCustomStore checks Options.Store overrides Dir: the
// manager journals through the injected store — the seam the fleet's
// ReplicatedStore plugs into.
func TestManagerCustomStore(t *testing.T) {
	dir := t.TempDir()
	inner := NewDirStore(dir)
	cs := &countingStore{Store: inner}
	m := NewManager(nil, Options{Store: cs, Dir: "/nonexistent-ignored"})
	if m.Store() != Store(cs) {
		t.Fatal("manager did not adopt the injected store")
	}
	s, err := m.Create("via-store", "debruijn(2,6)", topology.FaultSet{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddFaults(topology.NodeFaults(s.Ring()[1])); err != nil {
		t.Fatal(err)
	}
	m.Close()
	if cs.creates != 1 || cs.appends < 3 {
		t.Errorf("store saw %d creates, %d appends; want 1 and ≥3", cs.creates, cs.appends)
	}
	// The journal really landed in the inner store.
	evs, err := inner.Load("via-store")
	if err != nil || len(evs) < 3 {
		t.Errorf("inner journal = %d events, %v", len(evs), err)
	}
}

// countingStore wraps a Store counting the traffic through it.
type countingStore struct {
	Store
	creates int
	appends int
}

func (c *countingStore) Create(name string) (JournalWriter, error) {
	c.creates++
	w, err := c.Store.Create(name)
	if err != nil {
		return nil, err
	}
	return &countingWriter{JournalWriter: w, store: c}, nil
}

type countingWriter struct {
	JournalWriter
	store *countingStore
}

func (w *countingWriter) Append(ev Event) error {
	w.store.appends++
	return w.JournalWriter.Append(ev)
}
