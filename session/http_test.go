package session

import (
	"bufio"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"debruijnring/engine"
)

func newTestServer(t *testing.T, opts Options) (*httptest.Server, *Manager) {
	t.Helper()
	m := NewManager(engine.New(engine.Options{}), opts)
	ts := httptest.NewServer(Handler(m))
	t.Cleanup(func() {
		ts.Close()
		m.Close()
	})
	return ts, m
}

func TestHTTPSessionLifecycle(t *testing.T) {
	ts, _ := newTestServer(t, Options{Dir: t.TempDir()})
	c := &Client{Base: ts.URL}
	ctx := context.Background()

	st, err := c.Create(ctx, CreateRequest{Name: "s1", Topology: "debruijn(2,6)"})
	if err != nil {
		t.Fatal(err)
	}
	if st.RingLength != 64 || len(st.Ring) != 64 || st.Seq != 1 {
		t.Errorf("created state = len %d ring %d seq %d", st.RingLength, len(st.Ring), st.Seq)
	}
	// Duplicate name → 409.
	if _, err := c.Create(ctx, CreateRequest{Name: "s1", Topology: "debruijn(2,6)"}); err == nil ||
		!strings.Contains(err.Error(), "409") {
		t.Errorf("duplicate create: %v", err)
	}
	// Bad requests → 4xx.
	if _, err := c.Create(ctx, CreateRequest{Name: "s?", Topology: "debruijn(2,6)"}); err == nil {
		t.Error("invalid name accepted")
	}
	if _, err := c.Create(ctx, CreateRequest{Name: "s2", Topology: "debruijn(2,6)",
		NodeFaults: []string{"zz"}}); err == nil {
		t.Error("bad fault label accepted")
	}

	// Stream a fault batch; the ring of B(2,6) contains "000001".
	res, err := c.AddFaults(ctx, "s1", FaultsRequest{NodeFaults: []string{"000001"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Event.Kind != "fault" || res.Event.Seq != 2 {
		t.Errorf("fault event = %+v", res.Event)
	}
	if res.Event.Repair != "local" && res.Event.Repair != "reembed" {
		t.Errorf("repair kind = %q", res.Event.Repair)
	}
	if res.State.RingLength >= 64 || res.State.LowerBound != 64-6 {
		t.Errorf("state after fault = %+v", res.State)
	}

	list, err := c.List(ctx)
	if err != nil || len(list) != 1 || list[0].Name != "s1" {
		t.Errorf("list = %+v, %v", list, err)
	}
	got, err := c.State(ctx, "s1")
	if err != nil || got.Seq != 2 || len(got.NodeFaults) != 1 {
		t.Errorf("state = %+v, %v", got, err)
	}

	if err := c.Delete(ctx, "s1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.State(ctx, "s1"); err == nil {
		t.Error("deleted session still served")
	}
}

// TestHTTPHealRoute exercises the heal direction over the wire: DELETE
// /v1/sessions/{name}/faults re-admits a repaired batch and journals a
// "heal" event, and the session survives a restore afterwards.
func TestHTTPHealRoute(t *testing.T) {
	dir := t.TempDir()
	ts, m := newTestServer(t, Options{Dir: dir})
	c := &Client{Base: ts.URL}
	ctx := context.Background()

	if _, err := c.Create(ctx, CreateRequest{Name: "h1", Topology: "debruijn(2,6)"}); err != nil {
		t.Fatal(err)
	}
	res, err := c.AddFaults(ctx, "h1", FaultsRequest{NodeFaults: []string{"000001"}})
	if err != nil {
		t.Fatal(err)
	}
	faulted := res.State.RingLength

	// Heal it back over DELETE.
	res, err = c.RemoveFaults(ctx, "h1", FaultsRequest{NodeFaults: []string{"000001"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Event.Kind != "heal" {
		t.Errorf("event kind = %q, want heal", res.Event.Kind)
	}
	if res.Event.Repair != "local" && res.Event.Repair != "reembed" {
		t.Errorf("heal repair kind = %q", res.Event.Repair)
	}
	if len(res.Event.RemoveNodes) != 1 {
		t.Errorf("heal event removes %v", res.Event.RemoveNodes)
	}
	if res.State.RingLength != 64 || len(res.State.NodeFaults) != 0 {
		t.Errorf("state after heal = len %d, faults %v (faulted len was %d)",
			res.State.RingLength, res.State.NodeFaults, faulted)
	}

	// Healing a component that is not faulty is a noop, not an error.
	res, err = c.RemoveFaults(ctx, "h1", FaultsRequest{NodeFaults: []string{"000011"}})
	if err != nil || res.Event.Repair != "noop" {
		t.Errorf("noop heal = %+v, %v", res.Event, err)
	}
	// A heal batch with a bad label is a 400.
	if _, err := c.RemoveFaults(ctx, "h1", FaultsRequest{NodeFaults: []string{"zz"}}); err == nil {
		t.Error("bad heal label accepted")
	}
	// Unknown sessions 404.
	if _, err := c.RemoveFaults(ctx, "nope", FaultsRequest{NodeFaults: []string{"000001"}}); err == nil {
		t.Error("heal on unknown session accepted")
	}

	// The journaled heal replays: restart the manager from the journal.
	want := ""
	if s, ok := m.Get("h1"); ok {
		want = s.StateSnapshot(false).RingHash
	}
	m.Close()
	m2 := NewManager(nil, Options{Dir: dir})
	restored, errs := m2.Restore()
	if len(errs) > 0 || len(restored) != 1 {
		t.Fatalf("restore = %d sessions, errs %v", len(restored), errs)
	}
	if got := restored[0].StateSnapshot(false).RingHash; got != want {
		t.Errorf("replayed ring hash %s != live %s", got, want)
	}
	m2.Close()
}

func TestHTTPWatchLongPoll(t *testing.T) {
	ts, m := newTestServer(t, Options{})
	c := &Client{Base: ts.URL}
	ctx := context.Background()
	if _, err := c.Create(ctx, CreateRequest{Name: "w", Topology: "debruijn(2,6)"}); err != nil {
		t.Fatal(err)
	}

	// Events up to the initial embed are immediately available.
	wr, err := c.Watch(ctx, "w", 0, 0)
	if err != nil || len(wr.Events) != 1 || wr.Events[0].Kind != "embed" {
		t.Fatalf("watch = %+v, %v", wr, err)
	}

	// A blocked long-poll wakes on the next fault event.
	type watchResult struct {
		wr  *WatchResponse
		err error
	}
	done := make(chan watchResult, 1)
	go func() {
		wr, err := c.Watch(ctx, "w", 1, 5*time.Second)
		done <- watchResult{wr, err}
	}()
	time.Sleep(20 * time.Millisecond)
	s, _ := m.Get("w")
	ring := s.Ring()
	if _, err := c.AddFaults(ctx, "w", FaultsRequest{
		NodeFaults: []string{s.Network().Label(ring[5])}}); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-done:
		if r.err != nil || len(r.wr.Events) != 1 || r.wr.Events[0].Seq != 2 {
			t.Errorf("long-poll = %+v, %v", r.wr, r.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long-poll never returned")
	}

	// Unknown session → 404.
	if _, err := c.Watch(ctx, "nope", 0, 0); err == nil {
		t.Error("watch on missing session succeeded")
	}
}

func TestHTTPWatchSSE(t *testing.T) {
	ts, m := newTestServer(t, Options{})
	c := &Client{Base: ts.URL}
	ctx := context.Background()
	if _, err := c.Create(ctx, CreateRequest{Name: "sse", Topology: "debruijn(2,6)"}); err != nil {
		t.Fatal(err)
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/sessions/sse/watch", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	// Feed one fault while the stream is open.
	go func() {
		time.Sleep(20 * time.Millisecond)
		s, _ := m.Get("sse")
		ring := s.Ring()
		c.AddFaults(ctx, "sse", FaultsRequest{NodeFaults: []string{s.Network().Label(ring[3])}})
	}()

	sc := bufio.NewScanner(resp.Body)
	var kinds []string
	deadline := time.After(10 * time.Second)
	lines := make(chan string)
	go func() {
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	for len(kinds) < 2 {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("stream closed early; got %v", kinds)
			}
			if strings.HasPrefix(line, "event: ") {
				kinds = append(kinds, strings.TrimPrefix(line, "event: "))
			}
		case <-deadline:
			t.Fatalf("timed out; got %v", kinds)
		}
	}
	if kinds[0] != "embed" || kinds[1] != "fault" {
		t.Errorf("SSE event kinds = %v, want [embed fault]", kinds)
	}
}

// TestHTTPRejectedBatchReturnsEvent pins the 422 path: a fault batch the
// embedder cannot serve returns the journaled rejection event to the
// client alongside the error, and the session keeps its ring.
func TestHTTPRejectedBatchReturnsEvent(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	c := &Client{Base: ts.URL}
	ctx := context.Background()
	// Q4 tolerates n−2 = 2 node faults; start at the limit.
	st, err := c.Create(ctx, CreateRequest{Name: "rej", Topology: "hypercube(4)",
		NodeFaults: []string{"0000", "0001"}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.AddFaults(ctx, "rej", FaultsRequest{NodeFaults: []string{"0101", "1001"}})
	if err == nil {
		t.Fatal("over-tolerance batch unexpectedly accepted")
	}
	if res == nil || res.Event.Repair != "rejected" || res.Event.Error == "" {
		t.Fatalf("rejection event not returned: %+v", res)
	}
	if res.Event.RingLength != st.RingLength {
		t.Errorf("rejection event ring %d, want unchanged %d", res.Event.RingLength, st.RingLength)
	}
	after, err := c.State(ctx, "rej")
	if err != nil || after.RingHash != st.RingHash {
		t.Errorf("session ring changed after rejection: %v", err)
	}
}

// TestHTTPTraceEndpoint drives fault and heal batches through a De
// Bruijn session and asserts the trace endpoint reports the tier
// descents: every ring-changing event retains a record whose tiers
// name the ladder rungs that ran, and ?limit bounds the result.
func TestHTTPTraceEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	c := &Client{Base: ts.URL}
	ctx := context.Background()

	if _, err := c.Create(ctx, CreateRequest{Name: "tr", Topology: "debruijn(2,6)"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddFaults(ctx, "tr", FaultsRequest{NodeFaults: []string{"000001"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RemoveFaults(ctx, "tr", FaultsRequest{NodeFaults: []string{"000001"}}); err != nil {
		t.Fatal(err)
	}

	tr, err := c.Trace(ctx, "tr", 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "tr" || len(tr.Records) != 2 {
		t.Fatalf("trace = %+v, want 2 records", tr)
	}
	fault, heal := tr.Records[0], tr.Records[1]
	if fault.Kind != "fault" || heal.Kind != "heal" {
		t.Errorf("record kinds = %q, %q", fault.Kind, heal.Kind)
	}
	for _, rec := range tr.Records {
		if len(rec.Tiers) == 0 {
			t.Fatalf("record seq %d has no tier trace", rec.Seq)
		}
		if rec.Tiers[0].Tier != "ffc" {
			t.Errorf("seq %d: first tier = %q, want ffc (De Bruijn chain)", rec.Seq, rec.Tiers[0].Tier)
		}
		if rec.Repair == "local" && rec.Tiers[0].Touched == 0 {
			t.Errorf("seq %d: local repair touched no stars", rec.Seq)
		}
		if rec.ElapsedNs <= 0 {
			t.Errorf("seq %d: elapsed = %d", rec.Seq, rec.ElapsedNs)
		}
	}

	// The watch stream carries the same tier tags on its events.
	wr, err := c.Watch(ctx, "tr", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	var sawTiers bool
	for _, ev := range wr.Events {
		if len(ev.Tiers) > 0 {
			sawTiers = true
		}
	}
	if !sawTiers {
		t.Error("watch events carry no tier traces")
	}

	limited, err := c.Trace(ctx, "tr", 1)
	if err != nil || len(limited.Records) != 1 || limited.Records[0].Kind != "heal" {
		t.Fatalf("limited trace = %+v, %v", limited, err)
	}
}
