package session

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
)

// journalExt is the on-disk suffix of session journals.
const journalExt = ".journal"

// nameRE restricts session names to filesystem- and URL-safe tokens, so
// the name can double as the journal filename and the path segment of
// the HTTP API.
var nameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$`)

// ValidName reports whether name is usable as a session name.
func ValidName(name string) bool { return nameRE.MatchString(name) }

// journalWriter appends JSON-lines events to a session's journal file —
// the JournalWriter of DirStore.  Each append is a single buffered write
// flushed before returning, so a killed process loses at most the event
// being written — never a previously acknowledged one.
type journalWriter struct {
	f  *os.File
	bw *bufio.Writer
}

func journalPath(dir, name string) string {
	return filepath.Join(dir, name+journalExt)
}

func removeJournal(dir, name string) error {
	return os.Remove(journalPath(dir, name))
}

// createJournal opens a fresh journal for a new session; an existing
// file is a name conflict (possibly a session from a previous run that
// Restore would have loaded).
func createJournal(dir, name string) (*journalWriter, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(journalPath(dir, name), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		if os.IsExist(err) {
			return nil, fmt.Errorf("session: journal for %q already exists (restore or delete it first)", name)
		}
		return nil, err
	}
	return &journalWriter{f: f, bw: bufio.NewWriter(f)}, nil
}

// openJournal reopens an existing journal for appending (after Restore).
func openJournal(dir, name string) (*journalWriter, error) {
	f, err := os.OpenFile(journalPath(dir, name), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return &journalWriter{f: f, bw: bufio.NewWriter(f)}, nil
}

// Append encodes one event line and flushes it to the file.
func (w *journalWriter) Append(ev Event) error {
	enc := json.NewEncoder(w.bw)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(ev); err != nil {
		return err
	}
	return w.bw.Flush()
}

// Sync forces the journal to stable storage.
func (w *journalWriter) Sync() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

// Close flushes, syncs and releases the file handle, so a cleanly
// closed journal survives host death, not just process death.
func (w *journalWriter) Close() error {
	ferr := w.bw.Flush()
	serr := w.f.Sync()
	cerr := w.f.Close()
	if ferr != nil {
		return ferr
	}
	if serr != nil {
		return serr
	}
	return cerr
}

// readJournal loads every well-formed event of a journal file.  A
// truncated trailing line (the process died mid-write) is tolerated;
// malformed leading content is an error.
func readJournal(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var events []Event
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			// Only the final line may be garbage (a torn write).
			if sc.Scan() {
				return nil, fmt.Errorf("session: corrupt journal %s: %w", path, err)
			}
			break
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("session: journal %s holds no events", path)
	}
	return events, nil
}
