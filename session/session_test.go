package session

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"debruijnring/engine"
	"debruijnring/topology"
)

// TestChaosTraceDeBruijn is the acceptance scenario of the session
// subsystem: a B(2,10) session absorbs node faults one at a time up to
// the paper's f ≤ n tolerance bound.  At least half of the fault events
// must be handled without a full re-embed, every intermediate ring must
// verify against the cumulative fault set, and the ring length must
// never drop below dⁿ − nf.  A server killed (no graceful shutdown, no
// final snapshot) and restored from its journal must resume the session
// with an identical ring.
func TestChaosTraceDeBruijn(t *testing.T) {
	const d, n = 2, 10
	dir := t.TempDir()
	eng := engine.New(engine.Options{})
	m := NewManager(eng, Options{Dir: dir})
	s, err := m.Create("chaos", "debruijn(2,10)", topology.FaultSet{})
	if err != nil {
		t.Fatal(err)
	}
	net := s.Network()
	size := net.Nodes() // 1024

	rng := rand.New(rand.NewSource(2026))
	var faults topology.FaultSet
	local, reembeds := 0, 0
	for i := 1; i <= n; i++ { // up to f = n faults
		x := rng.Intn(size)
		add := topology.NodeFaults(x)
		faults = faults.Union(add)
		ev, err := s.AddFaults(add)
		if err != nil {
			t.Fatalf("fault %d (node %d): %v", i, x, err)
		}
		switch ev.Repair {
		case "local", "splice", "noop":
			local++
		case "reembed":
			reembeds++
		default:
			t.Fatalf("fault %d: unexpected repair kind %q", i, ev.Repair)
		}
		ring := s.Ring()
		if !topology.VerifyRing(net, ring, faults) {
			t.Fatalf("fault %d: intermediate ring fails VerifyRing", i)
		}
		bound := size - n*len(faults.Nodes)
		if len(ring) < bound {
			t.Fatalf("fault %d: ring length %d below dⁿ−nf = %d", i, len(ring), bound)
		}
		if ev.RingLength != len(ring) || ev.LowerBound != bound {
			t.Errorf("fault %d: event bookkeeping %d/%d, want %d/%d",
				i, ev.RingLength, ev.LowerBound, len(ring), bound)
		}
	}
	if local < reembeds || local*2 < local+reembeds {
		t.Errorf("local repairs %d < 50%% of %d fault events", local, local+reembeds)
	}
	t.Logf("chaos trace: %d local, %d re-embeds", local, reembeds)

	// Engine-side session stats reflect the trace.
	es := eng.Stats().Sessions
	if es.LocalRepairs+es.SpliceRepairs+es.Noops+es.Reembeds != int64(n) {
		t.Errorf("engine session stats %+v do not cover %d events", es, n)
	}

	wantRing := s.Ring()
	wantState := s.StateSnapshot(false)

	// Kill: no Close, no final snapshot — the journal alone carries the
	// history.  A fresh manager must replay to the identical ring.
	m2 := NewManager(engine.New(engine.Options{}), Options{Dir: dir})
	restored, errs := m2.Restore()
	for _, e := range errs {
		t.Errorf("restore: %v", e)
	}
	if len(restored) != 1 {
		t.Fatalf("restored %d sessions, want 1", len(restored))
	}
	s2, ok := m2.Get("chaos")
	if !ok {
		t.Fatal("restored session not registered")
	}
	gotRing := s2.Ring()
	if len(gotRing) != len(wantRing) {
		t.Fatalf("restored ring has %d nodes, want %d", len(gotRing), len(wantRing))
	}
	for i := range wantRing {
		if gotRing[i] != wantRing[i] {
			t.Fatalf("restored ring diverges at position %d", i)
		}
	}
	gotState := s2.StateSnapshot(false)
	if gotState.Seq != wantState.Seq || gotState.RingHash != wantState.RingHash {
		t.Errorf("restored state %+v != %+v", gotState, wantState)
	}
	if gotState.Stats != wantState.Stats {
		t.Errorf("restored stats %+v != %+v", gotState.Stats, wantState.Stats)
	}

	// The restored session keeps absorbing faults.
	ev, err := s2.AddFaults(topology.NodeFaults(gotRing[7]))
	if err != nil {
		t.Fatalf("post-restore fault: %v", err)
	}
	if ev.Seq != wantState.Seq+1 {
		t.Errorf("post-restore event seq %d, want %d", ev.Seq, wantState.Seq+1)
	}
}

// TestSessionSnapshotRestore drives past the snapshot cadence and
// checks restore picks up from the snapshot rather than replaying the
// whole history (and still lands on the right ring).
func TestSessionSnapshotRestore(t *testing.T) {
	dir := t.TempDir()
	m := NewManager(nil, Options{Dir: dir, SnapshotEvery: 4})
	s, err := m.Create("snap", "debruijn(2,8)", topology.FaultSet{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10; i++ {
		if _, err := s.AddFaults(topology.NodeFaults(rng.Intn(256))); err != nil {
			t.Fatalf("fault %d: %v", i, err)
		}
	}
	m.Close() // graceful: final snapshot written

	events, err := readJournal(journalPath(dir, "snap"))
	if err != nil {
		t.Fatal(err)
	}
	snaps := 0
	for _, ev := range events {
		if ev.Kind == "snapshot" {
			snaps++
		}
	}
	if snaps < 2 {
		t.Errorf("journal has %d snapshots, want ≥ 2 (cadence 4 over 10 events + close)", snaps)
	}

	want := s.StateSnapshot(false)
	m2 := NewManager(nil, Options{Dir: dir, SnapshotEvery: 4})
	if _, errs := m2.Restore(); len(errs) > 0 {
		t.Fatalf("restore: %v", errs)
	}
	s2, _ := m2.Get("snap")
	got := s2.StateSnapshot(false)
	if got.RingHash != want.RingHash || got.Seq != want.Seq || got.Stats != want.Stats {
		t.Errorf("restored %+v, want %+v", got, want)
	}
}

// TestSessionRejectedBatchKeepsState drives a fault load the embedder
// cannot serve and checks the session keeps its last good ring, the
// rejection is journaled, and replay reproduces it.
func TestSessionRejectedBatchKeepsState(t *testing.T) {
	dir := t.TempDir()
	m := NewManager(nil, Options{Dir: dir})
	// Hypercube Q4 tolerates n−2 = 2 node faults.
	s, err := m.Create("hq", "hypercube(4)", topology.NodeFaults(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	before := s.StateSnapshot(false)
	// Two more faults exceed the tolerance and the patcher has no
	// spares: the batch must be rejected atomically.
	if _, err := s.AddFaults(topology.NodeFaults(5, 9)); err == nil {
		t.Fatal("over-tolerance batch unexpectedly accepted")
	}
	after := s.StateSnapshot(false)
	if after.RingHash != before.RingHash {
		t.Error("rejected batch changed the ring")
	}
	if len(after.FaultNodes) != len(before.FaultNodes) {
		t.Error("rejected batch grew the fault set")
	}
	if after.Stats.Rejected != 1 {
		t.Errorf("rejected count = %d, want 1", after.Stats.Rejected)
	}

	want := s.Ring()
	m2 := NewManager(nil, Options{Dir: dir})
	if _, errs := m2.Restore(); len(errs) > 0 {
		t.Fatalf("restore with journaled rejection: %v", errs)
	}
	s2, _ := m2.Get("hq")
	got := s2.Ring()
	if len(got) != len(want) {
		t.Fatalf("restored ring %d nodes, want %d", len(got), len(want))
	}
	if s2.StateSnapshot(false).Stats.Rejected != 1 {
		t.Error("replayed rejection not counted")
	}
}

// TestSessionWatchLongPoll publishes events from another goroutine and
// checks EventsSince wakes blocked watchers in order.
func TestSessionWatchLongPoll(t *testing.T) {
	m := NewManager(nil, Options{})
	s, err := m.Create("w", "debruijn(2,6)", topology.FaultSet{})
	if err != nil {
		t.Fatal(err)
	}
	// Seq 1 is the initial embed event, available immediately.
	evs, truncated := s.EventsSince(0, 0, nil)
	if truncated || len(evs) != 1 || evs[0].Kind != "embed" {
		t.Fatalf("initial events = %+v (truncated %v)", evs, truncated)
	}

	done := make(chan []Event, 1)
	go func() {
		evs, _ := s.EventsSince(1, 5*time.Second, nil)
		done <- evs
	}()
	time.Sleep(20 * time.Millisecond) // let the watcher block
	if _, err := s.AddFaults(topology.NodeFaults(3)); err != nil {
		t.Fatal(err)
	}
	select {
	case evs := <-done:
		if len(evs) != 1 || evs[0].Seq != 2 || evs[0].Kind != "fault" {
			t.Errorf("watched events = %+v", evs)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watcher never woke")
	}

	// A zero-wait poll past the head returns empty.
	if evs, _ := s.EventsSince(99, 0, nil); len(evs) != 0 {
		t.Errorf("future poll returned %+v", evs)
	}
}

// TestManagerLifecycle covers name validation, duplicate creation and
// deletion semantics.
func TestManagerLifecycle(t *testing.T) {
	dir := t.TempDir()
	m := NewManager(nil, Options{Dir: dir})
	if _, err := m.Create("bad name!", "debruijn(2,4)", topology.FaultSet{}); err == nil {
		t.Error("invalid name accepted")
	}
	if _, err := m.Create("s1", "nosuch(2)", topology.FaultSet{}); err == nil {
		t.Error("bad spec accepted")
	}
	if _, err := m.Create("s1", "debruijn(2,4)", topology.FaultSet{}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create("s1", "debruijn(2,5)", topology.FaultSet{}); err == nil {
		t.Error("duplicate name accepted")
	}
	if got := len(m.List()); got != 1 {
		t.Errorf("List() = %d sessions", got)
	}
	if err := m.Delete("s1"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "s1.journal")); !os.IsNotExist(err) {
		t.Error("journal survived deletion")
	}
	if err := m.Delete("s1"); err == nil {
		t.Error("double delete succeeded")
	}
	// The name is reusable after deletion.
	if _, err := m.Create("s1", "debruijn(2,4)", topology.FaultSet{}); err != nil {
		t.Errorf("recreate after delete: %v", err)
	}
}

// TestSessionEdgeFaultNoopAndReembed exercises the link-fault paths of
// a De Bruijn session: an off-ring link is a noop, an on-ring link
// forces a re-embed that avoids it.
func TestSessionEdgeFaultNoopAndReembed(t *testing.T) {
	// d = 4 tolerates MAX{ψ(4)−1, φ(4)} = 2 link faults.
	m := NewManager(nil, Options{})
	s, err := m.Create("e", "debruijn(4,3)", topology.FaultSet{})
	if err != nil {
		t.Fatal(err)
	}
	net := s.Network()
	ring := s.Ring()
	succ := make(map[int]int, len(ring))
	for i, v := range ring {
		succ[v] = ring[(i+1)%len(ring)]
	}
	// Find a link the ring does not use.
	var off topology.Edge
	found := false
	var buf []int
	for u := 0; u < net.Nodes() && !found; u++ {
		for _, w := range net.Successors(u, buf) {
			if w != u && succ[u] != w {
				off = topology.Edge{From: u, To: w}
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("no off-ring link")
	}
	ev, err := s.AddFaults(topology.EdgeFaults(off))
	if err != nil {
		t.Fatal(err)
	}
	if ev.Repair != "noop" {
		t.Errorf("off-ring link fault: repair %q, want noop", ev.Repair)
	}

	// An on-ring link fault between healthy endpoints is absorbed by
	// star reordering: no re-embed, no node leaves the ring.
	on := topology.Edge{From: ring[3], To: succ[ring[3]]}
	ev, err = s.AddFaults(topology.EdgeFaults(on))
	if err != nil {
		t.Fatal(err)
	}
	if ev.Repair != "local" {
		t.Errorf("on-ring link fault: repair %q, want local (star reorder)", ev.Repair)
	}
	if got := len(s.Ring()); got != net.Nodes() {
		t.Errorf("link absorption dropped nodes: ring %d of %d", got, net.Nodes())
	}
	if !topology.VerifyRing(net, s.Ring(), s.Faults()) {
		t.Error("ring after link absorption fails verification")
	}

	// Healing the link is bookkeeping only.
	ev, err = s.RemoveFaults(topology.EdgeFaults(on))
	if err != nil {
		t.Fatal(err)
	}
	if ev.Repair != "noop" {
		t.Errorf("link heal: repair %q, want noop", ev.Repair)
	}
	if len(s.Faults().Edges) != 1 {
		t.Errorf("fault set has %d link faults after heal, want 1 (the off-ring one)", len(s.Faults().Edges))
	}
}
