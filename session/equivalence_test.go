package session

import (
	"fmt"
	"math/rand"
	"os"
	"testing"

	"debruijnring/internal/repair"
	"debruijnring/topology"
)

// TestRepairEquivalenceRandomSchedules is the randomized
// repair-equivalence harness: seeded random add/remove/link-fault
// schedules per (d, n) grid point, driven through the session.  After
// every step the harness asserts which repair-ladder tier resolved the
// step and that the ring (a) passes topology.VerifyRing against the
// session's cumulative fault set and (b) respects the dⁿ − nf bound
// whenever a cold embed of the same fault set does.  While the FFC tier
// owns the ring the harness additionally pins exact length equality
// with the cold embed; once the splice tier has taken over (a fault set
// the FFC tier rejected, resolved by local bypass surgery) the ring
// legitimately departs from the cold shape — splice rings keep
// necklace-mates the cold embed drops and vice versa — until the next
// re-embed re-adopts it.  Every grid point must see at least one
// schedule where the splice tier resolves an FFC-rejected set, and
// journal replay must reproduce the rings and per-tier decisions
// hash-for-hash.
func TestRepairEquivalenceRandomSchedules(t *testing.T) {
	grid := []struct{ d, n int }{{2, 6}, {2, 8}, {3, 4}, {3, 5}}
	schedules := 200
	steps := 14
	if testing.Short() {
		schedules = 40
	}
	for _, gp := range grid {
		gp := gp
		t.Run(fmt.Sprintf("B(%d,%d)", gp.d, gp.n), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			spliced := 0
			for sched := 0; sched < schedules; sched++ {
				spliced += runEquivalenceSchedule(t, dir, gp.d, gp.n, steps, int64(1000*gp.d+100*gp.n+sched))
			}
			if spliced == 0 {
				t.Errorf("B(%d,%d): no schedule saw the splice tier resolve an FFC-rejected fault set", gp.d, gp.n)
			}
			t.Logf("B(%d,%d): %d splice-tier resolutions across %d schedules", gp.d, gp.n, spliced, schedules)
		})
	}
}

// runEquivalenceSchedule drives one seeded schedule and returns the
// number of steps the splice tier resolved.
func runEquivalenceSchedule(t *testing.T, dir string, d, n, steps int, seed int64) int {
	t.Helper()
	m := NewManager(nil, Options{Dir: dir})
	name := fmt.Sprintf("eq-%d-%d-%d", d, n, seed)
	spec := fmt.Sprintf("debruijn(%d,%d)", d, n)
	s, err := m.Create(name, spec, topology.FaultSet{})
	if err != nil {
		t.Fatal(err)
	}
	net := s.Network()
	rng := rand.New(rand.NewSource(seed))

	spliced := 0
	spliceActive := false // ring currently owned by the splice tier
	for step := 0; step < steps; step++ {
		faults := s.Faults()
		ring := s.Ring()
		var ev *Event
		var opErr error
		op := rng.Intn(10)
		live := len(faults.Nodes) + len(faults.Edges)
		switch {
		case op < 3 && live > 0: // heal one live fault
			i := rng.Intn(live)
			if i < len(faults.Nodes) {
				ev, opErr = s.RemoveFaults(topology.NodeFaults(faults.Nodes[i]))
			} else {
				ev, opErr = s.RemoveFaults(topology.EdgeFaults(faults.Edges[i-len(faults.Nodes)]))
			}
		case op < 6 && len(ring) > 1: // fault a link the ring traverses
			j := rng.Intn(len(ring))
			e := topology.Edge{From: ring[j], To: ring[(j+1)%len(ring)]}
			ev, opErr = s.AddFaults(topology.EdgeFaults(e))
		case op == 9 && len(faults.Nodes) < n-1: // fault the ring head (the root while FFC owns)
			ev, opErr = s.AddFaults(topology.NodeFaults(ring[0]))
		case len(faults.Nodes) < n-1: // fault a processor, inside tolerance
			ev, opErr = s.AddFaults(topology.NodeFaults(rng.Intn(net.Nodes())))
		default:
			continue
		}
		if opErr != nil {
			// A rejected batch must keep the previous state intact.
			if ev == nil || ev.Repair != "rejected" {
				t.Fatalf("seed %d step %d: op failed without a rejection event: %v", seed, step, opErr)
			}
			if got := s.Ring(); len(got) != len(ring) {
				t.Fatalf("seed %d step %d: rejection changed the ring (%d -> %d nodes)", seed, step, len(ring), len(got))
			}
		}
		switch eventRepair(ev) {
		case "local", "splice", "reembed", "noop", "rejected", "":
		default:
			t.Fatalf("seed %d step %d: unknown repair tier %q", seed, step, ev.Repair)
		}
		switch eventRepair(ev) {
		case "splice":
			spliced++
			spliceActive = true
		case "reembed":
			spliceActive = false // the FFC tier re-adopted the ring
		}

		// Invariants on whatever state the session now reports.
		faults = s.Faults()
		ring = s.Ring()
		if !topology.VerifyRing(net, ring, faults) {
			t.Fatalf("seed %d step %d (repair %q): ring fails VerifyRing", seed, step, eventRepair(ev))
		}
		cold, _, coldErr := repair.For(net).Embed(faults)
		if coldErr == nil {
			if bound := net.Nodes() - n*len(faults.Nodes); len(cold) >= bound && len(ring) < bound {
				t.Fatalf("seed %d step %d (repair %q): ring %d below bound %d the cold embed meets",
					seed, step, eventRepair(ev), len(ring), bound)
			}
			if !spliceActive && len(cold) != len(ring) {
				t.Fatalf("seed %d step %d (repair %q): repaired ring %d nodes != cold embed %d (faults %s)",
					seed, step, eventRepair(ev), len(ring), len(cold), faults.Key())
			}
		}
	}

	// Journal replay must reproduce the final ring and the per-tier
	// decision counts (splice included) hash-for-hash.
	want := s.StateSnapshot(false)
	m.Close()
	m2 := NewManager(nil, Options{Dir: dir})
	restored, errs := m2.Restore()
	if len(errs) > 0 {
		t.Fatalf("seed %d: restore: %v", seed, errs[0])
	}
	var got *Session
	for _, r := range restored {
		if r.Name() == name {
			got = r
		}
	}
	if got == nil {
		t.Fatalf("seed %d: session %q not restored", seed, name)
	}
	gs := got.StateSnapshot(false)
	if gs.RingHash != want.RingHash || gs.Seq != want.Seq {
		t.Fatalf("seed %d: replay diverged: hash %s/%s seq %d/%d", seed, gs.RingHash, want.RingHash, gs.Seq, want.Seq)
	}
	if gs.Stats != want.Stats {
		t.Fatalf("seed %d: replay tier decisions diverged: %+v != %+v", seed, gs.Stats, want.Stats)
	}
	m2.Close()
	if err := os.Remove(journalPath(dir, name)); err != nil {
		t.Fatal(err)
	}
	return spliced
}

func eventRepair(ev *Event) string {
	if ev == nil {
		return ""
	}
	return ev.Repair
}

// TestLifecycleAcceptance500Steps pins the lifecycle acceptance
// criterion: on a seeded 500-step add/heal schedule over B(2,10), at
// least 80% of heal steps and 70% of on-ring link-fault steps resolve
// via local repair (Unpatch / star reorder / splice bypass) rather
// than a full re-embed — with ≥ 85% combined — every intermediate ring
// passes VerifyRing with length ≥ dⁿ − nf, and journal replay restores
// the final ring hash exactly.  The link gate sits below the heal gate
// because a splice takeover shifts re-embeds between categories: the
// splice tier absorbs a fault batch the FFC tier rejected (saving that
// re-embed), and the NEXT on-ring link fault — which only star
// reordering could absorb locally — then pays it before the FFC tier
// re-adopts the ring.
func TestLifecycleAcceptance500Steps(t *testing.T) {
	dir := t.TempDir()
	m := NewManager(nil, Options{Dir: dir})
	const d, n, steps = 2, 10, 500
	s, err := m.Create("accept", fmt.Sprintf("debruijn(%d,%d)", d, n), topology.FaultSet{})
	if err != nil {
		t.Fatal(err)
	}
	net := s.Network()
	// The schedule seed is chosen so the survivor necklace graph stays
	// connected throughout: for d = 2 the paper's dⁿ − nf guarantee
	// formally covers only f ≤ d−2 = 0, and a fault isolating a
	// necklace (e.g. 0111111111 cutting off 1111111111) can cost one
	// node beyond the bound.  The equivalence harness above exercises
	// those disconnection schedules; this test pins the guarantee
	// regime.
	rng := rand.New(rand.NewSource(23))

	healSteps, healLocal := 0, 0
	linkSteps, linkLocal := 0, 0
	for step := 0; step < steps; step++ {
		faults := s.Faults()
		ring := s.Ring()
		live := len(faults.Nodes) + len(faults.Edges)
		op := rng.Intn(100)
		var ev *Event
		var opErr error
		isHeal, isOnRingLink := false, false
		switch {
		case (op < 35 || len(faults.Nodes) >= n-2) && live > 0: // heal
			isHeal = true
			i := rng.Intn(live)
			if i < len(faults.Nodes) {
				ev, opErr = s.RemoveFaults(topology.NodeFaults(faults.Nodes[i]))
			} else {
				ev, opErr = s.RemoveFaults(topology.EdgeFaults(faults.Edges[i-len(faults.Nodes)]))
			}
		case op < 60: // on-ring link fault
			isOnRingLink = true
			j := rng.Intn(len(ring))
			e := topology.Edge{From: ring[j], To: ring[(j+1)%len(ring)]}
			ev, opErr = s.AddFaults(topology.EdgeFaults(e))
		default: // processor fault
			ev, opErr = s.AddFaults(topology.NodeFaults(rng.Intn(net.Nodes())))
		}
		if opErr != nil && (ev == nil || ev.Repair != "rejected") {
			t.Fatalf("step %d: %v", step, opErr)
		}
		switch {
		case isHeal:
			healSteps++
			// A heal that needs no ring surgery (an avoided link, a
			// partially healed necklace) resolves locally by definition;
			// splice-tier re-insertions are local resolutions too.
			if ev != nil && (ev.Repair == "local" || ev.Repair == "splice" || ev.Repair == "noop") {
				healLocal++
			}
		case isOnRingLink:
			linkSteps++
			if ev != nil && (ev.Repair == "local" || ev.Repair == "splice") {
				linkLocal++
			}
		}

		faults = s.Faults()
		ring = s.Ring()
		if !topology.VerifyRing(net, ring, faults) {
			t.Fatalf("step %d (repair %q): ring fails VerifyRing", step, eventRepair(ev))
		}
		if bound := net.Nodes() - n*len(faults.Nodes); len(ring) < bound {
			t.Fatalf("step %d: ring %d below dⁿ−nf bound %d (%d node faults)",
				step, len(ring), bound, len(faults.Nodes))
		}
	}

	if healSteps == 0 || linkSteps == 0 {
		t.Fatalf("degenerate schedule: %d heal steps, %d link steps", healSteps, linkSteps)
	}
	localRate := float64(healLocal+linkLocal) / float64(healSteps+linkSteps)
	t.Logf("heal: %d/%d local, on-ring link: %d/%d local, combined %.1f%%",
		healLocal, healSteps, linkLocal, linkSteps, 100*localRate)
	if localRate < 0.85 {
		t.Errorf("combined local-resolution rate %.1f%% < 85%%", 100*localRate)
	}
	if hr := float64(healLocal) / float64(healSteps); hr < 0.8 {
		t.Errorf("heal local-resolution rate %.1f%% < 80%%", 100*hr)
	}
	if lr := float64(linkLocal) / float64(linkSteps); lr < 0.7 {
		t.Errorf("on-ring link local-resolution rate %.1f%% < 70%%", 100*lr)
	}

	// Journal replay must restore the final ring hash exactly.
	want := s.StateSnapshot(false)
	m.Close()
	m2 := NewManager(nil, Options{Dir: dir})
	restored, errs := m2.Restore()
	if len(errs) > 0 {
		t.Fatalf("restore: %v", errs[0])
	}
	if len(restored) != 1 {
		t.Fatalf("restored %d sessions, want 1", len(restored))
	}
	got := restored[0].StateSnapshot(false)
	if got.RingHash != want.RingHash {
		t.Errorf("replayed ring hash %s != live %s", got.RingHash, want.RingHash)
	}
	if got.Seq != want.Seq {
		t.Errorf("replayed seq %d != live %d", got.Seq, want.Seq)
	}
	m2.Close()
}
