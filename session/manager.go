package session

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"debruijnring/engine"
	"debruijnring/internal/repair"
	"debruijnring/topology"
)

// Options configures a Manager.  The zero value keeps sessions
// in-memory only.
type Options struct {
	// Dir is the journal directory; "" disables persistence.  It is a
	// convenience for Store == nil: NewManager wraps it in a DirStore.
	Dir string
	// Store overrides Dir with an explicit persistence backend — e.g.
	// the fleet package's replicated store, which tees every journal
	// append to a replica shard.  nil with Dir == "" keeps sessions
	// in-memory only.
	Store Store
	// SnapshotEvery is the fault-event cadence of full-state snapshots
	// in the journal (default 32).  Snapshots bound the replay work of a
	// Restore; between them replay re-runs the deterministic repair
	// decisions and verifies every ring hash.
	SnapshotEvery int
	// EventBuffer is the per-session count of retained events served to
	// watchers (default 256).
	EventBuffer int
	// TraceBuffer is the per-session count of retained repair trace
	// records served by GET /v1/sessions/{name}/trace (default 128;
	// negative disables trace retention).
	TraceBuffer int
}

// Manager owns the live sessions of one process and their journals.
type Manager struct {
	eng   *engine.Engine // session-stats sink; may be nil
	opts  Options
	store Store // nil when persistence is off

	mu       sync.Mutex
	closed   bool
	sessions map[string]*Session
}

// NewManager returns a Manager recording repair outcomes into eng (nil
// disables the engine coupling).
func NewManager(eng *engine.Engine, opts Options) *Manager {
	if opts.SnapshotEvery <= 0 {
		opts.SnapshotEvery = 32
	}
	if opts.EventBuffer <= 0 {
		opts.EventBuffer = 256
	}
	if opts.TraceBuffer == 0 {
		opts.TraceBuffer = 128
	}
	store := opts.Store
	if store == nil && opts.Dir != "" {
		store = NewDirStore(opts.Dir)
	}
	return &Manager{eng: eng, opts: opts, store: store, sessions: make(map[string]*Session)}
}

// Store returns the manager's persistence backend (nil when sessions
// are in-memory only).
func (m *Manager) Store() Store { return m.store }

// Create starts a session: resolve the topology, run the initial embed
// around the (possibly empty) starting fault set, and open its journal.
func (m *Manager) Create(name, spec string, faults topology.FaultSet) (*Session, error) {
	if !ValidName(name) {
		return nil, fmt.Errorf("session: invalid name %q (want %s)", name, nameRE)
	}
	net, err := topology.FromSpec(spec)
	if err != nil {
		return nil, err
	}
	faults = faults.Canonical()
	if err := faults.Validate(net); err != nil {
		return nil, err
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, fmt.Errorf("session: manager: %w", ErrClosed)
	}
	if _, ok := m.sessions[name]; ok {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", errSessionExists, name)
	}
	// Reserve the name while the initial embed runs outside the lock.
	m.sessions[name] = nil
	m.mu.Unlock()
	s, err := m.create(name, spec, net, faults)
	m.mu.Lock()
	if err != nil {
		delete(m.sessions, name)
	} else {
		m.sessions[name] = s
	}
	m.mu.Unlock()
	return s, err
}

func (m *Manager) create(name, spec string, net topology.RingEmbedder, faults topology.FaultSet) (*Session, error) {
	s := &Session{
		name:    name,
		spec:    spec,
		net:     net,
		mgr:     m,
		patcher: repair.For(net),
		notify:  make(chan struct{}),
	}
	ring, info, err := s.patcher.Embed(faults)
	if err != nil {
		return nil, err
	}
	s.faults = faults
	s.ring = append([]int(nil), ring...)
	s.rounds = info.Rounds

	if m.store != nil {
		s.journal, err = m.store.Create(name)
		if err != nil {
			return nil, err
		}
	}
	now := time.Now().UTC()
	s.appendJournal(Event{
		Seq: 0, Time: now, Kind: "created",
		Name: name, Spec: spec, RepairVer: repairSemVer,
		FaultNodes: faults.Nodes, FaultEdges: encodeEdges(faults.Edges),
	})
	// The initial embed is not a repair decision; it is journaled and
	// published for watchers but stays out of the engine's
	// repair-vs-re-embed counters.
	embedEv := Event{
		Kind:       "embed",
		Repair:     "reembed",
		RingLength: len(s.ring),
		LowerBound: s.lowerBoundFor(faults),
		FaultCount: len(faults.Nodes) + len(faults.Edges),
		RingHash:   ringHash(s.ring),
	}
	s.mu.Lock()
	s.seq++
	embedEv.Seq = s.seq
	embedEv.Time = now
	s.stats.Events++
	s.publishLocked(embedEv)
	s.appendJournal(embedEv)
	s.mu.Unlock()
	return s, nil
}

// Get returns the named session.
func (m *Manager) Get(name string) (*Session, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[name]
	if s == nil {
		return nil, false
	}
	return s, ok
}

// List returns the live sessions sorted by name.
func (m *Manager) List() []*Session {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		if s != nil {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Delete closes the named session and removes its journal.
func (m *Manager) Delete(name string) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return fmt.Errorf("session: manager: %w", ErrClosed)
	}
	s, ok := m.sessions[name]
	if ok && s != nil {
		// A nil entry is an in-progress Create's name reservation; leave
		// it for that Create to resolve.
		delete(m.sessions, name)
	}
	m.mu.Unlock()
	if !ok || s == nil {
		return fmt.Errorf("session: no session %q", name)
	}
	s.mu.Lock()
	s.closeLocked(false)
	s.mu.Unlock()
	if m.store != nil {
		return m.store.Remove(name)
	}
	return nil
}

// Release closes the named session — journal flushed, synced and kept
// on disk — and removes it from the live set, without the final
// snapshot event (the journal stays byte-identical to what a reader
// already streamed).  It is the hand-off half of a rebalance: the old
// owner releases the session so its journal can be verified against
// the new owner's replay, and RestoreNamed can resurrect it from the
// same journal if the hand-off aborts.
func (m *Manager) Release(name string) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return fmt.Errorf("session: manager: %w", ErrClosed)
	}
	s, ok := m.sessions[name]
	if ok && s != nil {
		delete(m.sessions, name)
	}
	m.mu.Unlock()
	if !ok || s == nil {
		return fmt.Errorf("session: no session %q", name)
	}
	s.mu.Lock()
	s.closeLocked(false)
	s.mu.Unlock()
	return nil
}

// RestoreNamed restores one journal from the store into a live session
// — the single-session counterpart of Restore, used when a journal
// materialized after startup (a rebalance hand-off ingested through the
// replica stream, or an aborted hand-off resurrecting on the old
// owner).  The replay is the same deterministic, hash-verified path as
// Restore; an already-live session is returned as-is.
func (m *Manager) RestoreNamed(name string) (*Session, error) {
	if m.store == nil {
		return nil, fmt.Errorf("session: manager has no store")
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, fmt.Errorf("session: manager: %w", ErrClosed)
	}
	if s, ok := m.sessions[name]; ok && s != nil {
		m.mu.Unlock()
		return s, nil
	}
	m.mu.Unlock()
	s, err := m.restoreOne(name)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	m.mu.Lock()
	if live, ok := m.sessions[name]; ok && live != nil {
		// Lost a race with a concurrent restore; keep the winner.
		m.mu.Unlock()
		s.mu.Lock()
		s.closeLocked(false)
		s.mu.Unlock()
		return live, nil
	}
	m.sessions[name] = s
	m.mu.Unlock()
	return s, nil
}

// Close snapshots, flushes and syncs every session journal and marks
// the manager closed: subsequent Create/Delete calls and mutations on
// the closed sessions return an error wrapping ErrClosed instead of
// racing the released journal writers.  Journals stay on disk for the
// next Restore.
func (m *Manager) Close() {
	m.mu.Lock()
	m.closed = true
	sessions := make([]*Session, 0, len(m.sessions))
	//ringlint:allow maporder close fan-out order is immaterial
	for _, s := range m.sessions {
		if s != nil {
			sessions = append(sessions, s)
		}
	}
	m.mu.Unlock()
	for _, s := range sessions {
		s.mu.Lock()
		s.closeLocked(true)
		s.mu.Unlock()
	}
}

// Restore loads every journal in the manager's store, resuming each
// session at its exact pre-crash state: jump to the latest snapshot
// (ring + faults + patcher structure), then deterministically replay
// the fault events after it, verifying each recorded ring hash.  It
// returns the sessions restored; journals that fail to restore are
// reported in errs by session name and left untouched in the store.
func (m *Manager) Restore() (restored []*Session, errs []error) {
	if m.store == nil {
		return nil, nil
	}
	names, err := m.store.Names()
	if err != nil {
		return nil, []error{err}
	}
	for _, name := range names {
		m.mu.Lock()
		_, exists := m.sessions[name]
		m.mu.Unlock()
		if exists {
			continue // already live (restored earlier or just created)
		}
		s, err := m.restoreOne(name)
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", name, err))
			continue
		}
		m.mu.Lock()
		m.sessions[name] = s
		m.mu.Unlock()
		restored = append(restored, s)
	}
	return restored, errs
}

func (m *Manager) restoreOne(name string) (*Session, error) {
	events, err := m.store.Load(name)
	if err != nil {
		return nil, err
	}
	created := events[0]
	if created.Kind != "created" || created.Name != name {
		return nil, fmt.Errorf("journal does not begin with a matching created event")
	}
	// Replay re-runs the repair decisions, so a journal recorded under
	// different decision semantics can diverge mid-stream; surface the
	// version on any divergence so the failure is actionable instead of
	// a bare hash mismatch.
	semHint := ""
	if created.RepairVer != repairSemVer {
		semHint = fmt.Sprintf(" (journal recorded under repair semantics v%d, this build replays v%d: re-create the session, or replay with the recording build and snapshot)",
			created.RepairVer, repairSemVer)
	}
	net, err := topology.FromSpec(created.Spec)
	if err != nil {
		return nil, err
	}
	s := &Session{
		name:    name,
		spec:    created.Spec,
		net:     net,
		mgr:     m,
		patcher: repair.For(net),
		notify:  make(chan struct{}),
	}

	// Find the most recent snapshot to resume from; fall back to the
	// initial embed if a snapshot fails to restore.
	start := 0
	snap := -1
	for i, ev := range events {
		if ev.Kind == "snapshot" {
			snap = i
		}
	}
	if snap >= 0 {
		ev := events[snap]
		faults := topology.FaultSet{Nodes: ev.FaultNodes, Edges: decodeEdges(ev.FaultEdges)}.Canonical()
		snapOK := faults.Validate(net) == nil
		for _, v := range ev.Ring {
			if v < 0 || v >= net.Nodes() {
				snapOK = false
				break
			}
		}
		if !snapOK {
			// Corrupt snapshot payload (out-of-range components): fall
			// back to replay from creation rather than feed garbage to
			// the patcher.
			snap = -1
		} else if err := s.patcher.Restore(ev.Patcher, ev.Ring, faults); err == nil {
			s.faults = faults
			s.ring = append([]int(nil), ev.Ring...)
			s.seq = ev.Seq
			if ev.Stats != nil {
				s.stats = *ev.Stats
			}
			start = snap + 1
		} else {
			snap = -1
		}
	}
	if snap < 0 {
		// Replay from creation: re-run the initial embed.
		faults := topology.FaultSet{Nodes: created.FaultNodes, Edges: decodeEdges(created.FaultEdges)}.Canonical()
		ring, info, err := s.patcher.Embed(faults)
		if err != nil {
			return nil, fmt.Errorf("initial embed replay: %w", err)
		}
		s.faults = faults
		s.ring = append([]int(nil), ring...)
		s.rounds = info.Rounds
		start = 1
	}

	// Deterministically replay the fault events, verifying every hash.
	for _, ev := range events[start:] {
		switch ev.Kind {
		case "embed":
			if got := ringHash(s.ring); ev.RingHash != "" && got != ev.RingHash {
				return nil, fmt.Errorf("seq %d: replayed embed hash %s != journaled %s%s", ev.Seq, got, ev.RingHash, semHint)
			}
			s.seq = ev.Seq
			s.stats.Events++
		case "fault", "heal":
			batch := topology.FaultSet{Nodes: ev.AddNodes, Edges: decodeEdges(ev.AddEdges)}
			apply := s.applyFaultsLocked
			if ev.Kind == "heal" {
				batch = topology.FaultSet{Nodes: ev.RemoveNodes, Edges: decodeEdges(ev.RemoveEdges)}
				apply = s.applyHealLocked
			}
			if err := batch.Validate(net); err != nil {
				return nil, fmt.Errorf("seq %d: corrupt %s batch: %w", ev.Seq, ev.Kind, err)
			}
			got, err := apply(batch, false)
			if ev.Repair == "rejected" {
				if err == nil {
					return nil, fmt.Errorf("seq %d: journaled rejection replayed as %s%s", ev.Seq, got.Repair, semHint)
				}
			} else if err != nil {
				return nil, fmt.Errorf("seq %d: replay failed%s: %w", ev.Seq, semHint, err)
			}
			if got != nil && ev.RingHash != "" && got.RingHash != ev.RingHash {
				return nil, fmt.Errorf("seq %d: replayed ring hash %s != journaled %s%s", ev.Seq, got.RingHash, ev.RingHash, semHint)
			}
			s.seq = ev.Seq // keep the original numbering even across gaps
		case "snapshot":
			// Stale snapshot before the resume point, or one we skipped.
		}
	}

	s.journal, err = m.store.Open(name)
	if err != nil {
		return nil, err
	}
	return s, nil
}
