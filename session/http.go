package session

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"debruijnring/topology"
)

// Handler exposes a Manager over HTTP/JSON, mountable next to the
// ringsrv embedding endpoints:
//
//	POST   /v1/sessions                create {"name","topology","node_faults","edge_faults"}
//	GET    /v1/sessions                list summaries
//	GET    /v1/sessions/{name}         full state (?ring=false omits the ring)
//	DELETE /v1/sessions/{name}         close and remove (journal included)
//	POST   /v1/sessions/{name}/faults  absorb one fault batch
//	DELETE /v1/sessions/{name}/faults  re-admit one repaired batch (heal)
//	GET    /v1/sessions/{name}/watch   stream events: long-poll (?after=N&wait=30s)
//	                                   or SSE with Accept: text/event-stream
//	GET    /v1/sessions/{name}/trace   recent repair traces (?limit=N), newest-bounded
//
// Fault and heal responses carry the event's "repair" field naming the
// ladder tier that served it: "local" (structural surgery), "splice"
// (generic bypass repair after the structural tier declined), "reembed"
// (full recompute), "noop" or "rejected".  The session's Stats block
// counts the same tiers cumulatively.
func Handler(m *Manager) http.Handler {
	h := &handler{m: m}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", h.create)
	mux.HandleFunc("GET /v1/sessions", h.list)
	mux.HandleFunc("GET /v1/sessions/{name}", h.get)
	mux.HandleFunc("DELETE /v1/sessions/{name}", h.delete)
	mux.HandleFunc("POST /v1/sessions/{name}/faults", h.addFaults)
	mux.HandleFunc("DELETE /v1/sessions/{name}/faults", h.removeFaults)
	mux.HandleFunc("GET /v1/sessions/{name}/watch", h.watch)
	mux.HandleFunc("GET /v1/sessions/{name}/trace", h.trace)
	return mux
}

type handler struct{ m *Manager }

// EdgeJSON is a faulty link named by processor labels.
type EdgeJSON struct {
	From string `json:"from"`
	To   string `json:"to"`
}

// CreateRequest is the POST /v1/sessions payload.
type CreateRequest struct {
	Name       string     `json:"name"`
	Topology   string     `json:"topology"`
	NodeFaults []string   `json:"node_faults,omitempty"`
	EdgeFaults []EdgeJSON `json:"edge_faults,omitempty"`
}

// FaultsRequest is the POST /v1/sessions/{name}/faults payload.
type FaultsRequest struct {
	NodeFaults []string   `json:"node_faults,omitempty"`
	EdgeFaults []EdgeJSON `json:"edge_faults,omitempty"`
}

// StateJSON is the HTTP rendering of a session's state.  Ring nodes are
// labels (like every other endpoint); events carry raw node ids.
type StateJSON struct {
	Name       string   `json:"name"`
	Topology   string   `json:"topology"`
	Seq        uint64   `json:"seq"`
	Ring       []string `json:"ring,omitempty"`
	RingLength int      `json:"ring_length"`
	LowerBound int      `json:"lower_bound"`
	RingHash   string   `json:"ring_hash"`
	NodeFaults []string `json:"node_faults,omitempty"`
	EdgeFaults []EdgeJSON `json:"edge_faults,omitempty"`
	Stats      Stats    `json:"stats"`
}

// FaultsResponse pairs the absorbed event with the resulting summary.
type FaultsResponse struct {
	Event Event     `json:"event"`
	State StateJSON `json:"state"`
}

// WatchResponse is the long-poll result.
type WatchResponse struct {
	Events    []Event `json:"events"`
	Truncated bool    `json:"truncated,omitempty"` // refetch state; buffer evicted events
}

func (h *handler) stateJSON(s *Session, includeRing bool) StateJSON {
	st := s.StateSnapshot(includeRing)
	out := StateJSON{
		Name:       st.Name,
		Topology:   st.Spec,
		Seq:        st.Seq,
		RingLength: st.RingLength,
		LowerBound: st.LowerBound,
		RingHash:   st.RingHash,
		Stats:      st.Stats,
	}
	net := s.Network()
	if includeRing {
		out.Ring = make([]string, len(st.Ring))
		for i, v := range st.Ring {
			out.Ring[i] = net.Label(v)
		}
	}
	for _, v := range st.FaultNodes {
		out.NodeFaults = append(out.NodeFaults, net.Label(v))
	}
	for _, e := range st.FaultEdges {
		out.EdgeFaults = append(out.EdgeFaults, EdgeJSON{From: net.Label(e[0]), To: net.Label(e[1])})
	}
	return out
}

func (h *handler) create(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	net, err := parseTopology(req.Topology)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	faults, err := parseFaults(net, req.NodeFaults, req.EdgeFaults)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s, err := h.m.Create(req.Name, req.Topology, faults)
	if err != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(err, errSessionExists) {
			status = http.StatusConflict
		} else if !ValidName(req.Name) {
			status = http.StatusBadRequest
		}
		httpError(w, status, err)
		return
	}
	writeJSONStatus(w, http.StatusCreated, h.stateJSON(s, true))
}

func (h *handler) list(w http.ResponseWriter, r *http.Request) {
	sessions := h.m.List()
	out := make([]StateJSON, 0, len(sessions))
	for _, s := range sessions {
		out = append(out, h.stateJSON(s, false))
	}
	writeJSON(w, out)
}

func (h *handler) session(w http.ResponseWriter, r *http.Request) (*Session, bool) {
	name := r.PathValue("name")
	s, ok := h.m.Get(name)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no session %q", name))
		return nil, false
	}
	return s, true
}

func (h *handler) get(w http.ResponseWriter, r *http.Request) {
	s, ok := h.session(w, r)
	if !ok {
		return
	}
	includeRing := r.URL.Query().Get("ring") != "false"
	writeJSON(w, h.stateJSON(s, includeRing))
}

func (h *handler) delete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := h.m.Delete(name); err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (h *handler) addFaults(w http.ResponseWriter, r *http.Request) {
	h.applyFaults(w, r, (*Session).AddFaults)
}

// removeFaults serves the heal direction: DELETE …/faults re-admits the
// batch named in the body (the same shape POST absorbs).
func (h *handler) removeFaults(w http.ResponseWriter, r *http.Request) {
	h.applyFaults(w, r, (*Session).RemoveFaults)
}

func (h *handler) applyFaults(w http.ResponseWriter, r *http.Request, apply func(*Session, topology.FaultSet) (*Event, error)) {
	s, ok := h.session(w, r)
	if !ok {
		return
	}
	var req FaultsRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	faults, err := parseFaults(s.Network(), req.NodeFaults, req.EdgeFaults)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	ev, err := apply(s, faults)
	if err != nil {
		if ev == nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		// The batch was rejected (journaled); report it with the error.
		writeJSONStatus(w, http.StatusUnprocessableEntity,
			FaultsResponse{Event: *ev, State: h.stateJSON(s, false)})
		return
	}
	writeJSON(w, FaultsResponse{Event: *ev, State: h.stateJSON(s, false)})
}

// TraceResponse is the GET /v1/sessions/{name}/trace payload: the
// session's retained repair traces, oldest first.
type TraceResponse struct {
	Name    string        `json:"name"`
	Records []TraceRecord `json:"records"`
}

// trace serves the session's retained per-event repair traces: tier
// descents with outcomes, touched-structure counts and latencies.
// ?limit=N bounds the result to the N most recent records.
func (h *handler) trace(w http.ResponseWriter, r *http.Request) {
	s, ok := h.session(w, r)
	if !ok {
		return
	}
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", v))
			return
		}
		limit = n
	}
	recs := s.Traces(limit)
	if recs == nil {
		recs = []TraceRecord{}
	}
	writeJSON(w, TraceResponse{Name: s.Name(), Records: recs})
}

// maxWatchWait caps one long-poll (clients re-issue the request).
const maxWatchWait = 5 * time.Minute

func (h *handler) watch(w http.ResponseWriter, r *http.Request) {
	s, ok := h.session(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	after, _ := strconv.ParseUint(q.Get("after"), 10, 64)
	wait := 25 * time.Second
	if v := q.Get("wait"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad wait %q: %w", v, err))
			return
		}
		wait = d
	}
	if wait > maxWatchWait {
		wait = maxWatchWait
	}

	if r.Header.Get("Accept") == "text/event-stream" || q.Get("stream") == "sse" {
		h.watchSSE(w, r, s, after)
		return
	}
	evs, truncated := s.EventsSince(after, wait, r.Context().Done())
	writeJSON(w, WatchResponse{Events: evs, Truncated: truncated})
}

// watchSSE streams ring deltas as Server-Sent Events until the client
// disconnects.
func (h *handler) watchSSE(w http.ResponseWriter, r *http.Request, s *Session, after uint64) {
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusNotImplemented, errors.New("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	enc := json.NewEncoder(w)
	for {
		evs, truncated := s.EventsSince(after, 25*time.Second, r.Context().Done())
		if r.Context().Err() != nil {
			return
		}
		if truncated {
			fmt.Fprintf(w, "event: truncated\ndata: {\"after\":%d}\n\n", after)
		}
		if len(evs) == 0 {
			if s.IsClosed() {
				// Deleted or shut down: end the stream instead of
				// spinning on the now non-blocking EventsSince.
				fmt.Fprint(w, "event: closed\ndata: {}\n\n")
				fl.Flush()
				return
			}
			// Keep-alive comment so proxies do not drop the stream.
			fmt.Fprint(w, ": keep-alive\n\n")
			fl.Flush()
			continue
		}
		for _, ev := range evs {
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: ", ev.Seq, ev.Kind)
			enc.Encode(ev) // Encode terminates with \n
			fmt.Fprint(w, "\n")
			after = ev.Seq
		}
		fl.Flush()
	}
}

func parseTopology(spec string) (topology.RingEmbedder, error) {
	if spec == "" {
		return nil, errors.New("missing topology spec")
	}
	return topology.FromSpec(spec)
}

func parseFaults(net topology.Network, nodes []string, edges []EdgeJSON) (topology.FaultSet, error) {
	pairs := make([][2]string, len(edges))
	for i, e := range edges {
		pairs[i] = [2]string{e.From, e.To}
	}
	return topology.ParseFaults(net, nodes, pairs)
}

func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// writeJSONStatus writes a JSON body under a non-200 status; the header
// must be set before WriteHeader or net/http drops it.
func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
