package session

import (
	"errors"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
)

// Store abstracts where a Manager persists session journals, separating
// the session state machine from process-local storage.  The default
// implementation is DirStore (one JSONL file per session under a local
// directory); the fleet package wraps a Store to tee every append to a
// replica shard over HTTP, which is what makes shard failover restore
// sessions hot.
//
// A Store must tolerate concurrent use from different sessions; appends
// within one session are serialized by the session's own lock.  Open and
// Load report a missing journal with an error satisfying
// errors.Is(err, fs.ErrNotExist).
type Store interface {
	// Create opens a fresh journal for a new session; an existing
	// journal under the same name is an error (a crashed predecessor
	// that Restore would have loaded).
	Create(name string) (JournalWriter, error)
	// Open reopens an existing journal for appending (after Restore).
	Open(name string) (JournalWriter, error)
	// Load reads every well-formed event of the named journal, in order.
	Load(name string) ([]Event, error)
	// Names lists the sessions with a journal, sorted.
	Names() ([]string, error)
	// Remove deletes the named journal; removing a journal that does not
	// exist is not an error.
	Remove(name string) error
}

// JournalWriter is one session's append handle into a Store.  Append
// must make the event durable against process death before returning
// (acknowledged events are the replay contract); Sync additionally
// forces it to stable storage.  Close flushes, syncs and releases the
// handle.
type JournalWriter interface {
	Append(ev Event) error
	Sync() error
	Close() error
}

// DirStore is the process-local Store: one JSONL journal file per
// session in a directory, created on demand.
type DirStore struct {
	dir string
}

// NewDirStore returns a Store journaling into dir (created lazily on
// the first Create).
func NewDirStore(dir string) *DirStore { return &DirStore{dir: dir} }

// Dir returns the journal directory.
func (s *DirStore) Dir() string { return s.dir }

// Create opens a fresh journal file for the named session.
func (s *DirStore) Create(name string) (JournalWriter, error) {
	return createJournal(s.dir, name)
}

// Open reopens an existing journal file for appending.
func (s *DirStore) Open(name string) (JournalWriter, error) {
	return openJournal(s.dir, name)
}

// Load reads the named journal; a torn trailing line is tolerated.
func (s *DirStore) Load(name string) ([]Event, error) {
	return readJournal(journalPath(s.dir, name))
}

// Names lists the sessions with a journal file, sorted.
func (s *DirStore) Names() ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(s.dir, "*"+journalExt))
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(paths))
	for _, p := range paths {
		names = append(names, strings.TrimSuffix(filepath.Base(p), journalExt))
	}
	sort.Strings(names)
	return names, nil
}

// Remove deletes the named journal file if it exists.
func (s *DirStore) Remove(name string) error {
	err := removeJournal(s.dir, name)
	if err != nil && errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	return err
}
