package session

import (
	"time"

	"debruijnring/internal/repair"
)

// TierTrace is one repair tier's attempt inside a fault/heal event:
// which rung of the FFC → splice → re-embed ladder ran, how it
// answered, how much structure it touched (stars re-closed for the
// structural tier, arcs/insertions for the splice tier) and how long
// it took.  Events carry the full descent, so a re-embed event still
// shows which tiers declined first (and how much time they burned).
type TierTrace struct {
	Tier      string `json:"tier"`    // "ffc", "splice" or "reembed"
	Outcome   string `json:"outcome"` // repair.Outcome string; "ok"/"error" for reembed
	Touched   int    `json:"touched,omitempty"`
	ElapsedNs int64  `json:"elapsed_ns"`
}

// tierTraces converts the patcher's last tier ladder, when the patcher
// records one.  Must be called immediately after Patch/Unpatch — the
// next patcher call invalidates the underlying steps.
func tierTraces(p repair.Patcher) []TierTrace {
	tr, ok := p.(repair.Tracer)
	if !ok {
		return nil
	}
	steps := tr.LastTrace()
	if len(steps) == 0 {
		return nil
	}
	out := make([]TierTrace, len(steps))
	for i, st := range steps {
		out[i] = TierTrace{
			Tier:      st.Tier,
			Outcome:   st.Outcome.String(),
			Touched:   st.Touched,
			ElapsedNs: st.Elapsed.Nanoseconds(),
		}
	}
	return out
}

// TraceRecord is one retained per-session repair trace: the journal
// outcome of a fault/heal event plus its tier descent.  Sessions keep
// a bounded ring of the most recent records (Options.TraceBuffer),
// served by GET /v1/sessions/{name}/trace.
type TraceRecord struct {
	Seq        uint64      `json:"seq"`
	Time       time.Time   `json:"time"`
	Kind       string      `json:"kind"`   // "fault" or "heal"
	Repair     string      `json:"repair"` // journal outcome: local/splice/reembed/noop/rejected
	Tiers      []TierTrace `json:"tiers,omitempty"`
	RingLength int         `json:"ring_length"`
	FaultCount int         `json:"fault_count"`
	ElapsedNs  int64       `json:"elapsed_ns"`
	Error      string      `json:"error,omitempty"`
}

// recordTraceLocked retains one event's trace in the session's bounded
// buffer.  Only live events are retained (journal replay rebuilds
// rings, not observability history).
func (s *Session) recordTraceLocked(ev *Event) {
	limit := s.mgr.opts.TraceBuffer
	if limit <= 0 {
		return
	}
	if len(s.traces) >= limit {
		s.traces = append(s.traces[:0], s.traces[len(s.traces)-limit+1:]...)
	}
	s.traces = append(s.traces, TraceRecord{
		Seq:        ev.Seq,
		Time:       ev.Time,
		Kind:       ev.Kind,
		Repair:     ev.Repair,
		Tiers:      ev.Tiers,
		RingLength: ev.RingLength,
		FaultCount: ev.FaultCount,
		ElapsedNs:  ev.ElapsedNs,
		Error:      ev.Error,
	})
}

// Traces returns the most recent retained trace records, oldest first.
// limit <= 0 returns every retained record.
func (s *Session) Traces(limit int) []TraceRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	recs := s.traces
	if limit > 0 && len(recs) > limit {
		recs = recs[len(recs)-limit:]
	}
	return append([]TraceRecord(nil), recs...)
}
