// Node-fault scenario at scale: the paper's Chapter 2 comparison, served
// as one concurrent batch through the topology-generic engine.
//
// A 4096-processor De Bruijn network B(4,6) loses two processors; the
// FFC algorithm re-forms a ring of ≥ 4084 machines.  The same failure
// count in a 4096-node hypercube — which spends 50% more links — yields
// a ring of 4092 by the cited [WC92, CL91a] construction, and the
// shuffle-exchange network SE(4,6) carries the De Bruijn ring with
// dilation 2.  All three requests flow through the single EmbedRing
// codepath of the Network interface; the duplicated De Bruijn request
// is answered from the cache.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"

	"debruijnring"
	"debruijnring/engine"
	"debruijnring/topology"
)

func main() {
	g, err := debruijnring.New(4, 6)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1991, 12))
	faults := topology.NodeFaults(rng.IntN(g.Nodes()), rng.IntN(g.Nodes()))
	fmt.Printf("B(4,6): %d processors, %d links; failing %s and %s\n",
		g.Nodes(), g.Edges(), g.Label(faults.Nodes[0]), g.Label(faults.Nodes[1]))

	// One batch, three topologies, one codepath — plus a repeat of the
	// De Bruijn request to show the cache at work.
	eng := engine.New(engine.Options{})
	results := eng.EmbedBatch(context.Background(), []engine.Request{
		{Network: g.Network(), Faults: faults},
		{Spec: "hypercube(12)", Faults: faults},
		{Spec: "shuffleexchange(4,6)", Faults: faults},
		{Network: g.Network(), Faults: faults},
	})
	for _, res := range results {
		if res.Err != nil {
			log.Fatal(res.Err)
		}
		s := res.Stats
		fmt.Printf("%-22s ring %4d (bound %4d, dilation %d, cache hit %v)\n",
			s.Topology+":", s.RingLength, s.LowerBound, s.Dilation, s.CacheHit)
	}

	// The distributed run: the same embedding computed by the network
	// itself in Θ(n) synchronous rounds.
	_, dstats, err := g.EmbedRingDistributed(faults.Nodes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed run: %d synchronous rounds (%d of them broadcast), %d messages\n",
		dstats.Rounds, dstats.BroadcastRound, dstats.Messages)

	fmt.Printf("=> B(4,6) uses %d links against Q_12's %d for rings within %d processors of each other\n",
		g.Edges(), debruijnring.HypercubeEdges(12), results[1].Stats.RingLength-results[0].Stats.RingLength)
}
