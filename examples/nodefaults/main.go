// Node-fault scenario at scale: the paper's Chapter 2 comparison.
//
// A 4096-processor De Bruijn network B(4,6) loses two processors.  The
// distributed FFC algorithm re-forms a ring of ≥ 4084 machines in Θ(n)
// communication rounds.  The same failure count in a 4096-node hypercube —
// which spends 50% more links — yields a ring of 4092 by the cited
// [WC92, CL91a] construction, which this repository also implements.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"debruijnring"
)

func main() {
	g, err := debruijnring.New(4, 6)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1991, 12))
	faults := []int{rng.IntN(g.Nodes()), rng.IntN(g.Nodes())}
	fmt.Printf("B(4,6): %d processors, %d links; failing %s and %s\n",
		g.Nodes(), g.Edges(), g.Label(faults[0]), g.Label(faults[1]))

	// Centralized embedding with its guarantee.
	ring, stats, err := g.EmbedRing(faults)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("De Bruijn ring: %d processors (bound dⁿ−nf = %d, lost %d to faulty necklaces)\n",
		ring.Len(), stats.LowerBound, stats.FaultyNecklaceNodes)

	// The same embedding computed by the network itself.
	_, dstats, err := g.EmbedRingDistributed(faults)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed run: %d synchronous rounds (%d of them broadcast), %d messages\n",
		dstats.Rounds, dstats.BroadcastRound, dstats.Messages)

	// Hypercube baseline on the same failure count.
	hc, err := debruijnring.HypercubeRing(12, faults)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hypercube Q_12 baseline: ring of %d processors using %d links (vs %d)\n",
		len(hc), debruijnring.HypercubeEdges(12), g.Edges())
	fmt.Printf("=> the De Bruijn network stays within %d processors of the hypercube\n",
		len(hc)-ring.Len())
}
