// Butterfly scenario (§3.4): the De Bruijn ring machinery transfers to
// wrapped butterfly networks whenever gcd(d,n) = 1.
//
// F(3,4) has 4·3⁴ = 324 processors in 4 levels.  The Φ map lifts De Bruijn
// Hamiltonian cycles to butterfly Hamiltonian cycles, carrying both the
// disjoint-family result (Proposition 3.6) and the link-fault tolerance
// (Proposition 3.5) across.
package main

import (
	"context"
	"fmt"
	"log"

	"debruijnring"
	"debruijnring/engine"
	"debruijnring/topology"
)

func main() {
	const d, n = 3, 4
	f, err := debruijnring.NewButterfly(d, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("butterfly F(%d,%d): %d processors (%d levels × %d columns)\n",
		d, n, f.Nodes(), n, f.Nodes()/n)

	rings, err := f.DisjointHamiltonianCycles()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ψ(%d) = %d edge-disjoint Hamiltonian rings, each of length %d\n",
		d, len(rings), rings[0].Len())
	fmt.Printf("ring 0 starts: %s → %s → %s → %s → …\n",
		f.Label(rings[0].Nodes[0]), f.Label(rings[0].Nodes[1]),
		f.Label(rings[0].Nodes[2]), f.Label(rings[0].Nodes[3]))

	// Fail one link of ring 0 and re-embed, through the same engine
	// codepath that serves every other topology.
	bad := debruijnring.Edge{From: rings[0].Nodes[10], To: rings[0].Nodes[11]}
	fmt.Printf("failing link %s → %s\n", f.Label(bad.From), f.Label(bad.To))
	eng := engine.New(engine.Options{})
	res, err := eng.EmbedRing(context.Background(), engine.Request{
		Network: f.Network(),
		Faults:  topology.EdgeFaults(bad),
	})
	if err != nil {
		log.Fatal(err)
	}
	if !topology.VerifyHamiltonian(f.Network(), res.Ring, topology.EdgeFaults(bad)) {
		log.Fatal("verification failed")
	}
	fmt.Printf("re-embedded a Hamiltonian ring of %d processors avoiding the failed link\n",
		res.Stats.RingLength)
}
