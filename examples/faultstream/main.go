// Online fault streams: the paper's actual operating regime.  Faults do
// not arrive as one batch — processors die one after another while the
// ring keeps carrying traffic, and repaired processors come back.  A
// session absorbs each transition as it happens: a local repair splices
// the dead necklace out of the live ring along surviving shift-edges
// (O(touched stars) work), a heal re-expands the repaired necklace so
// the ring grows back, falling back to a full FFC re-embed only when
// the patch fails or the paper's f ≤ n tolerance is exceeded.  Every
// transition lands in an append-only journal, so a crashed server
// resumes the session with an identical ring.
//
// The same stream can be driven against a running server:
//
//	ringsrv -addr :8080 -journal /tmp/rings &
//	chaos -server http://localhost:8080 -topology 'debruijn(2,10)' \
//	      -events 10 -seed 1991 -record trace.json
//
// cmd/chaos prints the per-event repair-vs-recompute latency and the
// ring-length degradation curve, and the recorded trace.json replays
// byte-identically with -replay.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"os"

	"debruijnring/engine"
	"debruijnring/session"
	"debruijnring/topology"
)

func main() {
	dir, err := os.MkdirTemp("", "faultstream")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// The session manager journals every transition under dir and feeds
	// repair outcomes into the engine's /v1/stats counters.
	eng := engine.New(engine.Options{})
	mgr := session.NewManager(eng, session.Options{Dir: dir})
	s, err := mgr.Create("demo", "debruijn(2,10)", topology.FaultSet{})
	if err != nil {
		log.Fatal(err)
	}
	net := s.Network()
	fmt.Printf("B(2,10): initial ring spans all %d processors\n", net.Nodes())

	// Ten processors fail one at a time — the paper's f ≤ n bound for
	// n = 10.  Watch the ring shrink necklace by necklace while every
	// event stays within the dⁿ − nf guarantee.
	rng := rand.New(rand.NewPCG(19, 91))
	var failed []int
	for i := 1; i <= 10; i++ {
		x := rng.IntN(net.Nodes())
		ev, err := s.AddFaults(topology.NodeFaults(x))
		if err != nil {
			log.Fatal(err)
		}
		failed = append(failed, x)
		fmt.Printf("fault %2d at %s: %-7s ring %4d (bound %4d, -%d nodes)\n",
			i, net.Label(x), ev.Repair, ev.RingLength, ev.LowerBound, len(ev.Removed))
	}

	// The lifecycle is bidirectional: repair crews bring half of them
	// back, and each heal re-expands the necklace into the live ring —
	// the bound rises with the shrinking fault count.
	for i, x := range failed[:5] {
		ev, err := s.RemoveFaults(topology.NodeFaults(x))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("heal  %2d at %s: %-7s ring %4d (bound %4d, +%d nodes)\n",
			i+1, net.Label(x), ev.Repair, ev.RingLength, ev.LowerBound, len(ev.Added))
	}

	stats := eng.Stats().Sessions
	fmt.Printf("=> %d local repairs, %d re-embeds (patch hit rate %.0f%%); %d local heals (unpatch hit rate %.0f%%)\n",
		stats.LocalRepairs, stats.Reembeds, 100*stats.PatchHitRate,
		stats.LocalHeals, 100*stats.UnpatchHitRate)

	// Kill-and-restore: a second manager pointed at the same journal
	// directory replays the stream to the identical ring.
	mgr.Close()
	mgr2 := session.NewManager(engine.New(engine.Options{}), session.Options{Dir: dir})
	restored, errs := mgr2.Restore()
	if len(errs) > 0 {
		log.Fatal(errs[0])
	}
	s2 := restored[0]
	a, b := s.StateSnapshot(false), s2.StateSnapshot(false)
	fmt.Printf("restored %q from its journal: ring hash %s == %s: %v\n",
		s2.Name(), b.RingHash, a.RingHash, a.RingHash == b.RingHash)
}
