// Broadcast scenario: why disjoint Hamiltonian cycles pay off even without
// faults (the Chapter 3 motivation, after [LS90]).
//
// Every processor broadcasts a message to all others by pipelining around
// a ring.  With t edge-disjoint rings each message is split into t
// submessages travelling in parallel on different links, cutting the
// completion time by a factor of t under a length-proportional cost model.
package main

import (
	"fmt"
	"log"

	"debruijnring"
)

func main() {
	g, err := debruijnring.New(4, 2) // 16 processors, ψ(4) = 3 rings
	if err != nil {
		log.Fatal(err)
	}
	rings, err := g.DisjointHamiltonianCycles()
	if err != nil {
		log.Fatal(err)
	}
	const msgSize = 12
	fmt.Printf("B(4,2): %d processors, all-to-all broadcast of %d-unit messages\n", g.Nodes(), msgSize)

	for _, t := range []int{1, 3} {
		res, err := g.AllToAllBroadcast(rings[:t], msgSize)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d ring(s): %d pipeline steps × %d units/link = %d time units (peak link load %d)\n",
			res.Rings, res.Steps, res.MaxLinkLoad, res.TimeUnits, res.MaxLinkLoad)
	}
	fmt.Println("=> splitting across the ψ(d) disjoint rings gives a ψ(d)× speedup")
}
