// Quickstart: embed a fault-free ring through the topology-generic
// engine.
//
// This walks the worked example of the paper (Example 2.1): processors
// 020 and 112 fail in the 27-node De Bruijn network B(3,3), and the
// remaining machines are rewired into a 21-processor ring without any
// routing through dead hardware.  The request goes through the same
// Network-interface codepath that serves Kautz, shuffle-exchange,
// butterfly and hypercube networks, so repeating it (here: the same
// faults in a different order) is answered from the engine's cache.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"debruijnring/engine"
	"debruijnring/topology"
)

func main() {
	// A 3-ary De Bruijn network with 3³ = 27 processors.
	net, err := topology.FromSpec("debruijn(3,3)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network %s: %d processors\n", net.Name(), net.Nodes())

	// Two processors fail.
	a, _ := net.Parse("020")
	b, _ := net.Parse("112")
	faults := topology.NodeFaults(a, b)

	// Embed the ring.  With f ≤ d−2 failures the ring is guaranteed to
	// reach at least dⁿ − n·f = 27 − 6 = 21 processors.
	eng := engine.New(engine.Options{})
	res, err := eng.EmbedRing(context.Background(), engine.Request{Network: net, Faults: faults})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ring length %d (guaranteed ≥ %d), %d broadcast rounds\n",
		res.Stats.RingLength, res.Stats.LowerBound, res.Stats.Rounds)

	labels := make([]string, len(res.Ring))
	for i, v := range res.Ring {
		labels[i] = net.Label(v)
	}
	fmt.Println("ring:", strings.Join(labels, " → "))

	// One shared verification codepath covers every topology.
	if !topology.VerifyRing(net, res.Ring, faults) {
		log.Fatal("verification failed")
	}
	fmt.Println("verified: every hop is a physical link, no faulty processor used")

	// The same request again — same fault set, different order — is a
	// cache hit keyed by (topology, canonicalized fault set).
	again, err := eng.EmbedRing(context.Background(), engine.Request{
		Network: net, Faults: topology.NodeFaults(b, a),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repeat request: cache hit = %v (%d hits, %d misses)\n",
		again.Stats.CacheHit, eng.CacheStats().Hits, eng.CacheStats().Misses)
}
