// Quickstart: embed a fault-free ring in a small De Bruijn network.
//
// This walks the worked example of the paper (Example 2.1): processors 020
// and 112 fail in the 27-node network B(3,3), and the remaining machines
// are rewired into a 21-processor ring without any routing through dead
// hardware.
package main

import (
	"fmt"
	"log"
	"strings"

	"debruijnring"
)

func main() {
	// A 3-ary De Bruijn network with 3³ = 27 processors.
	g, err := debruijnring.New(3, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network B(3,3): %d processors, %d links\n", g.Nodes(), g.Edges())

	// Two processors fail.
	a, _ := g.Node("020")
	b, _ := g.Node("112")
	faults := []int{a, b}

	// Embed the ring.  With f ≤ d−2 failures the ring is guaranteed to
	// reach at least dⁿ − n·f = 27 − 6 = 21 processors.
	ring, stats, err := g.EmbedRing(faults)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ring length %d (guaranteed ≥ %d), eccentricity %d\n",
		ring.Len(), stats.LowerBound, stats.Eccentricity)

	labels := make([]string, ring.Len())
	for i, v := range ring.Nodes {
		labels[i] = g.Label(v)
	}
	fmt.Println("ring:", strings.Join(labels, " → "))

	if !g.Verify(ring, faults) {
		log.Fatal("verification failed")
	}
	fmt.Println("verified: every hop is a physical link, no faulty processor used")
}
