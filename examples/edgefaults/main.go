// Link-fault scenario: disjoint Hamiltonian cycles and ring re-embedding
// after link failures (Chapter 3).
//
// B(8,2) carries ψ(8) = 7 pairwise edge-disjoint Hamiltonian rings — the
// optimum, since some processors have only 7 usable out-links.  Any 6 link
// failures therefore leave one ring untouched; and even when an adversary
// concentrates the damage, the constructive Proposition 3.3/3.4 embedding
// re-forms a full Hamiltonian ring under up to MAX{ψ−1, φ} = 6 failures.
package main

import (
	"fmt"
	"log"

	"debruijnring"
	"debruijnring/topology"
)

func main() {
	const d, n = 8, 2
	g, err := debruijnring.New(d, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("B(%d,%d): %d processors; ψ(%d) = %d disjoint Hamiltonian rings, tolerance %d link faults\n",
		d, n, g.Nodes(), d, debruijnring.Psi(d), debruijnring.MaxTolerableEdgeFaults(d))

	rings, err := g.DisjointHamiltonianCycles()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %d rings; ring 0 as a De Bruijn sequence: %v…\n",
		len(rings), g.DeBruijnSequence(rings[0])[:16])

	// Adversary: cut 6 of the links used by ring 0, all incident to one
	// processor's neighbourhood.
	var faults []debruijnring.Edge
	for i := 0; i < len(rings[0].Nodes) && len(faults) < debruijnring.MaxTolerableEdgeFaults(d); i += 9 {
		from := rings[0].Nodes[i]
		to := rings[0].Nodes[(i+1)%len(rings[0].Nodes)]
		faults = append(faults, debruijnring.Edge{From: from, To: to})
	}
	fmt.Printf("failing %d links used by ring 0:", len(faults))
	for _, e := range faults {
		fmt.Printf(" %s→%s", g.Label(e.From), g.Label(e.To))
	}
	fmt.Println()

	// The unified fault-set surface: the same EmbedRing codepath that
	// serves node faults dispatches link faults to the §3 construction.
	ring, info, err := g.EmbedRingFaults(topology.EdgeFaults(faults...))
	if err != nil {
		log.Fatal(err)
	}
	if !topology.VerifyHamiltonian(g.Network(), ring.Nodes, topology.EdgeFaults(faults...)) {
		log.Fatal("verification failed")
	}
	fmt.Printf("re-embedded a full Hamiltonian ring of %d processors (guaranteed %d) avoiding all failed links\n",
		ring.Len(), info.LowerBound)
}
