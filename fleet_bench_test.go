package debruijnring

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"strings"
	"sync"
	"testing"
	"time"

	"debruijnring/fleet"
	"debruijnring/obs"
	"debruijnring/session"
)

// TestFleetShardProcess is the shard subprocess body for the fleet
// benchmarks: each shard runs as its own OS process pinned to one core
// (GOMAXPROCS=1), modeling one machine of a fleet, so the aggregate
// throughput numbers measure horizontal scaling rather than goroutine
// scheduling inside a single runtime.
func TestFleetShardProcess(t *testing.T) {
	if os.Getenv("FLEET_SHARD_HELPER") != "1" {
		t.Skip("helper-process body; spawned by the fleet benchmarks")
	}
	shard, err := fleet.NewShard(fleet.ShardConfig{
		JournalDir:  os.Getenv("FLEET_SHARD_JOURNAL"),
		ReplicateTo: os.Getenv("FLEET_SHARD_REPLICATE_TO"),
		Standby:     os.Getenv("FLEET_SHARD_STANDBY") == "1",
	})
	if err != nil {
		fmt.Printf("SHARD_ERR=%v\n", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Printf("SHARD_ERR=%v\n", err)
		os.Exit(1)
	}
	fmt.Printf("SHARD_ADDR=http://%s\n", ln.Addr())
	http.Serve(ln, shard.Handler())
}

// startBenchShard launches one single-core shard process and returns
// its base URL.
func startBenchShard(b *testing.B, journal, replicateTo string, standby bool) string {
	b.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestFleetShardProcess$")
	cmd.Env = append(os.Environ(),
		"GOMAXPROCS=1",
		"FLEET_SHARD_HELPER=1",
		"FLEET_SHARD_JOURNAL="+journal,
		"FLEET_SHARD_REPLICATE_TO="+replicateTo,
	)
	if standby {
		cmd.Env = append(cmd.Env, "FLEET_SHARD_STANDBY=1")
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		b.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	addr := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if v, ok := strings.CutPrefix(sc.Text(), "SHARD_ADDR="); ok {
				addr <- v
				break
			}
			if v, ok := strings.CutPrefix(sc.Text(), "SHARD_ERR="); ok {
				addr <- "ERR:" + v
				break
			}
		}
		io.Copy(io.Discard, stdout)
	}()
	select {
	case v := <-addr:
		if strings.HasPrefix(v, "ERR:") {
			b.Fatalf("shard process failed: %s", v[4:])
		}
		return v
	case <-time.After(30 * time.Second):
		b.Fatal("shard process never announced its address")
		return ""
	}
}

// setupBenchSessions creates the benchmark's session population and
// returns its names and per-session fault labels.
func setupBenchSessions(b *testing.B, c *session.Client, sessionsN int) (names, labels []string) {
	b.Helper()
	ctx := context.Background()
	names = make([]string, sessionsN)
	labels = make([]string, sessionsN)
	for i := range names {
		names[i] = fmt.Sprintf("bench-%02d", i)
		st, err := c.Create(ctx, session.CreateRequest{Name: names[i], Topology: "debruijn(2,8)"})
		if err != nil {
			b.Fatal(err)
		}
		labels[i] = st.Ring[1]
	}
	return names, labels
}

// sessionRound runs one traffic round: every session concurrently
// absorbs a fault and heals it (2×sessions events per round).
func sessionRound(b *testing.B, c *session.Client, names, labels []string) {
	b.Helper()
	ctx := context.Background()
	var wg sync.WaitGroup
	errc := make(chan error, len(names))
	for j := range names {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := session.FaultsRequest{NodeFaults: []string{labels[j]}}
			if _, err := c.AddFaults(ctx, names[j], req); err != nil {
				errc <- err
				return
			}
			if _, err := c.RemoveFaults(ctx, names[j], req); err != nil {
				errc <- err
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errc:
		b.Fatal(err)
	default:
	}
}

// benchSessionRounds measures the fleet's session-stream throughput
// against a base URL (a shard directly, or a router fronting several).
// One op is one round (2×sessions events/op), the steady-state traffic
// shape of a fault-evolving fleet.  Comparing ns/op between the
// single-shard and 3-shard benchmarks therefore reads directly as
// horizontal scaling.
func benchSessionRounds(b *testing.B, base string, sessionsN int) {
	c := &session.Client{Base: base}
	names, labels := setupBenchSessions(b, c, sessionsN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sessionRound(b, c, names, labels)
	}
}

// BenchmarkShardSessionRound is the single-process baseline: 64
// sessions streaming fault/heal rounds into one single-core shard.
func BenchmarkShardSessionRound(b *testing.B) {
	base := startBenchShard(b, b.TempDir(), "", false)
	benchSessionRounds(b, base, 64)
}

// BenchmarkFleetSessionRound drives the same 64-session round through
// the consistent-hash router into three single-core shards, each
// synchronously replicating its journal to a single-core standby — the
// full durability tax included.  Read it against ShardSessionRound:
// with at least one core per shard process the ratio measures
// horizontal scaling (the fleet bar is ≥2× the baseline's throughput,
// i.e. ≤½ its ns/op); on a host with fewer cores than shards the
// processes time-share and the ratio instead prices the fleet's
// routing-plus-replication tax per round.
func BenchmarkFleetSessionRound(b *testing.B) {
	groups := make([]fleet.ShardGroup, 3)
	for i := range groups {
		replica := startBenchShard(b, b.TempDir(), "", true)
		primary := startBenchShard(b, b.TempDir(), replica, false)
		groups[i] = fleet.ShardGroup{Name: fmt.Sprintf("g%d", i), Primary: primary, Replica: replica}
	}
	rt, err := fleet.NewRouter(groups, fleet.RouterOptions{CheckInterval: time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	rts := httptest.NewServer(rt)
	defer rts.Close()
	benchSessionRounds(b, rts.URL, 64)
}

// BenchmarkFleetRebalance prices the fleet's live-membership path: the
// same 64-session rounds through the router into two shards, with a
// third shard joining mid-measurement.  The rounds overlapping the
// drain/hand-off/verify window ride the 503-retry choreography, so
// ns/op reads as events-throughput during a rebalance (against
// FleetSessionRound as the undisturbed baseline); drainretries/op
// reports how much of the traffic the drain actually touched.
func BenchmarkFleetRebalance(b *testing.B) {
	groups := make([]fleet.ShardGroup, 2)
	for i := range groups {
		groups[i] = fleet.ShardGroup{
			Name:    fmt.Sprintf("g%d", i),
			Primary: startBenchShard(b, b.TempDir(), "", false),
		}
	}
	rt, err := fleet.NewRouter(groups, fleet.RouterOptions{CheckInterval: time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	rts := httptest.NewServer(rt)
	defer rts.Close()
	joining := startBenchShard(b, b.TempDir(), "", false)

	// The retry budget must outlast the drain window, or rounds
	// overlapping the hand-off fail instead of riding it.
	c := &session.Client{Base: rts.URL, MaxAttempts: 20, RetryBase: 10 * time.Millisecond, RetryCap: 100 * time.Millisecond,
		Metrics: obs.NewRegistry()}
	names, labels := setupBenchSessions(b, c, 64)

	added := make(chan error, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i == 0 {
			go func() {
				added <- rt.AddShard(fleet.ShardGroup{Name: "g-join", Primary: joining})
			}()
		}
		sessionRound(b, c, names, labels)
	}
	b.StopTimer()
	if err := <-added; err != nil {
		b.Fatal(err)
	}
	drains := c.Metrics.Snapshot().Counters[obs.Key("session_client_retries_total", "kind", "drain")]
	b.ReportMetric(float64(drains)/float64(b.N), "drainretries/op")
}
