module debruijnring

go 1.24
