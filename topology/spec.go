package topology

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// maxWordSize mirrors word.MaxSize: the largest dⁿ⁺¹ the tuple
// arithmetic supports.  Constructors check it so that specs arriving
// from untrusted input (HTTP, batch files) fail with an error instead
// of tripping the word package's panic.
const maxWordSize = 1 << 40

// maxMaterializedNodes bounds topologies that build their node set
// eagerly in memory (Kautz).
const maxMaterializedNodes = 1 << 22

// powFits reports whether base^exp stays within limit without
// overflowing.
func powFits(base, exp, limit int) bool {
	v := 1
	for i := 0; i < exp; i++ {
		if v > limit/base {
			return false
		}
		v *= base
	}
	return true
}

// FromSpec constructs a network from a compact textual spec — the form
// used by the HTTP service and batch front-ends:
//
//	debruijn(3,3)   de Bruijn B(d,n)        aliases: db, b
//	kautz(2,3)      Kautz K(d,n)            alias:   k
//	shuffleexchange(3,3)  SE(d,n)           alias:   se
//	butterfly(2,3)  wrapped butterfly F(d,n)  aliases: bf, f
//	hypercube(12)   binary cube Q_n         aliases: cube, q
//
// Whitespace is ignored and names are case-insensitive.
//
// Adapters are immutable and safe for concurrent use, so FromSpec
// memoizes them (boundedly) by normalized spec: repeated requests for
// the same topology share one instance — and with it the instance's
// pooled embedding scratch — instead of rebuilding the network per
// request.
func FromSpec(spec string) (RingEmbedder, error) {
	s := strings.ToLower(strings.Join(strings.Fields(spec), ""))
	if net, ok := specCache.Load(s); ok {
		return net.(RingEmbedder), nil
	}
	net, err := fromSpecUncached(s, spec)
	if err != nil {
		return nil, err
	}
	specCacheMu.Lock()
	if specCacheLen < maxSpecCacheEntries {
		if _, loaded := specCache.LoadOrStore(s, net); !loaded {
			specCacheLen++
		}
	}
	specCacheMu.Unlock()
	return net, nil
}

// specCache memoizes adapters by normalized spec, capped so a stream of
// unique untrusted specs cannot grow memory without bound (beyond the
// cap, specs are served uncached).
var (
	specCache           sync.Map
	specCacheMu         sync.Mutex
	specCacheLen        int
	maxSpecCacheEntries = 256
)

func fromSpecUncached(s, spec string) (RingEmbedder, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return nil, fmt.Errorf("topology: bad spec %q (want name(args))", spec)
	}
	name := s[:open]
	var args []int
	for _, tok := range strings.Split(s[open+1:len(s)-1], ",") {
		v, err := strconv.Atoi(tok)
		if err != nil {
			return nil, fmt.Errorf("topology: bad argument %q in spec %q", tok, spec)
		}
		args = append(args, v)
	}
	want := func(k int) error {
		if len(args) != k {
			return fmt.Errorf("topology: spec %q wants %d argument(s), got %d", spec, k, len(args))
		}
		return nil
	}
	switch name {
	case "debruijn", "db", "b":
		if err := want(2); err != nil {
			return nil, err
		}
		return NewDeBruijn(args[0], args[1])
	case "kautz", "k":
		if err := want(2); err != nil {
			return nil, err
		}
		return NewKautz(args[0], args[1])
	case "shuffleexchange", "se":
		if err := want(2); err != nil {
			return nil, err
		}
		return NewShuffleExchange(args[0], args[1])
	case "butterfly", "bf", "f":
		if err := want(2); err != nil {
			return nil, err
		}
		return NewButterfly(args[0], args[1])
	case "hypercube", "cube", "q":
		if err := want(1); err != nil {
			return nil, err
		}
		return NewHypercube(args[0])
	}
	return nil, fmt.Errorf("topology: unknown topology %q in spec %q", name, spec)
}
