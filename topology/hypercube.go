package topology

import (
	"fmt"
	"strconv"

	"debruijnring/internal/hypercube"
)

// Hypercube adapts the binary n-cube Q_n — the paper's comparison
// baseline — to the Network interface.  Node ids are the 2ⁿ bit strings;
// labels render them MSB-first.  Q_n is undirected: Successors lists all
// n neighbors and IsEdge is symmetric.
type Hypercube struct {
	n    int
	size int
}

// NewHypercube returns the Q_n adapter; n ≥ 2.
func NewHypercube(n int) (*Hypercube, error) {
	if n < 2 || n > 30 {
		return nil, fmt.Errorf("topology: invalid hypercube dimension n=%d", n)
	}
	return &Hypercube{n: n, size: 1 << n}, nil
}

// Dim returns the cube dimension n.
func (t *Hypercube) Dim() int { return t.n }

// Name implements Network.
func (t *Hypercube) Name() string { return fmt.Sprintf("hypercube(%d)", t.n) }

// Nodes implements Network.
func (t *Hypercube) Nodes() int { return t.size }

// Successors implements Network.
func (t *Hypercube) Successors(x int, dst []int) []int {
	dst = dst[:0]
	for j := 0; j < t.n; j++ {
		dst = append(dst, x^(1<<j))
	}
	return dst
}

// IsEdge implements Network.
func (t *Hypercube) IsEdge(u, v int) bool {
	if u < 0 || u >= t.size || v < 0 || v >= t.size {
		return false
	}
	return hypercube.IsEdge(u, v)
}

// Label implements Network: the n-bit binary word, MSB first.
func (t *Hypercube) Label(x int) string {
	b := make([]byte, t.n)
	for i := 0; i < t.n; i++ {
		b[i] = byte('0' + (x>>(t.n-1-i))&1)
	}
	return string(b)
}

// Parse implements Network.
func (t *Hypercube) Parse(label string) (int, error) {
	if len(label) != t.n {
		return 0, fmt.Errorf("topology: %q has length %d, want %d", label, len(label), t.n)
	}
	v, err := strconv.ParseUint(label, 2, 32)
	if err != nil {
		return 0, fmt.Errorf("topology: %q is not a binary word: %v", label, err)
	}
	return int(v), nil
}

// EmbedRing implements RingEmbedder via the [WC92, CL91a] construction:
// a fault-free cycle of length ≥ 2ⁿ − 2f for f ≤ n−2 faulty processors.
// Link faults are not supported by the baseline.
func (t *Hypercube) EmbedRing(f FaultSet) ([]int, *EmbedInfo, error) {
	if len(f.Edges) > 0 {
		return nil, nil, fmt.Errorf("topology: %s does not support link faults", t.Name())
	}
	if err := f.Validate(t); err != nil {
		return nil, nil, err
	}
	cycle, err := hypercube.FaultFreeCycle(t.n, f.Nodes)
	if err != nil {
		return nil, nil, err
	}
	nf := len(f.Canonical().Nodes)
	return cycle, &EmbedInfo{
		RingLength: len(cycle),
		LowerBound: t.size - 2*nf,
		Survivors:  t.size - nf,
		Dilation:   1,
	}, nil
}

// DisjointCycles implements CycleFamily with the single reflected-Gray
// Hamiltonian cycle (Q_n's analogue of a one-ring family).
func (t *Hypercube) DisjointCycles() ([][]int, error) {
	return [][]int{hypercube.GrayCycle(t.n)}, nil
}

// undirected marks Q_n's links as orientation-free for fault checks.
func (t *Hypercube) undirected() {}

// isValidCycle refines the structural test for the undirected cube:
// Q_n is simple and bipartite, so genuine cycles have length ≥ 4 (a
// 2-entry "cycle" would reuse the same undirected link both ways).
func (t *Hypercube) isValidCycle(cycle []int) bool {
	return len(cycle) >= 4 && isSimpleCycle(t, cycle)
}
