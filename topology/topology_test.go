package topology

import (
	"strings"
	"testing"
)

func TestFaultSetCanonicalAndKey(t *testing.T) {
	a := FaultSet{
		Nodes: []int{5, 1, 5, 3},
		Edges: []Edge{{From: 2, To: 1}, {From: 0, To: 9}, {From: 2, To: 1}},
	}
	b := FaultSet{
		Nodes: []int{3, 5, 1},
		Edges: []Edge{{From: 0, To: 9}, {From: 2, To: 1}},
	}
	if a.Key() != b.Key() {
		t.Errorf("keys differ for equivalent fault sets: %q vs %q", a.Key(), b.Key())
	}
	c := a.Canonical()
	if len(c.Nodes) != 3 || c.Nodes[0] != 1 || c.Nodes[2] != 5 {
		t.Errorf("canonical nodes = %v", c.Nodes)
	}
	if len(c.Edges) != 2 || c.Edges[0] != (Edge{From: 0, To: 9}) {
		t.Errorf("canonical edges = %v", c.Edges)
	}
	// Canonical must not mutate the receiver.
	if a.Nodes[0] != 5 {
		t.Error("Canonical mutated its receiver")
	}
	empty := FaultSet{}
	if !empty.IsEmpty() || a.IsEmpty() {
		t.Error("IsEmpty wrong")
	}
	if empty.Key() != "n:;e:" {
		t.Errorf("empty key = %q", empty.Key())
	}
	if NodeFaults(1, 2).Key() == EdgeFaults(Edge{From: 1, To: 2}).Key() {
		t.Error("node faults and edge faults must key differently")
	}
}

func TestFaultSetValidate(t *testing.T) {
	net, err := NewDeBruijn(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := NodeFaults(0, 8).Validate(net); err != nil {
		t.Errorf("valid nodes rejected: %v", err)
	}
	if err := NodeFaults(9).Validate(net); err == nil {
		t.Error("out-of-range node accepted")
	}
	if err := NodeFaults(-1).Validate(net); err == nil {
		t.Error("negative node accepted")
	}
	// 00 → 01 is a link; 00 → 11 is not.
	if err := EdgeFaults(Edge{From: 0, To: 1}).Validate(net); err != nil {
		t.Errorf("valid link rejected: %v", err)
	}
	if err := EdgeFaults(Edge{From: 0, To: 4}).Validate(net); err == nil {
		t.Error("non-link accepted")
	}
}

func TestNetworkInterfaceBasics(t *testing.T) {
	nets := []struct {
		spec  string
		nodes int
		label string
	}{
		{"debruijn(3,3)", 27, "020"},
		{"kautz(2,3)", 12, "010"},
		{"shuffleexchange(3,3)", 27, "021"},
		{"butterfly(2,3)", 24, "(1,011)"},
		{"hypercube(5)", 32, "01011"},
	}
	for _, tc := range nets {
		net, err := FromSpec(tc.spec)
		if err != nil {
			t.Fatalf("%s: %v", tc.spec, err)
		}
		if net.Nodes() != tc.nodes {
			t.Errorf("%s: %d nodes, want %d", tc.spec, net.Nodes(), tc.nodes)
		}
		if !strings.Contains(tc.spec, net.Name()) && net.Name() != tc.spec {
			t.Errorf("%s: Name() = %q", tc.spec, net.Name())
		}
		// Label/Parse round trip.
		id, err := net.Parse(tc.label)
		if err != nil {
			t.Fatalf("%s: Parse(%q): %v", tc.spec, tc.label, err)
		}
		if got := net.Label(id); got != tc.label {
			t.Errorf("%s: Label(Parse(%q)) = %q", tc.spec, tc.label, got)
		}
		if _, err := net.Parse("definitely-not-a-label"); err == nil {
			t.Errorf("%s: bad label accepted", tc.spec)
		}
		// Every listed successor is an edge; Successors reuses dst.
		var buf []int
		for x := 0; x < net.Nodes(); x += 7 {
			buf = net.Successors(x, buf)
			if len(buf) == 0 {
				t.Fatalf("%s: node %d has no successors", tc.spec, x)
			}
			for _, y := range buf {
				if !net.IsEdge(x, y) {
					t.Fatalf("%s: successor (%d,%d) is not an edge", tc.spec, x, y)
				}
			}
		}
		// IsEdge tolerates out-of-range probes.
		if net.IsEdge(-1, 0) || net.IsEdge(0, net.Nodes()) {
			t.Errorf("%s: out-of-range IsEdge returned true", tc.spec)
		}
	}
}

func TestFromSpecAliasesAndErrors(t *testing.T) {
	for _, spec := range []string{"db(3,3)", "B(3, 3)", " DeBruijn ( 3 , 3 ) "} {
		net, err := FromSpec(spec)
		if err != nil {
			t.Fatalf("%q: %v", spec, err)
		}
		if net.Name() != "debruijn(3,3)" {
			t.Errorf("%q resolved to %s", spec, net.Name())
		}
	}
	for _, spec := range []string{"q(5)", "cube(5)"} {
		net, err := FromSpec(spec)
		if err != nil || net.Name() != "hypercube(5)" {
			t.Errorf("%q: %v, %v", spec, net, err)
		}
	}
	for _, bad := range []string{"", "debruijn", "debruijn(3)", "debruijn(3,3,3)",
		"ring(3,3)", "debruijn(x,3)", "hypercube(1)", "debruijn(1,3)", "kautz(2,3", "hypercube(3,3)"} {
		if _, err := FromSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
	// Oversized dimensions — as arriving from untrusted HTTP or batch
	// input — must error, not panic or materialize huge node sets.
	for _, huge := range []string{"debruijn(10,30)", "shuffleexchange(10,30)",
		"butterfly(10,30)", "kautz(9,9)", "hypercube(40)", "debruijn(1000000000,2)"} {
		if _, err := FromSpec(huge); err == nil {
			t.Errorf("oversized spec %q accepted", huge)
		}
	}
}

func TestSharedVerifyRing(t *testing.T) {
	net, _ := NewDeBruijn(3, 3)
	ring, _, err := net.EmbedRing(NodeFaults(6, 14)) // 020 and 112
	if err != nil {
		t.Fatal(err)
	}
	faults := NodeFaults(6, 14)
	if !VerifyRing(net, ring, faults) {
		t.Error("valid ring rejected")
	}
	if VerifyRing(net, nil, faults) || VerifyRing(net, []int{}, faults) {
		t.Error("empty ring accepted")
	}
	// A ring through a faulty node fails.
	if VerifyRing(net, ring, NodeFaults(ring[0])) {
		t.Error("ring through faulty node accepted")
	}
	// A ring using a faulty edge fails.
	if VerifyRing(net, ring, EdgeFaults(Edge{From: ring[0], To: ring[1]})) {
		t.Error("ring using faulty edge accepted")
	}
	// An out-of-range node fails.
	broken := append([]int(nil), ring...)
	broken[3] = net.Nodes()
	if VerifyRing(net, broken, faults) {
		t.Error("out-of-range node accepted")
	}
	// Duplicate node fails.
	dup := append(append([]int(nil), ring...), ring[0])
	if VerifyRing(net, dup, faults) {
		t.Error("duplicated node accepted")
	}
	// Hamiltonian check: the fault-free embedding covers all dⁿ nodes.
	full, _, err := net.EmbedRing(FaultSet{})
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyHamiltonian(net, full, FaultSet{}) {
		t.Error("fault-free ring is not Hamiltonian")
	}
	if VerifyHamiltonian(net, ring, faults) {
		t.Error("21-ring of 27-network accepted as Hamiltonian")
	}
}

func TestUndirectedEdgeFaultBothOrientations(t *testing.T) {
	net, _ := NewHypercube(3)
	ring, _, err := net.EmbedRing(FaultSet{})
	if err != nil {
		t.Fatal(err)
	}
	// The ring hops ring[0] → ring[1]; failing the same undirected wire
	// named in either orientation must invalidate it.
	forward := EdgeFaults(Edge{From: ring[0], To: ring[1]})
	reverse := EdgeFaults(Edge{From: ring[1], To: ring[0]})
	if VerifyRing(net, ring, forward) {
		t.Error("ring over failed link accepted (forward orientation)")
	}
	if VerifyRing(net, ring, reverse) {
		t.Error("ring over failed undirected link accepted (reverse orientation)")
	}
	// Directed topologies keep orientation: only the traversed direction
	// invalidates.
	db, _ := NewDeBruijn(2, 3)
	dbRing, _, err := db.EmbedRing(FaultSet{})
	if err != nil {
		t.Fatal(err)
	}
	if VerifyRing(db, dbRing, EdgeFaults(Edge{From: dbRing[0], To: dbRing[1]})) {
		t.Error("De Bruijn ring over failed link accepted")
	}
	if db.IsEdge(dbRing[1], dbRing[0]) {
		t.Skip("reverse happens to be an edge here; orientation check not meaningful")
	}
}

func TestHypercubeDegenerateCycleRejected(t *testing.T) {
	net, _ := NewHypercube(4)
	// 0-1 is an undirected edge: walking it both ways is not a cycle.
	if VerifyRing(net, []int{0, 1}, FaultSet{}) {
		t.Error("2-entry undirected walk accepted as ring")
	}
	if !VerifyRing(net, []int{0, 1, 3, 2}, FaultSet{}) {
		t.Error("genuine 4-cycle rejected")
	}
}

func TestShuffleExchangeWalkVerification(t *testing.T) {
	net, _ := NewShuffleExchange(3, 3)
	walk, info, err := net.EmbedRing(NodeFaults(6, 14))
	if err != nil {
		t.Fatal(err)
	}
	if info.Dilation != 2 {
		t.Errorf("dilation = %d, want 2", info.Dilation)
	}
	if info.Survivors != 21 || info.LowerBound != 21 {
		t.Errorf("info = %+v", info)
	}
	if !VerifyRing(net, walk, NodeFaults(6, 14)) {
		t.Error("valid SE walk rejected")
	}
	// Repeating a directed channel is congestion > 1: rejected.
	bad := append(append([]int(nil), walk...), walk...)
	if VerifyRing(net, bad, FaultSet{}) {
		t.Error("doubled walk accepted")
	}
}

func TestDisjointCycleFamilies(t *testing.T) {
	for _, spec := range []string{"debruijn(4,3)", "butterfly(3,2)", "kautz(2,3)", "hypercube(4)"} {
		net, err := FromSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		fam, ok := net.(CycleFamily)
		if !ok {
			t.Fatalf("%s does not implement CycleFamily", spec)
		}
		cycles, err := fam.DisjointCycles()
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if len(cycles) == 0 {
			t.Fatalf("%s: empty family", spec)
		}
		seen := map[Edge]bool{}
		for _, c := range cycles {
			if !VerifyHamiltonian(net, c, FaultSet{}) {
				t.Fatalf("%s: family member is not a Hamiltonian ring", spec)
			}
			for i, v := range c {
				e := Edge{From: v, To: c[(i+1)%len(c)]}
				if seen[e] {
					t.Fatalf("%s: cycles share edge %v", spec, e)
				}
				seen[e] = true
			}
		}
	}
}

func TestUnsupportedFaultClasses(t *testing.T) {
	bf, _ := NewButterfly(3, 2)
	if _, _, err := bf.EmbedRing(NodeFaults(0)); err == nil {
		t.Error("butterfly accepted processor faults")
	}
	kz, _ := NewKautz(2, 3)
	if _, _, err := kz.EmbedRing(NodeFaults(0)); err == nil {
		t.Error("kautz accepted processor faults")
	}
	hc, _ := NewHypercube(4)
	if _, _, err := hc.EmbedRing(EdgeFaults(Edge{From: 0, To: 1})); err == nil {
		t.Error("hypercube accepted link faults")
	}
	se, _ := NewShuffleExchange(3, 3)
	if _, _, err := se.EmbedRing(EdgeFaults(Edge{From: 0, To: 1})); err == nil {
		t.Error("shuffle-exchange accepted link faults")
	}
	big, _ := NewKautz(3, 5) // 324 nodes: beyond the exhaustive-search bound
	if _, _, err := big.EmbedRing(FaultSet{}); err == nil {
		t.Error("oversized kautz instance accepted")
	}
}

func TestKautzEdgeFaultEmbedding(t *testing.T) {
	net, _ := NewKautz(2, 3)
	full, _, err := net.EmbedRing(FaultSet{})
	if err != nil {
		t.Fatal(err)
	}
	faults := EdgeFaults(Edge{From: full[0], To: full[1]})
	ring, info, err := net.EmbedRing(faults)
	if err != nil {
		t.Fatal(err)
	}
	if info.RingLength != net.Nodes() {
		t.Errorf("ring length %d, want Hamiltonian %d", info.RingLength, net.Nodes())
	}
	if !VerifyHamiltonian(net, ring, faults) {
		t.Error("kautz edge-fault ring invalid")
	}
}

func TestNodeFaultBoundDedupAndClamp(t *testing.T) {
	net, _ := NewDeBruijn(3, 3)
	// Duplicated faults must not shrink the reported guarantee.
	_, once, err := net.EmbedRing(NodeFaults(6))
	if err != nil {
		t.Fatal(err)
	}
	_, dup, err := net.EmbedRing(NodeFaults(6, 6, 6))
	if err != nil {
		t.Fatal(err)
	}
	if once.LowerBound != 24 || dup.LowerBound != 24 {
		t.Errorf("bounds = %d, %d; want 24 for one deduplicated fault", once.LowerBound, dup.LowerBound)
	}
	// Overwhelming fault loads clamp to 0 instead of going negative.
	many := make([]int, 0, 12)
	for x := 0; x < 12; x++ {
		many = append(many, x)
	}
	if _, info, err := net.EmbedRing(NodeFaults(many...)); err == nil && info.LowerBound < 0 {
		t.Errorf("negative bound %d", info.LowerBound)
	}
	if b := nodeFaultBound(27, 3, NodeFaults(many...)); b != 0 {
		t.Errorf("vacuous bound = %d, want 0", b)
	}
}

func TestParseFaults(t *testing.T) {
	net, _ := NewDeBruijn(3, 3)
	fs, err := ParseFaults(net, []string{"020", "112"}, [][2]string{{"001", "011"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.Nodes) != 2 || fs.Nodes[0] != 6 || len(fs.Edges) != 1 || fs.Edges[0] != (Edge{From: 1, To: 4}) {
		t.Errorf("parsed = %+v", fs)
	}
	if _, err := ParseFaults(net, []string{"999"}, nil); err == nil {
		t.Error("bad node label accepted")
	}
	if _, err := ParseFaults(net, nil, [][2]string{{"001", "zz"}}); err == nil {
		t.Error("bad edge label accepted")
	}
}

func TestDeBruijnMixedFaults(t *testing.T) {
	net, _ := NewDeBruijn(4, 3)
	// Node fault plus a link fault that is incident to the sacrificed
	// necklace: the FFC ring avoids it for free.
	ring, _, err := net.EmbedRing(FaultSet{
		Nodes: []int{net.Graph().Size - 1},                                    // 333
		Edges: []Edge{{From: net.Graph().Size - 1, To: net.Graph().Size - 1}}, // the 333 loop
	})
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyRing(net, ring, FaultSet{Nodes: []int{net.Graph().Size - 1}}) {
		t.Error("mixed-fault ring invalid")
	}
}
