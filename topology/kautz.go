package topology

import (
	"fmt"

	"debruijnring/internal/kautz"
)

// maxKautzSearch bounds the exhaustive Hamiltonian search backing Kautz
// ring embedding (Chapter 5 explores these instances empirically; no
// constructive fault-tolerance theorem is known for K(d,n)).
const maxKautzSearch = 120

// Kautz adapts the Kautz digraph K(d,n) to the Network interface: the
// second bounded-degree family Chapter 5 asks about.  Ring embedding
// under link faults is served by exhaustive search on small instances,
// measuring constructively what the paper leaves open.
type Kautz struct {
	d, n int
	g    *kautz.Graph
}

// NewKautz returns the K(d,n) adapter; d ≥ 2, n ≥ 1.
func NewKautz(d, n int) (*Kautz, error) {
	// K(d,n) materializes its (d+1)·dⁿ⁻¹ nodes eagerly, so bound the
	// size before construction.
	if d < 2 || n < 1 || !powFits(d+1, n, maxMaterializedNodes) {
		return nil, fmt.Errorf("topology: invalid Kautz dimensions d=%d, n=%d", d, n)
	}
	return &Kautz{d: d, n: n, g: kautz.New(d, n)}, nil
}

// Name implements Network.
func (t *Kautz) Name() string { return fmt.Sprintf("kautz(%d,%d)", t.d, t.n) }

// Nodes implements Network.
func (t *Kautz) Nodes() int { return t.g.Size }

// Successors implements Network.
func (t *Kautz) Successors(x int, dst []int) []int { return t.g.Successors(x, dst) }

// IsEdge implements Network.
func (t *Kautz) IsEdge(u, v int) bool {
	if u < 0 || u >= t.g.Size || v < 0 || v >= t.g.Size {
		return false
	}
	return t.g.IsEdge(u, v)
}

// Label implements Network.
func (t *Kautz) Label(x int) string { return t.g.String(x) }

// Parse implements Network.
func (t *Kautz) Parse(label string) (int, error) { return t.g.Parse(label) }

// EmbedRing implements RingEmbedder for link faults on small instances
// (≤ 120 nodes): exhaustive Hamiltonian search avoiding the faulty
// links.  Processor faults are not supported — Kautz words do not rotate
// freely, so the necklace machinery of Chapter 2 does not transfer.
func (t *Kautz) EmbedRing(f FaultSet) ([]int, *EmbedInfo, error) {
	if len(f.Nodes) > 0 {
		return nil, nil, fmt.Errorf("topology: %s does not support processor faults", t.Name())
	}
	if t.g.Size > maxKautzSearch {
		return nil, nil, fmt.Errorf("topology: %s too large for exhaustive Kautz embedding (%d > %d nodes)",
			t.Name(), t.g.Size, maxKautzSearch)
	}
	if err := f.Validate(t); err != nil {
		return nil, nil, err
	}
	bad := make(map[[2]int]bool, len(f.Edges))
	for _, e := range f.Edges {
		bad[[2]int{e.From, e.To}] = true
	}
	cycle := t.g.FindHamiltonian(bad)
	if cycle == nil {
		return nil, nil, fmt.Errorf("topology: %s has no Hamiltonian ring avoiding the %d faulty links",
			t.Name(), len(f.Edges))
	}
	return cycle, &EmbedInfo{RingLength: len(cycle), Dilation: 1}, nil
}

// DisjointCycles implements CycleFamily by greedy exhaustive search on
// small instances, answering the Chapter 5 question from below.
func (t *Kautz) DisjointCycles() ([][]int, error) {
	if t.g.Size > maxKautzSearch {
		return nil, fmt.Errorf("topology: %s too large for exhaustive Kautz search", t.Name())
	}
	return t.g.MaxDisjointHCs(), nil
}
